// Command tradeoff sweeps Reed-Solomon redundancy and arrangement to
// produce the design-space table behind the paper's Section 6
// discussion: for each candidate, the word BER at the mission
// horizon, the mean time to data loss, the decoder latency and area,
// and the storage overhead. The paper's three designs — simplex
// RS(18,16), duplex RS(18,16) and simplex RS(36,16) — appear as rows
// of the sweep. Candidates are evaluated as sharded trials on the
// shared internal/campaign engine; any evaluation error aborts the
// sweep with a non-zero exit status.
//
// Example:
//
//	tradeoff -seu 1.7e-5 -perm 1e-7 -hours 48 -scrub 3600 -max-red 20
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/campaign"
	"repro/internal/campaign/spec"
)

func main() {
	var (
		k       = flag.Int("k", 16, "dataword symbols")
		m       = flag.Int("m", 8, "bits per symbol")
		seu     = flag.Float64("seu", 1.7e-5, "SEU rate per bit per day")
		perm    = flag.Float64("perm", 1e-7, "permanent fault rate per symbol per day")
		scrub   = flag.Float64("scrub", 3600, "scrub period in seconds (0 = off)")
		hours   = flag.Float64("hours", 48, "mission horizon in hours for the BER column")
		maxRed  = flag.Int("max-red", 20, "maximum redundancy n-k to sweep (even steps)")
		duplexD = flag.Int("duplex-max-red", 8, "maximum n-k for duplex rows (state space grows fast)")
		workers = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "tradeoff: unexpected arguments %q\n", flag.Args())
		os.Exit(2)
	}

	scn, err := spec.NewTradeoff(spec.TradeoffParams{
		K: *k, M: *m,
		SEUPerBit:  *seu,
		PermPerSym: *perm,
		ScrubSec:   *scrub,
		Hours:      *hours,
		MaxRed:     *maxRed, DuplexMaxRed: *duplexD,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "tradeoff: %v\n", err)
		os.Exit(2)
	}
	// One candidate per shard, so the (few, independent) chain solves
	// actually spread across the worker pool.
	cres, err := campaign.Run(scn, campaign.Config{Workers: *workers, ShardSize: 1})
	if err != nil {
		fmt.Fprintf(os.Stderr, "tradeoff: %v\n", err)
		os.Exit(1)
	}
	if err := spec.RenderTradeoff(os.Stdout, scn, cres); err != nil {
		fmt.Fprintf(os.Stderr, "tradeoff: %v\n", err)
		os.Exit(1)
	}
}
