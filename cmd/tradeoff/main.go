// Command tradeoff sweeps Reed-Solomon redundancy and arrangement to
// produce the design-space table behind the paper's Section 6
// discussion: for each candidate, the word BER at the mission
// horizon, the mean time to data loss, the decoder latency and area,
// and the storage overhead. The paper's three designs — simplex
// RS(18,16), duplex RS(18,16) and simplex RS(36,16) — appear as rows
// of the sweep.
//
// Example:
//
//	tradeoff -seu 1.7e-5 -perm 1e-7 -hours 48 -scrub 3600 -max-red 20
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/complexity"
	"repro/internal/core"
)

func main() {
	var (
		k       = flag.Int("k", 16, "dataword symbols")
		m       = flag.Int("m", 8, "bits per symbol")
		seu     = flag.Float64("seu", 1.7e-5, "SEU rate per bit per day")
		perm    = flag.Float64("perm", 1e-7, "permanent fault rate per symbol per day")
		scrub   = flag.Float64("scrub", 3600, "scrub period in seconds (0 = off)")
		hours   = flag.Float64("hours", 48, "mission horizon in hours for the BER column")
		maxRed  = flag.Int("max-red", 20, "maximum redundancy n-k to sweep (even steps)")
		duplexD = flag.Int("duplex-max-red", 8, "maximum n-k for duplex rows (state space grows fast)")
	)
	flag.Parse()

	fmt.Printf("design space for k=%d data symbols (m=%d), lambda=%g/bit/day, lambdaE=%g/sym/day, Tsc=%gs, horizon %gh\n\n",
		*k, *m, *seu, *perm, *scrub, *hours)
	fmt.Printf("%-22s %12s %14s %10s %8s %9s\n",
		"arrangement", "BER(h)", "MTTDL(h)", "Td cycles", "gates", "overhead")

	emit := func(arr core.Arrangement, red int) {
		n := *k + red
		cfg := core.Config{
			Arrangement:         arr,
			Code:                core.CodeSpec{N: n, K: *k, M: *m},
			SEUPerBitDay:        *seu,
			ErasurePerSymbolDay: *perm,
			ScrubPeriodSeconds:  *scrub,
		}
		curve, err := core.Evaluate(cfg, []float64{*hours})
		if err != nil {
			fmt.Fprintf(os.Stderr, "tradeoff: %v: %v\n", cfg, err)
			return
		}
		mttdl, err := core.MTTDL(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tradeoff: %v: %v\n", cfg, err)
			return
		}
		var cost complexity.ArrangementCost
		if arr == core.Simplex {
			cost, err = complexity.SimplexCost(n, *k, *m)
		} else {
			cost, err = complexity.DuplexCost(n, *k, *m)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "tradeoff: %v\n", err)
			return
		}
		overhead := float64(n) / float64(*k)
		if arr == core.Duplex {
			overhead *= 2
		}
		mttdlStr := fmt.Sprintf("%14.3e", mttdl)
		if math.IsInf(mttdl, 1) {
			mttdlStr = fmt.Sprintf("%14s", "inf")
		}
		fmt.Printf("%-22s %12.3e %s %10d %8.0f %8.2fx\n",
			fmt.Sprintf("%s RS(%d,%d)", arr, n, *k),
			curve.BER[0], mttdlStr, cost.DecodeCycles, cost.TotalGates, overhead)
	}

	for red := 2; red <= *maxRed; red += 2 {
		emit(core.Simplex, red)
	}
	fmt.Println()
	for red := 2; red <= *duplexD; red += 2 {
		emit(core.Duplex, red)
	}
}
