// Command sweep regenerates the paper's evaluation artifacts —
// Figures 5-10, the Section 6 decoder cost comparison and the
// model-vs-simulation cross-validation — from the experiment registry
// in internal/expdata.
//
// Usage:
//
//	sweep                 # run every experiment, print ASCII plots
//	sweep -exp fig7       # run one experiment
//	sweep -out results/   # additionally write <id>.tsv and <id>.txt
//	sweep -list           # list experiment IDs and exit
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/expdata"
	"repro/internal/textplot"
)

func main() {
	var (
		expID  = flag.String("exp", "", "run a single experiment by ID (default: all)")
		outDir = flag.String("out", "", "directory for TSV tables and rendered plots")
		list   = flag.Bool("list", false, "list experiment IDs and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range expdata.All() {
			fmt.Printf("%-9s %s\n", e.ID, e.Title)
		}
		return
	}

	experiments := expdata.All()
	if *expID != "" {
		e, ok := expdata.ByID(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "sweep: unknown experiment %q (use -list)\n", *expID)
			os.Exit(2)
		}
		experiments = []expdata.Experiment{e}
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
			os.Exit(1)
		}
	}

	for _, e := range experiments {
		fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
		fmt.Println(e.Description)
		res, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweep: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		rendered := res.Plot(e.Title).Render()
		fmt.Println(rendered)
		for _, note := range res.Notes {
			fmt.Printf("  note: %s\n", note)
		}
		fmt.Println()

		if *outDir != "" {
			if err := writeArtifacts(*outDir, e.ID, res, rendered); err != nil {
				fmt.Fprintf(os.Stderr, "sweep: %s: %v\n", e.ID, err)
				os.Exit(1)
			}
		}
	}
}

func writeArtifacts(dir, id string, res *expdata.Result, rendered string) error {
	tsv, err := os.Create(filepath.Join(dir, id+".tsv"))
	if err != nil {
		return err
	}
	defer tsv.Close()
	if err := textplot.WriteTSV(tsv, res.XLabel, res.Series); err != nil {
		return err
	}

	var b strings.Builder
	b.WriteString(rendered)
	for _, note := range res.Notes {
		fmt.Fprintf(&b, "note: %s\n", note)
	}
	return os.WriteFile(filepath.Join(dir, id+".txt"), []byte(b.String()), 0o644)
}
