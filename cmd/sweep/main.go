// Command sweep regenerates the paper's evaluation artifacts —
// Figures 5-10, the Section 6 decoder cost comparison and the
// model-vs-simulation cross-validation — from the experiment registry
// in internal/expdata. The experiments run as sharded trials on the
// shared internal/campaign engine.
//
// Usage:
//
//	sweep                 # run every experiment, print ASCII plots
//	sweep -exp fig7       # run one experiment
//	sweep -out results/   # additionally write <id>.tsv/.txt/.json/.csv
//	sweep -list           # list experiment IDs and exit
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/campaign"
	"repro/internal/expdata"
	"repro/internal/textplot"
)

func main() {
	var (
		expID   = flag.String("exp", "", "run a single experiment by ID (default: all)")
		outDir  = flag.String("out", "", "directory for TSV tables and rendered plots")
		list    = flag.Bool("list", false, "list experiment IDs and exit")
		workers = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "sweep: unexpected arguments %q\n", flag.Args())
		os.Exit(2)
	}

	if *list {
		for _, e := range expdata.All() {
			fmt.Printf("%-9s %s\n", e.ID, e.Title)
		}
		return
	}

	experiments := expdata.All()
	if *expID != "" {
		e, ok := expdata.ByID(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "sweep: unknown experiment %q (use -list)\n", *expID)
			os.Exit(2)
		}
		experiments = []expdata.Experiment{e}
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
			os.Exit(1)
		}
	}

	scn, err := expdata.Scenario("sweep", experiments)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
		os.Exit(1)
	}
	// One experiment per shard: independent experiments run in
	// parallel and a failure is attributed to its experiment.
	cres, err := campaign.Run(scn, campaign.Config{Workers: *workers, ShardSize: 1})
	if err != nil {
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
		os.Exit(1)
	}
	results, err := expdata.ResultsFromCampaign(experiments, cres)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
		os.Exit(1)
	}

	for i, e := range experiments {
		res := results[i]
		fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
		fmt.Println(e.Description)
		rendered := res.Plot(e.Title).Render()
		fmt.Println(rendered)
		for _, note := range res.Notes {
			fmt.Printf("  note: %s\n", note)
		}
		fmt.Println()

		if *outDir != "" {
			if err := writeArtifacts(*outDir, e, res, rendered); err != nil {
				fmt.Fprintf(os.Stderr, "sweep: %s: %v\n", e.ID, err)
				os.Exit(1)
			}
		}
	}
}

func writeArtifacts(dir string, e expdata.Experiment, res *expdata.Result, rendered string) error {
	tsv, err := os.Create(filepath.Join(dir, e.ID+".tsv"))
	if err != nil {
		return err
	}
	defer tsv.Close()
	if err := textplot.WriteTSV(tsv, res.XLabel, res.Series); err != nil {
		return err
	}

	var b strings.Builder
	b.WriteString(rendered)
	for _, note := range res.Notes {
		fmt.Fprintf(&b, "note: %s\n", note)
	}
	if err := os.WriteFile(filepath.Join(dir, e.ID+".txt"), []byte(b.String()), 0o644); err != nil {
		return err
	}

	jsonFile, err := os.Create(filepath.Join(dir, e.ID+".json"))
	if err != nil {
		return err
	}
	defer jsonFile.Close()
	if err := expdata.WriteJSON(jsonFile, e.ID, e.Title, res); err != nil {
		return err
	}

	csvFile, err := os.Create(filepath.Join(dir, e.ID+".csv"))
	if err != nil {
		return err
	}
	defer csvFile.Close()
	return expdata.WriteCSV(csvFile, res)
}
