// Command mbusim compares protection schemes under multi-bit upsets:
// Poisson-distributed burst events injected through the real codecs
// of the default comparison set (RS words, an interleaved RS page,
// SEC-DED and TMR), as sharded trials on the shared internal/campaign
// engine.
//
// Example:
//
//	mbusim -events-per-kilobit 4 -burst-bits 6 -trials 20000
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/campaign"
	"repro/internal/mbusim"
)

func main() {
	var (
		density = flag.Float64("events-per-kilobit", 4, "mean burst events per 1000 stored bits per trial")
		burst   = flag.Int("burst-bits", 4, "bits flipped per burst event")
		trials  = flag.Int("trials", 10000, "number of independent trials")
		seed    = flag.Int64("seed", 1, "base random seed")
		workers = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		jsonOut = flag.Bool("json", false, "emit the raw campaign result as JSON instead of a table")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "mbusim: unexpected arguments %q\n", flag.Args())
		os.Exit(2)
	}

	systems, err := mbusim.DefaultSystems()
	if err != nil {
		fatal(err)
	}
	cfg := mbusim.Config{
		EventsPerKilobit: *density,
		BurstBits:        *burst,
		Trials:           *trials,
		Seed:             *seed,
		Workers:          *workers,
	}
	scn, err := mbusim.Scenario(cfg, systems)
	if err != nil {
		fatal(err)
	}
	cres, err := campaign.Run(scn, campaign.Config{Workers: *workers})
	if err != nil {
		fatal(err)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(cres); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Printf("multi-bit upsets: %g events/kilobit, %d-bit bursts, %d trials\n\n",
		*density, *burst, cres.Trials)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "system\tstored bits\tmean events\tlost\tloss fraction")
	for _, r := range mbusim.ResultsFromCampaign(systems, cres) {
		fmt.Fprintf(tw, "%s\t%d\t%.2f\t%d\t%.4f\n",
			r.Name, r.StoredBits, r.MeanEvents, r.Lost, r.LossFraction)
	}
	if err := tw.Flush(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "mbusim: %v\n", err)
	os.Exit(1)
}
