package main

import (
	"bytes"
	"strings"
	"testing"
)

const benchText = `goos: linux
goarch: amd64
pkg: repro/internal/rs
cpu: Intel(R) Xeon(R)
BenchmarkEncode/RS(18,16)-8         	10000000	       112.0 ns/op	     160.71 MB/s	       0 B/op	       0 allocs/op
BenchmarkDecodeClean/RS(18,16)-8    	 5000000	       185.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkDecodeErrors/RS(36,16)/e=10-8	  100000	      4796 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	repro/internal/rs	12.3s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(benchText))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(got), got)
	}
	e, ok := got["BenchmarkEncode/RS(18,16)"]
	if !ok {
		t.Fatalf("proc suffix not stripped: %v", got)
	}
	if e.NsPerOp != 112.0 || e.AllocsPerOp != 0 {
		t.Errorf("encode entry %+v", e)
	}
	if e.MBPerS != 160.71 {
		t.Errorf("MB/s not carried: %+v", e)
	}
	if e := got["BenchmarkDecodeClean/RS(18,16)"]; e.MBPerS != 0 {
		t.Errorf("MB/s invented for a non-SetBytes benchmark: %+v", e)
	}
	if e := got["BenchmarkDecodeErrors/RS(36,16)/e=10"]; e.NsPerOp != 4796 {
		t.Errorf("decode-errors entry %+v", e)
	}
}

func TestParseBenchFoldsRepeats(t *testing.T) {
	// -count=N repeats fold into min ns/op (one-sided noise) and max
	// allocs/op (conservative gate).
	text := "BenchmarkX-8 100 100 ns/op 80.0 MB/s 1 allocs/op\nBenchmarkX-8 100 300 ns/op 30.0 MB/s 3 allocs/op\n"
	got, err := parseBench(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if e := got["BenchmarkX"]; e.NsPerOp != 100 || e.AllocsPerOp != 3 || e.MBPerS != 80 {
		t.Errorf("folded entry %+v", e)
	}
}

func TestCompareGates(t *testing.T) {
	base := map[string]Entry{
		"BenchmarkA": {NsPerOp: 100, AllocsPerOp: 0},
		"BenchmarkB": {NsPerOp: 100, AllocsPerOp: 2},
		"BenchmarkC": {NsPerOp: 100, AllocsPerOp: 0},
		"BenchmarkD": {NsPerOp: 100, AllocsPerOp: 0},
	}
	current := map[string]Entry{
		"BenchmarkA": {NsPerOp: 120, AllocsPerOp: 0}, // +20% < 25%: ok
		"BenchmarkB": {NsPerOp: 90, AllocsPerOp: 3},  // alloc regression
		"BenchmarkC": {NsPerOp: 210, AllocsPerOp: 0}, // 2.1x slowdown
		// BenchmarkD missing: skipped, not failed.
	}
	var buf bytes.Buffer
	failures, compared := compare(base, current, 0.25, false, 0, &buf)
	if compared != 3 {
		t.Errorf("compared %d, want 3", compared)
	}
	if failures != 2 {
		t.Errorf("failures = %d, want 2 (alloc + latency):\n%s", failures, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "FAIL BenchmarkB") || !strings.Contains(out, "allocs 2 -> 3") {
		t.Errorf("alloc regression not reported:\n%s", out)
	}
	if !strings.Contains(out, "FAIL BenchmarkC") {
		t.Errorf("latency regression not reported:\n%s", out)
	}
	if !strings.Contains(out, "SKIP BenchmarkD") {
		t.Errorf("missing benchmark not reported as skip:\n%s", out)
	}

	// An injected 2x slowdown must fail the gate — the acceptance
	// criterion for the CI bench job.
	buf.Reset()
	doubled := map[string]Entry{"BenchmarkA": {NsPerOp: 200, AllocsPerOp: 0}}
	failures, _ = compare(map[string]Entry{"BenchmarkA": {NsPerOp: 100}}, doubled, 0.25, false, 0, &buf)
	if failures != 1 {
		t.Errorf("2x slowdown not caught:\n%s", buf.String())
	}

	// allocs-only mode ignores the latency gate.
	buf.Reset()
	failures, _ = compare(map[string]Entry{"BenchmarkA": {NsPerOp: 100}}, doubled, 0.25, true, 0, &buf)
	if failures != 0 {
		t.Errorf("allocs-only mode still gated latency:\n%s", buf.String())
	}
}

// TestCompareReportsNewBenchmarks: benchmarks present in the new
// output but absent from the baseline must be listed (they bypass the
// gate until folded in with -update) without counting as failures.
func TestCompareReportsNewBenchmarks(t *testing.T) {
	base := map[string]Entry{"BenchmarkOld": {NsPerOp: 100, AllocsPerOp: 1}}
	current := map[string]Entry{
		"BenchmarkOld":   {NsPerOp: 100, AllocsPerOp: 1},
		"BenchmarkAdded": {NsPerOp: 42, AllocsPerOp: 3},
	}
	var buf bytes.Buffer
	failures, compared := compare(base, current, 0.25, false, 0, &buf)
	if failures != 0 || compared != 1 {
		t.Errorf("failures=%d compared=%d, want 0/1:\n%s", failures, compared, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "NEW  BenchmarkAdded") || !strings.Contains(out, "not in baseline") {
		t.Errorf("new benchmark not reported:\n%s", out)
	}
	if strings.Contains(out, "NEW  BenchmarkOld") {
		t.Errorf("baselined benchmark reported as new:\n%s", out)
	}
}

// TestCompareThroughputReportOnly: MB/s appears in the report but a
// throughput drop never gates (the latency gate already covers it).
func TestCompareThroughputReportOnly(t *testing.T) {
	base := map[string]Entry{"BenchmarkT": {NsPerOp: 100, MBPerS: 500}}
	current := map[string]Entry{"BenchmarkT": {NsPerOp: 101, MBPerS: 200}}
	var buf bytes.Buffer
	failures, compared := compare(base, current, 0.25, false, 0, &buf)
	if failures != 0 || compared != 1 {
		t.Errorf("failures=%d compared=%d, want 0/1:\n%s", failures, compared, buf.String())
	}
	if !strings.Contains(buf.String(), "MB/s 500.0 -> 200.0") {
		t.Errorf("throughput column missing:\n%s", buf.String())
	}

	// NEW lines carry the throughput too.
	buf.Reset()
	compare(map[string]Entry{}, map[string]Entry{"BenchmarkN": {NsPerOp: 10, MBPerS: 123.4}}, 0.25, false, 0, &buf)
	if !strings.Contains(buf.String(), "MB/s 123.4") {
		t.Errorf("NEW line missing throughput:\n%s", buf.String())
	}
}

// TestEffectiveTrialsReportOnly: the etrials/s custom metric from the
// rare-event campaign benchmark is parsed, folded across repeats (max,
// like a throughput), rendered in compare and NEW lines, and never
// gates — a drop in effective-sample throughput shows up as a report
// column only.
func TestEffectiveTrialsReportOnly(t *testing.T) {
	text := "BenchmarkRare-8 2 5e7 ns/op 3174.0 etrials/s 10 allocs/op\n" +
		"BenchmarkRare-8 2 6e7 ns/op 2800.0 etrials/s 10 allocs/op\n"
	got, err := parseBench(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	e := got["BenchmarkRare"]
	if e.ETrialsPerS != 3174.0 {
		t.Errorf("etrials/s parsed as %v, want max fold 3174: %+v", e.ETrialsPerS, e)
	}

	base := map[string]Entry{"BenchmarkRare": {NsPerOp: 5e7, ETrialsPerS: 3174}}
	current := map[string]Entry{"BenchmarkRare": {NsPerOp: 5.1e7, ETrialsPerS: 900}}
	var buf bytes.Buffer
	failures, compared := compare(base, current, 0.25, false, 0, &buf)
	if failures != 0 || compared != 1 {
		t.Errorf("failures=%d compared=%d, want 0/1 (etrials/s must not gate):\n%s",
			failures, compared, buf.String())
	}
	if !strings.Contains(buf.String(), "etrials/s 3174.0 -> 900.0") {
		t.Errorf("etrials/s column missing:\n%s", buf.String())
	}

	// Entries without the metric render no empty column.
	buf.Reset()
	compare(map[string]Entry{"BenchmarkP": {NsPerOp: 100}},
		map[string]Entry{"BenchmarkP": {NsPerOp: 100}}, 0.25, false, 0, &buf)
	if strings.Contains(buf.String(), "etrials") {
		t.Errorf("etrials column invented for a plain benchmark:\n%s", buf.String())
	}

	buf.Reset()
	compare(map[string]Entry{}, map[string]Entry{"BenchmarkN": {NsPerOp: 10, ETrialsPerS: 55.5}}, 0.25, false, 0, &buf)
	if !strings.Contains(buf.String(), "etrials/s 55.5") {
		t.Errorf("NEW line missing etrials/s:\n%s", buf.String())
	}
}

// TestCompareGateMBPS: the opt-in -gate-mbps throughput gate fails a
// drop beyond the percentage, tolerates one inside it, ignores entries
// without MB/s on either side, and composes with the fold direction
// (repeats fold to the MAX MB/s, pairing with the minimum ns/op, so a
// noisy slow repeat cannot trip the gate).
func TestCompareGateMBPS(t *testing.T) {
	base := map[string]Entry{
		"BenchmarkFast":  {NsPerOp: 100, MBPerS: 500},
		"BenchmarkNear":  {NsPerOp: 100, MBPerS: 500},
		"BenchmarkPlain": {NsPerOp: 100},              // no MB/s in baseline
		"BenchmarkGone":  {NsPerOp: 100, MBPerS: 500}, // MB/s absent from new output
	}
	current := map[string]Entry{
		"BenchmarkFast":  {NsPerOp: 100, MBPerS: 200}, // -60% > 25%: gated
		"BenchmarkNear":  {NsPerOp: 100, MBPerS: 400}, // -20% < 25%: ok
		"BenchmarkPlain": {NsPerOp: 100, MBPerS: 50},
		"BenchmarkGone":  {NsPerOp: 100},
	}
	var buf bytes.Buffer
	failures, compared := compare(base, current, 0.25, false, 25, &buf)
	if compared != 4 {
		t.Errorf("compared %d, want 4", compared)
	}
	if failures != 1 {
		t.Errorf("failures = %d, want 1 (only the -60%% drop):\n%s", failures, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "FAIL BenchmarkFast") || !strings.Contains(out, "MB/s 500.0 -> 200.0 (-60% > 25%)") {
		t.Errorf("throughput regression not reported:\n%s", out)
	}
	for _, name := range []string{"BenchmarkNear", "BenchmarkPlain", "BenchmarkGone"} {
		if !strings.Contains(out, "ok   "+name) {
			t.Errorf("%s should pass the gate:\n%s", name, out)
		}
	}

	// Default (gate off) keeps the historical report-only behavior on
	// the same drop.
	buf.Reset()
	failures, _ = compare(base, current, 0.25, false, 0, &buf)
	if failures != 0 {
		t.Errorf("gate disabled but failures = %d:\n%s", failures, buf.String())
	}

	// Fold direction: a -count repeat pair folds to max MB/s, so the
	// gate sees 480 (-4%), not the noisy 200 repeat.
	text := "BenchmarkFast-8 100 100 ns/op 480.0 MB/s\nBenchmarkFast-8 100 250 ns/op 200.0 MB/s\n"
	folded, err := parseBench(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	failures, _ = compare(map[string]Entry{"BenchmarkFast": {NsPerOp: 100, MBPerS: 500}}, folded, 0.25, false, 25, &buf)
	if failures != 0 {
		t.Errorf("max-fold MB/s should pass the gate:\n%s", buf.String())
	}
}
