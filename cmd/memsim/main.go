// Command memsim runs the Monte Carlo fault-injection simulator on a
// configured memory system and reports outcome statistics alongside
// the matching Markov-chain prediction.
//
// Example:
//
//	memsim -duplex -n 18 -k 16 -lambda-bit 6e-4 -lambda-sym 2e-4 \
//	       -horizon 48 -trials 50000 -scrub 4 -exp-scrub
//
// Rates here are per HOUR (simulation units); use elevated rates so a
// modest trial count resolves the failure probability, exactly like
// the cross-validation experiment (see DESIGN.md).
//
// The simulation runs on the shared internal/campaign engine, which
// adds resumable checkpointing (-checkpoint) and early stopping once
// the capability-exceeded estimate is resolved (-stop-rel), plus
// machine-readable output (-json).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/arbiter"
	"repro/internal/campaign"
	"repro/internal/duplex"
	"repro/internal/gf"
	"repro/internal/memsim"
	"repro/internal/rs"
	"repro/internal/simplex"
)

func main() {
	var (
		dup        = flag.Bool("duplex", false, "simulate the duplex arrangement")
		n          = flag.Int("n", 18, "codeword symbols")
		k          = flag.Int("k", 16, "dataword symbols")
		m          = flag.Int("m", 8, "bits per symbol")
		lambdaBit  = flag.Float64("lambda-bit", 0, "SEU rate per bit per hour")
		lambdaSym  = flag.Float64("lambda-sym", 0, "permanent fault rate per symbol per hour")
		scrub      = flag.Float64("scrub", 0, "scrub period in hours (0 = off)")
		expScrub   = flag.Bool("exp-scrub", false, "exponential instead of periodic scrub intervals")
		latency    = flag.Float64("latency", 0, "permanent-fault detection latency in hours")
		horizon    = flag.Float64("horizon", 48, "storage time in hours")
		trials     = flag.Int("trials", 10000, "number of independent trials")
		seed       = flag.Int64("seed", 1, "base random seed")
		workers    = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		checkpoint = flag.String("checkpoint", "", "resumable-progress file for long campaigns")
		stopRel    = flag.Float64("stop-rel", 0, "stop once the capability-exceeded 95% CI half-width is below this fraction of the estimate (0 = run all trials)")
		stopMin    = flag.Int("stop-min", 1000, "minimum trials before early stopping")
		jsonOut    = flag.Bool("json", false, "emit the raw campaign result as JSON instead of text")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "memsim: unexpected arguments %q\n", flag.Args())
		os.Exit(2)
	}

	field, err := gf.NewField(*m)
	if err != nil {
		fatal(err)
	}
	code, err := rs.New(field, *n, *k)
	if err != nil {
		fatal(err)
	}
	cfg := memsim.Config{
		Code:             code,
		Duplex:           *dup,
		LambdaBit:        *lambdaBit,
		LambdaSymbol:     *lambdaSym,
		ScrubPeriod:      *scrub,
		ExponentialScrub: *expScrub,
		DetectionLatency: *latency,
		Horizon:          *horizon,
		Trials:           *trials,
		Seed:             *seed,
		Workers:          *workers,
	}
	ecfg := campaign.Config{Checkpoint: *checkpoint}
	if *stopRel > 0 {
		ecfg.Stop = &campaign.EarlyStop{
			Counter:      memsim.CounterCapabilityExceeded,
			RelHalfWidth: *stopRel,
			MinTrials:    *stopMin,
		}
	}
	res, cres, err := memsim.RunCampaign(cfg, ecfg)
	if err != nil {
		fatal(err)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(cres); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Printf("code:            %v  (%s)\n", code, map[bool]string{true: "duplex", false: "simplex"}[*dup])
	fmt.Printf("trials:          %d over %g h (lambda_bit=%g/h, lambda_sym=%g/h)\n",
		res.Trials, *horizon, *lambdaBit, *lambdaSym)
	if cres.EarlyStopped {
		fmt.Printf("early stop:      after %d of %d requested trials (CI half-width <= %g of estimate)\n",
			cres.Trials, cres.Requested, *stopRel)
	}
	if cres.ResumedTrials > 0 {
		fmt.Printf("resumed:         %d trials restored from %s\n", cres.ResumedTrials, *checkpoint)
	}
	fmt.Printf("faults injected: %d SEUs, %d permanent\n", res.SEUs, res.PermanentFaults)
	if res.ScrubOps > 0 {
		fmt.Printf("scrubs:          %d passes, %d entrenched mis-corrections\n",
			res.ScrubOps, res.ScrubMiscorrections)
	}
	fmt.Printf("outcomes:        %d correct, %d wrong output, %d no output\n",
		res.Correct, res.WrongOutput, res.NoOutput)
	lo, hi := memsim.WilsonInterval(res.WrongOutput+res.NoOutput, res.Trials, 1.96)
	fmt.Printf("fail fraction:   %.4e  (95%% CI [%.4e, %.4e])\n", res.FailFraction(), lo, hi)
	clo, chi := memsim.WilsonInterval(res.CapabilityExceeded, res.Trials, 1.96)
	fmt.Printf("cap. exceeded:   %.4e  (95%% CI [%.4e, %.4e])  paper-BER %.4e\n",
		res.CapabilityExceededFraction(), clo, chi, res.PaperBER())

	if *dup && len(res.Verdicts) > 0 {
		fmt.Println("arbiter verdicts:")
		type vc struct {
			v arbiter.Verdict
			c int
		}
		var list []vc
		for v, c := range res.Verdicts {
			list = append(list, vc{v, c})
		}
		sort.Slice(list, func(i, j int) bool { return list[i].c > list[j].c })
		for _, e := range list {
			fmt.Printf("  %-20s %d\n", e.v, e.c)
		}
	}

	// Companion Markov prediction at the same per-hour rates.
	var chainP float64
	if *dup {
		out, err := duplex.FailProbabilities(duplex.Params{
			N: *n, K: *k, M: *m,
			Lambda: *lambdaBit, LambdaE: *lambdaSym, ScrubRate: scrubRate(*scrub),
		}, []float64{*horizon})
		if err != nil {
			fatal(err)
		}
		chainP = out[0]
	} else {
		out, err := simplex.FailProbabilities(simplex.Params{
			N: *n, K: *k, M: *m,
			Lambda: *lambdaBit, LambdaE: *lambdaSym, ScrubRate: scrubRate(*scrub),
		}, []float64{*horizon})
		if err != nil {
			fatal(err)
		}
		chainP = out[0]
	}
	agree := "inside"
	blo, bhi := memsim.WilsonInterval(res.CapabilityExceeded, res.Trials, 4)
	if chainP < blo || chainP > bhi {
		agree = "OUTSIDE"
	}
	fmt.Printf("markov chain:    P_fail = %.4e (%s the Monte Carlo 4-sigma band)\n", chainP, agree)
}

func scrubRate(periodHours float64) float64 {
	if periodHours <= 0 {
		return 0
	}
	return 1 / periodHours
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "memsim: %v\n", err)
	os.Exit(1)
}
