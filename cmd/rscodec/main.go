// Command rscodec demonstrates the Reed-Solomon codec on hex data:
// encode a dataword, optionally corrupt and erase symbols, decode, and
// show every intermediate artifact. It is the quickest way to watch
// errors-and-erasures decoding (and mis-correction) happen.
//
// Examples:
//
//	rscodec -n 18 -k 16 -data 000102030405060708090a0b0c0d0e0f
//	rscodec -n 18 -k 16 -data 000102030405060708090a0b0c0d0e0f -flip 3:ff
//	rscodec -n 36 -k 16 -data 000102030405060708090a0b0c0d0e0f -flip 0:01 -erase 5,9
package main

import (
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/gf"
	"repro/internal/rs"
)

func main() {
	var (
		n     = flag.Int("n", 18, "codeword symbols")
		k     = flag.Int("k", 16, "dataword symbols")
		m     = flag.Int("m", 8, "bits per symbol (hex I/O requires 8)")
		data  = flag.String("data", "", "dataword as hex (k bytes); empty = 00 01 02 ...")
		flips = flag.String("flip", "", "comma-separated pos:xormask corruptions, e.g. 3:ff,7:01")
		erase = flag.String("erase", "", "comma-separated erasure positions, e.g. 5,9")
		quiet = flag.Bool("q", false, "only print the decode verdict")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "rscodec: unexpected arguments %q\n", flag.Args())
		os.Exit(2)
	}

	if *m != 8 {
		fatal(errors.New("hex I/O supports m=8 only"))
	}
	field, err := gf.NewField(*m)
	if err != nil {
		fatal(err)
	}
	code, err := rs.New(field, *n, *k)
	if err != nil {
		fatal(err)
	}

	dataSyms := make([]gf.Elem, *k)
	if *data == "" {
		for i := range dataSyms {
			dataSyms[i] = gf.Elem(i & 0xff)
		}
	} else {
		raw, err := hex.DecodeString(*data)
		if err != nil {
			fatal(fmt.Errorf("bad -data: %w", err))
		}
		if len(raw) != *k {
			fatal(fmt.Errorf("-data has %d bytes, want k=%d", len(raw), *k))
		}
		for i, b := range raw {
			dataSyms[i] = gf.Elem(b)
		}
	}

	codeword, err := code.Encode(dataSyms)
	if err != nil {
		fatal(err)
	}
	received := append([]gf.Elem(nil), codeword...)
	for _, spec := range splitNonEmpty(*flips) {
		pos, mask, err := parseFlip(spec)
		if err != nil {
			fatal(err)
		}
		if pos < 0 || pos >= *n {
			fatal(fmt.Errorf("flip position %d out of range", pos))
		}
		received[pos] ^= gf.Elem(mask)
	}
	var erasures []int
	for _, spec := range splitNonEmpty(*erase) {
		pos, err := strconv.Atoi(spec)
		if err != nil {
			fatal(fmt.Errorf("bad -erase entry %q: %w", spec, err))
		}
		erasures = append(erasures, pos)
	}

	if !*quiet {
		fmt.Printf("code:      %v (corrects 2e+er <= %d)\n", code, code.Redundancy())
		fmt.Printf("dataword:  %s\n", hexWord(dataSyms))
		fmt.Printf("codeword:  %s\n", hexWord(codeword))
		fmt.Printf("received:  %s\n", hexWord(received))
		if len(erasures) > 0 {
			fmt.Printf("erasures:  %v\n", erasures)
		}
	}

	res, err := code.Decode(received, erasures)
	if err != nil {
		fmt.Printf("decode:    DETECTED FAILURE (%v)\n", err)
		os.Exit(1)
	}
	status := "clean"
	if res.Flag {
		status = fmt.Sprintf("corrected %d symbol(s) at %v", res.Corrections, res.ErrorPositions)
	}
	fmt.Printf("decode:    OK, %s\n", status)
	if !*quiet {
		fmt.Printf("decoded:   %s\n", hexWord(res.Data))
	}
	for i := range dataSyms {
		if res.Data[i] != dataSyms[i] {
			fmt.Println("verdict:   MIS-CORRECTION — valid codeword, wrong data")
			os.Exit(1)
		}
	}
	fmt.Println("verdict:   data recovered exactly")
}

func parseFlip(spec string) (pos int, mask uint64, err error) {
	parts := strings.SplitN(spec, ":", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("bad -flip entry %q, want pos:xormask", spec)
	}
	pos, err = strconv.Atoi(parts[0])
	if err != nil {
		return 0, 0, fmt.Errorf("bad -flip position %q: %w", parts[0], err)
	}
	mask, err = strconv.ParseUint(parts[1], 16, 8)
	if err != nil {
		return 0, 0, fmt.Errorf("bad -flip mask %q: %w", parts[1], err)
	}
	if mask == 0 {
		return 0, 0, fmt.Errorf("-flip mask must be nonzero")
	}
	return pos, mask, nil
}

func splitNonEmpty(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ",")
}

func hexWord(w []gf.Elem) string {
	var b strings.Builder
	for i, s := range w {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%02x", s)
	}
	return b.String()
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "rscodec: %v\n", err)
	os.Exit(1)
}
