// Command bercurve evaluates the BER(t) trajectory of one configured
// memory system through the paper's Markov models and prints it as a
// TSV table or an ASCII plot.
//
// Examples:
//
//	bercurve -arrangement duplex -n 18 -k 16 -seu 1.7e-5 -scrub 900 -hours 48
//	bercurve -arrangement simplex -n 36 -k 16 -perm 1e-7 -months 24 -plot
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/reliability"
	"repro/internal/textplot"
)

func main() {
	var (
		arrangement = flag.String("arrangement", "simplex", "memory arrangement: simplex or duplex")
		n           = flag.Int("n", 18, "codeword symbols")
		k           = flag.Int("k", 16, "dataword symbols")
		m           = flag.Int("m", 8, "bits per symbol")
		seu         = flag.Float64("seu", 0, "SEU rate per bit per day")
		perm        = flag.Float64("perm", 0, "permanent fault rate per symbol per day")
		scrubSec    = flag.Float64("scrub", 0, "scrubbing period in seconds (0 = off)")
		hours       = flag.Float64("hours", 0, "storage horizon in hours")
		months      = flag.Float64("months", 0, "storage horizon in months (overrides -hours)")
		points      = flag.Int("points", 13, "number of evaluation points")
		plot        = flag.Bool("plot", false, "render an ASCII plot instead of TSV")
	)
	flag.Parse()

	var arr core.Arrangement
	switch *arrangement {
	case "simplex":
		arr = core.Simplex
	case "duplex":
		arr = core.Duplex
	default:
		fmt.Fprintf(os.Stderr, "bercurve: unknown arrangement %q\n", *arrangement)
		os.Exit(2)
	}

	horizon := *hours
	xLabel := "hours"
	if *months > 0 {
		horizon = reliability.Months(*months)
		xLabel = "months"
	}
	if horizon <= 0 {
		fmt.Fprintln(os.Stderr, "bercurve: set a horizon with -hours or -months")
		os.Exit(2)
	}
	grid, err := reliability.HoursRange(0, horizon, *points)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bercurve: %v\n", err)
		os.Exit(2)
	}

	cfg := core.Config{
		Arrangement:         arr,
		Code:                core.CodeSpec{N: *n, K: *k, M: *m},
		SEUPerBitDay:        *seu,
		ErasurePerSymbolDay: *perm,
		ScrubPeriodSeconds:  *scrubSec,
	}
	curve, err := core.Evaluate(cfg, grid)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bercurve: %v\n", err)
		os.Exit(1)
	}

	x := grid
	if xLabel == "months" {
		x = make([]float64, len(grid))
		for i, h := range grid {
			x[i] = h / reliability.HoursPerMonth
		}
	}
	series := []textplot.Series{{Label: cfg.String(), X: x, Y: curve.BER}}
	if *plot {
		p := textplot.Plot{
			Title:  cfg.String(),
			XLabel: xLabel,
			YLabel: "BER",
			LogY:   true,
			Series: series,
		}
		fmt.Print(p.Render())
		return
	}
	if err := textplot.WriteTSV(os.Stdout, xLabel, series); err != nil {
		fmt.Fprintf(os.Stderr, "bercurve: %v\n", err)
		os.Exit(1)
	}
}
