// Command bercurve evaluates the BER(t) trajectory of one configured
// memory system through the paper's Markov models and prints it as a
// TSV table or an ASCII plot. The grid points are solved as sharded
// trials on the shared internal/campaign engine.
//
// Examples:
//
//	bercurve -arrangement duplex -n 18 -k 16 -seu 1.7e-5 -scrub 900 -hours 48
//	bercurve -arrangement simplex -n 36 -k 16 -perm 1e-7 -months 24 -plot
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/campaign"
	"repro/internal/campaign/spec"
	"repro/internal/textplot"
)

func main() {
	var (
		arrangement = flag.String("arrangement", "simplex", "memory arrangement: simplex or duplex")
		n           = flag.Int("n", 18, "codeword symbols")
		k           = flag.Int("k", 16, "dataword symbols")
		m           = flag.Int("m", 8, "bits per symbol")
		seu         = flag.Float64("seu", 0, "SEU rate per bit per day")
		perm        = flag.Float64("perm", 0, "permanent fault rate per symbol per day")
		scrubSec    = flag.Float64("scrub", 0, "scrubbing period in seconds (0 = off)")
		hours       = flag.Float64("hours", 0, "storage horizon in hours")
		months      = flag.Float64("months", 0, "storage horizon in months (overrides -hours)")
		points      = flag.Int("points", 13, "number of evaluation points")
		plot        = flag.Bool("plot", false, "render an ASCII plot instead of TSV")
		workers     = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "bercurve: unexpected arguments %q\n", flag.Args())
		os.Exit(2)
	}

	scn, err := spec.NewBERCurve(spec.BERCurveParams{
		Arrangement: *arrangement,
		N:           *n, K: *k, M: *m,
		SEUPerBit:  *seu,
		PermPerSym: *perm,
		ScrubSec:   *scrubSec,
		Hours:      *hours,
		Months:     *months,
		Points:     *points,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "bercurve: %v\n", err)
		os.Exit(2)
	}
	// One grid point per shard, so the (few, independent) chain
	// solves actually spread across the worker pool.
	cres, err := campaign.Run(scn, campaign.Config{Workers: *workers, ShardSize: 1})
	if err != nil {
		fmt.Fprintf(os.Stderr, "bercurve: %v\n", err)
		os.Exit(1)
	}

	xs, ys := cres.SeriesPoints(spec.SeriesBER)
	cfg := scn.Config()
	series := []textplot.Series{{Label: cfg.String(), X: xs, Y: ys}}
	if *plot {
		p := textplot.Plot{
			Title:  cfg.String(),
			XLabel: scn.XLabel(),
			YLabel: "BER",
			LogY:   true,
			Series: series,
		}
		fmt.Print(p.Render())
		return
	}
	if err := textplot.WriteTSV(os.Stdout, scn.XLabel(), series); err != nil {
		fmt.Fprintf(os.Stderr, "bercurve: %v\n", err)
		os.Exit(1)
	}
}
