// Command campaign runs a declarative multi-scenario spec file on the
// shared experiment engine: Monte Carlo fault injection, multi-bit
// upset comparisons, page-level interleaving sweeps, whole-memory
// cross-validation, analytic BER curves, design-space sweeps and
// whole registry experiments, all sharded over a worker pool with
// deterministic seeding, optional checkpointing, early stopping and
// pass/fail tolerance bands.
//
// Usage:
//
//	campaign -spec examples/campaign/spec.json
//	campaign -spec examples/campaign/matrix.json -out results/
//	campaign -spec spec.json -list
//
// A spec entry with a "matrix" field expands into the cross-product
// of its parameter lists (-list shows the expanded grid); the cells
// run as independent scenarios and their results are additionally
// summarized as one grid table plus a heatmap of the headline counter
// fraction per matrix entry. A "replicates" field adds a seed axis
// (independent RNG replicates of the identical configuration).
//
// # Rare events
//
// A scenario with a "sampling" block runs under importance sampling:
// {"method":"tilt","factor":F} jointly multiplies the fault rates by
// F and reweights every trial by its likelihood ratio, and
// {"method":"auto"} solves the factor from the analytic simplex chain
// and gates the weighted estimate against the chain's untilted
// answer. Weighted scenarios render the biased-measure counts plus
// the weighted estimate, its relative error and the effective sample
// size; a "stop" rule with "rel_half_width" stops them once the
// estimate's relative error is small enough. A file-level "adaptive"
// block {"round_trials":N,"max_rounds":M} re-plans the trial budget
// across scenarios between merge rounds, spending each round's trials
// where the relative error is widest; adaptive specs run
// single-process (-partition/-merge/-serve are rejected). See
// examples/campaign/rare.json.
//
// # Multi-process sharding
//
// The engine's planner deterministically splits every scenario's
// shard range into N disjoint contiguous slices, so a campaign can
// run as N independent processes (different machines included — the
// slices share nothing but the spec file):
//
//	campaign -spec spec.json -partition 0/3 -partials parts/
//	campaign -spec spec.json -partition 1/3 -partials parts/
//	campaign -spec spec.json -partition 2/3 -partials parts/
//	campaign -spec spec.json -merge -partials parts/ -out results/
//
// Each -partition run executes only its slice of every scenario and
// writes a self-describing partial-result artifact under -partials
// (append-only, resumable: rerun the same command after a crash and
// only missing shards are recomputed). Artifacts are fingerprinted
// with a digest of the entry's kind and params, so editing a
// scenario's params in the spec makes both resume and merge refuse
// the stale artifacts instead of silently folding shards computed
// under the old parameters (delete the partials or revert the edit;
// artifacts from before the digest existed are exempt). The -merge
// run folds the partials into results that are bit-identical to an
// unpartitioned run — including early stopping, which the merger
// re-decides on the contiguous shard prefix (partitions deliberately
// over-run). With
// -stream, the merge feeds samples straight from the partial
// artifacts into the CSV artifacts without materializing them, so
// million-sample campaigns merge in bounded memory (JSON artifacts
// then omit the samples array, and per-scenario rendering is
// suppressed).
//
// # Distributed fabric
//
// The same partitioning can run as a coordinated fleet instead of
// hand-launched -partition processes. With -spec, -serve is the
// legacy single-campaign coordinator: it registers the spec as its
// only job, hands slice leases to executors over HTTP, and merges in
// this process once every slice arrived:
//
//	campaign -spec spec.json -serve :9618 -partials work/ -out results/
//	campaign -executor http://coordinator:9618        # on any machine, any number of times
//	campaign -status http://coordinator:9618          # progress, lease states, trials/sec
//	campaign -status http://coordinator:9618 -json    # the same snapshot as JSON
//
// Without -spec, -serve is a multi-tenant job service: campaigns are
// submitted while it runs, many jobs share one executor fleet, and
// each job merges server-side into its own namespace:
//
//	campaign -serve :9618 -partials work/ -tenants alice=s3cret:4,bob=hunter2
//	campaign -submit http://svc:9618 -spec spec.json -token s3cret   # prints the job URL
//	campaign -jobs   http://svc:9618                                 # job table
//	campaign -watch  http://svc:9618/jobs/j-abc123def456             # block until done; prints results dir
//	campaign -executor http://svc:9618 -token s3cret                 # shared fleet, drains across jobs
//
// Jobs are keyed by the spec's content digest (resubmitting identical
// bytes returns the same job), and a spec that fails validation is
// recorded as a failed job — visible in -jobs and -status — rather
// than vanishing. The scheduler hands any executor work from any
// runnable job, round-robin across jobs for fair-share, and a
// tenant's maxLeases caps its concurrently leased slices so one
// tenant cannot starve the fleet. When -tenants is set, every
// mutating request (submit, delete, lease, renew, upload) must carry
// a matching bearer token; reads stay open. DELETE on a job's URL
// cancels it. -drain-after N makes the service exit once N jobs have
// been submitted and all of them finished (the CI shape); otherwise
// it serves until killed.
//
// In both modes every scenario is planned into -slices deterministic
// slices; executors are stateless and job-agnostic (each lease names
// its job and spec digest; the executor fetches and caches the spec
// per job, so it needs nothing but the URL), compute their slice in
// memory and upload the partial artifact gzip-compressed (stored
// as-is; the artifact reader sniffs the compression), renewing their
// lease while they work. A lease that expires — executor crashed,
// hung, or was killed — is stolen by the next executor asking for
// work, so the campaign finishes without operator action; duplicate
// uploads of a re-run slice are byte-identical and ignored. Uploads
// are validated against the slice's plan (geometry, partition, params
// digest, completeness) before they land in the job's per-spec
// namespace under -partials, the registry re-decides early stopping
// on the contiguous shard prefix as uploads arrive (cancelling slices
// past the stopping point), and when every slice is in, the job
// merges — producing results bit-identical to an unpartitioned run.
// -exec-delay delays an executor's uploads (a fault-injection hook
// for exercising lease expiry), and -exec-name labels it in
// coordinator logs.
//
// With -out, every scenario additionally writes <name>.json (the raw
// engine result) and <name>.csv (counters and samples) into the
// directory; matrix cells land in a subdirectory named after the
// matrix entry, one CSV per cell. The exit status is non-zero if any
// scenario fails to build or run, or if any expectation band is
// violated — which is what lets CI gate on probability drift.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/campaign"
	"repro/internal/campaign/spec"
	"repro/internal/expdata"
)

func main() {
	var (
		specPath  = flag.String("spec", "", "campaign spec file (JSON); required")
		outDir    = flag.String("out", "", "directory for per-scenario JSON/CSV results")
		workers   = flag.Int("workers", 0, "override the spec's worker count (0 = keep)")
		list      = flag.Bool("list", false, "list the spec's scenarios and exit")
		quiet     = flag.Bool("q", false, "suppress per-scenario rendering, print only verdicts")
		partition = flag.String("partition", "", "run only slice i/N of every scenario (e.g. 0/3), writing partial artifacts under -partials")
		merge     = flag.Bool("merge", false, "merge the partial artifacts under -partials instead of running scenarios")
		partials  = flag.String("partials", "", "directory of partial-result artifacts (required with -partition or -merge)")
		stream    = flag.Bool("stream", false, "with -merge and -out: stream samples into the CSV artifacts instead of holding them in memory (implies -q; JSON artifacts omit samples)")

		serveAddr    = flag.String("serve", "", "coordinate the spec's campaigns over HTTP on this address (e.g. :9618): executors pull slice leases, the merge runs here once every slice arrived")
		executorURL  = flag.String("executor", "", "run as a stateless fabric executor against the coordinator at this base URL (fetches the spec from it; no -spec needed)")
		statusURL    = flag.String("status", "", "print the fabric coordinator's status (per-slice lease state, trials/sec, merge progress) at this base URL and exit")
		statusJSON   = flag.Bool("json", false, "with -status: print the coordinator's status snapshot as JSON instead of text")
		slices       = flag.Int("slices", 0, "with -serve: slices per scenario, the work-stealing granularity (0 = 8)")
		leaseTimeout = flag.Duration("lease-timeout", 0, "with -serve: how long a leased slice may go without an upload or renewal before another executor steals it (0 = 1m)")
		execName     = flag.String("exec-name", "", "with -executor: executor name in leases and coordinator logs (default: host:pid)")
		execDelay    = flag.Duration("exec-delay", 0, "with -executor: sleep between computing a slice and uploading it — a fault-injection hook for testing lease expiry and work stealing")

		submitURL  = flag.String("submit", "", "submit -spec as a job to the fabric service at this base URL; prints the job URL")
		jobsURL    = flag.String("jobs", "", "list the jobs of the fabric service at this base URL and exit")
		watchURL   = flag.String("watch", "", "poll the job at this URL (as printed by -submit) until it reaches a terminal state; prints its results directory on success")
		token      = flag.String("token", "", "bearer token for -submit/-executor against a service running with -tenants")
		tenants    = flag.String("tenants", "", "with -serve: comma-separated name=token[:maxLeases] credentials; mutating requests must then authenticate, and maxLeases caps a tenant's concurrently leased slices")
		drainAfter = flag.Int("drain-after", 0, "with -serve and no -spec: exit once this many jobs were submitted and all finished (0 = serve until killed)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "campaign: unexpected arguments %q\n", flag.Args())
		os.Exit(2)
	}
	if *statusURL != "" {
		os.Exit(printStatus(*statusURL, *statusJSON))
	}
	if *statusJSON {
		fatal(fmt.Errorf("-json is a -status output mode; pass -status too"))
	}
	if *jobsURL != "" {
		os.Exit(runJobList(*jobsURL))
	}
	if *watchURL != "" {
		os.Exit(runWatch(*watchURL))
	}
	if *executorURL != "" {
		// Executors are stateless: specs come from the service, so a
		// -spec here would be a second, possibly divergent truth.
		if *specPath != "" {
			fatal(fmt.Errorf("-executor fetches specs from the coordinator; drop -spec"))
		}
		os.Exit(runExecutorMode(*executorURL, *execName, *token, *execDelay, *workers))
	}
	if *submitURL != "" {
		if *specPath == "" {
			fatal(fmt.Errorf("-submit posts a spec to a job service; pass -spec too"))
		}
		os.Exit(runSubmit(*submitURL, *specPath, *token))
	}
	if (*tenants != "" || *drainAfter != 0) && *serveAddr == "" {
		fatal(fmt.Errorf("-tenants/-drain-after configure the -serve service"))
	}
	if *serveAddr != "" && *specPath == "" {
		// Multi-tenant job service: no campaign of its own, jobs arrive
		// over POST /jobs and merge server-side.
		if *partials == "" {
			fatal(fmt.Errorf("-serve needs -partials, the work directory job namespaces land in"))
		}
		if *partition != "" || *merge || *outDir != "" {
			fatal(fmt.Errorf("the job service schedules and merges per job; drop -partition/-merge/-out"))
		}
		os.Exit(runService(serveOptions{
			addr:         *serveAddr,
			baseDir:      *partials,
			slices:       *slices,
			leaseTimeout: *leaseTimeout,
			tenants:      *tenants,
			drainAfter:   *drainAfter,
		}))
	}
	if *specPath == "" {
		fmt.Fprintln(os.Stderr, "campaign: -spec is required")
		flag.Usage()
		os.Exit(2)
	}
	if *serveAddr != "" && (*partition != "" || *merge) {
		fatal(fmt.Errorf("-serve plans and merges itself; it is exclusive with -partition/-merge"))
	}
	if *serveAddr != "" && *partials == "" {
		fatal(fmt.Errorf("-serve needs -partials, the work directory uploaded slices land in"))
	}
	var part campaign.Partition
	if *partition != "" {
		if *merge {
			fatal(fmt.Errorf("-partition and -merge are mutually exclusive (merge after every partition finished)"))
		}
		p, err := campaign.ParsePartition(*partition)
		if err != nil {
			fatal(err)
		}
		part = p
	}
	if (*partition != "" || *merge) && *partials == "" {
		fatal(fmt.Errorf("-partition/-merge need -partials, the partial-artifact directory"))
	}
	if *partition != "" && *outDir != "" {
		// Rendering, expectations and artifacts are all deferred to
		// the merge; accepting -out here would exit 0 with an empty
		// results directory.
		fatal(fmt.Errorf("-out applies to the -merge step, not -partition runs"))
	}
	if *stream {
		if (!*merge && *serveAddr == "") || *outDir == "" {
			// Without an output directory there is nowhere to stream
			// to; silently falling back to an in-memory merge would be
			// exactly the unbounded behavior -stream exists to avoid.
			fatal(fmt.Errorf("-stream needs -merge and -out"))
		}
		*quiet = true // sample-based renders cannot run without materialized samples
	}

	f, err := spec.Load(*specPath)
	if err != nil {
		fatal(err)
	}
	if *workers > 0 {
		f.Workers = *workers
	}
	if f.Adaptive != nil && (*partition != "" || *merge || *serveAddr != "") {
		// The adaptive allocator owns sharding: it re-plans the trial
		// budget between rounds, which a fixed partition or a fabric
		// lease schedule cannot follow.
		fatal(fmt.Errorf("spec has an adaptive block, which runs single-process; drop -partition/-merge/-serve"))
	}
	built, err := f.BuildAll()
	if err != nil {
		fatal(err)
	}
	if *list {
		for _, b := range built {
			fmt.Printf("%-20s %-12s %s\n", b.Entry.Name, b.Entry.Kind, b.Scenario.Name())
		}
		return
	}

	if *partition != "" {
		os.Exit(runPartition(f, built, part, *partials))
	}
	if *serveAddr != "" {
		os.Exit(runServe(f, built, serveOptions{
			specPath:     *specPath,
			addr:         *serveAddr,
			baseDir:      *partials,
			slices:       *slices,
			leaseTimeout: *leaseTimeout,
			outDir:       *outDir,
			quiet:        *quiet,
			stream:       *stream,
			tenants:      *tenants,
		}))
	}
	os.Exit(runCampaigns(f, built, runOptions{
		outDir:   *outDir,
		quiet:    *quiet,
		merge:    *merge,
		stream:   *stream,
		dir:      *partials,
		adaptive: f.Adaptive != nil,
	}))
}

// runPartition executes one slice of every scenario, writing partial
// artifacts; expectations and rendering wait for the merge.
func runPartition(f *spec.File, built []*spec.Built, part campaign.Partition, dir string) int {
	failures := 0
	for _, b := range built {
		partial, err := b.RunPartition(f, part, dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "campaign: %s: %v\n", b.Entry.Name, err)
			failures++
			continue
		}
		fmt.Printf("%-40s partition %s: %d trials (%d resumed) -> %s\n",
			b.Entry.Name, part, partial.DoneTrials(), partial.ResumedTrials(), partial.Path())
		partial.Close()
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "campaign: %d failure(s)\n", failures)
		return 1
	}
	return 0
}

type runOptions struct {
	outDir   string
	quiet    bool
	merge    bool // obtain results by merging partials instead of running
	stream   bool // stream samples to CSV during the merge
	dir      string
	adaptive bool // spec has an adaptive block: results come from spec.RunAdaptive
}

// runCampaigns obtains every scenario's result (running it, or
// merging its partial artifacts), renders, checks expectations and
// writes artifacts.
func runCampaigns(f *spec.File, built []*spec.Built, opts runOptions) int {
	if opts.outDir != "" {
		if err := os.MkdirAll(opts.outDir, 0o755); err != nil {
			fatal(err)
		}
	}

	// Adaptive specs compute every result up front: RunAdaptive
	// interleaves the scenarios in allocation rounds, so results only
	// exist once the whole loop converged. Rendering, expectations and
	// artifacts then reuse the ordinary per-scenario flow below.
	var adaptiveResults []*campaign.Result
	if opts.adaptive {
		dir := opts.dir
		if dir == "" {
			tmp, err := os.MkdirTemp("", "campaign-adaptive-")
			if err != nil {
				fatal(err)
			}
			defer os.RemoveAll(tmp)
			dir = tmp
		}
		logf := func(format string, args ...any) { fmt.Printf(format+"\n", args...) }
		if opts.quiet {
			logf = nil
		}
		res, err := spec.RunAdaptive(f, built, dir, logf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "campaign: %v\n", err)
			return 1
		}
		adaptiveResults = res
	}

	failures := 0
	// Matrix cells are summarized as one grid table plus heatmap per
	// origin after all scenarios have run; their per-cell rendering is
	// suppressed (a 12-cell sweep would drown the output).
	var gridOrder []string
	grids := make(map[string][]spec.GridCell)
	cellCount := make(map[string]int)
	for _, b := range built {
		cellCount[b.Entry.MatrixOrigin]++
	}
	headerPrinted := make(map[string]bool)
	for bi, b := range built {
		// One header per matrix (at its first cell), not one per cell —
		// the cells' results arrive as a single grid table at the end
		// (which also shows each cell's own trial count; "trials" can
		// itself be a swept axis).
		verb := "running"
		if opts.merge {
			verb = "merging"
		}
		if origin := b.Entry.MatrixOrigin; origin != "" {
			if !headerPrinted[origin] {
				headerPrinted[origin] = true
				fmt.Printf("%s matrix %s: %d %s cells...\n", verb, origin, cellCount[origin], b.Entry.Kind)
			}
		} else {
			fmt.Printf("=== %s (%s, %d trials) ===\n", b.Entry.Name, b.Entry.Kind, b.Scenario.Trials())
		}
		var cres *campaign.Result
		var err error
		if adaptiveResults != nil {
			cres = adaptiveResults[bi]
		} else {
			cres, err = obtainResult(f, b, opts)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "campaign: %s: %v\n", b.Entry.Name, err)
			failures++
			continue
		}
		if origin := b.Entry.MatrixOrigin; origin != "" {
			if _, ok := grids[origin]; !ok {
				gridOrder = append(gridOrder, origin)
			}
			grids[origin] = append(grids[origin], spec.GridCell{Built: b, Result: cres})
		} else if !opts.quiet {
			if err := b.Render(os.Stdout, cres); err != nil {
				fmt.Fprintf(os.Stderr, "campaign: %s: render: %v\n", b.Entry.Name, err)
				failures++
			}
		}
		for _, err := range b.CheckExpectations(cres) {
			fmt.Fprintf(os.Stderr, "campaign: EXPECTATION FAILED: %v\n", err)
			failures++
		}
		if opts.outDir != "" && !opts.stream {
			if err := b.WriteArtifacts(opts.outDir, cres); err != nil {
				fmt.Fprintf(os.Stderr, "campaign: %s: %v\n", b.Entry.Name, err)
				failures++
			}
		}
		if b.Entry.MatrixOrigin == "" {
			fmt.Println()
		}
	}
	if !opts.quiet {
		if len(gridOrder) > 0 {
			fmt.Println()
		}
		for _, origin := range gridOrder {
			if err := spec.RenderGrid(os.Stdout, grids[origin]); err != nil {
				fmt.Fprintf(os.Stderr, "campaign: %s: grid: %v\n", origin, err)
				failures++
			}
			fmt.Println()
			if err := spec.RenderGridHeatmap(os.Stdout, grids[origin]); err != nil {
				fmt.Fprintf(os.Stderr, "campaign: %s: heatmap: %v\n", origin, err)
				failures++
			}
			fmt.Println()
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "campaign: %d failure(s)\n", failures)
		return 1
	}
	return 0
}

// obtainResult runs the scenario in-process, or — in merge mode —
// folds its partial artifacts, optionally streaming samples straight
// into the CSV artifact.
func obtainResult(f *spec.File, b *spec.Built, opts runOptions) (*campaign.Result, error) {
	if !opts.merge {
		return campaign.Run(b.Scenario, b.EngineConfig(f))
	}
	if !opts.stream {
		return b.MergePartials(f, opts.dir, nil)
	}
	// Stream into a temp file and rename only on success, so a failed
	// merge never leaves a silently truncated CSV in the results
	// directory for downstream globs to ingest.
	csvPath := filepath.Join(opts.outDir, filepath.FromSlash(b.Entry.ArtifactPath())+".csv")
	if err := os.MkdirAll(filepath.Dir(csvPath), 0o755); err != nil {
		return nil, err
	}
	csvTmp := csvPath + ".tmp"
	csvFile, err := os.Create(csvTmp)
	if err != nil {
		return nil, err
	}
	defer func() {
		csvFile.Close()
		os.Remove(csvTmp) // no-op after the successful rename
	}()
	sink := &noteKeepingSink{CampaignCSVStream: expdata.NewCampaignCSVStream(csvFile)}
	cres, err := b.MergePartials(f, opts.dir, sink)
	if err != nil {
		return nil, err
	}
	if err := sink.Flush(); err != nil {
		return nil, err
	}
	if err := csvFile.Close(); err != nil {
		return nil, err
	}
	if err := os.Rename(csvTmp, csvPath); err != nil {
		return nil, err
	}
	// The JSON artifact carries counters, bookkeeping and notes
	// (bounded, unlike samples); only the sample array lives
	// exclusively in the CSV just streamed.
	cres.Notes = sink.notes
	if err := spec.WriteResultJSON(filepath.Join(opts.outDir, filepath.FromSlash(b.Entry.ArtifactPath())+".json"), cres); err != nil {
		return nil, err
	}
	return cres, nil
}

// noteKeepingSink streams samples to the CSV writer but retains notes
// — the campaign CSV schema has no note rows, and dropping them from
// the JSON artifact too would silently lose data a non-stream merge
// keeps. Notes are per-trial annotations, bounded like counters, so
// holding them does not reopen the memory bound -stream exists for.
type noteKeepingSink struct {
	*expdata.CampaignCSVStream
	notes []campaign.Note
}

func (s *noteKeepingSink) Note(n campaign.Note) error {
	s.notes = append(s.notes, n)
	return nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "campaign: %v\n", err)
	os.Exit(1)
}
