// Command campaign runs a declarative multi-scenario spec file on the
// shared experiment engine: Monte Carlo fault injection, multi-bit
// upset comparisons, analytic BER curves, design-space sweeps and
// whole registry experiments, all sharded over a worker pool with
// deterministic seeding, optional checkpointing, early stopping and
// pass/fail tolerance bands.
//
// Usage:
//
//	campaign -spec examples/campaign/spec.json
//	campaign -spec examples/campaign/nightly.json -out results/
//	campaign -spec spec.json -list
//
// With -out, every scenario additionally writes <name>.json (the raw
// engine result) and <name>.csv (counters and samples) into the
// directory. The exit status is non-zero if any scenario fails to
// build or run, or if any expectation band is violated — which is
// what lets CI gate on probability drift.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/campaign"
	"repro/internal/campaign/spec"
	"repro/internal/expdata"
)

func main() {
	var (
		specPath = flag.String("spec", "", "campaign spec file (JSON); required")
		outDir   = flag.String("out", "", "directory for per-scenario JSON/CSV results")
		workers  = flag.Int("workers", 0, "override the spec's worker count (0 = keep)")
		list     = flag.Bool("list", false, "list the spec's scenarios and exit")
		quiet    = flag.Bool("q", false, "suppress per-scenario rendering, print only verdicts")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "campaign: unexpected arguments %q\n", flag.Args())
		os.Exit(2)
	}
	if *specPath == "" {
		fmt.Fprintln(os.Stderr, "campaign: -spec is required")
		flag.Usage()
		os.Exit(2)
	}

	f, err := spec.Load(*specPath)
	if err != nil {
		fatal(err)
	}
	if *workers > 0 {
		f.Workers = *workers
	}
	built, err := f.BuildAll()
	if err != nil {
		fatal(err)
	}
	if *list {
		for _, b := range built {
			fmt.Printf("%-20s %-12s %s\n", b.Entry.Name, b.Entry.Kind, b.Scenario.Name())
		}
		return
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
	}

	failures := 0
	for _, b := range built {
		fmt.Printf("=== %s (%s, %d trials) ===\n", b.Entry.Name, b.Entry.Kind, b.Scenario.Trials())
		cres, err := campaign.Run(b.Scenario, b.EngineConfig(f))
		if err != nil {
			fmt.Fprintf(os.Stderr, "campaign: %s: %v\n", b.Entry.Name, err)
			failures++
			continue
		}
		if !*quiet {
			if err := b.Render(os.Stdout, cres); err != nil {
				fmt.Fprintf(os.Stderr, "campaign: %s: render: %v\n", b.Entry.Name, err)
				failures++
			}
		}
		for _, err := range b.CheckExpectations(cres) {
			fmt.Fprintf(os.Stderr, "campaign: EXPECTATION FAILED: %v\n", err)
			failures++
		}
		if *outDir != "" {
			if err := writeArtifacts(*outDir, b.Entry.Name, cres); err != nil {
				fmt.Fprintf(os.Stderr, "campaign: %s: %v\n", b.Entry.Name, err)
				failures++
			}
		}
		fmt.Println()
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "campaign: %d failure(s)\n", failures)
		os.Exit(1)
	}
}

func writeArtifacts(dir, name string, cres *campaign.Result) error {
	data, err := json.MarshalIndent(cres, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, name+".json"), append(data, '\n'), 0o644); err != nil {
		return err
	}
	csvFile, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		return err
	}
	defer csvFile.Close()
	return expdata.WriteCampaignCSV(csvFile, cres)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "campaign: %v\n", err)
	os.Exit(1)
}
