// Command campaign runs a declarative multi-scenario spec file on the
// shared experiment engine: Monte Carlo fault injection, multi-bit
// upset comparisons, page-level interleaving sweeps, whole-memory
// cross-validation, analytic BER curves, design-space sweeps and
// whole registry experiments, all sharded over a worker pool with
// deterministic seeding, optional checkpointing, early stopping and
// pass/fail tolerance bands.
//
// Usage:
//
//	campaign -spec examples/campaign/spec.json
//	campaign -spec examples/campaign/matrix.json -out results/
//	campaign -spec spec.json -list
//
// A spec entry with a "matrix" field expands into the cross-product
// of its parameter lists (-list shows the expanded grid); the cells
// run as independent scenarios and their results are additionally
// summarized as one grid table per matrix entry.
//
// With -out, every scenario additionally writes <name>.json (the raw
// engine result) and <name>.csv (counters and samples) into the
// directory; matrix cells land in a subdirectory named after the
// matrix entry, one CSV per cell. The exit status is non-zero if any
// scenario fails to build or run, or if any expectation band is
// violated — which is what lets CI gate on probability drift.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/campaign"
	"repro/internal/campaign/spec"
	"repro/internal/expdata"
)

func main() {
	var (
		specPath = flag.String("spec", "", "campaign spec file (JSON); required")
		outDir   = flag.String("out", "", "directory for per-scenario JSON/CSV results")
		workers  = flag.Int("workers", 0, "override the spec's worker count (0 = keep)")
		list     = flag.Bool("list", false, "list the spec's scenarios and exit")
		quiet    = flag.Bool("q", false, "suppress per-scenario rendering, print only verdicts")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "campaign: unexpected arguments %q\n", flag.Args())
		os.Exit(2)
	}
	if *specPath == "" {
		fmt.Fprintln(os.Stderr, "campaign: -spec is required")
		flag.Usage()
		os.Exit(2)
	}

	f, err := spec.Load(*specPath)
	if err != nil {
		fatal(err)
	}
	if *workers > 0 {
		f.Workers = *workers
	}
	built, err := f.BuildAll()
	if err != nil {
		fatal(err)
	}
	if *list {
		for _, b := range built {
			fmt.Printf("%-20s %-12s %s\n", b.Entry.Name, b.Entry.Kind, b.Scenario.Name())
		}
		return
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
	}

	failures := 0
	// Matrix cells are summarized as one grid table per origin after
	// all scenarios have run; their per-cell rendering is suppressed
	// (a 12-cell sweep would drown the output).
	var gridOrder []string
	grids := make(map[string][]spec.GridCell)
	cellCount := make(map[string]int)
	for _, b := range built {
		cellCount[b.Entry.MatrixOrigin]++
	}
	headerPrinted := make(map[string]bool)
	for _, b := range built {
		// One header per matrix (at its first cell), not one per cell —
		// the cells' results arrive as a single grid table at the end
		// (which also shows each cell's own trial count; "trials" can
		// itself be a swept axis).
		if origin := b.Entry.MatrixOrigin; origin != "" {
			if !headerPrinted[origin] {
				headerPrinted[origin] = true
				fmt.Printf("running matrix %s: %d %s cells...\n", origin, cellCount[origin], b.Entry.Kind)
			}
		} else {
			fmt.Printf("=== %s (%s, %d trials) ===\n", b.Entry.Name, b.Entry.Kind, b.Scenario.Trials())
		}
		cres, err := campaign.Run(b.Scenario, b.EngineConfig(f))
		if err != nil {
			fmt.Fprintf(os.Stderr, "campaign: %s: %v\n", b.Entry.Name, err)
			failures++
			continue
		}
		if origin := b.Entry.MatrixOrigin; origin != "" {
			if _, ok := grids[origin]; !ok {
				gridOrder = append(gridOrder, origin)
			}
			grids[origin] = append(grids[origin], spec.GridCell{Built: b, Result: cres})
		} else if !*quiet {
			if err := b.Render(os.Stdout, cres); err != nil {
				fmt.Fprintf(os.Stderr, "campaign: %s: render: %v\n", b.Entry.Name, err)
				failures++
			}
		}
		for _, err := range b.CheckExpectations(cres) {
			fmt.Fprintf(os.Stderr, "campaign: EXPECTATION FAILED: %v\n", err)
			failures++
		}
		if *outDir != "" {
			if err := writeArtifacts(*outDir, b.Entry.ArtifactPath(), cres); err != nil {
				fmt.Fprintf(os.Stderr, "campaign: %s: %v\n", b.Entry.Name, err)
				failures++
			}
		}
		if b.Entry.MatrixOrigin == "" {
			fmt.Println()
		}
	}
	if !*quiet {
		if len(gridOrder) > 0 {
			fmt.Println()
		}
		for _, origin := range gridOrder {
			if err := spec.RenderGrid(os.Stdout, grids[origin]); err != nil {
				fmt.Fprintf(os.Stderr, "campaign: %s: grid: %v\n", origin, err)
				failures++
			}
			fmt.Println()
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "campaign: %d failure(s)\n", failures)
		os.Exit(1)
	}
}

// writeArtifacts stores the result under the entry's sanitized
// artifact path (matrix cells: one subdirectory per matrix entry,
// one JSON/CSV pair per cell).
func writeArtifacts(dir, name string, cres *campaign.Result) error {
	data, err := json.MarshalIndent(cres, "", "  ")
	if err != nil {
		return err
	}
	jsonPath := filepath.Join(dir, name+".json")
	if err := os.MkdirAll(filepath.Dir(jsonPath), 0o755); err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	csvFile, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		return err
	}
	defer csvFile.Close()
	return expdata.WriteCampaignCSV(csvFile, cres)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "campaign: %v\n", err)
	os.Exit(1)
}
