package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/campaign/spec"
	"repro/internal/fabric"
)

// serveOptions configures -serve, the fabric coordinator mode.
type serveOptions struct {
	specPath     string
	addr         string
	baseDir      string // -partials: uploads land in a per-spec namespace under it
	slices       int
	leaseTimeout time.Duration
	outDir       string
	quiet        bool
	stream       bool
}

// runServe coordinates the spec's campaigns over HTTP: executors pull
// slice leases and upload partials; once every slice has arrived (or
// been cancelled by an early stop) the ordinary merge pipeline runs
// here, so -serve ends with exactly the artifacts, renders and
// expectation verdicts an unpartitioned run would produce.
func runServe(f *spec.File, built []*spec.Built, opts serveOptions) int {
	specBytes, err := os.ReadFile(opts.specPath)
	if err != nil {
		fatal(err)
	}
	nsDir := fabric.Namespace(opts.baseDir, specBytes)
	logger := log.New(os.Stderr, "", log.LstdFlags)
	coord, err := fabric.New(fabric.Config{
		SpecBytes:    specBytes,
		File:         f,
		Built:        built,
		Dir:          nsDir,
		Slices:       opts.slices,
		LeaseTimeout: opts.leaseTimeout,
		Log:          logger,
	})
	if err != nil {
		fatal(err)
	}
	ln, err := net.Listen("tcp", opts.addr)
	if err != nil {
		fatal(err)
	}
	srv := &http.Server{Handler: coord.Handler()}
	go srv.Serve(ln)
	logger.Printf("campaign: fabric coordinator on http://%s (uploads -> %s)", ln.Addr(), nsDir)

	<-coord.Done()
	// Merge while still serving, so executors polling for work learn
	// the campaign is done and drain cleanly instead of timing out
	// against a vanished coordinator.
	code := runCampaigns(f, built, runOptions{
		outDir: opts.outDir,
		quiet:  opts.quiet,
		merge:  true,
		stream: opts.stream,
		dir:    nsDir,
	})
	srv.Close()
	return code
}

// runExecutorMode runs one stateless executor against a coordinator.
func runExecutorMode(url, name string, delay time.Duration, workers int) int {
	if name == "" {
		host, _ := os.Hostname()
		name = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	err := fabric.RunExecutor(fabric.ExecutorConfig{
		URL:         strings.TrimRight(url, "/"),
		Name:        name,
		Workers:     workers,
		UploadDelay: delay,
		Log:         log.New(os.Stderr, "", log.LstdFlags),
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaign: %v\n", err)
		return 1
	}
	return 0
}

// printStatus renders a coordinator's status snapshot; with jsonMode
// it emits the raw snapshot as one indented JSON document instead, so
// dashboards and scripts consume the same fields the text render
// summarizes without scraping it.
func printStatus(url string, jsonMode bool) int {
	st, err := fabric.FetchStatus(nil, strings.TrimRight(url, "/"))
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaign: %v\n", err)
		return 1
	}
	if jsonMode {
		data, err := json.MarshalIndent(st, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "campaign: %v\n", err)
			return 1
		}
		fmt.Printf("%s\n", data)
		return 0
	}
	state := "running"
	if st.Done {
		state = "done"
	}
	fmt.Printf("coordinator %s: up %.0fs, %d slices/entry, lease %s, %d executor(s) seen\n",
		state, st.UptimeSec, st.Slices, time.Duration(st.LeaseMS)*time.Millisecond, st.Executors)
	fmt.Printf("uploads: %d accepted, %d ignored, %d rejected; %d lease(s) stolen\n",
		st.Uploads, st.Ignored, st.Rejected, st.Steals)
	for _, e := range st.Entries {
		verdict := "running"
		switch {
		case e.Done && e.EarlyStopped:
			verdict = "done (early stop)"
		case e.Done:
			verdict = "done"
		}
		fmt.Printf("%-40s %-18s merged %d/%d shards, %d/%d trials, %.0f trials/s\n",
			e.Entry, verdict, e.PrefixShards, e.NumShards, e.DoneTrials, e.TotalTrials, e.TrialsPerSec)
		counts := map[string]int{}
		for _, s := range e.Slices {
			counts[s.State]++
		}
		var parts []string
		for _, k := range []string{"done", "leased", "pending", "cancelled", "empty"} {
			if counts[k] > 0 {
				parts = append(parts, fmt.Sprintf("%d %s", counts[k], k))
			}
		}
		fmt.Printf("%-40s slices: %s\n", "", strings.Join(parts, ", "))
		for _, s := range e.Slices {
			if s.State == "leased" {
				fmt.Printf("%-40s   slice %d leased to %s (%d trials, %d steal(s))\n",
					"", s.Index, s.Holder, s.Trials, s.Steals)
			}
		}
	}
	return 0
}
