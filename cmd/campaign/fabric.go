package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/campaign/spec"
	"repro/internal/fabric"
)

// serveOptions configures -serve, both the legacy single-spec
// coordinator (with -spec) and the multi-tenant job service (without).
type serveOptions struct {
	specPath     string
	addr         string
	baseDir      string // -partials: each job's namespace lands under it
	slices       int
	leaseTimeout time.Duration
	outDir       string
	quiet        bool
	stream       bool
	tenants      string // -tenants name=token[:maxLeases],...
	drainAfter   int    // -drain-after: exit after N jobs all finished
}

// parseTenants parses the -tenants flag: comma-separated
// name=token[:maxLeases] triples.
func parseTenants(s string) ([]fabric.Tenant, error) {
	if s == "" {
		return nil, nil
	}
	var tenants []fabric.Tenant
	for _, part := range strings.Split(s, ",") {
		name, rest, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" || rest == "" {
			return nil, fmt.Errorf("-tenants entry %q: want name=token[:maxLeases]", part)
		}
		t := fabric.Tenant{Name: name, Token: rest}
		if tok, quota, ok := strings.Cut(rest, ":"); ok {
			n, err := strconv.Atoi(quota)
			if err != nil || n < 0 || tok == "" {
				return nil, fmt.Errorf("-tenants entry %q: bad maxLeases %q", part, quota)
			}
			t.Token = tok
			t.MaxLeases = n
		}
		tenants = append(tenants, t)
	}
	return tenants, nil
}

// newRegistry assembles the fabric registry shared by both serve
// modes.
func newRegistry(opts serveOptions, logger *log.Logger) *fabric.Registry {
	tenants, err := parseTenants(opts.tenants)
	if err != nil {
		fatal(err)
	}
	reg, err := fabric.NewRegistry(fabric.RegistryConfig{
		Dir:          opts.baseDir,
		Slices:       opts.slices,
		LeaseTimeout: opts.leaseTimeout,
		Tenants:      tenants,
		DrainAfter:   opts.drainAfter,
		Log:          logger,
	})
	if err != nil {
		fatal(err)
	}
	return reg
}

// serveRegistry starts the HTTP listener; the returned server is
// closed by the caller once the registry drains.
func serveRegistry(reg *fabric.Registry, addr string) (*http.Server, net.Addr) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fatal(err)
	}
	srv := &http.Server{Handler: reg.Handler()}
	go srv.Serve(ln)
	return srv, ln.Addr()
}

// runServe is the legacy single-spec coordinator: submit the spec as
// the registry's only job, serve leases until every slice arrived (or
// was cancelled by an early stop), then run the ordinary merge
// pipeline here — so -serve ends with exactly the artifacts, renders
// and expectation verdicts an unpartitioned run would produce.
func runServe(f *spec.File, built []*spec.Built, opts serveOptions) int {
	specBytes, err := os.ReadFile(opts.specPath)
	if err != nil {
		fatal(err)
	}
	logger := log.New(os.Stderr, "", log.LstdFlags)
	reg := newRegistry(opts, logger)
	// AutoMerge off: this process merges below, with rendering and
	// expectation checking, exactly as the pre-registry coordinator did.
	job, err := reg.Submit(specBytes, fabric.SubmitOptions{})
	if err != nil {
		fatal(err)
	}
	if job.State == fabric.JobFailed {
		fatal(errors.New(job.Error))
	}
	// The one job is all this mode serves: drain the fleet as soon as
	// it completes.
	reg.SetDraining(true)
	srv, addr := serveRegistry(reg, opts.addr)
	logger.Printf("campaign: fabric coordinator on http://%s (uploads -> %s)", addr, job.Dir)

	<-reg.Done()
	// Merge while still serving, so executors polling for work learn
	// the campaign is done and drain cleanly instead of timing out
	// against a vanished coordinator.
	code := runCampaigns(f, built, runOptions{
		outDir: opts.outDir,
		quiet:  opts.quiet,
		merge:  true,
		stream: opts.stream,
		dir:    job.Dir,
	})
	srv.Close()
	return code
}

// runService is the multi-tenant job service: no spec of its own —
// jobs arrive over POST /jobs, are scheduled onto the shared executor
// fleet, and merge server-side into their own namespace. With
// -drain-after N the service exits once N jobs have been submitted and
// all of them finished (the CI shape); otherwise it serves until
// killed.
func runService(opts serveOptions) int {
	logger := log.New(os.Stderr, "", log.LstdFlags)
	reg := newRegistry(opts, logger)
	srv, addr := serveRegistry(reg, opts.addr)
	logger.Printf("campaign: fabric job service on http://%s (work dir %s)", addr, reg.Dir())

	<-reg.Done()
	// Linger before closing the socket: executors poll at up to a 2s
	// idle backoff and -watch at 300ms, and both should observe the
	// terminal state (drained reply, done/failed job) rather than a
	// connection refused from a vanished service.
	time.Sleep(5 * time.Second)
	srv.Close()
	code := 0
	for _, j := range reg.Status().Jobs {
		if j.State == fabric.JobFailed {
			fmt.Fprintf(os.Stderr, "campaign: job %s failed: %s\n", j.ID, j.Error)
			code = 1
		}
	}
	return code
}

// runSubmit posts the spec to a job service and prints the job URL —
// the handle -watch and DELETE consume.
func runSubmit(url, specPath, token string) int {
	specBytes, err := os.ReadFile(specPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaign: %v\n", err)
		return 1
	}
	base := strings.TrimRight(url, "/")
	job, err := fabric.SubmitJob(nil, base, token, specBytes)
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaign: %v\n", err)
		return 1
	}
	fmt.Println(fabric.JobURL(base, job.ID))
	if job.State == fabric.JobFailed {
		fmt.Fprintf(os.Stderr, "campaign: job %s failed validation: %s\n", job.ID, job.Error)
		return 1
	}
	fmt.Fprintf(os.Stderr, "campaign: job %s %s (%d total trials)\n", job.ID, job.State, job.TotalTrials)
	return 0
}

// runJobList renders the job table of a service.
func runJobList(url string) int {
	jobs, err := fabric.ListJobs(nil, strings.TrimRight(url, "/"))
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaign: %v\n", err)
		return 1
	}
	fmt.Printf("%-16s %-10s %-10s %12s %22s\n", "JOB", "STATE", "TENANT", "TRIALS", "SLICES d/l/p/c")
	for _, j := range jobs {
		slices := fmt.Sprintf("%d/%d/%d/%d", j.SlicesDone, j.SlicesLeased, j.SlicesPending, j.SlicesCancelled)
		fmt.Printf("%-16s %-10s %-10s %6d/%-6d %22s\n", j.ID, j.State, j.Tenant, j.DoneTrials, j.TotalTrials, slices)
		if j.Error != "" {
			fmt.Printf("%-16s   %s\n", "", j.Error)
		}
	}
	return 0
}

// runWatch polls one job until it reaches a terminal state, reporting
// state transitions on stderr; on success the job's results directory
// is the last line on stdout (the scriptable handle), on failure the
// job's error lands on stderr.
func runWatch(jobURL string) int {
	last := ""
	misses := 0
	for {
		job, err := fabric.GetJob(nil, jobURL)
		if err != nil {
			// Transient blips tolerated; a service gone for good is not.
			if misses++; misses > 20 {
				fmt.Fprintf(os.Stderr, "campaign: %v\n", err)
				return 1
			}
			time.Sleep(500 * time.Millisecond)
			continue
		}
		misses = 0
		if job.State != last {
			last = job.State
			fmt.Fprintf(os.Stderr, "campaign: job %s %s (%d/%d trials, %d/%d slices done)\n",
				job.ID, job.State, job.DoneTrials, job.TotalTrials, job.SlicesDone,
				job.SlicesDone+job.SlicesLeased+job.SlicesPending+job.SlicesCancelled)
		}
		switch job.State {
		case fabric.JobDone:
			fmt.Println(job.OutDir)
			return 0
		case fabric.JobFailed:
			fmt.Fprintf(os.Stderr, "campaign: job %s failed: %s\n", job.ID, job.Error)
			return 1
		}
		time.Sleep(300 * time.Millisecond)
	}
}

// runExecutorMode runs one stateless, job-agnostic executor against a
// registry.
func runExecutorMode(url, name, token string, delay time.Duration, workers int) int {
	if name == "" {
		host, _ := os.Hostname()
		name = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	err := fabric.RunExecutor(context.Background(), fabric.ExecutorConfig{
		URL:         strings.TrimRight(url, "/"),
		Name:        name,
		Token:       token,
		Workers:     workers,
		UploadDelay: delay,
		Log:         log.New(os.Stderr, "", log.LstdFlags),
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaign: %v\n", err)
		return 1
	}
	return 0
}

// printStatus renders a registry's status snapshot; with jsonMode it
// emits the raw snapshot as one indented JSON document instead, so
// dashboards and scripts consume the same fields the text render
// summarizes without scraping it.
func printStatus(url string, jsonMode bool) int {
	st, err := fabric.FetchStatus(nil, strings.TrimRight(url, "/"))
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaign: %v\n", err)
		return 1
	}
	if jsonMode {
		data, err := json.MarshalIndent(st, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "campaign: %v\n", err)
			return 1
		}
		fmt.Printf("%s\n", data)
		return 0
	}
	state := "running"
	switch {
	case st.Done:
		state = "done"
	case st.Draining:
		state = "draining"
	}
	fmt.Printf("registry %s: up %.0fs, %d job(s), %d slices/entry, lease %s, %d executor(s) seen\n",
		state, st.UptimeSec, len(st.Jobs), st.Slices, time.Duration(st.LeaseMS)*time.Millisecond, st.Executors)
	fmt.Printf("uploads: %d accepted, %d ignored, %d rejected; %d lease(s) stolen\n",
		st.Uploads, st.Ignored, st.Rejected, st.Steals)
	for _, j := range st.Jobs {
		owner := ""
		if j.Tenant != "" {
			owner = " tenant " + j.Tenant
		}
		fmt.Printf("job %s [%s]%s: %d/%d trials; slices %d done, %d leased, %d pending, %d cancelled; %d steal(s)\n",
			j.ID, j.State, owner, j.DoneTrials, j.TotalTrials,
			j.SlicesDone, j.SlicesLeased, j.SlicesPending, j.SlicesCancelled, j.Steals)
		if j.Error != "" {
			fmt.Printf("  error: %s\n", j.Error)
		}
		for _, e := range j.Entries {
			verdict := "running"
			switch {
			case e.Done && e.EarlyStopped:
				verdict = "done (early stop)"
			case e.Done:
				verdict = "done"
			}
			fmt.Printf("  %-38s %-18s merged %d/%d shards, %d/%d trials, %.0f trials/s\n",
				e.Entry, verdict, e.PrefixShards, e.NumShards, e.DoneTrials, e.TotalTrials, e.TrialsPerSec)
			for _, s := range e.Slices {
				if s.State == "leased" {
					fmt.Printf("  %-38s   slice %d leased to %s (%d trials, %d steal(s))\n",
						"", s.Index, s.Holder, s.Trials, s.Steals)
				}
			}
		}
	}
	return 0
}
