// fault_injection pits the real duplex arbiter against the paper's
// Markov abstraction under heavy, accelerated fault load, surfacing
// the decision paths of Section 3 (flag resolution, mis-correction
// stalemates, erasure masking) with live counts.
//
// Two campaigns run: a transient-dominated one (SEUs + scrubbing) and
// a permanent-dominated one (stuck-at faults, immediate vs delayed
// location). Each prints the arbiter verdict mix and the
// chain-vs-simulation comparison.
//
// Run with: go run ./examples/fault_injection
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/arbiter"
	"repro/internal/duplex"
	"repro/internal/gf"
	"repro/internal/memsim"
	"repro/internal/rs"
)

func main() {
	field := gf.MustField(8)
	code, err := rs.New(field, 18, 16)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("campaign 1: transient-dominated (accelerated SEUs, 4-hour scrubbing)")
	seu := memsim.Config{
		Code: code, Duplex: true,
		LambdaBit:   4e-4,
		ScrubPeriod: 4, ExponentialScrub: true,
		Horizon: 48, Trials: 30000, Seed: 11,
	}
	report(seu)

	fmt.Println("\ncampaign 2: permanent-dominated (stuck-at faults, no scrubbing)")
	perm := memsim.Config{
		Code: code, Duplex: true,
		LambdaSymbol: 3e-4,
		Horizon:      200, Trials: 30000, Seed: 12,
	}
	report(perm)

	fmt.Println("\ncampaign 3: permanent faults with 50 h detection latency")
	late := perm
	late.DetectionLatency = 50
	late.Seed = 13
	res, err := memsim.Run(late)
	if err != nil {
		log.Fatal(err)
	}
	resOnTime, err := memsim.Run(perm)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  located immediately: %.3e failures | located after 50h: %.3e failures\n",
		resOnTime.FailFraction(), res.FailFraction())
	fmt.Println("  (until located, a permanent fault costs 2 units of capability instead of 1 —")
	fmt.Println("   the paper's argument for self-checking circuits that locate faults, Section 2)")
}

func report(cfg memsim.Config) {
	res, err := memsim.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	params := duplex.Params{
		N: 18, K: 16, M: 8,
		Lambda:    cfg.LambdaBit,
		LambdaE:   cfg.LambdaSymbol,
		ScrubRate: scrubRate(cfg.ScrubPeriod),
	}
	chain, err := duplex.FailProbabilities(params, []float64{cfg.Horizon})
	if err != nil {
		log.Fatal(err)
	}
	// The physically consistent variant counts erasure arrivals on
	// both modules of a position (the paper's Figure 4 counts one);
	// see DESIGN.md "Modeling decisions".
	params.Opts.DoubleSidedErasures = true
	chain2, err := duplex.FailProbabilities(params, []float64{cfg.Horizon})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("  injected %d SEUs, %d permanent faults over %d trials\n",
		res.SEUs, res.PermanentFaults, res.Trials)
	fmt.Printf("  chain P_fail (paper rates)        = %.3e\n", chain[0])
	fmt.Printf("  chain P_fail (double-sided rates) = %.3e\n", chain2[0])
	fmt.Printf("  sim capability-exceeded           = %.3e (chain's own event)\n",
		res.CapabilityExceededFraction())
	fmt.Printf("  sim real failures                 = %.3e (what the arbiter actually loses)\n",
		res.FailFraction())
	if res.FailFraction() > 0 {
		fmt.Printf("  chain conservatism vs real arbiter = %.1fx\n", chain2[0]/res.FailFraction())
	}
	fmt.Println("  arbiter verdicts:")
	type vc struct {
		v arbiter.Verdict
		c int
	}
	var list []vc
	for v, c := range res.Verdicts {
		list = append(list, vc{v, c})
	}
	sort.Slice(list, func(i, j int) bool { return list[i].c > list[j].c })
	for _, e := range list {
		fmt.Printf("    %-20s %6d (%.2f%%)\n", e.v, e.c, 100*float64(e.c)/float64(res.Trials))
	}
}

func scrubRate(period float64) float64 {
	if period <= 0 {
		return 0
	}
	return 1 / period
}
