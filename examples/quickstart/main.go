// Quickstart: the three layers of the library in ~60 lines.
//
//  1. Code a memory word with RS(18,16) and correct a fault pattern.
//  2. Ask the paper's Markov models for the BER of a whole system.
//  3. Check the prediction against Monte Carlo fault injection.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/gf"
	"repro/internal/memsim"
	"repro/internal/reliability"
	"repro/internal/rs"
)

func main() {
	// --- 1. The codec ---------------------------------------------
	field := gf.MustField(8)
	code, err := rs.New(field, 18, 16)
	if err != nil {
		log.Fatal(err)
	}
	data := []gf.Elem{'h', 'i', 'g', 'h', ' ', 'r', 'e', 'l', ' ', 'm', 'e', 'm', 'o', 'r', 'y', '!'}
	word, err := code.Encode(data)
	if err != nil {
		log.Fatal(err)
	}
	// RS(18,16) has 2 check symbols: it corrects one random error OR
	// two located erasures (2*errors + erasures <= n-k).
	seu := append([]gf.Elem(nil), word...)
	seu[3] ^= 0x40 // an SEU flips a bit somewhere unknown
	res, err := code.Decode(seu, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("codec:  recovered %q after one SEU (flag=%v)\n",
		string(elemsToBytes(res.Data)), res.Flag)

	erased := append([]gf.Elem(nil), word...)
	erased[3], erased[9] = 0x00, 0xFF // two located permanent faults
	res, err = code.Decode(erased, []int{3, 9})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("codec:  recovered %q after two located erasures (flag=%v)\n",
		string(elemsToBytes(res.Data)), res.Flag)

	// --- 2. The Markov models --------------------------------------
	hours, err := reliability.HoursRange(0, 48, 3)
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.Config{
		Arrangement:        core.Duplex,
		Code:               core.RS1816,
		SEUPerBitDay:       reliability.WorstCaseSEURate,
		ScrubPeriodSeconds: 3600,
	}
	curve, err := core.Evaluate(cfg, hours)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model:  %v\n        BER(48h) = %.3e (paper: below 1e-6 with hourly scrubbing)\n",
		cfg, curve.BER[len(curve.BER)-1])

	// --- 3. The fault-injection simulator --------------------------
	sim, err := memsim.Run(memsim.Config{
		Code:      code,
		Duplex:    true,
		LambdaBit: 6e-4, // accelerated rates so 5k trials resolve P_fail
		Horizon:   48,
		Trials:    5000,
		Seed:      1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sim:    %d trials at accelerated SEU rates: %.1f%% capability-exceeded, %.1f%% real failures\n",
		sim.Trials, 100*sim.CapabilityExceededFraction(), 100*sim.FailFraction())
	fmt.Println("        (the chain's Fail state is a conservative bound on the real arbiter)")
}

func elemsToBytes(es []gf.Elem) []byte {
	out := make([]byte, len(es))
	for i, e := range es {
		out[i] = byte(e)
	}
	return out
}
