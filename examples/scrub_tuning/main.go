// scrub_tuning answers the engineering question behind the paper's
// Figure 7: how rarely can we afford to scrub and still keep the BER
// of a duplex RS(18,16) memory below a target, under the worst-case
// SEU environment?
//
// Scrubbing costs memory bandwidth and power (paper Section 2), so
// the longest admissible period is the efficient choice. The example
// sweeps the paper's periods, then bisects for the exact threshold.
//
// Run with: go run ./examples/scrub_tuning
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/reliability"
	"repro/internal/textplot"
)

const (
	berTarget = 1e-6 // the paper's data-integrity line
	storageH  = 48.0 // two days of unattended storage (paper Tst)
)

func berAt(tscSeconds float64) float64 {
	cfg := core.Config{
		Arrangement:        core.Duplex,
		Code:               core.RS1816,
		SEUPerBitDay:       reliability.WorstCaseSEURate,
		ScrubPeriodSeconds: tscSeconds,
	}
	curve, err := core.Evaluate(cfg, []float64{storageH})
	if err != nil {
		log.Fatal(err)
	}
	return curve.BER[0]
}

func main() {
	fmt.Printf("target: BER(%.0fh) < %.0e, duplex RS(18,16), lambda = %.1e/bit/day\n\n",
		storageH, berTarget, reliability.WorstCaseSEURate)

	// The paper's four periods (Figure 7).
	var series []textplot.Series
	hours, err := reliability.HoursRange(0, storageH, 13)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%10s %14s %8s\n", "Tsc (s)", "BER(48h)", "ok?")
	for _, tsc := range reliability.PaperScrubPeriods {
		cfg := core.Config{
			Arrangement:        core.Duplex,
			Code:               core.RS1816,
			SEUPerBitDay:       reliability.WorstCaseSEURate,
			ScrubPeriodSeconds: tsc,
		}
		curve, err := core.Evaluate(cfg, hours)
		if err != nil {
			log.Fatal(err)
		}
		ber := curve.BER[len(curve.BER)-1]
		ok := "yes"
		if ber >= berTarget {
			ok = "NO"
		}
		fmt.Printf("%10.0f %14.3e %8s\n", tsc, ber, ok)
		series = append(series, textplot.Series{
			Label: fmt.Sprintf("Tsc=%gs", tsc),
			X:     hours,
			Y:     curve.BER,
		})
	}

	p := textplot.Plot{
		Title:  "Figure 7 reproduction: BER(t) vs scrubbing period",
		XLabel: "hours",
		YLabel: "BER",
		LogY:   true,
		Series: series,
	}
	fmt.Println()
	fmt.Print(p.Render())

	// Bisect for the longest period that still meets the target.
	lo, hi := 3600.0, 86400.0 // the paper shows 3600 s works; how far can we stretch?
	if berAt(hi) < berTarget {
		fmt.Printf("\neven daily scrubbing meets the target — no tuning needed\n")
		return
	}
	for i := 0; i < 40; i++ {
		mid := (lo + hi) / 2
		if berAt(mid) < berTarget {
			lo = mid
		} else {
			hi = mid
		}
	}
	fmt.Printf("\nlongest admissible scrub period: ~%.0f s (%.2f h)\n", lo, lo/3600)
	fmt.Printf("paper's conclusion (scrub at least hourly) is conservative by %.1fx\n", lo/3600)
}
