// Example campaign: the declarative spec-file workflow end to end.
//
// spec.json in this directory declares four scenarios — a transient
// BER curve, the accelerated SSMM fault-injection mission with a
// tolerance band, a multi-bit-upset comparison and a design-space
// sweep — all running on the shared internal/campaign engine.
// nightly.json is the drift gate the nightly CI workflow runs;
// matrix.json is the RS(n,k) x depth x scrub sweep; detection.json
// sweeps the stuck-column detection policy (immediate / scrub /
// latency) x scrub period x depth, quantifying how much reliability
// the old located-at-strike assumption overstated.
//
// This program loads spec.json, runs one scenario directly (showing
// the programmatic API: Build, EngineConfig, campaign.Run,
// CheckExpectations), then demonstrates early stopping on a
// confidence-interval width. Run with:
//
//	go run ./examples/campaign
//
// The full file runs through the CLI instead:
//
//	go run ./cmd/campaign -spec examples/campaign/spec.json
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/campaign"
	"repro/internal/campaign/spec"
	"repro/internal/gf"
	"repro/internal/memsim"
	"repro/internal/rs"
)

func main() {
	// --- 1. Load and build the declarative spec -------------------
	f, err := spec.Load("examples/campaign/spec.json")
	if err != nil {
		// Allow running from this directory too.
		f, err = spec.Load("spec.json")
	}
	if err != nil {
		log.Fatal(err)
	}
	built, err := f.BuildAll()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spec declares %d scenarios:\n", len(built))
	for _, b := range built {
		fmt.Printf("  %-14s %-9s %5d trials, %d expectation(s)\n",
			b.Entry.Name, b.Entry.Kind, b.Scenario.Trials(), len(b.Entry.Expect))
	}

	// --- 2. Run the gated SSMM mission scenario -------------------
	mission := built[1]
	cres, err := campaign.Run(mission.Scenario, mission.EngineConfig(f))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s: %d trials, capability exceeded in %.4f of them\n",
		mission.Entry.Name, cres.Trials, cres.Fraction(memsim.CounterCapabilityExceeded))
	if errs := mission.CheckExpectations(cres); len(errs) > 0 {
		fmt.Println("tolerance bands VIOLATED:")
		for _, e := range errs {
			fmt.Println(" ", e)
		}
		os.Exit(1)
	}
	fmt.Println("tolerance bands hold — this is the nightly drift gate in miniature")

	// --- 3. Early stopping: resolve a probability to 10% ----------
	field := gf.MustField(8)
	code, err := rs.New(field, 18, 16)
	if err != nil {
		log.Fatal(err)
	}
	cfg := memsim.Config{
		Code: code, LambdaBit: 6e-4, LambdaSymbol: 2e-4,
		Horizon: 48, Trials: 200000, Seed: 4,
	}
	res, engine, err := memsim.RunCampaign(cfg, campaign.Config{
		Stop: &campaign.EarlyStop{
			Counter:      memsim.CounterCapabilityExceeded,
			RelHalfWidth: 0.10,
			MinTrials:    2000,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	lo, hi := memsim.WilsonInterval(res.CapabilityExceeded, res.Trials, 1.96)
	fmt.Printf("\nearly stop: %d of %d requested trials resolved P(fail) = %.4f (95%% CI [%.4f, %.4f])\n",
		engine.Trials, engine.Requested, res.CapabilityExceededFraction(), lo, hi)
}
