// page_interleaving demonstrates the SSMM page organization of the
// paper's reference design (Cardarilli et al., ref [6]): striping a
// memory page across interleaved RS codewords so that physical burst
// faults — multi-bit upsets, failed column drivers — spread thinly
// over many codewords instead of overwhelming one.
//
// Run with: go run ./examples/page_interleaving
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/gf"
	"repro/internal/interleave"
	"repro/internal/rs"
)

func main() {
	field := gf.MustField(8)
	code, err := rs.New(field, 18, 16)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))

	fmt.Println("burst tolerance of an RS(18,16) page vs interleaving depth:")
	fmt.Printf("%7s %12s %14s %16s\n", "depth", "page bytes", "burst (syms)", "verified")
	for _, depth := range []int{1, 2, 4, 8, 16} {
		page, err := interleave.New(code, depth)
		if err != nil {
			log.Fatal(err)
		}
		ok := verifyBurst(rng, page)
		fmt.Printf("%7d %12d %14d %16v\n",
			depth, page.DataSymbols(), page.CorrectableBurst(), ok)
	}

	fmt.Println()
	fmt.Println("scenario: a failed column driver corrupts one stored symbol of")
	fmt.Println("every stripe group — located by self-checking, so an erasure:")
	page, err := interleave.New(code, 8)
	if err != nil {
		log.Fatal(err)
	}
	data := make([]gf.Elem, page.DataSymbols())
	for i := range data {
		data[i] = gf.Elem(rng.Intn(256))
	}
	stored, err := page.Encode(data)
	if err != nil {
		log.Fatal(err)
	}
	column := 11
	var erasures []int
	for s := 0; s < page.Depth(); s++ {
		idx := column*page.Depth() + s
		stored[idx] = 0xFF
		erasures = append(erasures, idx)
	}
	res, err := page.Decode(stored, erasures)
	if err != nil {
		log.Fatal(err)
	}
	intact := len(res.FailedStripes) == 0
	for i := range data {
		if res.Data[i] != data[i] {
			intact = false
		}
	}
	fmt.Printf("  %d erased symbols (one per stripe), page recovered: %v\n",
		len(erasures), intact)
	fmt.Println("  each stripe sees exactly 1 erasure <= n-k=2: the whole column is free")
}

// verifyBurst injects a maximal-length burst at a random offset and
// checks full recovery.
func verifyBurst(rng *rand.Rand, page *interleave.Page) bool {
	data := make([]gf.Elem, page.DataSymbols())
	for i := range data {
		data[i] = gf.Elem(rng.Intn(256))
	}
	stored, err := page.Encode(data)
	if err != nil {
		return false
	}
	burst := page.CorrectableBurst()
	start := 0
	if n := page.StoredSymbols() - burst; n > 0 {
		start = rng.Intn(n)
	}
	for i := start; i < start+burst; i++ {
		stored[i] ^= gf.Elem(1 + rng.Intn(255))
	}
	res, err := page.Decode(stored, nil)
	if err != nil || len(res.FailedStripes) != 0 {
		return false
	}
	for i := range data {
		if res.Data[i] != data[i] {
			return false
		}
	}
	return true
}
