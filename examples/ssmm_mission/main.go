// ssmm_mission is the paper's motivating scenario end to end: a Solid
// State Mass Memory for a multi-year space mission, built from COTS
// memory devices.
//
// The example (1) derives a permanent-fault rate for a real device
// from the MIL-HDBK-217-style model (paper refs [1],[6]), (2) sweeps
// the paper's three arrangements over a 24-month storage mission at
// that rate plus the worst-case SEU environment, and (3) weighs the
// reliability outcome against decoder latency and area (paper
// Section 6) to make the engineering call.
//
// Run with: go run ./examples/ssmm_mission
package main

import (
	"fmt"
	"log"

	"repro/internal/complexity"
	"repro/internal/core"
	"repro/internal/reliability"
)

func main() {
	// A commercial 1-Mbit SRAM in orbit, modestly warm, COTS quality.
	device := reliability.Device{
		Class:        reliability.MOSSRAM,
		Bits:         1 << 20,
		Pins:         32,
		JunctionTemp: 45,
		Env:          reliability.SpaceFlight,
		Quality:      3, // COTS screening, the paper's premise
	}
	deviceRate, err := device.FailureRatePerMillionHours()
	if err != nil {
		log.Fatal(err)
	}
	lambdaE, err := device.SymbolErasureRatePerDay(8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("device: COTS 1-Mbit SRAM, %.3f failures/1e6h -> lambdaE = %.2e per symbol-day\n",
		deviceRate, lambdaE)
	fmt.Printf("environment: worst-case SEU rate %.1e per bit-day\n\n", reliability.WorstCaseSEURate)

	// 24-month storage mission, hourly scrubbing against SEUs.
	mission, err := reliability.HoursRange(0, reliability.Months(24), 13)
	if err != nil {
		log.Fatal(err)
	}
	type option struct {
		name string
		cfg  core.Config
		cost complexity.ArrangementCost
	}
	s18, err := complexity.SimplexCost(18, 16, 8)
	if err != nil {
		log.Fatal(err)
	}
	d18, err := complexity.DuplexCost(18, 16, 8)
	if err != nil {
		log.Fatal(err)
	}
	s36, err := complexity.SimplexCost(36, 16, 8)
	if err != nil {
		log.Fatal(err)
	}
	options := []option{
		{"simplex RS(18,16)", core.Config{Arrangement: core.Simplex, Code: core.RS1816}, s18},
		{"duplex  RS(18,16)", core.Config{Arrangement: core.Duplex, Code: core.RS1816}, d18},
		{"simplex RS(36,16)", core.Config{Arrangement: core.Simplex, Code: core.RS3616}, s36},
	}

	const berBudget = 1e-10 // mission data-integrity requirement
	fmt.Printf("%-19s %14s %12s %10s %8s\n", "arrangement", "BER(24mo)", "meets 1e-10", "Td cycles", "gates")
	for _, opt := range options {
		cfg := opt.cfg
		cfg.SEUPerBitDay = reliability.WorstCaseSEURate
		cfg.ErasurePerSymbolDay = lambdaE
		cfg.ScrubPeriodSeconds = 3600
		curve, err := core.Evaluate(cfg, mission)
		if err != nil {
			log.Fatal(err)
		}
		ber := curve.BER[len(curve.BER)-1]
		meets := "no"
		if ber < berBudget {
			meets = "yes"
		}
		fmt.Printf("%-19s %14.3e %12s %10d %8.0f\n",
			opt.name, ber, meets, opt.cost.DecodeCycles, opt.cost.TotalGates)
	}

	fmt.Println("\nreading the table like the paper does:")
	fmt.Println(" - the duplex pays the same total redundancy as simplex RS(36,16)")
	fmt.Println("   (20 extra symbols per 16-symbol dataword) but decodes 4.16x faster;")
	fmt.Println(" - its two decoders are smaller than the one wide decoder;")
	fmt.Println(" - simplex RS(18,16) is cheapest but cannot ride out permanent faults.")
}
