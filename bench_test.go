// Benchmarks regenerating every table and figure of the paper's
// evaluation section (DESIGN.md section 4 maps each experiment to its
// benchmark). Custom metrics attach the headline numbers of each
// artifact to the benchmark output, so `go test -bench=.` doubles as
// a reproduction report:
//
//	BER@48h/worst  — figure 5/6/7 end points
//	BER@24mo/top   — figure 8/9/10 top-curve end points
//	cycles, gates  — Section 6 decoder cost comparison
//	chainP, mcP    — cross-validation pair
//
// The Ablation* benchmarks quantify the modeling decisions DESIGN.md
// calls out: the duplex fail semantics, the paper's transition-B rate
// typo, single- vs double-sided erasure counting, exponential vs
// periodic scrubbing, and cross-repairing scrub controllers.
package repro

import (
	"testing"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/duplex"
	"repro/internal/expdata"
	"repro/internal/gf"
	"repro/internal/memsim"
	"repro/internal/reliability"
	"repro/internal/rs"
	"repro/internal/scrub"
	"repro/internal/simplex"
)

// runExperiment drives one registry entry b.N times and reports the
// value extracted by metric from the final run.
func runExperiment(b *testing.B, id string, metrics func(*expdata.Result) map[string]float64) {
	b.Helper()
	exp, ok := expdata.ByID(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	var last *expdata.Result
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := exp.Run()
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.StopTimer()
	for name, v := range metrics(last) {
		b.ReportMetric(v, name)
	}
}

func lastY(r *expdata.Result, series int) float64 {
	s := r.Series[series]
	return s.Y[len(s.Y)-1]
}

func BenchmarkFig5SimplexSEUSweep(b *testing.B) {
	runExperiment(b, "fig5", func(r *expdata.Result) map[string]float64 {
		return map[string]float64{
			"BER@48h/quiet": lastY(r, 0),
			"BER@48h/worst": lastY(r, 2),
		}
	})
}

func BenchmarkFig6DuplexSEUSweep(b *testing.B) {
	runExperiment(b, "fig6", func(r *expdata.Result) map[string]float64 {
		return map[string]float64{
			"BER@48h/quiet": lastY(r, 0),
			"BER@48h/worst": lastY(r, 2),
		}
	})
}

func BenchmarkFig7DuplexScrubSweep(b *testing.B) {
	runExperiment(b, "fig7", func(r *expdata.Result) map[string]float64 {
		return map[string]float64{
			"BER@48h/Tsc900s":  lastY(r, 0),
			"BER@48h/Tsc3600s": lastY(r, 3),
		}
	})
}

func BenchmarkFig8SimplexPermanentSweep(b *testing.B) {
	runExperiment(b, "fig8", func(r *expdata.Result) map[string]float64 {
		return map[string]float64{
			"BER@24mo/top":    lastY(r, 0),
			"BER@24mo/bottom": lastY(r, len(r.Series)-1),
		}
	})
}

func BenchmarkFig9DuplexPermanentSweep(b *testing.B) {
	runExperiment(b, "fig9", func(r *expdata.Result) map[string]float64 {
		return map[string]float64{
			"BER@24mo/top":    lastY(r, 0),
			"BER@24mo/bottom": lastY(r, len(r.Series)-1),
		}
	})
}

func BenchmarkFig10SimplexRS3616PermanentSweep(b *testing.B) {
	runExperiment(b, "fig10", func(r *expdata.Result) map[string]float64 {
		return map[string]float64{
			"BER@24mo/top": lastY(r, 0),
		}
	})
}

func BenchmarkTableDecoderLatency(b *testing.B) {
	// One op regenerates the Section 6 latency table for the two paper
	// codes; count their codeword symbols (18 + 36) as the bytes the
	// modeled decoders consume so MB/s tracks the table's scope.
	b.ReportAllocs()
	b.SetBytes(int64(18 + 36))
	runExperiment(b, "tbl-td", func(r *expdata.Result) map[string]float64 {
		return map[string]float64{
			"cycles/RS1816": r.Series[0].Y[0],
			"cycles/RS3616": r.Series[0].Y[2],
		}
	})
}

func BenchmarkTableDecoderArea(b *testing.B) {
	runExperiment(b, "tbl-area", func(r *expdata.Result) map[string]float64 {
		return map[string]float64{
			"gates/duplex1816":  r.Series[0].Y[1],
			"gates/simplex3616": r.Series[0].Y[2],
		}
	})
}

// BenchmarkCrossValidationMonteCarlo runs a trimmed-down xval (the
// full experiment lives in the registry for cmd/sweep) comparing the
// chain against fault injection on the duplex arrangement.
func BenchmarkCrossValidationMonteCarlo(b *testing.B) {
	f8 := gf.MustField(8)
	code := rs.MustNew(f8, 18, 16)
	const (
		lambda  = 6e-4
		lambdaE = 2e-4
		horizon = 48.0
	)
	want, err := duplex.FailProbabilities(duplex.Params{
		N: 18, K: 16, M: 8, Lambda: lambda, LambdaE: lambdaE,
	}, []float64{horizon})
	if err != nil {
		b.Fatal(err)
	}
	const trials = 4000
	var got float64
	b.ReportAllocs()
	// One op pushes `trials` duplex codewords through the simulator;
	// count one byte per stored codeword symbol.
	b.SetBytes(int64(trials) * int64(code.N()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := memsim.Run(memsim.Config{
			Code: code, Duplex: true,
			LambdaBit: lambda, LambdaSymbol: lambdaE,
			Horizon: horizon, Trials: trials, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		got = res.CapabilityExceededFraction()
	}
	b.StopTimer()
	b.ReportMetric(want[0], "chainP")
	b.ReportMetric(got, "mcP")
}

// BenchmarkRareEventTiltedCampaign drives the importance-sampled
// rare-event regime (true failure probability ~1e-9, exponential tilt
// from the analytic chain) and reports effective trials per second —
// the ESS the weighted estimator accumulates per wall-clock second,
// which is the number raw trials/s overstates by the tilt's variance
// cost. benchdiff carries etrials/s as a report-only column.
func BenchmarkRareEventTiltedCampaign(b *testing.B) {
	f8 := gf.MustField(8)
	code := rs.MustNew(f8, 18, 16)
	cfg := memsim.Config{
		Code:             code,
		LambdaBit:        1.7e-8,
		LambdaSymbol:     8.5e-10,
		ScrubPeriod:      4,
		ExponentialScrub: true,
		Horizon:          48,
		Trials:           4000,
		TiltFactor:       1.9169e4, // solved offline: chain Fail(48h) = 0.25 under the tilt
	}
	var ess float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := cfg
		c.Seed = int64(i + 1)
		_, cres, err := memsim.RunCampaign(c, campaign.Config{})
		if err != nil {
			b.Fatal(err)
		}
		ess += cres.EffectiveSamples(memsim.CounterCapabilityExceeded)
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(ess/secs, "etrials/s")
	}
}

func BenchmarkExtBaselinesComparison(b *testing.B) {
	runExperiment(b, "ext-baselines", func(r *expdata.Result) map[string]float64 {
		return map[string]float64{
			"P@48h/simplexRS": lastY(r, 0),
			"P@48h/secded":    lastY(r, 2),
			"P@48h/tmr":       lastY(r, 3),
		}
	})
}

func BenchmarkExtArrayMissionReliability(b *testing.B) {
	runExperiment(b, "ext-array", func(r *expdata.Result) map[string]float64 {
		return map[string]float64{
			"Pany@24mo/simplex18": lastY(r, 0),
			"Pany@24mo/duplex18":  lastY(r, 1),
		}
	})
}

func BenchmarkExtMBUBurstSweep(b *testing.B) {
	runExperiment(b, "ext-mbu", func(r *expdata.Result) map[string]float64 {
		metrics := map[string]float64{}
		for _, s := range r.Series {
			switch s.Label {
			case "RS(20,16)":
				metrics["loss@8bit/RS2016"] = s.Y[len(s.Y)-1]
			case "4x SEC-DED(39,32)":
				metrics["loss@8bit/secded"] = s.Y[len(s.Y)-1]
			}
		}
		return metrics
	})
}

// --- Ablations over DESIGN.md modeling decisions -------------------

// BenchmarkAblationDuplexFailSemantics compares the paper's strict
// fail condition (either word beyond capability kills the system)
// against an idealized arbiter that survives on one good word.
func BenchmarkAblationDuplexFailSemantics(b *testing.B) {
	times := []float64{48}
	strict := duplex.Params{N: 18, K: 16, M: 8, Lambda: reliability.PerDayToPerHour(reliability.WorstCaseSEURate)}
	ideal := strict
	ideal.Opts.EitherWordSuffices = true
	var s, i float64
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		sp, err := duplex.FailProbabilities(strict, times)
		if err != nil {
			b.Fatal(err)
		}
		ip, err := duplex.FailProbabilities(ideal, times)
		if err != nil {
			b.Fatal(err)
		}
		s, i = sp[0], ip[0]
	}
	b.StopTimer()
	b.ReportMetric(s, "strictP")
	b.ReportMetric(i, "idealP")
	b.ReportMetric(s/i, "gapX")
}

// BenchmarkAblationPaperBRate quantifies the paper's literal
// "lambda_e * Y" rate on transition B against the dimensionally
// consistent lambda_e * b, at the paper's own operating point.
func BenchmarkAblationPaperBRate(b *testing.B) {
	times := []float64{48}
	consistent := duplex.Params{
		N: 18, K: 16, M: 8,
		Lambda:  reliability.PerDayToPerHour(reliability.WorstCaseSEURate),
		LambdaE: reliability.PerDayToPerHour(1e-5),
	}
	literal := consistent
	literal.Opts.BRateUsesY = true
	var c, l float64
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		cp, err := duplex.FailProbabilities(consistent, times)
		if err != nil {
			b.Fatal(err)
		}
		lp, err := duplex.FailProbabilities(literal, times)
		if err != nil {
			b.Fatal(err)
		}
		c, l = cp[0], lp[0]
	}
	b.StopTimer()
	b.ReportMetric(c, "consistentP")
	b.ReportMetric(l, "literalP")
}

// BenchmarkAblationDoubleSidedErasures quantifies the single- vs
// double-sided erasure counting gap under permanent-fault load (the
// ~8x undercount the Monte Carlo simulator exposes).
func BenchmarkAblationDoubleSidedErasures(b *testing.B) {
	times := []float64{200}
	paper := duplex.Params{N: 18, K: 16, M: 8, LambdaE: 3e-4}
	phys := paper
	phys.Opts.DoubleSidedErasures = true
	var p, f float64
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		pp, err := duplex.FailProbabilities(paper, times)
		if err != nil {
			b.Fatal(err)
		}
		fp, err := duplex.FailProbabilities(phys, times)
		if err != nil {
			b.Fatal(err)
		}
		p, f = pp[0], fp[0]
	}
	b.StopTimer()
	b.ReportMetric(p, "paperP")
	b.ReportMetric(f, "physicalP")
	b.ReportMetric(f/p, "ratioX")
}

// BenchmarkAblationScrubDiscipline compares exponential (CTMC-exact)
// against deterministic periodic scrubbing in the simulator, at equal
// mean period — measuring the modeling error of the rate-1/Tsc
// abstraction.
func BenchmarkAblationScrubDiscipline(b *testing.B) {
	f8 := gf.MustField(8)
	code := rs.MustNew(f8, 18, 16)
	base := memsim.Config{
		Code: code, LambdaBit: 1.2e-3,
		ScrubPeriod: 4, Horizon: 48, Trials: 8000,
	}
	var expo, peri float64
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		e := base
		e.ExponentialScrub = true
		e.Seed = int64(n)
		er, err := memsim.Run(e)
		if err != nil {
			b.Fatal(err)
		}
		p := base
		p.Seed = int64(n)
		pr, err := memsim.Run(p)
		if err != nil {
			b.Fatal(err)
		}
		expo, peri = er.CapabilityExceededFraction(), pr.CapabilityExceededFraction()
	}
	b.StopTimer()
	b.ReportMetric(expo, "exponentialP")
	b.ReportMetric(peri, "periodicP")
}

// BenchmarkAblationCrossRepair measures how much a scrub controller
// that repairs a dead module from its live twin improves on the
// paper's independent-scrub semantics.
func BenchmarkAblationCrossRepair(b *testing.B) {
	f8 := gf.MustField(8)
	code := rs.MustNew(f8, 18, 16)
	base := memsim.Config{
		Code: code, Duplex: true, LambdaBit: 4e-4,
		ScrubPeriod: 4, Horizon: 48, Trials: 8000,
	}
	var plain, repaired float64
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		p := base
		p.Seed = int64(n)
		pr, err := memsim.Run(p)
		if err != nil {
			b.Fatal(err)
		}
		r := base
		r.CrossRepair = true
		r.Seed = int64(n)
		rr, err := memsim.Run(r)
		if err != nil {
			b.Fatal(err)
		}
		plain, repaired = pr.CapabilityExceededFraction(), rr.CapabilityExceededFraction()
	}
	b.StopTimer()
	b.ReportMetric(plain, "paperScrubP")
	b.ReportMetric(repaired, "crossRepairP")
	if repaired > 0 {
		b.ReportMetric(plain/repaired, "gainX")
	}
}

// BenchmarkAblationDetectionLatency measures the cost of slow
// permanent-fault location (erasures degraded to random errors until
// the self-checking hardware reports them).
func BenchmarkAblationDetectionLatency(b *testing.B) {
	f8 := gf.MustField(8)
	code := rs.MustNew(f8, 36, 16)
	base := memsim.Config{
		Code: code, LambdaSymbol: 2e-3, Horizon: 200, Trials: 8000,
	}
	var located, blind float64
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		l := base
		l.Seed = int64(n)
		lr, err := memsim.Run(l)
		if err != nil {
			b.Fatal(err)
		}
		d := base
		d.DetectionLatency = 1e9
		d.Seed = int64(n)
		dr, err := memsim.Run(d)
		if err != nil {
			b.Fatal(err)
		}
		located, blind = lr.FailFraction(), dr.FailFraction()
	}
	b.StopTimer()
	b.ReportMetric(located, "locatedP")
	b.ReportMetric(blind, "unlocatedP")
}

// --- End-to-end solver benchmarks on the paper's own chains --------

func BenchmarkSolveSimplexRS1816Fig5Point(b *testing.B) {
	p := simplex.Params{
		N: 18, K: 16, M: 8,
		Lambda: reliability.PerDayToPerHour(reliability.WorstCaseSEURate),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := simplex.FailProbabilities(p, []float64{48}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveDuplexRS1816Fig7Point(b *testing.B) {
	p := duplex.Params{
		N: 18, K: 16, M: 8,
		Lambda:    reliability.PerDayToPerHour(reliability.WorstCaseSEURate),
		ScrubRate: reliability.ScrubRatePerHour(900),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := duplex.FailProbabilities(p, []float64{48}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveSimplexRS3616Fig10Point(b *testing.B) {
	p := simplex.Params{
		N: 36, K: 16, M: 8,
		LambdaE: reliability.PerDayToPerHour(1e-7),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := simplex.FailProbabilities(p, []float64{reliability.Months(24)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvaluateFullFig7Curve(b *testing.B) {
	hours, err := reliability.HoursRange(0, 48, 13)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.Config{
		Arrangement:        core.Duplex,
		Code:               core.RS1816,
		SEUPerBitDay:       reliability.WorstCaseSEURate,
		ScrubPeriodSeconds: 900,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.Evaluate(cfg, hours); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScrubSchedulers measures the schedulers in isolation (they
// sit on the simulator's hot path).
func BenchmarkScrubSchedulers(b *testing.B) {
	p, err := scrub.NewPeriodic(0.25)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("periodic", func(b *testing.B) {
		t := 0.0
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			t = p.Next(t)
		}
	})
}
