// Package repro reproduces "On the Analysis of Reed Solomon Coding
// for Resilience to Transient/Permanent Faults in Highly Reliable
// Memories" (Schiano, Ottavi, Lombardi, Pontarelli, Salsano, DATE
// 2005) as a production-quality Go library.
//
// The implementation lives under internal/: the Reed-Solomon codec
// and its field/polynomial substrates (gf, gfpoly, rs), the CTMC
// engine standing in for the paper's SURE solver (markov), the two
// memory-system models (simplex, duplex), the top-level BER analysis
// API (core), the duplex arbiter and Monte Carlo fault-injection
// simulator (arbiter, scrub, memsim), the Section 6 cost models
// (complexity), rate/unit conventions (reliability), terminal plotting
// (textplot), and the experiment registry regenerating every paper
// figure (expdata).
//
// The benchmarks in this root package drive the registry: one
// benchmark per paper figure and table, plus ablations over the
// modeling decisions documented in DESIGN.md. Run
//
//	go test -bench=. -benchmem
//
// to regenerate everything, or use cmd/sweep for human-readable plots.
//
// # The allocation-free codec hot path
//
// Every experiment above funnels millions of words through the
// Reed-Solomon codec, so internal/rs is built as a set of streaming
// kernels with a zero-allocation steady state: rs.Code.EncodeTo runs a
// parity LFSR straight into the destination slice, rs.Code.SyndromesInto
// fills a caller buffer, and an rs.Decoder workspace (one per
// goroutine, from rs.Code.NewDecoder) decodes with zero allocs/op on
// every successful path. The original Encode/Decode signatures remain
// as thin wrappers over a pooled workspace for callers that want to
// retain results. internal/memsim threads one workspace set through
// each simulation worker and internal/arbiter owns a pair per arbiter,
// so Monte Carlo campaigns no longer allocate per trial; the
// per-kernel trajectory is tracked by the microbenchmarks in
// internal/rs (go test ./internal/rs -bench . -benchmem) and gated by
// its TestSteadyStateZeroAllocs.
//
// # The campaign engine
//
// Every experiment — Monte Carlo fault injection (memsim), multi-bit
// upset comparisons (mbusim), analytic BER curves and design-space
// sweeps, whole registry regenerations — runs on one orchestration
// subsystem, internal/campaign. A scenario implements two small
// interfaces: Scenario (name, trial count, worker factory) and Worker
// (run trial i into an accumulator of named counters, (x, y) samples
// and notes). The engine shards the trial range into fixed contiguous
// shards, fans them over a goroutine pool of per-worker codec
// workspaces, and merges shard accumulators in index order, so the
// aggregate statistics are bit-identical for any worker count. On top
// of that base it provides Wilson-interval early stopping (decided on
// contiguous shard prefixes, hence equally deterministic), atomic JSON
// checkpointing with bit-identical resume, and structured results that
// internal/expdata renders as tables, TSV, CSV or JSON.
//
// The cmd/ binaries are thin scenario frontends: memsim, mbusim,
// bercurve, sweep and tradeoff each build one scenario and format its
// campaign result, while cmd/campaign runs a declarative multi-
// scenario JSON spec (internal/campaign/spec; runnable files under
// examples/campaign/) whose entries can carry early-stop rules,
// checkpoint paths and tolerance bands on counter fractions.
//
// Spec entries can also carry a "matrix" field mapping parameter
// names to value lists: the entry expands into the full cross-product
// of cells (auto-suffixed names, shared defaults, the entry's
// expectation bands applied to every cell), so one entry expresses an
// RS(n,k) x interleaving-depth x scrub-interval study whose results
// cmd/campaign renders as a grid table with per-cell CSV artifacts.
// Two Monte Carlo scenario kinds give the matrix its sweep axes
// beyond memsim: "interleave" (internal/pagesim) drives an
// interleave.Page through mixed Poisson SEUs, full-length MBU bursts
// and stuck-at columns under a scrub discipline, empirically
// validating the CorrectableBurst guarantee (single-burst trials
// within the guarantee must never lose a page); "array"
// (array.SimConfig) simulates the word-level system with rates
// matched to the analytic chain and cross-validates array.Evaluate's
// memory-level AnyWordFail against the Monte Carlo's Wilson band,
// failing the campaign on disagreement.
//
// # Continuous integration gates
//
// The ci workflow builds and tests on the current and previous Go
// release, race-gates the worker-pool engine (go test -race ./...),
// enforces gofmt/go vet, smoke-runs every binary's error paths
// (non-zero exits), a multi-scenario campaign spec and the matrix
// sweep spec (12 interleave cells plus the whole-memory analytic
// cross-check), and gates benchmark regressions: the codec
// microbenchmarks, the interleaved-page codec benchmarks and root
// solver benchmarks run at -benchtime 100x -count=5 and cmd/benchdiff
// compares them against the committed BENCH_baseline.json, failing on
// any allocation increase or a >25% latency regression (min-of-5
// ns/op, so one-sided scheduler noise cannot fake a pass or a fail).
// The nightly workflow reruns the accelerated SSMM mission and the
// interleaved-page mission (10k deterministic trials each) and fails
// if any measured probability leaves its tolerance band in
// examples/campaign/nightly.json.
package repro
