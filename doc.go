// Package repro reproduces "On the Analysis of Reed Solomon Coding
// for Resilience to Transient/Permanent Faults in Highly Reliable
// Memories" (Schiano, Ottavi, Lombardi, Pontarelli, Salsano, DATE
// 2005) as a production-quality Go library.
//
// The implementation lives under internal/: the Reed-Solomon codec
// and its field/polynomial substrates (gf, gfpoly, rs), the CTMC
// engine standing in for the paper's SURE solver (markov), the two
// memory-system models (simplex, duplex), the top-level BER analysis
// API (core), the duplex arbiter and Monte Carlo fault-injection
// simulator (arbiter, scrub, memsim), the Section 6 cost models
// (complexity), rate/unit conventions (reliability), terminal plotting
// (textplot), and the experiment registry regenerating every paper
// figure (expdata).
//
// The benchmarks in this root package drive the registry: one
// benchmark per paper figure and table, plus ablations over the
// modeling decisions documented in DESIGN.md. Run
//
//	go test -bench=. -benchmem
//
// to regenerate everything, or use cmd/sweep for human-readable plots.
package repro
