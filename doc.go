// Package repro reproduces "On the Analysis of Reed Solomon Coding
// for Resilience to Transient/Permanent Faults in Highly Reliable
// Memories" (Schiano, Ottavi, Lombardi, Pontarelli, Salsano, DATE
// 2005) as a production-quality Go library.
//
// The implementation lives under internal/: the Reed-Solomon codec
// and its field/polynomial substrates (gf, gfpoly, rs), the CTMC
// engine standing in for the paper's SURE solver (markov), the two
// memory-system models (simplex, duplex), the top-level BER analysis
// API (core), the duplex arbiter and Monte Carlo fault-injection
// simulator (arbiter, scrub, memsim), the Section 6 cost models
// (complexity), rate/unit conventions (reliability), terminal plotting
// (textplot), and the experiment registry regenerating every paper
// figure (expdata).
//
// The benchmarks in this root package drive the registry: one
// benchmark per paper figure and table, plus ablations over the
// modeling decisions documented in DESIGN.md. Run
//
//	go test -bench=. -benchmem
//
// to regenerate everything, or use cmd/sweep for human-readable plots.
//
// # The allocation-free codec hot path
//
// Every experiment above funnels millions of words through the
// Reed-Solomon codec, so internal/rs is built as a set of streaming
// kernels with a zero-allocation steady state: rs.Code.EncodeTo runs a
// parity LFSR straight into the destination slice, rs.Code.SyndromesInto
// fills a caller buffer, and an rs.Decoder workspace (one per
// goroutine, from rs.Code.NewDecoder) decodes with zero allocs/op on
// every successful path. The original Encode/Decode signatures remain
// as thin wrappers over a pooled workspace for callers that want to
// retain results. internal/memsim threads one workspace set through
// each simulation worker and internal/arbiter owns a pair per arbiter,
// so Monte Carlo campaigns no longer allocate per trial; the
// per-kernel trajectory is tracked by the microbenchmarks in
// internal/rs (go test ./internal/rs -bench . -benchmem) and gated by
// its TestSteadyStateZeroAllocs.
package repro
