// Package repro reproduces "On the Analysis of Reed Solomon Coding
// for Resilience to Transient/Permanent Faults in Highly Reliable
// Memories" (Schiano, Ottavi, Lombardi, Pontarelli, Salsano, DATE
// 2005) as a production-quality Go library.
//
// The implementation lives under internal/: the Reed-Solomon codec
// and its field/polynomial substrates (gf, gfpoly, rs), the CTMC
// engine standing in for the paper's SURE solver (markov), the two
// memory-system models (simplex, duplex), the top-level BER analysis
// API (core), the duplex arbiter and Monte Carlo fault-injection
// simulator (arbiter, scrub, memsim), the Section 6 cost models
// (complexity), rate/unit conventions (reliability), terminal plotting
// (textplot), and the experiment registry regenerating every paper
// figure (expdata).
//
// The benchmarks in this root package drive the registry: one
// benchmark per paper figure and table, plus ablations over the
// modeling decisions documented in DESIGN.md. Run
//
//	go test -bench=. -benchmem
//
// to regenerate everything, or use cmd/sweep for human-readable plots.
//
// # The allocation-free codec hot path
//
// Every experiment above funnels millions of words through the
// Reed-Solomon codec, so internal/rs is built as a set of streaming
// kernels with a zero-allocation steady state: rs.Code.EncodeTo runs a
// parity LFSR straight into the destination slice, rs.Code.SyndromesInto
// fills a caller buffer, and an rs.Decoder workspace (one per
// goroutine, from rs.Code.NewDecoder) decodes with zero allocs/op on
// every successful path. The original Encode/Decode signatures remain
// as thin wrappers over a pooled workspace for callers that want to
// retain results. internal/memsim threads one workspace set through
// each simulation worker and internal/arbiter owns a pair per arbiter,
// so Monte Carlo campaigns no longer allocate per trial; the
// per-kernel trajectory is tracked by the microbenchmarks in
// internal/rs (go test ./internal/rs -bench . -benchmem) and gated by
// its TestSteadyStateZeroAllocs.
//
// # Batch decode: the syndrome-first scrub path
//
// Scrub-scale workloads invert the decoder's cost profile: a scrub
// pass decodes every stored word, and almost all of them are clean, so
// the per-word pipeline wastes its Berlekamp-Massey/Chien machinery on
// words whose syndromes would have said "nothing to do". The batch
// layer (rs.Batch, rs.Code.NewBatchDecoder, rs.BatchDecoder.DecodeAll)
// decodes a contiguous word arena by screening every word — erasures
// included — with a packed syndrome-contribution table, a few wide
// XORs per symbol instead of d dependent multiplies. Clean words never
// leave the screen; a dirty word hands its already-folded syndromes
// straight to the per-word pipeline instead of recomputing them, and
// erasure-carrying words resolve their locator through a
// content-keyed erasure-set cache (the locator polynomial and its
// Chien/Forney setup depend only on the position set, which scrub
// workloads repeat arena-wide), so an erasure-only word completes by
// evaluating cached roots with no Berlekamp-Massey iteration and no
// Chien sweep. Outcomes are guaranteed word-for-word identical to
// rs.Decoder.Decode (the equivalence property tests in internal/rs
// enforce this across worker counts, and fixed-seed golden tests in
// pagesim and memsim pin the simulators' outputs across the switch),
// and the steady state allocates nothing. BatchDecoder.SetWorkers
// shards large arenas across a persistent goroutine pool with
// bit-identical results for any worker count, and
// BatchDecoder.DecodeStream scrubs stores larger than memory chunk by
// chunk through fill/emit callbacks with one reused sub-arena. On the
// 1-core reference container the erasure-heavy RS(255,223) arena
// decodes ~6.6x faster than the pre-cache batch path (5.7 -> ~38
// MB/s) and the clean-arena screen holds >300 MB/s.
// interleave.Codec.DecodeTo decodes each page as one depth-word arena
// (with a split memo keeping per-stripe erasure lists stable across
// scrub passes, and Codec.DecodeSequence streaming page sequences),
// which pagesim inherits, and the memsim worker streams its scrub
// arena the same way, so every Monte Carlo scrub loop rides the fast
// path.
//
// # The campaign engine: plan, execute, merge
//
// Every experiment — Monte Carlo fault injection (memsim), multi-bit
// upset comparisons (mbusim), analytic BER curves and design-space
// sweeps, whole registry regenerations — runs on one orchestration
// subsystem, internal/campaign. A scenario implements two small
// interfaces: Scenario (name, trial count, worker factory) and Worker
// (run trial i into an accumulator of named counters, (x, y) samples
// and notes). The engine is three explicit layers. The planner
// deterministically shards the trial range into fixed contiguous
// shards and assigns a contiguous slice of the shard range to a
// Partition{Index, Count} — shard boundaries and per-trial seeds
// depend only on the global trial index, so any partitioning computes
// the very shards a single process would. The executor runs one
// partition's shards over a goroutine pool of per-worker codec
// workspaces and appends each completed shard to a self-describing
// partial-result artifact (an append-only JSON Lines file that
// doubles as the resumable checkpoint — legacy single-object
// checkpoints migrate transparently — and as the spill target that
// keeps executor memory bounded for million-sample campaigns: spilled
// samples leave the heap once durably on disk). The merger folds any
// set of partials — one process or many — in global shard order into
// a Result that is bit-identical to the single-process run, after
// validating that the partials share one campaign fingerprint and
// cover the shard range disjointly and completely; a merge Sink can
// stream samples straight into internal/expdata's streaming CSV
// writer instead of materializing them. Wilson-interval early
// stopping stays deterministic under partitioning: a single-process
// executor stops launching shards when the rule fires on the
// contiguous prefix, while partitioned executors deliberately
// over-run (they cannot see the global prefix) and the merger
// re-decides the stop on the same prefix, landing on the identical
// shard.
//
// The cmd/ binaries are thin scenario frontends: memsim, mbusim,
// bercurve, sweep and tradeoff each build one scenario and format its
// campaign result, while cmd/campaign runs a declarative multi-
// scenario JSON spec (internal/campaign/spec; runnable files under
// examples/campaign/) whose entries can carry early-stop rules,
// checkpoint paths and tolerance bands on counter fractions.
// cmd/campaign's -partition i/N flag executes one slice of every
// scenario (partial artifacts under -partials), and -merge reassembles
// the slices into results byte-identical to an unpartitioned run —
// the multi-process sharding workflow CI smoke-tests end to end.
//
// # Weighted trials: importance sampling for the 1e-9..1e-15 regime
//
// The engine's counters are weighted: a Worker may record a trial's
// contribution with an arbitrary nonnegative weight (Acc.AddWeighted)
// and the engine folds first and second weight moments per counter
// alongside the integer counts, in every layer — shards, partial
// artifacts (a version-3 JSONL record; version-2 artifacts load as
// unit-weight), checkpoints, resume, partitioned merges and the
// fabric's incremental prefix fold. Unit-weight campaigns are
// bit-identical to the pre-weighted engine: a Result carries weight
// moments only when some trial actually recorded a non-unit weight,
// so existing artifacts, goldens and renderings are byte-for-byte
// unchanged. On top of the weighted counters sit the weighted
// estimator (Result.WeightedFraction, StdErr, RelErr,
// EffectiveSamples) and a relative-error early-stop rule
// (StopRule.RelHalfWidth, weighted or not) that complements the
// Wilson rule; the merger and the fabric coordinator re-decide
// weighted stops on the contiguous prefix exactly as they do Wilson
// stops, preserving the determinism law.
//
// The first weighted scenario family is exponential tilting of the
// fault processes in memsim and pagesim: all fault rates are jointly
// multiplied by a factor theta>1 — only the arrival clock changes,
// never the event-type split — and each trial carries the likelihood
// ratio theta^-k * exp((theta-1)*R0*H) of its k arrivals, making rare
// failures common in the biased measure while the weighted estimator
// stays unbiased for the true probability. Spec entries opt in with a
// "sampling" block: {"method":"tilt","factor":F} sets the factor
// explicitly, and {"method":"auto"} solves it from the analytic
// simplex chain (bisecting the jointly tilted rates until the chain's
// failure probability at the horizon reaches 0.25) and installs a
// merge-time gate requiring the weighted estimate to agree with the
// untilted chain within four standard errors. cmd/campaign renders
// weighted entries with the biased-measure counts plus the weighted
// estimate, its relative error and the effective sample size, and
// examples/campaign/rare.json resolves a p ~ 1e-9 mission (analytic
// 1.04e-9) to ±10% relative error in under a second — brute force
// would need ~4e10 trials for the same error. Tilted and untilted
// artifacts never merge (the tilt factor is part of the scenario
// fingerprint, and weighted/unweighted partial versions refuse each
// other).
//
// A file-level "adaptive" block {"round_trials":N,"max_rounds":M}
// re-plans the trial budget across scenarios between merge rounds:
// each round evaluates every entry's current relative error from its
// partial artifacts and allocates the next N trials proportionally to
// squared relative error (spend where the CI is widest), executing
// only the covering shard prefix until every stop rule fires or the
// requested trials are exhausted — deterministic, resumable, and
// single-process (the flag conflicts with -partition/-merge/-serve
// are diagnosed).
//
// Spec entries can also carry a "matrix" field mapping parameter
// names to value lists: the entry expands into the full cross-product
// of cells (auto-suffixed names, shared defaults, the entry's
// expectation bands applied to every cell), so one entry expresses an
// RS(n,k) x interleaving-depth x scrub-interval study whose results
// cmd/campaign renders as a grid table plus a textplot heatmap of the
// headline counter fraction, with per-cell CSV artifacts. A
// "replicates" field synthesizes a seed axis (independent RNG
// replicates of one configuration — a CI of the CI). Two Monte Carlo
// scenario kinds give the matrix its sweep axes beyond memsim:
// "interleave" (internal/pagesim) drives an interleave.Page through
// mixed Poisson SEUs, MBU bursts (lengths fixed or geometric via
// internal/burstlen, always applied in full — no edge truncation) and
// stuck-at columns under a scrub discipline, empirically validating
// the CorrectableBurst guarantee (single-burst trials within the
// guarantee must never lose a page); "array" (array.SimConfig)
// simulates the word-level system with rates matched to the analytic
// chain and cross-validates array.Evaluate's memory-level AnyWordFail
// against the Monte Carlo's Wilson band, failing the campaign on
// disagreement.
//
// Stuck-column location in pagesim is an explicit controller process,
// not a free side effect of injection: a column is physically stuck
// from its strike instant, but only located columns reach the decoder
// as erasures (the paper's located-fault doubling, n-k erasures vs
// (n-k)/2 errors). The detection policy bridges the two states —
// "immediate" (strike-instant location, the historical behavior,
// bit-identical RNG stream and outputs), "scrub" (located when a
// scrub pass observes the symbol deviate from the corrected codeword,
// with miscorrection possible while unlocated), or "latency" (located
// a fixed delay after striking, mirroring
// memsim.Config.DetectionLatency) — and non-immediate campaigns
// report located_columns, stuck_unlocated_reads and a
// time_to_location sample series. examples/campaign/detection.json
// sweeps policy x scrub period x depth to quantify how much
// reliability the free-erasures assumption overstated (roughly 2x
// page loss under realistic location in the committed configuration).
//
// # The distributed campaign fabric
//
// internal/fabric takes the plan/execute/merge split across machines,
// organized as a job service. A registry holds any number of jobs —
// one job per submitted spec, keyed by the spec's content digest
// (resubmitting identical bytes is idempotent) — each planned into
// deterministic slices: the same Partition geometry -partition uses,
// so the engine's determinism law applies unchanged. Jobs move
// through pending, running, merging and done/failed; a spec that
// fails validation is recorded as a failed job rather than vanishing,
// so operators see it in the job list with its error. The HTTP job
// API (POST/GET /jobs, GET/DELETE /jobs/{id}, GET /jobs/{id}/spec)
// rides next to the lease protocol, and cmd/campaign fronts it with
// -serve (the service), -submit, -jobs, -watch and -status verbs;
// with -spec, -serve degenerates to the original single-campaign
// coordinator, which merges in-process and produces byte-identical
// artifacts to an unpartitioned run.
//
// Executors (cmd/campaign -executor, needing nothing but the service
// URL) are stateless and job-agnostic: every lease names its job and
// the spec's full digest, and the executor fetches, verifies and
// caches each job's spec on first contact, so one fleet drains many
// campaigns concurrently. The scheduler hands work round-robin across
// runnable jobs (fair share), and per-tenant quotas cap how many
// slices a tenant may hold concurrently; when the registry is
// configured with tenants, every mutating request — submit, delete,
// lease, renew, upload — must carry the tenant's bearer token, reads
// stay open, and only a job's owner may delete it. Executors retry
// with capped, jittered exponential backoff and honor context
// cancellation, so a restarting service sees a gentle reconnect
// rather than a stampede. Executors compute their
// slice in memory, renew their lease while working, and upload the
// serialized partial artifact gzip-compressed (roughly 10:1 on JSONL;
// the registry stores uploads verbatim and the artifact reader
// sniffs the gzip magic, so compressed and plain partials mix freely
// in one merge); the registry validates every upload
// against the slice's plan (geometry, partition, params digest,
// completeness) before accepting it into the job's per-spec namespace
// directory. A lease that expires — executor crashed, hung, or
// SIGKILLed — is stolen by the next executor asking for work, and
// because slices are pure functions of the global trial index, the
// recomputed upload is byte-identical and any zombie duplicate is
// simply ignored. Between arrivals the registry folds the
// contiguous shard prefix incrementally and re-decides Wilson-CI
// early stopping exactly as the merger does, cancelling slices past
// the stopping shard so a fleet never computes work a single process
// would have skipped. When a job's last slice lands, the ordinary
// merge runs server-side into the job's namespace (or in the -serve
// process in legacy single-spec mode): the fabric's end-to-end law,
// enforced by CI with two concurrent jobs on three shared executors
// (and a chaos pass SIGKILLing one mid-run), is that every job's
// merged artifacts are byte-identical to an unpartitioned run's. A
// status endpoint (cmd/campaign -status) reports per-job state and
// per-slice lease state, steal counts, trials/sec and merge progress,
// as text or as a JSON snapshot (-status -json) for dashboards and
// scripts.
//
// Campaign identity is guarded end to end: partial artifacts and
// checkpoints carry the scenario name, geometry and — when run
// through the spec layer — a digest of the entry's kind and
// canonicalized params, so editing a spec entry refuses to resume or
// merge artifacts computed under the old parameters (pre-digest
// artifacts stay loadable; the edit-detection caveat is documented in
// internal/campaign/spec).
//
// # Continuous integration gates
//
// The ci workflow builds and tests on the current and previous Go
// release, race-gates the worker-pool engine (go test -race ./...),
// enforces gofmt/go vet plus a pinned staticcheck, smoke-runs every
// binary's error paths
// (non-zero exits), a multi-scenario campaign spec, the matrix
// sweep spec (12 interleave cells plus the whole-memory analytic
// cross-check), and the partitioned workflow (three -partition
// processes merged and diffed byte-identically against the
// unpartitioned artifacts, plus a -stream merge reproducing the same
// CSV bytes), and gates benchmark regressions: the codec
// microbenchmarks, the interleaved-page codec benchmarks and root
// solver benchmarks run at -benchtime 100x -count=5 and cmd/benchdiff
// compares them against the committed BENCH_baseline.json, failing on
// any allocation increase or a >25% latency regression (min-of-5
// ns/op, so one-sided scheduler noise cannot fake a pass or a fail).
// A fabric-e2e job runs the coordinator/executor fleet as local
// processes — three healthy executors, then a multi-tenant pass
// submitting two specs to one job service and requiring the shared
// fleet to provably interleave leases across both jobs, then a chaos
// pass that SIGKILLs an executor mid-run and requires its lease to be
// stolen — and diffs every merged result tree byte-for-byte against
// the unpartitioned run. Every job carries a timeout, and failing e2e jobs upload their
// logs and partial artifacts for post-mortem.
// The ci smoke also runs the rare-event spec
// (examples/campaign/rare.json), which gates both the importance-
// sampling machinery (the auto-tilt chain agreement gate) and the
// spec's own tolerance band around the analytic 1.04e-9.
// The nightly workflow reruns the accelerated SSMM mission, the
// interleaved-page mission (10k deterministic trials each) and a
// tilted rare-event simplex mission, and fails if any measured
// probability leaves its tolerance band in
// examples/campaign/nightly.json.
package repro
