package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"io/fs"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/campaign"
)

// secondDoc is a second, distinct spec so multi-job tests exercise two
// namespaces and two digests from one registry.
const secondDoc = `{"seed": 7, "shard_size": 64, "scenarios": [
  {"name": "beta", "kind": "mbusim",
   "params": {"events_per_kilobit": 3, "burst_bits": 4, "trials": 300}}]}`

// postJobs submits spec bytes over the HTTP API.
func postJobs(t *testing.T, url, token string, doc string) *JobStatus {
	t.Helper()
	st, err := SubmitJob(nil, url, token, []byte(doc))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	return st
}

// TestRegistryMultiJobSharedPool is the tentpole's law: two specs
// submitted to one registry, drained by one shared 3-executor pool,
// both server-side merges produce artifact trees byte-identical to
// unpartitioned runs — and at least one executor demonstrably leased
// work from both jobs.
func TestRegistryMultiJobSharedPool(t *testing.T) {
	var logBuf syncBuffer
	reg, err := NewRegistry(RegistryConfig{
		Dir:        t.TempDir(),
		Slices:     4,
		DrainAfter: 2,
		Log:        log.New(&logBuf, "", 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	jobA := postJobs(t, srv.URL, "", twoKindDoc)
	jobB := postJobs(t, srv.URL, "", secondDoc)
	if jobA.ID == jobB.ID {
		t.Fatal("distinct specs mapped to one job ID")
	}
	// Idempotent resubmission: same bytes, same job, no duplicate.
	if again := postJobs(t, srv.URL, "", twoKindDoc); again.ID != jobA.ID {
		t.Errorf("resubmission created a new job %s, want %s", again.ID, jobA.ID)
	}
	if jobs, err := ListJobs(nil, srv.URL); err != nil || len(jobs) != 2 {
		t.Fatalf("ListJobs: %d jobs (%v), want 2", len(jobs), err)
	}

	runExecutors(t, srv.URL, 3)
	waitDone(t, reg)

	for _, id := range []string{jobA.ID, jobB.ID} {
		st, ok := reg.Job(id)
		if !ok || st.State != JobDone {
			t.Fatalf("job %s: state %+v, want done", id, st)
		}
		// The server-side merge must write artifact trees byte-identical
		// to an unpartitioned run of the same spec.
		doc := twoKindDoc
		if id == jobB.ID {
			doc = secondDoc
		}
		f, built := buildSpec(t, doc)
		refDir := t.TempDir()
		for _, b := range built {
			res, err := campaign.Run(b.Scenario, b.EngineConfig(f))
			if err != nil {
				t.Fatal(err)
			}
			if err := b.WriteArtifacts(refDir, res); err != nil {
				t.Fatal(err)
			}
		}
		compareTrees(t, refDir, st.OutDir)
	}

	// Cross-job leasing: at least one executor must have drawn leases
	// from both jobs — the point of a shared pool.
	leasedBy := make(map[string]map[string]bool)
	for _, line := range strings.Split(logBuf.String(), "\n") {
		if !strings.Contains(line, ": leased ") {
			continue
		}
		var job, exec string
		fields := strings.Fields(line)
		for i, tok := range fields {
			if tok == "job" && i+1 < len(fields) {
				job = strings.TrimSuffix(fields[i+1], ":")
			}
			if tok == "to" && i+1 < len(fields) {
				exec = fields[i+1]
			}
		}
		if job == "" || exec == "" {
			continue
		}
		if leasedBy[exec] == nil {
			leasedBy[exec] = make(map[string]bool)
		}
		leasedBy[exec][job] = true
	}
	cross := false
	for _, jobs := range leasedBy {
		if jobs[jobA.ID] && jobs[jobB.ID] {
			cross = true
		}
	}
	if !cross {
		t.Errorf("no executor leased from both jobs; leases per executor: %v", leasedBy)
	}
}

// compareTrees asserts dirs got and want hold byte-identical files.
func compareTrees(t *testing.T, want, got string) {
	t.Helper()
	err := filepath.WalkDir(want, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		rel, _ := filepath.Rel(want, path)
		wb, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		gb, err := os.ReadFile(filepath.Join(got, rel))
		if err != nil {
			return fmt.Errorf("missing artifact %s: %w", rel, err)
		}
		if !bytes.Equal(wb, gb) {
			return fmt.Errorf("artifact %s differs from the unpartitioned run", rel)
		}
		return nil
	})
	if err != nil {
		t.Error(err)
	}
}

// TestRegistryAuth: a tenanted registry requires bearer tokens on
// every mutating endpoint, resolves tokens to owning tenants, and
// keeps read endpoints open.
func TestRegistryAuth(t *testing.T) {
	reg, err := NewRegistry(RegistryConfig{
		Dir: t.TempDir(),
		Tenants: []Tenant{
			{Name: "alice", Token: "tok-a"},
			{Name: "bob", Token: "tok-b"},
		},
		Log: log.New(io.Discard, "", 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	// Mutating endpoints without (or with a bad) token: 401.
	for _, probe := range []struct{ method, path string }{
		{http.MethodPost, "/jobs"},
		{http.MethodPost, pathLease},
		{http.MethodPost, pathRenew + "?lease=L1"},
		{http.MethodPost, pathUpload + "?lease=L1"},
	} {
		req, _ := http.NewRequest(probe.method, srv.URL+probe.path, strings.NewReader("{}"))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnauthorized {
			t.Errorf("%s %s without token: status %d, want 401", probe.method, probe.path, resp.StatusCode)
		}
		req, _ = http.NewRequest(probe.method, srv.URL+probe.path, strings.NewReader("{}"))
		req.Header.Set("Authorization", "Bearer wrong")
		resp, err = http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnauthorized {
			t.Errorf("%s %s with bad token: status %d, want 401", probe.method, probe.path, resp.StatusCode)
		}
	}

	// A valid token submits, and the job is owned by the token's tenant.
	st := postJobs(t, srv.URL, "tok-a", twoKindDoc)
	if st.Tenant != "alice" {
		t.Errorf("job tenant %q, want alice", st.Tenant)
	}

	// Reads stay open: no token needed to list or inspect.
	if _, err := ListJobs(nil, srv.URL); err != nil {
		t.Errorf("unauthenticated ListJobs: %v", err)
	}
	if _, err := FetchStatus(nil, srv.URL); err != nil {
		t.Errorf("unauthenticated status: %v", err)
	}

	// Only the owner may delete.
	if err := DeleteJob(nil, JobURL(srv.URL, st.ID), "tok-b"); err == nil {
		t.Error("bob deleted alice's job")
	}
	if err := DeleteJob(nil, JobURL(srv.URL, st.ID), "tok-a"); err != nil {
		t.Errorf("alice deleting her own job: %v", err)
	}
}

// TestRegistryQuota: a tenant at its concurrent-lease quota is skipped
// — the next lease goes to another tenant's job, never a second slice
// of the capped tenant's — and once only the capped tenant has work
// left the registry answers 204, not a quota-busting lease.
func TestRegistryQuota(t *testing.T) {
	reg, err := NewRegistry(RegistryConfig{
		Dir:    t.TempDir(),
		Slices: 2,
		Tenants: []Tenant{
			{Name: "alice", Token: "tok-a", MaxLeases: 1},
			{Name: "bob", Token: "tok-b"},
		},
		Log: log.New(io.Discard, "", 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Submit([]byte(twoKindDoc), SubmitOptions{Tenant: "alice", AutoMerge: true}); err != nil {
		t.Fatal(err)
	}
	stB, err := reg.Submit([]byte(secondDoc), SubmitOptions{Tenant: "bob", AutoMerge: true})
	if err != nil {
		t.Fatal(err)
	}

	var grants []string // owning tenant per successive grant
	for {
		reply := reg.grantLease("probe")
		if reply == nil {
			break
		}
		if reply.Done {
			t.Fatal("registry reported done mid-test")
		}
		js, _ := reg.Job(reply.Lease.Job)
		grants = append(grants, js.Tenant)
		if len(grants) > 16 {
			t.Fatal("runaway grants; quota not enforced")
		}
	}
	aliceLeases := 0
	for _, tenant := range grants {
		if tenant == "alice" {
			aliceLeases++
		}
	}
	// alice holds at most MaxLeases=1 concurrent slice; bob (unlimited)
	// got every slice of his job. With work remaining only behind
	// alice's quota, the loop ended on nil — the 204.
	if aliceLeases != 1 {
		t.Errorf("alice granted %d concurrent leases, want exactly 1 (quota)", aliceLeases)
	}
	bobSlices := 0
	if full, ok := reg.Job(stB.ID); ok {
		bobSlices = full.SlicesLeased
	}
	if got := len(grants) - aliceLeases; got != bobSlices || bobSlices == 0 {
		t.Errorf("bob leased %d grants but holds %d slices", got, bobSlices)
	}

	// The HTTP layer surfaces the quota-blocked state as 204.
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()
	body, _ := json.Marshal(leaseRequest{Executor: "probe"})
	req, _ := http.NewRequest(http.MethodPost, srv.URL+pathLease, bytes.NewReader(body))
	req.Header.Set("Authorization", "Bearer tok-b")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Errorf("quota-blocked lease: status %d, want 204", resp.StatusCode)
	}
}

// TestRegistryDeleteRunningJob: deleting a running job invalidates its
// leases (the zombie's late upload is refused), cancels its slices
// without re-queueing anything, and leaves the other job schedulable.
func TestRegistryDeleteRunningJob(t *testing.T) {
	reg, err := NewRegistry(RegistryConfig{
		Dir:    t.TempDir(),
		Slices: 2,
		Log:    log.New(io.Discard, "", 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	doomed := postJobs(t, srv.URL, "", twoKindDoc)
	other := postJobs(t, srv.URL, "", secondDoc)

	// Lease one slice of the doomed job (fair-share starts there).
	reply := reg.grantLease("zombie")
	if reply == nil || reply.Lease == nil || reply.Lease.Job != doomed.ID {
		t.Fatalf("first grant %+v, want a %s lease", reply, doomed.ID)
	}
	zombieLease := reply.Lease

	if err := DeleteJob(nil, JobURL(srv.URL, doomed.ID), ""); err != nil {
		t.Fatal(err)
	}
	st, _ := reg.Job(doomed.ID)
	if st.State != JobFailed {
		t.Errorf("deleted job state %s, want failed", st.State)
	}
	if st.SlicesPending != 0 || st.SlicesLeased != 0 {
		t.Errorf("deleted job still schedulable: %+v", st)
	}

	// Nothing of the deleted job is re-queued: every further grant
	// belongs to the surviving job.
	for {
		reply := reg.grantLease("prober")
		if reply == nil {
			break
		}
		if reply.Lease.Job == doomed.ID {
			t.Fatalf("deleted job's slice re-leased: %+v", reply.Lease)
		}
		if reply.Lease.Job != other.ID {
			t.Fatalf("unexpected job %s leased", reply.Lease.Job)
		}
	}

	// The zombie executor finishes its slice and uploads — refused.
	f, built := buildSpec(t, twoKindDoc)
	var b = built[0]
	for _, bb := range built {
		if bb.Entry.Name == zombieLease.Entry {
			b = bb
		}
	}
	plan, err := campaign.NewPlan(b.Scenario, zombieLease.ShardSize,
		campaign.Partition{Index: zombieLease.Index, Count: zombieLease.Count})
	if err != nil {
		t.Fatal(err)
	}
	plan.ParamsDigest = b.EngineConfig(f).ParamsDigest
	partial, err := campaign.Execute(b.Scenario, plan, campaign.ExecConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := partial.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+pathUpload+"?lease="+zombieLease.ID, "application/jsonl", &buf)
	if err != nil {
		t.Fatal(err)
	}
	var up uploadReply
	if err := json.NewDecoder(resp.Body).Decode(&up); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if up.Accepted {
		t.Error("zombie upload against a deleted job was accepted")
	}

	// Deleting a terminal job is refused (409 via ErrJobTerminal).
	if err := DeleteJob(nil, JobURL(srv.URL, doomed.ID), ""); err == nil {
		t.Error("second delete of a terminal job succeeded")
	}
}

// TestRegistryStatusMultiJob: /status carries one section per job —
// including a job that failed validation, whose Error explains why —
// and the per-job slice counts add up.
func TestRegistryStatusMultiJob(t *testing.T) {
	reg, err := NewRegistry(RegistryConfig{
		Dir:    t.TempDir(),
		Slices: 2,
		Log:    log.New(io.Discard, "", 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	good := postJobs(t, srv.URL, "", twoKindDoc)
	bad := postJobs(t, srv.URL, "", `{"scenarios": [{"name": "x", "kind": "no-such-kind"}]}`)
	if bad.State != JobFailed || bad.Error == "" {
		t.Fatalf("invalid spec submitted as %s (error %q), want a failed job with a diagnosis", bad.State, bad.Error)
	}

	st, err := FetchStatus(nil, srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Jobs) != 2 {
		t.Fatalf("status has %d jobs, want 2", len(st.Jobs))
	}
	byID := make(map[string]JobStatus)
	for _, j := range st.Jobs {
		byID[j.ID] = j
	}
	g := byID[good.ID]
	if g.State != JobPending || g.SlicesPending == 0 {
		t.Errorf("good job status %+v, want pending with pending slices", g)
	}
	if total := g.SlicesPending + g.SlicesLeased + g.SlicesDone + g.SlicesCancelled; total > 2*len(g.Entries) {
		t.Errorf("slice counts %d exceed %d slices", total, 2*len(g.Entries))
	}
	bs := byID[bad.ID]
	if bs.State != JobFailed || bs.Error == "" {
		t.Errorf("failed job not reported in status: %+v", bs)
	}

	// The failed job never blocks draining.
	reply := reg.grantLease("e")
	if reply == nil || reply.Lease == nil || reply.Lease.Job != good.ID {
		t.Fatalf("grant %+v, want the good job's lease", reply)
	}
}

// TestExecutorBackoffJitter pins the retry-hygiene contract: delays
// grow exponentially toward the cap, every delay is jittered within
// [d/2, d], and reset() restarts the ladder.
func TestExecutorBackoffJitter(t *testing.T) {
	b := newBackoff(100*time.Millisecond, 2*time.Second)
	var ds []time.Duration
	for i := 0; i < 8; i++ {
		ds = append(ds, b.next())
	}
	want := []time.Duration{100, 200, 400, 800, 1600, 2000, 2000, 2000}
	for i, d := range ds {
		hi := want[i] * time.Millisecond
		if d < hi/2 || d > hi {
			t.Errorf("delay %d = %s outside [%s, %s]", i, d, hi/2, hi)
		}
	}
	b.reset()
	if d := b.next(); d > 100*time.Millisecond {
		t.Errorf("after reset, delay %s exceeds the base", d)
	}
}

// TestExecutorContextCancellation: a cancelled context stops an
// executor that is backing off against an unreachable registry.
func TestExecutorContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		errCh <- RunExecutor(ctx, ExecutorConfig{
			URL:  "http://127.0.0.1:1", // nothing listens here
			Name: "cancelled",
			Log:  log.New(io.Discard, "", 0),
		})
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-errCh:
		if err == nil || !strings.Contains(err.Error(), "context canceled") {
			t.Errorf("executor returned %v, want context cancellation", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("executor did not honor the cancelled context")
	}
}

// TestExecutorRejectedToken: an executor with a bad token fails fast
// instead of retrying a request that can never succeed.
func TestExecutorRejectedToken(t *testing.T) {
	reg, err := NewRegistry(RegistryConfig{
		Dir:     t.TempDir(),
		Tenants: []Tenant{{Name: "alice", Token: "tok-a"}},
		Log:     log.New(io.Discard, "", 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()
	start := time.Now()
	err = RunExecutor(context.Background(), ExecutorConfig{
		URL:   srv.URL,
		Name:  "imposter",
		Token: "wrong",
		Log:   log.New(io.Discard, "", 0),
	})
	if err == nil || !strings.Contains(err.Error(), "token") {
		t.Errorf("executor with bad token returned %v, want a token error", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("bad-token executor retried instead of failing fast")
	}
}
