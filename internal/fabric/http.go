package fabric

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/campaign"
)

// maxSpecBytes bounds a POST /jobs body: specs are small JSON
// documents, and an unbounded read would let one bad client exhaust
// the registry's memory.
const maxSpecBytes = 8 << 20

// Handler returns the registry's HTTP API.
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", r.handleSubmit)
	mux.HandleFunc("GET /jobs", r.handleListJobs)
	mux.HandleFunc("GET /jobs/{id}", r.handleGetJob)
	mux.HandleFunc("DELETE /jobs/{id}", r.handleDeleteJob)
	mux.HandleFunc("GET /jobs/{id}/spec", r.handleJobSpec)
	mux.HandleFunc("POST "+pathLease, r.handleLease)
	mux.HandleFunc("POST "+pathRenew, r.handleRenew)
	mux.HandleFunc("POST "+pathUpload, r.handleUpload)
	mux.HandleFunc("GET "+pathStatus, r.handleStatus)
	return mux
}

// authorize authenticates a mutating request. Open registries (no
// tenants configured) admit everyone as the anonymous tenant; tenanted
// registries require a bearer token and resolve it to the tenant name.
// On failure it writes the 401 and returns ok=false.
func (r *Registry) authorize(w http.ResponseWriter, req *http.Request) (tenant string, ok bool) {
	if len(r.tokens) == 0 {
		return "", true
	}
	h := req.Header.Get("Authorization")
	const scheme = "Bearer "
	if !strings.HasPrefix(h, scheme) {
		w.Header().Set("WWW-Authenticate", `Bearer realm="fabric"`)
		http.Error(w, "missing bearer token", http.StatusUnauthorized)
		return "", false
	}
	t, found := r.tokens[strings.TrimPrefix(h, scheme)]
	if !found {
		w.Header().Set("WWW-Authenticate", `Bearer realm="fabric"`)
		http.Error(w, "unknown bearer token", http.StatusUnauthorized)
		return "", false
	}
	return t.Name, true
}

func (r *Registry) handleSubmit(w http.ResponseWriter, req *http.Request) {
	tenant, ok := r.authorize(w, req)
	if !ok {
		return
	}
	specBytes, err := io.ReadAll(io.LimitReader(req.Body, maxSpecBytes+1))
	if err != nil {
		http.Error(w, "read spec: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(specBytes) > maxSpecBytes {
		http.Error(w, "spec too large", http.StatusRequestEntityTooLarge)
		return
	}
	job, err := r.Submit(specBytes, SubmitOptions{Tenant: tenant, AutoMerge: true})
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, ErrDraining) {
			code = http.StatusConflict
		}
		http.Error(w, err.Error(), code)
		return
	}
	// A spec failing validation still submits — as a failed job whose
	// Error field carries the diagnosis — so the reply shape is uniform
	// and the failure shows up in /jobs and /status.
	writeJSON(w, job)
}

func (r *Registry) handleListJobs(w http.ResponseWriter, req *http.Request) {
	st := r.Status()
	jobs := st.Jobs
	if jobs == nil {
		jobs = []JobStatus{}
	}
	writeJSON(w, jobs)
}

func (r *Registry) handleGetJob(w http.ResponseWriter, req *http.Request) {
	job, ok := r.Job(req.PathValue("id"))
	if !ok {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	writeJSON(w, job)
}

func (r *Registry) handleDeleteJob(w http.ResponseWriter, req *http.Request) {
	tenant, ok := r.authorize(w, req)
	if !ok {
		return
	}
	err := r.Delete(req.PathValue("id"), tenant)
	switch {
	case err == nil:
		w.WriteHeader(http.StatusNoContent)
	case errors.Is(err, ErrJobNotFound):
		http.Error(w, err.Error(), http.StatusNotFound)
	case errors.Is(err, ErrForbidden):
		http.Error(w, err.Error(), http.StatusForbidden)
	case errors.Is(err, ErrJobTerminal):
		http.Error(w, err.Error(), http.StatusConflict)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (r *Registry) handleJobSpec(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	r.mu.Lock()
	j, ok := r.jobs[id]
	r.mu.Unlock()
	if !ok {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(j.specBytes)
}

func (r *Registry) handleLease(w http.ResponseWriter, req *http.Request) {
	if _, ok := r.authorize(w, req); !ok {
		return
	}
	var lr leaseRequest
	if err := json.NewDecoder(io.LimitReader(req.Body, 1<<16)).Decode(&lr); err != nil {
		http.Error(w, "bad lease request: "+err.Error(), http.StatusBadRequest)
		return
	}
	reply := r.grantLease(lr.Executor)
	if reply == nil {
		// No grantable work right now (all leased, quota-blocked, or no
		// runnable job): the executor backs off and asks again.
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, reply)
}

func (r *Registry) handleRenew(w http.ResponseWriter, req *http.Request) {
	if _, ok := r.authorize(w, req); !ok {
		return
	}
	id := req.URL.Query().Get("lease")
	r.mu.Lock()
	defer r.mu.Unlock()
	ref, ok := r.leases[id]
	if !ok {
		http.Error(w, "lease gone", http.StatusGone)
		return
	}
	s := ref.task.slices[ref.slice]
	if s.state != sliceLeased || s.leaseID != id {
		http.Error(w, "lease gone", http.StatusGone)
		return
	}
	s.deadline = time.Now().Add(r.cfg.LeaseTimeout)
	w.WriteHeader(http.StatusNoContent)
}

func (r *Registry) handleUpload(w http.ResponseWriter, req *http.Request) {
	if _, ok := r.authorize(w, req); !ok {
		return
	}
	id := req.URL.Query().Get("lease")
	r.mu.Lock()
	ref, ok := r.leases[id]
	r.mu.Unlock()
	if !ok {
		// The lease was stolen and its slice completed by someone else,
		// its job was deleted, or the id is garbage; either way the
		// bytes are not needed.
		io.Copy(io.Discard, req.Body)
		writeJSON(w, uploadReply{Accepted: false, Reason: "lease gone"})
		return
	}
	j, t, s := ref.job, ref.task, ref.task.slices[ref.slice]

	// Stream the body to a temp file and validate it before touching
	// any registry state: uploads can be large (spilled samples) and
	// must never be buffered whole in memory or half-written into the
	// merge directory. The temp name cannot collide with the .part
	// prefix PartialFiles scans for.
	tmp, err := os.CreateTemp(j.dir, "upload-*.tmp")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	tmpPath := tmp.Name()
	defer os.Remove(tmpPath)
	_, cpErr := io.Copy(tmp, req.Body)
	if err := tmp.Close(); cpErr == nil {
		cpErr = err
	}
	if cpErr != nil {
		http.Error(w, "upload read: "+cpErr.Error(), http.StatusBadRequest)
		return
	}
	p, err := campaign.OpenPartial(tmpPath)
	if err == nil {
		err = p.MatchesPlan(s.plan)
		if err == nil && !p.Complete(s.plan) {
			err = fmt.Errorf("upload covers %d of %d shards of slice %s: truncated", len(p.Shards()), s.plan.Shards(), s.plan.Part)
		}
	}
	if err != nil {
		if p != nil {
			p.Close()
		}
		r.mu.Lock()
		r.rejected++
		// Re-queue immediately: the slice must not wait out the full
		// lease deadline because one executor shipped garbage.
		if s.state == sliceLeased && s.leaseID == id {
			s.state = slicePending
			delete(r.leases, id)
		}
		r.mu.Unlock()
		r.log.Printf("fabric: job %s: rejected upload for %s slice %s: %v", j.id, t.built.Entry.Name, s.plan.Part, err)
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	p.Close() // counters stay resident for the prefix fold

	r.mu.Lock()
	defer r.mu.Unlock()
	if s.state == sliceDone || s.state == sliceCancelled {
		r.ignored++
		writeJSON(w, uploadReply{Accepted: false, Reason: "slice already " + s.state})
		return
	}
	// Matrix-cell partials nest in a subdirectory of the namespace
	// (the entry's artifact path contains a slash), which this upload
	// may be the first to touch.
	if err := os.MkdirAll(filepath.Dir(s.path), 0o755); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if err := os.Rename(tmpPath, s.path); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	delete(r.leases, s.leaseID)
	s.state = sliceDone
	t.arrived[s.plan.Part.Index] = p
	t.doneTrials += s.plan.PartitionTrials()
	r.uploads++
	j.uploads++
	r.log.Printf("fabric: job %s: accepted %s slice %s (%d trials) from %s",
		j.id, t.built.Entry.Name, s.plan.Part, s.plan.PartitionTrials(), s.holder)
	r.advanceTask(j, t)
	r.maybeCompleteLocked(j)
	writeJSON(w, uploadReply{Accepted: true})
}

func (r *Registry) handleStatus(w http.ResponseWriter, req *http.Request) {
	writeJSON(w, r.Status())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
