package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/campaign/spec"
)

// twoKindDoc exercises two scenario kinds, one of them sample-heavy
// (bercurve), sized to finish in seconds under -race.
const twoKindDoc = `{
  "seed": 3,
  "shard_size": 64,
  "scenarios": [
    {"name": "mission", "kind": "memsim",
     "params": {"duplex": true, "lambda_bit_per_hour": 6e-4,
                "lambda_symbol_per_hour": 2e-4, "scrub_period_hours": 4,
                "horizon_hours": 24, "trials": 400}},
    {"name": "mbu", "kind": "mbusim",
     "params": {"events_per_kilobit": 4, "burst_bits": 6, "trials": 400}}
  ]
}`

// matrixDoc expands into two interleave cells whose artifact paths
// carry a directory component ("page-sweep/depth=N").
const matrixDoc = `{
  "seed": 21, "shard_size": 64, "scenarios": [{
    "name": "page-sweep", "kind": "interleave",
    "params": {"burst_per_kilobit_hour": 0.5, "burst_bits": 9,
               "horizon_hours": 24, "trials": 200},
    "matrix": {"depth": [2, 4]}
  }]
}`

// stopperDoc early-stops well before its requested trial count.
const stopperDoc = `{"seed": 5, "shard_size": 128, "scenarios": [{
  "name": "stopper", "kind": "memsim",
  "params": {"duplex": false, "lambda_bit_per_hour": 6e-4,
             "lambda_symbol_per_hour": 2e-4, "horizon_hours": 24,
             "trials": 20000},
  "stop": {"counter": "capability_exceeded", "rel_half_width": 0.05,
           "min_trials": 200}
}]}`

// buildSpec parses and compiles a spec document.
func buildSpec(t *testing.T, doc string) (*spec.File, []*spec.Built) {
	t.Helper()
	f, err := spec.Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	built, err := f.BuildAll()
	if err != nil {
		t.Fatal(err)
	}
	return f, built
}

// singleProcess computes every entry's result the way a plain
// single-process run would — the byte-identity reference.
func singleProcess(t *testing.T, f *spec.File, built []*spec.Built) map[string]*campaign.Result {
	t.Helper()
	want := make(map[string]*campaign.Result, len(built))
	for _, b := range built {
		res, err := campaign.Run(b.Scenario, b.EngineConfig(f))
		if err != nil {
			t.Fatalf("%s: %v", b.Entry.Name, err)
		}
		want[b.Entry.Name] = res
	}
	return want
}

// startRegistry builds a registry, submits doc as its only job (the
// legacy single-spec shape: AutoMerge off, the test merges explicitly)
// and marks the registry draining, then serves it. It returns the
// job's namespace directory — where validated uploads land.
func startRegistry(t *testing.T, doc string, slices int, leaseTimeout time.Duration, logBuf io.Writer) (*Registry, *httptest.Server, *spec.File, []*spec.Built, string) {
	t.Helper()
	f, built := buildSpec(t, doc)
	if logBuf == nil {
		logBuf = io.Discard
	}
	reg, err := NewRegistry(RegistryConfig{
		Dir:          t.TempDir(),
		Slices:       slices,
		LeaseTimeout: leaseTimeout,
		Log:          log.New(logBuf, "", 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := reg.Submit([]byte(doc), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.State == JobFailed {
		t.Fatalf("job failed validation: %s", st.Error)
	}
	reg.SetDraining(true)
	srv := httptest.NewServer(reg.Handler())
	t.Cleanup(srv.Close)
	return reg, srv, f, built, st.Dir
}

// runExecutors runs n executors against the registry and waits for
// all of them to drain.
func runExecutors(t *testing.T, url string, n int) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = RunExecutor(context.Background(), ExecutorConfig{
				URL:  url,
				Name: fmt.Sprintf("exec-%d", i),
				Log:  log.New(io.Discard, "", 0),
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("executor %d: %v", i, err)
		}
	}
}

// waitDone fails the test if the registry does not drain in time.
func waitDone(t *testing.T, r *Registry) {
	t.Helper()
	select {
	case <-r.Done():
	case <-time.After(2 * time.Minute):
		st, _ := json.Marshal(r.Status())
		t.Fatalf("campaign did not complete; status: %s", st)
	}
}

// mergeAll folds the job directory into per-entry results.
func mergeAll(t *testing.T, dir string, f *spec.File, built []*spec.Built) map[string]*campaign.Result {
	t.Helper()
	got := make(map[string]*campaign.Result, len(built))
	for _, b := range built {
		res, err := b.MergePartials(f, dir, nil)
		if err != nil {
			t.Fatalf("%s: merge: %v", b.Entry.Name, err)
		}
		got[b.Entry.Name] = res
	}
	return got
}

// TestFabricMatchesSingleProcess is the fabric's law: a registry plus
// three concurrent executors produce partials whose merge is
// bit-identical to the single-process run, for every entry.
func TestFabricMatchesSingleProcess(t *testing.T) {
	r, srv, f, built, dir := startRegistry(t, twoKindDoc, 4, time.Minute, nil)
	want := singleProcess(t, f, built)
	runExecutors(t, srv.URL, 3)
	waitDone(t, r)
	got := mergeAll(t, dir, f, built)
	for name, w := range want {
		if !reflect.DeepEqual(w, got[name]) {
			t.Errorf("%s: fabric merge diverged:\nwant %+v\ngot  %+v", name, w, got[name])
		}
	}
	st := r.Status()
	if !st.Done {
		t.Error("status not done after completion")
	}
	if st.Uploads == 0 {
		t.Error("status reports zero accepted uploads")
	}
	if len(st.Jobs) != 1 || st.Jobs[0].State != JobDone {
		t.Errorf("job status %+v, want one done job", st.Jobs)
	}
}

// TestFabricMatrixCellsUploadIntoSubdir: matrix-cell entries have
// artifact paths with a directory component, so their uploads land in
// a subdirectory of the job namespace that only exists once the
// registry creates it at upload time — a plain rename into it fails.
func TestFabricMatrixCellsUploadIntoSubdir(t *testing.T) {
	r, srv, f, built, dir := startRegistry(t, matrixDoc, 2, time.Minute, nil)
	want := singleProcess(t, f, built)
	runExecutors(t, srv.URL, 2)
	waitDone(t, r)
	got := mergeAll(t, dir, f, built)
	for name, w := range want {
		if !reflect.DeepEqual(w, got[name]) {
			t.Errorf("%s: fabric merge diverged:\nwant %+v\ngot  %+v", name, w, got[name])
		}
	}
	parts, err := filepath.Glob(filepath.Join(dir, "page-sweep", "*.part*"))
	if err != nil || len(parts) == 0 {
		t.Fatalf("no partials under the matrix-cell subdirectory (%v)", err)
	}
}

// TestFabricStealsFromDeadExecutor kills nothing: it simulates a dead
// executor by taking a lease and abandoning it, then lets a live
// executor steal the expired lease and finish the campaign — the
// in-process version of the CI chaos job, race-detector friendly.
func TestFabricStealsFromDeadExecutor(t *testing.T) {
	var logBuf syncBuffer
	r, srv, f, built, dir := startRegistry(t, twoKindDoc, 4, 500*time.Millisecond, &logBuf)
	want := singleProcess(t, f, built)

	// The "dead" executor leases a slice and vanishes without renewing.
	body, _ := json.Marshal(leaseRequest{Executor: "doomed"})
	resp, err := http.Post(srv.URL+pathLease, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var reply leaseReply
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if reply.Lease == nil {
		t.Fatal("no lease granted to the doomed executor")
	}

	runExecutors(t, srv.URL, 1)
	waitDone(t, r)

	if st := r.Status(); st.Steals == 0 {
		t.Error("status reports no steals despite an abandoned lease")
	}
	if !strings.Contains(logBuf.String(), "stolen") {
		t.Error("registry log does not mention the stolen lease")
	}
	got := mergeAll(t, dir, f, built)
	for name, w := range want {
		if !reflect.DeepEqual(w, got[name]) {
			t.Errorf("%s: merge after steal diverged:\nwant %+v\ngot  %+v", name, w, got[name])
		}
	}

	// A zombie upload under the stolen lease is ignored, not merged:
	// the slice is already done under the thief's lease.
	b := built[0]
	for _, bb := range built {
		if bb.Entry.Name == reply.Lease.Entry {
			b = bb
		}
	}
	plan, err := campaign.NewPlan(b.Scenario, reply.Lease.ShardSize,
		campaign.Partition{Index: reply.Lease.Index, Count: reply.Lease.Count})
	if err != nil {
		t.Fatal(err)
	}
	plan.ParamsDigest = b.EngineConfig(f).ParamsDigest
	partial, err := campaign.Execute(b.Scenario, plan, campaign.ExecConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := partial.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(srv.URL+pathUpload+"?lease="+reply.Lease.ID, "application/jsonl", &buf)
	if err != nil {
		t.Fatal(err)
	}
	var up uploadReply
	if err := json.NewDecoder(resp.Body).Decode(&up); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if up.Accepted {
		t.Error("zombie upload under a stolen lease was accepted")
	}
}

// TestFabricEarlyStopCancelsSlices: with a single executor pulling
// slices in order, the registry decides the stop as soon as the
// covering slice uploads and cancels everything beyond it — the
// cancelled slices are never executed, and the merge still lands on
// the single-process result bit for bit.
func TestFabricEarlyStopCancelsSlices(t *testing.T) {
	r, srv, f, built, dir := startRegistry(t, stopperDoc, 8, time.Minute, nil)
	want := singleProcess(t, f, built)
	if !want["stopper"].EarlyStopped {
		t.Fatal("reference run did not stop early; the fixture is mis-sized")
	}

	runExecutors(t, srv.URL, 1)
	waitDone(t, r)

	st := r.Status()
	entry := st.Jobs[0].Entries[0]
	if !entry.EarlyStopped {
		t.Error("status does not report the early stop")
	}
	cancelled := 0
	for _, s := range entry.Slices {
		if s.State == sliceCancelled {
			cancelled++
		}
	}
	if cancelled == 0 {
		t.Error("no slices cancelled despite the early stop")
	}
	if st.Jobs[0].SlicesCancelled != cancelled {
		t.Errorf("job-level cancelled count %d disagrees with slices (%d)", st.Jobs[0].SlicesCancelled, cancelled)
	}
	got := mergeAll(t, dir, f, built)
	if !reflect.DeepEqual(want["stopper"], got["stopper"]) {
		t.Errorf("early-stopped fabric merge diverged:\nwant %+v\ngot  %+v", want["stopper"], got["stopper"])
	}
}

// TestFabricRejectsBadUploads: garbage, wrong-slice and truncated
// bodies are all rejected with 409 and the slice is re-queued; a
// correct retry then completes it.
func TestFabricRejectsBadUploads(t *testing.T) {
	doc := `{"seed": 3, "shard_size": 64, "scenarios": [
	  {"name": "mission", "kind": "memsim",
	   "params": {"duplex": true, "lambda_bit_per_hour": 6e-4,
	              "lambda_symbol_per_hour": 2e-4, "horizon_hours": 24,
	              "trials": 200}}]}`
	r, srv, f, built, _ := startRegistry(t, doc, 2, time.Minute, nil)
	b := built[0]

	lease := func() *Lease {
		body, _ := json.Marshal(leaseRequest{Executor: "tester"})
		resp, err := http.Post(srv.URL+pathLease, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var reply leaseReply
		if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
			t.Fatal(err)
		}
		if reply.Lease == nil {
			t.Fatal("no lease granted")
		}
		return reply.Lease
	}
	upload := func(id string, body []byte) *http.Response {
		resp, err := http.Post(srv.URL+pathUpload+"?lease="+id, "application/jsonl", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	serialize := func(part campaign.Partition) []byte {
		plan, err := campaign.NewPlan(b.Scenario, 64, part)
		if err != nil {
			t.Fatal(err)
		}
		plan.ParamsDigest = b.EngineConfig(f).ParamsDigest
		partial, err := campaign.Execute(b.Scenario, plan, campaign.ExecConfig{})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := partial.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	l := lease()
	if resp := upload(l.ID, []byte("not a partial\n")); resp.StatusCode != http.StatusConflict {
		t.Errorf("garbage upload: status %d, want %d", resp.StatusCode, http.StatusConflict)
	}

	l = lease() // the reject re-queued the slice
	otherIdx := 1 - l.Index
	if resp := upload(l.ID, serialize(campaign.Partition{Index: otherIdx, Count: l.Count})); resp.StatusCode != http.StatusConflict {
		t.Errorf("wrong-slice upload: status %d, want %d", resp.StatusCode, http.StatusConflict)
	}

	l = lease()
	good := serialize(campaign.Partition{Index: l.Index, Count: l.Count})
	lines := bytes.SplitAfter(good, []byte("\n"))
	truncated := bytes.Join(lines[:len(lines)-2], nil)
	if resp := upload(l.ID, truncated); resp.StatusCode != http.StatusConflict {
		t.Errorf("truncated upload: status %d, want %d", resp.StatusCode, http.StatusConflict)
	}

	if st := r.Status(); st.Rejected != 3 {
		t.Errorf("status counts %d rejected uploads, want 3", st.Rejected)
	}

	l = lease()
	resp := upload(l.ID, serialize(campaign.Partition{Index: l.Index, Count: l.Count}))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("valid retry: status %d", resp.StatusCode)
	}
	var up uploadReply
	if err := json.NewDecoder(resp.Body).Decode(&up); err != nil {
		t.Fatal(err)
	}
	if !up.Accepted {
		t.Errorf("valid retry not accepted: %s", up.Reason)
	}
}

// TestFabricAdoptsExistingPartials: a registry restarted over a
// directory of completed uploads resumes done instead of recomputing.
func TestFabricAdoptsExistingPartials(t *testing.T) {
	var logBuf syncBuffer
	r, srv, _, _, _ := startRegistry(t, twoKindDoc, 2, time.Minute, &logBuf)
	runExecutors(t, srv.URL, 2)
	waitDone(t, r)

	r2, err := NewRegistry(RegistryConfig{
		Dir:    r.Dir(),
		Slices: 2,
		Log:    log.New(io.Discard, "", 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	st2, err := r2.Submit([]byte(twoKindDoc), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != JobDone {
		t.Fatalf("restarted registry did not adopt the completed partials: job %s (%s)", st2.State, st2.Error)
	}
	adopted := 0
	full, _ := r2.Job(st2.ID)
	for _, e := range full.Entries {
		for _, s := range e.Slices {
			if s.Adopted {
				adopted++
			}
		}
	}
	if adopted == 0 {
		t.Error("no slice marked adopted after restart")
	}

	// A different slicing must refuse the leftover partials loudly — as
	// a failed job carrying the diagnosis.
	r3, err := NewRegistry(RegistryConfig{
		Dir:    r.Dir(),
		Slices: 3,
		Log:    log.New(io.Discard, "", 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	st3, err := r3.Submit([]byte(twoKindDoc), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st3.State != JobFailed || !strings.Contains(st3.Error, "leftover partial") {
		t.Errorf("mismatched -slices job: state %s error %q, want failed on leftover partials", st3.State, st3.Error)
	}
}

// TestFabricEmptySlices: more slices than shards leaves some slices
// empty; they are never leased and the campaign still completes.
func TestFabricEmptySlices(t *testing.T) {
	doc := `{"seed": 3, "shard_size": 64, "scenarios": [
	  {"name": "tiny", "kind": "memsim",
	   "params": {"duplex": true, "lambda_bit_per_hour": 6e-4,
	              "lambda_symbol_per_hour": 2e-4, "horizon_hours": 24,
	              "trials": 100}}]}`
	r, srv, f, built, dir := startRegistry(t, doc, 8, time.Minute, nil)
	want := singleProcess(t, f, built)
	runExecutors(t, srv.URL, 2)
	waitDone(t, r)
	got := mergeAll(t, dir, f, built)
	if !reflect.DeepEqual(want["tiny"], got["tiny"]) {
		t.Errorf("empty-slice merge diverged:\nwant %+v\ngot  %+v", want["tiny"], got["tiny"])
	}
	empty := 0
	for _, s := range r.Status().Jobs[0].Entries[0].Slices {
		if s.State == sliceEmpty {
			empty++
		}
	}
	if empty == 0 {
		t.Error("expected empty slices with 8 slices over 2 shards")
	}
}

// TestNamespace pins the per-spec directory scheme: stable for equal
// bytes, distinct for different bytes.
func TestNamespace(t *testing.T) {
	a := Namespace("work", []byte("spec-a"))
	if a != Namespace("work", []byte("spec-a")) {
		t.Error("namespace not stable for identical bytes")
	}
	if a == Namespace("work", []byte("spec-b")) {
		t.Error("distinct specs share a namespace")
	}
	if !strings.HasPrefix(a, "work") {
		t.Errorf("namespace %q escapes the base directory", a)
	}
}

// TestUploadTempFilesInvisible: a crashed upload's temp file must not
// be picked up by the partial-file scan (its name has no .part).
func TestUploadTempFilesInvisible(t *testing.T) {
	r, srv, f, built, dir := startRegistry(t, twoKindDoc, 2, time.Minute, nil)
	if err := os.WriteFile(dir+"/upload-stale.tmp", []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	runExecutors(t, srv.URL, 1)
	waitDone(t, r)
	got := mergeAll(t, dir, f, built)
	want := singleProcess(t, f, built)
	for name, w := range want {
		if !reflect.DeepEqual(w, got[name]) {
			t.Errorf("%s: merge diverged with a stale temp file present", name)
		}
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for registry logs.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
