package fabric

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sync"
	"time"

	"repro/internal/campaign"
	"repro/internal/campaign/spec"
)

// Config assembles a coordinator for one spec.
type Config struct {
	// SpecBytes is the raw spec file, served verbatim at /spec so
	// executors build the exact same scenarios (and params digests)
	// the coordinator planned with.
	SpecBytes []byte
	// File and Built are the parsed and compiled spec (spec.Load +
	// BuildAll of SpecBytes).
	File  *spec.File
	Built []*spec.Built
	// Dir is the directory validated partial uploads land in, and the
	// directory the final merge reads — callers normally pass
	// Namespace(workDir, SpecBytes) so concurrent specs never collide.
	Dir string
	// Slices is the partition count each entry's shard range is split
	// into (0 = DefaultSlices). More slices mean finer-grained work
	// stealing and earlier stop cancellation, at more HTTP round trips.
	Slices int
	// LeaseTimeout is how long a slice may go without an upload or
	// renewal before it is stolen (0 = DefaultLeaseTimeout).
	LeaseTimeout time.Duration
	// Log receives lease, steal, upload and completion events
	// (nil = standard logger).
	Log *log.Logger
}

// slice lease states.
const (
	slicePending   = "pending"
	sliceLeased    = "leased"
	sliceDone      = "done"
	sliceCancelled = "cancelled"
	sliceEmpty     = "empty"
)

// slice is one partition of one entry's campaign.
type slice struct {
	plan     *campaign.Plan
	path     string // where the validated upload lands
	state    string
	leaseID  string
	holder   string
	deadline time.Time
	steals   int
	adopted  bool
}

// task is one spec entry being distributed.
type task struct {
	built   *spec.Built
	cfg     campaign.Config // engine config: shard size, stop rule, digest
	slices  []*slice
	arrived map[int]*campaign.Partial // slice index -> accepted partial (counters resident)

	// Contiguous-prefix early-stop state, mirroring campaign.Merge's
	// pass 1: prefix is the next global shard not yet folded,
	// slicePtr the slice owning it.
	prefix        int
	slicePtr      int
	prefixSuccess int64
	prefixW       campaign.Moments // weighted plans: folded stop-counter moments
	prefixTrials  int
	stopped       bool
	stopShard     int

	doneTrials int
	done       bool
}

func (t *task) numShards() int { return t.slices[0].plan.NumShards }

func (t *task) totalTrials() int { return t.built.Scenario.Trials() }

// leaseRef locates a lease's slice.
type leaseRef struct {
	task  *task
	slice int
}

// Coordinator serves a campaign plan to executors and folds their
// uploads. All mutable state is guarded by mu; plans and spec
// structures are immutable after New.
type Coordinator struct {
	cfg Config
	log *log.Logger

	mu        sync.Mutex
	tasks     []*task
	leases    map[string]leaseRef
	leaseSeq  int
	executors map[string]time.Time
	start     time.Time
	finished  bool
	doneCh    chan struct{}

	uploads, ignored, rejected, steals int
}

// New validates the config, plans every entry's slices, adopts any
// complete partials already in Dir (a coordinator restarted after a
// crash resumes instead of recomputing), and returns a coordinator
// ready to serve.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.SpecBytes) == 0 || cfg.File == nil || len(cfg.Built) == 0 {
		return nil, fmt.Errorf("fabric: config needs the spec bytes and its parsed entries")
	}
	if cfg.Slices <= 0 {
		cfg.Slices = DefaultSlices
	}
	if cfg.LeaseTimeout <= 0 {
		cfg.LeaseTimeout = DefaultLeaseTimeout
	}
	logger := cfg.Log
	if logger == nil {
		logger = log.Default()
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("fabric: workdir: %w", err)
	}
	c := &Coordinator{
		cfg:       cfg,
		log:       logger,
		leases:    make(map[string]leaseRef),
		executors: make(map[string]time.Time),
		start:     time.Now(),
		doneCh:    make(chan struct{}),
	}
	for _, b := range cfg.Built {
		ecfg := b.EngineConfig(cfg.File)
		t := &task{built: b, cfg: ecfg, arrived: make(map[int]*campaign.Partial)}
		expected := make(map[string]*slice, cfg.Slices)
		for i := 0; i < cfg.Slices; i++ {
			part := campaign.Partition{Index: i, Count: cfg.Slices}
			plan, err := campaign.NewPlan(b.Scenario, ecfg.ShardSize, part)
			if err != nil {
				return nil, fmt.Errorf("fabric: %s: %w", b.Entry.Name, err)
			}
			plan.ParamsDigest = ecfg.ParamsDigest
			s := &slice{plan: plan, path: b.Entry.PartialPath(cfg.Dir, part), state: slicePending}
			if plan.Shards() == 0 {
				s.state = sliceEmpty
			}
			expected[s.path] = s
			t.slices = append(t.slices, s)
		}
		if err := c.adoptExisting(t, expected); err != nil {
			return nil, err
		}
		c.advanceTask(t)
		c.tasks = append(c.tasks, t)
	}
	c.checkFinished()
	return c, nil
}

// adoptExisting scans the entry's partial files already under Dir. A
// complete, valid upload from a previous coordinator run is adopted as
// done; an incomplete one is ignored (the fresh upload atomically
// replaces it); a file that belongs to a different slicing or a
// different params digest is an error — merging would fail on it
// later, so refuse to start instead.
func (c *Coordinator) adoptExisting(t *task, expected map[string]*slice) error {
	paths, err := t.built.Entry.PartialFiles(c.cfg.Dir)
	if err != nil {
		return fmt.Errorf("fabric: %s: %w", t.built.Entry.Name, err)
	}
	for _, path := range paths {
		s, ok := expected[path]
		if !ok {
			return fmt.Errorf("fabric: %s: leftover partial %s does not match -slices %d; remove it or the workdir",
				t.built.Entry.Name, path, c.cfg.Slices)
		}
		if s.state == sliceEmpty {
			continue
		}
		p, err := campaign.OpenPartial(path)
		if err != nil {
			return fmt.Errorf("fabric: %s: %w", t.built.Entry.Name, err)
		}
		if err := p.MatchesPlan(s.plan); err != nil {
			p.Close()
			return fmt.Errorf("fabric: %s: stale partial: %w", t.built.Entry.Name, err)
		}
		if !p.Complete(s.plan) {
			p.Close()
			c.log.Printf("fabric: %s: ignoring incomplete partial %s (will be replaced)", t.built.Entry.Name, path)
			continue
		}
		p.Close() // counters stay resident; the merge reopens for samples
		s.state = sliceDone
		s.adopted = true
		t.arrived[s.plan.Part.Index] = p
		t.doneTrials += s.plan.PartitionTrials()
		c.log.Printf("fabric: %s: adopted completed slice %s from a previous run", t.built.Entry.Name, s.plan.Part)
	}
	return nil
}

// advanceTask folds newly contiguous shards into the prefix and
// re-decides the early stop, mirroring campaign.Merge's pass 1 shard
// for shard; on a stop it cancels every slice strictly beyond the
// stopping shard. Must be called with mu held (or before serving).
func (c *Coordinator) advanceTask(t *task) {
	numShards := t.numShards()
	for !t.stopped && t.prefix < numShards {
		for t.slicePtr < len(t.slices) && t.slices[t.slicePtr].plan.End <= t.prefix {
			t.slicePtr++
		}
		if t.slicePtr >= len(t.slices) {
			break
		}
		s := t.slices[t.slicePtr]
		if s.state != sliceDone {
			break
		}
		p := t.arrived[s.plan.Part.Index]
		stop := t.cfg.Stop
		weighted := s.plan.Weighted
		var v int64
		if stop != nil {
			v, _ = p.ShardCounter(t.prefix, stop.Counter)
			if weighted {
				m, _ := p.ShardWeights(t.prefix, stop.Counter)
				t.prefixW.WSum += m.WSum
				t.prefixW.WSum2 += m.WSum2
			}
		}
		t.prefixSuccess += v
		_, t.prefixTrials = s.plan.ShardSpan(t.prefix)
		t.prefix++
		// Weighted plans stop on the relative-error rule over the folded
		// moments, exactly as Merge re-decides it; unweighted plans use
		// Wilson. A counter that increments more than once per trial is
		// not a binomial proportion; leave that stop to Merge's loud
		// error.
		fired := false
		if stop != nil {
			if weighted {
				fired = stop.SatisfiedWeighted(t.prefixW, t.prefixTrials)
			} else {
				fired = t.prefixSuccess <= int64(t.prefixTrials) &&
					stop.Satisfied(t.prefixSuccess, t.prefixTrials)
			}
		}
		if fired {
			t.stopped = true
			t.stopShard = t.prefix - 1
			for _, other := range t.slices {
				if other.plan.First > t.stopShard && (other.state == slicePending || other.state == sliceLeased) {
					other.state = sliceCancelled
				}
			}
			c.log.Printf("fabric: %s: early stop decided at shard %d/%d; cancelled remaining slices",
				t.built.Entry.Name, t.stopShard, numShards)
		}
	}
	if !t.done {
		done := true
		for _, s := range t.slices {
			if s.state != sliceDone && s.state != sliceCancelled && s.state != sliceEmpty {
				done = false
				break
			}
		}
		if done {
			t.done = true
			c.log.Printf("fabric: %s: complete (%d trials)", t.built.Entry.Name, t.doneTrials)
		}
	}
}

// checkFinished closes the done channel once every task is complete.
// Must be called with mu held (or before serving).
func (c *Coordinator) checkFinished() {
	if c.finished {
		return
	}
	for _, t := range c.tasks {
		if !t.done {
			return
		}
	}
	c.finished = true
	close(c.doneCh)
	c.log.Printf("fabric: campaign complete: %d uploads, %d steals, %s elapsed",
		c.uploads, c.steals, time.Since(c.start).Round(time.Millisecond))
}

// Done is closed when every entry has completed (or early-stopped).
func (c *Coordinator) Done() <-chan struct{} { return c.doneCh }

// Dir returns the directory the validated partials land in — the
// directory to merge.
func (c *Coordinator) Dir() string { return c.cfg.Dir }

// Handler returns the coordinator's HTTP API.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(pathSpec, c.handleSpec)
	mux.HandleFunc(pathLease, c.handleLease)
	mux.HandleFunc(pathRenew, c.handleRenew)
	mux.HandleFunc(pathUpload, c.handleUpload)
	mux.HandleFunc(pathStatus, c.handleStatus)
	return mux
}

func (c *Coordinator) handleSpec(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.Write(c.cfg.SpecBytes)
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req leaseRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
		http.Error(w, "bad lease request: "+err.Error(), http.StatusBadRequest)
		return
	}
	now := time.Now()

	c.mu.Lock()
	defer c.mu.Unlock()
	if req.Executor != "" {
		c.executors[req.Executor] = now
	}
	if c.finished {
		writeJSON(w, leaseReply{Done: true})
		return
	}
	var earliest time.Time
	for _, t := range c.tasks {
		if t.done {
			continue
		}
		for _, s := range t.slices {
			switch s.state {
			case slicePending:
				writeJSON(w, c.grantLocked(t, s, req.Executor, now, false))
				return
			case sliceLeased:
				if now.After(s.deadline) {
					writeJSON(w, c.grantLocked(t, s, req.Executor, now, true))
					return
				}
				if earliest.IsZero() || s.deadline.Before(earliest) {
					earliest = s.deadline
				}
			}
		}
	}
	// Everything is leased (or done): tell the executor when the next
	// deadline could free work, bounded to keep polling responsive
	// without hammering.
	wait := 500 * time.Millisecond
	if !earliest.IsZero() {
		if d := time.Until(earliest); d > wait {
			wait = d
		}
	}
	if wait > 2*time.Second {
		wait = 2 * time.Second
	}
	writeJSON(w, leaseReply{WaitMS: wait.Milliseconds()})
}

// grantLocked assigns a slice to an executor under a fresh lease.
func (c *Coordinator) grantLocked(t *task, s *slice, executor string, now time.Time, stolen bool) leaseReply {
	if stolen {
		c.steals++
		s.steals++
		delete(c.leases, s.leaseID)
		c.log.Printf("fabric: lease %s (%s slice %s) held by %s expired; stolen by %s",
			s.leaseID, t.built.Entry.Name, s.plan.Part, s.holder, executor)
	}
	c.leaseSeq++
	s.leaseID = fmt.Sprintf("L%d", c.leaseSeq)
	s.holder = executor
	s.state = sliceLeased
	s.deadline = now.Add(c.cfg.LeaseTimeout)
	c.leases[s.leaseID] = leaseRef{task: t, slice: s.plan.Part.Index}
	renew := c.cfg.LeaseTimeout / 3
	if renew < 50*time.Millisecond {
		renew = 50 * time.Millisecond
	}
	c.log.Printf("fabric: leased %s slice %s to %s as %s (deadline %s)",
		t.built.Entry.Name, s.plan.Part, executor, s.leaseID, c.cfg.LeaseTimeout)
	return leaseReply{Lease: &Lease{
		ID:           s.leaseID,
		Entry:        t.built.Entry.Name,
		Scenario:     s.plan.Scenario,
		Index:        s.plan.Part.Index,
		Count:        s.plan.Part.Count,
		Trials:       s.plan.Trials,
		ShardSize:    s.plan.ShardSize,
		NumShards:    s.plan.NumShards,
		ParamsDigest: s.plan.ParamsDigest,
		DeadlineMS:   s.deadline.UnixMilli(),
		RenewMS:      renew.Milliseconds(),
	}}
}

func (c *Coordinator) handleRenew(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	id := r.URL.Query().Get("lease")
	c.mu.Lock()
	defer c.mu.Unlock()
	ref, ok := c.leases[id]
	if !ok {
		http.Error(w, "lease gone", http.StatusGone)
		return
	}
	s := ref.task.slices[ref.slice]
	if s.state != sliceLeased || s.leaseID != id {
		http.Error(w, "lease gone", http.StatusGone)
		return
	}
	s.deadline = time.Now().Add(c.cfg.LeaseTimeout)
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handleUpload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	id := r.URL.Query().Get("lease")
	c.mu.Lock()
	ref, ok := c.leases[id]
	c.mu.Unlock()
	if !ok {
		// The lease was stolen and its slice completed by someone else,
		// or the id is garbage; either way the bytes are not needed.
		io.Copy(io.Discard, r.Body)
		writeJSON(w, uploadReply{Accepted: false, Reason: "lease gone"})
		return
	}
	t, s := ref.task, ref.task.slices[ref.slice]

	// Stream the body to a temp file and validate it before touching
	// any coordinator state: uploads can be large (spilled samples) and
	// must never be buffered whole in memory or half-written into the
	// merge directory. The temp name cannot collide with the .part
	// prefix PartialFiles scans for.
	tmp, err := os.CreateTemp(c.cfg.Dir, "upload-*.tmp")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	tmpPath := tmp.Name()
	defer os.Remove(tmpPath)
	_, cpErr := io.Copy(tmp, r.Body)
	if err := tmp.Close(); cpErr == nil {
		cpErr = err
	}
	if cpErr != nil {
		http.Error(w, "upload read: "+cpErr.Error(), http.StatusBadRequest)
		return
	}
	p, err := campaign.OpenPartial(tmpPath)
	if err == nil {
		err = p.MatchesPlan(s.plan)
		if err == nil && !p.Complete(s.plan) {
			err = fmt.Errorf("upload covers %d of %d shards of slice %s: truncated", len(p.Shards()), s.plan.Shards(), s.plan.Part)
		}
	}
	if err != nil {
		if p != nil {
			p.Close()
		}
		c.mu.Lock()
		c.rejected++
		// Re-queue immediately: the slice must not wait out the full
		// lease deadline because one executor shipped garbage.
		if s.state == sliceLeased && s.leaseID == id {
			s.state = slicePending
			delete(c.leases, id)
		}
		c.mu.Unlock()
		c.log.Printf("fabric: rejected upload for %s slice %s: %v", t.built.Entry.Name, s.plan.Part, err)
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	p.Close() // counters stay resident for the prefix fold

	c.mu.Lock()
	defer c.mu.Unlock()
	if s.state == sliceDone || s.state == sliceCancelled {
		c.ignored++
		writeJSON(w, uploadReply{Accepted: false, Reason: "slice already " + s.state})
		return
	}
	if err := os.Rename(tmpPath, s.path); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	delete(c.leases, s.leaseID)
	s.state = sliceDone
	t.arrived[s.plan.Part.Index] = p
	t.doneTrials += s.plan.PartitionTrials()
	c.uploads++
	c.log.Printf("fabric: accepted %s slice %s (%d trials) from %s",
		t.built.Entry.Name, s.plan.Part, s.plan.PartitionTrials(), s.holder)
	c.advanceTask(t)
	c.checkFinished()
	writeJSON(w, uploadReply{Accepted: true})
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, c.Status())
}

// Status snapshots the coordinator's progress.
func (c *Coordinator) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	elapsed := time.Since(c.start)
	st := Status{
		StartUnixMS: c.start.UnixMilli(),
		UptimeSec:   elapsed.Seconds(),
		Done:        c.finished,
		Slices:      c.cfg.Slices,
		LeaseMS:     c.cfg.LeaseTimeout.Milliseconds(),
		Executors:   len(c.executors),
		Uploads:     c.uploads,
		Ignored:     c.ignored,
		Rejected:    c.rejected,
		Steals:      c.steals,
	}
	for _, t := range c.tasks {
		es := EntryStatus{
			Entry:        t.built.Entry.Name,
			Scenario:     t.slices[0].plan.Scenario,
			Done:         t.done,
			EarlyStopped: t.stopped,
			NumShards:    t.numShards(),
			PrefixShards: t.prefix,
			DoneTrials:   t.doneTrials,
			TotalTrials:  t.totalTrials(),
		}
		if elapsed > 0 {
			es.TrialsPerSec = float64(t.doneTrials) / elapsed.Seconds()
		}
		for _, s := range t.slices {
			es.Slices = append(es.Slices, SliceStatus{
				Index:   s.plan.Part.Index,
				State:   s.state,
				Holder:  s.holder,
				Steals:  s.steals,
				Trials:  s.plan.PartitionTrials(),
				Adopted: s.adopted,
			})
		}
		st.Entries = append(st.Entries, es)
	}
	return st
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
