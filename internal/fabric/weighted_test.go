package fabric

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// weightedDoc is an importance-sampled rare-event campaign with a
// relative-error stop — the coordinator must fold weight moments over
// the contiguous prefix and re-decide the weighted stop exactly as the
// merger does.
const weightedDoc = `{"seed": 11, "shard_size": 256, "scenarios": [{
  "name": "rare", "kind": "memsim",
  "sampling": {"method": "tilt", "factor": 19169},
  "params": {"duplex": false, "n": 18, "k": 16, "lambda_bit_per_hour": 1.7e-8,
             "lambda_symbol_per_hour": 8.5e-10,
             "scrub_period_hours": 4, "exponential_scrub": true,
             "horizon_hours": 48, "trials": 30000},
  "stop": {"counter": "capability_exceeded", "rel_half_width": 0.15,
           "min_trials": 1000}
}]}`

// TestFabricWeightedMatchesSingleProcess: the fabric law holds for
// weighted campaigns — a 3-executor fleet's merged result is
// bit-identical to the single-process run, weighted early stop
// re-decision included, and the uploads land gzip-compressed at rest.
func TestFabricWeightedMatchesSingleProcess(t *testing.T) {
	r, srv, f, built, dir := startRegistry(t, weightedDoc, 4, time.Minute, nil)
	want := singleProcess(t, f, built)
	if !want["rare"].EarlyStopped {
		t.Fatal("want a weighted early-stopping reference run")
	}
	if want["rare"].Weights == nil {
		t.Fatal("reference run carries no weight moments")
	}
	runExecutors(t, srv.URL, 3)
	waitDone(t, r)
	got := mergeAll(t, dir, f, built)
	if !reflect.DeepEqual(want["rare"], got["rare"]) {
		t.Errorf("weighted fabric merge diverged:\nwant %+v\ngot  %+v", want["rare"], got["rare"])
	}

	// Early stop must have been decided by the registry, not just the
	// merge: with the stop rule firing well before 30000 trials, some
	// slices past the stopping shard must have been cancelled.
	st := r.Status()
	cancelled := 0
	for _, jb := range st.Jobs {
		for _, e := range jb.Entries {
			for _, s := range e.Slices {
				if s.State == sliceCancelled {
					cancelled++
				}
			}
		}
	}
	if cancelled == 0 {
		t.Error("registry cancelled no slices despite a weighted early stop")
	}

	// Uploaded partials are stored compressed at rest.
	parts, err := filepath.Glob(filepath.Join(dir, "*.part*"))
	if err != nil || len(parts) == 0 {
		t.Fatalf("no stored partials (%v)", err)
	}
	for _, p := range parts {
		head := make([]byte, 2)
		fh, err := os.Open(p)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fh.Read(head); err != nil {
			t.Fatal(err)
		}
		fh.Close()
		if head[0] != 0x1f || head[1] != 0x8b {
			t.Errorf("upload %s not gzip at rest (magic %x)", filepath.Base(p), head)
		}
	}
}
