package fabric

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"time"

	"repro/internal/campaign"
	"repro/internal/campaign/spec"
)

// ExecutorConfig assembles one stateless executor.
type ExecutorConfig struct {
	// URL is the registry's base URL.
	URL string
	// Name identifies this executor in leases and registry logs.
	Name string
	// Token is the bearer token sent on every mutating request; leave
	// empty against an open registry.
	Token string
	// Workers is the per-slice goroutine count (0 = GOMAXPROCS).
	Workers int
	// UploadDelay sleeps between executing a slice and uploading it —
	// a fault-injection hook: a SIGKILL during the sleep leaves the
	// lease to expire and the slice to be stolen, which is what the
	// chaos test in CI arranges deterministically.
	UploadDelay time.Duration
	// DrainTimeout is how long the registry may be unreachable — after
	// having been reached at least once — before the executor drains
	// and exits cleanly (0 = 15s). A registry that was never reachable
	// is an error instead, after a 30s startup grace window.
	DrainTimeout time.Duration
	// Client issues the HTTP requests (nil = a client with sane
	// timeouts for everything but the upload itself).
	Client *http.Client
	// Log receives progress (nil = standard logger).
	Log *log.Logger
}

// errUnauthorized aborts the executor immediately: a rejected token
// will not start working on retry.
var errUnauthorized = errors.New("fabric: executor: registry rejected the bearer token")

// backoff produces capped, jittered exponential delays: each call
// returns a duration uniformly drawn from [d/2, d] where d doubles
// from base up to max. The jitter decorrelates a fleet of executors
// that all lost the registry (or all found no work) at the same
// moment, so their retries do not arrive as synchronized waves.
type backoff struct {
	d, base, max time.Duration
	rng          *rand.Rand
}

func newBackoff(base, max time.Duration) *backoff {
	return &backoff{d: base, base: base, max: max, rng: rand.New(rand.NewSource(time.Now().UnixNano()))}
}

func (b *backoff) next() time.Duration {
	d := b.d
	b.d *= 2
	if b.d > b.max {
		b.d = b.max
	}
	return d/2 + time.Duration(b.rng.Int63n(int64(d/2)+1))
}

func (b *backoff) reset() { b.d = b.base }

// sleepCtx sleeps for d or until the context is cancelled; it reports
// whether the full sleep elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// builtJob is one job's spec, fetched from the registry, compiled and
// cached for the executor's lifetime (job IDs are content-addressed,
// so a cache entry can never go stale).
type builtJob struct {
	file   *spec.File
	byName map[string]*spec.Built
}

// executor carries the per-run state of RunExecutor.
type executor struct {
	cfg    ExecutorConfig
	client *http.Client
	log    *log.Logger
	specs  map[string]*builtJob // job ID -> compiled spec
}

// RunExecutor runs one job-agnostic executor against the registry at
// cfg.URL: lease a slice from whichever job the registry offers, fetch
// and cache that job's spec (verified against the lease's digest),
// execute the slice in memory, upload the serialized partial, renew
// the lease in the background while computing — and repeat across
// jobs until the registry reports it has drained. It returns nil on a
// clean drain — including the registry becoming unreachable after
// having been reached, which is how a fleet winds down when the
// registry exits — and an error on cancellation, a rejected token, or
// a registry that never answered. Transient failures retry under
// capped jittered exponential backoff and honor ctx cancellation.
func RunExecutor(ctx context.Context, cfg ExecutorConfig) error {
	logger := cfg.Log
	if logger == nil {
		logger = log.Default()
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Minute}
	}
	if cfg.Name == "" {
		cfg.Name = "executor"
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 15 * time.Second
	}
	e := &executor{cfg: cfg, client: client, log: logger, specs: make(map[string]*builtJob)}

	idle := newBackoff(100*time.Millisecond, 2*time.Second)  // registry has no work for us
	retry := newBackoff(250*time.Millisecond, 5*time.Second) // connection or lease errors
	startDeadline := time.Now().Add(30 * time.Second)
	contacted := false
	var unreachableSince time.Time
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		lease, done, err := e.requestLease(ctx)
		if err != nil {
			if errors.Is(err, errUnauthorized) {
				return err
			}
			if !contacted {
				// Startup race: the registry may still be coming up
				// (executors and registry start concurrently in CI and
				// under process supervisors).
				if time.Now().After(startDeadline) {
					return fmt.Errorf("fabric: executor %s: registry at %s not reachable: %w", cfg.Name, cfg.URL, err)
				}
			} else {
				if unreachableSince.IsZero() {
					unreachableSince = time.Now()
				}
				if time.Since(unreachableSince) > cfg.DrainTimeout {
					logger.Printf("fabric: executor %s: registry unreachable for %s (%v); draining",
						cfg.Name, cfg.DrainTimeout, err)
					return nil
				}
			}
			if !sleepCtx(ctx, retry.next()) {
				return ctx.Err()
			}
			continue
		}
		contacted = true
		unreachableSince = time.Time{}
		retry.reset()
		if done {
			logger.Printf("fabric: executor %s: registry drained; exiting", cfg.Name)
			return nil
		}
		if lease == nil {
			// 204: everything is leased, quota-blocked or between jobs.
			if !sleepCtx(ctx, idle.next()) {
				return ctx.Err()
			}
			continue
		}
		idle.reset()
		bj, err := e.builtFor(ctx, lease)
		if err == nil {
			err = e.runLease(ctx, bj, lease)
		}
		if err != nil {
			// A failed slice (bad lease, rejected upload) is the
			// registry's to reassign; log and keep pulling work.
			logger.Printf("fabric: executor %s: lease %s (job %s): %v", cfg.Name, lease.ID, lease.Job, err)
			if !sleepCtx(ctx, retry.next()) {
				return ctx.Err()
			}
		}
	}
}

// post issues an authenticated POST with the executor's token.
func (e *executor) post(ctx context.Context, url, contentType string, body io.Reader) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, body)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", contentType)
	setBearer(req, e.cfg.Token)
	return e.client.Do(req)
}

// requestLease asks the registry for work. A nil lease with done=false
// means no grantable work right now (idle-backoff and retry).
func (e *executor) requestLease(ctx context.Context) (lease *Lease, done bool, err error) {
	body, _ := json.Marshal(leaseRequest{Executor: e.cfg.Name})
	resp, err := e.post(ctx, e.cfg.URL+pathLease, "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		var reply leaseReply
		if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
			return nil, false, err
		}
		return reply.Lease, reply.Done, nil
	case http.StatusNoContent:
		return nil, false, nil
	case http.StatusUnauthorized:
		return nil, false, errUnauthorized
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<12))
		return nil, false, fmt.Errorf("POST %s: %s: %s", pathLease, resp.Status, bytes.TrimSpace(msg))
	}
}

// builtFor returns the lease's compiled spec, fetching it from the
// registry on first encounter and verifying the bytes against the
// lease's digest — a mismatch means the registry swapped specs under a
// job ID, which content-addressed IDs make impossible short of a bug
// or an imposter, so it is an error, not a retry.
func (e *executor) builtFor(ctx context.Context, lease *Lease) (*builtJob, error) {
	if bj, ok := e.specs[lease.Job]; ok {
		return bj, nil
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, e.cfg.URL+pathJobs+"/"+lease.Job+"/spec", nil)
	if err != nil {
		return nil, err
	}
	resp, err := e.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<12))
		return nil, fmt.Errorf("GET spec for job %s: %s: %s", lease.Job, resp.Status, bytes.TrimSpace(msg))
	}
	specBytes, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if got := SpecDigest(specBytes); got != lease.SpecDigest {
		return nil, fmt.Errorf("job %s spec digest mismatch: lease says %s, bytes hash to %s", lease.Job, lease.SpecDigest, got)
	}
	f, err := spec.Parse(specBytes)
	if err != nil {
		return nil, fmt.Errorf("job %s spec does not parse: %w", lease.Job, err)
	}
	built, err := f.BuildAll()
	if err != nil {
		return nil, fmt.Errorf("job %s spec does not build: %w", lease.Job, err)
	}
	bj := &builtJob{file: f, byName: make(map[string]*spec.Built, len(built))}
	for _, b := range built {
		bj.byName[b.Entry.Name] = b
	}
	e.specs[lease.Job] = bj
	e.log.Printf("fabric: executor %s: built %d entries for job %s", e.cfg.Name, len(built), lease.Job)
	return bj, nil
}

// runLease executes one leased slice and uploads the result.
func (e *executor) runLease(ctx context.Context, bj *builtJob, lease *Lease) error {
	b, ok := bj.byName[lease.Entry]
	if !ok {
		return fmt.Errorf("registry leased unknown entry %q — executor built a different spec", lease.Entry)
	}
	ecfg := b.EngineConfig(bj.file)
	plan, err := campaign.NewPlan(b.Scenario, lease.ShardSize, campaign.Partition{Index: lease.Index, Count: lease.Count})
	if err != nil {
		return err
	}
	plan.ParamsDigest = ecfg.ParamsDigest
	// The lease echoes the registry's plan; any disagreement means the
	// two sides built different campaigns from the "same" spec (version
	// skew, nondeterministic kind) and computing would waste the slice
	// on an upload the registry must reject.
	if plan.Scenario != lease.Scenario || plan.Trials != lease.Trials ||
		plan.NumShards != lease.NumShards || plan.ShardSize != lease.ShardSize {
		return fmt.Errorf("entry %q plans differently here (scenario %q, %d trials, %d shards of %d) than at the registry (%q, %d, %d, %d)",
			lease.Entry, plan.Scenario, plan.Trials, plan.NumShards, plan.ShardSize,
			lease.Scenario, lease.Trials, lease.NumShards, lease.ShardSize)
	}
	if lease.ParamsDigest != "" && plan.ParamsDigest != "" && plan.ParamsDigest != lease.ParamsDigest {
		return fmt.Errorf("entry %q params digest differs from the registry's — spec skew", lease.Entry)
	}

	// Renew the lease while the slice computes so slow slices are not
	// stolen out from under a live executor.
	renewCtx, stopRenew := context.WithCancel(ctx)
	defer stopRenew()
	renewEvery := time.Duration(lease.RenewMS) * time.Millisecond
	if renewEvery <= 0 {
		renewEvery = DefaultLeaseTimeout / 3
	}
	go func() {
		ticker := time.NewTicker(renewEvery)
		defer ticker.Stop()
		for {
			select {
			case <-renewCtx.Done():
				return
			case <-ticker.C:
				resp, err := e.post(renewCtx, e.cfg.URL+pathRenew+"?lease="+lease.ID, "application/json", nil)
				if err == nil {
					resp.Body.Close()
				}
			}
		}
	}()

	e.log.Printf("fabric: executor %s: executing job %s %s slice %d/%d (%d shards)",
		e.cfg.Name, lease.Job, lease.Entry, lease.Index, lease.Count, plan.Shards())
	partial, err := campaign.Execute(b.Scenario, plan, campaign.ExecConfig{Workers: e.cfg.Workers})
	if err != nil {
		return err
	}
	if e.cfg.UploadDelay > 0 {
		e.log.Printf("fabric: executor %s: delaying upload of lease %s by %s", e.cfg.Name, lease.ID, e.cfg.UploadDelay)
		if !sleepCtx(ctx, e.cfg.UploadDelay) {
			return ctx.Err()
		}
	}

	// Uploads travel gzip-compressed: the JSONL shard records are
	// highly repetitive (upwards of 10:1 on sample-heavy slices), the
	// registry stores the bytes verbatim, and OpenPartial sniffs the
	// gzip magic — so the compression is transparent end to end and a
	// mixed fleet of old and new executors still merges.
	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	if _, err := partial.WriteTo(gz); err != nil {
		return err
	}
	if err := gz.Close(); err != nil {
		return err
	}
	resp, err := e.post(ctx, e.cfg.URL+pathUpload+"?lease="+lease.ID, "application/gzip", &buf)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<12))
		return fmt.Errorf("upload rejected: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	var reply uploadReply
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		return err
	}
	if reply.Accepted {
		e.log.Printf("fabric: executor %s: uploaded job %s %s slice %d/%d", e.cfg.Name, lease.Job, lease.Entry, lease.Index, lease.Count)
	} else {
		// Normal under work stealing: someone else finished first.
		e.log.Printf("fabric: executor %s: upload for job %s %s slice %d/%d ignored (%s)",
			e.cfg.Name, lease.Job, lease.Entry, lease.Index, lease.Count, reply.Reason)
	}
	return nil
}
