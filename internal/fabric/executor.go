package fabric

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"time"

	"repro/internal/campaign"
	"repro/internal/campaign/spec"
)

// ExecutorConfig assembles one stateless executor.
type ExecutorConfig struct {
	// URL is the coordinator's base URL.
	URL string
	// Name identifies this executor in leases and coordinator logs.
	Name string
	// Workers is the per-slice goroutine count (0 = GOMAXPROCS).
	Workers int
	// UploadDelay sleeps between executing a slice and uploading it —
	// a fault-injection hook: a SIGKILL during the sleep leaves the
	// lease to expire and the slice to be stolen, which is what the
	// chaos test in CI arranges deterministically.
	UploadDelay time.Duration
	// Client issues the HTTP requests (nil = a client with sane
	// timeouts for everything but the upload itself).
	Client *http.Client
	// Log receives progress (nil = standard logger).
	Log *log.Logger
}

// RunExecutor fetches the spec from the coordinator, builds it
// locally, and loops: lease a slice, execute it in memory, upload the
// serialized partial, renew leases in the background while computing.
// It returns nil once the coordinator reports the campaign done — or
// once the coordinator stops answering after having been reachable,
// which is how a fleet drains when the coordinator exits after its
// final merge.
func RunExecutor(cfg ExecutorConfig) error {
	logger := cfg.Log
	if logger == nil {
		logger = log.Default()
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Minute}
	}
	if cfg.Name == "" {
		cfg.Name = "executor"
	}

	specBytes, err := fetchSpec(client, cfg.URL)
	if err != nil {
		return err
	}
	f, err := spec.Parse(specBytes)
	if err != nil {
		return fmt.Errorf("fabric: executor: coordinator spec does not parse: %w", err)
	}
	built, err := f.BuildAll()
	if err != nil {
		return fmt.Errorf("fabric: executor: coordinator spec does not build: %w", err)
	}
	byName := make(map[string]*spec.Built, len(built))
	for _, b := range built {
		byName[b.Entry.Name] = b
	}
	logger.Printf("fabric: executor %s: built %d entries from %s", cfg.Name, len(built), cfg.URL)

	// Once the coordinator has answered at all, connection errors mean
	// it is gone (done and exited, or crashed); give it a grace window
	// and then drain rather than spinning forever.
	const maxConnFailures = 30
	connFailures := 0
	for {
		lease, wait, done, err := requestLease(client, cfg.URL, cfg.Name)
		if err != nil {
			connFailures++
			if connFailures >= maxConnFailures {
				logger.Printf("fabric: executor %s: coordinator unreachable (%v); draining", cfg.Name, err)
				return nil
			}
			time.Sleep(500 * time.Millisecond)
			continue
		}
		connFailures = 0
		if done {
			logger.Printf("fabric: executor %s: campaign complete; exiting", cfg.Name)
			return nil
		}
		if lease == nil {
			time.Sleep(wait)
			continue
		}
		if err := runLease(client, cfg, f, byName, lease, logger); err != nil {
			// A failed slice (bad lease, rejected upload) is the
			// coordinator's to reassign; log and keep pulling work.
			logger.Printf("fabric: executor %s: lease %s: %v", cfg.Name, lease.ID, err)
			time.Sleep(200 * time.Millisecond)
		}
	}
}

// fetchSpec downloads the raw spec bytes, retrying while the
// coordinator comes up (executors and coordinator start concurrently
// in CI and under process supervisors).
func fetchSpec(client *http.Client, base string) ([]byte, error) {
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := client.Get(base + pathSpec)
		if err == nil {
			if resp.StatusCode != http.StatusOK {
				body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<12))
				resp.Body.Close()
				return nil, fmt.Errorf("fabric: executor: GET %s: %s: %s", pathSpec, resp.Status, bytes.TrimSpace(body))
			}
			data, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr == nil {
				return data, nil
			}
			err = rerr
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("fabric: executor: coordinator at %s not reachable: %w", base, err)
		}
		time.Sleep(250 * time.Millisecond)
	}
}

// requestLease asks the coordinator for work.
func requestLease(client *http.Client, base, name string) (lease *Lease, wait time.Duration, done bool, err error) {
	body, _ := json.Marshal(leaseRequest{Executor: name})
	resp, err := client.Post(base+pathLease, "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, 0, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<12))
		return nil, 0, false, fmt.Errorf("POST %s: %s: %s", pathLease, resp.Status, bytes.TrimSpace(msg))
	}
	var reply leaseReply
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		return nil, 0, false, err
	}
	wait = time.Duration(reply.WaitMS) * time.Millisecond
	if wait <= 0 {
		wait = 250 * time.Millisecond
	}
	return reply.Lease, wait, reply.Done, nil
}

// runLease executes one leased slice and uploads the result.
func runLease(client *http.Client, cfg ExecutorConfig, f *spec.File, byName map[string]*spec.Built, lease *Lease, logger *log.Logger) error {
	b, ok := byName[lease.Entry]
	if !ok {
		return fmt.Errorf("coordinator leased unknown entry %q — executor built a different spec", lease.Entry)
	}
	ecfg := b.EngineConfig(f)
	plan, err := campaign.NewPlan(b.Scenario, lease.ShardSize, campaign.Partition{Index: lease.Index, Count: lease.Count})
	if err != nil {
		return err
	}
	plan.ParamsDigest = ecfg.ParamsDigest
	// The lease echoes the coordinator's plan; any disagreement means
	// the two sides built different campaigns from the "same" spec
	// (version skew, nondeterministic kind) and computing would waste
	// the slice on an upload the coordinator must reject.
	if plan.Scenario != lease.Scenario || plan.Trials != lease.Trials ||
		plan.NumShards != lease.NumShards || plan.ShardSize != lease.ShardSize {
		return fmt.Errorf("entry %q plans differently here (scenario %q, %d trials, %d shards of %d) than at the coordinator (%q, %d, %d, %d)",
			lease.Entry, plan.Scenario, plan.Trials, plan.NumShards, plan.ShardSize,
			lease.Scenario, lease.Trials, lease.NumShards, lease.ShardSize)
	}
	if lease.ParamsDigest != "" && plan.ParamsDigest != "" && plan.ParamsDigest != lease.ParamsDigest {
		return fmt.Errorf("entry %q params digest differs from the coordinator's — spec skew", lease.Entry)
	}

	// Renew the lease while the slice computes so slow slices are not
	// stolen out from under a live executor.
	stopRenew := make(chan struct{})
	defer close(stopRenew)
	renewEvery := time.Duration(lease.RenewMS) * time.Millisecond
	if renewEvery <= 0 {
		renewEvery = DefaultLeaseTimeout / 3
	}
	go func() {
		ticker := time.NewTicker(renewEvery)
		defer ticker.Stop()
		for {
			select {
			case <-stopRenew:
				return
			case <-ticker.C:
				resp, err := client.Post(cfg.URL+pathRenew+"?lease="+lease.ID, "application/json", nil)
				if err == nil {
					resp.Body.Close()
				}
			}
		}
	}()

	logger.Printf("fabric: executor %s: executing %s slice %d/%d (%d shards)",
		cfg.Name, lease.Entry, lease.Index, lease.Count, plan.Shards())
	partial, err := campaign.Execute(b.Scenario, plan, campaign.ExecConfig{Workers: cfg.Workers})
	if err != nil {
		return err
	}
	if cfg.UploadDelay > 0 {
		logger.Printf("fabric: executor %s: delaying upload of lease %s by %s", cfg.Name, lease.ID, cfg.UploadDelay)
		time.Sleep(cfg.UploadDelay)
	}

	// Uploads travel gzip-compressed: the JSONL shard records are
	// highly repetitive (upwards of 10:1 on sample-heavy slices), the
	// coordinator stores the bytes verbatim, and OpenPartial sniffs the
	// gzip magic — so the compression is transparent end to end and a
	// mixed fleet of old and new executors still merges.
	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	if _, err := partial.WriteTo(gz); err != nil {
		return err
	}
	if err := gz.Close(); err != nil {
		return err
	}
	resp, err := client.Post(cfg.URL+pathUpload+"?lease="+lease.ID, "application/gzip", &buf)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<12))
		return fmt.Errorf("upload rejected: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	var reply uploadReply
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		return err
	}
	if reply.Accepted {
		logger.Printf("fabric: executor %s: uploaded %s slice %d/%d", cfg.Name, lease.Entry, lease.Index, lease.Count)
	} else {
		// Normal under work stealing: someone else finished first.
		logger.Printf("fabric: executor %s: upload for %s slice %d/%d ignored (%s)",
			cfg.Name, lease.Entry, lease.Index, lease.Count, reply.Reason)
	}
	return nil
}
