// Package fabric distributes a campaign spec across machines: a
// coordinator serves every entry's deterministic slice plan over HTTP
// to a fleet of stateless executors, which run campaign.Execute and
// stream their version-2 JSONL partial artifacts home.
//
// The protocol is lease-based pull scheduling. The planner splits each
// entry's shard range into Slices contiguous partitions (the same
// campaign.Partition geometry the -partition flag uses, so the merged
// result is bit-identical to a single-process run by the engine's
// determinism law). An executor that asks for work receives a lease —
// entry name, partition index/count, geometry fingerprint, params
// digest, deadline — executes the slice in memory, and uploads the
// serialized partial. A lease that misses its deadline (executor
// crashed, hung, or was SIGKILLed) is stolen: the next executor asking
// for work receives the same slice under a fresh lease, which is how
// stragglers and dead workers are re-planned without operator action.
// Because slices are pure functions of the global trial index,
// duplicate executions are byte-identical and the coordinator simply
// ignores a second upload of a completed slice.
//
// Uploads are validated before acceptance: the partial's header must
// match the slice's plan exactly (scenario, trials, shard size,
// partition, params digest — the format is self-describing and
// fingerprinted, so a stale or foreign upload is rejected with a 409)
// and must cover every shard of the slice (a truncated body is
// rejected rather than discovered at merge time). Accepted partials
// land under the coordinator's per-spec namespace directory with the
// same .part<i>of<N> naming the -partition workflow uses, so the
// final merge is spec.Built.MergePartials, unchanged.
//
// Between arrivals the coordinator folds the contiguous shard prefix
// of each entry incrementally and re-decides the Wilson-CI early stop
// exactly as campaign.Merge does: once the rule fires at shard s,
// every slice strictly beyond s is cancelled (outstanding leases for
// them upload into the void, harmlessly) and the campaign completes
// without them — the merge then lands on the identical stopping shard
// a single-process run would have.
//
// Endpoints: GET /spec (the raw spec bytes executors build from,
// so executors need nothing but the coordinator URL), POST /lease,
// POST /renew, POST /upload, GET /status (per-slice lease state,
// trials/sec, merge progress — what cmd/campaign -status renders).
package fabric

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"time"
)

// Default coordinator tuning. A one-minute lease is generous for
// CI-scale slices while keeping dead-executor recovery prompt; real
// deployments size it to their slowest slice plus renewal headroom
// (executors renew at a third of the timeout, so a live slice is never
// stolen while its renewals get through).
const (
	DefaultSlices       = 8
	DefaultLeaseTimeout = time.Minute
)

// HTTP endpoint paths, shared by coordinator and executor.
const (
	pathSpec   = "/spec"
	pathLease  = "/lease"
	pathRenew  = "/renew"
	pathUpload = "/upload"
	pathStatus = "/status"
)

// Namespace returns the per-spec artifact directory under base: a
// subdirectory keyed by the spec bytes' digest. Two different specs
// (or two revisions of one spec) can therefore share a work directory
// without their partials ever colliding — the groundwork for serving
// concurrent multi-tenant specs from one coordinator fleet, without
// committing to that service shape yet.
func Namespace(base string, specBytes []byte) string {
	sum := sha256.Sum256(specBytes)
	return filepath.Join(base, "spec-"+hex.EncodeToString(sum[:6]))
}

// FetchStatus retrieves a coordinator's status snapshot — what
// cmd/campaign -status renders. A nil client uses a short-timeout
// default (status polls should fail fast, not hang a dashboard).
func FetchStatus(client *http.Client, base string) (*Status, error) {
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	resp, err := client.Get(base + pathStatus)
	if err != nil {
		return nil, fmt.Errorf("fabric: status: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fabric: status: %s", resp.Status)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("fabric: status: %w", err)
	}
	return &st, nil
}

// leaseRequest is the body of POST /lease.
type leaseRequest struct {
	Executor string `json:"executor"`
}

// Lease is one slice assignment on the wire. The geometry fields
// (trials, shard size, shard count) echo the coordinator's plan so an
// executor can verify its independently derived plan matches before
// spending compute — any disagreement means coordinator and executor
// built different specs and is an error, not a retry.
type Lease struct {
	ID           string `json:"id"`
	Entry        string `json:"entry"`
	Scenario     string `json:"scenario"`
	Index        int    `json:"index"`
	Count        int    `json:"count"`
	Trials       int    `json:"trials"`
	ShardSize    int    `json:"shard_size"`
	NumShards    int    `json:"num_shards"`
	ParamsDigest string `json:"params_digest,omitempty"`
	DeadlineMS   int64  `json:"deadline_unix_ms"`
	RenewMS      int64  `json:"renew_ms"`
}

// leaseReply is the response to POST /lease: exactly one of Done,
// WaitMS or Lease is meaningful.
type leaseReply struct {
	Done   bool   `json:"done,omitempty"`
	WaitMS int64  `json:"wait_ms,omitempty"`
	Lease  *Lease `json:"lease,omitempty"`
}

// uploadReply is the response to POST /upload.
type uploadReply struct {
	Accepted bool   `json:"accepted"`
	Reason   string `json:"reason,omitempty"`
}

// Status is the coordinator's observability surface (GET /status).
type Status struct {
	StartUnixMS int64         `json:"start_unix_ms"`
	UptimeSec   float64       `json:"uptime_sec"`
	Done        bool          `json:"done"`
	Slices      int           `json:"slices"`
	LeaseMS     int64         `json:"lease_timeout_ms"`
	Executors   int           `json:"executors_seen"`
	Uploads     int           `json:"uploads_accepted"`
	Ignored     int           `json:"uploads_ignored"`
	Rejected    int           `json:"uploads_rejected"`
	Steals      int           `json:"leases_stolen"`
	Entries     []EntryStatus `json:"entries"`
}

// EntryStatus is one spec entry's progress.
type EntryStatus struct {
	Entry        string        `json:"entry"`
	Scenario     string        `json:"scenario"`
	Done         bool          `json:"done"`
	EarlyStopped bool          `json:"early_stopped,omitempty"`
	NumShards    int           `json:"num_shards"`
	PrefixShards int           `json:"prefix_shards"` // merge progress: contiguous shards folded
	DoneTrials   int           `json:"done_trials"`
	TotalTrials  int           `json:"total_trials"`
	TrialsPerSec float64       `json:"trials_per_sec"`
	Slices       []SliceStatus `json:"slices"`
}

// SliceStatus is one slice's lease state.
type SliceStatus struct {
	Index   int    `json:"index"`
	State   string `json:"state"` // pending | leased | done | cancelled | empty
	Holder  string `json:"holder,omitempty"`
	Steals  int    `json:"steals,omitempty"`
	Trials  int    `json:"trials"`
	Adopted bool   `json:"adopted,omitempty"` // restored from a pre-existing upload at startup
}
