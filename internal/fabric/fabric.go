// Package fabric distributes campaign specs across machines as a
// multi-tenant job service: a registry holds any number of submitted
// jobs (one spec each), serves every job's deterministic slice plan
// over HTTP to one shared fleet of stateless executors, and folds the
// uploaded partials back into per-job result trees.
//
// # Jobs
//
// A job is one spec file submitted to the registry (POST /jobs). The
// registry parses and compiles it, plans each entry's shard range into
// Slices contiguous partitions (the same campaign.Partition geometry
// the -partition flag uses, so the merged result is bit-identical to a
// single-process run by the engine's determinism law), and gives the
// job a stable identity: the sha256 digest of the spec bytes.
// Submitting the same bytes twice is therefore idempotent — the second
// submission returns the existing job. Each job's artifacts live in
// their own per-spec namespace directory (Namespace), so concurrent
// jobs never collide on disk. A spec that fails to parse, build or
// plan is recorded as a failed job (visible in /status and /jobs)
// rather than vanishing.
//
// Jobs move through pending -> running -> merging -> done, or land in
// failed (validation error, merge error, expectation violation, or
// operator DELETE). Once a job's last slice arrives the registry
// merges it server-side — spec.Built.MergePartials plus the shared
// artifact writer — into <namespace>/results, byte-identical to what
// an unpartitioned run of the same spec would write.
//
// # Scheduling
//
// The protocol is lease-based pull scheduling. An executor that asks
// for work (POST /lease) receives a lease — job ID, spec digest, entry
// name, partition index/count, geometry fingerprint, params digest,
// deadline — from ANY runnable job: the registry rotates a fair-share
// cursor over its jobs so one tenant's giant campaign cannot starve
// another's. Per-tenant quotas cap the number of concurrently leased
// slices belonging to one tenant's jobs; a tenant at quota simply
// stops being offered, and if no other tenant has runnable work the
// executor gets 204 No Content and backs off. A lease that misses its
// deadline (executor crashed, hung, or was SIGKILLed) is stolen: the
// next executor asking for work receives the same slice under a fresh
// lease. Because slices are pure functions of the global trial index,
// duplicate executions are byte-identical and the registry simply
// ignores a second upload of a completed slice.
//
// Executors are job-agnostic: the lease names the job and the spec
// digest, the executor fetches GET /jobs/{id}/spec (cached per job,
// verified against the digest), builds it locally, verifies its
// independently derived plan against the lease, executes the slice in
// memory and uploads the serialized partial gzip-compressed. One
// executor drains work from every job the registry holds until the
// registry reports no more work will come.
//
// Uploads are validated before acceptance: the partial's header must
// match the slice's plan exactly (scenario, trials, shard size,
// partition, params digest) and must cover every shard of the slice —
// a stale, foreign or truncated upload is rejected with a 409 and the
// slice is immediately re-queued. Between arrivals the registry folds
// each entry's contiguous shard prefix incrementally and re-decides
// the Wilson-CI (or weighted relative-error) early stop exactly as
// campaign.Merge does, cancelling every slice strictly beyond the
// stopping shard.
//
// # Auth
//
// When the registry is configured with tenants, every mutating
// endpoint (POST /jobs, DELETE /jobs/{id}, POST /lease, /renew,
// /upload) requires "Authorization: Bearer <token>"; the token
// identifies the tenant, which owns the jobs it submits and is the
// unit of quota accounting. Without tenants the registry is open (the
// single-operator workflow).
//
// Endpoints: POST /jobs (submit spec bytes, returns the job), GET
// /jobs (list), GET /jobs/{id} (one job), DELETE /jobs/{id} (cancel),
// GET /jobs/{id}/spec (raw spec bytes), POST /lease, POST /renew,
// POST /upload, GET /status (per-job, per-slice state — what
// cmd/campaign -status renders).
package fabric

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"time"
)

// Default registry tuning. A one-minute lease is generous for CI-scale
// slices while keeping dead-executor recovery prompt; real deployments
// size it to their slowest slice plus renewal headroom (executors
// renew at a third of the timeout, so a live slice is never stolen
// while its renewals get through).
const (
	DefaultSlices       = 8
	DefaultLeaseTimeout = time.Minute
)

// HTTP endpoint paths, shared by registry and clients.
const (
	pathJobs   = "/jobs"
	pathLease  = "/lease"
	pathRenew  = "/renew"
	pathUpload = "/upload"
	pathStatus = "/status"
)

// Job states.
const (
	JobPending = "pending" // submitted, no slice leased yet
	JobRunning = "running" // at least one slice leased or done
	JobMerging = "merging" // all slices in; server-side merge running
	JobDone    = "done"    // merged, artifacts written, expectations pass
	JobFailed  = "failed"  // validation, merge or expectation failure, or deleted
)

// Namespace returns the per-spec artifact directory under base: a
// subdirectory keyed by the spec bytes' digest. Two different specs
// (or two revisions of one spec) therefore share a work directory
// without their partials ever colliding — which is what lets one
// registry serve concurrent multi-tenant jobs.
func Namespace(base string, specBytes []byte) string {
	sum := sha256.Sum256(specBytes)
	return filepath.Join(base, "spec-"+hex.EncodeToString(sum[:6]))
}

// JobID derives the job identity from the spec bytes: "j-" plus a
// digest prefix. Submissions are idempotent by construction — the same
// bytes always name the same job.
func JobID(specBytes []byte) string {
	sum := sha256.Sum256(specBytes)
	return "j-" + hex.EncodeToString(sum[:6])
}

// SpecDigest is the full content digest of the spec bytes, echoed in
// leases so executors verify the spec they cached is the spec the
// registry planned.
func SpecDigest(specBytes []byte) string {
	sum := sha256.Sum256(specBytes)
	return hex.EncodeToString(sum[:])
}

// FetchStatus retrieves a registry's status snapshot — what
// cmd/campaign -status renders. A nil client uses a short-timeout
// default (status polls should fail fast, not hang a dashboard).
func FetchStatus(client *http.Client, base string) (*Status, error) {
	client = statusClient(client)
	resp, err := client.Get(base + pathStatus)
	if err != nil {
		return nil, fmt.Errorf("fabric: status: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fabric: status: %s", resp.Status)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("fabric: status: %w", err)
	}
	return &st, nil
}

// SubmitJob submits spec bytes to the registry at base and returns the
// accepted (or immediately failed — check State) job. Idempotent:
// resubmitting the same bytes returns the existing job.
func SubmitJob(client *http.Client, base, token string, specBytes []byte) (*JobStatus, error) {
	client = statusClient(client)
	req, err := http.NewRequest(http.MethodPost, base+pathJobs, bytes.NewReader(specBytes))
	if err != nil {
		return nil, fmt.Errorf("fabric: submit: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	setBearer(req, token)
	var job JobStatus
	if err := doJSON(client, req, &job); err != nil {
		return nil, fmt.Errorf("fabric: submit: %w", err)
	}
	return &job, nil
}

// ListJobs lists every job the registry at base holds, in submission
// order.
func ListJobs(client *http.Client, base string) ([]JobStatus, error) {
	client = statusClient(client)
	req, err := http.NewRequest(http.MethodGet, base+pathJobs, nil)
	if err != nil {
		return nil, fmt.Errorf("fabric: jobs: %w", err)
	}
	var jobs []JobStatus
	if err := doJSON(client, req, &jobs); err != nil {
		return nil, fmt.Errorf("fabric: jobs: %w", err)
	}
	return jobs, nil
}

// GetJob fetches one job by its full URL (<base>/jobs/<id>), the URL
// -submit prints and -watch polls.
func GetJob(client *http.Client, jobURL string) (*JobStatus, error) {
	client = statusClient(client)
	req, err := http.NewRequest(http.MethodGet, jobURL, nil)
	if err != nil {
		return nil, fmt.Errorf("fabric: job: %w", err)
	}
	var job JobStatus
	if err := doJSON(client, req, &job); err != nil {
		return nil, fmt.Errorf("fabric: job: %w", err)
	}
	return &job, nil
}

// DeleteJob cancels the job at its full URL. Deleting a running job
// invalidates its leases and cancels its remaining slices.
func DeleteJob(client *http.Client, jobURL, token string) error {
	client = statusClient(client)
	req, err := http.NewRequest(http.MethodDelete, jobURL, nil)
	if err != nil {
		return fmt.Errorf("fabric: delete: %w", err)
	}
	setBearer(req, token)
	resp, err := client.Do(req)
	if err != nil {
		return fmt.Errorf("fabric: delete: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<12))
		return fmt.Errorf("fabric: delete: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	return nil
}

func statusClient(client *http.Client) *http.Client {
	if client == nil {
		return &http.Client{Timeout: 10 * time.Second}
	}
	return client
}

func setBearer(req *http.Request, token string) {
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
}

// doJSON runs the request and decodes a JSON reply, turning non-2xx
// statuses into errors carrying the body text.
func doJSON(client *http.Client, req *http.Request, out any) error {
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<12))
		return fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// leaseRequest is the body of POST /lease.
type leaseRequest struct {
	Executor string `json:"executor"`
}

// Lease is one slice assignment on the wire. Job and SpecDigest tell
// the executor which cached spec to run (fetching it first if
// needed); the geometry fields echo the registry's plan so an executor
// can verify its independently derived plan matches before spending
// compute — any disagreement means registry and executor built
// different specs and is an error, not a retry.
type Lease struct {
	ID           string `json:"id"`
	Job          string `json:"job"`
	SpecDigest   string `json:"spec_digest"`
	Entry        string `json:"entry"`
	Scenario     string `json:"scenario"`
	Index        int    `json:"index"`
	Count        int    `json:"count"`
	Trials       int    `json:"trials"`
	ShardSize    int    `json:"shard_size"`
	NumShards    int    `json:"num_shards"`
	ParamsDigest string `json:"params_digest,omitempty"`
	DeadlineMS   int64  `json:"deadline_unix_ms"`
	RenewMS      int64  `json:"renew_ms"`
}

// leaseReply is the 200 response to POST /lease: Done means the
// registry is drained and the executor should exit; otherwise Lease is
// set. "No grantable work right now" is 204 No Content, not a reply.
type leaseReply struct {
	Done  bool   `json:"done,omitempty"`
	Lease *Lease `json:"lease,omitempty"`
}

// uploadReply is the response to POST /upload.
type uploadReply struct {
	Accepted bool   `json:"accepted"`
	Reason   string `json:"reason,omitempty"`
}

// Status is the registry's observability surface (GET /status).
type Status struct {
	StartUnixMS int64       `json:"start_unix_ms"`
	UptimeSec   float64     `json:"uptime_sec"`
	Done        bool        `json:"done"` // drained: no more work will ever be offered
	Draining    bool        `json:"draining,omitempty"`
	Slices      int         `json:"slices"`
	LeaseMS     int64       `json:"lease_timeout_ms"`
	Executors   int         `json:"executors_seen"`
	Uploads     int         `json:"uploads_accepted"`
	Ignored     int         `json:"uploads_ignored"`
	Rejected    int         `json:"uploads_rejected"`
	Steals      int         `json:"leases_stolen"`
	Jobs        []JobStatus `json:"jobs"`
}

// JobStatus is one job's progress — the per-job section of /status and
// the reply shape of the /jobs endpoints.
type JobStatus struct {
	ID              string        `json:"id"`
	Tenant          string        `json:"tenant,omitempty"`
	State           string        `json:"state"`
	Error           string        `json:"error,omitempty"`
	SpecDigest      string        `json:"spec_digest"`
	CreatedUnixMS   int64         `json:"created_unix_ms"`
	Dir             string        `json:"dir,omitempty"`     // where validated partials land
	OutDir          string        `json:"out_dir,omitempty"` // where the server-side merge writes artifacts
	SlicesPending   int           `json:"slices_pending"`
	SlicesLeased    int           `json:"slices_leased"`
	SlicesDone      int           `json:"slices_done"`
	SlicesCancelled int           `json:"slices_cancelled,omitempty"`
	Steals          int           `json:"steals"`
	DoneTrials      int           `json:"done_trials"`
	TotalTrials     int           `json:"total_trials"`
	Entries         []EntryStatus `json:"entries,omitempty"`
}

// EntryStatus is one spec entry's progress within a job.
type EntryStatus struct {
	Entry        string        `json:"entry"`
	Scenario     string        `json:"scenario"`
	Done         bool          `json:"done"`
	EarlyStopped bool          `json:"early_stopped,omitempty"`
	NumShards    int           `json:"num_shards"`
	PrefixShards int           `json:"prefix_shards"` // merge progress: contiguous shards folded
	DoneTrials   int           `json:"done_trials"`
	TotalTrials  int           `json:"total_trials"`
	TrialsPerSec float64       `json:"trials_per_sec"`
	Slices       []SliceStatus `json:"slices"`
}

// SliceStatus is one slice's lease state.
type SliceStatus struct {
	Index   int    `json:"index"`
	State   string `json:"state"` // pending | leased | done | cancelled | empty
	Holder  string `json:"holder,omitempty"`
	Steals  int    `json:"steals,omitempty"`
	Trials  int    `json:"trials"`
	Adopted bool   `json:"adopted,omitempty"` // restored from a pre-existing upload at startup
}

// JobURL joins a registry base URL and a job ID into the job's URL.
func JobURL(base, id string) string {
	return strings.TrimRight(base, "/") + pathJobs + "/" + id
}
