package fabric

import (
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/campaign"
	"repro/internal/campaign/spec"
)

// Tenant is one authenticated party: its bearer token authorizes the
// mutating endpoints, its name owns the jobs it submits, and MaxLeases
// caps how many of its slices may be leased concurrently across all
// its jobs (0 = unlimited) — the fair-share backstop that keeps one
// tenant from monopolizing the shared executor pool.
type Tenant struct {
	Name      string
	Token     string
	MaxLeases int
}

// RegistryConfig assembles a job registry.
type RegistryConfig struct {
	// Dir is the work directory; each job's partials land in its own
	// Namespace subdirectory, and server-side merges write artifacts to
	// <namespace>/results.
	Dir string
	// Slices is the partition count each entry's shard range is split
	// into (0 = DefaultSlices). More slices mean finer-grained work
	// stealing and earlier stop cancellation, at more HTTP round trips.
	Slices int
	// LeaseTimeout is how long a slice may go without an upload or
	// renewal before it is stolen (0 = DefaultLeaseTimeout).
	LeaseTimeout time.Duration
	// Tenants, when non-empty, turns on bearer-token auth for every
	// mutating endpoint and per-tenant quota accounting. Empty = open
	// registry (the single-operator workflow).
	Tenants []Tenant
	// DrainAfter, when positive, makes the registry drain on its own:
	// once at least DrainAfter jobs have been submitted and every job
	// is terminal, Done closes and executors are told to exit. Zero
	// keeps the registry serving until SetDraining or process exit.
	DrainAfter int
	// Log receives lease, steal, upload and lifecycle events
	// (nil = standard logger).
	Log *log.Logger
}

// SubmitOptions tunes one job submission.
type SubmitOptions struct {
	// Tenant is the owning tenant's name (the HTTP layer derives it
	// from the bearer token; local callers may leave it empty).
	Tenant string
	// AutoMerge makes the registry merge the job server-side once its
	// last slice arrives, writing artifacts under <namespace>/results.
	// The legacy single-spec coordinator submits with AutoMerge off and
	// merges in-process instead, exactly as before.
	AutoMerge bool
}

// Sentinel errors the HTTP layer maps to status codes.
var (
	ErrJobNotFound = errors.New("fabric: no such job")
	ErrForbidden   = errors.New("fabric: job owned by another tenant")
	ErrJobTerminal = errors.New("fabric: job already terminal")
	ErrDraining    = errors.New("fabric: registry is draining; not accepting jobs")
)

// slice lease states.
const (
	slicePending   = "pending"
	sliceLeased    = "leased"
	sliceDone      = "done"
	sliceCancelled = "cancelled"
	sliceEmpty     = "empty"
)

// slice is one partition of one entry's campaign.
type slice struct {
	plan     *campaign.Plan
	path     string // where the validated upload lands
	state    string
	leaseID  string
	holder   string
	deadline time.Time
	steals   int
	adopted  bool
}

// task is one spec entry being distributed.
type task struct {
	built   *spec.Built
	cfg     campaign.Config // engine config: shard size, stop rule, digest
	slices  []*slice
	arrived map[int]*campaign.Partial // slice index -> accepted partial (counters resident)

	// Contiguous-prefix early-stop state, mirroring campaign.Merge's
	// pass 1: prefix is the next global shard not yet folded,
	// slicePtr the slice owning it.
	prefix        int
	slicePtr      int
	prefixSuccess int64
	prefixW       campaign.Moments // weighted plans: folded stop-counter moments
	prefixTrials  int
	stopped       bool
	stopShard     int

	doneTrials int
	done       bool
}

func (t *task) numShards() int { return t.slices[0].plan.NumShards }

func (t *task) totalTrials() int { return t.built.Scenario.Trials() }

// job is one submitted spec and its distribution state.
type job struct {
	id        string
	digest    string // full sha256 of specBytes, echoed in leases
	tenant    string
	specBytes []byte
	file      *spec.File
	built     []*spec.Built
	tasks     []*task
	state     string
	errMsg    string
	dir       string // per-spec namespace: validated partials land here
	outDir    string // server-side merge target (AutoMerge only)
	autoMerge bool
	created   time.Time
	doneCh    chan struct{} // closed on entering a terminal state
	steals    int
	uploads   int
}

func jobTerminal(state string) bool { return state == JobDone || state == JobFailed }

// leaseRef locates a lease's slice.
type leaseRef struct {
	job   *job
	task  *task
	slice int
}

// Registry serves many jobs' campaign plans to one shared executor
// fleet and folds their uploads. All mutable state is guarded by mu;
// plans and spec structures are immutable after Submit.
type Registry struct {
	cfg    RegistryConfig
	log    *log.Logger
	tokens map[string]Tenant // bearer token -> tenant; empty = open
	quotas map[string]int    // tenant name -> MaxLeases

	mu        sync.Mutex
	jobs      map[string]*job
	order     []*job // submission order: listing and the fair-share rotation
	rr        int    // fair-share cursor into order
	leases    map[string]leaseRef
	leaseSeq  int
	executors map[string]time.Time
	start     time.Time
	draining  bool
	finished  bool
	doneCh    chan struct{}

	uploads, ignored, rejected, steals int
}

// NewRegistry validates the config and returns an empty registry ready
// to serve; jobs arrive via Submit (locally or over POST /jobs).
func NewRegistry(cfg RegistryConfig) (*Registry, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("fabric: registry needs a work directory")
	}
	if cfg.Slices <= 0 {
		cfg.Slices = DefaultSlices
	}
	if cfg.LeaseTimeout <= 0 {
		cfg.LeaseTimeout = DefaultLeaseTimeout
	}
	logger := cfg.Log
	if logger == nil {
		logger = log.Default()
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("fabric: workdir: %w", err)
	}
	tokens := make(map[string]Tenant, len(cfg.Tenants))
	quotas := make(map[string]int, len(cfg.Tenants))
	for _, t := range cfg.Tenants {
		if t.Name == "" || t.Token == "" {
			return nil, fmt.Errorf("fabric: tenant needs both a name and a token")
		}
		if _, dup := tokens[t.Token]; dup {
			return nil, fmt.Errorf("fabric: duplicate tenant token")
		}
		if _, dup := quotas[t.Name]; dup {
			return nil, fmt.Errorf("fabric: duplicate tenant name %q", t.Name)
		}
		tokens[t.Token] = t
		quotas[t.Name] = t.MaxLeases
	}
	return &Registry{
		cfg:       cfg,
		log:       logger,
		tokens:    tokens,
		quotas:    quotas,
		jobs:      make(map[string]*job),
		leases:    make(map[string]leaseRef),
		executors: make(map[string]time.Time),
		start:     time.Now(),
		doneCh:    make(chan struct{}),
	}, nil
}

// Submit registers the spec bytes as a job. Idempotent: the same bytes
// resolve to the same job ID and return the existing job. A spec that
// fails to parse, build or plan is recorded as a failed job (so the
// failure is visible in /jobs and /status) and returned with its State
// set to JobFailed; the error return is reserved for the registry
// refusing the submission outright (draining or drained).
func (r *Registry) Submit(specBytes []byte, opts SubmitOptions) (*JobStatus, error) {
	if len(specBytes) == 0 {
		return nil, fmt.Errorf("fabric: empty spec")
	}
	id := JobID(specBytes)

	r.mu.Lock()
	if r.draining || r.finished {
		r.mu.Unlock()
		return nil, ErrDraining
	}
	if existing, ok := r.jobs[id]; ok {
		st := r.jobStatusLocked(existing, false)
		r.mu.Unlock()
		return st, nil
	}
	r.mu.Unlock()

	// Parse, build, plan and adopt outside the lock — building scenarios
	// and scanning for adoptable partials can be slow, and the job is
	// not visible to the scheduler until inserted below.
	j := &job{
		id:        id,
		digest:    SpecDigest(specBytes),
		tenant:    opts.Tenant,
		specBytes: specBytes,
		state:     JobPending,
		dir:       Namespace(r.cfg.Dir, specBytes),
		autoMerge: opts.AutoMerge,
		created:   time.Now(),
		doneCh:    make(chan struct{}),
	}
	if opts.AutoMerge {
		j.outDir = filepath.Join(j.dir, "results")
	}
	buildErr := r.buildJob(j)

	r.mu.Lock()
	defer r.mu.Unlock()
	if r.draining || r.finished {
		return nil, ErrDraining
	}
	if existing, ok := r.jobs[id]; ok {
		// A concurrent submission of the same bytes won the race.
		return r.jobStatusLocked(existing, false), nil
	}
	r.jobs[id] = j
	r.order = append(r.order, j)
	if buildErr != nil {
		r.finishJobLocked(j, JobFailed, buildErr.Error())
		return r.jobStatusLocked(j, false), nil
	}
	r.log.Printf("fabric: job %s: submitted by tenant %q: %d entries, %d slices each (dir %s)",
		j.id, j.tenant, len(j.tasks), r.cfg.Slices, j.dir)
	r.maybeCompleteLocked(j) // fully adopted from a previous run?
	r.checkFinishedLocked()
	return r.jobStatusLocked(j, false), nil
}

// buildJob parses and compiles the spec, plans every entry's slices
// and adopts any complete partials already in the job's namespace (a
// registry restarted after a crash resumes instead of recomputing).
func (r *Registry) buildJob(j *job) error {
	f, err := spec.Parse(j.specBytes)
	if err != nil {
		return err
	}
	if f.Adaptive != nil {
		// The adaptive allocator re-plans the trial budget between
		// rounds, which a fixed lease schedule cannot follow.
		return fmt.Errorf("spec has an adaptive block, which runs single-process; the fabric cannot schedule it")
	}
	built, err := f.BuildAll()
	if err != nil {
		return err
	}
	if err := os.MkdirAll(j.dir, 0o755); err != nil {
		return fmt.Errorf("fabric: job dir: %w", err)
	}
	j.file = f
	j.built = built
	for _, b := range built {
		ecfg := b.EngineConfig(f)
		t := &task{built: b, cfg: ecfg, arrived: make(map[int]*campaign.Partial)}
		expected := make(map[string]*slice, r.cfg.Slices)
		for i := 0; i < r.cfg.Slices; i++ {
			part := campaign.Partition{Index: i, Count: r.cfg.Slices}
			plan, err := campaign.NewPlan(b.Scenario, ecfg.ShardSize, part)
			if err != nil {
				return fmt.Errorf("fabric: %s: %w", b.Entry.Name, err)
			}
			plan.ParamsDigest = ecfg.ParamsDigest
			s := &slice{plan: plan, path: b.Entry.PartialPath(j.dir, part), state: slicePending}
			if plan.Shards() == 0 {
				s.state = sliceEmpty
			}
			expected[s.path] = s
			t.slices = append(t.slices, s)
		}
		if err := r.adoptExisting(j, t, expected); err != nil {
			return err
		}
		r.advanceTask(j, t)
		j.tasks = append(j.tasks, t)
	}
	return nil
}

// adoptExisting scans the entry's partial files already under the
// job's namespace. A complete, valid upload from a previous registry
// run is adopted as done; an incomplete one is ignored (the fresh
// upload atomically replaces it); a file that belongs to a different
// slicing or a different params digest is an error — merging would
// fail on it later, so refuse the job instead.
func (r *Registry) adoptExisting(j *job, t *task, expected map[string]*slice) error {
	paths, err := t.built.Entry.PartialFiles(j.dir)
	if err != nil {
		return fmt.Errorf("fabric: %s: %w", t.built.Entry.Name, err)
	}
	for _, path := range paths {
		s, ok := expected[path]
		if !ok {
			return fmt.Errorf("fabric: %s: leftover partial %s does not match -slices %d; remove it or the workdir",
				t.built.Entry.Name, path, r.cfg.Slices)
		}
		if s.state == sliceEmpty {
			continue
		}
		p, err := campaign.OpenPartial(path)
		if err != nil {
			return fmt.Errorf("fabric: %s: %w", t.built.Entry.Name, err)
		}
		if err := p.MatchesPlan(s.plan); err != nil {
			p.Close()
			return fmt.Errorf("fabric: %s: stale partial: %w", t.built.Entry.Name, err)
		}
		if !p.Complete(s.plan) {
			p.Close()
			r.log.Printf("fabric: job %s: %s: ignoring incomplete partial %s (will be replaced)", j.id, t.built.Entry.Name, path)
			continue
		}
		p.Close() // counters stay resident; the merge reopens for samples
		s.state = sliceDone
		s.adopted = true
		t.arrived[s.plan.Part.Index] = p
		t.doneTrials += s.plan.PartitionTrials()
		r.log.Printf("fabric: job %s: %s: adopted completed slice %s from a previous run", j.id, t.built.Entry.Name, s.plan.Part)
	}
	return nil
}

// advanceTask folds newly contiguous shards into the prefix and
// re-decides the early stop, mirroring campaign.Merge's pass 1 shard
// for shard; on a stop it cancels every slice strictly beyond the
// stopping shard. Must be called with mu held (or before the job is
// inserted).
func (r *Registry) advanceTask(j *job, t *task) {
	numShards := t.numShards()
	for !t.stopped && t.prefix < numShards {
		for t.slicePtr < len(t.slices) && t.slices[t.slicePtr].plan.End <= t.prefix {
			t.slicePtr++
		}
		if t.slicePtr >= len(t.slices) {
			break
		}
		s := t.slices[t.slicePtr]
		if s.state != sliceDone {
			break
		}
		p := t.arrived[s.plan.Part.Index]
		stop := t.cfg.Stop
		weighted := s.plan.Weighted
		var v int64
		if stop != nil {
			v, _ = p.ShardCounter(t.prefix, stop.Counter)
			if weighted {
				m, _ := p.ShardWeights(t.prefix, stop.Counter)
				t.prefixW.WSum += m.WSum
				t.prefixW.WSum2 += m.WSum2
			}
		}
		t.prefixSuccess += v
		_, t.prefixTrials = s.plan.ShardSpan(t.prefix)
		t.prefix++
		// Weighted plans stop on the relative-error rule over the folded
		// moments, exactly as Merge re-decides it; unweighted plans use
		// Wilson. A counter that increments more than once per trial is
		// not a binomial proportion; leave that stop to Merge's loud
		// error.
		fired := false
		if stop != nil {
			if weighted {
				fired = stop.SatisfiedWeighted(t.prefixW, t.prefixTrials)
			} else {
				fired = t.prefixSuccess <= int64(t.prefixTrials) &&
					stop.Satisfied(t.prefixSuccess, t.prefixTrials)
			}
		}
		if fired {
			t.stopped = true
			t.stopShard = t.prefix - 1
			for _, other := range t.slices {
				if other.plan.First > t.stopShard && (other.state == slicePending || other.state == sliceLeased) {
					other.state = sliceCancelled
				}
			}
			r.log.Printf("fabric: job %s: %s: early stop decided at shard %d/%d; cancelled remaining slices",
				j.id, t.built.Entry.Name, t.stopShard, numShards)
		}
	}
	if !t.done {
		done := true
		for _, s := range t.slices {
			if s.state != sliceDone && s.state != sliceCancelled && s.state != sliceEmpty {
				done = false
				break
			}
		}
		if done {
			t.done = true
			r.log.Printf("fabric: job %s: %s: complete (%d trials)", j.id, t.built.Entry.Name, t.doneTrials)
		}
	}
}

// maybeCompleteLocked transitions a job whose every task has finished:
// AutoMerge jobs enter merging and merge in a background goroutine;
// others are done (the submitter merges). Must be called with mu held.
func (r *Registry) maybeCompleteLocked(j *job) {
	if j.state != JobPending && j.state != JobRunning {
		return
	}
	for _, t := range j.tasks {
		if !t.done {
			return
		}
	}
	if !j.autoMerge {
		r.finishJobLocked(j, JobDone, "")
		return
	}
	j.state = JobMerging
	r.log.Printf("fabric: job %s: all slices in; merging into %s", j.id, j.outDir)
	go r.mergeJob(j)
}

// mergeJob is the server-side merge: fold every entry's partials into
// the result an unpartitioned run would produce (bit-identically),
// write the shared JSON/CSV artifacts under the job's results
// directory, and check the spec's expectation bands. Runs without the
// lock; only the final state transition takes it.
func (r *Registry) mergeJob(j *job) {
	err := func() error {
		for _, b := range j.built {
			cres, err := b.MergePartials(j.file, j.dir, nil)
			if err != nil {
				return err
			}
			if err := b.WriteArtifacts(j.outDir, cres); err != nil {
				return fmt.Errorf("%s: %w", b.Entry.Name, err)
			}
			var violations []string
			for _, verr := range b.CheckExpectations(cres) {
				violations = append(violations, verr.Error())
			}
			if len(violations) > 0 {
				return fmt.Errorf("expectation failed: %s", strings.Join(violations, "; "))
			}
		}
		return nil
	}()
	r.mu.Lock()
	defer r.mu.Unlock()
	if j.state != JobMerging {
		return // deleted while merging; the verdict no longer matters
	}
	if err != nil {
		r.finishJobLocked(j, JobFailed, err.Error())
		return
	}
	r.finishJobLocked(j, JobDone, "")
}

// finishJobLocked moves a job into a terminal state. Must be called
// with mu held.
func (r *Registry) finishJobLocked(j *job, state, errMsg string) {
	j.state = state
	j.errMsg = errMsg
	close(j.doneCh)
	if errMsg != "" {
		r.log.Printf("fabric: job %s: %s: %s", j.id, state, errMsg)
	} else {
		r.log.Printf("fabric: job %s: %s (%d uploads, %d steals)", j.id, state, j.uploads, j.steals)
	}
	r.checkFinishedLocked()
}

// Delete cancels a job: its outstanding leases are invalidated (late
// uploads against them are refused as "lease gone"), its remaining
// slices cancelled — nothing is re-queued — and the job lands in
// failed. Tenanted registries only let the owning tenant delete.
func (r *Registry) Delete(id, tenant string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrJobNotFound, id)
	}
	if len(r.tokens) > 0 && tenant != j.tenant {
		return fmt.Errorf("%w: %s", ErrForbidden, id)
	}
	if jobTerminal(j.state) {
		return fmt.Errorf("%w: %s is %s", ErrJobTerminal, id, j.state)
	}
	for _, t := range j.tasks {
		for _, s := range t.slices {
			switch s.state {
			case sliceLeased:
				delete(r.leases, s.leaseID)
				s.state = sliceCancelled
			case slicePending:
				s.state = sliceCancelled
			}
		}
	}
	// A job deleted mid-merge finishes here; the merge goroutine sees
	// the terminal state and discards its verdict.
	r.finishJobLocked(j, JobFailed, "deleted by operator")
	return nil
}

// SetDraining tells the registry no further jobs are coming: new
// submissions are refused, and once every job is terminal the registry
// reports done to executors (draining the fleet) and closes Done.
func (r *Registry) SetDraining(v bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.draining = v
	r.checkFinishedLocked()
}

// checkFinishedLocked closes the done channel once the registry is
// draining (explicitly, or DrainAfter jobs have been seen) and every
// job is terminal. Must be called with mu held.
func (r *Registry) checkFinishedLocked() {
	if r.finished {
		return
	}
	draining := r.draining || (r.cfg.DrainAfter > 0 && len(r.order) >= r.cfg.DrainAfter)
	if !draining {
		return
	}
	for _, j := range r.order {
		if !jobTerminal(j.state) {
			return
		}
	}
	r.finished = true
	close(r.doneCh)
	r.log.Printf("fabric: registry drained: %d job(s), %d uploads, %d steals, %s elapsed",
		len(r.order), r.uploads, r.steals, time.Since(r.start).Round(time.Millisecond))
}

// Done is closed once the registry is draining and every job reached a
// terminal state — the moment a service process can exit.
func (r *Registry) Done() <-chan struct{} { return r.doneCh }

// Dir returns the registry's work directory.
func (r *Registry) Dir() string { return r.cfg.Dir }

// Job returns one job's status snapshot.
func (r *Registry) Job(id string) (*JobStatus, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[id]
	if !ok {
		return nil, false
	}
	return r.jobStatusLocked(j, true), true
}

// JobDone returns a channel closed when the job reaches a terminal
// state.
func (r *Registry) JobDone(id string) (<-chan struct{}, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[id]
	if !ok {
		return nil, false
	}
	return j.doneCh, true
}

// grantLease implements the scheduler: rotate the fair-share cursor
// over the jobs, skip tenants at quota, and hand out the first pending
// (or expired-and-stealable) slice. A nil reply means no grantable
// work right now (HTTP 204).
func (r *Registry) grantLease(executor string) *leaseReply {
	now := time.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	if executor != "" {
		r.executors[executor] = now
	}
	if r.finished {
		return &leaseReply{Done: true}
	}
	// Live leased slices per owning tenant. Expired leases are excluded:
	// a dead executor's leases must never hold their own tenant at quota
	// and block the steal that would recover them.
	leased := make(map[string]int)
	for _, ref := range r.leases {
		s := ref.task.slices[ref.slice]
		if s.state == sliceLeased && !now.After(s.deadline) {
			leased[ref.job.tenant]++
		}
	}
	n := len(r.order)
	for k := 0; k < n; k++ {
		j := r.order[(r.rr+k)%n]
		if j.state != JobPending && j.state != JobRunning {
			continue
		}
		if q := r.quotas[j.tenant]; q > 0 && leased[j.tenant] >= q {
			continue
		}
		for _, t := range j.tasks {
			if t.done {
				continue
			}
			for _, s := range t.slices {
				if s.state != slicePending && !(s.state == sliceLeased && now.After(s.deadline)) {
					continue
				}
				// Advance the cursor past this job so the next request
				// starts at the next job — the fair share.
				r.rr = (r.rr + k + 1) % n
				return r.grantLocked(j, t, s, executor, now, s.state == sliceLeased)
			}
		}
	}
	return nil
}

// grantLocked assigns a slice to an executor under a fresh lease.
// Must be called with mu held.
func (r *Registry) grantLocked(j *job, t *task, s *slice, executor string, now time.Time, stolen bool) *leaseReply {
	if stolen {
		r.steals++
		j.steals++
		s.steals++
		delete(r.leases, s.leaseID)
		r.log.Printf("fabric: job %s: lease %s (%s slice %s) held by %s expired; stolen by %s",
			j.id, s.leaseID, t.built.Entry.Name, s.plan.Part, s.holder, executor)
	}
	if j.state == JobPending {
		j.state = JobRunning
	}
	r.leaseSeq++
	s.leaseID = fmt.Sprintf("L%d", r.leaseSeq)
	s.holder = executor
	s.state = sliceLeased
	s.deadline = now.Add(r.cfg.LeaseTimeout)
	r.leases[s.leaseID] = leaseRef{job: j, task: t, slice: s.plan.Part.Index}
	renew := r.cfg.LeaseTimeout / 3
	if renew < 50*time.Millisecond {
		renew = 50 * time.Millisecond
	}
	r.log.Printf("fabric: job %s: leased %s slice %s to %s as %s (deadline %s)",
		j.id, t.built.Entry.Name, s.plan.Part, executor, s.leaseID, r.cfg.LeaseTimeout)
	return &leaseReply{Lease: &Lease{
		ID:           s.leaseID,
		Job:          j.id,
		SpecDigest:   j.digest,
		Entry:        t.built.Entry.Name,
		Scenario:     s.plan.Scenario,
		Index:        s.plan.Part.Index,
		Count:        s.plan.Part.Count,
		Trials:       s.plan.Trials,
		ShardSize:    s.plan.ShardSize,
		NumShards:    s.plan.NumShards,
		ParamsDigest: s.plan.ParamsDigest,
		DeadlineMS:   s.deadline.UnixMilli(),
		RenewMS:      renew.Milliseconds(),
	}}
}

// Status snapshots the registry's progress.
func (r *Registry) Status() Status {
	r.mu.Lock()
	defer r.mu.Unlock()
	elapsed := time.Since(r.start)
	st := Status{
		StartUnixMS: r.start.UnixMilli(),
		UptimeSec:   elapsed.Seconds(),
		Done:        r.finished,
		Draining:    r.draining || (r.cfg.DrainAfter > 0 && len(r.order) >= r.cfg.DrainAfter),
		Slices:      r.cfg.Slices,
		LeaseMS:     r.cfg.LeaseTimeout.Milliseconds(),
		Executors:   len(r.executors),
		Uploads:     r.uploads,
		Ignored:     r.ignored,
		Rejected:    r.rejected,
		Steals:      r.steals,
	}
	for _, j := range r.order {
		st.Jobs = append(st.Jobs, *r.jobStatusLocked(j, true))
	}
	return st
}

// jobStatusLocked snapshots one job. Must be called with mu held.
func (r *Registry) jobStatusLocked(j *job, entries bool) *JobStatus {
	js := &JobStatus{
		ID:            j.id,
		Tenant:        j.tenant,
		State:         j.state,
		Error:         j.errMsg,
		SpecDigest:    j.digest,
		CreatedUnixMS: j.created.UnixMilli(),
		Dir:           j.dir,
		OutDir:        j.outDir,
		Steals:        j.steals,
	}
	elapsed := time.Since(r.start)
	for _, t := range j.tasks {
		js.DoneTrials += t.doneTrials
		js.TotalTrials += t.totalTrials()
		es := EntryStatus{
			Entry:        t.built.Entry.Name,
			Scenario:     t.slices[0].plan.Scenario,
			Done:         t.done,
			EarlyStopped: t.stopped,
			NumShards:    t.numShards(),
			PrefixShards: t.prefix,
			DoneTrials:   t.doneTrials,
			TotalTrials:  t.totalTrials(),
		}
		if elapsed > 0 {
			es.TrialsPerSec = float64(t.doneTrials) / elapsed.Seconds()
		}
		for _, s := range t.slices {
			switch s.state {
			case slicePending:
				js.SlicesPending++
			case sliceLeased:
				js.SlicesLeased++
			case sliceDone:
				js.SlicesDone++
			case sliceCancelled:
				js.SlicesCancelled++
			}
			if entries {
				es.Slices = append(es.Slices, SliceStatus{
					Index:   s.plan.Part.Index,
					State:   s.state,
					Holder:  s.holder,
					Steals:  s.steals,
					Trials:  s.plan.PartitionTrials(),
					Adopted: s.adopted,
				})
			}
		}
		if entries {
			js.Entries = append(js.Entries, es)
		}
	}
	return js
}
