// Package duplex implements the continuous-time Markov chain model of
// the paper's duplex memory arrangement: two replicated RS(n,k)-coded
// modules behind an erasure-masking, flag-comparing arbiter (paper
// Sections 3-5, Figures 3-4).
//
// Each state is the 6-tuple (X, Y, b, e1, e2, ec) of Figure 3,
// classifying the n symbol positions of the replicated word pair:
//
//	X  — erasures on the same symbol of both words (unmaskable);
//	Y  — erasure on one word only, the twin symbol error-free
//	     (maskable by the arbiter's erasure-recovery step);
//	b  — erasure on one word and a random error on the twin symbol;
//	e1 — random error in word 1 only;
//	e2 — random error in word 2 only;
//	ec — random errors in corresponding symbols of both words.
//
// After erasure recovery masks the Y positions, word w must satisfy
//
//	X + 2*b + 2*ec + 2*e_w <= n - k
//
// to decode. Following the paper ("the ability of the system to
// provide a correct output ... is limited on each module by the
// condition"), the pair is unrecoverable (absorbing Fail state) as
// soon as either word violates its condition: once one module's word
// mis-corrects, the arbiter sees two flagged, differing words and
// cannot discriminate, so it provides no output. This is what makes
// the duplex BER under pure SEU match the simplex range (paper
// Figures 5 vs 6) while the arbiter's Y-masking still gives the
// duplex its large advantage under permanent faults (Figures 8 vs 9).
// Scrubbing rewrites corrected
// data at rate 1/Tsc, clearing transient errors while permanent
// faults persist: (X, Y, b, e1, e2, ec) -> (X, Y+b, 0, 0, 0, 0).
package duplex

import (
	"fmt"

	"repro/internal/markov"
)

// State is one Markov state of the duplex model; the zero value is
// the initial Good state (all positions clean in both words).
type State struct {
	X    int  // double erasures (same position, both words)
	Y    int  // single erasures (twin symbol clean)
	B    int  // erasure on one word + random error on the twin
	E1   int  // random errors only in word 1
	E2   int  // random errors only in word 2
	Ec   int  // random errors in both words at the same position
	Fail bool // absorbing unrecoverable state
}

// String renders the state in the paper's 6-tuple notation.
func (s State) String() string {
	if s.Fail {
		return "FAIL"
	}
	return fmt.Sprintf("(%d,%d,%d,%d,%d,%d)", s.X, s.Y, s.B, s.E1, s.E2, s.Ec)
}

var fail = State{Fail: true}

// Options selects between paper-faithful transition rates and
// dimensionally consistent variants for the two spots where the paper
// text is ambiguous (see DESIGN.md, "Modeling decisions").
type Options struct {
	// BRateUsesY reproduces the paper's literal rate "lambda_e * Y"
	// for the transition converting a b position into an X position
	// (state B of Figure 4). The default (false) uses lambda_e * b,
	// the dimensionally consistent reading.
	BRateUsesY bool
	// DoubleSidedErasures doubles the erasure rates of events that
	// can strike either of the two module symbols at a position
	// (clean->Y and ec->b), which the paper counts once. Off by
	// default for paper fidelity; exposed for the ablation bench.
	DoubleSidedErasures bool
	// DoubleSidedErrors doubles the SEU rate of the clean->e1/e2
	// transitions analogously. Off by default: the paper already
	// models the two words with separate e1/e2 transitions, so only
	// the erasure-side single-counting is ambiguous; kept for
	// symmetry in ablations.
	DoubleSidedErrors bool
	// EitherWordSuffices relaxes the fail condition so the system
	// survives while at least ONE word decodes (an idealized arbiter
	// that always knows which correction to trust). The paper's
	// arbiter cannot discriminate two flagged, differing words, so
	// the default (false) fails as soon as either word exceeds its
	// capability. The ablation bench quantifies the gap.
	EitherWordSuffices bool
}

// Params configures the duplex model. All rates are per hour; use
// internal/reliability to convert from the paper's per-day figures.
type Params struct {
	N int // codeword symbols per module
	K int // dataword symbols
	M int // bits per symbol

	Lambda    float64 // SEU rate per bit per hour (per module)
	LambdaE   float64 // erasure rate per symbol per hour (per module)
	ScrubRate float64 // scrub rate 1/Tsc per hour; 0 disables scrubbing

	Opts Options
}

// Validate checks structural and rate sanity.
func (p Params) Validate() error {
	switch {
	case p.N <= 0 || p.K <= 0 || p.K >= p.N:
		return fmt.Errorf("duplex: invalid code RS(%d,%d)", p.N, p.K)
	case p.M <= 0 || p.M > 16:
		return fmt.Errorf("duplex: invalid symbol width m=%d", p.M)
	case p.N > 1<<uint(p.M)-1:
		return fmt.Errorf("duplex: n=%d exceeds 2^%d-1", p.N, p.M)
	case p.Lambda < 0 || p.LambdaE < 0 || p.ScrubRate < 0:
		return fmt.Errorf("duplex: negative rate (lambda=%g lambdaE=%g scrub=%g)",
			p.Lambda, p.LambdaE, p.ScrubRate)
	}
	return nil
}

// WordRecoverable reports whether word w (1 or 2) satisfies its
// post-masking capability condition X + 2b + 2ec + 2e_w <= n-k.
func (p Params) WordRecoverable(s State, w int) bool {
	e := s.E1
	if w == 2 {
		e = s.E2
	}
	return s.X+2*s.B+2*s.Ec+2*e <= p.N-p.K
}

// Recoverable reports whether the arbiter can still produce a correct
// output. By default both words must decode (see the package comment);
// with Opts.EitherWordSuffices one surviving word is enough.
func (p Params) Recoverable(s State) bool {
	if p.Opts.EitherWordSuffices {
		return p.WordRecoverable(s, 1) || p.WordRecoverable(s, 2)
	}
	return p.WordRecoverable(s, 1) && p.WordRecoverable(s, 2)
}

// occupied returns the number of positions carrying any fault class.
func (s State) occupied() int { return s.X + s.Y + s.B + s.E1 + s.E2 + s.Ec }

// guard maps a candidate successor to itself when still recoverable
// and to the absorbing Fail state otherwise.
func (p Params) guard(s State) State {
	if s.Fail || !p.Recoverable(s) {
		return fail
	}
	return s
}

// Transitions returns the outgoing arcs of a state: the erasure events
// A-H and the random-error events I, L, M, N, O of paper Figure 4,
// plus scrubbing. Events on already-erased module symbols and second
// bit flips within one symbol leave the state unchanged and are
// omitted (self-loops are meaningless in a CTMC).
func (p Params) Transitions(s State) []markov.Arc[State] {
	if s.Fail {
		return nil
	}
	free := p.N - s.occupied()
	seu := float64(p.M) * p.Lambda // per module-symbol SEU rate
	side := 1.0
	if p.Opts.DoubleSidedErasures {
		side = 2
	}
	errSide := 1.0
	if p.Opts.DoubleSidedErrors {
		errSide = 2
	}

	arcs := make([]markov.Arc[State], 0, 14)
	add := func(to State, rate float64) {
		if rate > 0 {
			arcs = append(arcs, markov.Arc[State]{To: p.guard(to), Rate: rate})
		}
	}

	if p.LambdaE > 0 {
		// A: erasure on the clean twin of a Y position -> X.
		if s.Y > 0 {
			add(State{X: s.X + 1, Y: s.Y - 1, B: s.B, E1: s.E1, E2: s.E2, Ec: s.Ec},
				p.LambdaE*float64(s.Y))
		}
		// B: erasure on the errored side of a b position -> X (the
		// located fault subsumes the random error). The paper prints
		// rate lambda_e*Y here; lambda_e*b is the consistent reading.
		if s.B > 0 {
			mult := float64(s.B)
			if p.Opts.BRateUsesY {
				mult = float64(s.Y)
			}
			add(State{X: s.X + 1, Y: s.Y, B: s.B - 1, E1: s.E1, E2: s.E2, Ec: s.Ec},
				p.LambdaE*mult)
		}
		// C: erasure on a fully clean position -> Y.
		if free > 0 {
			add(State{X: s.X, Y: s.Y + 1, B: s.B, E1: s.E1, E2: s.E2, Ec: s.Ec},
				side*p.LambdaE*float64(free))
		}
		// D/E: erasure overtaking the errored word of an e1/e2
		// position (twin clean) -> Y.
		if s.E1 > 0 {
			add(State{X: s.X, Y: s.Y + 1, B: s.B, E1: s.E1 - 1, E2: s.E2, Ec: s.Ec},
				p.LambdaE*float64(s.E1))
		}
		if s.E2 > 0 {
			add(State{X: s.X, Y: s.Y + 1, B: s.B, E1: s.E1, E2: s.E2 - 1, Ec: s.Ec},
				p.LambdaE*float64(s.E2))
		}
		// F: erasure on one side of an ec position -> b.
		if s.Ec > 0 {
			add(State{X: s.X, Y: s.Y, B: s.B + 1, E1: s.E1, E2: s.E2, Ec: s.Ec - 1},
				side*p.LambdaE*float64(s.Ec))
		}
		// G/H: erasure on the clean twin of an e1/e2 position -> b.
		if s.E1 > 0 {
			add(State{X: s.X, Y: s.Y, B: s.B + 1, E1: s.E1 - 1, E2: s.E2, Ec: s.Ec},
				p.LambdaE*float64(s.E1))
		}
		if s.E2 > 0 {
			add(State{X: s.X, Y: s.Y, B: s.B + 1, E1: s.E1, E2: s.E2 - 1, Ec: s.Ec},
				p.LambdaE*float64(s.E2))
		}
	}

	if p.Lambda > 0 {
		// I: SEU on the clean twin of a Y position -> b.
		if s.Y > 0 {
			add(State{X: s.X, Y: s.Y - 1, B: s.B + 1, E1: s.E1, E2: s.E2, Ec: s.Ec},
				seu*float64(s.Y))
		}
		// L/M: SEU on a clean position, word 1 or word 2.
		if free > 0 {
			add(State{X: s.X, Y: s.Y, B: s.B, E1: s.E1 + 1, E2: s.E2, Ec: s.Ec},
				errSide*seu*float64(free))
			add(State{X: s.X, Y: s.Y, B: s.B, E1: s.E1, E2: s.E2 + 1, Ec: s.Ec},
				errSide*seu*float64(free))
		}
		// N/O: SEU on the clean twin of an e1/e2 position -> ec.
		if s.E1 > 0 {
			add(State{X: s.X, Y: s.Y, B: s.B, E1: s.E1 - 1, E2: s.E2, Ec: s.Ec + 1},
				seu*float64(s.E1))
		}
		if s.E2 > 0 {
			add(State{X: s.X, Y: s.Y, B: s.B, E1: s.E1, E2: s.E2 - 1, Ec: s.Ec + 1},
				seu*float64(s.E2))
		}
	}

	// Scrubbing: transient errors cleared, permanent faults persist.
	// A b position keeps its single-word erasure and becomes Y.
	if p.ScrubRate > 0 {
		scrubbed := State{X: s.X, Y: s.Y + s.B}
		if scrubbed != s {
			add(scrubbed, p.ScrubRate)
		}
	}
	return arcs
}

// MaxStates is the default exploration bound. The duplex space for
// RS(18,16) has a few thousand reachable states; wider codes grow
// combinatorially, so Build takes an explicit budget.
const MaxStates = 300000

// Build explores the model's state space and returns the CTMC. The
// initial state (index 0) is the all-clean Good state.
func Build(p Params) (*markov.Explored[State], error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return markov.Build(State{}, p.Transitions, MaxStates)
}

// FailProbabilities solves the chain transiently and returns the Fail
// state probability at each time (hours, nondecreasing).
func FailProbabilities(p Params, times []float64) ([]float64, error) {
	ex, err := Build(p)
	if err != nil {
		return nil, err
	}
	series, err := ex.Chain.TransientSeries(ex.InitialVector(), times)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(times))
	for i, dist := range series {
		out[i] = ex.ProbabilityOf(dist, func(s State) bool { return s.Fail })
	}
	return out, nil
}
