package duplex

import (
	"math"
	"testing"

	"repro/internal/simplex"
)

func relClose(a, b, rel float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= rel*scale
}

func baseParams() Params {
	return Params{N: 18, K: 16, M: 8, Lambda: 1e-5, LambdaE: 1e-6}
}

func TestValidate(t *testing.T) {
	good := baseParams()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	cases := []func(*Params){
		func(p *Params) { p.N = 0 },
		func(p *Params) { p.K = p.N },
		func(p *Params) { p.M = 0 },
		func(p *Params) { p.M = 20 },
		func(p *Params) { p.N = 300; p.M = 8 },
		func(p *Params) { p.Lambda = -1 },
		func(p *Params) { p.LambdaE = -1 },
		func(p *Params) { p.ScrubRate = -1 },
	}
	for i, mut := range cases {
		p := baseParams()
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted: %+v", i, p)
		}
	}
}

func TestStateString(t *testing.T) {
	s := State{X: 1, Y: 2, B: 3, E1: 4, E2: 5, Ec: 6}
	if got := s.String(); got != "(1,2,3,4,5,6)" {
		t.Errorf("String = %q", got)
	}
	if got := (State{Fail: true}).String(); got != "FAIL" {
		t.Errorf("String = %q", got)
	}
}

func TestWordRecoverable(t *testing.T) {
	p := baseParams() // n-k = 2
	cases := []struct {
		s      State
		w1, w2 bool
	}{
		{State{}, true, true},
		{State{E1: 1}, true, true},
		{State{E1: 2}, false, true},
		{State{E2: 2}, true, false},
		{State{X: 2}, true, true},
		{State{X: 3}, false, false},
		{State{X: 1, E1: 1}, false, true}, // 1 + 2 = 3 > 2
		{State{B: 1}, true, true},
		{State{B: 1, E1: 1}, false, true},
		{State{Ec: 1}, true, true},
		{State{Ec: 1, E2: 1}, true, false},
		{State{Y: 18}, true, true}, // Y is masked, never counts
	}
	for _, c := range cases {
		if got := p.WordRecoverable(c.s, 1); got != c.w1 {
			t.Errorf("WordRecoverable(%v, 1) = %v, want %v", c.s, got, c.w1)
		}
		if got := p.WordRecoverable(c.s, 2); got != c.w2 {
			t.Errorf("WordRecoverable(%v, 2) = %v, want %v", c.s, got, c.w2)
		}
	}
}

func TestRecoverableSemantics(t *testing.T) {
	p := baseParams()
	s := State{E1: 2} // word1 dead, word2 fine
	if p.Recoverable(s) {
		t.Error("default (paper) semantics must fail when one word exceeds capability")
	}
	p.Opts.EitherWordSuffices = true
	if !p.Recoverable(s) {
		t.Error("EitherWordSuffices must survive on one good word")
	}
	dead := State{X: 3}
	if p.Recoverable(dead) {
		t.Error("state with both words dead must not be recoverable")
	}
}

func TestGoodStateTransitions(t *testing.T) {
	p := baseParams()
	arcs := p.Transitions(State{})
	// From all-clean: C (erasure -> Y), L (SEU word1), M (SEU word2).
	if len(arcs) != 3 {
		t.Fatalf("got %d arcs from Good, want 3: %v", len(arcs), arcs)
	}
	seu := float64(p.M) * p.Lambda * float64(p.N)
	found := map[State]float64{}
	for _, a := range arcs {
		found[a.To] = a.Rate
	}
	if r := found[State{Y: 1}]; !relClose(r, p.LambdaE*18, 1e-12) {
		t.Errorf("clean->Y rate %g, want %g", r, p.LambdaE*18)
	}
	if r := found[State{E1: 1}]; !relClose(r, seu, 1e-12) {
		t.Errorf("clean->e1 rate %g, want %g", r, seu)
	}
	if r := found[State{E2: 1}]; !relClose(r, seu, 1e-12) {
		t.Errorf("clean->e2 rate %g, want %g", r, seu)
	}
}

// TestFigure4Transitions spot-checks every lettered transition of the
// paper's Figure 4 from a state where all six classes are populated.
func TestFigure4Transitions(t *testing.T) {
	p := Params{N: 36, K: 16, M: 8, Lambda: 1e-5, LambdaE: 1e-6}
	s := State{X: 1, Y: 2, B: 1, E1: 1, E2: 2, Ec: 1}
	free := float64(p.N - s.occupied())
	seu := float64(p.M) * p.Lambda
	arcs := p.Transitions(s)
	rates := map[State]float64{}
	for _, a := range arcs {
		rates[a.To] += a.Rate
	}
	le := p.LambdaE
	want := map[State]float64{
		// A: Y erasure twin -> X.
		{X: 2, Y: 1, B: 1, E1: 1, E2: 2, Ec: 1}: le * 2,
		// B: b erasure -> X (rate lambdaE*b, the consistent reading).
		{X: 2, Y: 2, B: 0, E1: 1, E2: 2, Ec: 1}: le * 1,
		// C: clean -> Y.
		{X: 1, Y: 3, B: 1, E1: 1, E2: 2, Ec: 1}: le * free,
		// D: erasure on errored word of e1 -> Y. (plus E for e2)
		{X: 1, Y: 3, B: 1, E1: 0, E2: 2, Ec: 1}: le * 1,
		{X: 1, Y: 3, B: 1, E1: 1, E2: 1, Ec: 1}: le * 2,
		// F: ec -> b.
		{X: 1, Y: 2, B: 2, E1: 1, E2: 2, Ec: 0}: le * 1,
		// G/H: erasure on clean twin of e1/e2 -> b.
		{X: 1, Y: 2, B: 2, E1: 0, E2: 2, Ec: 1}: le * 1,
		{X: 1, Y: 2, B: 2, E1: 1, E2: 1, Ec: 1}: le * 2,
		// I: SEU on clean twin of Y -> b.
		{X: 1, Y: 1, B: 2, E1: 1, E2: 2, Ec: 1}: seu * 2,
		// L/M: SEU on clean position.
		{X: 1, Y: 2, B: 1, E1: 2, E2: 2, Ec: 1}: seu * free,
		{X: 1, Y: 2, B: 1, E1: 1, E2: 3, Ec: 1}: seu * free,
		// N/O: SEU on clean twin of e1/e2 -> ec.
		{X: 1, Y: 2, B: 1, E1: 0, E2: 2, Ec: 2}: seu * 1,
		{X: 1, Y: 2, B: 1, E1: 1, E2: 1, Ec: 2}: seu * 2,
	}
	// C and D both land on (1,3,1,0|1,...): D targets E1-1 so they are
	// distinct states above except C vs D/E; verify each individually.
	for to, rate := range want {
		got, ok := rates[to]
		if !ok {
			t.Errorf("missing transition to %v", to)
			continue
		}
		if !relClose(got, rate, 1e-12) {
			t.Errorf("transition to %v has rate %g, want %g", to, got, rate)
		}
	}
	if len(rates) != len(want) {
		t.Errorf("got %d distinct successors, want %d: %v", len(rates), len(want), rates)
	}
}

func TestPaperBRateVariant(t *testing.T) {
	p := baseParams()
	p.Opts.BRateUsesY = true
	s := State{Y: 2, B: 1}
	var got float64
	for _, a := range p.Transitions(s) {
		if a.To == (State{X: 1, Y: 2}) {
			got = a.Rate
		}
	}
	if !relClose(got, p.LambdaE*2, 1e-12) {
		t.Errorf("paper-literal B rate = %g, want lambdaE*Y = %g", got, p.LambdaE*2)
	}
}

func TestScrubTransitionTarget(t *testing.T) {
	p := baseParams()
	p.ScrubRate = 4
	s := State{X: 1, Y: 1, B: 2, E1: 1, E2: 0, Ec: 1}
	var found bool
	for _, a := range p.Transitions(s) {
		if a.Rate == 4 {
			if a.To != (State{X: 1, Y: 3}) {
				t.Errorf("scrub lands on %v, want (1,3,0,0,0,0)", a.To)
			}
			found = true
		}
	}
	if !found {
		t.Error("scrub transition missing")
	}
	// Scrubbing an already-clean persistent state is a self-loop and
	// must not be emitted.
	for _, a := range p.Transitions(State{X: 1, Y: 2}) {
		if a.To == (State{X: 1, Y: 2}) {
			t.Error("self-loop scrub emitted")
		}
	}
}

func TestAbsorbingFail(t *testing.T) {
	p := baseParams()
	if arcs := p.Transitions(State{Fail: true}); arcs != nil {
		t.Errorf("Fail state has outgoing arcs: %v", arcs)
	}
}

func TestExploredInvariants(t *testing.T) {
	p := baseParams()
	p.ScrubRate = 1
	ex, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Chain.NumStates() < 10 {
		t.Fatalf("suspiciously small duplex space: %d", ex.Chain.NumStates())
	}
	for _, s := range ex.States {
		if s.Fail {
			continue
		}
		if !p.Recoverable(s) {
			t.Errorf("unrecoverable non-fail state %v explored", s)
		}
		if s.occupied() > p.N {
			t.Errorf("state %v occupies more than n positions", s)
		}
		if s.X < 0 || s.Y < 0 || s.B < 0 || s.E1 < 0 || s.E2 < 0 || s.Ec < 0 {
			t.Errorf("negative count in state %v", s)
		}
	}
}

// TestWordSymmetry: the model must be symmetric under swapping the two
// modules; the explored space must contain the mirror of every state.
func TestWordSymmetry(t *testing.T) {
	p := baseParams()
	ex, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range ex.States {
		if s.Fail {
			continue
		}
		mirror := State{X: s.X, Y: s.Y, B: s.B, E1: s.E2, E2: s.E1, Ec: s.Ec}
		if _, ok := ex.Index[mirror]; !ok {
			t.Errorf("mirror of %v not in state space", s)
		}
	}
}

// TestDuplexIsTwiceSimplexUnderPureSEU verifies the headline of
// Figures 5 vs 6: with no permanent faults the duplex fail probability
// approaches twice the simplex one (two independent words, each of
// which kills the system when it exceeds capability; the quadratic
// cross terms are negligible at paper rates).
func TestDuplexIsTwiceSimplexUnderPureSEU(t *testing.T) {
	lambda := 1.7e-5 / 24 // worst case per hour
	dp := Params{N: 18, K: 16, M: 8, Lambda: lambda}
	sp := simplex.Params{N: 18, K: 16, M: 8, Lambda: lambda}
	times := []float64{12, 24, 48}
	dF, err := FailProbabilities(dp, times)
	if err != nil {
		t.Fatal(err)
	}
	sF, err := simplex.FailProbabilities(sp, times)
	if err != nil {
		t.Fatal(err)
	}
	for i := range times {
		ratio := dF[i] / sF[i]
		if math.Abs(ratio-2) > 0.02 {
			t.Errorf("t=%v: duplex/simplex = %v, want ~2", times[i], ratio)
		}
	}
}

// TestDuplexBeatsSimplexUnderPermanentFaults verifies the headline of
// Figures 8 vs 9: the arbiter's Y-masking makes the duplex orders of
// magnitude more resilient to permanent faults.
func TestDuplexBeatsSimplexUnderPermanentFaults(t *testing.T) {
	lambdaE := 1e-5 / 24
	dp := Params{N: 18, K: 16, M: 8, LambdaE: lambdaE}
	sp := simplex.Params{N: 18, K: 16, M: 8, LambdaE: lambdaE}
	tt := []float64{720 * 24} // 24 months in hours
	dF, err := FailProbabilities(dp, tt)
	if err != nil {
		t.Fatal(err)
	}
	sF, err := simplex.FailProbabilities(sp, tt)
	if err != nil {
		t.Fatal(err)
	}
	if dF[0] <= 0 {
		t.Fatal("duplex fail probability underflowed to zero")
	}
	if sF[0]/dF[0] < 1e3 {
		t.Errorf("duplex advantage only %gx (simplex %g, duplex %g), want >= 1e3x",
			sF[0]/dF[0], sF[0], dF[0])
	}
}

func TestEitherWordSufficesIsFarBetter(t *testing.T) {
	base := Params{N: 18, K: 16, M: 8, Lambda: 1.7e-5 / 24}
	ideal := base
	ideal.Opts.EitherWordSuffices = true
	times := []float64{48}
	strict, err := FailProbabilities(base, times)
	if err != nil {
		t.Fatal(err)
	}
	relaxed, err := FailProbabilities(ideal, times)
	if err != nil {
		t.Fatal(err)
	}
	if relaxed[0] >= strict[0]/100 {
		t.Errorf("idealized arbiter should be >100x better: strict %g relaxed %g", strict[0], relaxed[0])
	}
}

func TestScrubbingImprovesDuplex(t *testing.T) {
	p := Params{N: 18, K: 16, M: 8, Lambda: 1.7e-5 / 24}
	noScrub, err := FailProbabilities(p, []float64{48})
	if err != nil {
		t.Fatal(err)
	}
	prev := noScrub[0]
	for _, tscSeconds := range []float64{3600, 1800, 1200, 900} {
		ps := p
		ps.ScrubRate = 3600 / tscSeconds
		got, err := FailProbabilities(ps, []float64{48})
		if err != nil {
			t.Fatal(err)
		}
		if got[0] >= prev {
			t.Errorf("Tsc=%vs did not improve P_fail: %g vs %g", tscSeconds, got[0], prev)
		}
		prev = got[0]
	}
}

func TestFailMonotonicInTime(t *testing.T) {
	p := baseParams()
	times := []float64{0, 1, 12, 48, 300}
	got, err := FailProbabilities(p, times)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 {
		t.Errorf("P_fail(0) = %g", got[0])
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Errorf("P_fail not monotone at %v", times[i])
		}
	}
}

func TestDoubleSidedVariantsIncreaseFailProbability(t *testing.T) {
	base := Params{N: 18, K: 16, M: 8, Lambda: 1e-5, LambdaE: 1e-5}
	b, err := FailProbabilities(base, []float64{100})
	if err != nil {
		t.Fatal(err)
	}
	doubled := base
	doubled.Opts.DoubleSidedErasures = true
	d, err := FailProbabilities(doubled, []float64{100})
	if err != nil {
		t.Fatal(err)
	}
	if d[0] <= b[0] {
		t.Errorf("doubled erasure sides did not increase P_fail: %g vs %g", d[0], b[0])
	}
	errDoubled := base
	errDoubled.Opts.DoubleSidedErrors = true
	e, err := FailProbabilities(errDoubled, []float64{100})
	if err != nil {
		t.Fatal(err)
	}
	if e[0] <= b[0] {
		t.Errorf("doubled error sides did not increase P_fail: %g vs %g", e[0], b[0])
	}
}

func TestBuildRejectsInvalid(t *testing.T) {
	if _, err := Build(Params{N: 5, K: 5, M: 8}); err == nil {
		t.Error("Build accepted invalid params")
	}
	if _, err := FailProbabilities(Params{N: 5, K: 5, M: 8}, []float64{1}); err == nil {
		t.Error("FailProbabilities accepted invalid params")
	}
}

func BenchmarkBuildRS1816(b *testing.B) {
	p := baseParams()
	p.ScrubRate = 1
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Build(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFailProbabilities48h(b *testing.B) {
	p := baseParams()
	p.ScrubRate = 1
	times := []float64{6, 12, 24, 48}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := FailProbabilities(p, times); err != nil {
			b.Fatal(err)
		}
	}
}
