// Package gf implements arithmetic over the finite fields GF(2^m) for
// 2 <= m <= 16.
//
// A field is described by a primitive polynomial p(x) of degree m over
// GF(2); elements are the residues of binary polynomials modulo p(x),
// represented as the unsigned integers 0 .. 2^m-1 whose bit i is the
// coefficient of x^i. Addition is bitwise XOR; multiplication is
// carried out through logarithm/antilogarithm tables indexed by the
// powers of the primitive element alpha = x.
//
// The package is the arithmetic substrate for the Reed-Solomon codec
// in internal/rs, which in turn underpins the fault-tolerant memory
// systems analyzed by the DATE'05 paper reproduced by this repository.
// Symbol widths used there are m = 8 (byte-organized memories), but
// the full range is supported and tested so other memory organizations
// can be explored.
package gf

import "fmt"

// Elem is an element of a GF(2^m) field, valid in the range
// 0 .. 2^m-1 for the field it belongs to. Elements are plain values;
// all arithmetic is provided by the Field that created them.
type Elem uint16

// MaxM and MinM bound the supported field extensions. GF(2^16) tables
// occupy 512 KiB which is still comfortably cacheable; larger fields
// are outside the scope of memory-symbol coding.
const (
	MinM = 2
	MaxM = 16
)

// defaultPoly lists a conventional primitive polynomial for each
// supported m (index = m). The values are the standard polynomials
// used by CCSDS/DVB-style codecs; e.g. 0x11d is
// x^8 + x^4 + x^3 + x^2 + 1 for GF(256).
var defaultPoly = [MaxM + 1]uint32{
	2:  0x7,
	3:  0xb,
	4:  0x13,
	5:  0x25,
	6:  0x43,
	7:  0x89,
	8:  0x11d,
	9:  0x211,
	10: 0x409,
	11: 0x805,
	12: 0x1053,
	13: 0x201b,
	14: 0x4443,
	15: 0x8003,
	16: 0x1100b,
}

// Field holds the precomputed log/antilog tables for one GF(2^m).
// A Field is immutable after construction and safe for concurrent use.
type Field struct {
	m    int    // extension degree
	size int    // 2^m, number of elements
	n    int    // 2^m - 1, order of the multiplicative group
	poly uint32 // primitive polynomial including the x^m term

	// exp[i] = alpha^i for i in 0 .. 2n-1 (doubled so products of two
	// logarithms index without an explicit modulo reduction).
	exp []Elem
	// log[e] = i such that alpha^i = e, for e in 1 .. n. log[0] is a
	// sentinel that is never read by valid code paths.
	log []uint16
	// mul is the full multiplication table for small fields
	// (m <= mulTableMaxM): mul[int(a)<<m | int(b)] = a*b. It turns a
	// product into a single load, which is what the batch kernels and
	// the Reed-Solomon hot loops want; for larger fields it stays nil
	// and the log/exp path is used instead.
	mul []Elem
}

// mulTableMaxM bounds the fields for which the full multiplication
// table is precomputed. At m = 8 the table is 2^16 elements = 128 KiB,
// still cache-friendly; one step further would already be 8 MiB.
const mulTableMaxM = 8

// NewField returns the field GF(2^m) built from the package's default
// primitive polynomial for that m.
func NewField(m int) (*Field, error) {
	if m < MinM || m > MaxM {
		return nil, fmt.Errorf("gf: unsupported extension degree m=%d (want %d..%d)", m, MinM, MaxM)
	}
	return NewFieldPoly(m, defaultPoly[m])
}

// MustField is NewField for static configuration; it panics on error.
// It is intended for package-level defaults with known-good m.
func MustField(m int) *Field {
	f, err := NewField(m)
	if err != nil {
		panic(err)
	}
	return f
}

// NewFieldPoly returns the field GF(2^m) defined by the given
// primitive polynomial (bit i of poly is the coefficient of x^i, and
// bit m must be set). The polynomial is verified to be primitive by
// checking that alpha = x generates the full multiplicative group; a
// merely irreducible but non-primitive polynomial is rejected.
func NewFieldPoly(m int, poly uint32) (*Field, error) {
	if m < MinM || m > MaxM {
		return nil, fmt.Errorf("gf: unsupported extension degree m=%d (want %d..%d)", m, MinM, MaxM)
	}
	if poly>>uint(m) != 1 {
		return nil, fmt.Errorf("gf: polynomial %#x does not have degree %d", poly, m)
	}
	f := &Field{
		m:    m,
		size: 1 << uint(m),
		n:    1<<uint(m) - 1,
		poly: poly,
	}
	f.exp = make([]Elem, 2*f.n)
	f.log = make([]uint16, f.size)

	x := uint32(1)
	for i := 0; i < f.n; i++ {
		if x == 1 && i != 0 {
			return nil, fmt.Errorf("gf: polynomial %#x is not primitive over GF(2^%d): alpha has order %d", poly, m, i)
		}
		f.exp[i] = Elem(x)
		f.log[x] = uint16(i)
		x <<= 1
		if x&(1<<uint(m)) != 0 {
			x ^= poly
		}
	}
	if x != 1 {
		return nil, fmt.Errorf("gf: polynomial %#x is not primitive over GF(2^%d)", poly, m)
	}
	copy(f.exp[f.n:], f.exp[:f.n])
	if m <= mulTableMaxM {
		f.mul = make([]Elem, f.size*f.size)
		for a := 1; a < f.size; a++ {
			row := f.mul[a<<uint(m):]
			la := int(f.log[a])
			for b := 1; b < f.size; b++ {
				row[b] = f.exp[la+int(f.log[b])]
			}
		}
	}
	return f, nil
}

// M returns the extension degree m of the field.
func (f *Field) M() int { return f.m }

// Size returns the number of field elements, 2^m.
func (f *Field) Size() int { return f.size }

// N returns the order of the multiplicative group, 2^m - 1. This is
// also the maximum codeword length of a (non-extended) Reed-Solomon
// code over the field.
func (f *Field) N() int { return f.n }

// Poly returns the primitive polynomial defining the field,
// including the leading x^m term.
func (f *Field) Poly() uint32 { return f.poly }

// Valid reports whether e is a representable element of this field.
func (f *Field) Valid(e Elem) bool { return int(e) < f.size }

// Add returns a + b. In characteristic 2, addition and subtraction
// coincide and are bitwise XOR.
func (f *Field) Add(a, b Elem) Elem { return a ^ b }

// Sub returns a - b, which equals a + b in GF(2^m).
func (f *Field) Sub(a, b Elem) Elem { return a ^ b }

// Mul returns the product a*b.
func (f *Field) Mul(a, b Elem) Elem {
	if a == 0 || b == 0 {
		return 0
	}
	return f.exp[int(f.log[a])+int(f.log[b])]
}

// MulRow returns the row view r of the multiplication table for the
// constant c: r[x] = c*x for every field element x. It returns nil for
// fields too large to carry a precomputed table (m > 8); callers fall
// back to Mul or the log-domain kernels. The returned slice is shared
// and must not be modified.
//
// A row view turns "multiply a stream of symbols by one constant" —
// the inner operation of LFSR encoding, syndrome accumulation and
// polynomial scaling — into one load per symbol with no branches.
func (f *Field) MulRow(c Elem) []Elem {
	if f.mul == nil {
		return nil
	}
	i := int(c) << uint(f.m)
	return f.mul[i : i+f.size : i+f.size]
}

// MulSlice sets dst[i] = c * src[i] for every i. dst and src must have
// the same length (dst may alias src). It performs no allocation.
func (f *Field) MulSlice(dst, src []Elem, c Elem) {
	if len(dst) != len(src) {
		panic("gf: MulSlice length mismatch")
	}
	if c == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	if row := f.MulRow(c); row != nil {
		for i, s := range src {
			dst[i] = row[s]
		}
		return
	}
	lc := int(f.log[c])
	for i, s := range src {
		if s == 0 {
			dst[i] = 0
		} else {
			dst[i] = f.exp[lc+int(f.log[s])]
		}
	}
}

// AddMulSlice sets dst[i] ^= c * src[i] for every i — the GF(2^m)
// multiply-accumulate at the heart of polynomial long division and
// Berlekamp-Massey updates. src must not be longer than dst; excess
// dst elements are untouched. It performs no allocation.
func (f *Field) AddMulSlice(dst, src []Elem, c Elem) {
	if len(src) > len(dst) {
		panic("gf: AddMulSlice source longer than destination")
	}
	if c == 0 {
		return
	}
	if row := f.MulRow(c); row != nil {
		for i, s := range src {
			dst[i] ^= row[s]
		}
		return
	}
	lc := int(f.log[c])
	for i, s := range src {
		if s != 0 {
			dst[i] ^= f.exp[lc+int(f.log[s])]
		}
	}
}

// Div returns a/b. Division by zero panics, mirroring integer division;
// callers in decoding paths guard explicitly.
func (f *Field) Div(a, b Elem) Elem {
	if b == 0 {
		panic("gf: division by zero")
	}
	if a == 0 {
		return 0
	}
	return f.exp[int(f.log[a])+f.n-int(f.log[b])]
}

// Inv returns the multiplicative inverse of a. It panics when a is 0.
func (f *Field) Inv(a Elem) Elem {
	if a == 0 {
		panic("gf: inverse of zero")
	}
	return f.exp[f.n-int(f.log[a])]
}

// Neg returns -a, which is a itself in characteristic 2.
func (f *Field) Neg(a Elem) Elem { return a }

// Exp returns alpha^i for any integer i (negative exponents allowed).
func (f *Field) Exp(i int) Elem {
	i %= f.n
	if i < 0 {
		i += f.n
	}
	return f.exp[i]
}

// Log returns the discrete logarithm of a to base alpha, in 0..n-1.
// It panics when a is 0, which has no logarithm.
func (f *Field) Log(a Elem) int {
	if a == 0 {
		panic("gf: logarithm of zero")
	}
	return int(f.log[a])
}

// Pow returns a^k for any integer k (with 0^0 = 1 by convention and
// 0^k = 0 for k > 0; 0^k for k < 0 panics).
func (f *Field) Pow(a Elem, k int) Elem {
	if a == 0 {
		if k == 0 {
			return 1
		}
		if k < 0 {
			panic("gf: negative power of zero")
		}
		return 0
	}
	l := int(f.log[a]) % f.n
	e := (l * (k % f.n)) % f.n
	if e < 0 {
		e += f.n
	}
	return f.exp[e]
}

// MulCarryless computes a*b by schoolbook carry-less multiplication
// followed by reduction modulo the field polynomial. It is the slow
// reference implementation used to validate the table-driven Mul and
// is exported so higher layers can cross-check in their own tests.
func (f *Field) MulCarryless(a, b Elem) Elem {
	var acc uint32
	aa, bb := uint32(a), uint32(b)
	for bb != 0 {
		if bb&1 != 0 {
			acc ^= aa
		}
		bb >>= 1
		aa <<= 1
	}
	// Reduce acc (degree < 2m-1) modulo poly (degree m).
	for d := 2*f.m - 2; d >= f.m; d-- {
		if acc&(1<<uint(d)) != 0 {
			acc ^= f.poly << uint(d-f.m)
		}
	}
	return Elem(acc)
}

// String identifies the field, e.g. "GF(2^8, poly=0x11d)".
func (f *Field) String() string {
	return fmt.Sprintf("GF(2^%d, poly=%#x)", f.m, f.poly)
}
