package gf

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewFieldAllSupportedM(t *testing.T) {
	for m := MinM; m <= MaxM; m++ {
		f, err := NewField(m)
		if err != nil {
			t.Fatalf("NewField(%d): %v", m, err)
		}
		if f.M() != m {
			t.Errorf("m=%d: M() = %d", m, f.M())
		}
		if f.Size() != 1<<uint(m) {
			t.Errorf("m=%d: Size() = %d, want %d", m, f.Size(), 1<<uint(m))
		}
		if f.N() != 1<<uint(m)-1 {
			t.Errorf("m=%d: N() = %d, want %d", m, f.N(), 1<<uint(m)-1)
		}
	}
}

func TestNewFieldRejectsBadM(t *testing.T) {
	for _, m := range []int{-1, 0, 1, 17, 32} {
		if _, err := NewField(m); err == nil {
			t.Errorf("NewField(%d) succeeded, want error", m)
		}
	}
}

func TestNewFieldPolyRejectsWrongDegree(t *testing.T) {
	if _, err := NewFieldPoly(8, 0x1d); err == nil {
		t.Error("poly without x^8 term accepted")
	}
	if _, err := NewFieldPoly(8, 0x21d); err == nil {
		t.Error("degree-9 poly accepted for m=8")
	}
}

func TestNewFieldPolyRejectsNonPrimitive(t *testing.T) {
	// x^8 + x^4 + x^3 + x + 1 (0x11b, the AES polynomial) is
	// irreducible but NOT primitive: x has order 51, not 255.
	if _, err := NewFieldPoly(8, 0x11b); err == nil {
		t.Error("non-primitive polynomial 0x11b accepted")
	}
	// x^4 + x^3 + x^2 + x + 1 (0x1f) is irreducible over GF(2) but x
	// has order 5 in GF(16), not 15.
	if _, err := NewFieldPoly(4, 0x1f); err == nil {
		t.Error("non-primitive polynomial 0x1f accepted")
	}
	// A reducible polynomial: x^4 + 1 = (x+1)^4.
	if _, err := NewFieldPoly(4, 0x11); err == nil {
		t.Error("reducible polynomial 0x11 accepted")
	}
}

func TestMustFieldPanicsOnBadM(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustField(1) did not panic")
		}
	}()
	MustField(1)
}

func TestExpLogRoundTrip(t *testing.T) {
	for _, m := range []int{2, 3, 4, 8, 10} {
		f := MustField(m)
		for e := 1; e < f.Size(); e++ {
			l := f.Log(Elem(e))
			if got := f.Exp(l); got != Elem(e) {
				t.Fatalf("m=%d: Exp(Log(%d)) = %d", m, e, got)
			}
		}
		for i := 0; i < f.N(); i++ {
			e := f.Exp(i)
			if got := f.Log(e); got != i {
				t.Fatalf("m=%d: Log(Exp(%d)) = %d", m, i, got)
			}
		}
	}
}

func TestExpNegativeAndWrap(t *testing.T) {
	f := MustField(8)
	if f.Exp(-1) != f.Inv(f.Exp(1)) {
		t.Errorf("Exp(-1) = %d, want Inv(alpha) = %d", f.Exp(-1), f.Inv(f.Exp(1)))
	}
	if f.Exp(f.N()) != 1 {
		t.Errorf("Exp(n) = %d, want 1", f.Exp(f.N()))
	}
	if f.Exp(2*f.N()+3) != f.Exp(3) {
		t.Errorf("Exp wraparound broken")
	}
}

func TestMulAgainstCarryless(t *testing.T) {
	for _, m := range []int{2, 3, 4, 5, 8} {
		f := MustField(m)
		for a := 0; a < f.Size(); a++ {
			for b := 0; b < f.Size(); b++ {
				got := f.Mul(Elem(a), Elem(b))
				want := f.MulCarryless(Elem(a), Elem(b))
				if got != want {
					t.Fatalf("m=%d: Mul(%d,%d) = %d, want %d", m, a, b, got, want)
				}
			}
		}
	}
}

func TestMulAgainstCarrylessLargeFieldsSampled(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, m := range []int{12, 16} {
		f := MustField(m)
		for i := 0; i < 20000; i++ {
			a := Elem(rng.Intn(f.Size()))
			b := Elem(rng.Intn(f.Size()))
			if got, want := f.Mul(a, b), f.MulCarryless(a, b); got != want {
				t.Fatalf("m=%d: Mul(%d,%d) = %d, want %d", m, a, b, got, want)
			}
		}
	}
}

// quickElems returns a quick.Config generating valid element pairs for f.
func quickCfg(f *Field, seed int64) *quick.Config {
	rng := rand.New(rand.NewSource(seed))
	return &quick.Config{
		MaxCount: 3000,
		Rand:     rng,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			for i := range vals {
				vals[i] = reflect.ValueOf(Elem(r.Intn(f.Size())))
			}
		},
	}
}

func TestFieldAxiomsQuick(t *testing.T) {
	for _, m := range []int{3, 8, 11} {
		f := MustField(m)

		assoc := func(a, b, c Elem) bool {
			return f.Mul(f.Mul(a, b), c) == f.Mul(a, f.Mul(b, c))
		}
		if err := quick.Check(assoc, quickCfg(f, 11)); err != nil {
			t.Errorf("m=%d: multiplicative associativity: %v", m, err)
		}

		comm := func(a, b Elem) bool { return f.Mul(a, b) == f.Mul(b, a) }
		if err := quick.Check(comm, quickCfg(f, 12)); err != nil {
			t.Errorf("m=%d: multiplicative commutativity: %v", m, err)
		}

		dist := func(a, b, c Elem) bool {
			return f.Mul(a, f.Add(b, c)) == f.Add(f.Mul(a, b), f.Mul(a, c))
		}
		if err := quick.Check(dist, quickCfg(f, 13)); err != nil {
			t.Errorf("m=%d: distributivity: %v", m, err)
		}

		addSelfInverse := func(a Elem) bool { return f.Add(a, a) == 0 }
		if err := quick.Check(addSelfInverse, quickCfg(f, 14)); err != nil {
			t.Errorf("m=%d: characteristic 2: %v", m, err)
		}

		mulIdentity := func(a Elem) bool { return f.Mul(a, 1) == a }
		if err := quick.Check(mulIdentity, quickCfg(f, 15)); err != nil {
			t.Errorf("m=%d: multiplicative identity: %v", m, err)
		}

		invProp := func(a Elem) bool {
			if a == 0 {
				return true
			}
			return f.Mul(a, f.Inv(a)) == 1
		}
		if err := quick.Check(invProp, quickCfg(f, 16)); err != nil {
			t.Errorf("m=%d: inverse: %v", m, err)
		}

		divMul := func(a, b Elem) bool {
			if b == 0 {
				return true
			}
			return f.Mul(f.Div(a, b), b) == a
		}
		if err := quick.Check(divMul, quickCfg(f, 17)); err != nil {
			t.Errorf("m=%d: div/mul round trip: %v", m, err)
		}

		// Frobenius endomorphism: (a+b)^2 = a^2 + b^2.
		frob := func(a, b Elem) bool {
			lhs := f.Mul(f.Add(a, b), f.Add(a, b))
			rhs := f.Add(f.Mul(a, a), f.Mul(b, b))
			return lhs == rhs
		}
		if err := quick.Check(frob, quickCfg(f, 18)); err != nil {
			t.Errorf("m=%d: Frobenius: %v", m, err)
		}
	}
}

func TestPow(t *testing.T) {
	f := MustField(8)
	for _, a := range []Elem{1, 2, 3, 57, 255} {
		acc := Elem(1)
		for k := 0; k < 10; k++ {
			if got := f.Pow(a, k); got != acc {
				t.Fatalf("Pow(%d,%d) = %d, want %d", a, k, got, acc)
			}
			acc = f.Mul(acc, a)
		}
	}
	if f.Pow(0, 0) != 1 {
		t.Error("Pow(0,0) != 1")
	}
	if f.Pow(0, 5) != 0 {
		t.Error("Pow(0,5) != 0")
	}
	// Fermat: a^(2^m - 1) = 1 for a != 0.
	for a := 1; a < f.Size(); a++ {
		if f.Pow(Elem(a), f.N()) != 1 {
			t.Fatalf("Fermat fails for a=%d", a)
		}
	}
	// Negative exponent.
	if f.Pow(2, -1) != f.Inv(2) {
		t.Errorf("Pow(2,-1) = %d, want %d", f.Pow(2, -1), f.Inv(2))
	}
}

func TestPowNegativeZeroPanics(t *testing.T) {
	f := MustField(4)
	defer func() {
		if recover() == nil {
			t.Error("Pow(0,-1) did not panic")
		}
	}()
	f.Pow(0, -1)
}

func TestDivByZeroPanics(t *testing.T) {
	f := MustField(4)
	defer func() {
		if recover() == nil {
			t.Error("Div by zero did not panic")
		}
	}()
	f.Div(3, 0)
}

func TestInvZeroPanics(t *testing.T) {
	f := MustField(4)
	defer func() {
		if recover() == nil {
			t.Error("Inv(0) did not panic")
		}
	}()
	f.Inv(0)
}

func TestLogZeroPanics(t *testing.T) {
	f := MustField(4)
	defer func() {
		if recover() == nil {
			t.Error("Log(0) did not panic")
		}
	}()
	f.Log(0)
}

func TestZeroAbsorbs(t *testing.T) {
	f := MustField(8)
	for a := 0; a < f.Size(); a++ {
		if f.Mul(Elem(a), 0) != 0 || f.Mul(0, Elem(a)) != 0 {
			t.Fatalf("zero does not absorb for a=%d", a)
		}
		if a != 0 && f.Div(0, Elem(a)) != 0 {
			t.Fatalf("0/a != 0 for a=%d", a)
		}
	}
}

func TestValid(t *testing.T) {
	f := MustField(4)
	if !f.Valid(15) {
		t.Error("15 should be valid in GF(16)")
	}
	if f.Valid(16) {
		t.Error("16 should be invalid in GF(16)")
	}
}

func TestString(t *testing.T) {
	f := MustField(8)
	if got := f.String(); got != "GF(2^8, poly=0x11d)" {
		t.Errorf("String() = %q", got)
	}
}

func TestMultiplicativeGroupIsCyclic(t *testing.T) {
	// Every nonzero element must appear exactly once among the powers
	// of alpha — this is the primitivity guarantee.
	for _, m := range []int{2, 6, 8} {
		f := MustField(m)
		seen := make(map[Elem]bool, f.N())
		for i := 0; i < f.N(); i++ {
			e := f.Exp(i)
			if e == 0 {
				t.Fatalf("m=%d: alpha^%d = 0", m, i)
			}
			if seen[e] {
				t.Fatalf("m=%d: duplicate power alpha^%d = %d", m, i, e)
			}
			seen[e] = true
		}
		if len(seen) != f.N() {
			t.Fatalf("m=%d: group has %d elements, want %d", m, len(seen), f.N())
		}
	}
}

func BenchmarkMul(b *testing.B) {
	f := MustField(8)
	x := Elem(57)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x = f.Mul(x, 113) | 1
	}
	_ = x
}

func BenchmarkMulCarryless(b *testing.B) {
	f := MustField(8)
	x := Elem(57)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x = f.MulCarryless(x, 113) | 1
	}
	_ = x
}

func BenchmarkInv(b *testing.B) {
	f := MustField(8)
	x := Elem(57)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x = f.Inv(x) | 1
	}
	_ = x
}

// TestMulRowMatchesMul checks the precomputed row views against Mul on
// a row-table field, and that oversized fields simply opt out.
func TestMulRowMatchesMul(t *testing.T) {
	f := MustField(8)
	for c := 0; c < f.Size(); c++ {
		row := f.MulRow(Elem(c))
		if row == nil {
			t.Fatalf("MulRow(%d) = nil for m=8", c)
		}
		if len(row) != f.Size() {
			t.Fatalf("MulRow(%d) has %d entries, want %d", c, len(row), f.Size())
		}
		for x := 0; x < f.Size(); x++ {
			if row[x] != f.Mul(Elem(c), Elem(x)) {
				t.Fatalf("MulRow(%d)[%d] = %d, want %d", c, x, row[x], f.Mul(Elem(c), Elem(x)))
			}
		}
	}
	big := MustField(12)
	if big.MulRow(3) != nil {
		t.Error("MulRow should be nil for m=12 (no row tables)")
	}
}

// TestBatchKernels checks MulSlice and AddMulSlice against elementwise
// Mul on both a row-table field (m=8) and a log-domain field (m=12).
func TestBatchKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, m := range []int{4, 8, 12} {
		f := MustField(m)
		for trial := 0; trial < 50; trial++ {
			n := 1 + rng.Intn(40)
			src := make([]Elem, n)
			for i := range src {
				src[i] = Elem(rng.Intn(f.Size()))
			}
			c := Elem(rng.Intn(f.Size()))

			dst := make([]Elem, n)
			f.MulSlice(dst, src, c)
			for i := range src {
				if want := f.Mul(c, src[i]); dst[i] != want {
					t.Fatalf("m=%d MulSlice[%d] = %d, want %d", m, i, dst[i], want)
				}
			}

			acc := make([]Elem, n)
			for i := range acc {
				acc[i] = Elem(rng.Intn(f.Size()))
			}
			want := make([]Elem, n)
			for i := range want {
				want[i] = acc[i] ^ f.Mul(c, src[i])
			}
			f.AddMulSlice(acc, src, c)
			for i := range acc {
				if acc[i] != want[i] {
					t.Fatalf("m=%d AddMulSlice[%d] = %d, want %d", m, i, acc[i], want[i])
				}
			}
		}
	}
}

// TestMulSliceAliasing checks the in-place (dst == src) contract.
func TestMulSliceAliasing(t *testing.T) {
	f := MustField(8)
	buf := []Elem{0, 1, 2, 77, 255}
	want := make([]Elem, len(buf))
	for i, s := range buf {
		want[i] = f.Mul(19, s)
	}
	f.MulSlice(buf, buf, 19)
	if !reflect.DeepEqual(buf, want) {
		t.Errorf("in-place MulSlice = %v, want %v", buf, want)
	}
}

// TestBatchKernelPanics pins the length-contract panics.
func TestBatchKernelPanics(t *testing.T) {
	f := MustField(8)
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("MulSlice length mismatch", func() {
		f.MulSlice(make([]Elem, 2), make([]Elem, 3), 1)
	})
	mustPanic("AddMulSlice long source", func() {
		f.AddMulSlice(make([]Elem, 2), make([]Elem, 3), 1)
	})
}

func BenchmarkAddMulSlice(b *testing.B) {
	f := MustField(8)
	src := make([]Elem, 255)
	dst := make([]Elem, 255)
	rng := rand.New(rand.NewSource(22))
	for i := range src {
		src[i] = Elem(rng.Intn(f.Size()))
	}
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.AddMulSlice(dst, src, Elem(i&0xff))
	}
}
