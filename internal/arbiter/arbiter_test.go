package arbiter

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/gf"
	"repro/internal/rs"
)

var (
	f8     = gf.MustField(8)
	code   = rs.MustNew(f8, 18, 16)
	code36 = rs.MustNew(f8, 36, 16)
)

func encode(t *testing.T, c *rs.Code, seed int64) ([]gf.Elem, []gf.Elem) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	data := make([]gf.Elem, c.K())
	for i := range data {
		data[i] = gf.Elem(rng.Intn(256))
	}
	cw, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	return data, cw
}

func clone(w []gf.Elem) []gf.Elem { return append([]gf.Elem(nil), w...) }

func mustArbiter(t *testing.T, c *rs.Code) *Arbiter {
	t.Helper()
	a, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("nil code accepted")
	}
}

func TestReadValidation(t *testing.T) {
	a := mustArbiter(t, code)
	_, cw := encode(t, code, 1)
	if _, err := a.Read(cw[:17], cw, nil, nil); err == nil {
		t.Error("short word1 accepted")
	}
	if _, err := a.Read(cw, cw[:17], nil, nil); err == nil {
		t.Error("short word2 accepted")
	}
	if _, err := a.Read(cw, cw, []int{-1}, nil); err == nil {
		t.Error("negative erasure accepted")
	}
	if _, err := a.Read(cw, cw, nil, []int{18}); err == nil {
		t.Error("out-of-range erasure accepted")
	}
}

func TestCleanPair(t *testing.T) {
	a := mustArbiter(t, code)
	data, cw := encode(t, code, 2)
	res, err := a.Read(cw, clone(cw), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK || res.Verdict != NoError || res.Flag1 || res.Flag2 {
		t.Errorf("clean pair: %+v", res)
	}
	for i := range data {
		if res.Data[i] != data[i] {
			t.Fatal("data mismatch")
		}
	}
}

func TestSingleErrorOneWordCorrectedAgree(t *testing.T) {
	a := mustArbiter(t, code)
	data, cw := encode(t, code, 3)
	w1 := clone(cw)
	w1[5] ^= 0x41
	res, err := a.Read(w1, clone(cw), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK || res.Verdict != CorrectedAgree {
		t.Errorf("verdict = %v, want corrected-agree", res.Verdict)
	}
	if !res.Flag1 || res.Flag2 {
		t.Errorf("flags = %v/%v, want true/false", res.Flag1, res.Flag2)
	}
	for i := range data {
		if res.Data[i] != data[i] {
			t.Fatal("data mismatch")
		}
	}
}

func TestBothSingleErrorsCorrectedAgree(t *testing.T) {
	a := mustArbiter(t, code)
	data, cw := encode(t, code, 4)
	w1, w2 := clone(cw), clone(cw)
	w1[0] ^= 3
	w2[17] ^= 200
	res, err := a.Read(w1, w2, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK || res.Verdict != CorrectedAgree || !res.Flag1 || !res.Flag2 {
		t.Errorf("%+v", res)
	}
	for i := range data {
		if res.Data[i] != data[i] {
			t.Fatal("data mismatch")
		}
	}
}

// TestMiscorrectionResolvedByFlag reproduces the paper's third rule:
// word1 exceeds capability and mis-corrects (flag set), word2 is clean
// (flag reset) -> word2 wins.
func TestMiscorrectionResolvedByFlag(t *testing.T) {
	a := mustArbiter(t, code)
	rng := rand.New(rand.NewSource(5))
	resolved, oneFailed := 0, 0
	for trial := 0; trial < 400; trial++ {
		data, cw := encode(t, code, int64(100+trial))
		w1 := clone(cw)
		// Two symbol errors exceed RS(18,16) capability: the decoder
		// either detects (OneWordFailed path) or mis-corrects
		// (FlagResolved path). Both must yield correct output.
		p := rng.Perm(18)[:2]
		w1[p[0]] ^= gf.Elem(1 + rng.Intn(255))
		w1[p[1]] ^= gf.Elem(1 + rng.Intn(255))
		res, err := a.Read(w1, clone(cw), nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !res.OK {
			t.Fatalf("trial %d: arbiter gave no output with a clean twin: %+v", trial, res)
		}
		for i := range data {
			if res.Data[i] != data[i] {
				t.Fatalf("trial %d: wrong data via %v", trial, res.Verdict)
			}
		}
		switch res.Verdict {
		case FlagResolved:
			resolved++
		case OneWordFailed:
			oneFailed++
		default:
			t.Fatalf("trial %d: unexpected verdict %v", trial, res.Verdict)
		}
	}
	if resolved == 0 || oneFailed == 0 {
		t.Errorf("want both paths exercised: flag-resolved=%d one-word-failed=%d", resolved, oneFailed)
	}
}

// TestBothFlaggedDiffer: word1 mis-corrects, word2 performs a genuine
// correction -> both flags set, words differ, no output.
func TestBothFlaggedDiffer(t *testing.T) {
	a := mustArbiter(t, code)
	rng := rand.New(rand.NewSource(6))
	sawNoOutput := false
	for trial := 0; trial < 600 && !sawNoOutput; trial++ {
		_, cw := encode(t, code, int64(500+trial))
		w1, w2 := clone(cw), clone(cw)
		p := rng.Perm(18)
		w1[p[0]] ^= gf.Elem(1 + rng.Intn(255))
		w1[p[1]] ^= gf.Elem(1 + rng.Intn(255))
		w2[p[2]] ^= gf.Elem(1 + rng.Intn(255))
		res, err := a.Read(w1, w2, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict == BothFlaggedDiffer {
			if res.OK {
				t.Fatal("no-output verdict with OK set")
			}
			sawNoOutput = true
		}
	}
	if !sawNoOutput {
		t.Error("both-flagged-differ never reached in 600 trials")
	}
}

func TestErasureMaskingSingleModule(t *testing.T) {
	a := mustArbiter(t, code)
	data, cw := encode(t, code, 7)
	w1 := clone(cw)
	// Erase 5 positions in module 1 only: far beyond RS(18,16)'s
	// 2-erasure capability, but all maskable from module 2.
	positions := []int{0, 3, 7, 11, 17}
	for _, p := range positions {
		w1[p] = 0xAA
	}
	res, err := a.Read(w1, clone(cw), positions, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("maskable erasures not recovered: %+v", res)
	}
	if res.MaskedErasures != 5 || res.SharedErasures != 0 {
		t.Errorf("masked=%d shared=%d, want 5/0", res.MaskedErasures, res.SharedErasures)
	}
	for i := range data {
		if res.Data[i] != data[i] {
			t.Fatal("data mismatch")
		}
	}
}

func TestSharedErasuresGoToDecoder(t *testing.T) {
	a := mustArbiter(t, code)
	data, cw := encode(t, code, 8)
	w1, w2 := clone(cw), clone(cw)
	// Both modules erased at positions 2 and 9 (within n-k = 2).
	w1[2], w2[2] = 0x11, 0x22
	w1[9], w2[9] = 0x33, 0x44
	res, err := a.Read(w1, w2, []int{2, 9}, []int{2, 9})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK || res.SharedErasures != 2 {
		t.Fatalf("shared erasures not handled: %+v", res)
	}
	for i := range data {
		if res.Data[i] != data[i] {
			t.Fatal("data mismatch")
		}
	}
}

func TestTooManySharedErasuresBothFail(t *testing.T) {
	a := mustArbiter(t, code)
	_, cw := encode(t, code, 9)
	w1, w2 := clone(cw), clone(cw)
	pos := []int{1, 4, 6}
	for _, p := range pos {
		w1[p] = 0
		w2[p] = 0
	}
	res, err := a.Read(w1, w2, pos, pos)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK || res.Verdict != BothFailed {
		t.Errorf("3 shared erasures on RS(18,16): %+v", res)
	}
}

// TestMaskedErasureCarriesTwinError: the paper's b class. Module 1 has
// an erasure whose twin symbol in module 2 carries a bit flip: masking
// copies the error into word 1, and both decoders then see it as a
// random error.
func TestMaskedErasureCarriesTwinError(t *testing.T) {
	a := mustArbiter(t, code)
	data, cw := encode(t, code, 10)
	w1, w2 := clone(cw), clone(cw)
	w1[4] = 0xFF  // erased garbage in module 1
	w2[4] ^= 0x01 // SEU on the twin symbol
	res, err := a.Read(w1, w2, []int{4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Both words end up with the same single error at position 4; both
	// decoders correct it and agree.
	if !res.OK || res.Verdict != CorrectedAgree {
		t.Fatalf("b-class position mishandled: %+v", res)
	}
	for i := range data {
		if res.Data[i] != data[i] {
			t.Fatal("data mismatch")
		}
	}
}

func TestDifferNoFlags(t *testing.T) {
	a := mustArbiter(t, code)
	_, cw1 := encode(t, code, 11)
	_, cw2 := encode(t, code, 12)
	// Two different valid codewords: no decoder corrects anything,
	// the words differ, the arbiter must refuse to choose.
	res, err := a.Read(clone(cw1), clone(cw2), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK || res.Verdict != DifferNoFlags {
		t.Errorf("%+v", res)
	}
}

func TestWideCodeHeavyErrors(t *testing.T) {
	a := mustArbiter(t, code36)
	rng := rand.New(rand.NewSource(13))
	data, cw := encode(t, code36, 14)
	w1, w2 := clone(cw), clone(cw)
	// 10 errors in word1 (at capability), 3 in word2.
	for _, p := range rng.Perm(36)[:10] {
		w1[p] ^= gf.Elem(1 + rng.Intn(255))
	}
	for _, p := range rng.Perm(36)[:3] {
		w2[p] ^= gf.Elem(1 + rng.Intn(255))
	}
	res, err := a.Read(w1, w2, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK || res.Verdict != CorrectedAgree {
		t.Fatalf("%+v", res)
	}
	for i := range data {
		if res.Data[i] != data[i] {
			t.Fatal("data mismatch")
		}
	}
}

func TestVerdictStrings(t *testing.T) {
	for v, want := range map[Verdict]string{
		NoError:           "no-error",
		CorrectedAgree:    "corrected-agree",
		FlagResolved:      "flag-resolved",
		OneWordFailed:     "one-word-failed",
		BothFlaggedDiffer: "both-flagged-differ",
		DifferNoFlags:     "differ-no-flags",
		BothFailed:        "both-failed",
	} {
		if v.String() != want {
			t.Errorf("Verdict(%d).String() = %q, want %q", int(v), v.String(), want)
		}
	}
	if !strings.Contains(Verdict(42).String(), "42") {
		t.Error("unknown verdict should include its value")
	}
}

func TestReadDoesNotMutateInputs(t *testing.T) {
	a := mustArbiter(t, code)
	_, cw := encode(t, code, 15)
	w1, w2 := clone(cw), clone(cw)
	w1[3] ^= 5
	w1c, w2c := clone(w1), clone(w2)
	if _, err := a.Read(w1, w2, []int{7}, nil); err != nil {
		t.Fatal(err)
	}
	for i := range w1 {
		if w1[i] != w1c[i] || w2[i] != w2c[i] {
			t.Fatal("Read mutated its inputs")
		}
	}
}

func BenchmarkArbiterReadClean(b *testing.B) {
	a, _ := New(code)
	rng := rand.New(rand.NewSource(16))
	data := make([]gf.Elem, 16)
	for i := range data {
		data[i] = gf.Elem(rng.Intn(256))
	}
	cw, _ := code.Encode(data)
	w2 := clone(cw)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := a.Read(cw, w2, nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkArbiterReadMaskedErasures(b *testing.B) {
	a, _ := New(code)
	rng := rand.New(rand.NewSource(17))
	data := make([]gf.Elem, 16)
	for i := range data {
		data[i] = gf.Elem(rng.Intn(256))
	}
	cw, _ := code.Encode(data)
	w1 := clone(cw)
	w1[2], w1[9], w1[14] = 0, 0, 0
	w2 := clone(cw)
	erasures := []int{2, 9, 14}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := a.Read(w1, w2, erasures, nil); err != nil {
			b.Fatal(err)
		}
	}
}
