// Package arbiter implements the duplex decision circuit of paper
// Section 3 (Figure 1): erasure recovery across the two replicated
// modules, independent Reed-Solomon decoding of both words, and the
// flag-and-compare output selection that distinguishes corrections
// from mis-corrections.
//
// The arbiter is the paper's hard-core component: it is assumed
// fault-free, and the simulator keeps it that way.
package arbiter

import (
	"fmt"

	"repro/internal/gf"
	"repro/internal/rs"
)

// Verdict classifies the arbiter's decision for observability in
// tests and the simulator.
type Verdict int

const (
	// NoError: neither decoder corrected anything; words agree.
	NoError Verdict = iota
	// CorrectedAgree: at least one flag set but the decoded words
	// agree — the correction is trusted.
	CorrectedAgree
	// FlagResolved: the words differ and exactly one flag is set; the
	// unflagged word is output (the flagged one mis-corrected).
	FlagResolved
	// OneWordFailed: one decoder reported a detected failure; the
	// other word is output.
	OneWordFailed
	// BothFlaggedDiffer: both flags set and the words differ — the
	// arbiter cannot discriminate and provides no output.
	BothFlaggedDiffer
	// DifferNoFlags: the words differ yet neither decoder corrected
	// anything (two distinct valid codewords): no basis to choose,
	// no output. Requires a corruption that crossed the full code
	// distance; the paper neglects it, the simulator counts it.
	DifferNoFlags
	// BothFailed: both decoders reported detected failures.
	BothFailed
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case NoError:
		return "no-error"
	case CorrectedAgree:
		return "corrected-agree"
	case FlagResolved:
		return "flag-resolved"
	case OneWordFailed:
		return "one-word-failed"
	case BothFlaggedDiffer:
		return "both-flagged-differ"
	case DifferNoFlags:
		return "differ-no-flags"
	case BothFailed:
		return "both-failed"
	default:
		return fmt.Sprintf("verdict(%d)", int(v))
	}
}

// Result is the arbiter's output for one read.
type Result struct {
	// OK reports whether an output word was provided.
	OK bool
	// Data is the k-symbol output dataword when OK.
	Data []gf.Elem
	// Verdict classifies the decision path taken.
	Verdict Verdict
	// MaskedErasures counts single-module erasures recovered by
	// copying the twin symbol (the paper's Y positions).
	MaskedErasures int
	// SharedErasures counts positions erased in both modules (the
	// paper's X positions), passed to both decoders as erasures.
	SharedErasures int
	// Flag1, Flag2 are the per-word correction flags.
	Flag1, Flag2 bool
}

// Arbiter decodes replicated word pairs for a fixed code.
type Arbiter struct {
	code *rs.Code
}

// New returns an arbiter for the given code.
func New(code *rs.Code) (*Arbiter, error) {
	if code == nil {
		return nil, fmt.Errorf("arbiter: nil code")
	}
	return &Arbiter{code: code}, nil
}

// Read performs the full arbiter operation of paper Section 3 on the
// two stored words and their located-erasure sets (symbol indices per
// module).
//
// Step 1 — erasure recovery: a position erased in exactly one module
// is replaced by the twin module's symbol (which may itself carry an
// undetected random error: that is the paper's b class). Positions
// erased in both modules stay erasures for both decoders.
//
// Step 2 — both repaired words are decoded independently; a completed
// correction sets that word's flag.
//
// Step 3 — flag-and-compare selection per the paper's four rules.
func (a *Arbiter) Read(word1, word2 []gf.Elem, erasures1, erasures2 []int) (*Result, error) {
	n := a.code.N()
	if len(word1) != n || len(word2) != n {
		return nil, fmt.Errorf("arbiter: words have %d/%d symbols, want n=%d", len(word1), len(word2), n)
	}
	e1, err := erasureSet(erasures1, n)
	if err != nil {
		return nil, err
	}
	e2, err := erasureSet(erasures2, n)
	if err != nil {
		return nil, err
	}

	res := &Result{}
	w1 := append([]gf.Elem(nil), word1...)
	w2 := append([]gf.Elem(nil), word2...)
	var shared []int
	for i := 0; i < n; i++ {
		switch {
		case e1[i] && e2[i]:
			shared = append(shared, i)
		case e1[i]:
			w1[i] = w2[i]
			res.MaskedErasures++
		case e2[i]:
			w2[i] = w1[i]
			res.MaskedErasures++
		}
	}
	res.SharedErasures = len(shared)

	r1, err1 := a.code.Decode(w1, shared)
	r2, err2 := a.code.Decode(w2, shared)

	switch {
	case err1 != nil && err2 != nil:
		res.Verdict = BothFailed
		return res, nil
	case err1 != nil:
		res.OK = true
		res.Data = r2.Data
		res.Flag2 = r2.Flag
		res.Verdict = OneWordFailed
		return res, nil
	case err2 != nil:
		res.OK = true
		res.Data = r1.Data
		res.Flag1 = r1.Flag
		res.Verdict = OneWordFailed
		return res, nil
	}

	res.Flag1, res.Flag2 = r1.Flag, r2.Flag
	equal := wordsEqual(r1.Codeword, r2.Codeword)
	switch {
	case !r1.Flag && !r2.Flag && equal:
		res.OK = true
		res.Data = r1.Data
		res.Verdict = NoError
	case equal:
		res.OK = true
		res.Data = r1.Data
		res.Verdict = CorrectedAgree
	case r1.Flag && r2.Flag:
		res.Verdict = BothFlaggedDiffer
	case r1.Flag:
		res.OK = true
		res.Data = r2.Data
		res.Verdict = FlagResolved
	case r2.Flag:
		res.OK = true
		res.Data = r1.Data
		res.Verdict = FlagResolved
	default:
		res.Verdict = DifferNoFlags
	}
	return res, nil
}

func erasureSet(positions []int, n int) ([]bool, error) {
	set := make([]bool, n)
	for _, p := range positions {
		if p < 0 || p >= n {
			return nil, fmt.Errorf("arbiter: erasure position %d out of range [0,%d)", p, n)
		}
		set[p] = true
	}
	return set, nil
}

func wordsEqual(a, b []gf.Elem) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
