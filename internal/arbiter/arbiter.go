// Package arbiter implements the duplex decision circuit of paper
// Section 3 (Figure 1): erasure recovery across the two replicated
// modules, independent Reed-Solomon decoding of both words, and the
// flag-and-compare output selection that distinguishes corrections
// from mis-corrections.
//
// The arbiter is the paper's hard-core component: it is assumed
// fault-free, and the simulator keeps it that way.
package arbiter

import (
	"fmt"

	"repro/internal/gf"
	"repro/internal/rs"
)

// Verdict classifies the arbiter's decision for observability in
// tests and the simulator.
type Verdict int

const (
	// NoError: neither decoder corrected anything; words agree.
	NoError Verdict = iota
	// CorrectedAgree: at least one flag set but the decoded words
	// agree — the correction is trusted.
	CorrectedAgree
	// FlagResolved: the words differ and exactly one flag is set; the
	// unflagged word is output (the flagged one mis-corrected).
	FlagResolved
	// OneWordFailed: one decoder reported a detected failure; the
	// other word is output.
	OneWordFailed
	// BothFlaggedDiffer: both flags set and the words differ — the
	// arbiter cannot discriminate and provides no output.
	BothFlaggedDiffer
	// DifferNoFlags: the words differ yet neither decoder corrected
	// anything (two distinct valid codewords): no basis to choose,
	// no output. Requires a corruption that crossed the full code
	// distance; the paper neglects it, the simulator counts it.
	DifferNoFlags
	// BothFailed: both decoders reported detected failures.
	BothFailed
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case NoError:
		return "no-error"
	case CorrectedAgree:
		return "corrected-agree"
	case FlagResolved:
		return "flag-resolved"
	case OneWordFailed:
		return "one-word-failed"
	case BothFlaggedDiffer:
		return "both-flagged-differ"
	case DifferNoFlags:
		return "differ-no-flags"
	case BothFailed:
		return "both-failed"
	default:
		return fmt.Sprintf("verdict(%d)", int(v))
	}
}

// Result is the arbiter's output for one read.
type Result struct {
	// OK reports whether an output word was provided.
	OK bool
	// Data is the k-symbol output dataword when OK.
	Data []gf.Elem
	// Verdict classifies the decision path taken.
	Verdict Verdict
	// MaskedErasures counts single-module erasures recovered by
	// copying the twin symbol (the paper's Y positions).
	MaskedErasures int
	// SharedErasures counts positions erased in both modules (the
	// paper's X positions), passed to both decoders as erasures.
	SharedErasures int
	// Flag1, Flag2 are the per-word correction flags.
	Flag1, Flag2 bool
}

// Arbiter decodes replicated word pairs for a fixed code. It owns a
// decoding workspace per module (the repaired-word buffers, erasure
// bitsets and rs.Decoder scratch), so steady-state reads allocate only
// the Result they hand back. An Arbiter is therefore NOT safe for
// concurrent use; create one per goroutine.
type Arbiter struct {
	code       *rs.Code
	dec1, dec2 *rs.Decoder
	w1, w2     []gf.Elem
	e1, e2     []bool
	shared     []int
}

// New returns an arbiter for the given code.
func New(code *rs.Code) (*Arbiter, error) {
	if code == nil {
		return nil, fmt.Errorf("arbiter: nil code")
	}
	n := code.N()
	return &Arbiter{
		code:   code,
		dec1:   code.NewDecoder(),
		dec2:   code.NewDecoder(),
		w1:     make([]gf.Elem, n),
		w2:     make([]gf.Elem, n),
		e1:     make([]bool, n),
		e2:     make([]bool, n),
		shared: make([]int, 0, n),
	}, nil
}

// Read performs the full arbiter operation of paper Section 3 on the
// two stored words and their located-erasure sets (symbol indices per
// module).
//
// Step 1 — erasure recovery: a position erased in exactly one module
// is replaced by the twin module's symbol (which may itself carry an
// undetected random error: that is the paper's b class). Positions
// erased in both modules stay erasures for both decoders.
//
// Step 2 — both repaired words are decoded independently; a completed
// correction sets that word's flag.
//
// Step 3 — flag-and-compare selection per the paper's four rules.
func (a *Arbiter) Read(word1, word2 []gf.Elem, erasures1, erasures2 []int) (*Result, error) {
	n := a.code.N()
	if len(word1) != n || len(word2) != n {
		return nil, fmt.Errorf("arbiter: words have %d/%d symbols, want n=%d", len(word1), len(word2), n)
	}
	if err := fillErasureSet(a.e1, erasures1); err != nil {
		return nil, err
	}
	if err := fillErasureSet(a.e2, erasures2); err != nil {
		return nil, err
	}

	res := &Result{}
	copy(a.w1, word1)
	copy(a.w2, word2)
	shared := a.shared[:0]
	for i := 0; i < n; i++ {
		switch {
		case a.e1[i] && a.e2[i]:
			shared = append(shared, i)
		case a.e1[i]:
			a.w1[i] = a.w2[i]
			res.MaskedErasures++
		case a.e2[i]:
			a.w2[i] = a.w1[i]
			res.MaskedErasures++
		}
	}
	res.SharedErasures = len(shared)

	r1, err1 := a.dec1.Decode(a.w1, shared)
	r2, err2 := a.dec2.Decode(a.w2, shared)

	// output hands a decoded dataword to the caller. The decoder
	// results alias the arbiter's workspaces, so the retained Data is
	// copied out.
	output := func(r *rs.Result) {
		res.OK = true
		res.Data = append([]gf.Elem(nil), r.Data...)
	}
	switch {
	case err1 != nil && err2 != nil:
		res.Verdict = BothFailed
		return res, nil
	case err1 != nil:
		output(r2)
		res.Flag2 = r2.Flag
		res.Verdict = OneWordFailed
		return res, nil
	case err2 != nil:
		output(r1)
		res.Flag1 = r1.Flag
		res.Verdict = OneWordFailed
		return res, nil
	}

	res.Flag1, res.Flag2 = r1.Flag, r2.Flag
	equal := wordsEqual(r1.Codeword, r2.Codeword)
	switch {
	case !r1.Flag && !r2.Flag && equal:
		output(r1)
		res.Verdict = NoError
	case equal:
		output(r1)
		res.Verdict = CorrectedAgree
	case r1.Flag && r2.Flag:
		res.Verdict = BothFlaggedDiffer
	case r1.Flag:
		output(r2)
		res.Verdict = FlagResolved
	case r2.Flag:
		output(r1)
		res.Verdict = FlagResolved
	default:
		res.Verdict = DifferNoFlags
	}
	return res, nil
}

// fillErasureSet resets set and marks the given positions.
func fillErasureSet(set []bool, positions []int) error {
	for i := range set {
		set[i] = false
	}
	for _, p := range positions {
		if p < 0 || p >= len(set) {
			return fmt.Errorf("arbiter: erasure position %d out of range [0,%d)", p, len(set))
		}
		set[p] = true
	}
	return nil
}

func wordsEqual(a, b []gf.Elem) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
