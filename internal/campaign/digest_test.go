package campaign

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestDigestRefusesStaleResume: a checkpoint written under one params
// digest must refuse to resume under a different one even though the
// scenario name (which the fingerprint previously relied on alone) is
// unchanged — the regression for spec-entry params edits that a
// kind's Name does not encode.
func TestDigestRefusesStaleResume(t *testing.T) {
	scn := &coinScenario{name: "digested", trials: 300, seed: 3, p: 0.4}
	cp := filepath.Join(t.TempDir(), "digest.ckpt")

	want := run(t, scn, Config{ShardSize: 64, ParamsDigest: "digest-a"})
	if _, err := Run(scn, Config{ShardSize: 64, Checkpoint: cp, ParamsDigest: "digest-a"}); err != nil {
		t.Fatal(err)
	}

	// Same name, different digest: the artifact is stale.
	_, err := Run(scn, Config{ShardSize: 64, Checkpoint: cp, ParamsDigest: "digest-b"})
	if err == nil {
		t.Fatal("resume under an edited params digest succeeded")
	}
	if !strings.Contains(err.Error(), "different scenario params") {
		t.Errorf("unhelpful digest-mismatch error: %v", err)
	}

	// The matching digest resumes bit-identically, and a digest-less
	// engine run (no spec layer) still accepts the artifact.
	for _, digest := range []string{"digest-a", ""} {
		cres, err := Run(scn, Config{ShardSize: 64, Checkpoint: cp, ParamsDigest: digest})
		if err != nil {
			t.Fatalf("digest %q: %v", digest, err)
		}
		if cres.ResumedTrials != scn.trials {
			t.Fatalf("digest %q: resumed %d trials, want %d", digest, cres.ResumedTrials, scn.trials)
		}
		got := *cres
		got.ResumedTrials = 0
		if !reflect.DeepEqual(want, &got) {
			t.Errorf("digest %q: resumed result diverged", digest)
		}
	}
}

// TestDigestlessArtifactStaysResumable: artifacts written before the
// digest existed (header without the field) resume under any digest —
// the documented pre-digest caveat.
func TestDigestlessArtifactStaysResumable(t *testing.T) {
	scn := &coinScenario{name: "pre-digest", trials: 200, seed: 5, p: 0.3}
	cp := filepath.Join(t.TempDir(), "predigest.ckpt")
	if _, err := Run(scn, Config{ShardSize: 64, Checkpoint: cp}); err != nil {
		t.Fatal(err)
	}
	cres, err := Run(scn, Config{ShardSize: 64, Checkpoint: cp, ParamsDigest: "added-later"})
	if err != nil {
		t.Fatalf("digest-less artifact refused under a new digest: %v", err)
	}
	if cres.ResumedTrials != scn.trials {
		t.Fatalf("resumed %d trials, want %d", cres.ResumedTrials, scn.trials)
	}
}

// TestMergeRefusesConflictingDigests: partials computed under
// different params digests must not fold into one result, and a
// caller-supplied expected digest rejects stale partials; empty
// digests stay compatible with everything.
func TestMergeRefusesConflictingDigests(t *testing.T) {
	scn := &coinScenario{name: "merge-digest", trials: 400, seed: 9, p: 0.25}
	execute := func(part Partition, digest string) *Partial {
		t.Helper()
		plan, err := NewPlan(scn, 64, part)
		if err != nil {
			t.Fatal(err)
		}
		plan.ParamsDigest = digest
		partial, err := Execute(scn, plan, ExecConfig{})
		if err != nil {
			t.Fatal(err)
		}
		return partial
	}

	a := execute(Partition{Index: 0, Count: 2}, "digest-a")
	b := execute(Partition{Index: 1, Count: 2}, "digest-b")
	if _, err := Merge([]*Partial{a, b}, MergeConfig{}); err == nil {
		t.Error("merge of conflicting digests succeeded")
	} else if !strings.Contains(err.Error(), "different scenario params") {
		t.Errorf("unhelpful conflicting-digest error: %v", err)
	}

	aa := execute(Partition{Index: 1, Count: 2}, "digest-a")
	if _, err := Merge([]*Partial{a, aa}, MergeConfig{}); err != nil {
		t.Errorf("matching digests refused: %v", err)
	}
	if _, err := Merge([]*Partial{a, aa}, MergeConfig{ParamsDigest: "digest-b"}); err == nil {
		t.Error("merge for an edited spec accepted stale partials")
	}
	if _, err := Merge([]*Partial{a, aa}, MergeConfig{ParamsDigest: "digest-a"}); err != nil {
		t.Errorf("matching expected digest refused: %v", err)
	}

	// Pre-digest partials (empty digest) merge with digest-bearing
	// ones and under any expected digest — the documented caveat.
	empty := execute(Partition{Index: 1, Count: 2}, "")
	if _, err := Merge([]*Partial{a, empty}, MergeConfig{ParamsDigest: "digest-a"}); err != nil {
		t.Errorf("pre-digest partial refused: %v", err)
	}
}

// TestV1MigrationStaysDigestless: migrating a version-1 checkpoint
// must keep the artifact's digest-less identity, not stamp the
// current plan's digest onto legacy shards whose params provenance
// the old format never recorded — otherwise reverting a spec edit
// (the remedy the mismatch errors themselves suggest) would wrongly
// refuse shards that actually match.
func TestV1MigrationStaysDigestless(t *testing.T) {
	scn := &coinScenario{name: "legacy", trials: 600, seed: 4, p: 0.3}
	plan, err := NewPlan(scn, 100, Whole)
	if err != nil {
		t.Fatal(err)
	}
	mem, err := Execute(scn, plan, ExecConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cp := legacyCheckpoint{Version: 1, Scenario: scn.name, Trials: scn.trials, ShardSize: 100}
	for _, idx := range mem.Shards()[:3] {
		cp.Shards = append(cp.Shards, *mem.mem[idx])
	}
	data, err := json.Marshal(&cp)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "legacy.ckpt.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// Resume under one digest (allowed: pre-digest caveat, migrating
	// to v2), then under a different one: if the migration had stamped
	// the first digest, this second resume would be refused.
	for _, digest := range []string{"digest-a", "digest-b"} {
		if _, err := Run(scn, Config{ShardSize: 100, Checkpoint: path, ParamsDigest: digest}); err != nil {
			t.Fatalf("digest %q: migrated legacy checkpoint refused: %v", digest, err)
		}
	}
	p, err := OpenPartial(path)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.ParamsDigest() != "" {
		t.Errorf("migration certified legacy shards under digest %q", p.ParamsDigest())
	}
}
