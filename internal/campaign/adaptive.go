package campaign

import "math"

// CellState is the allocator's view of one matrix cell between merge
// rounds: how many trials its folded prefix covers, whether its stop
// rule already fired (or its trial budget is exhausted), and the
// current relative half-width of its headline estimator.
type CellState struct {
	// Name identifies the cell in the caller's bookkeeping; the
	// allocator only echoes it.
	Name string
	// Trials is the number of trials folded so far.
	Trials int
	// Done marks a cell that needs no more work: its stop rule fired
	// or it has consumed its requested trial budget.
	Done bool
	// RelErr is the current relative half-width of the cell's headline
	// estimator (z * stderr / estimate). +Inf or NaN — no events seen
	// yet — is treated as the widest possible interval.
	RelErr float64
}

// allocRelErrCap bounds the weight a single starved cell (huge or
// infinite relative error) can claim, so cells that have seen no
// events yet share the budget instead of monopolizing it.
const allocRelErrCap = 10.0

// Allocate distributes budget additional trials across the open cells
// in proportion to the square of each cell's relative error — the
// next round of work goes where the confidence interval is widest,
// which is the allocation that (to first order) equalizes the
// marginal variance reduction per trial. Cells marked Done receive
// zero. The result is deterministic: shares are rounded by the
// largest-remainder method with ties broken by slice order, and the
// returned slice is indexed like cells. A budget <= 0 or an all-done
// cell set returns all zeros.
func Allocate(cells []CellState, budget int) []int {
	out := make([]int, len(cells))
	if budget <= 0 {
		return out
	}
	weights := make([]float64, len(cells))
	total := 0.0
	for i, c := range cells {
		if c.Done {
			continue
		}
		re := c.RelErr
		if math.IsNaN(re) || re > allocRelErrCap {
			re = allocRelErrCap
		}
		if re <= 0 {
			// A zero-width interval on an open cell still deserves a
			// token share so it can make progress toward Done.
			re = 1e-6
		}
		weights[i] = re * re
		total += weights[i]
	}
	if total <= 0 {
		return out
	}
	// Largest-remainder rounding: floor every share, then hand the
	// leftover trials one each to the largest fractional parts, ties
	// broken by slice order. Fully deterministic for a given input.
	rem := make([]float64, len(cells))
	assigned := 0
	for i := range cells {
		if weights[i] == 0 {
			rem[i] = -1
			continue
		}
		share := float64(budget) * weights[i] / total
		fl := math.Floor(share)
		out[i] = int(fl)
		assigned += out[i]
		rem[i] = share - fl
	}
	for left := budget - assigned; left > 0; left-- {
		best := -1
		for i, r := range rem {
			if r >= 0 && (best == -1 || r > rem[best]) {
				best = i
			}
		}
		if best == -1 {
			break
		}
		out[best]++
		rem[best] = -1
	}
	return out
}
