package campaign

import (
	"compress/gzip"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// tiltScenario is a deterministic weighted Bernoulli campaign standing
// in for an importance-sampled simulator: under the biased measure a
// trial "hits" with probability pBiased and carries likelihood ratio
// lr, so the weighted estimator targets pBiased*lr. With unit=true it
// declares itself unweighted and records plain counters — the control
// arm for unit-weight equivalence tests.
type tiltScenario struct {
	name    string
	trials  int
	seed    int64
	pBiased float64
	lr      float64
	unit    bool
}

func (s *tiltScenario) Name() string   { return s.name }
func (s *tiltScenario) Trials() int    { return s.trials }
func (s *tiltScenario) Weighted() bool { return !s.unit }
func (s *tiltScenario) NewWorker() (Worker, error) {
	return &tiltWorker{scn: s, rng: rand.New(rand.NewSource(0))}, nil
}

type tiltWorker struct {
	scn *tiltScenario
	rng *rand.Rand
}

func (w *tiltWorker) Trial(i int, acc *Acc) error {
	w.rng.Seed(TrialSeed(w.scn.seed, i))
	acc.Add("raw_events", 2) // diagnostics stay integer in weighted runs too
	if w.rng.Float64() < w.scn.pBiased {
		if w.scn.unit {
			acc.Add("hits", 1)
		} else {
			acc.AddWeighted("hits", w.scn.lr)
		}
	}
	return nil
}

func TestWeightedDeterministicAcrossWorkerCounts(t *testing.T) {
	scn := &tiltScenario{name: "tilt", trials: 4000, seed: 3, pBiased: 0.3, lr: 1e-6}
	var results []*Result
	for _, workers := range []int{1, 4, 8} {
		results = append(results, run(t, scn, Config{Workers: workers, ShardSize: 64}))
	}
	for i := 1; i < len(results); i++ {
		if !reflect.DeepEqual(results[0], results[i]) {
			t.Fatalf("worker count changed the weighted result:\n%+v\nvs\n%+v", results[0], results[i])
		}
	}
	res := results[0]
	m, ok := res.Weights["hits"]
	if !ok {
		t.Fatal("weighted run recorded no moments for hits")
	}
	hits := float64(res.Counter("hits"))
	if got, want := m.WSum, hits*1e-6; math.Abs(got-want) > 1e-12*want {
		t.Errorf("WSum = %v, want %v (constant-lr trials)", got, want)
	}
	if got, want := m.WSum2, hits*1e-12; math.Abs(got-want) > 1e-12*want {
		t.Errorf("WSum2 = %v, want %v", got, want)
	}
	// Constant weights: every contributing trial is fully effective.
	if got := m.ESS(); math.Abs(got-hits) > 1e-6 {
		t.Errorf("ESS = %v, want %v", got, hits)
	}
	if got, want := res.WeightedFraction("hits"), m.WSum/float64(res.Trials); got != want {
		t.Errorf("WeightedFraction = %v, want %v", got, want)
	}
	if _, ok := res.Weights["raw_events"]; ok {
		t.Error("plain Add counter leaked into the weight moments")
	}
}

// TestWeightedUnitEquivalence: a weighted scenario whose every weight
// is exactly 1 must reproduce the unweighted run's counters and the
// unit-weight moment identity WSum == WSum2 == count, and its weighted
// estimator must equal the plain fraction.
func TestWeightedUnitEquivalence(t *testing.T) {
	unit := &tiltScenario{name: "tilt", trials: 3000, seed: 11, pBiased: 0.4, lr: 1, unit: true}
	weighted := &tiltScenario{name: "tilt", trials: 3000, seed: 11, pBiased: 0.4, lr: 1}
	a := run(t, unit, Config{Workers: 4, ShardSize: 128})
	b := run(t, weighted, Config{Workers: 4, ShardSize: 128})
	if !reflect.DeepEqual(a.Counters, b.Counters) {
		t.Fatalf("unit-weight counters diverged: %v vs %v", a.Counters, b.Counters)
	}
	m := b.Weights["hits"]
	c := float64(b.Counter("hits"))
	if m.WSum != c || m.WSum2 != c {
		t.Fatalf("unit weights must satisfy WSum == WSum2 == count: %+v vs %v", m, c)
	}
	if b.WeightedFraction("hits") != a.Fraction("hits") {
		t.Fatalf("unit-weight estimator %v != fraction %v", b.WeightedFraction("hits"), a.Fraction("hits"))
	}
}

func TestWeightedEarlyStopRelativeError(t *testing.T) {
	scn := &tiltScenario{name: "tilt", trials: 200000, seed: 5, pBiased: 0.25, lr: 1e-8}
	stop := &EarlyStop{Counter: "hits", RelHalfWidth: 0.1, MinTrials: 500}
	var results []*Result
	for _, workers := range []int{1, 4, 8} {
		results = append(results, run(t, scn, Config{Workers: workers, ShardSize: 256, Stop: stop}))
	}
	first := results[0]
	if !first.EarlyStopped {
		t.Fatalf("weighted campaign did not stop early at %d trials", first.Trials)
	}
	for i := 1; i < len(results); i++ {
		if !reflect.DeepEqual(first, results[i]) {
			t.Fatalf("weighted early stop not worker-count deterministic:\n%+v\nvs\n%+v", first, results[i])
		}
	}
	// The rule must actually hold at the stop point.
	if re := first.RelErr("hits", 1.96); re > 0.1 {
		t.Errorf("relative error %v still above 0.1 at stop", re)
	}
	// And must not have fired absurdly early.
	if first.Trials < 500 || first.Trials >= first.Requested {
		t.Errorf("implausible stopping point %d of %d", first.Trials, first.Requested)
	}
}

// TestWeightedPartitionMerge: a weighted campaign partitioned three
// ways and merged must be bit-identical to the unpartitioned run,
// early stop re-decision included.
func TestWeightedPartitionMerge(t *testing.T) {
	dir := t.TempDir()
	scn := &tiltScenario{name: "tilt", trials: 100000, seed: 7, pBiased: 0.25, lr: 1e-8}
	stop := &EarlyStop{Counter: "hits", RelHalfWidth: 0.1, MinTrials: 500}
	want := run(t, scn, Config{Workers: 4, ShardSize: 256, Stop: stop})
	if !want.EarlyStopped {
		t.Fatal("want an early-stopping reference run")
	}

	var partials []*Partial
	for i := 0; i < 3; i++ {
		plan, err := NewPlan(scn, 256, Partition{Index: i, Count: 3})
		if err != nil {
			t.Fatal(err)
		}
		p, err := Execute(scn, plan, ExecConfig{
			Workers:  4,
			Artifact: filepath.Join(dir, "tilt.part"+string(rune('0'+i))),
		})
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		partials = append(partials, p)
	}
	got, err := Merge(partials, MergeConfig{Stop: stop})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("3-way weighted merge diverged:\nwant %+v\ngot  %+v", want, got)
	}
}

// TestWeightedPartialRoundTrip: version-3 records must reload their
// weight moments exactly, and resuming from the artifact must not
// recompute anything.
func TestWeightedPartialRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tilt.part")
	scn := &tiltScenario{name: "tilt", trials: 2000, seed: 13, pBiased: 0.3, lr: 2.5e-7}
	plan, err := NewPlan(scn, 128, Whole)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Weighted {
		t.Fatal("planner did not stamp the weighted flag")
	}
	p, err := Execute(scn, plan, ExecConfig{Workers: 4, Artifact: path})
	if err != nil {
		t.Fatal(err)
	}
	wantRes, err := Merge([]*Partial{p}, MergeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	wantMoments := map[int]Moments{}
	for _, idx := range p.Shards() {
		wantMoments[idx], _ = p.ShardWeights(idx, "hits")
	}
	p.Close()

	re, err := OpenPartial(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for idx, want := range wantMoments {
		got, ok := re.ShardWeights(idx, "hits")
		if !ok || got != want {
			t.Fatalf("shard %d moments did not round-trip: %+v vs %+v", idx, got, want)
		}
	}
	gotRes, err := Merge([]*Partial{re}, MergeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wantRes, gotRes) {
		t.Fatalf("reloaded merge diverged:\nwant %+v\ngot  %+v", wantRes, gotRes)
	}

	// Resume: every shard must come from the artifact.
	p2, err := Execute(scn, plan, ExecConfig{Workers: 4, Artifact: path})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if p2.ResumedTrials() != 2000 {
		t.Errorf("resume recomputed: %d resumed trials, want 2000", p2.ResumedTrials())
	}
}

// TestUnweightedPartialLoadsAsUnitWeight: version-2 artifacts predate
// weight moments; ShardWeights must report the unit-weight identity so
// prefix folds can mix artifact generations.
func TestUnweightedPartialLoadsAsUnitWeight(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "coin.part")
	scn := &coinScenario{name: "coin", trials: 1000, seed: 2, p: 0.5}
	plan, err := NewPlan(scn, 100, Whole)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Weighted {
		t.Fatal("plain scenario planned as weighted")
	}
	p, err := Execute(scn, plan, ExecConfig{Workers: 2, Artifact: path})
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	re, err := OpenPartial(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for _, idx := range re.Shards() {
		c, _ := re.ShardCounter(idx, "hits")
		m, ok := re.ShardWeights(idx, "hits")
		if !ok || m.WSum != float64(c) || m.WSum2 != float64(c) {
			t.Fatalf("shard %d: unit fallback broken: count %d, moments %+v", idx, c, m)
		}
	}
	// The merged result of an unweighted campaign must not carry a
	// weights map at all — its JSON artifact bytes are pinned by the
	// pre-refactor goldens.
	res, err := Merge([]*Partial{re}, MergeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Weights != nil {
		t.Fatalf("unweighted merge grew a weights map: %+v", res.Weights)
	}
}

// TestWeightedUnweightedPartialsRefuseToMerge: version-2 and version-3
// artifacts encode different measures; folding them would silently
// mix biased and unbiased counts.
func TestWeightedUnweightedPartialsRefuseToMerge(t *testing.T) {
	dir := t.TempDir()
	wScn := &tiltScenario{name: "same", trials: 1000, seed: 1, pBiased: 0.3, lr: 1e-6}
	uScn := &tiltScenario{name: "same", trials: 1000, seed: 1, pBiased: 0.3, lr: 1, unit: true}
	wPlan, err := NewPlan(wScn, 100, Partition{Index: 0, Count: 2})
	if err != nil {
		t.Fatal(err)
	}
	uPlan, err := NewPlan(uScn, 100, Partition{Index: 1, Count: 2})
	if err != nil {
		t.Fatal(err)
	}
	wp, err := Execute(wScn, wPlan, ExecConfig{Artifact: filepath.Join(dir, "w.part")})
	if err != nil {
		t.Fatal(err)
	}
	defer wp.Close()
	up, err := Execute(uScn, uPlan, ExecConfig{Artifact: filepath.Join(dir, "u.part")})
	if err != nil {
		t.Fatal(err)
	}
	defer up.Close()
	if _, err := Merge([]*Partial{wp, up}, MergeConfig{}); err == nil {
		t.Fatal("weighted and unweighted partials merged")
	} else if !strings.Contains(err.Error(), "version") {
		t.Errorf("unhelpful error: %v", err)
	}
}

// gzipFile compresses src into dst, emulating an artifact stored
// compressed at rest by the fabric coordinator.
func gzipFile(t *testing.T, src, dst string) {
	t.Helper()
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	out, err := os.Create(dst)
	if err != nil {
		t.Fatal(err)
	}
	gz := gzip.NewWriter(out)
	if _, err := gz.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := gz.Close(); err != nil {
		t.Fatal(err)
	}
	if err := out.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestGzipPartialRoundTrip: OpenPartial must sniff the gzip magic and
// load a compressed artifact to the identical in-memory state, for
// both weighted and unweighted generations.
func TestGzipPartialRoundTrip(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		dir := t.TempDir()
		plain := filepath.Join(dir, "a.part")
		packed := filepath.Join(dir, "a.part.gz")
		scn := &tiltScenario{name: "tilt", trials: 1500, seed: 21, pBiased: 0.3, lr: 1e-5, unit: !weighted}
		plan, err := NewPlan(scn, 100, Whole)
		if err != nil {
			t.Fatal(err)
		}
		p, err := Execute(scn, plan, ExecConfig{Workers: 2, Artifact: plain})
		if err != nil {
			t.Fatal(err)
		}
		want, err := Merge([]*Partial{p}, MergeConfig{})
		if err != nil {
			t.Fatal(err)
		}
		p.Close()
		gzipFile(t, plain, packed)

		re, err := OpenPartial(packed)
		if err != nil {
			t.Fatalf("weighted=%v: OpenPartial(gzip): %v", weighted, err)
		}
		got, err := Merge([]*Partial{re}, MergeConfig{})
		re.Close()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("weighted=%v: gzip round-trip diverged:\nwant %+v\ngot  %+v", weighted, want, got)
		}
	}
}

// TestGzipMixedCompressionMerge: one partition compressed at rest, one
// plain — the merge must not care.
func TestGzipMixedCompressionMerge(t *testing.T) {
	dir := t.TempDir()
	scn := &tiltScenario{name: "tilt", trials: 3000, seed: 9, pBiased: 0.3, lr: 1e-5}
	want := run(t, scn, Config{Workers: 4, ShardSize: 128})

	var paths []string
	for i := 0; i < 2; i++ {
		plan, err := NewPlan(scn, 128, Partition{Index: i, Count: 2})
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, "tilt.part"+string(rune('0'+i)))
		p, err := Execute(scn, plan, ExecConfig{Workers: 2, Artifact: path})
		if err != nil {
			t.Fatal(err)
		}
		p.Close()
		paths = append(paths, path)
	}
	gzipFile(t, paths[0], paths[0]+".gz")
	a, err := OpenPartial(paths[0] + ".gz")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := OpenPartial(paths[1])
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	got, err := Merge([]*Partial{a, b}, MergeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("mixed-compression merge diverged:\nwant %+v\ngot  %+v", want, got)
	}
}

// TestGzipPartialRefusesAppend: a compressed artifact is read-only at
// rest; resuming an executor onto it must fail loudly instead of
// appending plaintext records after the gzip stream.
func TestGzipPartialRefusesAppend(t *testing.T) {
	dir := t.TempDir()
	plain := filepath.Join(dir, "a.part")
	scn := &tiltScenario{name: "tilt", trials: 1000, seed: 4, pBiased: 0.3, lr: 1e-5}
	plan, err := NewPlan(scn, 100, Whole)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Execute(scn, plan, ExecConfig{Workers: 2, Artifact: plain})
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	packed := filepath.Join(dir, "b.part")
	gzipFile(t, plain, packed)
	if _, err := Execute(scn, plan, ExecConfig{Workers: 2, Artifact: packed}); err == nil {
		t.Fatal("executor appended to a gzip-compressed artifact")
	} else if !strings.Contains(err.Error(), "gzip") {
		t.Errorf("unhelpful error: %v", err)
	}
}

func TestAllocate(t *testing.T) {
	cells := []CellState{
		{Name: "wide", Trials: 100, RelErr: 0.8},
		{Name: "narrow", Trials: 100, RelErr: 0.2},
		{Name: "done", Trials: 100, Done: true, RelErr: 0.9},
	}
	alloc := Allocate(cells, 1000)
	if len(alloc) != 3 {
		t.Fatalf("alloc length %d", len(alloc))
	}
	if alloc[2] != 0 {
		t.Errorf("done cell allocated %d trials", alloc[2])
	}
	if alloc[0]+alloc[1] != 1000 {
		t.Errorf("budget not exhausted: %v", alloc)
	}
	// Squared-relative-error proportionality: 0.64 : 0.04 = 16 : 1,
	// within one trial of rounding on each side.
	if ratio := float64(alloc[0]) / float64(alloc[1]); math.Abs(ratio-16) > 0.5 {
		t.Errorf("allocation %v not proportional to squared rel err (ratio %v)", alloc, ratio)
	}

	// Unestimated cells (infinite rel err) hit the cap, not Inf.
	fresh := []CellState{
		{Name: "a", RelErr: math.Inf(1)},
		{Name: "b", RelErr: math.NaN()},
	}
	alloc = Allocate(fresh, 101)
	if alloc[0]+alloc[1] != 101 {
		t.Errorf("fresh-cell budget lost: %v", alloc)
	}
	if diff := alloc[0] - alloc[1]; diff < -1 || diff > 1 {
		t.Errorf("equally unknown cells split unevenly: %v", alloc)
	}

	// All done: nothing to hand out.
	alloc = Allocate([]CellState{{Done: true}, {Done: true}}, 50)
	if alloc[0] != 0 || alloc[1] != 0 {
		t.Errorf("done cells allocated trials: %v", alloc)
	}
	if got := Allocate(nil, 100); len(got) != 0 {
		t.Errorf("nil cells allocated: %v", got)
	}
}

func TestSatisfiedWeighted(t *testing.T) {
	stop := &EarlyStop{Counter: "hits", RelHalfWidth: 0.1, MinTrials: 100}
	// Constant weight w over k of n trials: se/p = sqrt((n-k)/(k*n)),
	// so k=400, n=10000 gives ~4.9% relative error at z=1.96 — inside.
	w := 1e-9
	k, n := 400.0, 10000
	m := Moments{WSum: k * w, WSum2: k * w * w}
	if !stop.SatisfiedWeighted(m, n) {
		t.Error("tight weighted estimate did not satisfy the stop")
	}
	// k=20 of 10000: ~22% relative error — outside.
	m = Moments{WSum: 20 * w, WSum2: 20 * w * w}
	if stop.SatisfiedWeighted(m, n) {
		t.Error("loose weighted estimate satisfied the stop")
	}
	// Below MinTrials: never.
	m = Moments{WSum: 40 * w, WSum2: 40 * w * w}
	if stop.SatisfiedWeighted(m, 50) {
		t.Error("stop fired below MinTrials")
	}
	// No weight mass: never.
	if stop.SatisfiedWeighted(Moments{}, 10000) {
		t.Error("stop fired with zero weight mass")
	}
}
