// Package spec runs declarative multi-scenario campaign files: a JSON
// document names a list of scenarios — Monte Carlo fault injection
// (memsim), multi-bit-upset comparisons (mbusim), page-level
// interleaving simulations (interleave), whole-memory cross-validation
// (array), analytic BER curves and design-space sweeps, or whole
// registry experiments — and the package builds each one into a
// campaign.Scenario for the shared engine. Adding a new workload to a
// study means adding an entry to a spec file, not writing a new
// binary.
//
// Schema (see examples/campaign/ for runnable files):
//
//	{
//	  "seed": 1,
//	  "workers": 0,
//	  "scenarios": [
//	    {
//	      "name": "ber-transient",
//	      "kind": "bercurve",
//	      "params": {"arrangement": "duplex", "seu_per_bit_day": 1.7e-5,
//	                 "scrub_seconds": 3600, "hours": 48}
//	    },
//	    {
//	      "name": "ssmm-mission",
//	      "kind": "memsim",
//	      "params": {"duplex": true, "lambda_bit_per_hour": 6e-4,
//	                 "lambda_symbol_per_hour": 2e-4, "scrub_period_hours": 4,
//	                 "exponential_scrub": true, "horizon_hours": 48,
//	                 "trials": 10000},
//	      "expect": [{"counter": "capability_exceeded",
//	                  "min_fraction": 0.05, "max_fraction": 0.09}]
//	    },
//	    {
//	      "name": "page-sweep",
//	      "kind": "interleave",
//	      "params": {"burst_per_kilobit_hour": 0.5, "burst_bits": 9,
//	                 "detection": "latency", "detection_latency_hours": 12,
//	                 "horizon_hours": 48, "trials": 4000},
//	      "matrix": {"n": [18, 20], "depth": [2, 4],
//	                 "scrub_period_hours": [1, 4, 12]},
//	      "expect": [{"counter": "single_burst_losses", "max_fraction": 0}]
//	    }
//	  ]
//	}
//
// Kinds: "memsim", "mbusim", "bercurve", "tradeoff", "experiments",
// "interleave" (page-level Monte Carlo over internal/pagesim) and
// "array" (whole-memory Monte Carlo cross-validating the analytic
// internal/array lift; it fails the run when the analytic curve
// leaves the Monte Carlo's Wilson band unless validate_analytic is
// false). Each entry may carry a checkpoint path, an early-stop rule
// and expectations — tolerance bands on counter fractions that turn a
// campaign into a pass/fail gate (the nightly CI workflow uses this
// to detect probability drift). The burst-injecting kinds ("mbusim",
// "interleave") take burst_dist/burst_mean_bits to draw MBU lengths
// from a distribution ("fixed" default; "geometric" with the given
// mean, capped at the image — see internal/burstlen) instead of a
// constant burst_bits. The "interleave" kind additionally takes a
// "detection" policy for stuck-column location ("immediate" default —
// the historical free-erasures behavior, bit-identical outputs;
// "scrub" — located when a scrub pass observes the symbol deviate;
// "latency" — located detection_latency_hours after striking), a
// natural matrix axis for quantifying what immediate location buys
// (see examples/campaign/detection.json).
//
// Every entry's kind and canonicalized params are digested
// (Entry.ParamsDigest) and stamped into checkpoint and
// partial-artifact headers: editing an entry's params while keeping
// its name makes resume and merge refuse the stale artifacts instead
// of silently folding shards computed under the old parameters.
// Artifacts written before the digest existed carry none and stay
// loadable — the one caveat being that params edits are not detected
// against those pre-digest files.
//
// An entry with a "matrix" field is a sweep template: File.Expand
// (run automatically by Parse and BuildAll) replaces it with the full
// cross-product of cells — one scenario per parameter combination,
// named <name>/k1=v1,k2=v2,... with keys sorted — each inheriting the
// entry's remaining params, stop rule and expectation bands, so one
// twelve-line entry expresses an RS(n,k) x interleaving-depth x
// scrub-interval grid. A "replicates": N field adds a synthesized
// "seed" axis — N independent RNG replicates of the identical
// configuration, whose spread measures the Monte Carlo confidence
// interval itself (seeded kinds only; composes with matrix).
// RenderGrid formats a matrix group's results as one table and
// RenderGridHeatmap shades its headline counter fraction per cell.
//
// Partitioned campaigns: every entry's trial range can be split
// across processes with Built.RunPartition (one deterministic slice
// per process, each writing a self-describing partial artifact) and
// reassembled with Built.MergePartials into the Result a
// single-process run would produce, bit for bit — cmd/campaign's
// -partition/-merge flags drive exactly this path.
package spec

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
	"text/tabwriter"

	"repro/internal/array"
	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/expdata"
	"repro/internal/gf"
	"repro/internal/mbusim"
	"repro/internal/memsim"
	"repro/internal/pagesim"
	"repro/internal/rs"
	"repro/internal/textplot"
)

// File is a parsed campaign spec.
type File struct {
	// Seed is the default base seed for entries that do not set one.
	Seed int64 `json:"seed,omitempty"`
	// Workers and ShardSize are engine defaults for every entry
	// (0 = engine defaults).
	Workers   int     `json:"workers,omitempty"`
	ShardSize int     `json:"shard_size,omitempty"`
	Scenarios []Entry `json:"scenarios"`
	// Adaptive, when set, replaces the run-every-entry-to-completion
	// execution with round-based adaptive allocation (see RunAdaptive):
	// each round distributes a fixed trial budget across the scenarios
	// in proportion to their squared relative errors, so trials flow to
	// the cells with the widest confidence intervals. Requires every
	// scenario to carry a stop rule (the allocator's target).
	Adaptive *Adaptive `json:"adaptive,omitempty"`
}

// Entry is one scenario of a spec file — or, when Matrix is set, a
// template for a whole grid of them.
type Entry struct {
	Name       string          `json:"name"`
	Kind       string          `json:"kind"`
	Params     json.RawMessage `json:"params,omitempty"`
	Checkpoint string          `json:"checkpoint,omitempty"`
	Stop       *Stop           `json:"stop,omitempty"`
	Expect     []Expectation   `json:"expect,omitempty"`
	Sampling   *Sampling       `json:"sampling,omitempty"`

	// Matrix maps parameter names to value lists; File.Expand replaces
	// the entry with the cross-product of cells (auto-suffixed names,
	// shared defaults from Params, the entry's Stop and Expect applied
	// to every cell). A matrix key must not also appear in Params.
	Matrix map[string][]json.RawMessage `json:"matrix,omitempty"`

	// Replicates expands the entry into N seed-replicate cells by
	// synthesizing a "seed" matrix axis sweeping base..base+N-1 (base
	// is the entry's params seed, or the file seed): every cell runs
	// the identical configuration under an independent RNG stream, so
	// the spread of the per-cell estimates measures the Monte Carlo
	// confidence interval itself (a CI of the CI). Composes with
	// Matrix (the seed axis joins the cross-product) and requires a
	// seeded kind (memsim, mbusim, interleave, array).
	Replicates int `json:"replicates,omitempty"`

	// MatrixOrigin ("" for plain entries) names the matrix entry this
	// cell was expanded from; MatrixParams holds the cell's sweep
	// assignments in suffix order. Both are set by Expand, not parsed.
	MatrixOrigin string             `json:"-"`
	MatrixParams []MatrixAssignment `json:"-"`
}

// Sampling selects a variance-reduction strategy for a Monte Carlo
// entry (kinds "memsim" and "interleave"):
//
//	"sampling": {"method": "tilt", "factor": 100}
//	"sampling": {"method": "auto"}
//
// "tilt" exponentially tilts the fault arrival process: every fault
// rate is jointly multiplied by the factor (> 1), each trial carries
// its exact likelihood ratio into the engine's weighted counters, and
// the entry's results report the unbiased weighted estimator with a
// relative-error interval and effective sample size. "auto" (simplex
// memsim with exponential or no scrubbing only) solves the factor
// from the analytic Markov chain so the tilted failure probability
// lands near 25%, and additionally gates the weighted estimate
// against the chain's exact answer at merge time. Tilted and
// untilted campaigns write distinct artifacts (the tilt factor is
// part of the scenario identity), so changing the sampling block
// never silently merges trials drawn from different measures.
type Sampling struct {
	Method string  `json:"method"`
	Factor float64 `json:"factor,omitempty"`
}

// Sampling method names.
const (
	SampleTilt = "tilt"
	SampleAuto = "auto"
)

// autoTiltTarget is the tilted failure probability the "auto" method
// solves for: far enough from 0 that failures are common, far enough
// from 1 that the likelihood ratios stay informative.
const autoTiltTarget = 0.25

// validate checks the sampling block against its entry's kind.
func (s *Sampling) validate(e Entry) error {
	switch s.Method {
	case SampleTilt:
		if math.IsNaN(s.Factor) || math.IsInf(s.Factor, 0) || s.Factor < 1 {
			return fmt.Errorf("spec: scenario %q sampling factor %v must be >= 1", e.Name, s.Factor)
		}
	case SampleAuto:
		if s.Factor != 0 {
			return fmt.Errorf("spec: scenario %q sampling method %q solves its own factor; drop the factor field", e.Name, s.Method)
		}
	default:
		return fmt.Errorf("spec: scenario %q has unknown sampling method %q (want %q or %q)", e.Name, s.Method, SampleTilt, SampleAuto)
	}
	switch e.Kind {
	case "memsim":
	case "interleave":
		if s.Method == SampleAuto {
			return fmt.Errorf("spec: scenario %q: sampling method %q needs the analytic chain and supports kind \"memsim\" only", e.Name, s.Method)
		}
	default:
		return fmt.Errorf("spec: scenario %q kind %q does not support importance sampling", e.Name, e.Kind)
	}
	return nil
}

// Stop mirrors campaign.EarlyStop in spec syntax.
type Stop struct {
	Counter      string  `json:"counter"`
	RelHalfWidth float64 `json:"rel_half_width"`
	Z            float64 `json:"z,omitempty"`
	MinTrials    int     `json:"min_trials,omitempty"`
}

// Expectation is a tolerance band on a counter fraction; a result
// outside the band fails the campaign run.
type Expectation struct {
	Counter     string   `json:"counter"`
	MinFraction *float64 `json:"min_fraction,omitempty"`
	MaxFraction *float64 `json:"max_fraction,omitempty"`
}

// Check evaluates the expectation against a result. Counters recorded
// under importance sampling are checked on the unbiased weighted
// estimate (the raw biased-measure fraction would be off by orders of
// magnitude); unweighted counters see the plain fraction, unchanged.
func (e Expectation) Check(cres *campaign.Result) error {
	frac := cres.WeightedFraction(e.Counter)
	if e.MinFraction != nil && frac < *e.MinFraction {
		return fmt.Errorf("counter %q fraction %.6e below expected minimum %.6e (%d/%d trials)",
			e.Counter, frac, *e.MinFraction, cres.Counter(e.Counter), cres.Trials)
	}
	if e.MaxFraction != nil && frac > *e.MaxFraction {
		return fmt.Errorf("counter %q fraction %.6e above expected maximum %.6e (%d/%d trials)",
			e.Counter, frac, *e.MaxFraction, cres.Counter(e.Counter), cres.Trials)
	}
	return nil
}

// Load reads and validates a spec file.
func Load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	return Parse(data)
}

// Parse decodes and validates spec bytes. Unknown fields are errors,
// so typos fail loudly instead of silently running defaults.
func Parse(data []byte) (*File, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var f File
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("spec: parse: %w", err)
	}
	if err := f.Expand(); err != nil {
		return nil, err
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return &f, nil
}

// Validate checks structural invariants (names, kinds, expectations).
func (f *File) Validate() error {
	if len(f.Scenarios) == 0 {
		return fmt.Errorf("spec: no scenarios")
	}
	if ad := f.Adaptive; ad != nil {
		if ad.RoundTrials <= 0 {
			return fmt.Errorf("spec: adaptive round_trials must be positive")
		}
		if ad.MaxRounds < 0 {
			return fmt.Errorf("spec: adaptive max_rounds must be nonnegative")
		}
		for _, e := range f.Scenarios {
			if e.Stop == nil {
				return fmt.Errorf("spec: adaptive allocation requires a stop rule on every scenario; %q has none", e.Name)
			}
		}
	}
	seen := make(map[string]bool)
	seenPath := make(map[string]string)
	for i, e := range f.Scenarios {
		if e.Name == "" {
			return fmt.Errorf("spec: scenario %d has no name", i)
		}
		if seen[e.Name] {
			return fmt.Errorf("spec: duplicate scenario name %q", e.Name)
		}
		seen[e.Name] = true
		// Distinct names can still sanitize onto the same artifact
		// path ("a/b" vs "a-b"); reject the spec so -out never
		// silently overwrites one scenario's results with another's.
		path := e.ArtifactPath()
		if prev, dup := seenPath[path]; dup {
			return fmt.Errorf("spec: scenarios %q and %q collide on artifact path %q", prev, e.Name, path)
		}
		seenPath[path] = e.Name
		switch e.Kind {
		case "memsim", "mbusim", "bercurve", "tradeoff", "experiments", "interleave", "array":
		default:
			return fmt.Errorf("spec: scenario %q has unknown kind %q", e.Name, e.Kind)
		}
		if e.Stop != nil && e.Stop.Counter == "" {
			return fmt.Errorf("spec: scenario %q early stop needs a counter", e.Name)
		}
		if e.Sampling != nil {
			if err := e.Sampling.validate(e); err != nil {
				return err
			}
		}
		for _, ex := range e.Expect {
			if ex.Counter == "" {
				return fmt.Errorf("spec: scenario %q expectation needs a counter", e.Name)
			}
			if ex.MinFraction == nil && ex.MaxFraction == nil {
				return fmt.Errorf("spec: scenario %q expectation on %q has no bound", e.Name, ex.Counter)
			}
		}
	}
	return nil
}

// ParamsDigest returns a deterministic digest of the entry's kind and
// canonicalized params (JSON re-marshaled with sorted keys, so
// whitespace and key order do not matter). The engine stamps it into
// checkpoint and partial-artifact headers: resuming or merging an
// artifact whose digest differs is refused even when the scenario
// name happens to match, closing the hole where a params edit that a
// kind's scenario Name does not encode would silently merge stale
// shards. The digest is deliberately conservative — it covers every
// param, including ones (like the "array" kind's validate_analytic)
// that do not change the computed shards.
func (e Entry) ParamsDigest() (string, error) {
	raw := e.Params
	if len(raw) == 0 {
		raw = []byte("{}")
	}
	var v any
	if err := json.Unmarshal(raw, &v); err != nil {
		return "", fmt.Errorf("spec: scenario %q params: %w", e.Name, err)
	}
	canon, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("spec: scenario %q params: %w", e.Name, err)
	}
	sum := sha256.Sum256(append(append([]byte(e.Kind), '\n'), canon...))
	return hex.EncodeToString(sum[:]), nil
}

// Built is a spec entry compiled to a runnable scenario.
type Built struct {
	Entry    Entry
	Scenario campaign.Scenario
	// Digest is the entry's ParamsDigest, stamped into checkpoint and
	// partial-artifact headers so stale artifacts from an edited spec
	// are refused at resume and merge time.
	Digest string
	// Render writes the scenario's human-readable summary.
	Render func(w io.Writer, cres *campaign.Result) error
	// shardSize is the kind's preferred shard size when the file does
	// not set one: analytic kinds have few, heavyweight trials and
	// shard one per trial so they actually parallelize.
	shardSize int
	// checks are kind-supplied gates evaluated alongside the entry's
	// expectation bands (the "array" kind's analytic cross-validation).
	checks []func(cres *campaign.Result) error
}

// EngineConfig assembles the engine configuration for this entry
// under the file-level defaults.
func (b *Built) EngineConfig(f *File) campaign.Config {
	cfg := campaign.Config{
		Workers:      f.Workers,
		ShardSize:    f.ShardSize,
		Checkpoint:   b.Entry.Checkpoint,
		ParamsDigest: b.Digest,
	}
	if cfg.ShardSize == 0 {
		cfg.ShardSize = b.shardSize
	}
	if s := b.Entry.Stop; s != nil {
		cfg.Stop = &campaign.EarlyStop{
			Counter:      s.Counter,
			RelHalfWidth: s.RelHalfWidth,
			Z:            s.Z,
			MinTrials:    s.MinTrials,
		}
	}
	return cfg
}

// CheckExpectations evaluates every tolerance band of the entry plus
// any kind-supplied checks (e.g. the "array" kind's analytic
// cross-validation).
func (b *Built) CheckExpectations(cres *campaign.Result) []error {
	var errs []error
	for _, ex := range b.Entry.Expect {
		if err := ex.Check(cres); err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", b.Entry.Name, err))
		}
	}
	for _, check := range b.checks {
		if err := check(cres); err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", b.Entry.Name, err))
		}
	}
	return errs
}

// decodeParams strictly unmarshals entry params into dst.
func decodeParams(e Entry, dst any) error {
	raw := e.Params
	if len(raw) == 0 {
		raw = []byte("{}")
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("spec: scenario %q params: %w", e.Name, err)
	}
	return nil
}

// MemsimParams is the "memsim" kind: Monte Carlo fault injection
// through the real codec, scrubber and arbiter. Rates are per hour,
// matching cmd/memsim.
type MemsimParams struct {
	N            int     `json:"n"`
	K            int     `json:"k"`
	M            int     `json:"m"`
	Duplex       bool    `json:"duplex"`
	LambdaBit    float64 `json:"lambda_bit_per_hour"`
	LambdaSymbol float64 `json:"lambda_symbol_per_hour"`
	ScrubHours   float64 `json:"scrub_period_hours"`
	ExpScrub     bool    `json:"exponential_scrub"`
	Latency      float64 `json:"detection_latency_hours"`
	CrossRepair  bool    `json:"cross_repair"`
	Horizon      float64 `json:"horizon_hours"`
	Trials       int     `json:"trials"`
	Seed         *int64  `json:"seed,omitempty"`
}

// MemsimConfig converts the params (with defaults) into a simulator
// configuration.
func (p MemsimParams) MemsimConfig(defaultSeed int64) (memsim.Config, error) {
	applyCodeDefaults(&p.N, &p.K, &p.M)
	field, err := gf.NewField(p.M)
	if err != nil {
		return memsim.Config{}, err
	}
	code, err := rs.New(field, p.N, p.K)
	if err != nil {
		return memsim.Config{}, err
	}
	seed := defaultSeed
	if p.Seed != nil {
		seed = *p.Seed
	}
	return memsim.Config{
		Code:             code,
		Duplex:           p.Duplex,
		LambdaBit:        p.LambdaBit,
		LambdaSymbol:     p.LambdaSymbol,
		ScrubPeriod:      p.ScrubHours,
		ExponentialScrub: p.ExpScrub,
		DetectionLatency: p.Latency,
		CrossRepair:      p.CrossRepair,
		Horizon:          p.Horizon,
		Trials:           p.Trials,
		Seed:             seed,
	}, nil
}

// MBUParams is the "mbusim" kind: burst injection through the default
// protection-scheme comparison set. burst_dist selects the length
// distribution ("fixed" default, or "geometric" with mean
// burst_mean_bits capped at each system's image).
type MBUParams struct {
	EventsPerKilobit float64 `json:"events_per_kilobit"`
	BurstBits        int     `json:"burst_bits"`
	BurstDist        string  `json:"burst_dist,omitempty"`
	BurstMeanBits    float64 `json:"burst_mean_bits,omitempty"`
	Trials           int     `json:"trials"`
	Seed             *int64  `json:"seed,omitempty"`
}

// ExperimentsParams is the "experiments" kind: run registered paper
// experiments by ID (empty means all).
type ExperimentsParams struct {
	IDs []string `json:"ids,omitempty"`
}

// InterleaveParams is the "interleave" kind: the page-level Monte
// Carlo of internal/pagesim — depth RS codewords striped across a
// stored page under mixed Poisson SEUs, MBU bursts and stuck-at
// columns, with an optional scrub discipline. Rates are per hour.
type InterleaveParams struct {
	N               int     `json:"n"`
	K               int     `json:"k"`
	M               int     `json:"m"`
	Depth           int     `json:"depth"`
	LambdaBit       float64 `json:"lambda_bit_per_hour"`
	BurstPerKilobit float64 `json:"burst_per_kilobit_hour"`
	BurstBits       int     `json:"burst_bits"`
	BurstDist       string  `json:"burst_dist,omitempty"`
	BurstMeanBits   float64 `json:"burst_mean_bits,omitempty"`
	LambdaColumn    float64 `json:"lambda_column_per_hour"`
	ScrubHours      float64 `json:"scrub_period_hours"`
	ExpScrub        bool    `json:"exponential_scrub"`
	// Detection selects the stuck-column location policy ("immediate"
	// default, "scrub", or "latency" with detection_latency_hours —
	// see pagesim.Config.Detection); matrix entries sweep it like any
	// other param.
	Detection        string  `json:"detection,omitempty"`
	DetectionLatency float64 `json:"detection_latency_hours,omitempty"`
	Horizon          float64 `json:"horizon_hours"`
	Trials           int     `json:"trials"`
	Seed             *int64  `json:"seed,omitempty"`
}

// PagesimConfig converts the params into a simulator configuration
// with depth defaulting to 1 (zero N/K/M fall back to the paper's
// RS(18,16)/m=8 inside pagesim.Config.NewPage, the single authority
// for the code default).
func (p InterleaveParams) PagesimConfig(defaultSeed int64) pagesim.Config {
	if p.Depth == 0 {
		p.Depth = 1
	}
	seed := defaultSeed
	if p.Seed != nil {
		seed = *p.Seed
	}
	return pagesim.Config{
		N:                p.N,
		K:                p.K,
		M:                p.M,
		Depth:            p.Depth,
		LambdaBit:        p.LambdaBit,
		BurstPerKilobit:  p.BurstPerKilobit,
		BurstBits:        p.BurstBits,
		BurstDist:        p.BurstDist,
		BurstMeanBits:    p.BurstMeanBits,
		LambdaColumn:     p.LambdaColumn,
		ScrubPeriod:      p.ScrubHours,
		ExponentialScrub: p.ExpScrub,
		Detection:        p.Detection,
		DetectionLatency: p.DetectionLatency,
		Horizon:          p.Horizon,
		Trials:           p.Trials,
		Seed:             seed,
	}
}

// ArrayParams is the "array" kind: the whole-memory Monte Carlo of
// internal/array — W words simulated at the word level with rates
// matched to the analytic chain, lifted to memory-level loss
// probability. Units follow the analytic API (per-day rates, scrub
// seconds), so an "array" entry reads like a bercurve entry plus a
// capacity. By default the campaign fails when the analytic
// AnyWordFail leaves the Monte Carlo's 95% Wilson band; the check
// defaults off for scrubbed duplex (a documented ~1% model gap, see
// array.SimConfig) and validate_analytic overrides either default.
type ArrayParams struct {
	DataBytes        int64   `json:"data_bytes"`
	Arrangement      string  `json:"arrangement"` // "simplex" (default) or "duplex"
	N                int     `json:"n"`
	K                int     `json:"k"`
	M                int     `json:"m"`
	SEUPerBit        float64 `json:"seu_per_bit_day"`
	PermPerSym       float64 `json:"perm_per_symbol_day"`
	ScrubSec         float64 `json:"scrub_seconds"`
	Hours            float64 `json:"hours"`
	Trials           int     `json:"trials"`
	Seed             *int64  `json:"seed,omitempty"`
	ValidateAnalytic *bool   `json:"validate_analytic,omitempty"`
}

// SimConfig converts the params (with defaults: the paper's code and
// a 1 MiB capacity) into the cross-validation configuration.
func (p ArrayParams) SimConfig(defaultSeed int64) (array.SimConfig, error) {
	arr, err := parseArrangement(p.Arrangement)
	if err != nil {
		return array.SimConfig{}, err
	}
	applyCodeDefaults(&p.N, &p.K, &p.M)
	if p.DataBytes == 0 {
		p.DataBytes = 1 << 20
	}
	seed := defaultSeed
	if p.Seed != nil {
		seed = *p.Seed
	}
	return array.SimConfig{
		Memory: array.Memory{
			DataBytes: p.DataBytes,
			Word: core.Config{
				Arrangement:         arr,
				Code:                core.CodeSpec{N: p.N, K: p.K, M: p.M},
				SEUPerBitDay:        p.SEUPerBit,
				ErasurePerSymbolDay: p.PermPerSym,
				ScrubPeriodSeconds:  p.ScrubSec,
			},
		},
		Hours:  p.Hours,
		Trials: p.Trials,
		Seed:   seed,
	}, nil
}

// Build compiles one entry under the file defaults and stamps its
// params digest.
func Build(e Entry, f *File) (*Built, error) {
	b, err := buildScenario(e, f)
	if err != nil {
		return nil, err
	}
	if b.Digest, err = e.ParamsDigest(); err != nil {
		return nil, err
	}
	return b, nil
}

// buildScenario compiles one entry's kind-specific scenario.
func buildScenario(e Entry, f *File) (*Built, error) {
	switch e.Kind {
	case "memsim":
		var p MemsimParams
		if err := decodeParams(e, &p); err != nil {
			return nil, err
		}
		cfg, err := p.MemsimConfig(f.Seed)
		if err != nil {
			return nil, fmt.Errorf("spec: scenario %q: %w", e.Name, err)
		}
		var checks []func(cres *campaign.Result) error
		if e.Sampling != nil {
			factor, gate, err := resolveMemsimTilt(e, cfg)
			if err != nil {
				return nil, err
			}
			cfg.TiltFactor = factor
			if gate != nil {
				checks = append(checks, gate)
			}
		}
		scn, err := cfg.Scenario()
		if err != nil {
			return nil, fmt.Errorf("spec: scenario %q: %w", e.Name, err)
		}
		return &Built{Entry: e, Scenario: scn, checks: checks, Render: func(w io.Writer, cres *campaign.Result) error {
			return renderMemsim(w, cfg, cres)
		}}, nil

	case "mbusim":
		var p MBUParams
		if err := decodeParams(e, &p); err != nil {
			return nil, err
		}
		seed := f.Seed
		if p.Seed != nil {
			seed = *p.Seed
		}
		systems, err := mbusim.DefaultSystems()
		if err != nil {
			return nil, fmt.Errorf("spec: scenario %q: %w", e.Name, err)
		}
		cfg := mbusim.Config{
			EventsPerKilobit: p.EventsPerKilobit,
			BurstBits:        p.BurstBits,
			BurstDist:        p.BurstDist,
			BurstMeanBits:    p.BurstMeanBits,
			Trials:           p.Trials,
			Seed:             seed,
		}
		scn, err := mbusim.Scenario(cfg, systems)
		if err != nil {
			return nil, fmt.Errorf("spec: scenario %q: %w", e.Name, err)
		}
		return &Built{Entry: e, Scenario: scn, Render: func(w io.Writer, cres *campaign.Result) error {
			return renderMBU(w, systems, cres)
		}}, nil

	case "bercurve":
		var p BERCurveParams
		if err := decodeParams(e, &p); err != nil {
			return nil, err
		}
		scn, err := NewBERCurve(p)
		if err != nil {
			return nil, fmt.Errorf("spec: scenario %q: %w", e.Name, err)
		}
		return &Built{Entry: e, Scenario: scn, shardSize: 1, Render: func(w io.Writer, cres *campaign.Result) error {
			return renderBERCurve(w, scn, cres)
		}}, nil

	case "tradeoff":
		var p TradeoffParams
		if err := decodeParams(e, &p); err != nil {
			return nil, err
		}
		scn, err := NewTradeoff(p)
		if err != nil {
			return nil, fmt.Errorf("spec: scenario %q: %w", e.Name, err)
		}
		return &Built{Entry: e, Scenario: scn, shardSize: 1, Render: func(w io.Writer, cres *campaign.Result) error {
			return RenderTradeoff(w, scn, cres)
		}}, nil

	case "interleave":
		var p InterleaveParams
		if err := decodeParams(e, &p); err != nil {
			return nil, err
		}
		cfg := p.PagesimConfig(f.Seed)
		if e.Sampling != nil {
			// validate() already restricted interleave to the explicit
			// "tilt" method.
			cfg.TiltFactor = e.Sampling.Factor
		}
		scn, err := pagesim.Scenario(cfg)
		if err != nil {
			return nil, fmt.Errorf("spec: scenario %q: %w", e.Name, err)
		}
		return &Built{Entry: e, Scenario: scn, Render: func(w io.Writer, cres *campaign.Result) error {
			return renderInterleave(w, cfg, cres)
		}}, nil

	case "array":
		var p ArrayParams
		if err := decodeParams(e, &p); err != nil {
			return nil, err
		}
		cfg, err := p.SimConfig(f.Seed)
		if err != nil {
			return nil, fmt.Errorf("spec: scenario %q: %w", e.Name, err)
		}
		scn, err := cfg.Scenario()
		if err != nil {
			return nil, fmt.Errorf("spec: scenario %q: %w", e.Name, err)
		}
		// Render and the analytic gate both need the cross-validation;
		// memoize it per result so the word-level chain is solved once
		// (Built is used sequentially, so the memo needs no locking).
		var (
			memoFor *campaign.Result
			memo    *array.CrossValidation
		)
		xval := func(cres *campaign.Result) (*array.CrossValidation, error) {
			if cres == memoFor {
				return memo, nil
			}
			v, err := cfg.CrossValidate(cres, 0)
			if err != nil {
				return nil, err
			}
			memoFor, memo = cres, v
			return v, nil
		}
		b := &Built{Entry: e, Scenario: scn, Render: func(w io.Writer, cres *campaign.Result) error {
			v, err := xval(cres)
			if err != nil {
				return err
			}
			return renderArray(w, cfg, v, cres)
		}}
		// Scrubbed duplex carries a documented ~1% chain-vs-simulator
		// model gap (see array.SimConfig), so the analytic gate would
		// fail a correct spec once enough trials shrink the Wilson
		// band below it; default the check off there and let explicit
		// validate_analytic: true opt back in.
		word := cfg.Memory.Word
		gapRegime := word.Arrangement == core.Duplex && word.ScrubPeriodSeconds > 0
		validate := !gapRegime
		if p.ValidateAnalytic != nil {
			validate = *p.ValidateAnalytic
		}
		if validate {
			b.checks = append(b.checks, func(cres *campaign.Result) error {
				v, err := xval(cres)
				if err != nil {
					return err
				}
				return v.Check()
			})
		}
		return b, nil

	case "experiments":
		var p ExperimentsParams
		if err := decodeParams(e, &p); err != nil {
			return nil, err
		}
		exps := expdata.All()
		if len(p.IDs) > 0 {
			exps = exps[:0:0]
			for _, id := range p.IDs {
				exp, ok := expdata.ByID(id)
				if !ok {
					return nil, fmt.Errorf("spec: scenario %q: unknown experiment %q", e.Name, id)
				}
				exps = append(exps, exp)
			}
		}
		// The scenario name must encode the experiment ID list, not
		// just the entry name, so a checkpoint written for one ID set
		// is rejected when the spec is edited to run a different one.
		ids := make([]string, len(exps))
		for i, exp := range exps {
			ids[i] = exp.ID
		}
		scn, err := expdata.Scenario(e.Name+":experiments:"+strings.Join(ids, ","), exps)
		if err != nil {
			return nil, fmt.Errorf("spec: scenario %q: %w", e.Name, err)
		}
		return &Built{Entry: e, Scenario: scn, shardSize: 1, Render: func(w io.Writer, cres *campaign.Result) error {
			return renderExperiments(w, exps, cres)
		}}, nil
	}
	return nil, fmt.Errorf("spec: scenario %q has unknown kind %q", e.Name, e.Kind)
}

// BuildAll compiles every entry, expanding any remaining matrix
// entries first (a no-op for files from Parse, which are pre-expanded).
func (f *File) BuildAll() ([]*Built, error) {
	if err := f.Expand(); err != nil {
		return nil, err
	}
	var out []*Built
	for _, e := range f.Scenarios {
		b, err := Build(e, f)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}

// renderMemsim summarizes a fault-injection campaign.
func renderMemsim(w io.Writer, cfg memsim.Config, cres *campaign.Result) error {
	cfg.Trials = cres.Trials // early stop may have trimmed the campaign
	res := memsim.ResultFromCampaign(cfg, cres)
	arrangement := "simplex"
	if cfg.Duplex {
		arrangement = "duplex"
	}
	fmt.Fprintf(w, "code:            %v (%s)\n", cfg.Code, arrangement)
	fmt.Fprintf(w, "trials:          %d of %d requested over %g h", cres.Trials, cres.Requested, cfg.Horizon)
	if cres.EarlyStopped {
		fmt.Fprint(w, "  [early stop]")
	}
	if cres.ResumedTrials > 0 {
		fmt.Fprintf(w, "  [%d resumed]", cres.ResumedTrials)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "faults injected: %d SEUs, %d permanent\n", res.SEUs, res.PermanentFaults)
	if res.ScrubOps > 0 {
		fmt.Fprintf(w, "scrubs:          %d passes, %d entrenched mis-corrections\n", res.ScrubOps, res.ScrubMiscorrections)
	}
	fmt.Fprintf(w, "outcomes:        %d correct, %d wrong output, %d no output\n", res.Correct, res.WrongOutput, res.NoOutput)
	lo, hi := memsim.WilsonInterval(res.WrongOutput+res.NoOutput, res.Trials, 1.96)
	fmt.Fprintf(w, "fail fraction:   %.4e  (95%% CI [%.4e, %.4e])\n", res.FailFraction(), lo, hi)
	clo, chi := memsim.WilsonInterval(res.CapabilityExceeded, res.Trials, 1.96)
	fmt.Fprintf(w, "cap. exceeded:   %.4e  (95%% CI [%.4e, %.4e])  paper-BER %.4e\n",
		res.CapabilityExceededFraction(), clo, chi, res.PaperBER())
	if cfg.TiltFactor > 1 {
		// The lines above count events in the biased measure; the
		// weighted estimator below is the unbiased answer.
		wrong := cres.Weights[memsim.CounterWrongOutput]
		noOut := cres.Weights[memsim.CounterNoOutput]
		fail := campaign.Moments{WSum: wrong.WSum + noOut.WSum, WSum2: wrong.WSum2 + noOut.WSum2}
		fmt.Fprintf(w, "importance:      tilt factor %.6g (counts above are in the biased measure)\n", cfg.TiltFactor)
		fmt.Fprintf(w, "  fail fraction: %s\n", weightedLine(fail, cres.Trials))
		fmt.Fprintf(w, "  cap. exceeded: %s\n", weightedLine(cres.Weights[memsim.CounterCapabilityExceeded], cres.Trials))
	}
	return nil
}

// weightedLine formats one importance-sampled estimator: the weighted
// estimate, its 95% relative error, and the effective sample size.
func weightedLine(m campaign.Moments, trials int) string {
	if m.WSum <= 0 {
		return "0  (no weighted events)"
	}
	p := m.WSum / float64(trials)
	se := campaign.WeightedStdErr(m, trials)
	return fmt.Sprintf("%.4e ±%.1f%% RE  (ESS %.0f of %d trials)", p, 100*1.96*se/p, m.ESS(), trials)
}

// renderInterleave summarizes a page-level burst/SEU/stuck-column
// campaign.
func renderInterleave(w io.Writer, cfg pagesim.Config, cres *campaign.Result) error {
	page, err := cfg.NewPage()
	if err != nil {
		return err
	}
	res := pagesim.ResultFromCampaign(cfg, cres)
	code := page.Code()
	fmt.Fprintf(w, "page:            RS(%d,%d)/m=%d x depth %d (%d data symbols, correctable burst %d symbols)\n",
		code.N(), code.K(), code.Field().M(), page.Depth(), page.DataSymbols(), page.CorrectableBurst())
	fmt.Fprintf(w, "trials:          %d of %d requested over %g h", cres.Trials, cres.Requested, cfg.Horizon)
	if cres.EarlyStopped {
		fmt.Fprint(w, "  [early stop]")
	}
	if cres.ResumedTrials > 0 {
		fmt.Fprintf(w, "  [%d resumed]", cres.ResumedTrials)
	}
	fmt.Fprintln(w)
	burstDesc := fmt.Sprintf("%d bits each", cfg.BurstBits)
	if cfg.BurstDist == "geometric" {
		burstDesc = fmt.Sprintf("geometric, mean %g bits", cfg.BurstMeanBits)
	}
	fmt.Fprintf(w, "faults injected: %d SEUs, %d bursts (%s), %d stuck columns\n",
		res.SEUs, res.Bursts, burstDesc, res.StuckColumns)
	if res.ScrubOps > 0 {
		fmt.Fprintf(w, "scrubs:          %d passes\n", res.ScrubOps)
	}
	if res.ScrubDecodeErrors > 0 {
		// Structural failures are impossible for a validated config; a
		// nonzero counter means scrub passes were abandoned and must
		// not hide in the totals.
		fmt.Fprintf(w, "scrub errors:    %d passes abandoned on decode failure\n", res.ScrubDecodeErrors)
	}
	if cfg.Detection != "" && cfg.Detection != pagesim.DetectImmediate {
		policy := cfg.Detection
		if policy == pagesim.DetectLatency {
			policy = fmt.Sprintf("%s (%g h after strike)", policy, cfg.DetectionLatency)
		}
		fmt.Fprintf(w, "detection:       %s; %d columns located, %d decodes saw unlocated stuck columns\n",
			policy, res.LocatedColumns, res.StuckUnlocatedReads)
	}
	fmt.Fprintf(w, "outcomes:        %d correct, %d lost (%d silent), %d symbols corrected, %d failed stripes\n",
		res.PageCorrect, res.PageLoss, res.SilentLoss, res.CorrectedSymbols, res.FailedStripes)
	lo, hi := campaign.Wilson(int64(res.PageLoss), int64(res.Trials), 1.96)
	fmt.Fprintf(w, "loss fraction:   %.4e  (95%% CI [%.4e, %.4e])\n", res.LossFraction(), lo, hi)
	if cfg.TiltFactor > 1 {
		fmt.Fprintf(w, "importance:      tilt factor %.6g (counts above are in the biased measure)\n", cfg.TiltFactor)
		fmt.Fprintf(w, "  loss fraction: %s\n", weightedLine(cres.Weights[pagesim.CounterPageLoss], cres.Trials))
		fmt.Fprintf(w, "  silent loss:   %s\n", weightedLine(cres.Weights[pagesim.CounterSilentLoss], cres.Trials))
	}
	if res.SingleBurstTrials > 0 {
		fmt.Fprintf(w, "single-burst:    %d trials, %d losses (guarantee: %d-symbol bursts always correct)\n",
			res.SingleBurstTrials, res.SingleBurstLosses, page.CorrectableBurst())
	}
	return nil
}

// renderArray summarizes the whole-memory cross-validation: analytic
// vs Monte Carlo at the word and memory level.
func renderArray(w io.Writer, cfg array.SimConfig, v *array.CrossValidation, cres *campaign.Result) error {
	overhead, err := cfg.Memory.Overhead()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "memory:          %d bytes data = %d words of %v (%.3fx stored overhead)\n",
		cfg.Memory.DataBytes, v.Words, cfg.Memory.Word.Code, overhead)
	fmt.Fprintf(w, "trials:          %d of %d requested over %g h", cres.Trials, cres.Requested, cfg.Hours)
	if cres.EarlyStopped {
		fmt.Fprint(w, "  [early stop]")
	}
	if cres.ResumedTrials > 0 {
		fmt.Fprintf(w, "  [%d resumed]", cres.ResumedTrials)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "word fail:       MC %.4e (95%% CI [%.4e, %.4e])  analytic %.4e\n",
		v.WordFailMC, v.WordFailLo, v.WordFailHi, v.WordFailAnalytic)
	fmt.Fprintf(w, "any-word fail:   MC %.4e (95%% CI [%.4e, %.4e])  analytic %.4e\n",
		v.AnyWordFailMC, v.AnyWordFailLo, v.AnyWordFailHi, v.AnyWordFailAnalytic)
	verdict := "agrees"
	if !v.Agrees {
		verdict = "DISAGREES"
	}
	fmt.Fprintf(w, "cross-check:     analytic %s with the Monte Carlo band\n", verdict)
	return nil
}

// renderMBU summarizes a burst campaign as a table.
func renderMBU(w io.Writer, systems []mbusim.System, cres *campaign.Result) error {
	out := mbusim.ResultsFromCampaign(systems, cres)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "system\tstored bits\ttrials\tmean events\tlost\tloss fraction")
	for _, r := range out {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.2f\t%d\t%.4f\n",
			r.Name, r.StoredBits, r.Trials, r.MeanEvents, r.Lost, r.LossFraction)
	}
	return tw.Flush()
}

// renderBERCurve prints the curve as TSV.
func renderBERCurve(w io.Writer, scn *BERCurve, cres *campaign.Result) error {
	xs, ys := cres.SeriesPoints(SeriesBER)
	return textplot.WriteTSV(w, scn.XLabel(), []textplot.Series{
		{Label: scn.Config().String(), X: xs, Y: ys},
	})
}

// RenderTradeoff prints the design-space table (shared by the
// "tradeoff" spec kind and cmd/tradeoff, so the two outputs cannot
// drift). Arrangement groups are separated by a blank line, matching
// the historical cmd/tradeoff output.
func RenderTradeoff(w io.Writer, scn *Tradeoff, cres *campaign.Result) error {
	p := scn.Params()
	fmt.Fprintf(w, "design space for k=%d data symbols (m=%d), lambda=%g/bit/day, lambdaE=%g/sym/day, Tsc=%gs, horizon %gh\n\n",
		p.K, p.M, p.SEUPerBit, p.PermPerSym, p.ScrubSec, p.Hours)
	fmt.Fprintf(w, "%-22s %12s %14s %10s %8s %9s\n",
		"arrangement", "BER(h)", "MTTDL(h)", "Td cycles", "gates", "overhead")
	lastArrangement := scn.Candidates()[0].Arrangement
	for i, c := range scn.Candidates() {
		if c.Arrangement != lastArrangement {
			fmt.Fprintln(w)
			lastArrangement = c.Arrangement
		}
		ber, mttdl, cycles, gates, overhead, ok := scn.MetricsFor(cres, i)
		if !ok {
			return fmt.Errorf("spec: tradeoff candidate %s missing from campaign result", c.Label())
		}
		fmt.Fprintf(w, "%-22s %12.3e %s %10.0f %8.0f %8.2fx\n",
			c.Label(), ber, FormatMTTDL(mttdl), cycles, gates, overhead)
	}
	return nil
}

// renderExperiments prints each experiment like cmd/sweep does.
func renderExperiments(w io.Writer, exps []expdata.Experiment, cres *campaign.Result) error {
	results, err := expdata.ResultsFromCampaign(exps, cres)
	if err != nil {
		return err
	}
	for i, e := range exps {
		fmt.Fprintf(w, "=== %s: %s ===\n", e.ID, e.Title)
		fmt.Fprint(w, results[i].Plot(e.Title).Render())
		for _, note := range results[i].Notes {
			fmt.Fprintf(w, "  note: %s\n", note)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// SortedCounters formats a result's counters, one "name value" line
// each, for quick inspection.
func SortedCounters(cres *campaign.Result) []string {
	names := cres.CounterNames()
	sort.Strings(names)
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = fmt.Sprintf("%s %d", n, cres.Counters[n])
	}
	return out
}
