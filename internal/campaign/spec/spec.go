// Package spec runs declarative multi-scenario campaign files: a JSON
// document names a list of scenarios — Monte Carlo fault injection
// (memsim), multi-bit-upset comparisons (mbusim), analytic BER curves
// and design-space sweeps, or whole registry experiments — and the
// package builds each one into a campaign.Scenario for the shared
// engine. Adding a new workload to a study means adding an entry to a
// spec file, not writing a new binary.
//
// Schema (see examples/campaign/ for runnable files):
//
//	{
//	  "seed": 1,
//	  "workers": 0,
//	  "scenarios": [
//	    {
//	      "name": "ber-transient",
//	      "kind": "bercurve",
//	      "params": {"arrangement": "duplex", "seu_per_bit_day": 1.7e-5,
//	                 "scrub_seconds": 3600, "hours": 48}
//	    },
//	    {
//	      "name": "ssmm-mission",
//	      "kind": "memsim",
//	      "params": {"duplex": true, "lambda_bit_per_hour": 6e-4,
//	                 "lambda_symbol_per_hour": 2e-4, "scrub_period_hours": 4,
//	                 "exponential_scrub": true, "horizon_hours": 48,
//	                 "trials": 10000},
//	      "expect": [{"counter": "capability_exceeded",
//	                  "min_fraction": 0.05, "max_fraction": 0.09}]
//	    }
//	  ]
//	}
//
// Kinds: "memsim", "mbusim", "bercurve", "tradeoff", "experiments".
// Each entry may carry a checkpoint path, an early-stop rule and
// expectations — tolerance bands on counter fractions that turn a
// campaign into a pass/fail gate (the nightly CI workflow uses this
// to detect probability drift).
package spec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"text/tabwriter"

	"repro/internal/campaign"
	"repro/internal/expdata"
	"repro/internal/gf"
	"repro/internal/mbusim"
	"repro/internal/memsim"
	"repro/internal/rs"
	"repro/internal/textplot"
)

// File is a parsed campaign spec.
type File struct {
	// Seed is the default base seed for entries that do not set one.
	Seed int64 `json:"seed,omitempty"`
	// Workers and ShardSize are engine defaults for every entry
	// (0 = engine defaults).
	Workers   int     `json:"workers,omitempty"`
	ShardSize int     `json:"shard_size,omitempty"`
	Scenarios []Entry `json:"scenarios"`
}

// Entry is one scenario of a spec file.
type Entry struct {
	Name       string          `json:"name"`
	Kind       string          `json:"kind"`
	Params     json.RawMessage `json:"params,omitempty"`
	Checkpoint string          `json:"checkpoint,omitempty"`
	Stop       *Stop           `json:"stop,omitempty"`
	Expect     []Expectation   `json:"expect,omitempty"`
}

// Stop mirrors campaign.EarlyStop in spec syntax.
type Stop struct {
	Counter      string  `json:"counter"`
	RelHalfWidth float64 `json:"rel_half_width"`
	Z            float64 `json:"z,omitempty"`
	MinTrials    int     `json:"min_trials,omitempty"`
}

// Expectation is a tolerance band on a counter fraction; a result
// outside the band fails the campaign run.
type Expectation struct {
	Counter     string   `json:"counter"`
	MinFraction *float64 `json:"min_fraction,omitempty"`
	MaxFraction *float64 `json:"max_fraction,omitempty"`
}

// Check evaluates the expectation against a result.
func (e Expectation) Check(cres *campaign.Result) error {
	frac := cres.Fraction(e.Counter)
	if e.MinFraction != nil && frac < *e.MinFraction {
		return fmt.Errorf("counter %q fraction %.6e below expected minimum %.6e (%d/%d trials)",
			e.Counter, frac, *e.MinFraction, cres.Counter(e.Counter), cres.Trials)
	}
	if e.MaxFraction != nil && frac > *e.MaxFraction {
		return fmt.Errorf("counter %q fraction %.6e above expected maximum %.6e (%d/%d trials)",
			e.Counter, frac, *e.MaxFraction, cres.Counter(e.Counter), cres.Trials)
	}
	return nil
}

// Load reads and validates a spec file.
func Load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	return Parse(data)
}

// Parse decodes and validates spec bytes. Unknown fields are errors,
// so typos fail loudly instead of silently running defaults.
func Parse(data []byte) (*File, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var f File
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("spec: parse: %w", err)
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return &f, nil
}

// Validate checks structural invariants (names, kinds, expectations).
func (f *File) Validate() error {
	if len(f.Scenarios) == 0 {
		return fmt.Errorf("spec: no scenarios")
	}
	seen := make(map[string]bool)
	for i, e := range f.Scenarios {
		if e.Name == "" {
			return fmt.Errorf("spec: scenario %d has no name", i)
		}
		if seen[e.Name] {
			return fmt.Errorf("spec: duplicate scenario name %q", e.Name)
		}
		seen[e.Name] = true
		switch e.Kind {
		case "memsim", "mbusim", "bercurve", "tradeoff", "experiments":
		default:
			return fmt.Errorf("spec: scenario %q has unknown kind %q", e.Name, e.Kind)
		}
		if e.Stop != nil && e.Stop.Counter == "" {
			return fmt.Errorf("spec: scenario %q early stop needs a counter", e.Name)
		}
		for _, ex := range e.Expect {
			if ex.Counter == "" {
				return fmt.Errorf("spec: scenario %q expectation needs a counter", e.Name)
			}
			if ex.MinFraction == nil && ex.MaxFraction == nil {
				return fmt.Errorf("spec: scenario %q expectation on %q has no bound", e.Name, ex.Counter)
			}
		}
	}
	return nil
}

// Built is a spec entry compiled to a runnable scenario.
type Built struct {
	Entry    Entry
	Scenario campaign.Scenario
	// Render writes the scenario's human-readable summary.
	Render func(w io.Writer, cres *campaign.Result) error
	// shardSize is the kind's preferred shard size when the file does
	// not set one: analytic kinds have few, heavyweight trials and
	// shard one per trial so they actually parallelize.
	shardSize int
}

// EngineConfig assembles the engine configuration for this entry
// under the file-level defaults.
func (b *Built) EngineConfig(f *File) campaign.Config {
	cfg := campaign.Config{
		Workers:    f.Workers,
		ShardSize:  f.ShardSize,
		Checkpoint: b.Entry.Checkpoint,
	}
	if cfg.ShardSize == 0 {
		cfg.ShardSize = b.shardSize
	}
	if s := b.Entry.Stop; s != nil {
		cfg.Stop = &campaign.EarlyStop{
			Counter:      s.Counter,
			RelHalfWidth: s.RelHalfWidth,
			Z:            s.Z,
			MinTrials:    s.MinTrials,
		}
	}
	return cfg
}

// CheckExpectations evaluates every tolerance band of the entry.
func (b *Built) CheckExpectations(cres *campaign.Result) []error {
	var errs []error
	for _, ex := range b.Entry.Expect {
		if err := ex.Check(cres); err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", b.Entry.Name, err))
		}
	}
	return errs
}

// decodeParams strictly unmarshals entry params into dst.
func decodeParams(e Entry, dst any) error {
	raw := e.Params
	if len(raw) == 0 {
		raw = []byte("{}")
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("spec: scenario %q params: %w", e.Name, err)
	}
	return nil
}

// MemsimParams is the "memsim" kind: Monte Carlo fault injection
// through the real codec, scrubber and arbiter. Rates are per hour,
// matching cmd/memsim.
type MemsimParams struct {
	N            int     `json:"n"`
	K            int     `json:"k"`
	M            int     `json:"m"`
	Duplex       bool    `json:"duplex"`
	LambdaBit    float64 `json:"lambda_bit_per_hour"`
	LambdaSymbol float64 `json:"lambda_symbol_per_hour"`
	ScrubHours   float64 `json:"scrub_period_hours"`
	ExpScrub     bool    `json:"exponential_scrub"`
	Latency      float64 `json:"detection_latency_hours"`
	CrossRepair  bool    `json:"cross_repair"`
	Horizon      float64 `json:"horizon_hours"`
	Trials       int     `json:"trials"`
	Seed         *int64  `json:"seed,omitempty"`
}

// MemsimConfig converts the params (with defaults) into a simulator
// configuration.
func (p MemsimParams) MemsimConfig(defaultSeed int64) (memsim.Config, error) {
	applyCodeDefaults(&p.N, &p.K, &p.M)
	field, err := gf.NewField(p.M)
	if err != nil {
		return memsim.Config{}, err
	}
	code, err := rs.New(field, p.N, p.K)
	if err != nil {
		return memsim.Config{}, err
	}
	seed := defaultSeed
	if p.Seed != nil {
		seed = *p.Seed
	}
	return memsim.Config{
		Code:             code,
		Duplex:           p.Duplex,
		LambdaBit:        p.LambdaBit,
		LambdaSymbol:     p.LambdaSymbol,
		ScrubPeriod:      p.ScrubHours,
		ExponentialScrub: p.ExpScrub,
		DetectionLatency: p.Latency,
		CrossRepair:      p.CrossRepair,
		Horizon:          p.Horizon,
		Trials:           p.Trials,
		Seed:             seed,
	}, nil
}

// MBUParams is the "mbusim" kind: burst injection through the default
// protection-scheme comparison set.
type MBUParams struct {
	EventsPerKilobit float64 `json:"events_per_kilobit"`
	BurstBits        int     `json:"burst_bits"`
	Trials           int     `json:"trials"`
	Seed             *int64  `json:"seed,omitempty"`
}

// ExperimentsParams is the "experiments" kind: run registered paper
// experiments by ID (empty means all).
type ExperimentsParams struct {
	IDs []string `json:"ids,omitempty"`
}

// Build compiles one entry under the file defaults.
func Build(e Entry, f *File) (*Built, error) {
	switch e.Kind {
	case "memsim":
		var p MemsimParams
		if err := decodeParams(e, &p); err != nil {
			return nil, err
		}
		cfg, err := p.MemsimConfig(f.Seed)
		if err != nil {
			return nil, fmt.Errorf("spec: scenario %q: %w", e.Name, err)
		}
		scn, err := cfg.Scenario()
		if err != nil {
			return nil, fmt.Errorf("spec: scenario %q: %w", e.Name, err)
		}
		return &Built{Entry: e, Scenario: scn, Render: func(w io.Writer, cres *campaign.Result) error {
			return renderMemsim(w, cfg, cres)
		}}, nil

	case "mbusim":
		var p MBUParams
		if err := decodeParams(e, &p); err != nil {
			return nil, err
		}
		seed := f.Seed
		if p.Seed != nil {
			seed = *p.Seed
		}
		systems, err := mbusim.DefaultSystems()
		if err != nil {
			return nil, fmt.Errorf("spec: scenario %q: %w", e.Name, err)
		}
		cfg := mbusim.Config{
			EventsPerKilobit: p.EventsPerKilobit,
			BurstBits:        p.BurstBits,
			Trials:           p.Trials,
			Seed:             seed,
		}
		scn, err := mbusim.Scenario(cfg, systems)
		if err != nil {
			return nil, fmt.Errorf("spec: scenario %q: %w", e.Name, err)
		}
		return &Built{Entry: e, Scenario: scn, Render: func(w io.Writer, cres *campaign.Result) error {
			return renderMBU(w, systems, cres)
		}}, nil

	case "bercurve":
		var p BERCurveParams
		if err := decodeParams(e, &p); err != nil {
			return nil, err
		}
		scn, err := NewBERCurve(p)
		if err != nil {
			return nil, fmt.Errorf("spec: scenario %q: %w", e.Name, err)
		}
		return &Built{Entry: e, Scenario: scn, shardSize: 1, Render: func(w io.Writer, cres *campaign.Result) error {
			return renderBERCurve(w, scn, cres)
		}}, nil

	case "tradeoff":
		var p TradeoffParams
		if err := decodeParams(e, &p); err != nil {
			return nil, err
		}
		scn, err := NewTradeoff(p)
		if err != nil {
			return nil, fmt.Errorf("spec: scenario %q: %w", e.Name, err)
		}
		return &Built{Entry: e, Scenario: scn, shardSize: 1, Render: func(w io.Writer, cres *campaign.Result) error {
			return RenderTradeoff(w, scn, cres)
		}}, nil

	case "experiments":
		var p ExperimentsParams
		if err := decodeParams(e, &p); err != nil {
			return nil, err
		}
		exps := expdata.All()
		if len(p.IDs) > 0 {
			exps = exps[:0:0]
			for _, id := range p.IDs {
				exp, ok := expdata.ByID(id)
				if !ok {
					return nil, fmt.Errorf("spec: scenario %q: unknown experiment %q", e.Name, id)
				}
				exps = append(exps, exp)
			}
		}
		// The scenario name must encode the experiment ID list, not
		// just the entry name, so a checkpoint written for one ID set
		// is rejected when the spec is edited to run a different one.
		ids := make([]string, len(exps))
		for i, exp := range exps {
			ids[i] = exp.ID
		}
		scn, err := expdata.Scenario(e.Name+":experiments:"+strings.Join(ids, ","), exps)
		if err != nil {
			return nil, fmt.Errorf("spec: scenario %q: %w", e.Name, err)
		}
		return &Built{Entry: e, Scenario: scn, shardSize: 1, Render: func(w io.Writer, cres *campaign.Result) error {
			return renderExperiments(w, exps, cres)
		}}, nil
	}
	return nil, fmt.Errorf("spec: scenario %q has unknown kind %q", e.Name, e.Kind)
}

// BuildAll compiles every entry.
func (f *File) BuildAll() ([]*Built, error) {
	var out []*Built
	for _, e := range f.Scenarios {
		b, err := Build(e, f)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}

// renderMemsim summarizes a fault-injection campaign.
func renderMemsim(w io.Writer, cfg memsim.Config, cres *campaign.Result) error {
	cfg.Trials = cres.Trials // early stop may have trimmed the campaign
	res := memsim.ResultFromCampaign(cfg, cres)
	arrangement := "simplex"
	if cfg.Duplex {
		arrangement = "duplex"
	}
	fmt.Fprintf(w, "code:            %v (%s)\n", cfg.Code, arrangement)
	fmt.Fprintf(w, "trials:          %d of %d requested over %g h", cres.Trials, cres.Requested, cfg.Horizon)
	if cres.EarlyStopped {
		fmt.Fprint(w, "  [early stop]")
	}
	if cres.ResumedTrials > 0 {
		fmt.Fprintf(w, "  [%d resumed]", cres.ResumedTrials)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "faults injected: %d SEUs, %d permanent\n", res.SEUs, res.PermanentFaults)
	if res.ScrubOps > 0 {
		fmt.Fprintf(w, "scrubs:          %d passes, %d entrenched mis-corrections\n", res.ScrubOps, res.ScrubMiscorrections)
	}
	fmt.Fprintf(w, "outcomes:        %d correct, %d wrong output, %d no output\n", res.Correct, res.WrongOutput, res.NoOutput)
	lo, hi := memsim.WilsonInterval(res.WrongOutput+res.NoOutput, res.Trials, 1.96)
	fmt.Fprintf(w, "fail fraction:   %.4e  (95%% CI [%.4e, %.4e])\n", res.FailFraction(), lo, hi)
	clo, chi := memsim.WilsonInterval(res.CapabilityExceeded, res.Trials, 1.96)
	fmt.Fprintf(w, "cap. exceeded:   %.4e  (95%% CI [%.4e, %.4e])  paper-BER %.4e\n",
		res.CapabilityExceededFraction(), clo, chi, res.PaperBER())
	return nil
}

// renderMBU summarizes a burst campaign as a table.
func renderMBU(w io.Writer, systems []mbusim.System, cres *campaign.Result) error {
	out := mbusim.ResultsFromCampaign(systems, cres)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "system\tstored bits\ttrials\tmean events\tlost\tloss fraction")
	for _, r := range out {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.2f\t%d\t%.4f\n",
			r.Name, r.StoredBits, r.Trials, r.MeanEvents, r.Lost, r.LossFraction)
	}
	return tw.Flush()
}

// renderBERCurve prints the curve as TSV.
func renderBERCurve(w io.Writer, scn *BERCurve, cres *campaign.Result) error {
	xs, ys := cres.SeriesPoints(SeriesBER)
	return textplot.WriteTSV(w, scn.XLabel(), []textplot.Series{
		{Label: scn.Config().String(), X: xs, Y: ys},
	})
}

// RenderTradeoff prints the design-space table (shared by the
// "tradeoff" spec kind and cmd/tradeoff, so the two outputs cannot
// drift). Arrangement groups are separated by a blank line, matching
// the historical cmd/tradeoff output.
func RenderTradeoff(w io.Writer, scn *Tradeoff, cres *campaign.Result) error {
	p := scn.Params()
	fmt.Fprintf(w, "design space for k=%d data symbols (m=%d), lambda=%g/bit/day, lambdaE=%g/sym/day, Tsc=%gs, horizon %gh\n\n",
		p.K, p.M, p.SEUPerBit, p.PermPerSym, p.ScrubSec, p.Hours)
	fmt.Fprintf(w, "%-22s %12s %14s %10s %8s %9s\n",
		"arrangement", "BER(h)", "MTTDL(h)", "Td cycles", "gates", "overhead")
	lastArrangement := scn.Candidates()[0].Arrangement
	for i, c := range scn.Candidates() {
		if c.Arrangement != lastArrangement {
			fmt.Fprintln(w)
			lastArrangement = c.Arrangement
		}
		ber, mttdl, cycles, gates, overhead, ok := scn.MetricsFor(cres, i)
		if !ok {
			return fmt.Errorf("spec: tradeoff candidate %s missing from campaign result", c.Label())
		}
		fmt.Fprintf(w, "%-22s %12.3e %s %10.0f %8.0f %8.2fx\n",
			c.Label(), ber, FormatMTTDL(mttdl), cycles, gates, overhead)
	}
	return nil
}

// renderExperiments prints each experiment like cmd/sweep does.
func renderExperiments(w io.Writer, exps []expdata.Experiment, cres *campaign.Result) error {
	results, err := expdata.ResultsFromCampaign(exps, cres)
	if err != nil {
		return err
	}
	for i, e := range exps {
		fmt.Fprintf(w, "=== %s: %s ===\n", e.ID, e.Title)
		fmt.Fprint(w, results[i].Plot(e.Title).Render())
		for _, note := range results[i].Notes {
			fmt.Fprintf(w, "  note: %s\n", note)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// SortedCounters formats a result's counters, one "name value" line
// each, for quick inspection.
func SortedCounters(cres *campaign.Result) []string {
	names := cres.CounterNames()
	sort.Strings(names)
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = fmt.Sprintf("%s %d", n, cres.Counters[n])
	}
	return out
}
