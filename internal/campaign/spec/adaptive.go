package spec

import (
	"fmt"
	"math"

	"repro/internal/campaign"
)

// Adaptive is the file-level adaptive-allocation block:
//
//	"adaptive": {"round_trials": 20000, "max_rounds": 8}
//
// Instead of running every scenario to its full trial count,
// RunAdaptive interleaves them in rounds: each round distributes
// round_trials across the scenarios still short of their stop rule,
// in proportion to their squared relative errors (campaign.Allocate),
// then re-merges and re-decides each stop. Scenarios whose stop rule
// fires drop out; the loop ends when all are done or after max_rounds
// (default 16). Results for scenarios that ran out of budget cover
// the executed prefix (campaign.MergeConfig.AllowIncomplete). The
// whole loop is deterministic for a fixed spec: allocations are
// computed from deterministic merges and trials are bit-identical to
// the single-process stream.
type Adaptive struct {
	// RoundTrials is the trial budget distributed each round.
	RoundTrials int `json:"round_trials"`
	// MaxRounds bounds the loop; 0 means the default of 16.
	MaxRounds int `json:"max_rounds,omitempty"`
}

// defaultMaxRounds bounds an adaptive run whose spec does not say.
const defaultMaxRounds = 16

// adaptiveCell tracks one scenario through the adaptive rounds.
type adaptiveCell struct {
	b    *Built
	plan *campaign.Plan
	path string // partial artifact (the cell's cumulative state)
	ecfg campaign.Config
}

// state evaluates the cell's current estimate from its artifact: the
// folded prefix result (nil before the first round), whether the stop
// rule is satisfied or the trial budget exhausted, and the relative
// error the allocator weighs.
func (c *adaptiveCell) state(dir string) (campaign.CellState, *campaign.Result, error) {
	st := campaign.CellState{Name: c.b.Entry.Name, RelErr: math.Inf(1)}
	p, err := campaign.ReadPartial(c.path)
	if err != nil {
		return st, nil, err
	}
	if p == nil {
		return st, nil, nil
	}
	defer p.Close()
	res, err := campaign.Merge([]*campaign.Partial{p}, campaign.MergeConfig{
		Stop:            c.ecfg.Stop,
		ParamsDigest:    c.ecfg.ParamsDigest,
		AllowIncomplete: true,
	})
	if err != nil {
		return st, nil, err
	}
	st.Trials = res.Trials
	// A merge that early-stopped found the stop satisfied on the
	// executed prefix; a merge covering every requested trial is done
	// regardless.
	st.Done = res.EarlyStopped || res.Trials >= res.Requested
	z := c.ecfg.Stop.Z
	if z == 0 {
		z = 1.96
	}
	st.RelErr = res.RelErr(c.ecfg.Stop.Counter, z)
	return st, res, nil
}

// RunAdaptive executes every built entry under the file's adaptive
// block, writing each scenario's cumulative state as a partial
// artifact under dir, and returns the final merged results aligned
// with builts. logf (optional) receives one progress line per round.
func RunAdaptive(f *File, builts []*Built, dir string, logf func(format string, args ...any)) ([]*campaign.Result, error) {
	ad := f.Adaptive
	if ad == nil {
		return nil, fmt.Errorf("spec: RunAdaptive needs an adaptive block")
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	maxRounds := ad.MaxRounds
	if maxRounds == 0 {
		maxRounds = defaultMaxRounds
	}

	cells := make([]*adaptiveCell, len(builts))
	for i, b := range builts {
		ecfg := b.EngineConfig(f)
		if ecfg.Stop == nil {
			return nil, fmt.Errorf("spec: %s: adaptive allocation requires a stop rule", b.Entry.Name)
		}
		plan, err := campaign.NewPlan(b.Scenario, ecfg.ShardSize, campaign.Whole)
		if err != nil {
			return nil, fmt.Errorf("spec: %s: %w", b.Entry.Name, err)
		}
		plan.ParamsDigest = ecfg.ParamsDigest
		cells[i] = &adaptiveCell{
			b:    b,
			plan: plan,
			path: b.Entry.PartialPath(dir, campaign.Whole),
			ecfg: ecfg,
		}
	}

	for round := 1; round <= maxRounds; round++ {
		states := make([]campaign.CellState, len(cells))
		for i, c := range cells {
			st, _, err := c.state(dir)
			if err != nil {
				return nil, fmt.Errorf("spec: %s: %w", c.b.Entry.Name, err)
			}
			states[i] = st
		}
		alloc := campaign.Allocate(states, ad.RoundTrials)
		open := 0
		for _, a := range alloc {
			if a > 0 {
				open++
			}
		}
		if open == 0 {
			logf("adaptive: round %d: all scenarios satisfied their stop rules", round)
			break
		}
		for i, c := range cells {
			if alloc[i] == 0 {
				continue
			}
			shards := (alloc[i] + c.plan.ShardSize - 1) / c.plan.ShardSize
			logf("adaptive: round %d: %s gets %d trials (%d shards; rel err %.3g over %d trials)",
				round, c.b.Entry.Name, alloc[i], shards, states[i].RelErr, states[i].Trials)
			partial, err := campaign.Execute(c.b.Scenario, c.plan, campaign.ExecConfig{
				Workers:    c.ecfg.Workers,
				Artifact:   c.path,
				FlushEvery: c.ecfg.CheckpointEvery,
				Stop:       c.ecfg.Stop,
				MaxShards:  shards,
			})
			if err != nil {
				return nil, fmt.Errorf("spec: %s: %w", c.b.Entry.Name, err)
			}
			partial.Close()
		}
	}

	results := make([]*campaign.Result, len(cells))
	for i, c := range cells {
		st, res, err := c.state(dir)
		if err != nil {
			return nil, fmt.Errorf("spec: %s: %w", c.b.Entry.Name, err)
		}
		if res == nil {
			return nil, fmt.Errorf("spec: %s: adaptive run produced no trials", c.b.Entry.Name)
		}
		if !st.Done {
			logf("adaptive: %s exhausted the round budget at %d/%d trials (rel err %.3g)",
				c.b.Entry.Name, res.Trials, res.Requested, st.RelErr)
		}
		results[i] = res
	}
	return results, nil
}
