package spec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/campaign"
)

const matrixDoc = `{
  "seed": 21,
  "scenarios": [{
    "name": "page-sweep",
    "kind": "interleave",
    "params": {"burst_per_kilobit_hour": 0.5, "burst_bits": 9,
               "horizon_hours": 24, "trials": 300},
    "matrix": {"n": [18, 20], "depth": [2, 4],
               "scrub_period_hours": [1, 4, 12]},
    "expect": [{"counter": "single_burst_losses", "max_fraction": 0}]
  }]
}`

func TestMatrixExpansion(t *testing.T) {
	f, err := Parse([]byte(matrixDoc))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Scenarios) != 12 {
		t.Fatalf("expanded to %d cells, want 12", len(f.Scenarios))
	}
	// Cells are in odometer order over sorted keys (depth, n,
	// scrub_period_hours), first key slowest.
	wantFirst := "page-sweep/depth=2,n=18,scrub_period_hours=1"
	wantLast := "page-sweep/depth=4,n=20,scrub_period_hours=12"
	if got := f.Scenarios[0].Name; got != wantFirst {
		t.Errorf("first cell %q, want %q", got, wantFirst)
	}
	if got := f.Scenarios[11].Name; got != wantLast {
		t.Errorf("last cell %q, want %q", got, wantLast)
	}
	for _, e := range f.Scenarios {
		if e.Matrix != nil {
			t.Fatalf("cell %q still carries a matrix", e.Name)
		}
		if e.MatrixOrigin != "page-sweep" {
			t.Errorf("cell %q origin %q", e.Name, e.MatrixOrigin)
		}
		if len(e.MatrixParams) != 3 {
			t.Errorf("cell %q has %d assignments", e.Name, len(e.MatrixParams))
		}
		if len(e.Expect) != 1 || e.Expect[0].Counter != "single_burst_losses" {
			t.Errorf("cell %q did not inherit the expectation template", e.Name)
		}
		// Shared defaults from params must survive the merge.
		var p InterleaveParams
		if err := decodeParams(e, &p); err != nil {
			t.Fatalf("cell %q params: %v", e.Name, err)
		}
		if p.BurstBits != 9 || p.Horizon != 24 || p.Trials != 300 {
			t.Errorf("cell %q lost shared defaults: %+v", e.Name, p)
		}
		if p.N != 18 && p.N != 20 {
			t.Errorf("cell %q swept n = %d", e.Name, p.N)
		}
	}
}

func TestMatrixCellsAreDistinctScenarios(t *testing.T) {
	f, err := Parse([]byte(matrixDoc))
	if err != nil {
		t.Fatal(err)
	}
	built, err := f.BuildAll()
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, b := range built {
		if names[b.Scenario.Name()] {
			t.Errorf("duplicate engine scenario name %q", b.Scenario.Name())
		}
		names[b.Scenario.Name()] = true
	}
}

func TestMatrixValidation(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"empty value list", `{"scenarios":[{"name":"a","kind":"interleave",
			"matrix":{"depth":[]}}]}`},
		{"key collides with params", `{"scenarios":[{"name":"a","kind":"interleave",
			"params":{"depth":2},"matrix":{"depth":[1,2]}}]}`},
		{"params not an object", `{"scenarios":[{"name":"a","kind":"interleave",
			"params":[1],"matrix":{"depth":[1]}}]}`},
		{"unnamed matrix", `{"scenarios":[{"kind":"interleave","matrix":{"depth":[1]}}]}`},
		{"cells collide across entries", `{"scenarios":[
			{"name":"a/depth=1","kind":"memsim","params":{"trials":1,"horizon_hours":1}},
			{"name":"a","kind":"interleave","matrix":{"depth":[1]},
			 "params":{"trials":1,"horizon_hours":1}}]}`},
		{"cells collide after sanitization", `{"scenarios":[
			{"name":"a","kind":"interleave","matrix":{"label":["x/y","x-y"]},
			 "params":{"trials":1,"horizon_hours":1}}]}`},
		{"entries collide on artifact path", `{"scenarios":[
			{"name":"a/b","kind":"memsim","params":{"trials":1,"horizon_hours":1}},
			{"name":"a-b","kind":"memsim","params":{"trials":1,"horizon_hours":1}}]}`},
	}
	for _, c := range cases {
		if _, err := Parse([]byte(c.doc)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}

	// A runaway matrix must be rejected before it becomes 4^6 campaigns.
	vals := `[1,2,3,4]`
	doc := fmt.Sprintf(`{"scenarios":[{"name":"a","kind":"interleave",
		"matrix":{"a":%s,"b":%s,"c":%s,"d":%s,"e":%s,"f":%s}}]}`,
		vals, vals, vals, vals, vals, vals)
	if _, err := Parse([]byte(doc)); err == nil || !strings.Contains(err.Error(), "expands to more than") {
		t.Errorf("runaway matrix: got %v", err)
	}
}

// TestReplicatesExpandToSeedCells: "replicates": N becomes a
// synthesized seed axis — N identical configurations under
// independent RNG streams whose spread measures the CI of the CI.
func TestReplicatesExpandToSeedCells(t *testing.T) {
	doc := `{"seed": 40, "scenarios": [{
	  "name": "rep", "kind": "interleave", "replicates": 3,
	  "params": {"depth": 2, "burst_per_kilobit_hour": 0.5, "burst_bits": 9,
	             "horizon_hours": 4, "trials": 200},
	  "expect": [{"counter": "single_burst_losses", "max_fraction": 0}]
	}]}`
	f, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Scenarios) != 3 {
		t.Fatalf("expanded to %d cells, want 3", len(f.Scenarios))
	}
	for r, e := range f.Scenarios {
		want := fmt.Sprintf("rep/seed=%d", 40+r)
		if e.Name != want {
			t.Errorf("cell %d named %q, want %q", r, e.Name, want)
		}
		if e.MatrixOrigin != "rep" || len(e.Expect) != 1 {
			t.Errorf("cell %q lost its template: origin %q, %d expectations", e.Name, e.MatrixOrigin, len(e.Expect))
		}
	}
	built, err := f.BuildAll()
	if err != nil {
		t.Fatal(err)
	}
	// The replicate cells must run distinct RNG streams but identical
	// configurations: same trial counts, different results.
	var fractions []float64
	for _, b := range built {
		cres, err := campaign.Run(b.Scenario, b.EngineConfig(f))
		if err != nil {
			t.Fatal(err)
		}
		if cres.Trials != 200 {
			t.Errorf("%s ran %d trials", b.Entry.Name, cres.Trials)
		}
		fractions = append(fractions, cres.Fraction("page_loss"))
	}
	if fractions[0] == fractions[1] && fractions[1] == fractions[2] {
		t.Errorf("replicates produced identical estimates %v; seeds not independent", fractions)
	}

	// Replicates compose with a matrix (seed becomes one more axis)...
	comp := `{"scenarios": [{
	  "name": "grid", "kind": "interleave", "replicates": 2,
	  "params": {"trials": 10, "horizon_hours": 1},
	  "matrix": {"depth": [1, 2]}
	}]}`
	fc, err := Parse([]byte(comp))
	if err != nil {
		t.Fatal(err)
	}
	if len(fc.Scenarios) != 4 {
		t.Fatalf("matrix x replicates expanded to %d cells, want 4", len(fc.Scenarios))
	}
	if got := fc.Scenarios[0].Name; got != "grid/depth=1,seed=0" {
		t.Errorf("first composed cell %q", got)
	}

	// ...and the params seed, when set, is the replicate base.
	seeded := `{"seed": 9, "scenarios": [{
	  "name": "s", "kind": "mbusim", "replicates": 2,
	  "params": {"events_per_kilobit": 1, "burst_bits": 4, "trials": 10, "seed": 100}
	}]}`
	fs, err := Parse([]byte(seeded))
	if err != nil {
		t.Fatal(err)
	}
	if got := fs.Scenarios[1].Name; got != "s/seed=101" {
		t.Errorf("params-seeded replicate cell %q, want s/seed=101", got)
	}
}

func TestReplicatesValidation(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"unseeded kind", `{"scenarios":[{"name":"a","kind":"bercurve","replicates":2,
			"params":{"hours":24}}]}`},
		{"negative", `{"scenarios":[{"name":"a","kind":"memsim","replicates":-1,
			"params":{"trials":10,"horizon_hours":1}}]}`},
		{"seed swept twice", `{"scenarios":[{"name":"a","kind":"memsim","replicates":2,
			"params":{"trials":10,"horizon_hours":1},"matrix":{"seed":[1,2]}}]}`},
		// Must be rejected before the seed list is allocated, not OOM.
		{"runaway replicates", `{"scenarios":[{"name":"a","kind":"memsim","replicates":2000000000,
			"params":{"trials":10,"horizon_hours":1}}]}`},
	}
	for _, c := range cases {
		if _, err := Parse([]byte(c.doc)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

// TestMatrixNullParams: "params": null must expand like absent
// params, not panic on a nil map.
func TestMatrixNullParams(t *testing.T) {
	doc := `{"scenarios":[{
	  "name": "sweep", "kind": "interleave", "params": null,
	  "matrix": {"trials": [10], "horizon_hours": [1]}
	}]}`
	f, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Scenarios) != 1 {
		t.Fatalf("expanded to %d cells, want 1", len(f.Scenarios))
	}
	if _, err := f.BuildAll(); err != nil {
		t.Fatal(err)
	}
}

func TestMatrixCheckpointsPerCell(t *testing.T) {
	doc := `{"scenarios":[{
	  "name": "sweep", "kind": "interleave", "checkpoint": "cp.json",
	  "params": {"trials": 10, "horizon_hours": 1},
	  "matrix": {"depth": [1, 2]}
	}]}`
	f, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	cps := map[string]bool{}
	for _, e := range f.Scenarios {
		if e.Checkpoint == "" || cps[e.Checkpoint] {
			t.Errorf("cell %q checkpoint %q not unique", e.Name, e.Checkpoint)
		}
		cps[e.Checkpoint] = true
	}
}

// TestMatrixGridDeterministicAcrossWorkerCounts is the acceptance
// gate: one matrix entry expands to 12 scenarios over RS(n,k) x
// interleaving depth x scrub interval, and every cell's campaign
// result is bit-identical for any worker count.
func TestMatrixGridDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) []*campaign.Result {
		f, err := Parse([]byte(matrixDoc))
		if err != nil {
			t.Fatal(err)
		}
		f.Workers = workers
		built, err := f.BuildAll()
		if err != nil {
			t.Fatal(err)
		}
		if len(built) != 12 {
			t.Fatalf("built %d scenarios, want 12", len(built))
		}
		var out []*campaign.Result
		for _, b := range built {
			cres, err := campaign.Run(b.Scenario, b.EngineConfig(f))
			if err != nil {
				t.Fatal(err)
			}
			if errs := b.CheckExpectations(cres); len(errs) != 0 {
				t.Errorf("%s: %v", b.Entry.Name, errs)
			}
			out = append(out, cres)
		}
		return out
	}
	one, eight := run(1), run(8)
	for i := range one {
		if !reflect.DeepEqual(one[i], eight[i]) {
			t.Errorf("cell %d differs between 1 and 8 workers:\n%+v\nvs\n%+v", i, one[i], eight[i])
		}
	}
}

func TestRenderGrid(t *testing.T) {
	f, err := Parse([]byte(matrixDoc))
	if err != nil {
		t.Fatal(err)
	}
	built, err := f.BuildAll()
	if err != nil {
		t.Fatal(err)
	}
	var cells []GridCell
	for _, b := range built {
		cres, err := campaign.Run(b.Scenario, b.EngineConfig(f))
		if err != nil {
			t.Fatal(err)
		}
		cells = append(cells, GridCell{Built: b, Result: cres})
	}
	var buf bytes.Buffer
	if err := RenderGrid(&buf, cells); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"matrix page-sweep", "depth", "scrub_period_hours", "trials", "single_burst_losses", "12 cells"} {
		if !strings.Contains(out, want) {
			t.Errorf("grid missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "\n") < 13 { // header + 12 rows
		t.Errorf("grid too short:\n%s", out)
	}

	if err := RenderGrid(&buf, nil); err == nil {
		t.Error("empty grid accepted")
	}
	mixed := []GridCell{cells[0], {Built: &Built{Entry: Entry{MatrixOrigin: "other"}}, Result: cells[1].Result}}
	if err := RenderGrid(&buf, mixed); err == nil {
		t.Error("mixed-origin grid accepted")
	}
}

// TestRenderGridHeatmap folds the 12-cell grid into a heatmap: rows
// sweep (depth, n), columns sweep scrub_period_hours, shading the
// page-loss fraction.
func TestRenderGridHeatmap(t *testing.T) {
	f, err := Parse([]byte(matrixDoc))
	if err != nil {
		t.Fatal(err)
	}
	built, err := f.BuildAll()
	if err != nil {
		t.Fatal(err)
	}
	var cells []GridCell
	for _, b := range built {
		cres, err := campaign.Run(b.Scenario, b.EngineConfig(f))
		if err != nil {
			t.Fatal(err)
		}
		cells = append(cells, GridCell{Built: b, Result: cres})
	}
	var buf bytes.Buffer
	if err := RenderGridHeatmap(&buf, cells); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"matrix page-sweep: page_loss fraction",
		"depth,n",               // row axis: the two slow keys
		"(scrub_period_hours)",  // column axis: the fastest key
		"2,18", "4,20", "scale", // row labels and legend
	} {
		if !strings.Contains(out, want) {
			t.Errorf("heatmap missing %q:\n%s", want, out)
		}
	}
	// 4 rows of (depth, n) over 3 scrub columns.
	if lines := strings.Split(strings.TrimSpace(out), "\n"); len(lines) != 9 {
		t.Errorf("heatmap has %d lines, want 9:\n%s", len(lines), out)
	}

	if err := RenderGridHeatmap(&buf, nil); err == nil {
		t.Error("empty grid accepted")
	}
	mixed := []GridCell{cells[0], {Built: &Built{Entry: Entry{MatrixOrigin: "other", MatrixParams: cells[1].Built.Entry.MatrixParams}}, Result: cells[1].Result}}
	if err := RenderGridHeatmap(&buf, mixed); err == nil {
		t.Error("mixed-origin grid accepted")
	}

	// An incomplete grid (a cell's campaign failed and was dropped)
	// renders nothing and raises no structural error — the per-cell
	// failure was already reported.
	buf.Reset()
	if err := RenderGridHeatmap(&buf, cells[1:]); err != nil || buf.Len() != 0 {
		t.Errorf("incomplete grid rendered %q, err %v", buf.String(), err)
	}

	// A grid whose kind has no headline counter renders nothing.
	none := []GridCell{{Built: &Built{Entry: Entry{MatrixOrigin: "x", Kind: "bercurve",
		MatrixParams: []MatrixAssignment{{Key: "n", Value: "18"}}}}, Result: cells[0].Result}}
	buf.Reset()
	if err := RenderGridHeatmap(&buf, none); err != nil || buf.Len() != 0 {
		t.Errorf("counter-less grid rendered %q, err %v", buf.String(), err)
	}
}

func TestRenderValue(t *testing.T) {
	cases := map[string]string{
		`18`:     "18",
		`4.5`:    "4.5",
		`"1h"`:   "1h",
		`true`:   "true",
		`[1, 2]`: "[1,2]",
	}
	for in, want := range cases {
		if got := renderValue(json.RawMessage(in)); got != want {
			t.Errorf("renderValue(%s) = %q, want %q", in, got, want)
		}
	}
}

func TestInterleaveKindRoundTrip(t *testing.T) {
	doc := `{
	  "seed": 5,
	  "scenarios": [{
	    "name": "page",
	    "kind": "interleave",
	    "params": {"depth": 4, "lambda_bit_per_hour": 2e-5,
	               "burst_per_kilobit_hour": 0.02, "burst_bits": 12,
	               "lambda_column_per_hour": 5e-5, "scrub_period_hours": 8,
	               "horizon_hours": 48, "trials": 500},
	    "expect": [{"counter": "page_correct", "min_fraction": 0.5}]
	  }]
	}`
	f, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	built, err := f.BuildAll()
	if err != nil {
		t.Fatal(err)
	}
	b := built[0]
	if b.Scenario.Trials() != 500 {
		t.Errorf("trials = %d", b.Scenario.Trials())
	}
	if !strings.Contains(b.Scenario.Name(), "seed=5") {
		t.Errorf("file-level seed not inherited: %s", b.Scenario.Name())
	}
	cres, err := campaign.Run(b.Scenario, b.EngineConfig(f))
	if err != nil {
		t.Fatal(err)
	}
	if errs := b.CheckExpectations(cres); len(errs) != 0 {
		t.Errorf("expectations failed: %v", errs)
	}
	var buf bytes.Buffer
	if err := b.Render(&buf, cres); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"RS(18,16)/m=8 x depth 4", "loss fraction", "faults injected", "scrubs"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("render missing %q:\n%s", want, buf.String())
		}
	}
}

func TestArrayKindRoundTrip(t *testing.T) {
	doc := `{
	  "seed": 11,
	  "scenarios": [{
	    "name": "whole-memory",
	    "kind": "array",
	    "params": {"data_bytes": 1048576,
	               "seu_per_bit_day": 1.44e-2, "perm_per_symbol_day": 4.8e-3,
	               "hours": 48, "trials": 2000}
	  }]
	}`
	f, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	built, err := f.BuildAll()
	if err != nil {
		t.Fatal(err)
	}
	b := built[0]
	if len(b.checks) != 1 {
		t.Fatalf("array kind registered %d checks, want 1 (analytic cross-validation)", len(b.checks))
	}
	cres, err := campaign.Run(b.Scenario, b.EngineConfig(f))
	if err != nil {
		t.Fatal(err)
	}
	if errs := b.CheckExpectations(cres); len(errs) != 0 {
		t.Errorf("analytic cross-validation failed: %v", errs)
	}
	var buf bytes.Buffer
	if err := b.Render(&buf, cres); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"65536 words", "word fail", "any-word fail", "agrees"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("render missing %q:\n%s", want, buf.String())
		}
	}

	// validate_analytic: false must drop the check.
	doc2 := strings.Replace(doc, `"trials": 2000}`, `"trials": 2000, "validate_analytic": false}`, 1)
	f2, err := Parse([]byte(doc2))
	if err != nil {
		t.Fatal(err)
	}
	built2, err := f2.BuildAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(built2[0].checks) != 0 {
		t.Errorf("validate_analytic=false still registered %d checks", len(built2[0].checks))
	}
}

// TestArrayKindScrubbedDuplexDefaultsCheckOff: the scrubbed-duplex
// regime carries a documented chain-vs-simulator model gap, so the
// analytic gate must default off there (and explicit
// validate_analytic: true must opt back in).
func TestArrayKindScrubbedDuplexDefaultsCheckOff(t *testing.T) {
	build := func(params string) *Built {
		t.Helper()
		doc := fmt.Sprintf(`{"scenarios":[{"name":"a","kind":"array","params":%s}]}`, params)
		f, err := Parse([]byte(doc))
		if err != nil {
			t.Fatal(err)
		}
		built, err := f.BuildAll()
		if err != nil {
			t.Fatal(err)
		}
		return built[0]
	}
	off := build(`{"arrangement":"duplex","scrub_seconds":3600,"hours":48,"trials":100}`)
	if len(off.checks) != 0 {
		t.Errorf("scrubbed duplex registered %d checks by default, want 0", len(off.checks))
	}
	on := build(`{"arrangement":"duplex","scrub_seconds":3600,"hours":48,"trials":100,"validate_analytic":true}`)
	if len(on.checks) != 1 {
		t.Errorf("explicit validate_analytic=true registered %d checks, want 1", len(on.checks))
	}
	unscrubbed := build(`{"arrangement":"duplex","hours":48,"trials":100}`)
	if len(unscrubbed.checks) != 1 {
		t.Errorf("unscrubbed duplex registered %d checks by default, want 1", len(unscrubbed.checks))
	}
}

// TestArtifactPathSanitized: swept string values must not nest or
// escape the artifact directory.
func TestArtifactPathSanitized(t *testing.T) {
	doc := `{"scenarios":[{
	  "name": "page", "kind": "interleave",
	  "params": {"trials": 10, "horizon_hours": 1},
	  "matrix": {"depth": [1], "label": ["../../../../tmp/x"]}
	}]}`
	// "label" is not a pagesim param, so building would fail — but
	// expansion and artifact-path construction are what we test.
	var f File
	if err := json.Unmarshal([]byte(doc), &f); err != nil {
		t.Fatal(err)
	}
	if err := f.Expand(); err != nil {
		t.Fatal(err)
	}
	safe := func(path string, wantSlashes int) {
		t.Helper()
		if strings.Count(path, "/") != wantSlashes {
			t.Errorf("artifact path %q fragments the layout (want %d separators)", path, wantSlashes)
		}
		for _, comp := range strings.Split(path, "/") {
			switch comp {
			case "", ".", "..":
				t.Errorf("artifact path %q has traversal component %q", path, comp)
			}
		}
	}
	safe(f.Scenarios[0].ArtifactPath(), 1)
	safe(Entry{Name: "../evil"}.ArtifactPath(), 0)
	safe(Entry{Name: ".."}.ArtifactPath(), 0)
}
