package spec

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/campaign"
)

// everyKindDoc is one small scenario of every kind, sized so the
// whole file runs in a few seconds.
const everyKindDoc = `{
  "seed": 3,
  "scenarios": [
    {"name": "mission", "kind": "memsim",
     "params": {"duplex": true, "lambda_bit_per_hour": 6e-4,
                "lambda_symbol_per_hour": 2e-4, "scrub_period_hours": 4,
                "horizon_hours": 24, "trials": 400}},
    {"name": "mbu", "kind": "mbusim",
     "params": {"events_per_kilobit": 4, "burst_bits": 6, "trials": 400}},
    {"name": "ber", "kind": "bercurve",
     "params": {"arrangement": "duplex", "seu_per_bit_day": 1.7e-5,
                "scrub_seconds": 3600, "hours": 24, "points": 7}},
    {"name": "design", "kind": "tradeoff",
     "params": {"seu_per_bit_day": 1.7e-5, "perm_per_symbol_day": 1e-7,
                "scrub_seconds": 3600, "hours": 24,
                "max_redundancy": 4, "duplex_max_redundancy": 2}},
    {"name": "page", "kind": "interleave",
     "params": {"depth": 2, "lambda_bit_per_hour": 2e-5,
                "burst_per_kilobit_hour": 0.05, "burst_bits": 9,
                "horizon_hours": 24, "trials": 400}},
    {"name": "memory", "kind": "array",
     "params": {"data_bytes": 65536, "seu_per_bit_day": 1.44e-2,
                "perm_per_symbol_day": 4.8e-3, "hours": 24, "trials": 400,
                "validate_analytic": false}},
    {"name": "tables", "kind": "experiments",
     "params": {"ids": ["tbl-td", "tbl-area"]}}
  ]
}`

// TestEveryKindPartitionsMergeIdentically is the spec-level
// determinism law: for every scenario kind, running the campaign as
// three partitioned processes and merging the partial artifacts
// reproduces the single-process result bit for bit.
func TestEveryKindPartitionsMergeIdentically(t *testing.T) {
	f, err := Parse([]byte(everyKindDoc))
	if err != nil {
		t.Fatal(err)
	}
	built, err := f.BuildAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(built) != 7 {
		t.Fatalf("built %d scenarios, want 7", len(built))
	}
	const parts = 3
	for _, b := range built {
		want, err := campaign.Run(b.Scenario, b.EngineConfig(f))
		if err != nil {
			t.Fatalf("%s: %v", b.Entry.Name, err)
		}
		dir := t.TempDir()
		for i := 0; i < parts; i++ {
			partial, err := b.RunPartition(f, campaign.Partition{Index: i, Count: parts}, dir)
			if err != nil {
				t.Fatalf("%s partition %d: %v", b.Entry.Name, i, err)
			}
			partial.Close()
		}
		got, err := b.MergePartials(f, dir, nil)
		if err != nil {
			t.Fatalf("%s: merge: %v", b.Entry.Name, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s (%s): 3-way partitioned merge diverged:\nwant %+v\ngot  %+v",
				b.Entry.Name, b.Entry.Kind, want, got)
		}
	}
}

// TestPartitionedEarlyStopDecidedAtMerge: an entry with a stop rule
// over-runs in each partition and the merge lands on the
// single-process stopping point.
func TestPartitionedEarlyStopDecidedAtMerge(t *testing.T) {
	doc := `{"seed": 5, "scenarios": [{
	  "name": "stopper", "kind": "memsim",
	  "params": {"duplex": false, "lambda_bit_per_hour": 6e-4,
	             "lambda_symbol_per_hour": 2e-4, "horizon_hours": 24,
	             "trials": 20000},
	  "stop": {"counter": "capability_exceeded", "rel_half_width": 0.05,
	           "min_trials": 200}
	}]}`
	f, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	f.ShardSize = 128
	built, err := f.BuildAll()
	if err != nil {
		t.Fatal(err)
	}
	b := built[0]
	want, err := campaign.Run(b.Scenario, b.EngineConfig(f))
	if err != nil {
		t.Fatal(err)
	}
	if !want.EarlyStopped {
		t.Fatal("single-process campaign did not stop early")
	}

	dir := t.TempDir()
	overran := false
	for i := 0; i < 3; i++ {
		partial, err := b.RunPartition(f, campaign.Partition{Index: i, Count: 3}, dir)
		if err != nil {
			t.Fatal(err)
		}
		if partial.DoneTrials() > 0 && i > 0 {
			overran = true
		}
		partial.Close()
	}
	if !overran {
		t.Fatal("later partitions computed nothing; stop was not deferred to merge")
	}
	got, err := b.MergePartials(f, dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("partitioned early-stop merge diverged:\nwant %+v\ngot  %+v", want, got)
	}
}

func TestMergePartialsMissingArtifacts(t *testing.T) {
	f, err := Parse([]byte(everyKindDoc))
	if err != nil {
		t.Fatal(err)
	}
	built, err := f.BuildAll()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := built[0].MergePartials(f, t.TempDir(), nil); err == nil ||
		!strings.Contains(err.Error(), "no partial artifacts") {
		t.Errorf("merge over an empty directory: %v", err)
	}
}

func TestPartialPathsDistinct(t *testing.T) {
	e := Entry{Name: "page-sweep/depth=2,n=18"}
	e.MatrixOrigin = "page-sweep"
	a := e.PartialPath("parts", campaign.Partition{Index: 0, Count: 3})
	b := e.PartialPath("parts", campaign.Partition{Index: 1, Count: 3})
	if a == b {
		t.Errorf("partition paths collide: %q", a)
	}
	if !strings.Contains(a, "part0of3") || !strings.Contains(b, "part1of3") {
		t.Errorf("partition paths missing slice markers: %q, %q", a, b)
	}
}

// TestParamsEditRefusesStaleResume is the spec-level regression for
// the resume-fingerprint hole: editing an entry's params while
// keeping its name must refuse to resume (and to merge) a partial
// artifact computed under the old parameters. The edited param here
// (the "array" kind's validate_analytic) is deliberately one that the
// scenario Name does not encode, so only the params digest can catch
// the edit.
func TestParamsEditRefusesStaleResume(t *testing.T) {
	doc := func(validate bool) string {
		return fmt.Sprintf(`{"seed": 3, "scenarios": [{"name": "memory", "kind": "array",
		  "params": {"data_bytes": 16384, "seu_per_bit_day": 1.44e-2,
		             "perm_per_symbol_day": 4.8e-3, "hours": 24, "trials": 200,
		             "validate_analytic": %t}}]}`, validate)
	}
	build := func(src string) (*File, *Built) {
		t.Helper()
		f, err := Parse([]byte(src))
		if err != nil {
			t.Fatal(err)
		}
		built, err := f.BuildAll()
		if err != nil {
			t.Fatal(err)
		}
		return f, built[0]
	}

	f, b := build(doc(false))
	fEdited, bEdited := build(doc(true))
	if b.Scenario.Name() != bEdited.Scenario.Name() {
		t.Fatalf("edit is visible in the scenario name; pick a name-invisible param for this regression")
	}
	if b.Digest == bEdited.Digest {
		t.Fatal("params edit did not change the digest")
	}

	dir := t.TempDir()
	partial, err := b.RunPartition(f, campaign.Whole, dir)
	if err != nil {
		t.Fatal(err)
	}
	partial.Close()

	// The edited spec must refuse both the resume and the merge.
	if _, err := bEdited.RunPartition(fEdited, campaign.Whole, dir); err == nil {
		t.Error("edited spec resumed a stale partial")
	} else if !strings.Contains(err.Error(), "different scenario params") {
		t.Errorf("unhelpful stale-resume error: %v", err)
	}
	if _, err := bEdited.MergePartials(fEdited, dir, nil); err == nil {
		t.Error("edited spec merged a stale partial")
	} else if !strings.Contains(err.Error(), "different scenario params") {
		t.Errorf("unhelpful stale-merge error: %v", err)
	}

	// The unedited spec resumes every trial from the artifact.
	resumed, err := b.RunPartition(f, campaign.Whole, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	if resumed.ResumedTrials() != b.Scenario.Trials() {
		t.Errorf("resumed %d trials, want %d", resumed.ResumedTrials(), b.Scenario.Trials())
	}
}
