package spec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"

	"repro/internal/campaign"
	"repro/internal/memsim"
	"repro/internal/pagesim"
)

// maxMatrixCells bounds one entry's expansion so a typo'd value list
// fails loudly instead of launching thousands of campaigns.
const maxMatrixCells = 1024

// MatrixAssignment is one parameter binding of an expanded cell, in
// the cell's suffix order.
type MatrixAssignment struct {
	Key   string
	Value string // compact JSON rendering (strings unquoted)
}

// Expand replaces every entry that carries a matrix with the full
// cross-product of its cells: each cell copies the entry (kind, stop
// rule, expectation bands — the per-cell templating), overrides the
// swept parameters in params, and takes the auto-suffixed name
// <name>/k1=v1,k2=v2 with keys in sorted order. Entry order is
// preserved; cells appear in odometer order (first key slowest).
// Expand is idempotent and called by Parse before validation, so
// loaded files are always flat; programmatic File construction should
// call it before BuildAll when using matrices.
func (f *File) Expand() error {
	var out []Entry
	for _, e := range f.Scenarios {
		if len(e.Matrix) == 0 {
			out = append(out, e)
			continue
		}
		cells, err := expandEntry(e)
		if err != nil {
			return err
		}
		out = append(out, cells...)
	}
	f.Scenarios = out
	return nil
}

// expandEntry builds the cross-product cells of one matrix entry.
func expandEntry(e Entry) ([]Entry, error) {
	if e.Name == "" {
		return nil, fmt.Errorf("spec: matrix entry has no name")
	}
	keys := make([]string, 0, len(e.Matrix))
	total := 1
	for k, vals := range e.Matrix {
		if k == "" {
			return nil, fmt.Errorf("spec: matrix entry %q has an empty parameter name", e.Name)
		}
		if len(vals) == 0 {
			return nil, fmt.Errorf("spec: matrix entry %q sweeps %q over no values", e.Name, k)
		}
		keys = append(keys, k)
		if total *= len(vals); total > maxMatrixCells {
			return nil, fmt.Errorf("spec: matrix entry %q expands to more than %d scenarios", e.Name, maxMatrixCells)
		}
	}
	sort.Strings(keys)

	base, err := paramsMap(e)
	if err != nil {
		return nil, err
	}
	for _, k := range keys {
		if _, dup := base[k]; dup {
			return nil, fmt.Errorf("spec: matrix entry %q sweeps %q, which params also sets", e.Name, k)
		}
	}

	cells := make([]Entry, 0, total)
	sanitized := make(map[string]string, total)
	idx := make([]int, len(keys))
	for {
		cell := e
		cell.Matrix = nil
		cell.MatrixOrigin = e.Name
		cell.MatrixParams = make([]MatrixAssignment, len(keys))
		var suffix strings.Builder
		for i, k := range keys {
			v := e.Matrix[k][idx[i]]
			base[k] = v
			rendered := renderValue(v)
			cell.MatrixParams[i] = MatrixAssignment{Key: k, Value: rendered}
			if i > 0 {
				suffix.WriteByte(',')
			}
			fmt.Fprintf(&suffix, "%s=%s", k, rendered)
		}
		cell.Name = e.Name + "/" + suffix.String()
		if cell.Params, err = json.Marshal(base); err != nil {
			return nil, fmt.Errorf("spec: matrix entry %q: %w", e.Name, err)
		}
		// Checkpoint suffixes and artifact paths use the sanitized
		// suffix, so two cells that collapse onto the same sanitized
		// form would silently share files; reject the sweep instead.
		clean := sanitizeCell(suffix.String())
		if prev, dup := sanitized[clean]; dup {
			return nil, fmt.Errorf("spec: matrix entry %q cells %q and %q collide after filename sanitization (%q)",
				e.Name, prev, suffix.String(), clean)
		}
		sanitized[clean] = suffix.String()
		if e.Checkpoint != "" {
			// Each cell is its own campaign; a shared checkpoint file
			// would be rejected by every cell but the first.
			cell.Checkpoint = e.Checkpoint + "." + clean
		}
		cells = append(cells, cell)

		// Odometer: last key fastest.
		i := len(keys) - 1
		for ; i >= 0; i-- {
			if idx[i]++; idx[i] < len(e.Matrix[keys[i]]) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			return cells, nil
		}
	}
}

// paramsMap decodes an entry's raw params object into a key-indexed
// map (strictly: params must be a JSON object).
func paramsMap(e Entry) (map[string]json.RawMessage, error) {
	m := make(map[string]json.RawMessage)
	raw := e.Params
	if len(raw) == 0 {
		return m, nil
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("spec: matrix entry %q params: %w", e.Name, err)
	}
	if m == nil { // "params": null decodes the map itself to nil
		m = make(map[string]json.RawMessage)
	}
	return m, nil
}

// renderValue formats a swept JSON value for names and tables:
// compact, with string quotes stripped ("1h" reads as 1h).
func renderValue(v json.RawMessage) string {
	var s string
	if err := json.Unmarshal(v, &s); err == nil {
		return s
	}
	var buf bytes.Buffer
	if err := json.Compact(&buf, v); err != nil {
		return string(v)
	}
	return buf.String()
}

// sanitizeCell makes a cell suffix safe as a single filename
// component: path separators and drive markers are replaced, and
// names that would alias the current or parent directory are renamed.
func sanitizeCell(s string) string {
	s = strings.Map(func(r rune) rune {
		switch r {
		case '/', '\\', ':':
			return '-'
		}
		return r
	}, s)
	switch s {
	case "", ".", "..":
		return "_"
	}
	return s
}

// ArtifactPath returns the slash-separated relative path under which
// the entry's result artifacts should be written: matrix cells land
// in one subdirectory per matrix entry (origin/suffix), plain entries
// in a single file component. Every component is sanitized, so swept
// string values cannot nest further or escape the output directory.
func (e Entry) ArtifactPath() string {
	if e.MatrixOrigin != "" {
		suffix := strings.TrimPrefix(e.Name, e.MatrixOrigin+"/")
		return sanitizeCell(e.MatrixOrigin) + "/" + sanitizeCell(suffix)
	}
	return sanitizeCell(e.Name)
}

// GridCell pairs an expanded cell with its campaign result for grid
// rendering.
type GridCell struct {
	Built  *Built
	Result *campaign.Result
}

// headlineCounters picks the fraction columns of a grid: the kind's
// natural failure counter first (the sweep surface being traded off),
// then any expectation counters the entry gates on.
func headlineCounters(e Entry) []string {
	var out []string
	seen := map[string]bool{}
	add := func(name string) {
		if name != "" && !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	switch e.Kind {
	case "memsim", "array":
		add(memsim.CounterCapabilityExceeded)
	case "interleave":
		add(pagesim.CounterPageLoss)
	}
	for _, ex := range e.Expect {
		add(ex.Counter)
	}
	return out
}

// RenderGrid writes one matrix group as a table: one row per cell,
// one column per swept parameter, plus trials and the headline
// counter fractions. Cells must share an origin (one matrix entry).
func RenderGrid(w io.Writer, cells []GridCell) error {
	if len(cells) == 0 {
		return fmt.Errorf("spec: empty grid")
	}
	first := cells[0].Built.Entry
	counters := headlineCounters(first)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "=== matrix %s (%s, %d cells) ===\n", first.MatrixOrigin, first.Kind, len(cells))
	header := make([]string, 0, len(first.MatrixParams)+1+len(counters))
	for _, a := range first.MatrixParams {
		header = append(header, a.Key)
	}
	header = append(header, "trials")
	header = append(header, counters...)
	fmt.Fprintln(tw, strings.Join(header, "\t"))
	for _, c := range cells {
		if c.Built.Entry.MatrixOrigin != first.MatrixOrigin {
			return fmt.Errorf("spec: grid mixes origins %q and %q", first.MatrixOrigin, c.Built.Entry.MatrixOrigin)
		}
		row := make([]string, 0, len(header))
		for _, a := range c.Built.Entry.MatrixParams {
			row = append(row, a.Value)
		}
		row = append(row, fmt.Sprintf("%d", c.Result.Trials))
		for _, name := range counters {
			row = append(row, fmt.Sprintf("%.4e", c.Result.Fraction(name)))
		}
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	return tw.Flush()
}
