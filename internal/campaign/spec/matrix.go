package spec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"

	"repro/internal/campaign"
	"repro/internal/memsim"
	"repro/internal/pagesim"
	"repro/internal/textplot"
)

// maxMatrixCells bounds one entry's expansion so a typo'd value list
// fails loudly instead of launching thousands of campaigns.
const maxMatrixCells = 1024

// MatrixAssignment is one parameter binding of an expanded cell, in
// the cell's suffix order.
type MatrixAssignment struct {
	Key   string
	Value string // compact JSON rendering (strings unquoted)
}

// Expand replaces every entry that carries a matrix with the full
// cross-product of its cells: each cell copies the entry (kind, stop
// rule, expectation bands — the per-cell templating), overrides the
// swept parameters in params, and takes the auto-suffixed name
// <name>/k1=v1,k2=v2 with keys in sorted order. Entry order is
// preserved; cells appear in odometer order (first key slowest).
// Expand is idempotent and called by Parse before validation, so
// loaded files are always flat; programmatic File construction should
// call it before BuildAll when using matrices.
func (f *File) Expand() error {
	var out []Entry
	for _, e := range f.Scenarios {
		if len(e.Matrix) == 0 && e.Replicates == 0 {
			out = append(out, e)
			continue
		}
		cells, err := expandEntry(e, f.Seed)
		if err != nil {
			return err
		}
		out = append(out, cells...)
	}
	f.Scenarios = out
	return nil
}

// seededKinds lists the kinds whose params accept a "seed" (the kinds
// Replicates can sweep).
var seededKinds = map[string]bool{"memsim": true, "mbusim": true, "interleave": true, "array": true}

// expandEntry builds the cross-product cells of one matrix and/or
// replicates entry.
func expandEntry(e Entry, fileSeed int64) ([]Entry, error) {
	if e.Name == "" {
		return nil, fmt.Errorf("spec: matrix entry has no name")
	}
	base, err := paramsMap(e)
	if err != nil {
		return nil, err
	}
	if e.Replicates < 0 {
		return nil, fmt.Errorf("spec: scenario %q has negative replicates %d", e.Name, e.Replicates)
	}
	if e.Replicates > 0 {
		// Replicates become a synthesized "seed" axis: base..base+N-1,
		// base taken from (and removed from) params, or the file seed.
		if !seededKinds[e.Kind] {
			return nil, fmt.Errorf("spec: scenario %q: replicates requires a seeded kind, not %q", e.Name, e.Kind)
		}
		if e.Replicates > maxMatrixCells {
			// Reject before allocating the seed slice: a fat-fingered
			// replicate count must fail like any runaway matrix, not
			// OOM building its value list.
			return nil, fmt.Errorf("spec: matrix entry %q expands to more than %d scenarios", e.Name, maxMatrixCells)
		}
		if _, dup := e.Matrix["seed"]; dup {
			return nil, fmt.Errorf("spec: scenario %q sweeps seed in both replicates and matrix", e.Name)
		}
		baseSeed := fileSeed
		if raw, ok := base["seed"]; ok {
			if err := json.Unmarshal(raw, &baseSeed); err != nil {
				return nil, fmt.Errorf("spec: scenario %q params seed: %w", e.Name, err)
			}
			delete(base, "seed")
		}
		seeds := make([]json.RawMessage, e.Replicates)
		for r := range seeds {
			seeds[r] = json.RawMessage(fmt.Sprintf("%d", baseSeed+int64(r)))
		}
		matrix := make(map[string][]json.RawMessage, len(e.Matrix)+1)
		for k, v := range e.Matrix {
			matrix[k] = v
		}
		matrix["seed"] = seeds
		e.Matrix = matrix
	}

	keys := make([]string, 0, len(e.Matrix))
	total := 1
	for k, vals := range e.Matrix {
		if k == "" {
			return nil, fmt.Errorf("spec: matrix entry %q has an empty parameter name", e.Name)
		}
		if len(vals) == 0 {
			return nil, fmt.Errorf("spec: matrix entry %q sweeps %q over no values", e.Name, k)
		}
		keys = append(keys, k)
		if total *= len(vals); total > maxMatrixCells {
			return nil, fmt.Errorf("spec: matrix entry %q expands to more than %d scenarios", e.Name, maxMatrixCells)
		}
	}
	sort.Strings(keys)

	for _, k := range keys {
		if _, dup := base[k]; dup {
			return nil, fmt.Errorf("spec: matrix entry %q sweeps %q, which params also sets", e.Name, k)
		}
	}

	cells := make([]Entry, 0, total)
	sanitized := make(map[string]string, total)
	idx := make([]int, len(keys))
	for {
		cell := e
		cell.Matrix = nil
		cell.Replicates = 0
		cell.MatrixOrigin = e.Name
		cell.MatrixParams = make([]MatrixAssignment, len(keys))
		var suffix strings.Builder
		for i, k := range keys {
			v := e.Matrix[k][idx[i]]
			base[k] = v
			rendered := renderValue(v)
			cell.MatrixParams[i] = MatrixAssignment{Key: k, Value: rendered}
			if i > 0 {
				suffix.WriteByte(',')
			}
			fmt.Fprintf(&suffix, "%s=%s", k, rendered)
		}
		cell.Name = e.Name + "/" + suffix.String()
		if cell.Params, err = json.Marshal(base); err != nil {
			return nil, fmt.Errorf("spec: matrix entry %q: %w", e.Name, err)
		}
		// Checkpoint suffixes and artifact paths use the sanitized
		// suffix, so two cells that collapse onto the same sanitized
		// form would silently share files; reject the sweep instead.
		clean := sanitizeCell(suffix.String())
		if prev, dup := sanitized[clean]; dup {
			return nil, fmt.Errorf("spec: matrix entry %q cells %q and %q collide after filename sanitization (%q)",
				e.Name, prev, suffix.String(), clean)
		}
		sanitized[clean] = suffix.String()
		if e.Checkpoint != "" {
			// Each cell is its own campaign; a shared checkpoint file
			// would be rejected by every cell but the first.
			cell.Checkpoint = e.Checkpoint + "." + clean
		}
		cells = append(cells, cell)

		// Odometer: last key fastest.
		i := len(keys) - 1
		for ; i >= 0; i-- {
			if idx[i]++; idx[i] < len(e.Matrix[keys[i]]) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			return cells, nil
		}
	}
}

// paramsMap decodes an entry's raw params object into a key-indexed
// map (strictly: params must be a JSON object).
func paramsMap(e Entry) (map[string]json.RawMessage, error) {
	m := make(map[string]json.RawMessage)
	raw := e.Params
	if len(raw) == 0 {
		return m, nil
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("spec: matrix entry %q params: %w", e.Name, err)
	}
	if m == nil { // "params": null decodes the map itself to nil
		m = make(map[string]json.RawMessage)
	}
	return m, nil
}

// renderValue formats a swept JSON value for names and tables:
// compact, with string quotes stripped ("1h" reads as 1h).
func renderValue(v json.RawMessage) string {
	var s string
	if err := json.Unmarshal(v, &s); err == nil {
		return s
	}
	var buf bytes.Buffer
	if err := json.Compact(&buf, v); err != nil {
		return string(v)
	}
	return buf.String()
}

// sanitizeCell makes a cell suffix safe as a single filename
// component: path separators and drive markers are replaced, and
// names that would alias the current or parent directory are renamed.
func sanitizeCell(s string) string {
	s = strings.Map(func(r rune) rune {
		switch r {
		case '/', '\\', ':':
			return '-'
		}
		return r
	}, s)
	switch s {
	case "", ".", "..":
		return "_"
	}
	return s
}

// ArtifactPath returns the slash-separated relative path under which
// the entry's result artifacts should be written: matrix cells land
// in one subdirectory per matrix entry (origin/suffix), plain entries
// in a single file component. Every component is sanitized, so swept
// string values cannot nest further or escape the output directory.
func (e Entry) ArtifactPath() string {
	if e.MatrixOrigin != "" {
		suffix := strings.TrimPrefix(e.Name, e.MatrixOrigin+"/")
		return sanitizeCell(e.MatrixOrigin) + "/" + sanitizeCell(suffix)
	}
	return sanitizeCell(e.Name)
}

// GridCell pairs an expanded cell with its campaign result for grid
// rendering.
type GridCell struct {
	Built  *Built
	Result *campaign.Result
}

// headlineCounters picks the fraction columns of a grid: the kind's
// natural failure counter first (the sweep surface being traded off),
// then any expectation counters the entry gates on.
func headlineCounters(e Entry) []string {
	var out []string
	seen := map[string]bool{}
	add := func(name string) {
		if name != "" && !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	switch e.Kind {
	case "memsim", "array":
		add(memsim.CounterCapabilityExceeded)
	case "interleave":
		add(pagesim.CounterPageLoss)
	}
	for _, ex := range e.Expect {
		add(ex.Counter)
	}
	return out
}

// RenderGrid writes one matrix group as a table: one row per cell,
// one column per swept parameter, plus trials and the headline
// counter fractions. Cells must share an origin (one matrix entry).
func RenderGrid(w io.Writer, cells []GridCell) error {
	if len(cells) == 0 {
		return fmt.Errorf("spec: empty grid")
	}
	first := cells[0].Built.Entry
	counters := headlineCounters(first)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "=== matrix %s (%s, %d cells) ===\n", first.MatrixOrigin, first.Kind, len(cells))
	header := make([]string, 0, len(first.MatrixParams)+1+len(counters))
	for _, a := range first.MatrixParams {
		header = append(header, a.Key)
	}
	header = append(header, "trials")
	header = append(header, counters...)
	fmt.Fprintln(tw, strings.Join(header, "\t"))
	for _, c := range cells {
		if c.Built.Entry.MatrixOrigin != first.MatrixOrigin {
			return fmt.Errorf("spec: grid mixes origins %q and %q", first.MatrixOrigin, c.Built.Entry.MatrixOrigin)
		}
		row := make([]string, 0, len(header))
		for _, a := range c.Built.Entry.MatrixParams {
			row = append(row, a.Value)
		}
		row = append(row, fmt.Sprintf("%d", c.Result.Trials))
		for _, name := range counters {
			row = append(row, fmt.Sprintf("%.4e", c.Result.Fraction(name)))
		}
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	return tw.Flush()
}

// RenderGridHeatmap draws one matrix group's headline counter
// fraction as a textplot heatmap alongside the grid table: columns
// sweep the last (fastest-varying) matrix key, rows sweep the
// remaining keys in the grid's odometer order, so the heatmap is the
// grid table folded into an area plot. Groups with no headline
// counter or no swept key render nothing (the table already says
// everything).
func RenderGridHeatmap(w io.Writer, cells []GridCell) error {
	if len(cells) == 0 {
		return fmt.Errorf("spec: empty grid")
	}
	first := cells[0].Built.Entry
	counters := headlineCounters(first)
	if len(counters) == 0 || len(first.MatrixParams) == 0 {
		return nil
	}
	counter := counters[0]
	keys := first.MatrixParams

	// Columns: the distinct values of the last key, in order of first
	// appearance (= sweep order).
	var xTicks []string
	seenX := map[string]bool{}
	for _, c := range cells {
		e := c.Built.Entry
		if e.MatrixOrigin != first.MatrixOrigin {
			return fmt.Errorf("spec: grid mixes origins %q and %q", first.MatrixOrigin, e.MatrixOrigin)
		}
		if len(e.MatrixParams) != len(keys) {
			return fmt.Errorf("spec: cell %q has %d assignments, want %d", e.Name, len(e.MatrixParams), len(keys))
		}
		if v := e.MatrixParams[len(keys)-1].Value; !seenX[v] {
			seenX[v] = true
			xTicks = append(xTicks, v)
		}
	}
	if len(cells)%len(xTicks) != 0 {
		// An incomplete grid (some cells' campaigns failed — already
		// reported by the caller) has no rectangular layout to shade;
		// skip the heatmap rather than pile a confusing structural
		// error on top of the real per-cell failure. The grid table
		// above already shows the surviving cells.
		return nil
	}

	var rowKeys []string
	for _, a := range keys[:len(keys)-1] {
		rowKeys = append(rowKeys, a.Key)
	}
	h := &textplot.Heatmap{
		Title:  fmt.Sprintf("matrix %s: %s fraction", first.MatrixOrigin, counter),
		XLabel: keys[len(keys)-1].Key,
		YLabel: strings.Join(rowKeys, ","),
		XTicks: xTicks,
	}
	nCols := len(xTicks)
	for r := 0; r < len(cells)/nCols; r++ {
		rowCells := cells[r*nCols : (r+1)*nCols]
		var label []string
		for _, a := range rowCells[0].Built.Entry.MatrixParams[:len(keys)-1] {
			label = append(label, a.Value)
		}
		row := make([]float64, nCols)
		for c, cell := range rowCells {
			if got := cell.Built.Entry.MatrixParams[len(keys)-1].Value; got != xTicks[c] {
				// Same as the modulus check above: a failed cell can
				// shift the survivors out of odometer order even when
				// the count still divides evenly.
				return nil
			}
			row[c] = cell.Result.Fraction(counter)
		}
		h.YTicks = append(h.YTicks, strings.Join(label, ","))
		h.Values = append(h.Values, row)
	}
	_, err := io.WriteString(w, h.Render())
	return err
}
