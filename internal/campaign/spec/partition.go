package spec

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/campaign"
)

// PartialPath returns the partial-result artifact path of this
// entry's slice of a partitioned campaign under dir: the entry's
// sanitized artifact path plus a ".part<i>of<N>" suffix, so the
// partials of one scenario glob together and different scenarios
// (including matrix cells) never collide.
func (e Entry) PartialPath(dir string, part campaign.Partition) string {
	return filepath.Join(dir, filepath.FromSlash(e.ArtifactPath())+fmt.Sprintf(".part%dof%d", part.Index, part.Count))
}

// PartialFiles lists every partition's artifact of the entry under
// dir: files named <artifact>.part<...> in the artifact's directory.
// A directory listing with a literal prefix match (not a glob) keeps
// scenario names containing glob metacharacters working, and
// leftover ".tmp" files from an interrupted artifact creation are
// never picked up. A missing artifact directory lists as empty — for
// callers like the fabric coordinator the distinction between "no
// partials yet" and "directory not created yet" is meaningless.
func (e Entry) PartialFiles(dir string) ([]string, error) {
	base := filepath.Join(dir, filepath.FromSlash(e.ArtifactPath()))
	entries, err := os.ReadDir(filepath.Dir(base))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	prefix := filepath.Base(base) + ".part"
	var paths []string
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !strings.HasPrefix(name, prefix) || strings.HasSuffix(name, ".tmp") {
			continue
		}
		paths = append(paths, filepath.Join(filepath.Dir(base), name))
	}
	sort.Strings(paths)
	return paths, nil
}

// RunPartition executes only the given slice of the entry's campaign,
// writing (or resuming) the self-describing partial artifact under
// dir; the slices merge later with MergePartials. The partial
// artifact is the partition's checkpoint, so the entry's own
// Checkpoint path is not used here (one file per process, no
// collisions). Early stopping is decided at merge time — a
// partitioned executor deliberately over-runs a would-be stopping
// point (see campaign.ExecConfig.Stop).
func (b *Built) RunPartition(f *File, part campaign.Partition, dir string) (*campaign.Partial, error) {
	cfg := b.EngineConfig(f)
	plan, err := campaign.NewPlan(b.Scenario, cfg.ShardSize, part)
	if err != nil {
		return nil, fmt.Errorf("spec: %s: %w", b.Entry.Name, err)
	}
	plan.ParamsDigest = cfg.ParamsDigest
	partial, err := campaign.Execute(b.Scenario, plan, campaign.ExecConfig{
		Workers:    cfg.Workers,
		Artifact:   b.Entry.PartialPath(dir, part),
		FlushEvery: cfg.CheckpointEvery,
		Stop:       cfg.Stop,
	})
	if err != nil {
		return nil, fmt.Errorf("spec: %s: %w", b.Entry.Name, err)
	}
	return partial, nil
}

// MergePartials opens every partial artifact of the entry under dir
// and folds them into the Result a single-process run would produce
// (bit-identically — the campaign engine's determinism law), applying
// the entry's early-stop rule on the contiguous prefix. A non-nil
// sink streams samples and notes instead of materializing them (the
// bounded-memory path for million-sample campaigns). The file's
// worker count parallelizes pass 2's record loading (per-slice sample
// streams fold concurrently, concatenated in global shard order — the
// output is bit-identical at any worker count).
func (b *Built) MergePartials(f *File, dir string, sink campaign.Sink) (*campaign.Result, error) {
	paths, err := b.Entry.PartialFiles(dir)
	if err != nil {
		return nil, fmt.Errorf("spec: %s: %w", b.Entry.Name, err)
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("spec: %s: no partial artifacts named %s.part* under %s",
			b.Entry.Name, b.Entry.ArtifactPath(), dir)
	}
	partials := make([]*campaign.Partial, 0, len(paths))
	defer func() {
		for _, p := range partials {
			p.Close()
		}
	}()
	for _, path := range paths {
		p, err := campaign.OpenPartial(path)
		if err != nil {
			return nil, fmt.Errorf("spec: %s: %w", b.Entry.Name, err)
		}
		partials = append(partials, p)
	}
	cfg := b.EngineConfig(f)
	cres, err := campaign.Merge(partials, campaign.MergeConfig{Stop: cfg.Stop, Sink: sink, ParamsDigest: cfg.ParamsDigest, Workers: cfg.Workers})
	if err != nil {
		return nil, fmt.Errorf("spec: %s: %w", b.Entry.Name, err)
	}
	return cres, nil
}
