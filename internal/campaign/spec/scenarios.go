package spec

import (
	"fmt"
	"math"

	"repro/internal/campaign"
	"repro/internal/complexity"
	"repro/internal/core"
	"repro/internal/reliability"
)

// Series labels recorded by the analytic scenarios.
const (
	SeriesBER         = "ber"
	SeriesMTTDL       = "mttdl_hours"
	SeriesDecodeCycle = "decode_cycles"
	SeriesGates       = "gates"
	SeriesOverhead    = "overhead"
)

// BERCurveParams configures a BER(t) trajectory evaluation: one
// Markov-model configuration solved point by point across a time
// grid, each grid point an independent campaign trial.
type BERCurveParams struct {
	Arrangement string  `json:"arrangement"` // "simplex" (default) or "duplex"
	N           int     `json:"n"`
	K           int     `json:"k"`
	M           int     `json:"m"`
	SEUPerBit   float64 `json:"seu_per_bit_day"`
	PermPerSym  float64 `json:"perm_per_symbol_day"`
	ScrubSec    float64 `json:"scrub_seconds"`
	Hours       float64 `json:"hours"`
	Months      float64 `json:"months"` // overrides Hours when > 0
	Points      int     `json:"points"`
}

// BERCurve is the campaign scenario behind cmd/bercurve and the
// "bercurve" spec kind.
type BERCurve struct {
	cfg    core.Config
	grid   []float64 // evaluation instants in hours
	axis   []float64 // displayed x values (hours or months)
	xLabel string
}

// NewBERCurve validates the parameters and builds the scenario.
func NewBERCurve(p BERCurveParams) (*BERCurve, error) {
	arr, err := parseArrangement(p.Arrangement)
	if err != nil {
		return nil, err
	}
	applyCodeDefaults(&p.N, &p.K, &p.M)
	if p.Points == 0 {
		p.Points = 13
	}
	horizon := p.Hours
	xLabel := "hours"
	if p.Months > 0 {
		horizon = reliability.Months(p.Months)
		xLabel = "months"
	}
	if horizon <= 0 {
		return nil, fmt.Errorf("spec: bercurve needs a horizon (hours or months)")
	}
	grid, err := reliability.HoursRange(0, horizon, p.Points)
	if err != nil {
		return nil, err
	}
	cfg := core.Config{
		Arrangement:         arr,
		Code:                core.CodeSpec{N: p.N, K: p.K, M: p.M},
		SEUPerBitDay:        p.SEUPerBit,
		ErasurePerSymbolDay: p.PermPerSym,
		ScrubPeriodSeconds:  p.ScrubSec,
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	axis := grid
	if xLabel == "months" {
		axis = make([]float64, len(grid))
		for i, h := range grid {
			axis[i] = h / reliability.HoursPerMonth
		}
	}
	return &BERCurve{cfg: cfg, grid: grid, axis: axis, xLabel: xLabel}, nil
}

// Config returns the evaluated configuration (for titles and labels).
func (s *BERCurve) Config() core.Config { return s.cfg }

// XLabel returns the display unit of the x axis.
func (s *BERCurve) XLabel() string { return s.xLabel }

// Name implements campaign.Scenario.
func (s *BERCurve) Name() string {
	return fmt.Sprintf("bercurve:%v:points=%d:h=%g", s.cfg, len(s.grid), s.grid[len(s.grid)-1])
}

// Trials implements campaign.Scenario: one trial per grid point, so
// the engine shards the (independent) chain solves across workers.
func (s *BERCurve) Trials() int { return len(s.grid) }

// NewWorker implements campaign.Scenario.
func (s *BERCurve) NewWorker() (campaign.Worker, error) { return berCurveWorker{s}, nil }

type berCurveWorker struct{ scn *BERCurve }

// Trial evaluates grid point i.
func (w berCurveWorker) Trial(i int, acc *campaign.Acc) error {
	s := w.scn
	curve, err := core.Evaluate(s.cfg, s.grid[i:i+1])
	if err != nil {
		return err
	}
	acc.Sample(i, SeriesBER, s.axis[i], curve.BER[0])
	return nil
}

// TradeoffParams configures the redundancy/arrangement design-space
// sweep behind cmd/tradeoff and the "tradeoff" spec kind.
type TradeoffParams struct {
	K          int     `json:"k"`
	M          int     `json:"m"`
	SEUPerBit  float64 `json:"seu_per_bit_day"`
	PermPerSym float64 `json:"perm_per_symbol_day"`
	ScrubSec   float64 `json:"scrub_seconds"`
	Hours      float64 `json:"hours"`
	// MaxRed sweeps simplex redundancy n-k in even steps up to this
	// bound; DuplexMaxRed bounds the duplex rows (the chain's state
	// space grows quickly).
	MaxRed       int `json:"max_redundancy"`
	DuplexMaxRed int `json:"duplex_max_redundancy"`
}

// Candidate is one design point of a tradeoff sweep.
type Candidate struct {
	Arrangement core.Arrangement
	N, K, M     int
}

// Label names the candidate like the paper's tables.
func (c Candidate) Label() string {
	return fmt.Sprintf("%s RS(%d,%d)", c.Arrangement, c.N, c.K)
}

// Tradeoff is the campaign scenario for the design-space sweep: one
// trial per candidate, each recording BER, MTTDL, decoder cost and
// storage overhead samples keyed by candidate index.
type Tradeoff struct {
	p          TradeoffParams
	candidates []Candidate
}

// NewTradeoff validates the parameters and enumerates candidates.
func NewTradeoff(p TradeoffParams) (*Tradeoff, error) {
	if p.K == 0 {
		p.K = 16
	}
	if p.M == 0 {
		p.M = 8
	}
	if p.MaxRed == 0 {
		p.MaxRed = 20
	}
	if p.DuplexMaxRed == 0 {
		p.DuplexMaxRed = 8
	}
	if p.Hours <= 0 {
		return nil, fmt.Errorf("spec: tradeoff needs a positive mission horizon")
	}
	var cands []Candidate
	for red := 2; red <= p.MaxRed; red += 2 {
		cands = append(cands, Candidate{core.Simplex, p.K + red, p.K, p.M})
	}
	for red := 2; red <= p.DuplexMaxRed; red += 2 {
		cands = append(cands, Candidate{core.Duplex, p.K + red, p.K, p.M})
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("spec: tradeoff sweep is empty (max_redundancy %d)", p.MaxRed)
	}
	for _, c := range cands {
		if err := (core.CodeSpec{N: c.N, K: c.K, M: c.M}).Validate(); err != nil {
			return nil, fmt.Errorf("spec: tradeoff candidate %s: %w", c.Label(), err)
		}
	}
	return &Tradeoff{p: p, candidates: cands}, nil
}

// Params returns the validated sweep parameters (with defaults
// applied).
func (s *Tradeoff) Params() TradeoffParams { return s.p }

// Candidates returns the sweep's design points in trial order.
func (s *Tradeoff) Candidates() []Candidate { return s.candidates }

// Name implements campaign.Scenario.
func (s *Tradeoff) Name() string {
	return fmt.Sprintf("tradeoff:k=%d:m=%d:seu=%g:perm=%g:scrub=%g:h=%g:red<=%d/%d",
		s.p.K, s.p.M, s.p.SEUPerBit, s.p.PermPerSym, s.p.ScrubSec, s.p.Hours, s.p.MaxRed, s.p.DuplexMaxRed)
}

// Trials implements campaign.Scenario.
func (s *Tradeoff) Trials() int { return len(s.candidates) }

// NewWorker implements campaign.Scenario.
func (s *Tradeoff) NewWorker() (campaign.Worker, error) { return tradeoffWorker{s}, nil }

type tradeoffWorker struct{ scn *Tradeoff }

// Trial evaluates candidate i across every metric column.
func (w tradeoffWorker) Trial(i int, acc *campaign.Acc) error {
	s := w.scn
	c := s.candidates[i]
	cfg := core.Config{
		Arrangement:         c.Arrangement,
		Code:                core.CodeSpec{N: c.N, K: c.K, M: c.M},
		SEUPerBitDay:        s.p.SEUPerBit,
		ErasurePerSymbolDay: s.p.PermPerSym,
		ScrubPeriodSeconds:  s.p.ScrubSec,
	}
	curve, err := core.Evaluate(cfg, []float64{s.p.Hours})
	if err != nil {
		return fmt.Errorf("%s: %w", c.Label(), err)
	}
	mttdl, err := core.MTTDL(cfg)
	if err != nil {
		return fmt.Errorf("%s: %w", c.Label(), err)
	}
	var cost complexity.ArrangementCost
	if c.Arrangement == core.Simplex {
		cost, err = complexity.SimplexCost(c.N, c.K, c.M)
	} else {
		cost, err = complexity.DuplexCost(c.N, c.K, c.M)
	}
	if err != nil {
		return fmt.Errorf("%s: %w", c.Label(), err)
	}
	overhead := float64(c.N) / float64(c.K)
	if c.Arrangement == core.Duplex {
		overhead *= 2
	}
	x := float64(i)
	acc.Sample(i, SeriesBER, x, curve.BER[0])
	acc.Sample(i, SeriesMTTDL, x, mttdl)
	acc.Sample(i, SeriesDecodeCycle, x, float64(cost.DecodeCycles))
	acc.Sample(i, SeriesGates, x, cost.TotalGates)
	acc.Sample(i, SeriesOverhead, x, overhead)
	return nil
}

// MetricsFor extracts candidate i's metric samples from a campaign
// result, in the order ber, mttdl, decode cycles, gates, overhead.
func (s *Tradeoff) MetricsFor(cres *campaign.Result, i int) (ber, mttdl, cycles, gates, overhead float64, ok bool) {
	vals := map[string]float64{}
	for _, sm := range cres.Samples {
		if sm.Trial == i {
			vals[sm.Series] = sm.Y
		}
	}
	if len(vals) < 5 {
		return 0, 0, 0, 0, 0, false
	}
	return vals[SeriesBER], vals[SeriesMTTDL], vals[SeriesDecodeCycle], vals[SeriesGates], vals[SeriesOverhead], true
}

// parseArrangement maps the spec string onto a core.Arrangement.
func parseArrangement(s string) (core.Arrangement, error) {
	switch s {
	case "", "simplex":
		return core.Simplex, nil
	case "duplex":
		return core.Duplex, nil
	default:
		return 0, fmt.Errorf("spec: unknown arrangement %q (want simplex or duplex)", s)
	}
}

// applyCodeDefaults fills the paper's RS(18,16)/m=8 defaults.
func applyCodeDefaults(n, k, m *int) {
	if *n == 0 {
		*n = 18
	}
	if *k == 0 {
		*k = 16
	}
	if *m == 0 {
		*m = 8
	}
}

// FormatMTTDL renders an MTTDL column entry ("inf" for an absorbing
// chain with no data-loss path).
func FormatMTTDL(v float64) string {
	if math.IsInf(v, 1) {
		return fmt.Sprintf("%14s", "inf")
	}
	return fmt.Sprintf("%14.3e", v)
}
