package spec

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/memsim"
	"repro/internal/simplex"
)

// TestGoldenUnitWeightEquivalence pins the exact pre-refactor output
// of one memsim and one pagesim campaign: counters, params digest and
// the byte-level sha256 of the checkpoint artifact, all captured from
// the engine as it was before counters grew weight moments. Unit
// weights (no sampling block) must keep reproducing these bytes
// forever — any drift means the weighted-trial refactor changed the
// unweighted path. The artifacts run single-worker because shard
// records append in completion order, which only a sequential
// executor pins down; the counters are worker-count independent.
func TestGoldenUnitWeightEquivalence(t *testing.T) {
	specs := []struct {
		label, text    string
		digest         string
		counters       map[string]int64
		artifactSHA256 string
		artifactBytes  int
	}{
		{
			label:  "memsim",
			text:   `{"seed":11,"workers":1,"scenarios":[{"name":"golden-memsim","kind":"memsim","params":{"n":18,"k":16,"m":8,"lambda_bit_per_hour":2e-4,"lambda_symbol_per_hour":1e-5,"scrub_period_hours":4,"exponential_scrub":true,"horizon_hours":48,"trials":2000}}]}`,
			digest: "16e7c4f8f0d85a94f8edb55689f263a3b2780bb5942f2b93e52a4d917a98c15f",
			counters: map[string]int64{
				"capability_exceeded":  216,
				"correct":              1784,
				"data_bit_errors":      81,
				"no_output":            202,
				"permanent_faults":     13,
				"scrub_miscorrections": 57,
				"scrub_ops":            23968,
				"seus":                 2719,
				"wrong_output":         14,
			},
			artifactSHA256: "ec939d2420bd1184a6bcaec031fde17940f8aa8514163cbb107f3af27adce243",
			artifactBytes:  1683,
		},
		{
			label:  "pagesim",
			text:   `{"seed":11,"workers":1,"scenarios":[{"name":"golden-pagesim","kind":"interleave","params":{"depth":4,"lambda_bit_per_hour":3e-4,"burst_per_kilobit_hour":5e-5,"burst_bits":6,"lambda_column_per_hour":1e-5,"scrub_period_hours":4,"horizon_hours":24,"trials":1500}}]}`,
			digest: "252ff7b5cb67e880fb08fb05b8b715a13c1eb70b4bdde3702db5e6dd05e7055b",
			counters: map[string]int64{
				"bursts":            1,
				"corrected_symbols": 855,
				"failed_stripes":    469,
				"page_correct":      1056,
				"page_loss":         444,
				"page_silent_loss":  24,
				"scrub_ops":         7500,
				"seus":              6597,
				"stuck_columns":     19,
			},
			artifactSHA256: "2984bbac954c6dc007e6e39b48ef6fa246e007c069314167e75fda2d456e211b",
			artifactBytes:  1367,
		},
	}
	for _, sp := range specs {
		f, err := Parse([]byte(sp.text))
		if err != nil {
			t.Fatal(err)
		}
		b, err := Build(f.Scenarios[0], f)
		if err != nil {
			t.Fatal(err)
		}
		if b.Digest != sp.digest {
			t.Errorf("%s: params digest drifted: %s, want %s", sp.label, b.Digest, sp.digest)
		}
		cfg := b.EngineConfig(f)
		cfg.Checkpoint = filepath.Join(t.TempDir(), "artifact.jsonl")
		res, err := campaign.Run(b.Scenario, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Counters, sp.counters) {
			t.Errorf("%s: golden counters drifted:\ngot  %v\nwant %v", sp.label, res.Counters, sp.counters)
		}
		if res.Weights != nil {
			t.Errorf("%s: unweighted run grew weight moments: %v", sp.label, res.Weights)
		}
		data, err := os.ReadFile(cfg.Checkpoint)
		if err != nil {
			t.Fatal(err)
		}
		if got := fmt.Sprintf("%x", sha256.Sum256(data)); got != sp.artifactSHA256 || len(data) != sp.artifactBytes {
			t.Errorf("%s: artifact bytes drifted: sha256 %s (%d bytes), want %s (%d bytes)",
				sp.label, got, len(data), sp.artifactSHA256, sp.artifactBytes)
		}
	}
}

// TestSamplingValidation: malformed sampling blocks must fail at
// parse, naming the problem.
func TestSamplingValidation(t *testing.T) {
	cases := []struct{ name, doc, want string }{
		{"unknown method",
			`{"scenarios":[{"name":"a","kind":"memsim","sampling":{"method":"magic"}}]}`,
			"unknown sampling method"},
		{"tilt below one",
			`{"scenarios":[{"name":"a","kind":"memsim","sampling":{"method":"tilt","factor":0.5}}]}`,
			"must be >= 1"},
		{"tilt no factor",
			`{"scenarios":[{"name":"a","kind":"memsim","sampling":{"method":"tilt"}}]}`,
			"must be >= 1"},
		{"auto with factor",
			`{"scenarios":[{"name":"a","kind":"memsim","sampling":{"method":"auto","factor":8}}]}`,
			"solves its own factor"},
		{"unsupported kind",
			`{"scenarios":[{"name":"a","kind":"mbusim","sampling":{"method":"tilt","factor":8}}]}`,
			"does not support importance sampling"},
		{"auto on interleave",
			`{"scenarios":[{"name":"a","kind":"interleave","sampling":{"method":"auto"}}]}`,
			"memsim"},
	}
	for _, c := range cases {
		_, err := Parse([]byte(c.doc))
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

// TestAutoTiltRequiresChainRegime: auto sampling outside the regime
// the simplex chain models must fail at build with a pointed error.
func TestAutoTiltRequiresChainRegime(t *testing.T) {
	base := `{"scenarios":[{"name":"a","kind":"memsim","sampling":{"method":"auto"},"params":%s}]}`
	cases := []struct{ name, params, want string }{
		{"duplex",
			`{"duplex":true,"lambda_bit_per_hour":1e-8,"horizon_hours":48,"trials":1000}`,
			"duplex"},
		{"detection latency",
			`{"lambda_bit_per_hour":1e-8,"detection_latency_hours":1,"horizon_hours":48,"trials":1000}`,
			"detection_latency"},
		{"periodic scrub",
			`{"lambda_bit_per_hour":1e-8,"scrub_period_hours":4,"horizon_hours":48,"trials":1000}`,
			"exponential"},
		{"already common",
			`{"lambda_bit_per_hour":6e-4,"lambda_symbol_per_hour":2e-4,"horizon_hours":48,"trials":1000}`,
			"needs no tilting"},
	}
	for _, c := range cases {
		f, err := Parse([]byte(fmt.Sprintf(base, c.params)))
		if err != nil {
			t.Fatalf("%s: parse: %v", c.name, err)
		}
		_, err = f.BuildAll()
		if err == nil {
			t.Errorf("%s: built", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

// TestMemsimTiltAgreesWithChain cross-validates the importance-sampled
// estimator against the analytic simplex chain in a regime where the
// untilted probability is still computable by plain Monte Carlo: the
// weighted capability-exceeded estimate under an explicit tilt must
// land within four standard errors of the chain's absorption
// probability (the same gate the "auto" method installs).
func TestMemsimTiltAgreesWithChain(t *testing.T) {
	doc := `{
	  "seed": 3, "workers": 4,
	  "scenarios": [{
	    "name": "tilt-xval",
	    "kind": "memsim",
	    "sampling": {"method": "tilt", "factor": 16},
	    "params": {"n": 18, "k": 16, "lambda_bit_per_hour": 2e-5,
	               "scrub_period_hours": 4, "exponential_scrub": true,
	               "horizon_hours": 48, "trials": 200000}
	  }]
	}`
	f, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	built, err := f.BuildAll()
	if err != nil {
		t.Fatal(err)
	}
	b := built[0]
	if !strings.Contains(b.Scenario.Name(), "tilt=16") {
		t.Fatalf("tilt factor missing from scenario identity: %s", b.Scenario.Name())
	}
	cres, err := campaign.Run(b.Scenario, b.EngineConfig(f))
	if err != nil {
		t.Fatal(err)
	}
	// The chain truth for the same parameters (exponential scrub rate
	// 1/4 per hour), untilted.
	probs, err := simplex.FailProbabilities(simplex.Params{
		N: 18, K: 16, M: 8, Lambda: 2e-5, ScrubRate: 0.25,
	}, []float64{48})
	if err != nil {
		t.Fatal(err)
	}
	want := probs[0]
	est := cres.WeightedFraction(memsim.CounterCapabilityExceeded)
	se := cres.StdErr(memsim.CounterCapabilityExceeded)
	if se <= 0 {
		t.Fatalf("zero standard error: %+v", cres.Weights)
	}
	if dev := math.Abs(est-want) / se; dev > 4 {
		t.Fatalf("tilted estimate %.6e deviates from chain %.6e by %.1f sigma", est, want, dev)
	}
	if ess := cres.EffectiveSamples(memsim.CounterCapabilityExceeded); ess <= 0 || ess > float64(cres.Trials) {
		t.Errorf("implausible effective sample size %v of %d trials", ess, cres.Trials)
	}
}

// TestWeightedSpecDeterministicAcrossWorkers: the importance-sampled
// path must keep the engine's worker-count independence.
func TestWeightedSpecDeterministicAcrossWorkers(t *testing.T) {
	doc := `{
	  "seed": 5,
	  "scenarios": [{
	    "name": "tilt-det",
	    "kind": "memsim",
	    "sampling": {"method": "tilt", "factor": 1000},
	    "params": {"n": 18, "k": 16, "lambda_bit_per_hour": 1.7e-8,
	               "lambda_symbol_per_hour": 8.5e-10,
	               "scrub_period_hours": 4, "exponential_scrub": true,
	               "horizon_hours": 48, "trials": 4000}
	  }]
	}`
	var results []*campaign.Result
	for _, workers := range []int{1, 4, 8} {
		f, err := Parse([]byte(doc))
		if err != nil {
			t.Fatal(err)
		}
		f.Workers = workers
		built, err := f.BuildAll()
		if err != nil {
			t.Fatal(err)
		}
		cres, err := campaign.Run(built[0].Scenario, built[0].EngineConfig(f))
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, cres)
	}
	for i := 1; i < len(results); i++ {
		if !reflect.DeepEqual(results[0], results[i]) {
			t.Fatalf("worker count changed the weighted result:\n%+v\nvs\n%+v", results[0], results[i])
		}
	}
}

// TestWeightedPartitionedSpecMerges: a tilted spec partitioned 3 ways
// through the spec layer must merge bit-identically to the
// unpartitioned run.
func TestWeightedPartitionedSpecMerges(t *testing.T) {
	doc := `{
	  "seed": 7, "workers": 4,
	  "scenarios": [{
	    "name": "tilt-part",
	    "kind": "memsim",
	    "sampling": {"method": "tilt", "factor": 1000},
	    "stop": {"counter": "capability_exceeded", "rel_half_width": 0.25, "min_trials": 500},
	    "params": {"n": 18, "k": 16, "lambda_bit_per_hour": 1.7e-8,
	               "lambda_symbol_per_hour": 8.5e-10,
	               "scrub_period_hours": 4, "exponential_scrub": true,
	               "horizon_hours": 48, "trials": 30000}
	  }]
	}`
	f, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	built, err := f.BuildAll()
	if err != nil {
		t.Fatal(err)
	}
	b := built[0]
	want, err := campaign.Run(b.Scenario, b.EngineConfig(f))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for i := 0; i < 3; i++ {
		p, err := b.RunPartition(f, campaign.Partition{Index: i, Count: 3}, dir)
		if err != nil {
			t.Fatal(err)
		}
		p.Close()
	}
	got, err := b.MergePartials(f, dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("partitioned weighted spec merge diverged:\nwant %+v\ngot  %+v", want, got)
	}
}

// TestAdaptiveRun: round-based adaptive allocation must satisfy every
// stop rule, be deterministic across repeated runs, and leave resumable
// partial artifacts.
func TestAdaptiveRun(t *testing.T) {
	doc := `{
	  "seed": 13, "workers": 4,
	  "adaptive": {"round_trials": 4000, "max_rounds": 8},
	  "scenarios": [
	    {
	      "name": "common",
	      "kind": "memsim",
	      "stop": {"counter": "capability_exceeded", "rel_half_width": 0.1, "min_trials": 200},
	      "params": {"duplex": true, "lambda_bit_per_hour": 6e-4, "lambda_symbol_per_hour": 2e-4,
	                 "scrub_period_hours": 4, "exponential_scrub": true,
	                 "horizon_hours": 48, "trials": 20000}
	    },
	    {
	      "name": "rare-tilted",
	      "kind": "memsim",
	      "sampling": {"method": "tilt", "factor": 19169},
	      "stop": {"counter": "capability_exceeded", "rel_half_width": 0.15, "min_trials": 500},
	      "params": {"n": 18, "k": 16, "lambda_bit_per_hour": 1.7e-8,
	                 "lambda_symbol_per_hour": 8.5e-10,
	                 "scrub_period_hours": 4, "exponential_scrub": true,
	                 "horizon_hours": 48, "trials": 40000}
	    }
	  ]
	}`
	runOnce := func(dir string) []*campaign.Result {
		f, err := Parse([]byte(doc))
		if err != nil {
			t.Fatal(err)
		}
		built, err := f.BuildAll()
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunAdaptive(f, built, dir, t.Logf)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := runOnce(t.TempDir())
	if len(a) != 2 {
		t.Fatalf("got %d results", len(a))
	}
	for i, res := range a {
		if !res.EarlyStopped && res.Trials < res.Requested {
			t.Errorf("result %d neither stopped nor exhausted: %d of %d trials", i, res.Trials, res.Requested)
		}
	}
	// The allocator must not have spent the whole budget on the cheap
	// cell: the tilted rare cell needs and gets trials too.
	if a[1].Trials < 500 {
		t.Errorf("rare cell starved: %d trials", a[1].Trials)
	}
	// Determinism: a fresh run over a fresh directory reproduces the
	// results bit for bit.
	b := runOnce(t.TempDir())
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("adaptive run not deterministic:\n%+v\nvs\n%+v", a, b)
	}
}

// TestAdaptiveValidation: the adaptive block demands a stop rule on
// every scenario and sane round parameters.
func TestAdaptiveValidation(t *testing.T) {
	cases := []struct{ name, doc, want string }{
		{"no stop",
			`{"adaptive":{"round_trials":100},"scenarios":[{"name":"a","kind":"memsim"}]}`,
			"stop"},
		{"zero round trials",
			`{"adaptive":{"round_trials":0},"scenarios":[{"name":"a","kind":"memsim","stop":{"counter":"x","rel_half_width":0.1}}]}`,
			"round_trials"},
		{"negative rounds",
			`{"adaptive":{"round_trials":100,"max_rounds":-1},"scenarios":[{"name":"a","kind":"memsim","stop":{"counter":"x","rel_half_width":0.1}}]}`,
			"max_rounds"},
	}
	for _, c := range cases {
		_, err := Parse([]byte(c.doc))
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

// TestWeightedRenderShowsEstimator: the memsim render of a tilted
// entry must surface the weighted estimate, relative error and ESS.
func TestWeightedRenderShowsEstimator(t *testing.T) {
	doc := `{
	  "seed": 17, "workers": 4,
	  "scenarios": [{
	    "name": "tilt-render",
	    "kind": "memsim",
	    "sampling": {"method": "tilt", "factor": 19169},
	    "params": {"n": 18, "k": 16, "lambda_bit_per_hour": 1.7e-8,
	               "lambda_symbol_per_hour": 8.5e-10,
	               "scrub_period_hours": 4, "exponential_scrub": true,
	               "horizon_hours": 48, "trials": 5000}
	  }]
	}`
	f, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	built, err := f.BuildAll()
	if err != nil {
		t.Fatal(err)
	}
	cres, err := campaign.Run(built[0].Scenario, built[0].EngineConfig(f))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := built[0].Render(&buf, cres); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"importance:", "tilt factor", "RE", "ESS"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("render missing %q:\n%s", want, buf.String())
		}
	}
}
