package spec

import (
	"fmt"
	"math"

	"repro/internal/campaign"
	"repro/internal/memsim"
	"repro/internal/simplex"
)

// autoTiltMax bounds the factor search: a tilt beyond this cannot
// arise from a sane rare-event configuration and usually means the
// untilted failure probability underflowed the chain solver.
const autoTiltMax = 1e9

// simplexParams maps a memsim configuration onto the analytic chain
// it cross-validates against (the same 1:1 mapping the memsim xval
// tests pin): per-bit SEU rate, per-symbol permanent rate, and the
// exponential scrub rate 1/period.
func simplexParams(cfg memsim.Config) simplex.Params {
	p := simplex.Params{
		N:       cfg.Code.N(),
		K:       cfg.Code.K(),
		M:       cfg.Code.Field().M(),
		Lambda:  cfg.LambdaBit,
		LambdaE: cfg.LambdaSymbol,
	}
	if cfg.ScrubPeriod > 0 {
		p.ScrubRate = 1 / cfg.ScrubPeriod
	}
	return p
}

// chainFail solves the simplex chain for the Fail probability at the
// horizon under jointly tilted fault rates.
func chainFail(cfg memsim.Config, tilt float64) (float64, error) {
	p := simplexParams(cfg)
	p.Lambda *= tilt
	p.LambdaE *= tilt
	probs, err := simplex.FailProbabilities(p, []float64{cfg.Horizon})
	if err != nil {
		return 0, err
	}
	return probs[0], nil
}

// resolveMemsimTilt turns an entry's sampling block into a concrete
// tilt factor for the memsim configuration. The "auto" method solves
// the factor from the analytic chain — bisecting the jointly tilted
// rates until the chain's Fail probability at the horizon reaches
// autoTiltTarget — and returns a merge-time gate that requires the
// weighted capability-exceeded estimate to agree with the chain's
// untilted answer within four standard errors. Auto needs the regime
// the chain models exactly: simplex, no detection latency, and
// exponential (or no) scrubbing.
func resolveMemsimTilt(e Entry, cfg memsim.Config) (float64, func(*campaign.Result) error, error) {
	s := e.Sampling
	if s.Method == SampleTilt {
		return s.Factor, nil, nil
	}
	switch {
	case cfg.Duplex:
		return 0, nil, fmt.Errorf("spec: scenario %q: auto sampling needs the simplex chain; duplex entries must give an explicit tilt factor", e.Name)
	case cfg.DetectionLatency != 0:
		return 0, nil, fmt.Errorf("spec: scenario %q: auto sampling models immediate fault location; detection_latency_hours must be 0", e.Name)
	case cfg.ScrubPeriod > 0 && !cfg.ExponentialScrub:
		return 0, nil, fmt.Errorf("spec: scenario %q: auto sampling models exponential scrub intervals; set exponential_scrub or drop scrubbing", e.Name)
	}
	p0, err := chainFail(cfg, 1)
	if err != nil {
		return 0, nil, fmt.Errorf("spec: scenario %q: auto sampling: %w", e.Name, err)
	}
	if p0 <= 0 {
		return 0, nil, fmt.Errorf("spec: scenario %q: auto sampling: analytic failure probability underflowed to 0; give an explicit tilt factor", e.Name)
	}
	if p0 >= autoTiltTarget {
		return 0, nil, fmt.Errorf("spec: scenario %q: auto sampling: analytic failure probability %.3e is already >= %g and needs no tilting", e.Name, p0, autoTiltTarget)
	}
	// Bracket, then bisect: the Fail probability is monotone in the
	// joint rate scale.
	hi := 2.0
	for {
		pt, err := chainFail(cfg, hi)
		if err != nil {
			return 0, nil, fmt.Errorf("spec: scenario %q: auto sampling: %w", e.Name, err)
		}
		if pt >= autoTiltTarget {
			break
		}
		hi *= 2
		if hi > autoTiltMax {
			return 0, nil, fmt.Errorf("spec: scenario %q: auto sampling: no tilt factor <= %g reaches target failure probability %g", e.Name, autoTiltMax, autoTiltTarget)
		}
	}
	lo := hi / 2
	if lo < 1 {
		lo = 1
	}
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		pt, err := chainFail(cfg, mid)
		if err != nil {
			return 0, nil, fmt.Errorf("spec: scenario %q: auto sampling: %w", e.Name, err)
		}
		if pt < autoTiltTarget {
			lo = mid
		} else {
			hi = mid
		}
	}
	factor := (lo + hi) / 2
	gate := func(cres *campaign.Result) error {
		est := cres.WeightedFraction(memsim.CounterCapabilityExceeded)
		se := cres.StdErr(memsim.CounterCapabilityExceeded)
		if se == 0 {
			if est == p0 {
				return nil
			}
			return fmt.Errorf("weighted %s estimate %.4e has zero standard error but disagrees with the analytic %.4e", memsim.CounterCapabilityExceeded, est, p0)
		}
		if dev := math.Abs(est-p0) / se; dev > 4 {
			return fmt.Errorf("weighted %s estimate %.4e deviates from the analytic chain's %.4e by %.1f standard errors (tilt %.6g)",
				memsim.CounterCapabilityExceeded, est, p0, dev, factor)
		}
		return nil
	}
	return factor, gate, nil
}
