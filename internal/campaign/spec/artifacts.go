package spec

import (
	"encoding/json"
	"os"
	"path/filepath"

	"repro/internal/campaign"
	"repro/internal/expdata"
)

// WriteArtifacts stores the result under the entry's sanitized
// artifact path below dir: <path>.json (the raw engine result,
// indented, written atomically) and <path>.csv (counters and
// samples). Matrix cells land in a subdirectory named after the
// matrix entry. This is the single artifact-writing path — the
// cmd/campaign run/merge flows and the fabric registry's per-job
// server-side merge all produce their result trees through it, which
// is what makes a job's artifact root byte-identical to a
// single-process run of the same spec.
func (b *Built) WriteArtifacts(dir string, cres *campaign.Result) error {
	base := filepath.Join(dir, filepath.FromSlash(b.Entry.ArtifactPath()))
	if err := os.MkdirAll(filepath.Dir(base), 0o755); err != nil {
		return err
	}
	if err := WriteResultJSON(base+".json", cres); err != nil {
		return err
	}
	csvFile, err := os.Create(base + ".csv")
	if err != nil {
		return err
	}
	defer csvFile.Close()
	if err := expdata.WriteCampaignCSV(csvFile, cres); err != nil {
		return err
	}
	return csvFile.Close()
}

// WriteResultJSON writes one campaign result as an indented JSON
// document, atomically (tmp + rename), so a crash mid-write — or a
// concurrent reader watching the results directory — never sees a
// truncated artifact.
func WriteResultJSON(path string, cres *campaign.Result) error {
	data, err := json.MarshalIndent(cres, "", "  ")
	if err != nil {
		return err
	}
	return expdata.WriteFileAtomic(path, append(data, '\n'), 0o644)
}
