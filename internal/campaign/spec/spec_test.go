package spec

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/campaign"
)

func TestParseValidation(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"empty", `{}`},
		{"no name", `{"scenarios":[{"kind":"memsim"}]}`},
		{"dup name", `{"scenarios":[{"name":"a","kind":"memsim"},{"name":"a","kind":"mbusim"}]}`},
		{"bad kind", `{"scenarios":[{"name":"a","kind":"nope"}]}`},
		{"unknown field", `{"scenarios":[{"name":"a","kind":"memsim","bogus":1}]}`},
		{"stop no counter", `{"scenarios":[{"name":"a","kind":"memsim","stop":{"rel_half_width":0.1}}]}`},
		{"expect no counter", `{"scenarios":[{"name":"a","kind":"memsim","expect":[{"min_fraction":0.1}]}]}`},
		{"expect no bound", `{"scenarios":[{"name":"a","kind":"memsim","expect":[{"counter":"x"}]}]}`},
		{"not json", `nope`},
	}
	for _, c := range cases {
		if _, err := Parse([]byte(c.doc)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestBuildRejectsBadParams(t *testing.T) {
	f := &File{Seed: 1, Scenarios: []Entry{{Name: "a", Kind: "memsim"}}}
	cases := []Entry{
		{Name: "a", Kind: "memsim", Params: []byte(`{"bogus":1}`)},
		{Name: "a", Kind: "memsim", Params: []byte(`{"trials":0,"horizon_hours":1}`)},
		{Name: "a", Kind: "memsim", Params: []byte(`{"n":3,"k":5,"trials":1,"horizon_hours":1}`)},
		{Name: "a", Kind: "mbusim", Params: []byte(`{"events_per_kilobit":0,"burst_bits":1,"trials":1}`)},
		{Name: "a", Kind: "bercurve", Params: []byte(`{"hours":0}`)},
		{Name: "a", Kind: "bercurve", Params: []byte(`{"hours":48,"arrangement":"triplex"}`)},
		{Name: "a", Kind: "tradeoff", Params: []byte(`{"hours":0}`)},
		{Name: "a", Kind: "experiments", Params: []byte(`{"ids":["nope"]}`)},
		{Name: "a", Kind: "interleave", Params: []byte(`{"bogus":1}`)},
		{Name: "a", Kind: "interleave", Params: []byte(`{"trials":0,"horizon_hours":1}`)},
		{Name: "a", Kind: "interleave", Params: []byte(`{"depth":-1,"trials":1,"horizon_hours":1}`)},
		{Name: "a", Kind: "array", Params: []byte(`{"hours":0,"trials":1}`)},
		{Name: "a", Kind: "array", Params: []byte(`{"hours":1,"trials":1,"arrangement":"triplex"}`)},
		{Name: "a", Kind: "array", Params: []byte(`{"hours":1,"trials":1,"n":3,"k":5}`)},
	}
	for i, e := range cases {
		if _, err := Build(e, f); err == nil {
			t.Errorf("case %d (%s): bad params accepted", i, e.Kind)
		}
	}
}

func TestMemsimSpecRoundTrip(t *testing.T) {
	doc := `{
	  "seed": 9,
	  "scenarios": [{
	    "name": "mission",
	    "kind": "memsim",
	    "params": {"duplex": true, "lambda_bit_per_hour": 6e-4,
	               "lambda_symbol_per_hour": 2e-4, "scrub_period_hours": 4,
	               "exponential_scrub": true, "horizon_hours": 48, "trials": 500},
	    "expect": [{"counter": "capability_exceeded", "min_fraction": 0.5, "max_fraction": 1.0}]
	  }]
	}`
	f, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	built, err := f.BuildAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(built) != 1 {
		t.Fatalf("built %d scenarios", len(built))
	}
	b := built[0]
	if b.Scenario.Trials() != 500 {
		t.Errorf("trials = %d", b.Scenario.Trials())
	}
	if !strings.Contains(b.Scenario.Name(), "seed=9") {
		t.Errorf("file-level seed not inherited: %s", b.Scenario.Name())
	}
	cres, err := campaign.Run(b.Scenario, b.EngineConfig(f))
	if err != nil {
		t.Fatal(err)
	}
	if errs := b.CheckExpectations(cres); len(errs) != 0 {
		t.Errorf("expectations failed: %v", errs)
	}
	var buf bytes.Buffer
	if err := b.Render(&buf, cres); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"duplex", "cap. exceeded", "fail fraction"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("render missing %q:\n%s", want, buf.String())
		}
	}
}

func TestExpectationBands(t *testing.T) {
	cres := &campaign.Result{Trials: 100, Counters: map[string]int64{"hits": 50}}
	band := func(min, max *float64) Expectation {
		return Expectation{Counter: "hits", MinFraction: min, MaxFraction: max}
	}
	f := func(v float64) *float64 { return &v }
	if err := band(f(0.4), f(0.6)).Check(cres); err != nil {
		t.Errorf("in-band value rejected: %v", err)
	}
	if err := band(f(0.6), nil).Check(cres); err == nil {
		t.Error("below-minimum value accepted")
	}
	if err := band(nil, f(0.4)).Check(cres); err == nil {
		t.Error("above-maximum value accepted")
	}
	// Missing counters read as fraction 0, so a minimum catches a
	// scenario that silently stopped recording.
	if err := (Expectation{Counter: "gone", MinFraction: f(0.01)}).Check(cres); err == nil {
		t.Error("missing counter with minimum accepted")
	}
}

func TestBERCurveSpecMatchesPoints(t *testing.T) {
	scn, err := NewBERCurve(BERCurveParams{
		Arrangement: "duplex",
		SEUPerBit:   1.7e-5,
		ScrubSec:    3600,
		Hours:       48,
		Points:      5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if scn.Trials() != 5 {
		t.Fatalf("trials = %d, want 5", scn.Trials())
	}
	cres, err := campaign.Run(scn, campaign.Config{Workers: 2, ShardSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	xs, ys := cres.SeriesPoints(SeriesBER)
	if len(xs) != 5 {
		t.Fatalf("got %d points", len(xs))
	}
	if xs[0] != 0 || xs[4] != 48 {
		t.Errorf("grid endpoints %v", xs)
	}
	if ys[0] != 0 {
		t.Errorf("BER(0) = %v, want 0", ys[0])
	}
	for i := 1; i < len(ys); i++ {
		if ys[i] <= ys[i-1] {
			t.Errorf("BER not increasing at %d: %v", i, ys)
		}
	}
}

func TestTradeoffSpecCandidates(t *testing.T) {
	scn, err := NewTradeoff(TradeoffParams{
		SEUPerBit: 1.7e-5, PermPerSym: 1e-7, ScrubSec: 3600, Hours: 48,
		MaxRed: 4, DuplexMaxRed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(scn.Candidates()); got != 3 {
		t.Fatalf("got %d candidates, want 3 (simplex 18,20 + duplex 18)", got)
	}
	cres, err := campaign.Run(scn, campaign.Config{Workers: 3, ShardSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range scn.Candidates() {
		ber, mttdl, cycles, gates, overhead, ok := scn.MetricsFor(cres, i)
		if !ok {
			t.Fatalf("candidate %s missing", c.Label())
		}
		if ber <= 0 || mttdl <= 0 || cycles <= 0 || gates <= 0 || overhead <= 1 {
			t.Errorf("%s: implausible metrics ber=%g mttdl=%g cycles=%g gates=%g overhead=%g",
				c.Label(), ber, mttdl, cycles, gates, overhead)
		}
	}
	var buf bytes.Buffer
	if err := RenderTradeoff(&buf, scn, cres); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "simplex RS(20,16)") {
		t.Errorf("table missing candidate:\n%s", buf.String())
	}
}

// TestInterleaveDetectionParams: the stuck-column detection policy is
// a first-class interleave param — matrix-sweepable, reflected in the
// scenario name (except immediate, which keeps the historical name so
// old checkpoints stay resumable), and validated at build time.
func TestInterleaveDetectionParams(t *testing.T) {
	doc := `{"seed": 1, "scenarios": [{
	  "name": "det", "kind": "interleave",
	  "params": {"depth": 2, "lambda_column_per_hour": 1e-3,
	             "detection_latency_hours": 6, "scrub_period_hours": 2,
	             "horizon_hours": 4, "trials": 50},
	  "matrix": {"detection": ["immediate", "scrub", "latency"]}}]}`
	f, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	built, err := f.BuildAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(built) != 3 {
		t.Fatalf("built %d cells, want 3", len(built))
	}
	names := map[string]bool{}
	for _, b := range built {
		names[b.Scenario.Name()] = true
	}
	if len(names) != 3 {
		t.Errorf("detection cells share scenario names: %v", names)
	}
	for _, b := range built {
		if strings.Contains(b.Entry.Name, "immediate") && strings.Contains(b.Scenario.Name(), "det=") {
			t.Errorf("immediate cell renamed the scenario (breaks old checkpoints): %s", b.Scenario.Name())
		}
	}

	bad := `{"scenarios": [{"name": "x", "kind": "interleave",
	  "params": {"depth": 2, "detection": "eventually", "horizon_hours": 1, "trials": 1}}]}`
	fb, err := Parse([]byte(bad))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fb.BuildAll(); err == nil {
		t.Error("unknown detection policy built")
	}
}
