// Package campaign is the experiment-orchestration engine shared by
// every simulator and analytic sweep in this repository. A Scenario
// describes a fixed number of deterministic-seeded trials plus a
// factory for per-goroutine Workers (which own all reusable scratch:
// codec workspaces, RNGs, modules). The engine shards the trial range
// into fixed-size contiguous shards, fans the shards out over a
// worker pool, and merges per-shard accumulators in shard order, so
// the aggregate statistics are bit-identical for any worker count.
//
// On top of that base the engine provides:
//
//   - early stopping: once the Wilson confidence interval of a chosen
//     counter is narrow enough over a contiguous prefix of shards, the
//     campaign stops and discards any later shards already computed —
//     the stopping point is a pure function of the shard contents, so
//     early-stopped results are also worker-count independent;
//   - checkpointing: completed shards are periodically written to a
//     JSON file (atomically, via rename), and a rerun pointed at the
//     same file resumes with only the missing shards — a resumed
//     campaign is bit-identical to an uninterrupted one;
//   - structured results: trials report named int64 counters, (x, y)
//     samples grouped into labeled series, and free-form notes, which
//     downstream formatting (internal/expdata, the cmd/ binaries)
//     turns into tables, TSV, JSON or plots instead of printf.
//
// Determinism contract: a Worker must derive all randomness for trial
// i from the trial index (see TrialSeed), never from shared state, and
// must record per-trial output through the Acc it is handed. Counters
// merge by addition; samples and notes carry their trial index and are
// reassembled in trial order.
package campaign

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Scenario describes one experiment: how many trials it has and how
// to build per-goroutine workers.
type Scenario interface {
	// Name identifies the scenario in results and checkpoints.
	Name() string
	// Trials is the total number of independent trials requested.
	Trials() int
	// NewWorker builds the per-goroutine state (codec workspaces,
	// RNG, scratch buffers). It is called once per worker goroutine.
	NewWorker() (Worker, error)
}

// Worker executes trials. Each trial must be a pure function of its
// trial index (plus the scenario configuration), so that sharding is
// invisible in the aggregate.
type Worker interface {
	Trial(trial int, acc *Acc) error
}

// TrialSeed derives the deterministic per-trial RNG seed every
// scenario in this repository uses: reseeding a worker-owned
// generator with TrialSeed(base, i) makes trial i reproducible
// regardless of which worker runs it, without per-trial allocation.
func TrialSeed(base int64, trial int) int64 {
	return base + int64(trial)*0x9E3779B9
}

// Sample is one recorded (x, y) point of a labeled series.
type Sample struct {
	Trial  int
	Series string
	X, Y   float64
}

// Note is one free-form observation attached to a trial.
type Note struct {
	Trial int    `json:"trial"`
	Text  string `json:"text"`
}

// Acc accumulates the output of one shard's trials. It is not safe
// for concurrent use; the engine hands each shard its own.
type Acc struct {
	counters map[string]int64
	samples  []Sample
	notes    []Note
}

// NewAcc returns an empty accumulator.
func NewAcc() *Acc {
	return &Acc{counters: make(map[string]int64)}
}

// Add increments a named counter.
func (a *Acc) Add(counter string, delta int64) {
	a.counters[counter] += delta
}

// Sample records an (x, y) point for a labeled series.
func (a *Acc) Sample(trial int, series string, x, y float64) {
	a.samples = append(a.samples, Sample{Trial: trial, Series: series, X: x, Y: y})
}

// Note records a free-form observation for a trial.
func (a *Acc) Note(trial int, format string, args ...any) {
	a.notes = append(a.notes, Note{Trial: trial, Text: fmt.Sprintf(format, args...)})
}

// merge folds b into a. Counter addition is commutative; samples and
// notes are appended, so callers must merge shards in index order to
// keep them sorted by trial.
func (a *Acc) merge(b *Acc) {
	for k, v := range b.counters {
		a.counters[k] += v
	}
	a.samples = append(a.samples, b.samples...)
	a.notes = append(a.notes, b.notes...)
}

// EarlyStop stops a campaign once a binomial counter is resolved
// precisely enough. The decision is evaluated only over contiguous
// prefixes of completed shards, which makes the stopping trial count
// a deterministic function of the scenario and shard size.
type EarlyStop struct {
	// Counter is the name of the counter treated as binomial
	// successes out of the trials run so far.
	Counter string
	// RelHalfWidth stops the campaign when the Wilson half-width is
	// at most RelHalfWidth times the point estimate (and at least one
	// success has been observed).
	RelHalfWidth float64
	// Z is the interval's z-score; 0 means 1.96 (95%).
	Z float64
	// MinTrials defers stopping until at least this many trials.
	MinTrials int
}

func (s *EarlyStop) validate() error {
	if s.Counter == "" {
		return fmt.Errorf("campaign: early stop needs a counter name")
	}
	if s.RelHalfWidth <= 0 || math.IsNaN(s.RelHalfWidth) {
		return fmt.Errorf("campaign: invalid early-stop relative half-width %v", s.RelHalfWidth)
	}
	if s.Z < 0 || math.IsNaN(s.Z) {
		return fmt.Errorf("campaign: invalid early-stop z %v", s.Z)
	}
	return nil
}

// z returns the configured z-score, defaulting to 1.96.
func (s *EarlyStop) z() float64 {
	if s.Z == 0 {
		return 1.96
	}
	return s.Z
}

// satisfied reports whether the interval is narrow enough at the
// given prefix totals.
func (s *EarlyStop) satisfied(successes int64, trials int) bool {
	if trials < s.MinTrials || successes <= 0 {
		return false
	}
	p := float64(successes) / float64(trials)
	lo, hi := Wilson(successes, int64(trials), s.z())
	return (hi-lo)/2 <= s.RelHalfWidth*p
}

// DefaultShardSize is the trial count per shard when Config.ShardSize
// is zero: small enough that checkpoints and early-stop checks are
// frequent, large enough that shard dispatch overhead is invisible.
const DefaultShardSize = 256

// Config tunes the engine; the zero value runs every trial on
// GOMAXPROCS workers with no checkpointing or early stopping.
type Config struct {
	// Workers is the goroutine count; 0 means GOMAXPROCS.
	Workers int
	// ShardSize is the number of consecutive trials per shard
	// (checkpoint and early-stop granularity); 0 means
	// DefaultShardSize. Results are independent of Workers for any
	// fixed ShardSize; the early-stop point may move with ShardSize.
	ShardSize int
	// Checkpoint is the path of the resumable-progress file; ""
	// disables checkpointing. If the file exists it must describe the
	// same scenario (name, trials, shard size) and its completed
	// shards are not recomputed.
	Checkpoint string
	// CheckpointEvery writes the file after every N newly completed
	// shards; 0 throttles adaptively (at most about one write per
	// second, plus a final flush), which keeps re-marshaling the
	// growing checkpoint from dominating cheap-trial campaigns.
	CheckpointEvery int
	// Stop optionally ends the campaign once a counter's confidence
	// interval is narrow enough.
	Stop *EarlyStop
	// Progress, when non-nil, is called from the collector as trials
	// complete (monotonically, including resumed trials).
	Progress func(doneTrials, totalTrials int)
}

// Result is the merged output of a campaign.
type Result struct {
	Scenario string `json:"scenario"`
	// Requested is the scenario's full trial count; Trials is the
	// number actually contributing to the statistics (smaller only
	// when early stopping triggered).
	Requested    int  `json:"requested_trials"`
	Trials       int  `json:"trials"`
	EarlyStopped bool `json:"early_stopped,omitempty"`
	// ResumedTrials counts trials restored from a checkpoint rather
	// than recomputed in this run.
	ResumedTrials int              `json:"resumed_trials,omitempty"`
	Counters      map[string]int64 `json:"counters"`
	Samples       []Sample         `json:"samples,omitempty"`
	Notes         []Note           `json:"notes,omitempty"`
}

// Counter returns a counter value (0 when absent).
func (r *Result) Counter(name string) int64 { return r.Counters[name] }

// Fraction returns Counter(name) / Trials.
func (r *Result) Fraction(name string) float64 {
	if r.Trials == 0 {
		return 0
	}
	return float64(r.Counters[name]) / float64(r.Trials)
}

// CounterNames returns the sorted counter keys.
func (r *Result) CounterNames() []string {
	names := make([]string, 0, len(r.Counters))
	for k := range r.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// SeriesNames returns the labels of all sample series in order of
// first appearance.
func (r *Result) SeriesNames() []string {
	var names []string
	seen := make(map[string]bool)
	for _, s := range r.Samples {
		if !seen[s.Series] {
			seen[s.Series] = true
			names = append(names, s.Series)
		}
	}
	return names
}

// SeriesPoints returns the (x, y) points of one series in trial order.
func (r *Result) SeriesPoints(series string) (xs, ys []float64) {
	for _, s := range r.Samples {
		if s.Series == series {
			xs = append(xs, s.X)
			ys = append(ys, s.Y)
		}
	}
	return xs, ys
}

// Wilson returns the Wilson score interval for a binomial proportion
// at the given z (e.g. 1.96 for 95%).
func Wilson(successes, trials int64, z float64) (lo, hi float64) {
	if trials == 0 {
		return 0, 1
	}
	n := float64(trials)
	p := float64(successes) / n
	z2 := z * z
	denom := 1 + z2/n
	center := (p + z2/(2*n)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/n+z2/(4*n*n))
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// shardDone is one completed shard travelling from a worker to the
// collector.
type shardDone struct {
	index int
	acc   *Acc
	err   error
}

// Run executes the scenario under the config. The result is
// deterministic for a fixed scenario and shard size, independent of
// worker count, checkpoint interruptions, and scheduling.
func Run(scn Scenario, cfg Config) (*Result, error) {
	if scn == nil {
		return nil, fmt.Errorf("campaign: nil scenario")
	}
	total := scn.Trials()
	if total <= 0 {
		return nil, fmt.Errorf("campaign: scenario %q has no trials", scn.Name())
	}
	if cfg.Stop != nil {
		if err := cfg.Stop.validate(); err != nil {
			return nil, err
		}
	}
	shardSize := cfg.ShardSize
	if shardSize <= 0 {
		shardSize = DefaultShardSize
	}
	numShards := (total + shardSize - 1) / shardSize

	accs := make([]*Acc, numShards)
	resumedTrials := 0
	if cfg.Checkpoint != "" {
		n, err := loadCheckpoint(cfg.Checkpoint, scn.Name(), total, shardSize, accs)
		if err != nil {
			return nil, err
		}
		resumedTrials = n
	}

	var pending []int
	for i, a := range accs {
		if a == nil {
			pending = append(pending, i)
		}
	}

	shardSpan := func(idx int) (lo, hi int) {
		lo = idx * shardSize
		hi = lo + shardSize
		if hi > total {
			hi = total
		}
		return lo, hi
	}

	// Early-stop and contiguous-prefix state. A checkpoint-restored
	// prefix is evaluated shard by shard exactly like live progress,
	// so a resumed run reproduces the original stopping point even
	// when the checkpoint holds in-flight shards beyond it.
	var (
		firstErr     error
		stopFlag     int64
		prefix       int
		prefixCounts = make(map[string]int64)
		stopPrefix   = -1 // shard count at which early stop triggered
	)
	checkStop := func() {
		if cfg.Stop == nil || stopPrefix >= 0 || firstErr != nil {
			return
		}
		_, trialsSoFar := shardSpan(prefix - 1)
		successes := prefixCounts[cfg.Stop.Counter]
		if successes > int64(trialsSoFar) {
			// A counter that increments more than once per trial is
			// not a binomial proportion; the Wilson width would be
			// NaN and the stop rule would silently never fire.
			firstErr = fmt.Errorf("campaign: %s: early-stop counter %q is not per-trial (%d over %d trials)",
				scn.Name(), cfg.Stop.Counter, successes, trialsSoFar)
			atomic.StoreInt64(&stopFlag, 1)
			return
		}
		if cfg.Stop.satisfied(successes, trialsSoFar) {
			stopPrefix = prefix
			atomic.StoreInt64(&stopFlag, 1)
		}
	}
	advancePrefix := func() {
		for prefix < numShards && accs[prefix] != nil {
			for k, v := range accs[prefix].counters {
				prefixCounts[k] += v
			}
			prefix++
			checkStop()
		}
	}
	advancePrefix()
	if stopPrefix >= 0 || firstErr != nil {
		// The restored prefix already decided the campaign; don't
		// start workers for shards that would be discarded anyway.
		pending = nil
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pending) {
		workers = len(pending)
	}

	var nextPending int64 = -1
	// The bounded buffer applies backpressure: workers can run at most
	// ~2x workers shards ahead of the collector, so an early-stop
	// decision (made by the collector) takes effect before cheap
	// trials race through the whole budget, and checkpoint writes
	// never lag unboundedly behind computed work.
	resultsCap := 2 * workers
	if resultsCap > len(pending) {
		resultsCap = len(pending)
	}
	results := make(chan shardDone, resultsCap)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			worker, err := scn.NewWorker()
			if err != nil {
				results <- shardDone{index: -1, err: fmt.Errorf("campaign: %s: new worker: %w", scn.Name(), err)}
				return
			}
			for {
				i := atomic.AddInt64(&nextPending, 1)
				if i >= int64(len(pending)) || atomic.LoadInt64(&stopFlag) != 0 {
					return
				}
				shard := pending[i]
				lo, hi := shardSpan(shard)
				acc := NewAcc()
				for t := lo; t < hi; t++ {
					if err := worker.Trial(t, acc); err != nil {
						atomic.StoreInt64(&stopFlag, 1)
						results <- shardDone{index: shard, err: fmt.Errorf("campaign: %s: trial %d: %w", scn.Name(), t, err)}
						return
					}
				}
				results <- shardDone{index: shard, acc: acc}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Collector: merge shards, advance the contiguous prefix, decide
	// early stopping, and checkpoint progress.
	var (
		sinceWrite = 0
		doneTrials = resumedTrials
		lastWrite  = time.Now()
	)
	// CheckpointEvery > 0 writes after exactly that many new shards;
	// the default throttles to about one write per second so that
	// cheap-trial campaigns don't spend their time re-marshaling a
	// growing checkpoint after every shard (resume just recomputes
	// whatever the last write missed).
	shouldWrite := func() bool {
		if cfg.Checkpoint == "" || sinceWrite == 0 {
			return false
		}
		if cfg.CheckpointEvery > 0 {
			return sinceWrite >= cfg.CheckpointEvery
		}
		return time.Since(lastWrite) >= time.Second
	}
	reportProgress := func() {
		if cfg.Progress != nil {
			cfg.Progress(doneTrials, total)
		}
	}
	reportProgress()

	for done := range results {
		if done.err != nil {
			if firstErr == nil {
				firstErr = done.err
			}
			continue
		}
		accs[done.index] = done.acc
		lo, hi := shardSpan(done.index)
		doneTrials += hi - lo
		advancePrefix()
		sinceWrite++
		if shouldWrite() {
			if err := writeCheckpoint(cfg.Checkpoint, scn.Name(), total, shardSize, accs); err != nil && firstErr == nil {
				firstErr = err
				atomic.StoreInt64(&stopFlag, 1)
			}
			sinceWrite = 0
			lastWrite = time.Now()
		}
		reportProgress()
	}

	// Flush progress (including partial progress before an error) so
	// an aborted campaign resumes where it stopped.
	if cfg.Checkpoint != "" && sinceWrite > 0 {
		if err := writeCheckpoint(cfg.Checkpoint, scn.Name(), total, shardSize, accs); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}

	useShards := numShards
	earlyStopped := false
	if stopPrefix >= 0 {
		useShards = stopPrefix
		earlyStopped = stopPrefix < numShards
	} else if prefix < numShards {
		// No early stop requested/triggered, yet a gap remains: a
		// worker exited early without reporting an error (impossible
		// unless a Worker panicked and was recovered elsewhere).
		return nil, fmt.Errorf("campaign: %s: incomplete campaign: %d of %d shards done", scn.Name(), prefix, numShards)
	}

	merged := NewAcc()
	for i := 0; i < useShards; i++ {
		merged.merge(accs[i])
	}
	_, trials := shardSpan(useShards - 1)
	res := &Result{
		Scenario:      scn.Name(),
		Requested:     total,
		Trials:        trials,
		EarlyStopped:  earlyStopped,
		ResumedTrials: resumedTrials,
		Counters:      merged.counters,
		Samples:       merged.samples,
		Notes:         merged.notes,
	}
	return res, nil
}
