// Package campaign is the experiment-orchestration engine shared by
// every simulator and analytic sweep in this repository. A Scenario
// describes a fixed number of deterministic-seeded trials plus a
// factory for per-goroutine Workers (which own all reusable scratch:
// codec workspaces, RNGs, modules).
//
// The engine is three explicit layers:
//
//   - the planner (NewPlan) deterministically shards the trial range
//     into fixed-size contiguous shards and assigns a contiguous slice
//     of that shard range to a Partition{Index, Count} — shard
//     boundaries and the TrialSeed stream depend only on the global
//     trial index, so any partitioning of the range computes the very
//     same shards a single process would;
//   - the executor (Execute) runs one partition's shards over a
//     worker-goroutine pool and records them into a self-describing
//     partial-result artifact — an append-only JSON Lines file of
//     per-shard counters, samples and notes that doubles as the
//     resumable checkpoint and as the spill target that keeps
//     executor memory bounded for million-sample campaigns;
//   - the merger (Merge) folds any set of partials — from one process
//     or many — in global shard order into a Result that is
//     bit-identical to the single-process run, after validating that
//     the partials share one campaign fingerprint and cover the shard
//     range disjointly and completely.
//
// Run composes the three layers for the common single-process case.
// On top of that base the engine provides:
//
//   - early stopping: once the Wilson confidence interval of a chosen
//     counter is narrow enough over a contiguous prefix of shards, the
//     campaign stops and discards any later shards already computed —
//     the stopping point is a pure function of the shard contents, so
//     early-stopped results are also worker-count independent. A
//     single-process executor stops launching shards as soon as the
//     rule fires; partitioned executors cannot see the global prefix,
//     so they run their whole slice (deliberately over-running the
//     stopping point) and the merger re-decides the stop on the
//     contiguous prefix, which lands on the identical shard;
//   - checkpointing: every completed shard is appended to the partial
//     artifact, and a rerun pointed at the same file resumes with
//     only the missing shards — a resumed campaign is bit-identical
//     to an uninterrupted one (legacy single-object checkpoints are
//     migrated transparently);
//   - structured results: trials report named int64 counters, (x, y)
//     samples grouped into labeled series, and free-form notes, which
//     downstream formatting (internal/expdata, the cmd/ binaries)
//     turns into tables, TSV, JSON or plots instead of printf — or,
//     via a merge Sink, streams to disk without ever materializing
//     the sample list in memory.
//
// Determinism contract: a Worker must derive all randomness for trial
// i from the trial index (see TrialSeed), never from shared state, and
// must record per-trial output through the Acc it is handed. Counters
// merge by addition; samples and notes carry their trial index and are
// reassembled in trial order.
package campaign

import (
	"fmt"
	"math"
	"sort"
)

// Scenario describes one experiment: how many trials it has and how
// to build per-goroutine workers.
type Scenario interface {
	// Name identifies the scenario in results and checkpoints.
	Name() string
	// Trials is the total number of independent trials requested.
	Trials() int
	// NewWorker builds the per-goroutine state (codec workspaces,
	// RNG, scratch buffers). It is called once per worker goroutine.
	NewWorker() (Worker, error)
}

// Worker executes trials. Each trial must be a pure function of its
// trial index (plus the scenario configuration), so that sharding is
// invisible in the aggregate.
type Worker interface {
	Trial(trial int, acc *Acc) error
}

// WeightedScenario is implemented by scenarios whose trials carry
// importance-sampling weights (per-trial likelihood ratios recorded
// through Acc.AddWeighted). The planner stamps the flag into the plan
// so every layer — executor early stop, merger, fabric coordinator —
// evaluates the relative-error rule on the weighted estimator instead
// of the Wilson interval, and partial artifacts carry the version-3
// weight-moment records.
type WeightedScenario interface {
	Scenario
	// Weighted reports whether trials record likelihood-ratio weights.
	// A scenario returning false behaves exactly like a plain Scenario
	// (unit weights, version-2 artifacts, Wilson early stop).
	Weighted() bool
}

// TrialSeed derives the deterministic per-trial RNG seed every
// scenario in this repository uses: reseeding a worker-owned
// generator with TrialSeed(base, i) makes trial i reproducible
// regardless of which worker runs it, without per-trial allocation.
func TrialSeed(base int64, trial int) int64 {
	return base + int64(trial)*0x9E3779B9
}

// Sample is one recorded (x, y) point of a labeled series.
type Sample struct {
	Trial  int
	Series string
	X, Y   float64
}

// Note is one free-form observation attached to a trial.
type Note struct {
	Trial int    `json:"trial"`
	Text  string `json:"text"`
}

// Moments are the first two weight moments of a counter: the sum of
// per-increment weights and the sum of their squares. For N trials of
// which the counter's event occurred with likelihood ratios w_i, the
// unbiased estimate of the nominal-measure probability is WSum/N, its
// standard error sqrt((WSum2/N - (WSum/N)^2)/N), and the effective
// sample size WSum^2/WSum2. Unit weights give WSum == WSum2 == the
// integer counter.
type Moments struct {
	WSum  float64 `json:"wsum"`
	WSum2 float64 `json:"wsum2"`
}

// add folds another moment pair in (counters merge by addition, so do
// their weight moments).
func (m *Moments) add(o Moments) {
	m.WSum += o.WSum
	m.WSum2 += o.WSum2
}

// ESS returns the effective sample size (WSum^2/WSum2, 0 when empty).
func (m Moments) ESS() float64 {
	if m.WSum2 <= 0 {
		return 0
	}
	return m.WSum * m.WSum / m.WSum2
}

// Acc accumulates the output of one shard's trials. It is not safe
// for concurrent use; the engine hands each shard its own.
type Acc struct {
	counters map[string]int64
	weights  map[string]Moments
	samples  []Sample
	notes    []Note
}

// NewAcc returns an empty accumulator.
func NewAcc() *Acc {
	return &Acc{counters: make(map[string]int64)}
}

// Add increments a named counter.
func (a *Acc) Add(counter string, delta int64) {
	a.counters[counter] += delta
}

// AddWeighted records one weighted occurrence of a counter: the
// integer counter still advances by one (the raw number of simulated
// events, what Add would have recorded), and the counter's weight
// moments accumulate the trial's likelihood ratio w and w². Workers
// call it once per trial per outcome counter, with w the trial's
// importance-sampling weight; AddWeighted(c, 1) is equivalent to
// Add(c, 1) plus unit moments.
func (a *Acc) AddWeighted(counter string, w float64) {
	a.counters[counter]++
	if a.weights == nil {
		a.weights = make(map[string]Moments)
	}
	m := a.weights[counter]
	m.WSum += w
	m.WSum2 += w * w
	a.weights[counter] = m
}

// Counter returns a counter's accumulated value (0 when absent), so
// workers and their tests can inspect what a trial recorded.
func (a *Acc) Counter(name string) int64 { return a.counters[name] }

// Sample records an (x, y) point for a labeled series.
func (a *Acc) Sample(trial int, series string, x, y float64) {
	a.samples = append(a.samples, Sample{Trial: trial, Series: series, X: x, Y: y})
}

// Note records a free-form observation for a trial.
func (a *Acc) Note(trial int, format string, args ...any) {
	a.notes = append(a.notes, Note{Trial: trial, Text: fmt.Sprintf(format, args...)})
}

// EarlyStop stops a campaign once a binomial counter is resolved
// precisely enough. The decision is evaluated only over contiguous
// prefixes of completed shards, which makes the stopping trial count
// a deterministic function of the scenario and shard size.
type EarlyStop struct {
	// Counter is the name of the counter treated as binomial
	// successes out of the trials run so far.
	Counter string
	// RelHalfWidth stops the campaign when the Wilson half-width is
	// at most RelHalfWidth times the point estimate (and at least one
	// success has been observed).
	RelHalfWidth float64
	// Z is the interval's z-score; 0 means 1.96 (95%).
	Z float64
	// MinTrials defers stopping until at least this many trials.
	MinTrials int
}

func (s *EarlyStop) validate() error {
	if s.Counter == "" {
		return fmt.Errorf("campaign: early stop needs a counter name")
	}
	if s.RelHalfWidth <= 0 || math.IsNaN(s.RelHalfWidth) {
		return fmt.Errorf("campaign: invalid early-stop relative half-width %v", s.RelHalfWidth)
	}
	if s.Z < 0 || math.IsNaN(s.Z) {
		return fmt.Errorf("campaign: invalid early-stop z %v", s.Z)
	}
	return nil
}

// z returns the configured z-score, defaulting to 1.96.
func (s *EarlyStop) z() float64 {
	if s.Z == 0 {
		return 1.96
	}
	return s.Z
}

// Satisfied reports whether the stop rule fires at the given
// contiguous-prefix totals (successes of the stop counter over the
// trials folded so far). Exported for layers that re-decide the stop
// between merge rounds — the fabric coordinator evaluates it shard by
// shard as partial uploads arrive, exactly as Merge does, so the
// slices it cancels are the ones a single-process run would never
// have executed.
func (s *EarlyStop) Satisfied(successes int64, trials int) bool {
	return s.satisfied(successes, trials)
}

// satisfied reports whether the interval is narrow enough at the
// given prefix totals.
func (s *EarlyStop) satisfied(successes int64, trials int) bool {
	if trials < s.MinTrials || successes <= 0 {
		return false
	}
	p := float64(successes) / float64(trials)
	lo, hi := Wilson(successes, int64(trials), s.z())
	return (hi-lo)/2 <= s.RelHalfWidth*p
}

// SatisfiedWeighted is the stop rule's form for weighted campaigns: it
// fires when the relative error of the weighted estimator — z times
// its standard error over the point estimate — is at most
// RelHalfWidth. Like the Wilson form it is evaluated only on
// contiguous shard prefixes, so the stopping shard stays a pure
// function of the shard contents. Exported for the fabric
// coordinator's incremental re-decision, mirroring Satisfied.
func (s *EarlyStop) SatisfiedWeighted(m Moments, trials int) bool {
	if trials < s.MinTrials || m.WSum <= 0 {
		return false
	}
	p := m.WSum / float64(trials)
	se := WeightedStdErr(m, trials)
	return s.z()*se <= s.RelHalfWidth*p
}

// WeightedStdErr returns the standard error of the weighted estimator
// WSum/trials: sqrt((WSum2/N - p²)/N). The inner difference is an
// empirical variance, so it is clamped at zero against float rounding.
func WeightedStdErr(m Moments, trials int) float64 {
	if trials == 0 {
		return 0
	}
	n := float64(trials)
	p := m.WSum / n
	v := (m.WSum2/n - p*p) / n
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// DefaultShardSize is the trial count per shard when Config.ShardSize
// is zero: small enough that checkpoints and early-stop checks are
// frequent, large enough that shard dispatch overhead is invisible.
const DefaultShardSize = 256

// Config tunes the engine; the zero value runs every trial on
// GOMAXPROCS workers with no checkpointing or early stopping.
type Config struct {
	// Workers is the goroutine count; 0 means GOMAXPROCS.
	Workers int
	// ShardSize is the number of consecutive trials per shard
	// (checkpoint and early-stop granularity); 0 means
	// DefaultShardSize. Results are independent of Workers for any
	// fixed ShardSize; the early-stop point may move with ShardSize.
	ShardSize int
	// Checkpoint is the path of the resumable partial-result artifact;
	// "" disables checkpointing. If the file exists it must describe
	// the same scenario (name, trials, shard size) and its completed
	// shards are not recomputed (legacy version-1 checkpoints are
	// migrated in place).
	Checkpoint string
	// CheckpointEvery appends progress after every N newly completed
	// shards; 0 throttles adaptively (about one append batch per
	// second or 64 buffered shards, plus a final flush).
	CheckpointEvery int
	// ParamsDigest optionally stamps checkpoints and partial artifacts
	// with a digest of the scenario's full parameter set (the spec
	// layer digests each entry's kind+params). A resume against an
	// artifact carrying a different digest is refused even when the
	// scenario name matches, so editing a spec entry's params can
	// never silently merge shards computed under the old ones.
	// Artifacts without a digest (written before the field existed)
	// resume regardless — the documented pre-digest caveat.
	ParamsDigest string
	// Stop optionally ends the campaign once a counter's confidence
	// interval is narrow enough.
	Stop *EarlyStop
	// Progress, when non-nil, is called from the collector as trials
	// complete (monotonically, including resumed trials).
	Progress func(doneTrials, totalTrials int)
}

// Result is the merged output of a campaign.
type Result struct {
	Scenario string `json:"scenario"`
	// Requested is the scenario's full trial count; Trials is the
	// number actually contributing to the statistics (smaller only
	// when early stopping triggered).
	Requested    int  `json:"requested_trials"`
	Trials       int  `json:"trials"`
	EarlyStopped bool `json:"early_stopped,omitempty"`
	// ResumedTrials counts trials restored from a checkpoint rather
	// than recomputed in this run.
	ResumedTrials int              `json:"resumed_trials,omitempty"`
	Counters      map[string]int64 `json:"counters"`
	// Weights carries the per-counter weight moments of a weighted
	// (importance-sampled) campaign; nil for unit-weight runs, so
	// their serialized results are unchanged.
	Weights map[string]Moments `json:"weights,omitempty"`
	Samples []Sample           `json:"samples,omitempty"`
	Notes   []Note             `json:"notes,omitempty"`
}

// Counter returns a counter value (0 when absent).
func (r *Result) Counter(name string) int64 { return r.Counters[name] }

// Fraction returns Counter(name) / Trials.
func (r *Result) Fraction(name string) float64 {
	if r.Trials == 0 {
		return 0
	}
	return float64(r.Counters[name]) / float64(r.Trials)
}

// WeightedFraction returns the weighted estimate of a counter's
// nominal-measure probability (WSum/Trials); for counters without
// weight moments it falls back to Fraction, so callers can use it
// unconditionally.
func (r *Result) WeightedFraction(name string) float64 {
	if m, ok := r.Weights[name]; ok && r.Trials > 0 {
		return m.WSum / float64(r.Trials)
	}
	return r.Fraction(name)
}

// StdErr returns the standard error of WeightedFraction(name). For
// unit-weight counters this is the binomial sqrt(p(1-p)/N).
func (r *Result) StdErr(name string) float64 {
	if m, ok := r.Weights[name]; ok {
		return WeightedStdErr(m, r.Trials)
	}
	c := float64(r.Counters[name])
	return WeightedStdErr(Moments{WSum: c, WSum2: c}, r.Trials)
}

// RelErr returns the relative error of the weighted estimate at the
// given z (z·stderr/estimate), or +Inf when the estimate is zero.
func (r *Result) RelErr(name string, z float64) float64 {
	p := r.WeightedFraction(name)
	if p <= 0 {
		return math.Inf(1)
	}
	return z * r.StdErr(name) / p
}

// EffectiveSamples returns the effective sample size of a weighted
// counter (WSum²/WSum2); unit-weight counters report their raw count.
func (r *Result) EffectiveSamples(name string) float64 {
	if m, ok := r.Weights[name]; ok {
		return m.ESS()
	}
	return float64(r.Counters[name])
}

// CounterNames returns the sorted counter keys.
func (r *Result) CounterNames() []string {
	names := make([]string, 0, len(r.Counters))
	for k := range r.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// SeriesNames returns the labels of all sample series in order of
// first appearance.
func (r *Result) SeriesNames() []string {
	var names []string
	seen := make(map[string]bool)
	for _, s := range r.Samples {
		if !seen[s.Series] {
			seen[s.Series] = true
			names = append(names, s.Series)
		}
	}
	return names
}

// SeriesPoints returns the (x, y) points of one series in trial order.
func (r *Result) SeriesPoints(series string) (xs, ys []float64) {
	for _, s := range r.Samples {
		if s.Series == series {
			xs = append(xs, s.X)
			ys = append(ys, s.Y)
		}
	}
	return xs, ys
}

// Wilson returns the Wilson score interval for a binomial proportion
// at the given z (e.g. 1.96 for 95%).
func Wilson(successes, trials int64, z float64) (lo, hi float64) {
	if trials == 0 {
		return 0, 1
	}
	n := float64(trials)
	p := float64(successes) / n
	z2 := z * z
	denom := 1 + z2/n
	center := (p + z2/(2*n)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/n+z2/(4*n*n))
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// Run executes the whole scenario in-process: it plans the full shard
// range, executes it with Execute (spilling to cfg.Checkpoint when
// set) and merges the single partial with Merge. The result is
// deterministic for a fixed scenario and shard size, independent of
// worker count, partitioning, checkpoint interruptions, and
// scheduling.
func Run(scn Scenario, cfg Config) (*Result, error) {
	plan, err := NewPlan(scn, cfg.ShardSize, Whole)
	if err != nil {
		return nil, err
	}
	plan.ParamsDigest = cfg.ParamsDigest
	partial, err := Execute(scn, plan, ExecConfig{
		Workers:    cfg.Workers,
		Artifact:   cfg.Checkpoint,
		FlushEvery: cfg.CheckpointEvery,
		Stop:       cfg.Stop,
		Progress:   cfg.Progress,
	})
	if err != nil {
		return nil, err
	}
	defer partial.Close()
	return Merge([]*Partial{partial}, MergeConfig{Stop: cfg.Stop, ParamsDigest: cfg.ParamsDigest})
}
