package campaign

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
)

// checkpointVersion guards the on-disk schema.
const checkpointVersion = 1

// checkpointFile is the resumable-progress schema: the scenario
// identity plus every completed shard's accumulator.
type checkpointFile struct {
	Version   int               `json:"version"`
	Scenario  string            `json:"scenario"`
	Trials    int               `json:"trials"`
	ShardSize int               `json:"shard_size"`
	Shards    []checkpointShard `json:"shards"`
}

type checkpointShard struct {
	Index    int              `json:"index"`
	Counters map[string]int64 `json:"counters,omitempty"`
	Samples  []Sample         `json:"samples,omitempty"`
	Notes    []Note           `json:"notes,omitempty"`
}

// sampleWire is the JSON form of Sample. Coordinates travel as
// strconv-formatted strings because campaigns legitimately record
// non-finite values (an MTTDL of +Inf, say) that encoding/json
// refuses to emit as numbers; FormatFloat('g', -1) round-trips every
// float64 bit pattern exactly, which the resume-equals-uninterrupted
// guarantee depends on.
type sampleWire struct {
	Trial  int    `json:"trial"`
	Series string `json:"series"`
	X      string `json:"x"`
	Y      string `json:"y"`
}

// MarshalJSON implements json.Marshaler.
func (s Sample) MarshalJSON() ([]byte, error) {
	return json.Marshal(sampleWire{
		Trial:  s.Trial,
		Series: s.Series,
		X:      strconv.FormatFloat(s.X, 'g', -1, 64),
		Y:      strconv.FormatFloat(s.Y, 'g', -1, 64),
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (s *Sample) UnmarshalJSON(data []byte) error {
	var w sampleWire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	x, err := strconv.ParseFloat(w.X, 64)
	if err != nil {
		return fmt.Errorf("campaign: sample x %q: %w", w.X, err)
	}
	y, err := strconv.ParseFloat(w.Y, 64)
	if err != nil {
		return fmt.Errorf("campaign: sample y %q: %w", w.Y, err)
	}
	s.Trial, s.Series, s.X, s.Y = w.Trial, w.Series, x, y
	return nil
}

// writeCheckpoint atomically persists every completed shard.
func writeCheckpoint(path, scenario string, trials, shardSize int, accs []*Acc) error {
	cp := checkpointFile{
		Version:   checkpointVersion,
		Scenario:  scenario,
		Trials:    trials,
		ShardSize: shardSize,
	}
	for i, acc := range accs {
		if acc == nil {
			continue
		}
		cp.Shards = append(cp.Shards, checkpointShard{
			Index:    i,
			Counters: acc.counters,
			Samples:  acc.samples,
			Notes:    acc.notes,
		})
	}
	data, err := json.Marshal(&cp)
	if err != nil {
		return fmt.Errorf("campaign: encode checkpoint: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("campaign: checkpoint dir: %w", err)
	}
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("campaign: write checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("campaign: commit checkpoint: %w", err)
	}
	return nil
}

// loadCheckpoint restores completed shards into accs and returns the
// number of restored trials. A missing file is not an error (the
// campaign simply starts from scratch); a file describing a different
// scenario, trial count or shard size is.
func loadCheckpoint(path, scenario string, trials, shardSize int, accs []*Acc) (int, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("campaign: read checkpoint: %w", err)
	}
	var cp checkpointFile
	if err := json.Unmarshal(data, &cp); err != nil {
		return 0, fmt.Errorf("campaign: parse checkpoint %s: %w", path, err)
	}
	if cp.Version != checkpointVersion {
		return 0, fmt.Errorf("campaign: checkpoint %s has version %d, want %d", path, cp.Version, checkpointVersion)
	}
	if cp.Scenario != scenario || cp.Trials != trials || cp.ShardSize != shardSize {
		return 0, fmt.Errorf("campaign: checkpoint %s is for scenario %q (%d trials, shard %d), want %q (%d trials, shard %d)",
			path, cp.Scenario, cp.Trials, cp.ShardSize, scenario, trials, shardSize)
	}
	restored := 0
	for _, sh := range cp.Shards {
		if sh.Index < 0 || sh.Index >= len(accs) {
			return 0, fmt.Errorf("campaign: checkpoint %s has out-of-range shard %d", path, sh.Index)
		}
		acc := NewAcc()
		for k, v := range sh.Counters {
			acc.counters[k] = v
		}
		acc.samples = sh.Samples
		acc.notes = sh.Notes
		accs[sh.Index] = acc
		lo := sh.Index * shardSize
		hi := lo + shardSize
		if hi > trials {
			hi = trials
		}
		restored += hi - lo
	}
	return restored, nil
}
