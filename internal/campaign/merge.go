package campaign

import (
	"fmt"
	"sort"
	"sync"
)

// Sink consumes a merged campaign's samples and notes in trial order
// instead of accumulating them into the Result, so million-sample
// campaigns can stream straight to disk with bounded memory.
type Sink interface {
	// Start is called once, after counters, trial bookkeeping and the
	// early-stop decision are final but before any samples, with the
	// Result whose Samples and Notes fields are nil.
	Start(res *Result) error
	// Sample receives each sample in trial order.
	Sample(s Sample) error
	// Note receives each note in trial order.
	Note(n Note) error
}

// MergeConfig tunes how partials fold into a Result.
type MergeConfig struct {
	// Stop re-applies the campaign's early-stop rule on the contiguous
	// global shard prefix. It must be the same rule the single-process
	// run would use: partitioned executors over-run a would-be stopping
	// point (they cannot see the global prefix), and the merger
	// truncates the result at the deterministic stopping shard, so the
	// merged Result is bit-identical to the single-process one.
	Stop *EarlyStop
	// Sink, when non-nil, receives samples and notes in trial order
	// and the Result's Samples/Notes fields stay nil (the
	// bounded-memory path); otherwise they accumulate in the Result.
	Sink Sink
	// ParamsDigest, when set, is the digest of the scenario parameter
	// set the caller is merging FOR (the current spec entry): any
	// partial carrying a different digest is a stale artifact from an
	// edited spec and the merge is refused. Partials without a digest
	// (pre-digest artifacts) pass — the documented caveat.
	ParamsDigest string
	// AllowIncomplete folds only the contiguous complete shard prefix
	// instead of refusing a merge with missing shards: the Result's
	// Trials then reflect the folded prefix. The adaptive allocator
	// uses it to read out a budget-bounded campaign whose stop rule
	// never fired. At least one leading shard must be complete.
	AllowIncomplete bool
	// Workers parallelizes pass 2: shard records (the per-slice sample
	// streams, possibly spilled to disk) are loaded and decoded by
	// Workers goroutines while the fold still consumes them in global
	// shard order, so the merged Result — and every Sink callback
	// sequence — is bit-identical to the sequential merge. The number
	// of loaded-but-unconsumed shards is bounded (a small multiple of
	// Workers), preserving the bounded-memory property of streaming
	// merges. <= 1 keeps the sequential path.
	Workers int
}

// Merge folds any set of partial results — from one process or many —
// into the Result a single-process run would produce. It validates
// that the partials share one campaign fingerprint (scenario, trial
// count, shard size) and partition count, that their shard sets are
// disjoint and lie inside their declared partition ranges, and that
// together they cover every shard up to the campaign's end (or its
// deterministic early-stop point). Shards are folded in global index
// order, so counters, samples and notes are bit-identical to the
// single-process merge.
func Merge(partials []*Partial, cfg MergeConfig) (*Result, error) {
	if len(partials) == 0 {
		return nil, fmt.Errorf("campaign: no partials to merge")
	}
	if cfg.Stop != nil {
		if err := cfg.Stop.validate(); err != nil {
			return nil, err
		}
	}
	sorted := make([]*Partial, len(partials))
	copy(sorted, partials)
	sort.SliceStable(sorted, func(i, j int) bool {
		return sorted[i].header.PartitionIndex < sorted[j].header.PartitionIndex
	})

	head := sorted[0].header
	numShards := head.numShards()
	owner := make(map[int]*Partial, numShards)
	// The digest check is pairwise-transitive via the first non-empty
	// digest seen: pre-digest partials (empty digest) are compatible
	// with everything, but two partials carrying different digests —
	// or one contradicting the caller's expected digest — mean some
	// shards were computed under edited params and must not merge.
	digestHolder := partialHeader{ParamsDigest: cfg.ParamsDigest}
	for _, p := range sorted {
		h := p.header
		if !h.geometryMatches(head) {
			return nil, fmt.Errorf("campaign: partial %s is from campaign %q, want %q", describePartial(p), h.fingerprint(), head.fingerprint())
		}
		if h.Version != head.Version {
			return nil, fmt.Errorf("campaign: partial %s has artifact version %d, want %d: weighted and unweighted partials cannot merge",
				describePartial(p), h.Version, head.Version)
		}
		if h.digestConflicts(digestHolder) {
			return nil, fmt.Errorf("campaign: partial %s was computed under different scenario params (digest %s, want %s): it is stale — recompute it or revert the spec edit",
				describePartial(p), h.ParamsDigest, digestHolder.ParamsDigest)
		}
		if h.ParamsDigest != "" {
			digestHolder.ParamsDigest = h.ParamsDigest
		}
		if h.PartitionCount != head.PartitionCount {
			return nil, fmt.Errorf("campaign: partial %s declares %d partitions, want %d", describePartial(p), h.PartitionCount, head.PartitionCount)
		}
		// Shards must lie inside the partial's declared contiguous
		// partition range (the planner's shardRange) and be claimed by
		// exactly one partial.
		first, end := h.partition().shardRange(numShards)
		for _, idx := range p.Shards() {
			if idx < first || idx >= end {
				return nil, fmt.Errorf("campaign: partial %s holds shard %d outside partition %s range [%d, %d)",
					describePartial(p), idx, h.partition(), first, end)
			}
			if prev, dup := owner[idx]; dup {
				return nil, fmt.Errorf("campaign: shard %d appears in partials %s and %s", idx, describePartial(prev), describePartial(p))
			}
			owner[idx] = p
		}
	}

	// Pass 1: fold counters in shard order and decide the early stop
	// on the contiguous prefix, exactly as a single-process run does.
	// A shard missing before the stopping point (or the end) means the
	// partition set is incomplete.
	span := func(idx int) (lo, hi int) {
		return shardSpan(idx, head.ShardSize, head.Trials)
	}
	counters := make(map[string]int64)
	weighted := head.Version == partialVersionWeighted
	var weights map[string]Moments
	if weighted {
		weights = make(map[string]Moments)
	}
	useShards := numShards
	earlyStopped := false
	for i := 0; i < numShards; i++ {
		p, ok := owner[i]
		if !ok {
			// With AllowIncomplete the contiguous complete prefix is the
			// result; without it a missing shard is a refused merge.
			if cfg.AllowIncomplete && i > 0 {
				useShards = i
				break
			}
			return nil, fmt.Errorf("campaign: %s: incomplete merge: shard %d of %d missing from the %d given partial(s)",
				head.Scenario, i, numShards, len(partials))
		}
		for k, v := range p.counters[i] {
			counters[k] += v
		}
		if weighted {
			// Only counters recorded via AddWeighted carry moments;
			// diagnostics folded with Add stay integer-only.
			for k, m := range p.weights[i] {
				w := weights[k]
				w.add(m)
				weights[k] = w
			}
		}
		if cfg.Stop != nil {
			_, trialsSoFar := span(i)
			successes := counters[cfg.Stop.Counter]
			if err := checkBinomial(head.Scenario, cfg.Stop.Counter, successes, trialsSoFar); err != nil {
				return nil, err
			}
			var fired bool
			if weighted {
				fired = cfg.Stop.SatisfiedWeighted(weights[cfg.Stop.Counter], trialsSoFar)
			} else {
				fired = cfg.Stop.satisfied(successes, trialsSoFar)
			}
			if fired {
				useShards = i + 1
				earlyStopped = useShards < numShards
				break
			}
		}
	}

	resumed := 0
	for _, p := range sorted {
		resumed += p.resumed
	}
	_, trials := span(useShards - 1)
	res := &Result{
		Scenario:      head.Scenario,
		Requested:     head.Trials,
		Trials:        trials,
		EarlyStopped:  earlyStopped,
		ResumedTrials: resumed,
		// The prefix loop stops folding counters at the stopping shard,
		// so the totals cover exactly [0, useShards).
		Counters: counters,
	}
	if weighted {
		res.Weights = weights
	}

	// Pass 2: stream samples and notes in shard (= trial) order,
	// re-reading spilled records from their artifacts on demand.
	if cfg.Sink != nil {
		if err := cfg.Sink.Start(res); err != nil {
			return nil, err
		}
	}
	emit := func(rec *shardRecord) error {
		if cfg.Sink != nil {
			for _, s := range rec.Samples {
				if err := cfg.Sink.Sample(s); err != nil {
					return err
				}
			}
			for _, n := range rec.Notes {
				if err := cfg.Sink.Note(n); err != nil {
					return err
				}
			}
			return nil
		}
		res.Samples = append(res.Samples, rec.Samples...)
		res.Notes = append(res.Notes, rec.Notes...)
		return nil
	}
	if cfg.Workers > 1 && useShards > 1 {
		if err := foldRecordsParallel(owner, useShards, cfg.Workers, emit); err != nil {
			return nil, err
		}
		return res, nil
	}
	for i := 0; i < useShards; i++ {
		rec, err := owner[i].load(i)
		if err != nil {
			return nil, err
		}
		if err := emit(rec); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// foldRecordsParallel is pass 2's parallel shard-record pipeline:
// workers load (and JSON-decode) shard records concurrently while the
// caller's emit still runs sequentially in global shard order — the
// same order the sequential loop uses, so the output is bit-identical.
// A window semaphore bounds the number of dispatched-but-unconsumed
// shards, so a streaming merge keeps its bounded-memory property.
// Dispatch is strictly in shard order, which guarantees the next shard
// the consumer needs is always within the window (no deadlock).
//
// One subtlety: concurrent loads of different shards of the SAME
// partial share its *os.File via ReadAt (safe: positional reads) but
// must not race on the lazy reopen, which load serializes internally.
func foldRecordsParallel(owner map[int]*Partial, useShards, workers int, emit func(*shardRecord) error) error {
	if workers > useShards {
		workers = useShards
	}
	window := 2 * workers

	type loaded struct {
		idx int
		rec *shardRecord
		err error
	}
	sem := make(chan struct{}, window)
	jobs := make(chan int)
	results := make(chan loaded, window)
	quit := make(chan struct{})
	var quitOnce sync.Once
	stop := func() { quitOnce.Do(func() { close(quit) }) }
	var wg sync.WaitGroup
	// On every exit — error paths included — signal quit and join the
	// workers, so no goroutine outlives the merge still reading partials
	// the caller is about to Close.
	defer func() {
		stop()
		wg.Wait()
	}()

	// Dispatcher: admit shard indices in order, gated by the window.
	go func() {
		defer close(jobs)
		for i := 0; i < useShards; i++ {
			select {
			case sem <- struct{}{}:
			case <-quit:
				return
			}
			select {
			case jobs <- i:
			case <-quit:
				return
			}
		}
	}()

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				rec, err := owner[idx].load(idx)
				select {
				case results <- loaded{idx: idx, rec: rec, err: err}:
				case <-quit:
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Consumer: reorder the out-of-order completions back into global
	// shard order. pending never exceeds the window.
	pending := make(map[int]loaded, window)
	for next := 0; next < useShards; {
		l, ok := pending[next]
		if !ok {
			r, open := <-results
			if !open {
				// Workers exited without delivering shard `next` — only
				// possible after quit, i.e. an earlier error path.
				return fmt.Errorf("campaign: parallel merge lost shard %d", next)
			}
			pending[r.idx] = r
			continue
		}
		delete(pending, next)
		if l.err != nil {
			return l.err
		}
		if err := emit(l.rec); err != nil {
			return err
		}
		<-sem
		next++
	}
	return nil
}

// describePartial names a partial for error messages.
func describePartial(p *Partial) string {
	if p.path != "" {
		return p.path
	}
	return fmt.Sprintf("partition %s (in memory)", p.header.partition())
}
