//go:build !race

package campaign

// raceEnabled skips heap-bound measurements under the race detector,
// whose instrumentation changes both heap accounting and throughput.
const raceEnabled = false
