package campaign

import (
	"fmt"
	"strconv"
	"strings"
)

// Partition identifies one process's slice of a campaign: slice Index
// of Count equally sized (±1 shard) contiguous slices of the global
// shard range. The zero value means "the whole campaign" and is
// normalized to 0/1 by NewPlan.
type Partition struct {
	Index int
	Count int
}

// Whole is the single-process partition covering every shard.
var Whole = Partition{Index: 0, Count: 1}

// String renders the partition as "index/count".
func (p Partition) String() string { return fmt.Sprintf("%d/%d", p.Index, p.Count) }

func (p Partition) validate() error {
	if p.Count <= 0 {
		return fmt.Errorf("campaign: partition count %d must be positive", p.Count)
	}
	if p.Index < 0 || p.Index >= p.Count {
		return fmt.Errorf("campaign: partition index %d outside 0..%d", p.Index, p.Count-1)
	}
	return nil
}

// shardRange is the single authority for which contiguous slice
// [first, end) of a numShards-shard campaign the partition owns;
// planner and merger must agree on it exactly.
func (p Partition) shardRange(numShards int) (first, end int) {
	return p.Index * numShards / p.Count, (p.Index + 1) * numShards / p.Count
}

// shardSpan is the single authority for the global trial range
// [lo, hi) of shard idx under the given geometry.
func shardSpan(idx, shardSize, trials int) (lo, hi int) {
	lo = idx * shardSize
	hi = lo + shardSize
	if hi > trials {
		hi = trials
	}
	return lo, hi
}

// ParsePartition parses the "i/N" syntax used by command-line flags.
// The whole string must be consumed: trailing garbage ("0/3x",
// "1/3,2/3") is rejected rather than silently running a lone slice.
func ParsePartition(s string) (Partition, error) {
	idx, count, ok := strings.Cut(s, "/")
	if !ok {
		return Partition{}, fmt.Errorf("campaign: partition %q is not of the form i/N", s)
	}
	var p Partition
	var err error
	if p.Index, err = strconv.Atoi(idx); err != nil {
		return Partition{}, fmt.Errorf("campaign: partition %q is not of the form i/N", s)
	}
	if p.Count, err = strconv.Atoi(count); err != nil {
		return Partition{}, fmt.Errorf("campaign: partition %q is not of the form i/N", s)
	}
	if err := p.validate(); err != nil {
		return Partition{}, err
	}
	return p, nil
}

// Plan is the deterministic work assignment of one partition of a
// campaign: the global shard geometry (which depends only on the
// scenario's trial count and the shard size, never on the partition)
// plus this partition's contiguous shard range. Because shard
// boundaries and the TrialSeed stream are pure functions of the global
// trial index, the shards a partition executes are bit-identical to
// the ones a single process would execute for the same indices, which
// is what lets Merge reassemble a multi-process campaign into the
// single-process Result.
type Plan struct {
	Scenario  string
	Trials    int // global trial count
	ShardSize int
	NumShards int // global shard count
	Part      Partition
	// First and End bound this partition's contiguous shard range
	// [First, End); partitions are disjoint and cover every shard.
	First, End int
	// ParamsDigest optionally stamps the partial artifact with a
	// digest of the full scenario parameter set (see
	// Config.ParamsDigest); set it before Execute. "" disables the
	// digest check.
	ParamsDigest string
	// Weighted records that the scenario's trials carry
	// importance-sampling weights (see WeightedScenario): partial
	// artifacts are written as version 3 with per-shard weight
	// moments, and early stopping uses the relative-error rule
	// instead of the Wilson interval.
	Weighted bool
}

// NewPlan validates the scenario geometry and computes the partition's
// shard range. shardSize <= 0 selects DefaultShardSize.
func NewPlan(scn Scenario, shardSize int, part Partition) (*Plan, error) {
	if scn == nil {
		return nil, fmt.Errorf("campaign: nil scenario")
	}
	total := scn.Trials()
	if total <= 0 {
		return nil, fmt.Errorf("campaign: scenario %q has no trials", scn.Name())
	}
	if part == (Partition{}) {
		part = Whole
	}
	if err := part.validate(); err != nil {
		return nil, err
	}
	if shardSize <= 0 {
		shardSize = DefaultShardSize
	}
	numShards := (total + shardSize - 1) / shardSize
	first, end := part.shardRange(numShards)
	weighted := false
	if ws, ok := scn.(WeightedScenario); ok {
		weighted = ws.Weighted()
	}
	return &Plan{
		Scenario:  scn.Name(),
		Trials:    total,
		ShardSize: shardSize,
		NumShards: numShards,
		Part:      part,
		First:     first,
		End:       end,
		Weighted:  weighted,
	}, nil
}

// ShardSpan returns the global trial range [lo, hi) of shard idx.
func (p *Plan) ShardSpan(idx int) (lo, hi int) {
	return shardSpan(idx, p.ShardSize, p.Trials)
}

// Shards returns the number of shards in this partition's range.
func (p *Plan) Shards() int { return p.End - p.First }

// PartitionTrials returns the number of trials this partition owns.
func (p *Plan) PartitionTrials() int {
	if p.First >= p.End {
		return 0
	}
	lo, _ := p.ShardSpan(p.First)
	_, hi := p.ShardSpan(p.End - 1)
	return hi - lo
}

// Full reports whether the plan covers the whole campaign (the
// single-process case). Only a full plan may decide early stopping in
// the executor; partitioned campaigns decide it at merge time.
func (p *Plan) Full() bool { return p.Part.Count == 1 }

// header is the single authority for a plan's partial-artifact
// identity; the file-backed and in-memory partial paths must build
// the exact same header or resume/merge validation would diverge.
func (p *Plan) header() partialHeader {
	version := partialVersion
	if p.Weighted {
		version = partialVersionWeighted
	}
	return partialHeader{
		Version:        version,
		Scenario:       p.Scenario,
		Trials:         p.Trials,
		ShardSize:      p.ShardSize,
		PartitionIndex: p.Part.Index,
		PartitionCount: p.Part.Count,
		ParamsDigest:   p.ParamsDigest,
	}
}
