package campaign

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestWriteToRoundTrip is the fabric's wire-format law: executing a
// partition in memory, serializing it with WriteTo and re-reading the
// bytes with OpenPartial must merge bit-identically to the
// single-process run — uploads are just partials in flight.
func TestWriteToRoundTrip(t *testing.T) {
	scn := &coinScenario{name: "wire-coin", trials: 1700, seed: 21, p: 0.3}
	want := run(t, scn, Config{Workers: 4, ShardSize: 64})

	dir := t.TempDir()
	const parts = 3
	var partials []*Partial
	for i := 0; i < parts; i++ {
		plan, err := NewPlan(scn, 64, Partition{Index: i, Count: parts})
		if err != nil {
			t.Fatal(err)
		}
		plan.ParamsDigest = "digest-1"
		mem, err := Execute(scn, plan, ExecConfig{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if n, err := mem.WriteTo(&buf); err != nil || n != int64(buf.Len()) {
			t.Fatalf("WriteTo = %d, %v; buffered %d", n, err, buf.Len())
		}
		path := filepath.Join(dir, "up.part"+string(rune('0'+i)))
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		p, err := OpenPartial(path)
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		if err := p.MatchesPlan(plan); err != nil {
			t.Fatalf("round-tripped partial rejected by its own plan: %v", err)
		}
		if !p.Complete(plan) {
			t.Fatalf("round-tripped partial incomplete for its plan")
		}
		if p.ParamsDigest() != "digest-1" {
			t.Fatalf("digest lost on the wire: %q", p.ParamsDigest())
		}
		partials = append(partials, p)
	}
	got, err := Merge(partials, MergeConfig{ParamsDigest: "digest-1"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("wire round trip changed the result:\nwant %+v\ngot  %+v", want, got)
	}
}

func TestMatchesPlanRejectsMismatches(t *testing.T) {
	scn := &coinScenario{name: "wire-coin", trials: 500, seed: 3, p: 0.5}
	plan0, err := NewPlan(scn, 64, Partition{Index: 0, Count: 2})
	if err != nil {
		t.Fatal(err)
	}
	plan0.ParamsDigest = "d-one"
	p, err := Execute(scn, plan0, ExecConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	plan1, err := NewPlan(scn, 64, Partition{Index: 1, Count: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.MatchesPlan(plan1); err == nil {
		t.Error("partial for slice 0/2 accepted against the 1/2 plan")
	}

	other := &coinScenario{name: "wire-coin", trials: 1000, seed: 3, p: 0.5}
	planOther, err := NewPlan(other, 64, Partition{Index: 0, Count: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.MatchesPlan(planOther); err == nil {
		t.Error("partial accepted against a different campaign geometry")
	}

	edited, err := NewPlan(scn, 64, Partition{Index: 0, Count: 2})
	if err != nil {
		t.Fatal(err)
	}
	edited.ParamsDigest = "d-two"
	if err := p.MatchesPlan(edited); err == nil {
		t.Error("partial accepted despite a conflicting params digest")
	}

	// Pre-digest artifacts (empty digest) keep passing — the
	// documented caveat.
	preDigest, err := NewPlan(scn, 64, Partition{Index: 0, Count: 2})
	if err != nil {
		t.Fatal(err)
	}
	preDigest.ParamsDigest = "d-one"
	if err := p.MatchesPlan(preDigest); err != nil {
		t.Errorf("matching digest rejected: %v", err)
	}
}

// TestTruncatedUploadIncomplete drops the tail of a serialized partial
// and checks Complete detects the missing shards (the coordinator's
// truncated-upload rejection) while ShardCounter still reads the
// shards that survived.
func TestTruncatedUploadIncomplete(t *testing.T) {
	scn := &coinScenario{name: "wire-coin", trials: 600, seed: 9, p: 0.4}
	plan, err := NewPlan(scn, 64, Whole)
	if err != nil {
		t.Fatal(err)
	}
	mem, err := Execute(scn, plan, ExecConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := mem.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(buf.Bytes(), []byte("\n"))
	kept := bytes.Join(lines[:len(lines)-2], nil) // drop the last record
	path := filepath.Join(t.TempDir(), "trunc.part0of1")
	if err := os.WriteFile(path, kept, 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := OpenPartial(path)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.MatchesPlan(plan); err != nil {
		t.Fatalf("truncated partial should still match the plan (just incompletely): %v", err)
	}
	if p.Complete(plan) {
		t.Fatal("truncated partial reported complete")
	}
	if v, ok := p.ShardCounter(0, "trials_seen"); !ok || v != 64 {
		t.Fatalf("ShardCounter(0, trials_seen) = %d, %v; want 64, true", v, ok)
	}
	if _, ok := p.ShardCounter(plan.NumShards-1, "trials_seen"); ok {
		t.Fatal("dropped shard still readable")
	}
}
