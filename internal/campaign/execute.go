package campaign

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// maxBufferedShards bounds how many completed-but-unflushed shard
// records the executor holds when an artifact is configured and no
// explicit FlushEvery is set. Together with the spill-after-flush
// policy this caps resident sample memory at about
// maxBufferedShards * ShardSize samples regardless of campaign size.
const maxBufferedShards = 64

// ExecConfig tunes one partition's execution.
type ExecConfig struct {
	// Workers is the goroutine count; 0 means GOMAXPROCS.
	Workers int
	// Artifact is the path of the partial-result file; "" keeps the
	// partition's output in memory. When the file exists it must
	// describe the same plan (scenario, trials, shard size, partition)
	// and its completed shards are not recomputed; a legacy version-1
	// checkpoint is migrated to the version-2 format in place. Once a
	// shard record has been appended to the artifact its samples and
	// notes are dropped from memory (Merge re-reads them), so a
	// file-backed execution's memory use is bounded by the flush
	// cadence, not the campaign size.
	Artifact string
	// FlushEvery appends buffered shard records after every N newly
	// completed shards; 0 flushes after maxBufferedShards shards or
	// about one second, whichever comes first (plus a final flush).
	FlushEvery int
	// Stop optionally ends the campaign once a counter's confidence
	// interval is narrow enough. The executor applies it only when the
	// plan covers the whole campaign (its local shard prefix is then
	// the global prefix); a partitioned executor runs its entire slice
	// — over-running a would-be stopping point — and Merge decides the
	// stop deterministically on the contiguous global prefix. Weighted
	// plans decide the stop with the relative-error rule
	// (SatisfiedWeighted) instead of the Wilson interval.
	Stop *EarlyStop
	// MaxShards, when positive, bounds how many pending (not yet
	// completed) shards this call executes, in shard order. The
	// adaptive allocator uses it to grow a campaign's artifact by a
	// budgeted increment per round; a later call with the same
	// artifact resumes where the bounded one left off, so bounded and
	// unbounded executions reach the identical artifact.
	MaxShards int
	// Progress, when non-nil, is called from the collector as trials
	// complete (monotonically, including resumed trials), with the
	// partition's trial total.
	Progress func(doneTrials, totalTrials int)
}

// Execute runs one partition of the campaign and returns its partial
// result. The shards it computes are bit-identical to the ones a
// single-process run would compute for the same indices.
func Execute(scn Scenario, plan *Plan, cfg ExecConfig) (*Partial, error) {
	if scn == nil || plan == nil {
		return nil, fmt.Errorf("campaign: nil scenario or plan")
	}
	if scn.Name() != plan.Scenario {
		return nil, fmt.Errorf("campaign: plan is for scenario %q, executing %q", plan.Scenario, scn.Name())
	}
	if cfg.Stop != nil {
		if err := cfg.Stop.validate(); err != nil {
			return nil, err
		}
	}

	partial, appender, err := preparePartial(plan, cfg.Artifact)
	if err != nil {
		return nil, err
	}
	defer func() {
		if appender != nil {
			appender.close()
		}
	}()

	var pending []int
	for i := plan.First; i < plan.End; i++ {
		if !partial.has(i) {
			pending = append(pending, i)
		}
	}
	if cfg.MaxShards > 0 && len(pending) > cfg.MaxShards {
		pending = pending[:cfg.MaxShards]
	}

	// Early-stop and contiguous-prefix state, meaningful only for a
	// full plan (local prefix == global prefix). An artifact-restored
	// prefix is evaluated shard by shard exactly like live progress,
	// so a resumed run reproduces the original stopping point even
	// when the artifact holds in-flight shards beyond it.
	var (
		firstErr     error
		stopFlag     int64
		prefix       = plan.First
		prefixCounts = make(map[string]int64)
		prefixW      Moments
		stopped      = false
	)
	useStop := cfg.Stop != nil && plan.Full()
	checkStop := func() {
		if !useStop || stopped || firstErr != nil {
			return
		}
		_, trialsSoFar := plan.ShardSpan(prefix - 1)
		successes := prefixCounts[cfg.Stop.Counter]
		if err := checkBinomial(scn.Name(), cfg.Stop.Counter, successes, trialsSoFar); err != nil {
			firstErr = err
			atomic.StoreInt64(&stopFlag, 1)
			return
		}
		fired := false
		if plan.Weighted {
			fired = cfg.Stop.SatisfiedWeighted(prefixW, trialsSoFar)
		} else {
			fired = cfg.Stop.satisfied(successes, trialsSoFar)
		}
		if fired {
			stopped = true
			atomic.StoreInt64(&stopFlag, 1)
		}
	}
	advancePrefix := func() {
		for prefix < plan.End && partial.has(prefix) {
			for k, v := range partial.counters[prefix] {
				prefixCounts[k] += v
			}
			if useStop && plan.Weighted {
				if m, ok := partial.ShardWeights(prefix, cfg.Stop.Counter); ok {
					prefixW.add(m)
				}
			}
			prefix++
			checkStop()
		}
	}
	advancePrefix()
	if stopped || firstErr != nil {
		// The restored prefix already decided the campaign; don't
		// start workers for shards that would be discarded anyway.
		pending = nil
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pending) {
		workers = len(pending)
	}

	var nextPending int64 = -1
	// The bounded buffer applies backpressure: workers can run at most
	// ~2x workers shards ahead of the collector, so an early-stop
	// decision (made by the collector) takes effect before cheap
	// trials race through the whole budget, and artifact appends never
	// lag unboundedly behind computed work.
	resultsCap := 2 * workers
	if resultsCap > len(pending) {
		resultsCap = len(pending)
	}
	results := make(chan shardDone, resultsCap)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			worker, err := scn.NewWorker()
			if err != nil {
				results <- shardDone{index: -1, err: fmt.Errorf("campaign: %s: new worker: %w", scn.Name(), err)}
				return
			}
			for {
				i := atomic.AddInt64(&nextPending, 1)
				if i >= int64(len(pending)) || atomic.LoadInt64(&stopFlag) != 0 {
					return
				}
				shard := pending[i]
				lo, hi := plan.ShardSpan(shard)
				acc := NewAcc()
				for t := lo; t < hi; t++ {
					if err := worker.Trial(t, acc); err != nil {
						atomic.StoreInt64(&stopFlag, 1)
						results <- shardDone{index: shard, err: fmt.Errorf("campaign: %s: trial %d: %w", scn.Name(), t, err)}
						return
					}
				}
				results <- shardDone{index: shard, acc: acc}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Collector: record shards, advance the contiguous prefix, decide
	// early stopping (full plans), and append to the artifact. Spilled
	// records drop their samples from memory once durably appended.
	var (
		buffered   []*shardRecord
		doneTrials = partial.resumed
		lastWrite  = time.Now()
	)
	flushDue := func() bool {
		if appender == nil || len(buffered) == 0 {
			return false
		}
		if cfg.FlushEvery > 0 {
			return len(buffered) >= cfg.FlushEvery
		}
		return len(buffered) >= maxBufferedShards || time.Since(lastWrite) >= time.Second
	}
	flush := func() error {
		for i, rec := range buffered {
			loc, err := appender.append(rec)
			if err != nil {
				// Keep only the un-appended suffix so a later flush
				// (the final one runs even after errors) cannot
				// duplicate records already on disk.
				n := copy(buffered, buffered[i:])
				for j := n; j < len(buffered); j++ {
					buffered[j] = nil
				}
				buffered = buffered[:n]
				return err
			}
			partial.loc[rec.Index] = loc
			buffered[i] = nil // release the spilled samples to the GC
		}
		buffered = buffered[:0]
		lastWrite = time.Now()
		return nil
	}
	reportProgress := func() {
		if cfg.Progress != nil {
			cfg.Progress(doneTrials, plan.PartitionTrials())
		}
	}
	reportProgress()

	for done := range results {
		if done.err != nil {
			if firstErr == nil {
				firstErr = done.err
			}
			continue
		}
		rec := &shardRecord{
			Index:    done.index,
			Counters: done.acc.counters,
			Weights:  wireWeights(done.acc.weights),
			Samples:  done.acc.samples,
			Notes:    done.acc.notes,
		}
		if err := partial.record(rec); err != nil {
			if firstErr == nil {
				firstErr = err
				atomic.StoreInt64(&stopFlag, 1)
			}
			continue
		}
		if appender != nil {
			buffered = append(buffered, rec)
		}
		lo, hi := plan.ShardSpan(done.index)
		doneTrials += hi - lo
		advancePrefix()
		if flushDue() {
			if err := flush(); err != nil && firstErr == nil {
				firstErr = err
				atomic.StoreInt64(&stopFlag, 1)
			}
		}
		reportProgress()
	}

	// Flush remaining progress (including partial progress before an
	// error) so an aborted campaign resumes where it stopped.
	if err := flush(); err != nil && firstErr == nil {
		firstErr = err
	}
	if appender != nil {
		if err := appender.close(); err != nil && firstErr == nil {
			firstErr = err
		}
		appender = nil
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return partial, nil
}

// checkBinomial guards the early-stop rule: a counter that increments
// more than once per trial is not a binomial proportion; the Wilson
// width would be NaN and the stop rule would silently never fire.
func checkBinomial(scenario, counter string, successes int64, trials int) error {
	if successes > int64(trials) {
		return fmt.Errorf("campaign: %s: early-stop counter %q is not per-trial (%d over %d trials)",
			scenario, counter, successes, trials)
	}
	return nil
}

// preparePartial builds the partition's output store: an in-memory
// partial when no artifact is configured, otherwise the existing
// artifact (validated against the plan, migrating version-1
// checkpoints) or a freshly created one, opened for appending.
func preparePartial(plan *Plan, artifact string) (*Partial, *partialAppender, error) {
	if artifact == "" {
		return newMemPartial(plan), nil, nil
	}
	existing, appendAt, err := readPartial(artifact)
	if err != nil {
		return nil, nil, err
	}
	header := plan.header()
	if existing == nil {
		p := &Partial{
			header:   header,
			counters: make(map[int]map[string]int64),
			loc:      make(map[int][2]int64),
			path:     artifact,
		}
		appender, err := createPartialFile(artifact, header, nil, p.loc)
		if err != nil {
			return nil, nil, err
		}
		return p, appender, nil
	}
	if !existing.header.geometryMatches(header) || existing.header.partition() != header.partition() {
		return nil, nil, fmt.Errorf("campaign: partial %s is for scenario %q (%d trials, shard %d, partition %s), want %q (%d trials, shard %d, partition %s)",
			artifact, existing.header.Scenario, existing.header.Trials, existing.header.ShardSize, existing.header.partition(),
			plan.Scenario, plan.Trials, plan.ShardSize, plan.Part)
	}
	if existing.header.Version != header.Version {
		return nil, nil, fmt.Errorf("campaign: partial %s has artifact version %d, want %d",
			artifact, existing.header.Version, header.Version)
	}
	if appendAt == appendGzip {
		return nil, nil, fmt.Errorf("campaign: partial %s is gzip-compressed (read-only at rest): decompress it or choose a new checkpoint path", artifact)
	}
	if existing.header.digestConflicts(header) {
		// Same scenario name and geometry but a different parameter
		// set: the spec's params were edited since the artifact was
		// written. Resuming would merge shards computed under the old
		// parameters into the new campaign, so refuse loudly.
		return nil, nil, fmt.Errorf("campaign: partial %s was computed under different scenario params (digest %s, want %s): delete the artifact or revert the spec edit",
			artifact, existing.header.ParamsDigest, header.ParamsDigest)
	}
	// Restored shards must lie inside the plan's partition range.
	for idx := range existing.counters {
		if idx < plan.First || idx >= plan.End {
			return nil, nil, fmt.Errorf("campaign: partial %s holds shard %d outside partition %s range [%d, %d)",
				artifact, idx, plan.Part, plan.First, plan.End)
		}
	}
	existing.resumed = existing.DoneTrials()
	if appendAt == appendRewrite {
		// Version-1 checkpoint: rewrite as version 2 so new shards can
		// be appended. The in-memory records move to the file. The
		// migrated header keeps the checkpoint's own (digest-less)
		// identity rather than the plan's: stamping the current digest
		// onto legacy shards would certify params provenance the old
		// format never recorded — and wrongly refuse the artifact
		// later if the spec edit it was blind to gets reverted.
		records := make([]*shardRecord, 0, len(existing.mem))
		for _, idx := range existing.Shards() {
			records = append(records, existing.mem[idx])
		}
		existing.loc = make(map[int][2]int64)
		appender, err := createPartialFile(artifact, existing.header, records, existing.loc)
		if err != nil {
			return nil, nil, err
		}
		existing.mem = nil
		return existing, appender, nil
	}
	appender, err := openAppender(artifact, appendAt)
	if err != nil {
		return nil, nil, err
	}
	return existing, appender, nil
}

// shardDone is one completed shard travelling from a worker to the
// collector.
type shardDone struct {
	index int
	acc   *Acc
	err   error
}
