package campaign

import (
	"fmt"
	"path/filepath"
	"reflect"
	"testing"
)

// sinkEvent is one Sink callback, recorded to compare callback
// sequences between sequential and parallel merges.
type sinkEvent struct {
	kind   string
	sample Sample
	note   Note
}

// recordingSink captures the exact Sink callback sequence.
type recordingSink struct {
	res    *Result
	events []sinkEvent
}

func (s *recordingSink) Start(res *Result) error { s.res = res; return nil }
func (s *recordingSink) Sample(sm Sample) error {
	s.events = append(s.events, sinkEvent{kind: "sample", sample: sm})
	return nil
}
func (s *recordingSink) Note(n Note) error {
	s.events = append(s.events, sinkEvent{kind: "note", note: n})
	return nil
}

// partitionedPartials executes the scenario as parts separate
// file-backed partitions and reopens the artifacts, so the parallel
// merge exercises the spilled-record (disk re-read) path.
func partitionedPartials(t *testing.T, scn Scenario, shardSize, parts int, dir string) []*Partial {
	t.Helper()
	var partials []*Partial
	for i := 0; i < parts; i++ {
		plan, err := NewPlan(scn, shardSize, Partition{Index: i, Count: parts})
		if err != nil {
			t.Fatal(err)
		}
		artifact := filepath.Join(dir, fmt.Sprintf("p%dof%d.jsonl", i, parts))
		partial, err := Execute(scn, plan, ExecConfig{Workers: 1 + i%3, Artifact: artifact})
		if err != nil {
			t.Fatal(err)
		}
		partial.Close()
		reopened, err := OpenPartial(artifact)
		if err != nil {
			t.Fatal(err)
		}
		partials = append(partials, reopened)
		t.Cleanup(func() { reopened.Close() })
	}
	return partials
}

// TestMergeParallelMatchesSequential is the parallel-merge law:
// MergeConfig.Workers at 1, 4 and 8 produces a Result DeepEqual to the
// sequential merge, for in-memory and file-backed partials alike.
func TestMergeParallelMatchesSequential(t *testing.T) {
	scn := &coinScenario{name: "coin", trials: 3000, seed: 21, p: 0.35}
	for _, parts := range []int{1, 3, 5} {
		partials := partitionedPartials(t, scn, 64, parts, t.TempDir())
		want, err := Merge(partials, MergeConfig{})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 4, 8} {
			got, err := Merge(partials, MergeConfig{Workers: workers})
			if err != nil {
				t.Fatalf("parts=%d workers=%d: %v", parts, workers, err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Errorf("parts=%d workers=%d: parallel merge diverged:\nwant %+v\ngot  %+v", parts, workers, want, got)
			}
		}
	}
}

// TestMergeParallelSinkOrder: with a Sink, the parallel merge must
// deliver the exact same callback sequence (samples and notes in
// global trial order) the sequential merge delivers — the property
// streaming-CSV byte-identity rests on.
func TestMergeParallelSinkOrder(t *testing.T) {
	scn := &coinScenario{name: "coin", trials: 2000, seed: 4, p: 0.5}
	partials := partitionedPartials(t, scn, 64, 4, t.TempDir())

	var want recordingSink
	if _, err := Merge(partials, MergeConfig{Sink: &want}); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{4, 8} {
		var got recordingSink
		if _, err := Merge(partials, MergeConfig{Sink: &got, Workers: workers}); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want.res, got.res) {
			t.Errorf("workers=%d: sink Start result diverged", workers)
		}
		if !reflect.DeepEqual(want.events, got.events) {
			t.Errorf("workers=%d: sink callback sequence diverged (%d vs %d events)",
				workers, len(want.events), len(got.events))
		}
	}
}

// TestMergeParallelEarlyStop: the parallel pass 2 only sees shards up
// to the deterministic stopping shard, so an early-stopped merge stays
// bit-identical at any worker count.
func TestMergeParallelEarlyStop(t *testing.T) {
	scn := &coinScenario{name: "coin", trials: 20000, seed: 13, p: 0.4}
	stop := &EarlyStop{Counter: "hits", RelHalfWidth: 0.05, MinTrials: 100}
	partials := partitionedPartials(t, scn, 64, 3, t.TempDir())
	want, err := Merge(partials, MergeConfig{Stop: stop})
	if err != nil {
		t.Fatal(err)
	}
	if !want.EarlyStopped {
		t.Fatal("fixture did not early-stop; resize it")
	}
	got, err := Merge(partials, MergeConfig{Stop: stop, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("early-stopped parallel merge diverged:\nwant %+v\ngot  %+v", want, got)
	}
}

// TestMergeParallelSinkError: a sink error mid-stream aborts the
// parallel merge cleanly (no deadlock, no goroutine leak panic) and
// surfaces the error.
func TestMergeParallelSinkError(t *testing.T) {
	scn := &coinScenario{name: "coin", trials: 2000, seed: 8, p: 0.5}
	partials := partitionedPartials(t, scn, 64, 2, t.TempDir())
	sink := &failingSink{failAt: 50}
	_, err := Merge(partials, MergeConfig{Sink: sink, Workers: 4})
	if err == nil || err.Error() != "sink full" {
		t.Fatalf("parallel merge with failing sink: err %v, want 'sink full'", err)
	}
}

type failingSink struct {
	n, failAt int
}

func (s *failingSink) Start(*Result) error { return nil }
func (s *failingSink) Sample(Sample) error {
	s.n++
	if s.n >= s.failAt {
		return fmt.Errorf("sink full")
	}
	return nil
}
func (s *failingSink) Note(Note) error { return nil }
