package campaign

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
)

// Partial-result artifact format. Version 2 is an append-only JSON
// Lines file: a header line identifying the campaign geometry and the
// partition, followed by one line per completed shard. Appending a
// shard is O(shard), not O(campaign), which is what lets the executor
// spill samples to disk as shards complete instead of re-marshaling a
// growing checkpoint — the bounded-memory path for million-sample
// campaigns. A torn final line (crash mid-append) is dropped on read
// and truncated away before the next append, so the file is always
// resumable. Version 1 is the legacy single-object checkpoint written
// by earlier releases; readPartial migrates it transparently (same
// shard contents, partition 0/1 implied). Version 3 is version 2 plus
// per-shard weight moments for importance-sampled campaigns; version-2
// files load as unit-weight (nil moments), exactly as version-1 files
// load as partition 0/1.
//
// Artifacts may also be stored gzip-compressed at rest (the fabric
// coordinator's format): readPartial sniffs the gzip magic bytes and
// decompresses transparently. Compressed artifacts are read-only —
// they merge and adopt normally but refuse resume-appending.
const (
	partialVersionLegacy   = 1
	partialVersion         = 2
	partialVersionWeighted = 3
)

// appendAt sentinel values returned by readPartial for artifacts that
// cannot be appended to in place.
const (
	appendRewrite = -1 // legacy version 1: rewrite as JSONL first
	appendGzip    = -2 // gzip at rest: read-only
)

// partialHeader is the first line of a version-2 artifact.
type partialHeader struct {
	Version   int    `json:"version"`
	Scenario  string `json:"scenario"`
	Trials    int    `json:"trials"`
	ShardSize int    `json:"shard_size"`
	// PartitionIndex/PartitionCount record which slice of the shard
	// range this artifact holds (0/1 for a single-process campaign).
	PartitionIndex int `json:"partition_index"`
	PartitionCount int `json:"partition_count"`
	// ParamsDigest is an optional deterministic digest of the full
	// scenario parameter set, supplied by layers above the engine (the
	// spec package digests each entry's kind+params). It closes the
	// resume hole where an edit to a spec entry's params that a
	// scenario's Name does not encode would let stale shards merge
	// silently. Artifacts written before the field existed carry ""
	// and digests compare only when both sides have one, so old
	// partials stay loadable and resumable — with the documented
	// caveat that params edits are not detected against them.
	ParamsDigest string `json:"params_digest,omitempty"`
}

func (h partialHeader) fingerprint() string {
	fp := fmt.Sprintf("%s|trials=%d|shard=%d", h.Scenario, h.Trials, h.ShardSize)
	if h.ParamsDigest != "" {
		fp += "|params=" + h.ParamsDigest
	}
	return fp
}

// geometryMatches reports whether two headers agree on the
// digest-independent campaign identity (scenario, trials, shard size).
func (h partialHeader) geometryMatches(o partialHeader) bool {
	return h.Scenario == o.Scenario && h.Trials == o.Trials && h.ShardSize == o.ShardSize
}

// digestConflicts reports whether two headers carry contradicting
// params digests. Empty digests (pre-digest artifacts, or engines run
// without a spec layer) never conflict.
func (h partialHeader) digestConflicts(o partialHeader) bool {
	return h.ParamsDigest != "" && o.ParamsDigest != "" && h.ParamsDigest != o.ParamsDigest
}

func (h partialHeader) partition() Partition {
	return Partition{Index: h.PartitionIndex, Count: h.PartitionCount}
}

func (h partialHeader) numShards() int {
	return (h.Trials + h.ShardSize - 1) / h.ShardSize
}

// shardRecord is one completed shard on the wire (and the in-memory
// record of an artifact-less execution). Weights is the version-3
// extension: per-counter weight moments, absent for unit-weight
// shards so version-2 bytes are unchanged.
type shardRecord struct {
	Index    int                   `json:"index"`
	Counters map[string]int64      `json:"counters,omitempty"`
	Weights  map[string]momentWire `json:"weights,omitempty"`
	Samples  []Sample              `json:"samples,omitempty"`
	Notes    []Note                `json:"notes,omitempty"`
}

// momentWire is the JSON form of Moments: strconv-formatted strings
// for the same reason as sampleWire — FormatFloat('g', -1) round-trips
// every float64 bit pattern exactly, which the merge-equals-single-
// process guarantee extends to weight moments.
type momentWire struct {
	WSum  string `json:"wsum"`
	WSum2 string `json:"wsum2"`
}

// wireWeights converts in-memory moments to their wire form (nil in,
// nil out, keeping unit-weight records weightless).
func wireWeights(m map[string]Moments) map[string]momentWire {
	if m == nil {
		return nil
	}
	out := make(map[string]momentWire, len(m))
	for k, v := range m {
		out[k] = momentWire{
			WSum:  strconv.FormatFloat(v.WSum, 'g', -1, 64),
			WSum2: strconv.FormatFloat(v.WSum2, 'g', -1, 64),
		}
	}
	return out
}

// parseWeights converts wire moments back (nil in, nil out).
func parseWeights(m map[string]momentWire) (map[string]Moments, error) {
	if m == nil {
		return nil, nil
	}
	out := make(map[string]Moments, len(m))
	for k, v := range m {
		wsum, err := strconv.ParseFloat(v.WSum, 64)
		if err != nil {
			return nil, fmt.Errorf("campaign: weight wsum %q: %w", v.WSum, err)
		}
		wsum2, err := strconv.ParseFloat(v.WSum2, 64)
		if err != nil {
			return nil, fmt.Errorf("campaign: weight wsum2 %q: %w", v.WSum2, err)
		}
		out[k] = Moments{WSum: wsum, WSum2: wsum2}
	}
	return out, nil
}

// legacyCheckpoint is the version-1 single-object schema.
type legacyCheckpoint struct {
	Version   int           `json:"version"`
	Scenario  string        `json:"scenario"`
	Trials    int           `json:"trials"`
	ShardSize int           `json:"shard_size"`
	Shards    []shardRecord `json:"shards"`
}

// sampleWire is the JSON form of Sample. Coordinates travel as
// strconv-formatted strings because campaigns legitimately record
// non-finite values (an MTTDL of +Inf, say) that encoding/json
// refuses to emit as numbers; FormatFloat('g', -1) round-trips every
// float64 bit pattern exactly, which the merge-equals-single-process
// guarantee depends on.
type sampleWire struct {
	Trial  int    `json:"trial"`
	Series string `json:"series"`
	X      string `json:"x"`
	Y      string `json:"y"`
}

// MarshalJSON implements json.Marshaler.
func (s Sample) MarshalJSON() ([]byte, error) {
	return json.Marshal(sampleWire{
		Trial:  s.Trial,
		Series: s.Series,
		X:      strconv.FormatFloat(s.X, 'g', -1, 64),
		Y:      strconv.FormatFloat(s.Y, 'g', -1, 64),
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (s *Sample) UnmarshalJSON(data []byte) error {
	var w sampleWire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	x, err := strconv.ParseFloat(w.X, 64)
	if err != nil {
		return fmt.Errorf("campaign: sample x %q: %w", w.X, err)
	}
	y, err := strconv.ParseFloat(w.Y, 64)
	if err != nil {
		return fmt.Errorf("campaign: sample y %q: %w", w.Y, err)
	}
	s.Trial, s.Series, s.X, s.Y = w.Trial, w.Series, x, y
	return nil
}

// Partial is one partition's executed output: per-shard counters
// (always resident — they are small and drive early stopping and
// merge validation) plus per-shard samples and notes, held in memory
// for artifact-less executions and lazily re-read from the artifact
// file otherwise, so a file-backed Partial's memory footprint is
// independent of the campaign's sample volume.
type Partial struct {
	header  partialHeader
	resumed int // trials restored from a pre-existing artifact

	counters map[int]map[string]int64
	weights  map[int]map[string]Moments // per-shard weight moments (nil maps for unit-weight shards)
	mem      map[int]*shardRecord       // artifact-less (or gzip-loaded) records
	loc      map[int][2]int64           // file-backed record {offset, length}

	path   string
	fileMu sync.Mutex // guards the lazy reopen below (parallel merges load concurrently)
	file   *os.File   // lazily opened read handle for load; reads use ReadAt (positional, shareable)
}

// Partition returns the slice of the campaign this partial holds.
func (p *Partial) Partition() Partition { return p.header.partition() }

// ParamsDigest returns the scenario-parameter digest recorded in the
// artifact ("" for artifacts written before the digest existed, or by
// engines run without a digest-supplying layer).
func (p *Partial) ParamsDigest() string { return p.header.ParamsDigest }

// Path returns the artifact file backing the partial ("" when it was
// executed without one).
func (p *Partial) Path() string { return p.path }

// ResumedTrials returns the number of trials restored from a
// pre-existing artifact rather than executed.
func (p *Partial) ResumedTrials() int { return p.resumed }

// Shards returns the sorted indices of the completed shards.
func (p *Partial) Shards() []int {
	out := make([]int, 0, len(p.counters))
	for i := range p.counters {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// DoneTrials returns the number of trials covered by completed shards.
func (p *Partial) DoneTrials() int {
	done := 0
	for i := range p.counters {
		lo, hi := p.shardSpan(i)
		done += hi - lo
	}
	return done
}

func (p *Partial) shardSpan(idx int) (lo, hi int) {
	return shardSpan(idx, p.header.ShardSize, p.header.Trials)
}

// has reports whether shard idx is complete in this partial.
func (p *Partial) has(idx int) bool {
	_, ok := p.counters[idx]
	return ok
}

// load returns the full record of one completed shard, re-reading it
// from the artifact when it was spilled.
func (p *Partial) load(idx int) (*shardRecord, error) {
	if rec, ok := p.mem[idx]; ok {
		return rec, nil
	}
	loc, ok := p.loc[idx]
	if !ok {
		return nil, fmt.Errorf("campaign: partial %s has no shard %d", describePartial(p), idx)
	}
	p.fileMu.Lock()
	if p.file == nil {
		f, err := os.Open(p.path)
		if err != nil {
			p.fileMu.Unlock()
			return nil, fmt.Errorf("campaign: reopen partial: %w", err)
		}
		p.file = f
	}
	file := p.file
	p.fileMu.Unlock()
	buf := make([]byte, loc[1])
	if _, err := file.ReadAt(buf, loc[0]); err != nil {
		return nil, fmt.Errorf("campaign: read partial %s shard %d: %w", p.path, idx, err)
	}
	var rec shardRecord
	if err := json.Unmarshal(buf, &rec); err != nil {
		return nil, fmt.Errorf("campaign: parse partial %s shard %d: %w", p.path, idx, err)
	}
	if rec.Index != idx {
		return nil, fmt.Errorf("campaign: partial %s record at offset %d is shard %d, want %d", p.path, loc[0], rec.Index, idx)
	}
	return &rec, nil
}

// ShardCounter returns the value a completed shard recorded for one
// named counter (0 for counters the shard never touched). ok is false
// when the shard is not complete in this partial. Layers that fold
// arrivals incrementally — the fabric coordinator re-deciding the
// early stop on the contiguous prefix between merge rounds — read
// per-shard counters through this instead of waiting for a full Merge.
func (p *Partial) ShardCounter(idx int, name string) (v int64, ok bool) {
	c, ok := p.counters[idx]
	if !ok {
		return 0, false
	}
	return c[name], true
}

// ShardWeights returns the weight moments a completed shard recorded
// for one counter. Unit-weight shards (and version-2 artifacts, which
// predate moments) report the integer counter as both moments —
// exactly the unit-weight identity WSum == WSum2 == count — so prefix
// folds can mix old and new shards without special cases. ok mirrors
// ShardCounter.
func (p *Partial) ShardWeights(idx int, name string) (m Moments, ok bool) {
	c, ok := p.counters[idx]
	if !ok {
		return Moments{}, false
	}
	if w, found := p.weights[idx][name]; found {
		return w, true
	}
	v := float64(c[name])
	return Moments{WSum: v, WSum2: v}, true
}

// MatchesPlan validates that this partial is the output of exactly the
// given plan: same campaign geometry (scenario, trials, shard size),
// same partition, no params-digest conflict, and every completed shard
// inside the plan's range. It is the upload-acceptance check of the
// fabric coordinator — a partial that passes can be handed to Merge
// alongside the plan's siblings without further identity checks.
func (p *Partial) MatchesPlan(plan *Plan) error {
	h := plan.header()
	if !p.header.geometryMatches(h) || p.header.partition() != h.partition() {
		return fmt.Errorf("campaign: partial %s is for scenario %q (%d trials, shard %d, partition %s), want %q (%d trials, shard %d, partition %s)",
			describePartial(p), p.header.Scenario, p.header.Trials, p.header.ShardSize, p.header.partition(),
			plan.Scenario, plan.Trials, plan.ShardSize, plan.Part)
	}
	if p.header.Version != h.Version {
		return fmt.Errorf("campaign: partial %s has artifact version %d, want %d",
			describePartial(p), p.header.Version, h.Version)
	}
	if p.header.digestConflicts(h) {
		return fmt.Errorf("campaign: partial %s was computed under different scenario params (digest %s, want %s)",
			describePartial(p), p.header.ParamsDigest, h.ParamsDigest)
	}
	for idx := range p.counters {
		if idx < plan.First || idx >= plan.End {
			return fmt.Errorf("campaign: partial %s holds shard %d outside partition %s range [%d, %d)",
				describePartial(p), idx, plan.Part, plan.First, plan.End)
		}
	}
	return nil
}

// Complete reports whether the partial holds every shard of the
// plan's range — the difference between an upload that finished its
// slice and one that was truncated in flight.
func (p *Partial) Complete(plan *Plan) bool {
	for idx := plan.First; idx < plan.End; idx++ {
		if !p.has(idx) {
			return false
		}
	}
	return true
}

// WriteTo serializes the partial as a version-2 JSONL artifact —
// header line plus one record per completed shard in shard order —
// which is also the fabric's upload wire format: bytes written by
// WriteTo round-trip through OpenPartial into an equal partial.
// File-backed records are re-read from the artifact on demand, so
// streaming a spilled partial does not re-materialize its samples.
func (p *Partial) WriteTo(w io.Writer) (int64, error) {
	head, err := json.Marshal(p.header)
	if err != nil {
		return 0, fmt.Errorf("campaign: encode partial header: %w", err)
	}
	var written int64
	n, err := w.Write(append(head, '\n'))
	written += int64(n)
	if err != nil {
		return written, err
	}
	for _, idx := range p.Shards() {
		rec, err := p.load(idx)
		if err != nil {
			return written, err
		}
		line, err := json.Marshal(rec)
		if err != nil {
			return written, fmt.Errorf("campaign: encode shard %d: %w", idx, err)
		}
		n, err := w.Write(append(line, '\n'))
		written += int64(n)
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// Close releases the artifact read handle (a no-op for in-memory
// partials). The Partial must not be used afterwards.
func (p *Partial) Close() error {
	if p.file == nil {
		return nil
	}
	err := p.file.Close()
	p.file = nil
	return err
}

// newMemPartial builds an empty artifact-less partial for a plan.
func newMemPartial(plan *Plan) *Partial {
	return &Partial{
		header:   plan.header(),
		counters: make(map[int]map[string]int64),
		mem:      make(map[int]*shardRecord),
	}
}

// record stores a completed shard in memory.
func (p *Partial) record(rec *shardRecord) error {
	w, err := parseWeights(rec.Weights)
	if err != nil {
		return err
	}
	p.counters[rec.Index] = rec.Counters
	if w != nil {
		if p.weights == nil {
			p.weights = make(map[int]map[string]Moments)
		}
		p.weights[rec.Index] = w
	}
	if p.mem != nil {
		p.mem[rec.Index] = rec
	}
	return nil
}

// OpenPartial reads a partial-result artifact (version 2 or 3, or a
// legacy version-1 checkpoint, which loads as partition 0/1 with
// identical shard contents) for merging. A plain JSONL file keeps
// only per-shard counters resident (samples are re-read on demand);
// a gzip-compressed one loads fully into memory.
func OpenPartial(path string) (*Partial, error) {
	p, _, err := readPartial(path)
	if err != nil {
		return nil, err
	}
	if p == nil {
		return nil, fmt.Errorf("campaign: partial %s does not exist", path)
	}
	return p, nil
}

// ReadPartial is OpenPartial for callers that treat a missing file as
// "no state yet": it returns (nil, nil) when the artifact does not
// exist. The adaptive allocator polls cell artifacts this way between
// rounds.
func ReadPartial(path string) (*Partial, error) {
	p, _, err := readPartial(path)
	return p, err
}

// readPartial loads an artifact in any format. It returns the
// partial, the byte offset at which a plain JSONL file's next append
// belongs (the end of the last complete record — a torn tail is
// excluded), and nil, nil, nil for a missing file. Version-1 files
// return appendRewrite (they must be rewritten before appending);
// gzip-compressed files return appendGzip (read-only at rest).
func readPartial(path string) (*Partial, int64, error) {
	f, err := os.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("campaign: read partial: %w", err)
	}
	defer f.Close()

	br := bufio.NewReaderSize(f, 1<<16)
	gzipped := false
	if magic, _ := br.Peek(2); len(magic) == 2 && magic[0] == 0x1f && magic[1] == 0x8b {
		zr, zerr := gzip.NewReader(br)
		if zerr != nil {
			return nil, 0, fmt.Errorf("campaign: decompress partial %s: %w", path, zerr)
		}
		defer zr.Close()
		br = bufio.NewReaderSize(zr, 1<<16)
		gzipped = true
	}
	first, err := br.ReadBytes('\n')
	if err != nil && err != io.EOF {
		return nil, 0, fmt.Errorf("campaign: read partial %s: %w", path, err)
	}
	trimmed := bytes.TrimSpace(first)
	if len(trimmed) == 0 {
		return nil, 0, fmt.Errorf("campaign: partial %s is empty", path)
	}

	var header partialHeader
	if uerr := json.Unmarshal(trimmed, &header); uerr != nil {
		return nil, 0, fmt.Errorf("campaign: parse partial %s: %v", path, uerr)
	}
	if header.Version == 0 {
		return nil, 0, fmt.Errorf("campaign: partial %s has no version field", path)
	}
	switch header.Version {
	case partialVersionLegacy:
		if gzipped {
			return nil, 0, fmt.Errorf("campaign: partial %s is a compressed legacy checkpoint (not supported)", path)
		}
		// The whole file is one version-1 JSON object; the "header" we
		// just parsed is the object itself (field names overlap), but
		// re-read it as the legacy schema to get the shards.
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			return nil, 0, fmt.Errorf("campaign: read partial: %w", rerr)
		}
		var cp legacyCheckpoint
		if uerr := json.Unmarshal(data, &cp); uerr != nil {
			return nil, 0, fmt.Errorf("campaign: parse checkpoint %s: %w", path, uerr)
		}
		p := &Partial{
			header: partialHeader{
				Version:        partialVersion,
				Scenario:       cp.Scenario,
				Trials:         cp.Trials,
				ShardSize:      cp.ShardSize,
				PartitionIndex: 0,
				PartitionCount: 1,
			},
			counters: make(map[int]map[string]int64),
			mem:      make(map[int]*shardRecord),
			path:     path,
		}
		numShards := p.header.numShards()
		for i := range cp.Shards {
			rec := cp.Shards[i]
			if rec.Index < 0 || rec.Index >= numShards {
				return nil, 0, fmt.Errorf("campaign: checkpoint %s has out-of-range shard %d", path, rec.Index)
			}
			if rec.Counters == nil {
				rec.Counters = make(map[string]int64)
			}
			if err := p.record(&rec); err != nil {
				return nil, 0, fmt.Errorf("campaign: checkpoint %s: %w", path, err)
			}
		}
		return p, appendRewrite, nil

	case partialVersion, partialVersionWeighted:
		if header.Trials <= 0 || header.ShardSize <= 0 {
			return nil, 0, fmt.Errorf("campaign: partial %s has invalid geometry (%d trials, shard %d)", path, header.Trials, header.ShardSize)
		}
		if err := header.partition().validate(); err != nil {
			return nil, 0, fmt.Errorf("campaign: partial %s: %w", path, err)
		}
		p := &Partial{
			header:   header,
			counters: make(map[int]map[string]int64),
			path:     path,
		}
		if gzipped {
			// Byte offsets into the compressed file are useless for
			// on-demand re-reads, so records stay resident.
			p.mem = make(map[int]*shardRecord)
		} else {
			p.loc = make(map[int][2]int64)
		}
		numShards := header.numShards()
		offset := int64(len(first))
		appendAt := offset
		for {
			line, rerr := br.ReadBytes('\n')
			if rerr != nil && rerr != io.EOF {
				return nil, 0, fmt.Errorf("campaign: read partial %s: %w", path, rerr)
			}
			complete := len(line) > 0 && line[len(line)-1] == '\n'
			if len(bytes.TrimSpace(line)) > 0 {
				var rec shardRecord
				if uerr := json.Unmarshal(line, &rec); uerr != nil {
					if complete {
						return nil, 0, fmt.Errorf("campaign: parse partial %s at offset %d: %w", path, offset, uerr)
					}
					// Torn tail from a crash mid-append: drop it; the
					// executor recomputes the shard.
				} else if rec.Index < 0 || rec.Index >= numShards {
					return nil, 0, fmt.Errorf("campaign: partial %s has out-of-range shard %d", path, rec.Index)
				} else if complete && !p.has(rec.Index) {
					if rec.Counters == nil {
						rec.Counters = make(map[string]int64)
					}
					if err := p.record(&rec); err != nil {
						return nil, 0, fmt.Errorf("campaign: partial %s shard %d: %w", path, rec.Index, err)
					}
					if !gzipped {
						p.loc[rec.Index] = [2]int64{offset, int64(len(line))}
					}
				}
			}
			offset += int64(len(line))
			if complete {
				appendAt = offset
			}
			if rerr == io.EOF {
				break
			}
		}
		if gzipped {
			appendAt = appendGzip
		}
		return p, appendAt, nil
	}
	return nil, 0, fmt.Errorf("campaign: partial %s has version %d, want %d or %d", path, header.Version, partialVersion, partialVersionWeighted)
}

// partialAppender appends shard records to a version-2 artifact.
type partialAppender struct {
	f      *os.File
	path   string
	offset int64
}

// createPartialFile writes a fresh version-2 artifact holding the
// header and the given records (used both for new artifacts and for
// migrating a version-1 checkpoint), atomically via rename, and
// returns an appender positioned at its end. The records' file
// locations are recorded into loc.
func createPartialFile(path string, header partialHeader, records []*shardRecord, loc map[int][2]int64) (*partialAppender, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("campaign: partial dir: %w", err)
	}
	var buf bytes.Buffer
	head, err := json.Marshal(header)
	if err != nil {
		return nil, fmt.Errorf("campaign: encode partial header: %w", err)
	}
	buf.Write(head)
	buf.WriteByte('\n')
	for _, rec := range records {
		line, err := json.Marshal(rec)
		if err != nil {
			return nil, fmt.Errorf("campaign: encode shard %d: %w", rec.Index, err)
		}
		loc[rec.Index] = [2]int64{int64(buf.Len()), int64(len(line) + 1)}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return nil, fmt.Errorf("campaign: write partial: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return nil, fmt.Errorf("campaign: commit partial: %w", err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("campaign: reopen partial: %w", err)
	}
	if _, err := f.Seek(int64(buf.Len()), io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("campaign: seek partial: %w", err)
	}
	return &partialAppender{f: f, path: path, offset: int64(buf.Len())}, nil
}

// openAppender opens an existing version-2 artifact for appending at
// the given offset, truncating any torn tail beyond it.
func openAppender(path string, at int64) (*partialAppender, error) {
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("campaign: open partial: %w", err)
	}
	if err := f.Truncate(at); err != nil {
		f.Close()
		return nil, fmt.Errorf("campaign: truncate partial tail: %w", err)
	}
	if _, err := f.Seek(at, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("campaign: seek partial: %w", err)
	}
	return &partialAppender{f: f, path: path, offset: at}, nil
}

// append writes one shard record and returns its file location. On a
// failed (possibly partial) write it truncates the file back to the
// last good record, so the artifact stays parseable and resumable
// even after a transient I/O error, and a retried append lands at the
// right offset.
func (a *partialAppender) append(rec *shardRecord) ([2]int64, error) {
	line, err := json.Marshal(rec)
	if err != nil {
		return [2]int64{}, fmt.Errorf("campaign: encode shard %d: %w", rec.Index, err)
	}
	line = append(line, '\n')
	if _, err := a.f.Write(line); err != nil {
		a.f.Truncate(a.offset)
		a.f.Seek(a.offset, io.SeekStart)
		return [2]int64{}, fmt.Errorf("campaign: append shard %d: %w", rec.Index, err)
	}
	loc := [2]int64{a.offset, int64(len(line))}
	a.offset += int64(len(line))
	return loc, nil
}

func (a *partialAppender) close() error {
	if a.f == nil {
		return nil
	}
	err := a.f.Close()
	a.f = nil
	return err
}
