package campaign

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"runtime/debug"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestPlanPartitionsDisjointAndComplete(t *testing.T) {
	for _, tc := range []struct{ trials, shardSize, parts int }{
		{2000, 64, 1}, {2000, 64, 3}, {2000, 64, 7}, {100, 256, 3},
		{5, 1, 8}, // more partitions than shards: some slices are empty
		{1, 256, 4},
	} {
		scn := &coinScenario{name: "coin", trials: tc.trials, seed: 1, p: 0.5}
		covered := make(map[int]int)
		var numShards int
		for i := 0; i < tc.parts; i++ {
			plan, err := NewPlan(scn, tc.shardSize, Partition{Index: i, Count: tc.parts})
			if err != nil {
				t.Fatal(err)
			}
			numShards = plan.NumShards
			trials := 0
			for s := plan.First; s < plan.End; s++ {
				covered[s]++
				lo, hi := plan.ShardSpan(s)
				trials += hi - lo
			}
			if got := plan.PartitionTrials(); got != trials {
				t.Errorf("%+v partition %d: PartitionTrials %d, want %d", tc, i, got, trials)
			}
		}
		if len(covered) != numShards {
			t.Errorf("%+v: %d shards covered, want %d", tc, len(covered), numShards)
		}
		for s, n := range covered {
			if n != 1 {
				t.Errorf("%+v: shard %d covered %d times", tc, s, n)
			}
		}
	}

	scn := &coinScenario{name: "coin", trials: 10, seed: 1, p: 0.5}
	if _, err := NewPlan(scn, 0, Partition{Index: 2, Count: 2}); err == nil {
		t.Error("out-of-range partition index accepted")
	}
	if _, err := NewPlan(scn, 0, Partition{Index: -1, Count: 3}); err == nil {
		t.Error("negative partition index accepted")
	}
	if _, err := NewPlan(nil, 0, Whole); err == nil {
		t.Error("nil scenario accepted")
	}
}

func TestParsePartition(t *testing.T) {
	p, err := ParsePartition("1/3")
	if err != nil || p != (Partition{Index: 1, Count: 3}) {
		t.Fatalf("ParsePartition(1/3) = %+v, %v", p, err)
	}
	for _, bad := range []string{"", "3", "3/1", "-1/3", "a/b", "1/0"} {
		if _, err := ParsePartition(bad); err == nil {
			t.Errorf("ParsePartition(%q) accepted", bad)
		}
	}
}

// executePartitioned runs the scenario as parts separate executions
// (each with its own worker count) and merges the partials. With
// dir != "", each partition spills to its own artifact file and the
// partials are reopened from disk, exercising the full cross-process
// path; otherwise the partials stay in memory.
func executePartitioned(t *testing.T, scn Scenario, shardSize, parts int, stop *EarlyStop, dir string) *Result {
	t.Helper()
	var partials []*Partial
	for i := 0; i < parts; i++ {
		plan, err := NewPlan(scn, shardSize, Partition{Index: i, Count: parts})
		if err != nil {
			t.Fatal(err)
		}
		cfg := ExecConfig{Workers: 1 + i%3, Stop: stop}
		if dir != "" {
			cfg.Artifact = filepath.Join(dir, fmt.Sprintf("part%dof%d.jsonl", i, parts))
		}
		partial, err := Execute(scn, plan, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if dir != "" {
			// Reopen from disk as a separate merging process would.
			partial.Close()
			partial, err = OpenPartial(cfg.Artifact)
			if err != nil {
				t.Fatal(err)
			}
		}
		partials = append(partials, partial)
	}
	defer func() {
		for _, p := range partials {
			p.Close()
		}
	}()
	res, err := Merge(partials, MergeConfig{Stop: stop})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestMergeEqualsSingleProcess is the determinism law of the
// plan/execute/merge split: for any K-way partitioning, any
// per-partition worker count, in memory or through artifact files,
// the merged result DeepEquals the single-process Run.
func TestMergeEqualsSingleProcess(t *testing.T) {
	scn := &coinScenario{name: "coin", trials: 2000, seed: 7, p: 0.3}
	want := run(t, scn, Config{Workers: 4, ShardSize: 64})
	for _, parts := range []int{1, 2, 3, 5, 16} {
		got := executePartitioned(t, scn, 64, parts, nil, "")
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%d-way in-memory merge diverged:\nwant %+v\ngot  %+v", parts, want, got)
		}
		got = executePartitioned(t, scn, 64, parts, nil, t.TempDir())
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%d-way file-backed merge diverged:\nwant %+v\ngot  %+v", parts, want, got)
		}
	}
}

// TestMergeEarlyStopMatchesSingleProcess: partitioned executors cannot
// see the global prefix, so they over-run the stopping point; the
// merger must re-decide the stop on the contiguous prefix and land on
// the identical shard, producing the identical (truncated) result.
func TestMergeEarlyStopMatchesSingleProcess(t *testing.T) {
	scn := &coinScenario{name: "coin", trials: 20000, seed: 5, p: 0.4}
	stop := &EarlyStop{Counter: "hits", RelHalfWidth: 0.05, MinTrials: 500}
	want := run(t, scn, Config{Workers: 4, ShardSize: 256, Stop: stop})
	if !want.EarlyStopped {
		t.Fatal("single-process campaign did not stop early")
	}
	for _, parts := range []int{2, 3, 5} {
		got := executePartitioned(t, scn, 256, parts, stop, t.TempDir())
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%d-way early-stopped merge diverged:\nwant %+v\ngot  %+v", parts, want, got)
		}
	}
}

// TestPartitionResumeFromPartial: a partition execution that aborts
// partway leaves a resumable artifact; re-running the partition picks
// up the missing shards only, and the merged campaign is bit-identical
// to the uninterrupted single-process run.
func TestPartitionResumeFromPartial(t *testing.T) {
	const parts = 3
	full := &coinScenario{name: "coin", trials: 3000, seed: 9, p: 0.25}
	want := run(t, full, Config{Workers: 4, ShardSize: 128})

	dir := t.TempDir()
	artifact := func(i int) string { return filepath.Join(dir, fmt.Sprintf("p%d.jsonl", i)) }
	// Partition 1 owns a middle slice of the trial range; failing
	// after trial 1500 aborts it partway with some shards flushed.
	plan1, err := NewPlan(full, 128, Partition{Index: 1, Count: parts})
	if err != nil {
		t.Fatal(err)
	}
	aborted := &coinScenario{name: "coin", trials: 3000, seed: 9, p: 0.25, failAfter: 1500}
	if _, err := Execute(aborted, plan1, ExecConfig{Workers: 2, Artifact: artifact(1)}); err == nil {
		t.Fatal("aborted partition reported success")
	}
	if _, err := os.Stat(artifact(1)); err != nil {
		t.Fatalf("no artifact written by aborted partition: %v", err)
	}

	var partials []*Partial
	resumed := false
	for i := 0; i < parts; i++ {
		plan, err := NewPlan(full, 128, Partition{Index: i, Count: parts})
		if err != nil {
			t.Fatal(err)
		}
		partial, err := Execute(full, plan, ExecConfig{Workers: 2, Artifact: artifact(i)})
		if err != nil {
			t.Fatal(err)
		}
		defer partial.Close()
		if partial.ResumedTrials() > 0 {
			resumed = true
		}
		partials = append(partials, partial)
	}
	if !resumed {
		t.Fatal("no partition resumed from the aborted artifact")
	}
	got, err := Merge(partials, MergeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	want.ResumedTrials = got.ResumedTrials // bookkeeping differs by design
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("resumed partitioned merge diverged:\nwant %+v\ngot  %+v", want, got)
	}
}

// TestLegacyCheckpointMigration: a version-1 single-object checkpoint
// must load into the new partial-result reader with byte-identical
// shard contents (OpenPartial + Merge equals the direct Run), and an
// executor resuming from it must migrate the file to version 2 and
// finish the campaign bit-identically.
func TestLegacyCheckpointMigration(t *testing.T) {
	scn := &coinScenario{name: "coin", trials: 1200, seed: 3, p: 0.35}
	want := run(t, scn, Config{Workers: 2, ShardSize: 100})

	// Build a v1 checkpoint from a clean in-memory execution's shards
	// (the legacy writer serialized exactly these records).
	plan, err := NewPlan(scn, 100, Whole)
	if err != nil {
		t.Fatal(err)
	}
	mem, err := Execute(scn, plan, ExecConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	writeV1 := func(path string, upTo int) {
		t.Helper()
		cp := legacyCheckpoint{Version: 1, Scenario: "coin", Trials: 1200, ShardSize: 100}
		for _, idx := range mem.Shards() {
			if idx >= upTo {
				continue
			}
			cp.Shards = append(cp.Shards, *mem.mem[idx])
		}
		data, err := json.Marshal(&cp)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// Full v1 file: the new reader must reproduce the Run result.
	fullPath := filepath.Join(t.TempDir(), "full.ckpt.json")
	writeV1(fullPath, plan.NumShards)
	p, err := OpenPartial(fullPath)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	got, err := Merge([]*Partial{p}, MergeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("v1 checkpoint merge diverged:\nwant %+v\ngot  %+v", want, got)
	}

	// Partial v1 file: Run must resume from it, migrate the file to
	// version 2, and produce the uninterrupted result.
	partPath := filepath.Join(t.TempDir(), "part.ckpt.json")
	writeV1(partPath, 7)
	res := run(t, scn, Config{Workers: 2, ShardSize: 100, Checkpoint: partPath})
	if res.ResumedTrials != 700 {
		t.Errorf("resumed %d trials from v1 checkpoint, want 700", res.ResumedTrials)
	}
	cmp := *want
	cmp.ResumedTrials = res.ResumedTrials
	if !reflect.DeepEqual(&cmp, res) {
		t.Fatalf("v1-resumed run diverged:\nwant %+v\ngot  %+v", &cmp, res)
	}
	data, err := os.ReadFile(partPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.SplitN(string(data), "\n", 2)[0], `"version":2`) {
		t.Errorf("checkpoint not migrated to version 2: %.80s", data)
	}
}

// TestTornTailTolerated: a crash mid-append leaves a torn final line;
// the reader must drop it and the next execution must recompute only
// that shard, overwriting the torn bytes.
func TestTornTailTolerated(t *testing.T) {
	scn := &coinScenario{name: "coin", trials: 1000, seed: 11, p: 0.5}
	want := run(t, scn, Config{Workers: 2, ShardSize: 100})

	cp := filepath.Join(t.TempDir(), "torn.jsonl")
	run(t, scn, Config{Workers: 2, ShardSize: 100, Checkpoint: cp})
	data, err := os.ReadFile(cp)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the file mid-way through its final record.
	torn := data[:len(data)-17]
	if err := os.WriteFile(cp, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	got := run(t, scn, Config{Workers: 2, ShardSize: 100, Checkpoint: cp})
	if got.ResumedTrials >= 1000 || got.ResumedTrials == 0 {
		t.Errorf("torn checkpoint resumed %d trials, want a partial resume", got.ResumedTrials)
	}
	want.ResumedTrials = got.ResumedTrials
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("torn-tail resume diverged:\nwant %+v\ngot  %+v", want, got)
	}
}

func TestMergeValidation(t *testing.T) {
	scn := &coinScenario{name: "coin", trials: 1000, seed: 2, p: 0.5}
	execute := func(s Scenario, shardSize, idx, parts int) *Partial {
		t.Helper()
		plan, err := NewPlan(s, shardSize, Partition{Index: idx, Count: parts})
		if err != nil {
			t.Fatal(err)
		}
		p, err := Execute(s, plan, ExecConfig{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	if _, err := Merge(nil, MergeConfig{}); err == nil {
		t.Error("empty partial list accepted")
	}

	p0 := execute(scn, 100, 0, 2)
	p1 := execute(scn, 100, 1, 2)
	if _, err := Merge([]*Partial{p0}, MergeConfig{}); err == nil || !strings.Contains(err.Error(), "incomplete merge") {
		t.Errorf("missing partition accepted: %v", err)
	}
	if _, err := Merge([]*Partial{p0, p0, p1}, MergeConfig{}); err == nil || !strings.Contains(err.Error(), "appears in partials") {
		t.Errorf("overlapping partials accepted: %v", err)
	}

	other := execute(&coinScenario{name: "other", trials: 1000, seed: 2, p: 0.5}, 100, 1, 2)
	if _, err := Merge([]*Partial{p0, other}, MergeConfig{}); err == nil || !strings.Contains(err.Error(), "from campaign") {
		t.Errorf("fingerprint mismatch accepted: %v", err)
	}
	resized := execute(scn, 50, 1, 2)
	if _, err := Merge([]*Partial{p0, resized}, MergeConfig{}); err == nil {
		t.Error("shard-size mismatch accepted")
	}
	threeWay := execute(scn, 100, 1, 3)
	if _, err := Merge([]*Partial{p0, threeWay}, MergeConfig{}); err == nil {
		t.Error("partition-count mismatch accepted")
	}
}

// countingSink records stream order and volume without retaining
// samples.
type countingSink struct {
	started *Result
	samples int
	notes   int
	lastKey int64 // (trial << 16 | seq) monotonicity check helper
	bad     bool
}

func (s *countingSink) Start(res *Result) error {
	s.started = res
	return nil
}
func (s *countingSink) Sample(sm Sample) error {
	if int64(sm.Trial) < s.lastKey {
		s.bad = true
	}
	s.lastKey = int64(sm.Trial)
	s.samples++
	return nil
}
func (s *countingSink) Note(n Note) error {
	s.notes++
	return nil
}

func TestMergeSinkStreamsInTrialOrder(t *testing.T) {
	scn := &coinScenario{name: "coin", trials: 1500, seed: 13, p: 0.5}
	want := run(t, scn, Config{Workers: 4, ShardSize: 64})

	p := executePartial(t, scn, 64, t.TempDir())
	defer p.Close()
	sink := &countingSink{lastKey: -1}
	got, err := Merge([]*Partial{p}, MergeConfig{Sink: sink})
	if err != nil {
		t.Fatal(err)
	}
	if got.Samples != nil || got.Notes != nil {
		t.Error("sink merge still accumulated samples/notes in the result")
	}
	if sink.started == nil || sink.started.Counters["trials_seen"] != 1500 {
		t.Errorf("sink.Start saw %+v", sink.started)
	}
	if sink.samples != len(want.Samples) || sink.notes != len(want.Notes) {
		t.Errorf("sink streamed %d samples / %d notes, want %d / %d",
			sink.samples, sink.notes, len(want.Samples), len(want.Notes))
	}
	if sink.bad {
		t.Error("samples were not streamed in trial order")
	}
	got.Samples, got.Notes = want.Samples, want.Notes
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("sink merge counters diverged:\nwant %+v\ngot  %+v", want, got)
	}
}

func executePartial(t *testing.T, scn Scenario, shardSize int, dir string) *Partial {
	t.Helper()
	plan, err := NewPlan(scn, shardSize, Whole)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Execute(scn, plan, ExecConfig{Workers: 4, Artifact: filepath.Join(dir, "p.jsonl")})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// sampleScenario is a deliberately cheap million-sample workload: one
// arithmetic sample per trial, no RNG, so the bounded-memory test
// measures the engine's spill path rather than trial cost.
type sampleScenario struct{ trials int }

func (s *sampleScenario) Name() string               { return "samples" }
func (s *sampleScenario) Trials() int                { return s.trials }
func (s *sampleScenario) NewWorker() (Worker, error) { return sampleWorker{}, nil }

type sampleWorker struct{}

func (sampleWorker) Trial(i int, acc *Acc) error {
	acc.Add("trials_seen", 1)
	acc.Sample(i, "u", float64(i), float64(i%997)/997)
	return nil
}

// TestMillionSampleBoundedMemory is the acceptance gate for the
// streaming spill path: a 2^20-trial campaign whose samples would
// occupy ~50 MB in memory must execute and merge (through a Sink)
// with live-heap growth bounded by the flush cadence, not the sample
// volume.
func TestMillionSampleBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("million-sample campaign in -short mode")
	}
	if raceEnabled {
		t.Skip("heap bounds are not meaningful under the race detector")
	}
	// Keep the collector close to the live set so the peak measurement
	// is tight.
	defer debug.SetGCPercent(debug.SetGCPercent(20))

	const trials = 1 << 20
	scn := &sampleScenario{trials: trials}
	dir := t.TempDir()

	memNow := func() uint64 {
		runtime.GC()
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return m.HeapAlloc
	}
	before := memNow()

	// Peak watcher: sample HeapAlloc while the campaign runs.
	var peak, stopPoll int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for atomic.LoadInt64(&stopPoll) == 0 {
			var m runtime.MemStats
			runtime.ReadMemStats(&m)
			if h := int64(m.HeapAlloc); h > atomic.LoadInt64(&peak) {
				atomic.StoreInt64(&peak, h)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	plan, err := NewPlan(scn, 0, Whole)
	if err != nil {
		t.Fatal(err)
	}
	partial, err := Execute(scn, plan, ExecConfig{Workers: 4, Artifact: filepath.Join(dir, "samples.jsonl")})
	if err != nil {
		t.Fatal(err)
	}
	defer partial.Close()
	afterExecute := memNow()

	sink := &countingSink{lastKey: -1}
	res, err := Merge([]*Partial{partial}, MergeConfig{Sink: sink})
	if err != nil {
		t.Fatal(err)
	}
	atomic.StoreInt64(&stopPoll, 1)
	<-done
	afterMerge := memNow()

	if res.Trials != trials || sink.samples != trials || sink.bad {
		t.Fatalf("campaign lost samples: trials %d, streamed %d, ordered %v", res.Trials, sink.samples, !sink.bad)
	}
	// 2^20 samples at ~40 B each would hold ≥ 40 MB live; the spill
	// path must stay an order of magnitude below that.
	const liveBound = 12 << 20
	if growth := int64(afterExecute) - int64(before); growth > liveBound {
		t.Errorf("executor retained %d MB live after spilling (bound %d MB)", growth>>20, liveBound>>20)
	}
	if growth := int64(afterMerge) - int64(before); growth > liveBound {
		t.Errorf("merge retained %d MB live (bound %d MB)", growth>>20, liveBound>>20)
	}
	const peakBound = 32 << 20
	if growth := atomic.LoadInt64(&peak) - int64(before); growth > peakBound {
		t.Errorf("peak heap growth %d MB exceeds bound %d MB (samples not spilled?)", growth>>20, peakBound>>20)
	}
}
