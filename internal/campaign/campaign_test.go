package campaign

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
)

// coinScenario is a deterministic-seeded Bernoulli campaign: trial i
// succeeds with probability p, records counters, one sample and an
// occasional note.
type coinScenario struct {
	name   string
	trials int
	seed   int64
	p      float64
	// failAfter, when > 0, makes trials with index >= failAfter
	// return an error (for abort/resume tests).
	failAfter int
}

func (s *coinScenario) Name() string { return s.name }
func (s *coinScenario) Trials() int  { return s.trials }
func (s *coinScenario) NewWorker() (Worker, error) {
	return &coinWorker{scn: s, rng: rand.New(rand.NewSource(0))}, nil
}

type coinWorker struct {
	scn *coinScenario
	rng *rand.Rand
}

func (w *coinWorker) Trial(i int, acc *Acc) error {
	if w.scn.failAfter > 0 && i >= w.scn.failAfter {
		return fmt.Errorf("injected failure at trial %d", i)
	}
	w.rng.Seed(TrialSeed(w.scn.seed, i))
	acc.Add("trials_seen", 1)
	acc.Add("events", 3) // deliberately non-binomial (>1 per trial)
	v := w.rng.Float64()
	if v < w.scn.p {
		acc.Add("hits", 1)
	}
	acc.Sample(i, "uniform", float64(i), v)
	if i%100 == 0 {
		acc.Note(i, "century trial %d", i)
	}
	return nil
}

func run(t *testing.T, scn Scenario, cfg Config) *Result {
	t.Helper()
	res, err := Run(scn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	scn := &coinScenario{name: "coin", trials: 2000, seed: 7, p: 0.3}
	var results []*Result
	for _, workers := range []int{1, 4, 8} {
		results = append(results, run(t, scn, Config{Workers: workers, ShardSize: 64}))
	}
	for i := 1; i < len(results); i++ {
		if !reflect.DeepEqual(results[0], results[i]) {
			t.Fatalf("worker count changed the result:\n1 worker: %+v\nvariant %d: %+v", results[0], i, results[i])
		}
	}
	if got := results[0].Counter("trials_seen"); got != 2000 {
		t.Errorf("trials_seen = %d, want 2000", got)
	}
	if results[0].Trials != 2000 || results[0].Requested != 2000 || results[0].EarlyStopped {
		t.Errorf("unexpected trial bookkeeping: %+v", results[0])
	}
}

func TestSamplesSortedByTrial(t *testing.T) {
	scn := &coinScenario{name: "coin", trials: 1000, seed: 3, p: 0.5}
	res := run(t, scn, Config{Workers: 8, ShardSize: 32})
	if len(res.Samples) != 1000 {
		t.Fatalf("got %d samples, want 1000", len(res.Samples))
	}
	for i, s := range res.Samples {
		if s.Trial != i {
			t.Fatalf("sample %d carries trial %d; merge order broken", i, s.Trial)
		}
	}
	for i := 1; i < len(res.Notes); i++ {
		if res.Notes[i-1].Trial >= res.Notes[i].Trial {
			t.Fatalf("notes out of order at %d: %+v", i, res.Notes)
		}
	}
	xs, ys := res.SeriesPoints("uniform")
	if len(xs) != 1000 || len(ys) != 1000 {
		t.Fatalf("series extraction lost points: %d/%d", len(xs), len(ys))
	}
	if names := res.SeriesNames(); len(names) != 1 || names[0] != "uniform" {
		t.Fatalf("series names = %v", names)
	}
}

func TestCounterIndependentOfShardSize(t *testing.T) {
	scn := &coinScenario{name: "coin", trials: 1500, seed: 11, p: 0.2}
	a := run(t, scn, Config{Workers: 4, ShardSize: 17})
	b := run(t, scn, Config{Workers: 2, ShardSize: 500})
	if !reflect.DeepEqual(a.Counters, b.Counters) {
		t.Fatalf("shard size changed counters: %v vs %v", a.Counters, b.Counters)
	}
	if !reflect.DeepEqual(a.Samples, b.Samples) {
		t.Fatal("shard size changed samples")
	}
}

func TestEarlyStopDeterministicAndEffective(t *testing.T) {
	scn := &coinScenario{name: "coin", trials: 100000, seed: 5, p: 0.4}
	stop := &EarlyStop{Counter: "hits", RelHalfWidth: 0.05, MinTrials: 500}
	var results []*Result
	for _, workers := range []int{1, 4, 8} {
		results = append(results, run(t, scn, Config{Workers: workers, ShardSize: 256, Stop: stop}))
	}
	first := results[0]
	if !first.EarlyStopped {
		t.Fatalf("campaign did not stop early: %+v trials", first.Trials)
	}
	if first.Trials >= first.Requested || first.Trials < 500 {
		t.Fatalf("implausible stopping point %d of %d", first.Trials, first.Requested)
	}
	for i := 1; i < len(results); i++ {
		if !reflect.DeepEqual(first, results[i]) {
			t.Fatalf("early stop not worker-count deterministic:\n%+v\nvs\n%+v", first, results[i])
		}
	}
	// The stopping rule must actually be satisfied at the stop point.
	p := first.Fraction("hits")
	lo, hi := Wilson(first.Counter("hits"), int64(first.Trials), 1.96)
	if (hi-lo)/2 > 0.05*p {
		t.Errorf("interval still too wide at stop: [%v, %v] around %v", lo, hi, p)
	}
}

// TestEarlyStopResumeReproducesStopPoint: a checkpointed campaign
// that early-stopped may hold in-flight shards beyond the stopping
// prefix; a rerun must re-evaluate the stop rule shard by shard over
// the restored prefix and reproduce the original stopping point
// instead of running further.
func TestEarlyStopResumeReproducesStopPoint(t *testing.T) {
	cp := filepath.Join(t.TempDir(), "coin.ckpt.json")
	scn := &coinScenario{name: "coin", trials: 100000, seed: 5, p: 0.4}
	stop := &EarlyStop{Counter: "hits", RelHalfWidth: 0.05, MinTrials: 500}
	cfg := Config{Workers: 8, ShardSize: 256, Stop: stop, Checkpoint: cp}

	first := run(t, scn, cfg)
	if !first.EarlyStopped {
		t.Fatal("campaign did not stop early")
	}
	again := run(t, scn, cfg)
	first.ResumedTrials, again.ResumedTrials = 0, 0 // bookkeeping differs by design
	if !reflect.DeepEqual(first, again) {
		t.Fatalf("resumed early-stopped campaign diverged:\nfirst %+v\nagain %+v", first, again)
	}
}

// TestEarlyStopRejectsNonBinomialCounter: a stop rule on a counter
// that increments more than once per trial must fail loudly instead
// of silently never triggering (the Wilson width would be NaN).
func TestEarlyStopRejectsNonBinomialCounter(t *testing.T) {
	scn := &coinScenario{name: "coin", trials: 5000, seed: 2, p: 0.5}
	stop := &EarlyStop{Counter: "events", RelHalfWidth: 0.05}
	_, err := Run(scn, Config{Workers: 4, ShardSize: 64, Stop: stop})
	if err == nil {
		t.Fatal("non-binomial early-stop counter accepted")
	}
	if !strings.Contains(err.Error(), "not per-trial") {
		t.Errorf("unhelpful error: %v", err)
	}
}

func TestResumeMatchesUninterrupted(t *testing.T) {
	dir := t.TempDir()
	cp := filepath.Join(dir, "coin.ckpt.json")
	full := &coinScenario{name: "coin", trials: 3000, seed: 9, p: 0.25}

	want := run(t, full, Config{Workers: 4, ShardSize: 128})

	// First attempt aborts partway: trials past 1500 error out, but
	// completed shards are checkpointed (including the flush-on-error
	// path).
	aborted := &coinScenario{name: "coin", trials: 3000, seed: 9, p: 0.25, failAfter: 1500}
	if _, err := Run(aborted, Config{Workers: 4, ShardSize: 128, Checkpoint: cp}); err == nil {
		t.Fatal("aborted campaign reported success")
	}
	if _, err := os.Stat(cp); err != nil {
		t.Fatalf("no checkpoint written by aborted campaign: %v", err)
	}

	got := run(t, full, Config{Workers: 4, ShardSize: 128, Checkpoint: cp})
	if got.ResumedTrials == 0 {
		t.Fatal("resumed campaign recomputed everything")
	}
	want.ResumedTrials = got.ResumedTrials // bookkeeping field differs by design
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("resumed != uninterrupted:\nwant %+v\ngot  %+v", want, got)
	}

	// A third run resumes everything and runs zero new trials.
	again := run(t, full, Config{Workers: 4, ShardSize: 128, Checkpoint: cp})
	if again.ResumedTrials != 3000 {
		t.Errorf("fully-checkpointed rerun resumed %d trials, want 3000", again.ResumedTrials)
	}
	want.ResumedTrials = again.ResumedTrials
	if !reflect.DeepEqual(want, again) {
		t.Fatal("fully-resumed run diverged")
	}
}

func TestCheckpointMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	cp := filepath.Join(dir, "coin.ckpt.json")
	scn := &coinScenario{name: "coin", trials: 500, seed: 1, p: 0.5}
	run(t, scn, Config{Workers: 2, ShardSize: 100, Checkpoint: cp})

	other := &coinScenario{name: "other", trials: 500, seed: 1, p: 0.5}
	if _, err := Run(other, Config{ShardSize: 100, Checkpoint: cp}); err == nil {
		t.Error("checkpoint for a different scenario accepted")
	}
	if _, err := Run(scn, Config{ShardSize: 99, Checkpoint: cp}); err == nil {
		t.Error("checkpoint with a different shard size accepted")
	}
	resized := &coinScenario{name: "coin", trials: 600, seed: 1, p: 0.5}
	if _, err := Run(resized, Config{ShardSize: 100, Checkpoint: cp}); err == nil {
		t.Error("checkpoint with a different trial count accepted")
	}
	if err := os.WriteFile(cp, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(scn, Config{ShardSize: 100, Checkpoint: cp}); err == nil {
		t.Error("corrupt checkpoint accepted")
	}
}

func TestProgressMonotonic(t *testing.T) {
	scn := &coinScenario{name: "coin", trials: 1000, seed: 2, p: 0.5}
	var last int64 = -1
	var calls int64
	run(t, scn, Config{Workers: 4, ShardSize: 50, Progress: func(done, total int) {
		atomic.AddInt64(&calls, 1)
		if int64(done) < atomic.LoadInt64(&last) || total != 1000 {
			t.Errorf("progress went backwards: %d after %d (total %d)", done, last, total)
		}
		atomic.StoreInt64(&last, int64(done))
	}})
	if atomic.LoadInt64(&calls) == 0 {
		t.Error("progress callback never invoked")
	}
	if got := atomic.LoadInt64(&last); got != 1000 {
		t.Errorf("final progress %d, want 1000", got)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(nil, Config{}); err == nil {
		t.Error("nil scenario accepted")
	}
	empty := &coinScenario{name: "empty", trials: 0}
	if _, err := Run(empty, Config{}); err == nil {
		t.Error("zero-trial scenario accepted")
	}
	scn := &coinScenario{name: "coin", trials: 10, seed: 1, p: 0.5}
	bad := []*EarlyStop{
		{Counter: "", RelHalfWidth: 0.1},
		{Counter: "hits", RelHalfWidth: 0},
		{Counter: "hits", RelHalfWidth: math.NaN()},
		{Counter: "hits", RelHalfWidth: 0.1, Z: -1},
	}
	for i, stop := range bad {
		if _, err := Run(scn, Config{Stop: stop}); err == nil {
			t.Errorf("invalid early stop %d accepted", i)
		}
	}
}

func TestWorkerErrorSurfaces(t *testing.T) {
	scn := &coinScenario{name: "coin", trials: 100, seed: 1, p: 0.5, failAfter: 10}
	if _, err := Run(scn, Config{Workers: 3, ShardSize: 8}); err == nil {
		t.Fatal("trial error did not surface")
	}
}

func TestSampleJSONRoundTripsNonFinite(t *testing.T) {
	in := []Sample{
		{Trial: 1, Series: "mttdl", X: 2, Y: math.Inf(1)},
		{Trial: 2, Series: "mttdl", X: math.Inf(-1), Y: math.NaN()},
		{Trial: 3, Series: "ber", X: 0.1, Y: 3.141592653589793e-17},
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out []Sample
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	for i := range in {
		same := func(a, b float64) bool {
			return a == b || (math.IsNaN(a) && math.IsNaN(b))
		}
		if out[i].Trial != in[i].Trial || out[i].Series != in[i].Series ||
			!same(out[i].X, in[i].X) || !same(out[i].Y, in[i].Y) {
			t.Errorf("sample %d did not round-trip: %+v vs %+v", i, in[i], out[i])
		}
	}
}

func TestWilson(t *testing.T) {
	lo, hi := Wilson(0, 0, 1.96)
	if lo != 0 || hi != 1 {
		t.Error("empty trials should return [0,1]")
	}
	lo, hi = Wilson(50, 100, 1.96)
	if lo >= 0.5 || hi <= 0.5 {
		t.Errorf("interval [%v,%v] must contain the point estimate", lo, hi)
	}
	lo, _ = Wilson(0, 100, 1.96)
	if lo != 0 {
		t.Errorf("lo = %v, want clamped to 0", lo)
	}
	_, hi = Wilson(100, 100, 1.96)
	if hi < 1-1e-12 {
		t.Errorf("hi = %v, want ~1", hi)
	}
}

func TestTrialSeedMatchesMemsimConvention(t *testing.T) {
	// internal/memsim reseeded per trial with base + i*0x9E3779B9 before
	// the campaign engine existed; TrialSeed must preserve that stream
	// so pre-engine statistics stay reproducible.
	if got, want := TrialSeed(100, 3), int64(100+3*0x9E3779B9); got != want {
		t.Fatalf("TrialSeed = %d, want %d", got, want)
	}
}
