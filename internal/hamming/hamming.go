// Package hamming implements extended Hamming SEC-DED codes — the
// classic memory EDAC baseline against which the paper's Reed-Solomon
// arrangements compete. A SEC-DED code corrects any single-bit error
// and detects any double-bit error in one protected word; memory
// vendors ship it as (39,32) and (72,64).
//
// The package provides both the codec (bit-exact encode/decode over
// uint64 datawords) and a word-level CTMC in the style of the paper's
// models (internal/simplex), so SEC-DED-protected memories drop into
// the same BER(t) analysis and the baseline comparison experiment
// (expdata "ext-baselines").
package hamming

import (
	"fmt"
	"math/bits"

	"repro/internal/markov"
)

// Code is an extended Hamming SEC-DED code for a fixed data width.
// Check bits occupy positions 1,2,4,8,... of the classic Hamming
// layout, the overall parity bit sits at position 0, and data bits
// fill the remaining positions in increasing order.
type Code struct {
	dataBits  int
	checkBits int // Hamming parity count, excluding overall parity
	total     int // codeword length including overall parity
	// dataPos[i] is the codeword position of data bit i.
	dataPos []int
	// cover[j] has a bit set for every codeword position the Hamming
	// parity bit 2^j covers (positions 1..dataBits+checkBits whose
	// index has bit j set, including the parity position itself).
	// Encode and Decode reduce each parity to one masked popcount
	// instead of walking the positions bit by bit.
	cover []uint64
}

// New builds a SEC-DED code for dataBits of payload (1..57, so the
// codeword fits in 64 bits; 57 data bits need 6+1 check bits).
func New(dataBits int) (*Code, error) {
	if dataBits < 1 || dataBits > 57 {
		return nil, fmt.Errorf("hamming: data width %d outside 1..57", dataBits)
	}
	r := 0
	for (1 << uint(r)) < dataBits+r+1 {
		r++
	}
	c := &Code{dataBits: dataBits, checkBits: r, total: dataBits + r + 1}
	for pos := 1; len(c.dataPos) < dataBits; pos++ {
		if pos&(pos-1) != 0 { // not a power of two: data position
			c.dataPos = append(c.dataPos, pos)
		}
	}
	c.cover = make([]uint64, r)
	for j := 0; j < r; j++ {
		for pos := 1; pos <= dataBits+r; pos++ {
			if pos&(1<<uint(j)) != 0 {
				c.cover[j] |= 1 << uint(pos)
			}
		}
	}
	// Positions run 1..dataBits+r in Hamming numbering; shift by the
	// overall-parity bit when mapping to the stored word: stored bit
	// index = Hamming position (position 0 holds overall parity).
	return c, nil
}

// MustNew is New for static configuration; it panics on error.
func MustNew(dataBits int) *Code {
	c, err := New(dataBits)
	if err != nil {
		panic(err)
	}
	return c
}

// DataBits returns the payload width in bits.
func (c *Code) DataBits() int { return c.dataBits }

// CodewordBits returns the stored width in bits, including the
// Hamming check bits and the overall (DED) parity bit.
func (c *Code) CodewordBits() int { return c.total }

// Overhead returns stored bits per data bit.
func (c *Code) Overhead() float64 { return float64(c.total) / float64(c.dataBits) }

// String identifies the code like "SEC-DED(72,64)".
func (c *Code) String() string { return fmt.Sprintf("SEC-DED(%d,%d)", c.total, c.dataBits) }

// Encode produces the stored codeword for data (low dataBits bits
// significant; higher bits must be zero).
func (c *Code) Encode(data uint64) (uint64, error) {
	if c.dataBits < 64 && data>>uint(c.dataBits) != 0 {
		return 0, fmt.Errorf("hamming: data %#x wider than %d bits", data, c.dataBits)
	}
	var cw uint64
	for i := 0; i < c.dataBits; i++ {
		if data>>uint(i)&1 != 0 {
			cw |= 1 << uint(c.dataPos[i])
		}
	}
	// Hamming parity bits: parity bit at position 2^j covers all
	// positions with bit j set. Its own position is still zero in cw,
	// so the full coverage mask yields the parity of the data bits.
	for j := 0; j < c.checkBits; j++ {
		parity := uint64(bits.OnesCount64(cw&c.cover[j])) & 1
		cw |= parity << uint(1<<uint(j))
	}
	// Overall parity over positions 1..N at position 0.
	cw |= uint64(bits.OnesCount64(cw)) & 1
	return cw, nil
}

// Status classifies a decode outcome.
type Status int

const (
	// NoError: the stored word was a valid codeword.
	NoError Status = iota
	// Corrected: a single-bit error was corrected.
	Corrected
	// DetectedDouble: a double-bit error was detected (uncorrectable,
	// data unreliable).
	DetectedDouble
)

// String names the status.
func (s Status) String() string {
	switch s {
	case NoError:
		return "no-error"
	case Corrected:
		return "corrected"
	case DetectedDouble:
		return "detected-double"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Result reports a decode.
type Result struct {
	Data   uint64
	Status Status
	// FlippedBit is the corrected codeword position when Status is
	// Corrected, -1 otherwise.
	FlippedBit int
}

// Decode checks and corrects the stored word. Errors of three or more
// bits alias onto the single/double syndromes: like Reed-Solomon
// bounded-distance decoding, SEC-DED then mis-corrects or mis-detects
// — the memsim-style comparisons account for that.
func (c *Code) Decode(stored uint64) (*Result, error) {
	if c.total < 64 && stored>>uint(c.total) != 0 {
		return nil, fmt.Errorf("hamming: stored word wider than %d bits", c.total)
	}
	syndrome := 0
	for j := 0; j < c.checkBits; j++ {
		if bits.OnesCount64(stored&c.cover[j])&1 != 0 {
			syndrome |= 1 << uint(j)
		}
	}
	overall := uint64(bits.OnesCount64(stored)) & 1

	res := &Result{FlippedBit: -1}
	word := stored
	switch {
	case syndrome == 0 && overall == 0:
		res.Status = NoError
	case overall == 1:
		// Odd number of flipped bits: correct as a single. A syndrome
		// pointing outside the codeword can only come from three or
		// more aliased flips: report it as detected-uncorrectable
		// rather than corrupting a valid position.
		pos := syndrome // 0 means the overall parity bit itself
		if pos > c.dataBits+c.checkBits {
			res.Status = DetectedDouble
			return res, nil
		}
		word ^= 1 << uint(pos)
		res.Status = Corrected
		res.FlippedBit = pos
	default:
		// syndrome != 0 with even overall parity: double error.
		res.Status = DetectedDouble
		return res, nil
	}
	for i, pos := range c.dataPos {
		res.Data |= (word >> uint(pos) & 1) << uint(i)
	}
	return res, nil
}

// Params configures the word-level CTMC of a SEC-DED-protected memory
// word, mirroring the paper's simplex model: states count persistent
// (permanent-fault) and soft (SEU) bit errors; the word fails once two
// errors coexist (DED detects but cannot correct, and a third error
// mis-corrects). Scrubbing clears soft errors only. Rates per hour.
type Params struct {
	DataBits  int
	Lambda    float64 // SEU rate per bit per hour
	LambdaP   float64 // permanent fault rate per bit per hour
	ScrubRate float64 // 1/Tsc per hour; 0 disables scrubbing
}

// State is a CTMC state: persistent and soft error counts. Fail is
// absorbing.
type State struct {
	Perm int
	Soft int
	Fail bool
}

// String renders the state.
func (s State) String() string {
	if s.Fail {
		return "FAIL"
	}
	return fmt.Sprintf("H(%d,%d)", s.Perm, s.Soft)
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if _, err := New(p.DataBits); err != nil {
		return err
	}
	if p.Lambda < 0 || p.LambdaP < 0 || p.ScrubRate < 0 {
		return fmt.Errorf("hamming: negative rate")
	}
	return nil
}

// codewordBits computes the stored width for the model.
func (p Params) codewordBits() int {
	c := MustNew(p.DataBits)
	return c.CodewordBits()
}

// Transitions implements the markov model function.
func (p Params) Transitions(s State) []markov.Arc[State] {
	if s.Fail {
		return nil
	}
	n := p.codewordBits()
	clean := n - s.Perm - s.Soft
	fail := State{Fail: true}
	var arcs []markov.Arc[State]
	add := func(to State, rate float64) {
		if rate <= 0 {
			return
		}
		if !to.Fail && to.Perm+to.Soft > 1 {
			to = fail // two coexisting errors defeat SEC
		}
		if to != s {
			arcs = append(arcs, markov.Arc[State]{To: to, Rate: rate})
		}
	}
	if clean > 0 {
		add(State{Perm: s.Perm, Soft: s.Soft + 1}, p.Lambda*float64(clean))
		add(State{Perm: s.Perm + 1, Soft: s.Soft}, p.LambdaP*float64(clean))
	}
	// A permanent fault overtaking the soft-errored bit.
	if s.Soft > 0 {
		add(State{Perm: s.Perm + 1, Soft: s.Soft - 1}, p.LambdaP*float64(s.Soft))
	}
	if p.ScrubRate > 0 && s.Soft > 0 {
		add(State{Perm: s.Perm, Soft: 0}, p.ScrubRate)
	}
	return arcs
}

// FailProbabilities solves the SEC-DED word chain at the given times
// (hours, nondecreasing).
func FailProbabilities(p Params, times []float64) ([]float64, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	ex, err := markov.Build(State{}, p.Transitions, 16)
	if err != nil {
		return nil, err
	}
	series, err := ex.Chain.TransientSeries(ex.InitialVector(), times)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(times))
	for i, dist := range series {
		out[i] = ex.ProbabilityOf(dist, func(s State) bool { return s.Fail })
	}
	return out, nil
}
