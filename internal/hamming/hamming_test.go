package hamming

import (
	"math"
	"math/bits"
	"math/rand"
	"testing"
)

func relClose(a, b, rel float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= rel*scale
}

func TestNewStandardSizes(t *testing.T) {
	cases := []struct {
		data, total int
	}{
		{4, 8},   // (8,4) SEC-DED
		{8, 13},  // 4 check + parity
		{16, 22}, // 5 check + parity
		{32, 39}, // the classic (39,32)
		{57, 64},
	}
	for _, cse := range cases {
		c, err := New(cse.data)
		if err != nil {
			t.Fatalf("New(%d): %v", cse.data, err)
		}
		if c.CodewordBits() != cse.total {
			t.Errorf("data=%d: codeword %d bits, want %d", cse.data, c.CodewordBits(), cse.total)
		}
		if c.DataBits() != cse.data {
			t.Errorf("DataBits = %d", c.DataBits())
		}
	}
}

func TestNewValidation(t *testing.T) {
	for _, d := range []int{0, -1, 58, 64} {
		if _, err := New(d); err == nil {
			t.Errorf("New(%d) accepted", d)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew(0) did not panic")
		}
	}()
	MustNew(0)
}

func TestOverhead(t *testing.T) {
	c := MustNew(32)
	if got := c.Overhead(); !relClose(got, 39.0/32, 1e-15) {
		t.Errorf("Overhead = %v", got)
	}
	if c.String() != "SEC-DED(39,32)" {
		t.Errorf("String = %q", c.String())
	}
}

func TestEncodeDecodeClean(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, width := range []int{4, 8, 16, 32, 57} {
		c := MustNew(width)
		for i := 0; i < 200; i++ {
			data := rng.Uint64() & (1<<uint(width) - 1)
			cw, err := c.Encode(data)
			if err != nil {
				t.Fatal(err)
			}
			res, err := c.Decode(cw)
			if err != nil {
				t.Fatal(err)
			}
			if res.Status != NoError || res.Data != data {
				t.Fatalf("width %d: clean decode %+v, data %#x want %#x", width, res, res.Data, data)
			}
		}
	}
}

func TestEncodeRejectsWideData(t *testing.T) {
	c := MustNew(8)
	if _, err := c.Encode(0x100); err == nil {
		t.Error("9-bit data accepted by 8-bit code")
	}
}

func TestDecodeRejectsWideWord(t *testing.T) {
	c := MustNew(8) // 13-bit codewords
	if _, err := c.Decode(1 << 13); err == nil {
		t.Error("14-bit stored word accepted")
	}
}

func TestSingleBitCorrection(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, width := range []int{8, 32, 57} {
		c := MustNew(width)
		for i := 0; i < 500; i++ {
			data := rng.Uint64() & (1<<uint(width) - 1)
			cw, _ := c.Encode(data)
			pos := rng.Intn(c.CodewordBits())
			res, err := c.Decode(cw ^ 1<<uint(pos))
			if err != nil {
				t.Fatal(err)
			}
			if res.Status != Corrected {
				t.Fatalf("width %d pos %d: status %v, want corrected", width, pos, res.Status)
			}
			if res.FlippedBit != pos {
				t.Fatalf("corrected bit %d, want %d", res.FlippedBit, pos)
			}
			if res.Data != data {
				t.Fatalf("data %#x, want %#x", res.Data, data)
			}
		}
	}
}

func TestDoubleBitDetection(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := MustNew(32)
	for i := 0; i < 1000; i++ {
		data := rng.Uint64() & (1<<32 - 1)
		cw, _ := c.Encode(data)
		p1 := rng.Intn(c.CodewordBits())
		p2 := rng.Intn(c.CodewordBits())
		if p1 == p2 {
			continue
		}
		res, err := c.Decode(cw ^ 1<<uint(p1) ^ 1<<uint(p2))
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != DetectedDouble {
			t.Fatalf("double error at %d,%d: status %v, want detected-double", p1, p2, res.Status)
		}
	}
}

// TestTripleErrorsAliasLikeBoundedDistance: three flips either
// mis-correct (odd parity looks like a single) or are detected; the
// decoder must never return NoError.
func TestTripleErrorsNeverSilent(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	miscorrected, detected := 0, 0
	c := MustNew(32)
	for i := 0; i < 1000; i++ {
		data := rng.Uint64() & (1<<32 - 1)
		cw, _ := c.Encode(data)
		perm := rng.Perm(c.CodewordBits())[:3]
		bad := cw
		for _, p := range perm {
			bad ^= 1 << uint(p)
		}
		res, err := c.Decode(bad)
		if err != nil {
			t.Fatal(err)
		}
		switch res.Status {
		case NoError:
			t.Fatal("triple error decoded as clean")
		case Corrected:
			miscorrected++
			if res.Data == data {
				t.Fatal("triple error 'corrected' back to true data — impossible for distance-4")
			}
		case DetectedDouble:
			detected++
		}
	}
	if miscorrected == 0 {
		t.Error("no triple-error mis-corrections observed; distance-4 codes must alias")
	}
	_ = detected
}

func TestAllCodewordsHaveMinDistance4(t *testing.T) {
	// Exhaustive for the small (8,4) code: every pair of distinct
	// codewords differs in at least 4 bits.
	c := MustNew(4)
	var words []uint64
	for d := uint64(0); d < 16; d++ {
		cw, err := c.Encode(d)
		if err != nil {
			t.Fatal(err)
		}
		words = append(words, cw)
	}
	for i := range words {
		for j := i + 1; j < len(words); j++ {
			if d := bits.OnesCount64(words[i] ^ words[j]); d < 4 {
				t.Fatalf("codewords %#x and %#x at distance %d", words[i], words[j], d)
			}
		}
	}
}

func TestParamsValidate(t *testing.T) {
	good := Params{DataBits: 64 / 2, Lambda: 1e-6}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	bad := []Params{
		{DataBits: 0},
		{DataBits: 32, Lambda: -1},
		{DataBits: 32, LambdaP: -1},
		{DataBits: 32, ScrubRate: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestModelStateSpace(t *testing.T) {
	p := Params{DataBits: 32, Lambda: 1e-6, LambdaP: 1e-7}
	ex, err := markovBuild(p)
	if err != nil {
		t.Fatal(err)
	}
	// (0,0), (0,1), (1,0), FAIL.
	if got := ex; got != 4 {
		t.Errorf("state count = %d, want 4", got)
	}
}

// markovBuild exposes the chain size for the test above without
// exporting internals.
func markovBuild(p Params) (int, error) {
	probe, err := FailProbabilities(p, []float64{1})
	if err != nil {
		return 0, err
	}
	_ = probe
	// Rebuild through the public transition function.
	count := map[State]bool{{}: true}
	frontier := []State{{}}
	for len(frontier) > 0 {
		s := frontier[0]
		frontier = frontier[1:]
		for _, arc := range p.Transitions(s) {
			if !count[arc.To] {
				count[arc.To] = true
				frontier = append(frontier, arc.To)
			}
		}
	}
	return len(count), nil
}

func TestModelClosedFormPureSEU(t *testing.T) {
	// With LambdaP = 0 the chain is Good -> 1 soft -> Fail with rates
	// a = lambda*n and b = lambda*(n-1) (plus scrub if enabled).
	p := Params{DataBits: 32, Lambda: 3e-4}
	n := float64(MustNew(32).CodewordBits())
	a := p.Lambda * n
	b := p.Lambda * (n - 1)
	tt := 100.0
	got, err := FailProbabilities(p, []float64{tt})
	if err != nil {
		t.Fatal(err)
	}
	p0 := math.Exp(-a * tt)
	p1 := a / (a - b) * (math.Exp(-b*tt) - math.Exp(-a*tt))
	want := 1 - p0 - p1
	if !relClose(got[0], want, 1e-8) {
		t.Errorf("P_fail = %g, want %g", got[0], want)
	}
}

func TestModelScrubbingHelps(t *testing.T) {
	base := Params{DataBits: 32, Lambda: 3e-4}
	noScrub, err := FailProbabilities(base, []float64{100})
	if err != nil {
		t.Fatal(err)
	}
	base.ScrubRate = 1
	scrubbed, err := FailProbabilities(base, []float64{100})
	if err != nil {
		t.Fatal(err)
	}
	if scrubbed[0] >= noScrub[0] {
		t.Errorf("scrubbing did not help: %g vs %g", scrubbed[0], noScrub[0])
	}
}

func TestModelPermanentFaultsImmuneToScrub(t *testing.T) {
	base := Params{DataBits: 32, LambdaP: 1e-5}
	plain, err := FailProbabilities(base, []float64{1000})
	if err != nil {
		t.Fatal(err)
	}
	base.ScrubRate = 10
	scrubbed, err := FailProbabilities(base, []float64{1000})
	if err != nil {
		t.Fatal(err)
	}
	if !relClose(plain[0], scrubbed[0], 1e-9) {
		t.Errorf("scrub changed permanent-only failure: %g vs %g", scrubbed[0], plain[0])
	}
}

func TestStatusString(t *testing.T) {
	if NoError.String() != "no-error" || Corrected.String() != "corrected" ||
		DetectedDouble.String() != "detected-double" {
		t.Error("status names wrong")
	}
	if Status(9).String() == "" {
		t.Error("unknown status should render")
	}
}

func BenchmarkEncode72_64Equivalent(b *testing.B) {
	c := MustNew(57)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(uint64(i) & (1<<57 - 1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeSingleError(b *testing.B) {
	c := MustNew(32)
	cw, _ := c.Encode(0xDEADBEEF)
	bad := cw ^ 1<<7
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decode(bad); err != nil {
			b.Fatal(err)
		}
	}
}
