package expdata

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/campaign"
	"repro/internal/textplot"
)

// scenario runs a list of experiments as one campaign: one trial per
// experiment, so the engine shards independent experiments across the
// worker pool and the registry inherits checkpointing for free.
type scenario struct {
	name string
	exps []Experiment
}

// Scenario adapts the experiment list to the campaign engine. The
// name identifies the campaign in results and checkpoints.
func Scenario(name string, exps []Experiment) (campaign.Scenario, error) {
	if len(exps) == 0 {
		return nil, fmt.Errorf("expdata: no experiments")
	}
	if name == "" {
		ids := make([]string, len(exps))
		for i, e := range exps {
			ids[i] = e.ID
		}
		name = "experiments:" + strings.Join(ids, ",")
	}
	return &scenario{name: name, exps: exps}, nil
}

// Name implements campaign.Scenario.
func (s *scenario) Name() string { return s.name }

// Trials implements campaign.Scenario.
func (s *scenario) Trials() int { return len(s.exps) }

// NewWorker implements campaign.Scenario. Experiments share no
// mutable state, so the worker is just a view of the list.
func (s *scenario) NewWorker() (campaign.Worker, error) { return expWorker{s}, nil }

type expWorker struct{ scn *scenario }

// Trial runs experiment i and flattens its result into the
// accumulator: every series point becomes a sample tagged with the
// experiment's trial index, every note a campaign note.
func (w expWorker) Trial(i int, acc *campaign.Acc) error {
	e := w.scn.exps[i]
	res, err := e.Run()
	if err != nil {
		return fmt.Errorf("%s: %w", e.ID, err)
	}
	for _, s := range res.Series {
		for p := range s.X {
			acc.Sample(i, s.Label, s.X[p], s.Y[p])
		}
	}
	for _, note := range res.Notes {
		acc.Note(i, "%s", note)
	}
	return nil
}

// ResultsFromCampaign reassembles each experiment's Result from the
// campaign output: samples are grouped by trial index (= experiment
// position) and series label in order of first appearance, so a
// reassembled result is identical to a direct Run.
func ResultsFromCampaign(exps []Experiment, cres *campaign.Result) ([]*Result, error) {
	if cres.Trials != len(exps) {
		return nil, fmt.Errorf("expdata: campaign ran %d trials for %d experiments", cres.Trials, len(exps))
	}
	out := make([]*Result, len(exps))
	for i, e := range exps {
		out[i] = &Result{XLabel: e.XLabel, YLabel: e.YLabel, LogY: e.LogY}
	}
	seriesIdx := make(map[int]map[string]int) // trial -> label -> series position
	for _, s := range cres.Samples {
		if s.Trial < 0 || s.Trial >= len(exps) {
			return nil, fmt.Errorf("expdata: sample for unknown trial %d", s.Trial)
		}
		res := out[s.Trial]
		byLabel := seriesIdx[s.Trial]
		if byLabel == nil {
			byLabel = make(map[string]int)
			seriesIdx[s.Trial] = byLabel
		}
		idx, ok := byLabel[s.Series]
		if !ok {
			idx = len(res.Series)
			byLabel[s.Series] = idx
			res.Series = append(res.Series, textplot.Series{Label: s.Series})
		}
		res.Series[idx].X = append(res.Series[idx].X, s.X)
		res.Series[idx].Y = append(res.Series[idx].Y, s.Y)
	}
	for _, n := range cres.Notes {
		if n.Trial < 0 || n.Trial >= len(exps) {
			return nil, fmt.Errorf("expdata: note for unknown trial %d", n.Trial)
		}
		out[n.Trial].Notes = append(out[n.Trial].Notes, n.Text)
	}
	return out, nil
}

// jsonFloat emits finite values as JSON numbers and non-finite ones
// (an MTTDL of +Inf, say) as quoted strings instead of failing the
// whole document.
type jsonFloat float64

// MarshalJSON implements json.Marshaler.
func (f jsonFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return json.Marshal(strconv.FormatFloat(v, 'g', -1, 64))
	}
	return json.Marshal(v)
}

func jsonFloats(v []float64) []jsonFloat {
	out := make([]jsonFloat, len(v))
	for i, x := range v {
		out[i] = jsonFloat(x)
	}
	return out
}

// jsonSeries and jsonResult are the machine-readable result schema.
type jsonSeries struct {
	Label string      `json:"label"`
	X     []jsonFloat `json:"x"`
	Y     []jsonFloat `json:"y"`
}

type jsonResult struct {
	ID     string       `json:"id,omitempty"`
	Title  string       `json:"title,omitempty"`
	XLabel string       `json:"x_label"`
	YLabel string       `json:"y_label"`
	LogY   bool         `json:"log_y,omitempty"`
	Series []jsonSeries `json:"series"`
	Notes  []string     `json:"notes,omitempty"`
}

// WriteJSON emits one experiment result as indented JSON. id and
// title are optional identification fields.
func WriteJSON(w io.Writer, id, title string, res *Result) error {
	doc := jsonResult{
		ID:     id,
		Title:  title,
		XLabel: res.XLabel,
		YLabel: res.YLabel,
		LogY:   res.LogY,
		Notes:  res.Notes,
	}
	for _, s := range res.Series {
		doc.Series = append(doc.Series, jsonSeries{Label: s.Label, X: jsonFloats(s.X), Y: jsonFloats(s.Y)})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&doc)
}

// WriteCSV emits the result's series in long format:
// series,<x_label>,<y_label> with one row per point.
func WriteCSV(w io.Writer, res *Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"series", res.XLabel, res.YLabel}); err != nil {
		return err
	}
	for _, s := range res.Series {
		for i := range s.X {
			if err := cw.Write([]string{
				s.Label,
				strconv.FormatFloat(s.X[i], 'g', -1, 64),
				strconv.FormatFloat(s.Y[i], 'g', -1, 64),
			}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// CampaignCSVStream writes the campaign CSV schema (one block of
// counter rows followed by one row per sample) incrementally. It
// implements campaign.Sink, so a streaming merge can feed it sample
// by sample without ever materializing the sample list in memory —
// the bounded-memory output path for million-sample campaigns. The
// bytes produced are identical to WriteCampaignCSV's for the same
// result (WriteCampaignCSV is itself built on this writer).
type CampaignCSVStream struct {
	cw *csv.Writer
}

// NewCampaignCSVStream wraps a writer; call Start, then Sample per
// sample in trial order, then Flush.
func NewCampaignCSVStream(w io.Writer) *CampaignCSVStream {
	return &CampaignCSVStream{cw: csv.NewWriter(w)}
}

// Start implements campaign.Sink: it writes the header and the
// counter block from the merged result (whose counters and trial
// bookkeeping are final before any sample is streamed). The result's
// Samples field is ignored — samples arrive through Sample.
func (s *CampaignCSVStream) Start(cres *campaign.Result) error {
	if err := s.cw.Write([]string{"kind", "name", "trial", "x", "y"}); err != nil {
		return err
	}
	for _, name := range cres.CounterNames() {
		if err := s.cw.Write([]string{"counter", name, "", "", strconv.FormatInt(cres.Counters[name], 10)}); err != nil {
			return err
		}
	}
	return nil
}

// Sample implements campaign.Sink.
func (s *CampaignCSVStream) Sample(sm campaign.Sample) error {
	return s.cw.Write([]string{
		"sample", sm.Series, strconv.Itoa(sm.Trial),
		strconv.FormatFloat(sm.X, 'g', -1, 64),
		strconv.FormatFloat(sm.Y, 'g', -1, 64),
	})
}

// Note implements campaign.Sink; notes are not part of the campaign
// CSV schema.
func (s *CampaignCSVStream) Note(campaign.Note) error { return nil }

// Flush drains the underlying csv writer and reports any deferred
// write error.
func (s *CampaignCSVStream) Flush() error {
	s.cw.Flush()
	return s.cw.Error()
}

// WriteCampaignCSV emits a raw campaign result as CSV: one block of
// counter rows followed by one row per sample.
func WriteCampaignCSV(w io.Writer, cres *campaign.Result) error {
	s := NewCampaignCSVStream(w)
	if err := s.Start(cres); err != nil {
		return err
	}
	for _, sm := range cres.Samples {
		if err := s.Sample(sm); err != nil {
			return err
		}
	}
	return s.Flush()
}
