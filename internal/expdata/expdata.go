// Package expdata is the declarative registry of every experiment in
// the paper's evaluation section — Figures 5 through 10 plus the
// Section 6 decoder latency/area comparison and this repository's own
// model-vs-simulation cross-validation. The registry is the single
// source shared by cmd/sweep, the root-level benchmarks and
// EXPERIMENTS.md, so "regenerate figure N" means exactly one thing
// everywhere.
package expdata

import (
	"fmt"
	"math"

	"repro/internal/array"
	"repro/internal/complexity"
	"repro/internal/core"
	"repro/internal/duplex"
	"repro/internal/gf"
	"repro/internal/hamming"
	"repro/internal/mbusim"
	"repro/internal/memsim"
	"repro/internal/reliability"
	"repro/internal/rs"
	"repro/internal/simplex"
	"repro/internal/textplot"
	"repro/internal/tmr"
)

// Result is the output of one experiment: curves on a shared x grid
// plus free-form observations ("who wins, by what factor").
type Result struct {
	XLabel string
	YLabel string
	LogY   bool
	Series []textplot.Series
	Notes  []string
}

// Plot wraps the result into a renderable chart.
func (r *Result) Plot(title string) *textplot.Plot {
	return &textplot.Plot{
		Title:  title,
		XLabel: r.XLabel,
		YLabel: r.YLabel,
		LogY:   r.LogY,
		Series: r.Series,
	}
}

// Experiment is one regenerable paper artifact. XLabel, YLabel and
// LogY are the static axis metadata of its result (the registry is
// the single source; All() stamps them onto every Run output so
// campaign-reassembled results and direct runs agree).
type Experiment struct {
	ID          string // e.g. "fig5"
	Title       string
	Description string
	XLabel      string
	YLabel      string
	LogY        bool
	Run         func() (*Result, error)
}

// All returns every registered experiment in paper order.
func All() []Experiment {
	exps := []Experiment{
		{
			ID:          "fig5",
			Title:       "Figure 5: BER of simplex RS(18,16) under different SEU rates",
			Description: "0-48 h storage, lambda in {7.3e-7, 3.6e-6, 1.7e-5}/bit/day, no permanent faults, no scrubbing.",
			XLabel:      "hours", YLabel: "BER", LogY: true,
			Run: fig5,
		},
		{
			ID:          "fig6",
			Title:       "Figure 6: BER of duplex RS(18,16) under different SEU rates",
			Description: "Same sweep as Figure 5 on the duplex arrangement; the ranges must match Figure 5.",
			XLabel:      "hours", YLabel: "BER", LogY: true,
			Run: fig6,
		},
		{
			ID:          "fig7",
			Title:       "Figure 7: BER of duplex RS(18,16), worst-case SEU rate, variable scrubbing period",
			Description: "lambda = 1.7e-5/bit/day, Tsc in {900, 1200, 1800, 3600} s; hourly scrubbing must hold BER below 1e-6.",
			XLabel:      "hours", YLabel: "BER", LogY: true,
			Run: fig7,
		},
		{
			ID:          "fig8",
			Title:       "Figure 8: BER of simplex RS(18,16), varying permanent fault rate",
			Description: "24 months of storage, lambdaE in {1e-4 .. 1e-10}/symbol/day, no scrubbing.",
			XLabel:      "months", YLabel: "BER", LogY: true,
			Run: fig8,
		},
		{
			ID:          "fig9",
			Title:       "Figure 9: BER of duplex RS(18,16), varying permanent fault rate",
			Description: "Same sweep as Figure 8 on the duplex arrangement; the arbiter's erasure masking dominates.",
			XLabel:      "months", YLabel: "BER", LogY: true,
			Run: fig9,
		},
		{
			ID:          "fig10",
			Title:       "Figure 10: BER of simplex RS(36,16), varying permanent fault rate",
			Description: "Same sweep with the equal-redundancy wide code; its 20 check symbols push BER off the bottom of every axis.",
			XLabel:      "months", YLabel: "BER", LogY: true,
			Run: fig10,
		},
		{
			ID:          "tbl-td",
			Title:       "Section 6: decoder latency comparison (Td ~ 3n + 10(n-k))",
			Description: "RS(36,16) vs RS(18,16): 308 vs 74 cycles, a >4x access-time penalty for the wide code.",
			XLabel:      "arrangement index", YLabel: "decode cycles",
			Run: tableTd,
		},
		{
			ID:          "tbl-area",
			Title:       "Section 6: decoder area comparison (gates ~ m*(n-k))",
			Description: "One RS(36,16) decoder vs two RS(18,16) decoders: the duplex pair is smaller.",
			XLabel:      "arrangement index", YLabel: "gates",
			Run: tableArea,
		},
		{
			ID:          "xval",
			Title:       "Cross-validation: Markov chains vs Monte Carlo fault injection",
			Description: "At accelerated rates, the chains' Fail probability must sit in the simulator's confidence band; the real arbiter is measurably less pessimistic than the duplex chain.",
			XLabel:      "case index", YLabel: "P(fail)",
			Run: crossValidation,
		},
		{
			ID:          "ext-baselines",
			Title:       "Extension: RS arrangements vs SEC-DED and TMR at equal data width",
			Description: "128-bit datawords under the worst-case SEU rate with light permanent faults and hourly scrubbing: the EDAC baselines the paper's introduction positions RS against.",
			XLabel:      "hours", YLabel: "P(128-bit block unrecoverable)", LogY: true,
			Run: extBaselines,
		},
		{
			ID:          "ext-array",
			Title:       "Extension: whole-memory mission reliability (1 GiB SSMM, 24 months)",
			Description: "The paper's 'straightforward' whole-memory extension: probability the SSMM survives the mission without losing any word, per arrangement.",
			XLabel:      "months", YLabel: "P(any word lost)", LogY: true,
			Run: extArray,
		},
		{
			ID:          "ext-mbu",
			Title:       "Extension: multi-bit upsets — symbol-organized RS vs bit-organized baselines",
			Description: "Burst-length sweep with Poisson event injection through the real codecs: where ext-baselines' single-bit chains favor SEC-DED, physical bursts favor Reed-Solomon symbols.",
			XLabel:      "burst length (bits)", YLabel: "P(128-bit payload lost)",
			Run: extMBU,
		},
	}
	for i := range exps {
		exps[i].Run = withMeta(exps[i], exps[i].Run)
	}
	return exps
}

// withMeta stamps the registry's axis metadata onto the run output,
// keeping direct runs and campaign-reassembled results consistent.
func withMeta(e Experiment, run func() (*Result, error)) func() (*Result, error) {
	return func() (*Result, error) {
		res, err := run()
		if err != nil {
			return nil, err
		}
		res.XLabel, res.YLabel, res.LogY = e.XLabel, e.YLabel, e.LogY
		return res, nil
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// grids used by the figure experiments.
func hoursGrid() []float64 {
	g, err := reliability.HoursRange(0, 48, 13)
	if err != nil {
		panic(err) // static arguments
	}
	return g
}

func monthsGrid() []float64 {
	g, err := reliability.HoursRange(0, reliability.Months(24), 13)
	if err != nil {
		panic(err)
	}
	return g
}

func monthsAxis(hours []float64) []float64 {
	out := make([]float64, len(hours))
	for i, h := range hours {
		out[i] = h / reliability.HoursPerMonth
	}
	return out
}

// seuSweep runs the Figure 5/6 sweep for one arrangement.
func seuSweep(arr core.Arrangement) (*Result, error) {
	hours := hoursGrid()
	res := &Result{XLabel: "hours", YLabel: "BER", LogY: true}
	for _, rate := range reliability.PaperSEURates {
		curve, err := core.Evaluate(core.Config{
			Arrangement:  arr,
			Code:         core.RS1816,
			SEUPerBitDay: rate,
		}, hours)
		if err != nil {
			return nil, err
		}
		res.Series = append(res.Series, textplot.Series{
			Label: fmt.Sprintf("lambda=%.1e/bit/day", rate),
			X:     hours,
			Y:     curve.BER,
		})
	}
	last := len(hours) - 1
	res.Notes = append(res.Notes,
		fmt.Sprintf("BER(48h) spans %.2e .. %.2e across the three SEU rates",
			res.Series[0].Y[last], res.Series[2].Y[last]))
	return res, nil
}

func fig5() (*Result, error) { return seuSweep(core.Simplex) }

func fig6() (*Result, error) {
	res, err := seuSweep(core.Duplex)
	if err != nil {
		return nil, err
	}
	// The paper's observation: same range as the simplex system.
	simplexRes, err := fig5()
	if err != nil {
		return nil, err
	}
	last := len(res.Series[2].Y) - 1
	ratio := res.Series[2].Y[last] / simplexRes.Series[2].Y[last]
	res.Notes = append(res.Notes,
		fmt.Sprintf("duplex/simplex BER ratio at 48h, worst rate: %.2f (paper: same range)", ratio))
	return res, nil
}

func fig7() (*Result, error) {
	hours := hoursGrid()
	res := &Result{XLabel: "hours", YLabel: "BER", LogY: true}
	for _, tsc := range reliability.PaperScrubPeriods {
		curve, err := core.Evaluate(core.Config{
			Arrangement:        core.Duplex,
			Code:               core.RS1816,
			SEUPerBitDay:       reliability.WorstCaseSEURate,
			ScrubPeriodSeconds: tsc,
		}, hours)
		if err != nil {
			return nil, err
		}
		res.Series = append(res.Series, textplot.Series{
			Label: fmt.Sprintf("Tsc=%g s", tsc),
			X:     hours,
			Y:     curve.BER,
		})
	}
	last := len(hours) - 1
	worst := res.Series[len(res.Series)-1].Y[last] // Tsc = 3600 s
	note := fmt.Sprintf("BER(48h) at Tsc=3600s: %.2e — %s 1e-6 (paper: scrubbing at least hourly keeps BER below 1e-6)",
		worst, map[bool]string{true: "below", false: "ABOVE"}[worst < 1e-6])
	res.Notes = append(res.Notes, note)
	return res, nil
}

// permanentSweep runs the Figure 8/9/10 sweep.
func permanentSweep(arr core.Arrangement, code core.CodeSpec) (*Result, error) {
	hours := monthsGrid()
	months := monthsAxis(hours)
	res := &Result{XLabel: "months", YLabel: "BER", LogY: true}
	for _, rate := range reliability.PaperPermanentRates {
		curve, err := core.Evaluate(core.Config{
			Arrangement:         arr,
			Code:                code,
			ErasurePerSymbolDay: rate,
		}, hours)
		if err != nil {
			return nil, err
		}
		res.Series = append(res.Series, textplot.Series{
			Label: fmt.Sprintf("lambdaE=%.0e/sym/day", rate),
			X:     months,
			Y:     curve.BER,
		})
	}
	last := len(hours) - 1
	res.Notes = append(res.Notes,
		fmt.Sprintf("BER(24 months) spans %.2e (1e-4) down to %.2e (1e-10)",
			res.Series[0].Y[last], res.Series[len(res.Series)-1].Y[last]))
	return res, nil
}

func fig8() (*Result, error)  { return permanentSweep(core.Simplex, core.RS1816) }
func fig9() (*Result, error)  { return permanentSweep(core.Duplex, core.RS1816) }
func fig10() (*Result, error) { return permanentSweep(core.Simplex, core.RS3616) }

func tableTd() (*Result, error) {
	costs, err := complexity.PaperComparison()
	if err != nil {
		return nil, err
	}
	res := &Result{XLabel: "arrangement index", YLabel: "decode cycles"}
	var x, y []float64
	for i, c := range costs {
		x = append(x, float64(i))
		y = append(y, float64(c.DecodeCycles))
		res.Notes = append(res.Notes, fmt.Sprintf("%s: Td = %d cycles", c.Name, c.DecodeCycles))
	}
	res.Series = []textplot.Series{{Label: "Td (cycles)", X: x, Y: y}}
	ratio := float64(costs[2].DecodeCycles) / float64(costs[0].DecodeCycles)
	res.Notes = append(res.Notes,
		fmt.Sprintf("RS(36,16)/RS(18,16) latency ratio: %.2fx (paper: more than four times)", ratio))
	return res, nil
}

func tableArea() (*Result, error) {
	costs, err := complexity.PaperComparison()
	if err != nil {
		return nil, err
	}
	res := &Result{XLabel: "arrangement index", YLabel: "gates"}
	var x, y []float64
	for i, c := range costs {
		x = append(x, float64(i))
		y = append(y, c.TotalGates)
		res.Notes = append(res.Notes,
			fmt.Sprintf("%s: %d decoder(s), %.0f gates total", c.Name, c.Decoders, c.TotalGates))
	}
	res.Series = []textplot.Series{{Label: "total decoder gates", X: x, Y: y}}
	res.Notes = append(res.Notes,
		fmt.Sprintf("two RS(18,16) decoders / one RS(36,16) decoder area ratio: %.2f (paper: duplex pair is smaller)",
			costs[1].TotalGates/costs[2].TotalGates))
	return res, nil
}

// crossValidation compares the chains against the fault-injection
// simulator at accelerated rates (so a modest trial count resolves the
// probabilities).
func crossValidation() (*Result, error) {
	f8 := gf.MustField(8)
	code, err := rs.New(f8, 18, 16)
	if err != nil {
		return nil, err
	}
	const (
		lambdaHour  = 6e-4
		lambdaEHour = 2e-4
		horizon     = 48.0
		trials      = 40000
	)
	res := &Result{XLabel: "case index", YLabel: "P(fail)", LogY: false}

	type caseDef struct {
		name   string
		duplex bool
		chainP func() (float64, error)
		scrub  float64 // hours; 0 = none
	}
	cases := []caseDef{
		{
			name:   "simplex",
			duplex: false,
			chainP: func() (float64, error) {
				p, err := coreFail(core.Simplex, lambdaHour, lambdaEHour, 0, horizon)
				return p, err
			},
		},
		{
			name:   "duplex",
			duplex: true,
			chainP: func() (float64, error) {
				p, err := coreFail(core.Duplex, lambdaHour, lambdaEHour, 0, horizon)
				return p, err
			},
		},
		{
			name:   "simplex+scrub4h",
			duplex: false,
			scrub:  4,
			chainP: func() (float64, error) {
				p, err := coreFail(core.Simplex, lambdaHour, lambdaEHour, 4, horizon)
				return p, err
			},
		},
	}

	var xs, chain, mc []float64
	for i, cse := range cases {
		want, err := cse.chainP()
		if err != nil {
			return nil, err
		}
		sim, err := memsim.Run(memsim.Config{
			Code: code, Duplex: cse.duplex,
			LambdaBit: lambdaHour, LambdaSymbol: lambdaEHour,
			ScrubPeriod: cse.scrub, ExponentialScrub: cse.scrub > 0,
			Horizon: horizon, Trials: trials, Seed: 1000 + int64(i),
		})
		if err != nil {
			return nil, err
		}
		got := sim.CapabilityExceededFraction()
		lo, hi := memsim.WilsonInterval(sim.CapabilityExceeded, sim.Trials, 4)
		inside := want >= lo && want <= hi
		res.Notes = append(res.Notes, fmt.Sprintf(
			"%s: chain P_fail=%.4e, Monte Carlo=%.4e (4-sigma band [%.4e, %.4e]) — %s",
			cse.name, want, got, lo, hi,
			map[bool]string{true: "AGREE", false: "DISAGREE"}[inside]))
		if cse.duplex {
			res.Notes = append(res.Notes, fmt.Sprintf(
				"%s: real-arbiter failure fraction %.4e vs chain %.4e — chain conservatism factor %.1fx",
				cse.name, sim.FailFraction(), want, want/math.Max(sim.FailFraction(), 1e-300)))
		}
		xs = append(xs, float64(i))
		chain = append(chain, want)
		mc = append(mc, got)
	}
	res.Series = []textplot.Series{
		{Label: "Markov chain", X: xs, Y: chain},
		{Label: "Monte Carlo", X: xs, Y: mc},
	}
	return res, nil
}

// extBaselines compares the paper's RS arrangements against the EDAC
// baselines its introduction mentions — SEC-DED Hamming coding and
// triple modular redundancy — protecting the same 128-bit dataword
// under the same environment. The metric is the probability that the
// protected block is unrecoverable, which is the chains' shared Fail
// event (paper Eq. 1's prefactor is RS-specific, so raw probabilities
// keep the comparison honest).
func extBaselines() (*Result, error) {
	hours := hoursGrid()
	const (
		lambdaBitDay = reliability.WorstCaseSEURate
		lambdaESym   = 1e-6 // per symbol-day, paper Fig 8/9 mid-range
		scrubSec     = 3600.0
	)
	lambdaBitHour := reliability.PerDayToPerHour(lambdaBitDay)
	// Per-bit permanent rate for the bit-granular baselines: the
	// symbol rate spread uniformly over its m=8 bits.
	lambdaPBitHour := reliability.PerDayToPerHour(lambdaESym) / 8
	scrub := reliability.ScrubRatePerHour(scrubSec)

	res := &Result{XLabel: "hours", YLabel: "P(128-bit block unrecoverable)", LogY: true}

	// Simplex and duplex RS(18,16): one word carries the 128 bits.
	for _, arr := range []core.Arrangement{core.Simplex, core.Duplex} {
		curve, err := core.Evaluate(core.Config{
			Arrangement:         arr,
			Code:                core.RS1816,
			SEUPerBitDay:        lambdaBitDay,
			ErasurePerSymbolDay: lambdaESym,
			ScrubPeriodSeconds:  scrubSec,
		}, hours)
		if err != nil {
			return nil, err
		}
		overhead := 18.0 / 16
		if arr == core.Duplex {
			overhead = 2 * 18.0 / 16
		}
		res.Series = append(res.Series, textplot.Series{
			Label: fmt.Sprintf("%s RS(18,16) [%.2fx]", arr, overhead),
			X:     hours,
			Y:     curve.PFail,
		})
	}

	// 4 x SEC-DED(39,32): block fails when any of the four words does.
	secded, err := hamming.FailProbabilities(hamming.Params{
		DataBits:  32,
		Lambda:    lambdaBitHour,
		LambdaP:   lambdaPBitHour,
		ScrubRate: scrub,
	}, hours)
	if err != nil {
		return nil, err
	}
	block := make([]float64, len(secded))
	for i, p := range secded {
		block[i] = -math.Expm1(4 * math.Log1p(-p))
	}
	res.Series = append(res.Series, textplot.Series{
		Label: fmt.Sprintf("4x %v [%.2fx]", hamming.MustNew(32), 4*39.0/128),
		X:     hours,
		Y:     block,
	})

	// Bit-level TMR over the 128 bits.
	tmrFail, err := tmr.FailProbabilities(tmr.Params{
		DataBits:  128,
		Lambda:    lambdaBitHour,
		LambdaP:   lambdaPBitHour,
		ScrubRate: scrub,
	}, hours)
	if err != nil {
		return nil, err
	}
	res.Series = append(res.Series, textplot.Series{
		Label: fmt.Sprintf("TMR voter [%.2fx]", tmr.Overhead),
		X:     hours,
		Y:     tmrFail,
	})

	last := len(hours) - 1
	res.Notes = append(res.Notes,
		fmt.Sprintf("P(loss) at 48h — simplexRS: %.2e, duplexRS: %.2e, 4xSEC-DED: %.2e, TMR: %.2e",
			res.Series[0].Y[last], res.Series[1].Y[last], res.Series[2].Y[last], res.Series[3].Y[last]),
		"storage overhead in brackets; SEC-DED(39,32)x4 costs 1.22x vs RS(18,16)'s 1.125x",
		"caveat: the chains model independent single-bit SEUs, SEC-DED's best case;",
		"RS's symbol-level strength (multi-bit upsets within a symbol, bursts across",
		"a page) is exercised by internal/interleave and the codec tests instead",
	)
	return res, nil
}

// extArray lifts Figures 8-10 to a whole 1-GiB memory: mission
// reliability (no word lost) over 24 months at the paper's mid-range
// permanent fault rate.
func extArray() (*Result, error) {
	hours := monthsGrid()
	months := monthsAxis(hours)
	res := &Result{XLabel: "months", YLabel: "P(any word lost)", LogY: true}
	const lambdaESym = 1e-7
	type sys struct {
		name string
		arr  core.Arrangement
		code core.CodeSpec
	}
	for _, s := range []sys{
		{"simplex RS(18,16)", core.Simplex, core.RS1816},
		{"duplex RS(18,16)", core.Duplex, core.RS1816},
		{"simplex RS(36,16)", core.Simplex, core.RS3616},
	} {
		mem := array.Memory{
			DataBytes: 1 << 30,
			Word: core.Config{
				Arrangement:         s.arr,
				Code:                s.code,
				ErasurePerSymbolDay: lambdaESym,
			},
		}
		curve, err := mem.Evaluate(hours)
		if err != nil {
			return nil, err
		}
		res.Series = append(res.Series, textplot.Series{
			Label: s.name,
			X:     months,
			Y:     curve.AnyWordFail,
		})
		last := len(hours) - 1
		res.Notes = append(res.Notes, fmt.Sprintf(
			"%s: P(any word lost, 24mo) = %.3e, E[words lost] = %.3e of %d",
			s.name, curve.AnyWordFail[last], curve.ExpectedWordsLost[last], 1<<30/16))
	}
	res.Notes = append(res.Notes,
		"word-level advantages compound at scale: a 1 GiB memory holds 2^26 words")
	return res, nil
}

// extMBU sweeps the burst length of multi-bit upsets through the real
// codecs of internal/mbusim at fixed event density, reporting the
// data-loss fraction of each protection scheme.
func extMBU() (*Result, error) {
	systems, err := mbusim.DefaultSystems()
	if err != nil {
		return nil, err
	}
	res := &Result{XLabel: "burst length (bits)", YLabel: "P(128-bit payload lost)", LogY: false}
	burstLens := []float64{1, 2, 3, 4, 6, 8}
	series := make([]textplot.Series, len(systems))
	for i, sys := range systems {
		series[i] = textplot.Series{Label: sys.Name(), X: burstLens}
	}
	for _, bl := range burstLens {
		out, err := mbusim.Run(mbusim.Config{
			EventsPerKilobit: 4,
			BurstBits:        int(bl),
			Trials:           4000,
			Seed:             int64(1000 * bl),
		}, systems)
		if err != nil {
			return nil, err
		}
		for i, r := range out {
			series[i].Y = append(series[i].Y, r.LossFraction)
		}
	}
	res.Series = series
	last := len(burstLens) - 1
	findLoss := func(name string, idx int) float64 {
		for _, s := range series {
			if s.Label == name {
				return s.Y[idx]
			}
		}
		return math.NaN()
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("at 1-bit events: SEC-DED %.3f vs RS(20,16) %.3f — bit-granular coding holds its own",
			findLoss("4x SEC-DED(39,32)", 0), findLoss("RS(20,16)", 0)),
		fmt.Sprintf("at 8-bit bursts: SEC-DED %.3f vs RS(20,16) %.3f — symbol organization wins by %.1fx",
			findLoss("4x SEC-DED(39,32)", last), findLoss("RS(20,16)", last),
			findLoss("4x SEC-DED(39,32)", last)/math.Max(findLoss("RS(20,16)", last), 1e-9)),
		"event density 4 per kilobit of each system's own footprint (denser redundancy costs exposure)",
	)
	return res, nil
}

// coreFail evaluates a chain fail probability with per-hour rates
// (bypassing the per-day convention of core.Config, which the
// accelerated cross-validation does not use).
func coreFail(arr core.Arrangement, lambdaHour, lambdaEHour, scrubEveryHours, horizon float64) (float64, error) {
	scrubRate := 0.0
	if scrubEveryHours > 0 {
		scrubRate = 1 / scrubEveryHours
	}
	if arr == core.Simplex {
		out, err := simplex.FailProbabilities(simplex.Params{
			N: 18, K: 16, M: 8,
			Lambda: lambdaHour, LambdaE: lambdaEHour, ScrubRate: scrubRate,
		}, []float64{horizon})
		if err != nil {
			return 0, err
		}
		return out[0], nil
	}
	out, err := duplex.FailProbabilities(duplex.Params{
		N: 18, K: 16, M: 8,
		Lambda: lambdaHour, LambdaE: lambdaEHour, ScrubRate: scrubRate,
	}, []float64{horizon})
	if err != nil {
		return 0, err
	}
	return out[0], nil
}
