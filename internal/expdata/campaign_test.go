package expdata

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/textplot"
)

// TestCampaignReassemblyMatchesDirectRun: running experiments through
// the campaign engine and reassembling must reproduce the direct
// Run() output exactly, regardless of worker count.
func TestCampaignReassemblyMatchesDirectRun(t *testing.T) {
	var exps []Experiment
	for _, id := range []string{"fig5", "tbl-td", "tbl-area"} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("experiment %q missing", id)
		}
		exps = append(exps, e)
	}
	var want []*Result
	for _, e := range exps {
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, res)
	}

	for _, workers := range []int{1, 3} {
		scn, err := Scenario("paper-tables", exps)
		if err != nil {
			t.Fatal(err)
		}
		cres, err := campaign.Run(scn, campaign.Config{Workers: workers, ShardSize: 1})
		if err != nil {
			t.Fatal(err)
		}
		if cres.Scenario != "paper-tables" {
			t.Errorf("scenario name %q", cres.Scenario)
		}
		got, err := ResultsFromCampaign(exps, cres)
		if err != nil {
			t.Fatal(err)
		}
		for i := range exps {
			if !reflect.DeepEqual(want[i], got[i]) {
				t.Errorf("workers=%d: %s reassembled differently:\nwant %+v\ngot  %+v",
					workers, exps[i].ID, want[i], got[i])
			}
		}
	}
}

func TestScenarioValidation(t *testing.T) {
	if _, err := Scenario("x", nil); err == nil {
		t.Error("empty experiment list accepted")
	}
	e, _ := ByID("tbl-td")
	scn, err := Scenario("", []Experiment{e})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(scn.Name(), "tbl-td") {
		t.Errorf("default name %q should mention the experiment", scn.Name())
	}
}

func TestWriteJSONAndCSV(t *testing.T) {
	res := &Result{
		XLabel: "hours", YLabel: "BER", LogY: true,
		Series: []textplot.Series{
			{Label: "a", X: []float64{0, 1}, Y: []float64{1e-9, math.Inf(1)}},
		},
		Notes: []string{"hello"},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, "fig0", "title", res); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("WriteJSON produced invalid JSON despite +Inf sample: %v\n%s", err, buf.String())
	}
	if doc["id"] != "fig0" || doc["x_label"] != "hours" {
		t.Errorf("unexpected JSON doc: %v", doc)
	}

	buf.Reset()
	if err := WriteCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want header + 2 points:\n%s", len(lines), buf.String())
	}
	if lines[0] != "series,hours,BER" {
		t.Errorf("CSV header %q", lines[0])
	}
	if !strings.Contains(lines[2], "+Inf") {
		t.Errorf("CSV lost the +Inf point: %q", lines[2])
	}
}

func TestWriteCampaignCSV(t *testing.T) {
	cres := &campaign.Result{
		Scenario: "s", Trials: 2,
		Counters: map[string]int64{"hits": 3, "misses": 1},
		Samples:  []campaign.Sample{{Trial: 0, Series: "ber", X: 1, Y: 2e-6}},
	}
	var buf bytes.Buffer
	if err := WriteCampaignCSV(&buf, cres); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"counter,hits,,,3", "counter,misses,,,1", "sample,ber,0,1,2e-06"} {
		if !strings.Contains(out, want) {
			t.Errorf("campaign CSV missing %q:\n%s", want, out)
		}
	}
}

// TestStreamingCSVMatchesInMemory: the streaming writer fed sample by
// sample from a merge Sink must produce byte-for-byte the CSV that
// WriteCampaignCSV produces from the fully materialized result.
func TestStreamingCSVMatchesInMemory(t *testing.T) {
	// A real engine campaign (experiments carry samples with exotic
	// values, including +Inf MTTDLs) exercises the full float
	// formatting path.
	var exps []Experiment
	for _, id := range []string{"fig5", "tbl-td"} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("experiment %q missing", id)
		}
		exps = append(exps, e)
	}
	scn, err := Scenario("stream-csv", exps)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := campaign.NewPlan(scn, 1, campaign.Whole)
	if err != nil {
		t.Fatal(err)
	}
	partial, err := campaign.Execute(scn, plan, campaign.ExecConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer partial.Close()

	inMemory, err := campaign.Merge([]*campaign.Partial{partial}, campaign.MergeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := WriteCampaignCSV(&want, inMemory); err != nil {
		t.Fatal(err)
	}

	var got bytes.Buffer
	stream := NewCampaignCSVStream(&got)
	streamed, err := campaign.Merge([]*campaign.Partial{partial}, campaign.MergeConfig{Sink: stream})
	if err != nil {
		t.Fatal(err)
	}
	if err := stream.Flush(); err != nil {
		t.Fatal(err)
	}
	if streamed.Samples != nil {
		t.Error("streaming merge still materialized samples")
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatalf("streaming CSV differs from in-memory CSV:\nin-memory:\n%s\nstreamed:\n%s", want.String(), got.String())
	}
	if got.Len() == 0 || !strings.Contains(got.String(), "sample,") {
		t.Fatalf("streamed CSV suspiciously empty:\n%s", got.String())
	}
}

// TestRegistryMetaStamped: every experiment's Run output must carry
// the registry's axis metadata (the single-source guarantee the
// campaign reassembly relies on).
func TestRegistryMetaStamped(t *testing.T) {
	e, ok := ByID("fig5")
	if !ok {
		t.Fatal("fig5 missing")
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.XLabel != e.XLabel || res.YLabel != e.YLabel || res.LogY != e.LogY {
		t.Errorf("run result meta (%q,%q,%t) != registry meta (%q,%q,%t)",
			res.XLabel, res.YLabel, res.LogY, e.XLabel, e.YLabel, e.LogY)
	}
	if e.XLabel == "" || e.YLabel == "" {
		t.Error("registry meta empty")
	}
}
