package expdata

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes data to path through a same-directory temp
// file and a rename, so a concurrent reader (a dashboard tailing a
// results directory, a fabric merge scanning for artifacts) never
// observes a partially written file and a crash mid-write leaves the
// previous version intact. The containing directory is created if
// missing.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("expdata: %w", err)
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("expdata: %w", err)
	}
	tmpPath := tmp.Name()
	_, werr := tmp.Write(data)
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Chmod(tmpPath, perm)
	}
	if werr == nil {
		werr = os.Rename(tmpPath, path)
	}
	if werr != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("expdata: write %s: %w", path, werr)
	}
	return nil
}
