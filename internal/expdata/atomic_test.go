package expdata

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sub", "out.json")
	if err := WriteFileAtomic(path, []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	if data, _ := os.ReadFile(path); string(data) != "v1" {
		t.Fatalf("read back %q, want v1", data)
	}
	if err := WriteFileAtomic(path, []byte("v2"), 0o644); err != nil {
		t.Fatal(err)
	}
	if data, _ := os.ReadFile(path); string(data) != "v2" {
		t.Fatalf("after overwrite read back %q, want v2", data)
	}
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("temp file %s left behind", e.Name())
		}
	}
}
