package expdata

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "tbl-td", "tbl-area", "xval", "ext-baselines", "ext-array", "ext-mbu"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, id := range want {
		if all[i].ID != id {
			t.Errorf("experiment %d: ID = %q, want %q", i, all[i].ID, id)
		}
		if all[i].Title == "" || all[i].Description == "" || all[i].Run == nil {
			t.Errorf("experiment %q incomplete", all[i].ID)
		}
	}
}

func TestByID(t *testing.T) {
	e, ok := ByID("fig7")
	if !ok || e.ID != "fig7" {
		t.Error("ByID(fig7) failed")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID(nope) succeeded")
	}
}

func TestFig5Shape(t *testing.T) {
	res, err := mustRun(t, "fig5")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("fig5 has %d series, want 3", len(res.Series))
	}
	last := len(res.Series[0].Y) - 1
	// Curves are ordered by increasing SEU rate: BER must increase.
	if !(res.Series[0].Y[last] < res.Series[1].Y[last] && res.Series[1].Y[last] < res.Series[2].Y[last]) {
		t.Error("fig5 curves not ordered by SEU rate")
	}
	// Paper anchors: worst case ~1.1e-5 at 48h, quiet case ~2e-8.
	if w := res.Series[2].Y[last]; w < 5e-6 || w > 5e-5 {
		t.Errorf("fig5 worst-case BER(48h) = %g outside paper band", w)
	}
	if q := res.Series[0].Y[last]; q < 5e-9 || q > 1e-7 {
		t.Errorf("fig5 quiet-case BER(48h) = %g outside paper band", q)
	}
	// Log-log slope ~2 for the two-SEU failure mode: BER(48h)/BER(24h) ~ 4.
	mid := last / 2
	slope := res.Series[2].Y[last] / res.Series[2].Y[mid]
	if slope < 3 || slope > 5 {
		t.Errorf("fig5 quadratic growth broken: BER(48)/BER(24) = %g, want ~4", slope)
	}
}

func TestFig6SameRangeAsFig5(t *testing.T) {
	res, err := mustRun(t, "fig6")
	if err != nil {
		t.Fatal(err)
	}
	f5, err := mustRun(t, "fig5")
	if err != nil {
		t.Fatal(err)
	}
	last := len(res.Series[2].Y) - 1
	ratio := res.Series[2].Y[last] / f5.Series[2].Y[last]
	// "Same range": within a small constant factor (we measure ~2x).
	if ratio < 1 || ratio > 4 {
		t.Errorf("duplex/simplex BER ratio = %g, paper says same range", ratio)
	}
}

func TestFig7ScrubConclusion(t *testing.T) {
	res, err := mustRun(t, "fig7")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 4 {
		t.Fatalf("fig7 has %d series, want 4 scrub periods", len(res.Series))
	}
	last := len(res.Series[0].Y) - 1
	// Faster scrubbing (earlier series) => lower BER.
	for i := 1; i < 4; i++ {
		if res.Series[i-1].Y[last] >= res.Series[i].Y[last] {
			t.Errorf("fig7 ordering broken between Tsc series %d and %d", i-1, i)
		}
	}
	// The paper's headline: Tsc = 3600 s keeps BER below 1e-6.
	if w := res.Series[3].Y[last]; w >= 1e-6 {
		t.Errorf("fig7 BER(48h, Tsc=3600s) = %g, want < 1e-6", w)
	}
	// And the whole plot lives in the 1e-9..1e-6 window like the paper axis.
	if lo := res.Series[0].Y[last]; lo < 1e-9 || lo > 1e-6 {
		t.Errorf("fig7 fastest-scrub BER(48h) = %g outside paper axis band", lo)
	}
}

func TestFig8to10OrderingAndMagnitudes(t *testing.T) {
	f8r, err := mustRun(t, "fig8")
	if err != nil {
		t.Fatal(err)
	}
	f9r, err := mustRun(t, "fig9")
	if err != nil {
		t.Fatal(err)
	}
	f10r, err := mustRun(t, "fig10")
	if err != nil {
		t.Fatal(err)
	}
	last := len(f8r.Series[0].Y) - 1
	for i := range f8r.Series {
		s, d, w := f8r.Series[i].Y[last], f9r.Series[i].Y[last], f10r.Series[i].Y[last]
		if !(s > d) {
			t.Errorf("rate %d: simplex %g not worse than duplex %g", i, s, d)
		}
		// RS(36,16) may underflow to exactly 0 at the lowest rates —
		// the paper plots it at 1e-200, below float64 range.
		if w != 0 && !(d > w) {
			t.Errorf("rate %d: duplex %g not worse than RS(36,16) %g", i, d, w)
		}
	}
	// Paper axis anchors at 24 months: fig8 top curve within a decade
	// of 1e-1; fig9 top within decades of 1e-5; fig10 top far below.
	if top := f8r.Series[0].Y[last]; top < 1e-2 || top > 1 {
		t.Errorf("fig8 top curve = %g, want ~1e-1", top)
	}
	if top := f9r.Series[0].Y[last]; top < 1e-7 || top > 1e-3 {
		t.Errorf("fig9 top curve = %g, want ~1e-5", top)
	}
	if top := f10r.Series[0].Y[last]; top > 1e-8 {
		t.Errorf("fig10 top curve = %g, want far below fig9", top)
	}
	// fig10's slope: the wide code needs 21 erasures, so the BER
	// spread across rates must be gigantic (paper axis spans 200
	// decades). Compare top (1e-4) against the 1e-7 mid curve.
	mid := f10r.Series[3].Y[last]
	if mid != 0 && f10r.Series[0].Y[last]/mid < 1e20 {
		t.Errorf("fig10 spread top/mid = %g, want > 1e20", f10r.Series[0].Y[last]/mid)
	}
}

func TestTableTd(t *testing.T) {
	res, err := mustRun(t, "tbl-td")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 1 || len(res.Series[0].Y) != 3 {
		t.Fatal("tbl-td shape wrong")
	}
	y := res.Series[0].Y
	if y[0] != 74 || y[1] != 74 || y[2] != 308 {
		t.Errorf("cycles = %v, want [74 74 308]", y)
	}
	joined := strings.Join(res.Notes, "\n")
	if !strings.Contains(joined, "4.16x") {
		t.Errorf("notes missing the 308/74 = 4.16x ratio: %s", joined)
	}
}

func TestTableArea(t *testing.T) {
	res, err := mustRun(t, "tbl-area")
	if err != nil {
		t.Fatal(err)
	}
	y := res.Series[0].Y
	if !(y[1] < y[2]) {
		t.Errorf("two RS(18,16) decoders (%g) should be smaller than one RS(36,16) (%g)", y[1], y[2])
	}
	if y[1] != 2*y[0] {
		t.Errorf("duplex gates %g != 2x simplex %g", y[1], y[0])
	}
}

func TestResultPlot(t *testing.T) {
	res, err := mustRun(t, "tbl-td")
	if err != nil {
		t.Fatal(err)
	}
	out := res.Plot("decoder latency").Render()
	if !strings.Contains(out, "decoder latency") {
		t.Error("plot title missing")
	}
}

func TestExtBaselines(t *testing.T) {
	res, err := mustRun(t, "ext-baselines")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 4 {
		t.Fatalf("ext-baselines has %d series, want 4", len(res.Series))
	}
	last := len(res.Series[0].Y) - 1
	simplexRS := res.Series[0].Y[last]
	duplexRS := res.Series[1].Y[last]
	secded := res.Series[2].Y[last]
	tmrP := res.Series[3].Y[last]
	// Under independent single-bit SEUs at these overheads: TMR (3x)
	// best, then 4x SEC-DED, then the RS arrangements; duplex RS ~ 2x
	// simplex RS (no permanent-fault pressure at this rate/horizon).
	if !(tmrP < secded && secded < simplexRS && simplexRS < duplexRS) {
		t.Errorf("ordering broken: tmr=%g secded=%g simplexRS=%g duplexRS=%g",
			tmrP, secded, simplexRS, duplexRS)
	}
	for _, s := range res.Series {
		if s.Y[last] <= 0 || s.Y[last] > 1e-3 {
			t.Errorf("series %q end point %g outside plausible band", s.Label, s.Y[last])
		}
	}
}

func TestExtArray(t *testing.T) {
	res, err := mustRun(t, "ext-array")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("ext-array has %d series, want 3", len(res.Series))
	}
	last := len(res.Series[0].Y) - 1
	s18 := res.Series[0].Y[last]
	d18 := res.Series[1].Y[last]
	s36 := res.Series[2].Y[last]
	if !(s18 > d18 && d18 > s36) {
		t.Errorf("array-level ordering broken: %g %g %g", s18, d18, s36)
	}
	// The 2^26-word memory amplifies word-level probabilities by ~2^26
	// in the small-p regime.
	if s18 < 1e-3 {
		t.Errorf("1 GiB simplex memory at lambdaE=1e-7 should be visibly at risk, got %g", s18)
	}
	if d18 == 0 || s36 == 0 {
		t.Error("tiny array-level probabilities truncated to zero")
	}
}

func TestXValAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo campaign")
	}
	res, err := mustRun(t, "xval")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 {
		t.Fatalf("xval has %d series, want chain + Monte Carlo", len(res.Series))
	}
	for _, note := range res.Notes {
		if strings.Contains(note, "DISAGREE") {
			t.Errorf("cross-validation disagreement: %s", note)
		}
	}
	chain, mc := res.Series[0].Y, res.Series[1].Y
	for i := range chain {
		if chain[i] <= 0 || mc[i] <= 0 {
			t.Errorf("case %d: degenerate probabilities %g/%g", i, chain[i], mc[i])
		}
	}
}

func TestExtMBU(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo sweep")
	}
	res, err := mustRun(t, "ext-mbu")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 5 {
		t.Fatalf("ext-mbu has %d series, want 5", len(res.Series))
	}
	var rs20, secded []float64
	for _, s := range res.Series {
		switch s.Label {
		case "RS(20,16)":
			rs20 = s.Y
		case "4x SEC-DED(39,32)":
			secded = s.Y
		}
	}
	if rs20 == nil || secded == nil {
		t.Fatal("expected systems missing")
	}
	last := len(rs20) - 1
	// The story: comparable at 1-bit events, RS far ahead at 8-bit
	// bursts.
	if !(rs20[last] < secded[last]/2) {
		t.Errorf("8-bit bursts: RS(20,16) %g not well below SEC-DED %g", rs20[last], secded[last])
	}
	if ratio := secded[0] / rs20[0]; ratio > 3 {
		t.Errorf("1-bit events should be comparable, got SEC-DED/RS ratio %g", ratio)
	}
}

// mustRun runs one registered experiment. The heavyweight xval
// experiment is exercised by the root-level bench harness instead.
func mustRun(t *testing.T, id string) (*Result, error) {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %q not registered", id)
	}
	return e.Run()
}
