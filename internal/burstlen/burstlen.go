// Package burstlen models the length distribution of multi-bit-upset
// (MBU) burst events shared by internal/mbusim and internal/pagesim.
// Measured MBU multiplicities in scaled technologies are not a single
// fixed width: most events flip a couple of adjacent bits while a tail
// of rarer events flips many, which a geometric length models with one
// parameter (the mean). The fixed distribution preserves the
// historical behavior — and, deliberately, the historical RNG stream:
// sampling a fixed length consumes no randomness, so campaigns
// configured with fixed bursts remain bit-identical to releases that
// predate this package. Geometric sampling consumes one extra uniform
// draw per event, which is a new RNG stream by construction (there
// was no geometric mode before), so no committed tolerance band moves.
package burstlen

import (
	"fmt"
	"math"
	"math/rand"
)

// Distribution kinds.
const (
	// Fixed draws every burst at exactly Bits bits ("" means Fixed).
	Fixed = "fixed"
	// Geometric draws lengths from a geometric distribution on
	// {1, 2, ...} with mean MeanBits, capped at the stored-image size
	// (a physical burst cannot flip more bits than the image holds).
	Geometric = "geometric"
)

// Dist selects how long each MBU burst is, in stored bits.
type Dist struct {
	// Kind is "", Fixed or Geometric.
	Kind string
	// Bits is the fixed burst length (Fixed kind).
	Bits int
	// MeanBits is the geometric mean burst length (Geometric kind),
	// >= 1.
	MeanBits float64
}

// IsFixed reports whether every burst has the same length.
func (d Dist) IsFixed() bool { return d.Kind == "" || d.Kind == Fixed }

// Validate checks the parameters of the selected kind.
func (d Dist) Validate() error {
	switch d.Kind {
	case "", Fixed:
		if d.Bits <= 0 {
			return fmt.Errorf("burstlen: invalid fixed burst length %d", d.Bits)
		}
	case Geometric:
		if !(d.MeanBits >= 1) || math.IsInf(d.MeanBits, 0) {
			return fmt.Errorf("burstlen: geometric mean burst length %v must be a finite value >= 1", d.MeanBits)
		}
	default:
		return fmt.Errorf("burstlen: unknown burst distribution %q (want %q or %q)", d.Kind, Fixed, Geometric)
	}
	return nil
}

// String renders the distribution for scenario names and reports.
// Fixed renders as the bare bit count, matching the historical name
// format so fixed-burst checkpoints stay resumable.
func (d Dist) String() string {
	if d.IsFixed() {
		return fmt.Sprintf("%d", d.Bits)
	}
	return fmt.Sprintf("geom(%g)", d.MeanBits)
}

// Sample draws one burst length, capped at imageBits so every event
// can be placed without truncation at the image edge. Fixed draws
// consume no randomness (preserving the pre-distribution RNG stream);
// the caller must have rejected fixed lengths exceeding the image.
func (d Dist) Sample(rng *rand.Rand, imageBits int) int {
	if d.IsFixed() {
		return d.Bits
	}
	// Inverse-CDF geometric on {1, 2, ...} with success probability
	// p = 1/mean: L = 1 + floor(log(1-U) / log1p(-p)). U = 0 maps to
	// 1; mean 1 makes log1p(-p) = -Inf and every draw lands on 1.
	// Log1p keeps the denominator nonzero for tiny p (huge means),
	// where log(1-p) would round to 0 and degenerate every draw to 1.
	p := 1 / d.MeanBits
	u := rng.Float64()
	ratio := math.Log(1-u) / math.Log1p(-p)
	if !(ratio < float64(imageBits)) {
		// Cap in float space: for huge means the ratio can exceed
		// MaxInt64, and the out-of-range float-to-int conversion
		// would wrap to a value the l<1 clamp rewrites to 1 — the
		// opposite of the intended image-capped draw.
		return imageBits
	}
	l := 1 + int(math.Floor(ratio))
	if l < 1 {
		l = 1
	}
	if l > imageBits {
		l = imageBits
	}
	return l
}
