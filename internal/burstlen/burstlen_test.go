package burstlen

import (
	"math"
	"math/rand"
	"testing"
)

func TestValidate(t *testing.T) {
	good := []Dist{
		{Kind: "", Bits: 4},
		{Kind: Fixed, Bits: 1},
		{Kind: Geometric, MeanBits: 1},
		{Kind: Geometric, MeanBits: 6.5},
	}
	for i, d := range good {
		if err := d.Validate(); err != nil {
			t.Errorf("case %d (%+v) rejected: %v", i, d, err)
		}
	}
	bad := []Dist{
		{Kind: "", Bits: 0},
		{Kind: Fixed, Bits: -1},
		{Kind: Geometric, MeanBits: 0.5},
		{Kind: Geometric, MeanBits: 0},
		{Kind: Geometric, MeanBits: math.NaN()},
		{Kind: Geometric, MeanBits: math.Inf(1)},
		{Kind: "uniform", Bits: 4},
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("case %d (%+v) accepted", i, d)
		}
	}
}

// TestFixedConsumesNoRandomness pins the RNG-stream compatibility
// promise: fixed-length sampling must leave the generator untouched,
// so campaigns configured with fixed bursts reproduce the exact
// pre-distribution statistics.
func TestFixedConsumesNoRandomness(t *testing.T) {
	a := rand.New(rand.NewSource(42))
	b := rand.New(rand.NewSource(42))
	d := Dist{Kind: Fixed, Bits: 9}
	for i := 0; i < 100; i++ {
		if got := d.Sample(a, 1000); got != 9 {
			t.Fatalf("fixed sample %d = %d", i, got)
		}
	}
	if a.Uint64() != b.Uint64() {
		t.Fatal("fixed sampling advanced the RNG stream")
	}
}

// TestGeometricChiSquare bins 200k geometric draws and compares the
// observed histogram against the geometric pmf with a chi-square
// statistic. The draw is deterministic for the fixed seed, so the
// assertion is exact, and the threshold (the 99.9% critical value for
// the binned degrees of freedom, ~45.3 at df=19) leaves generous
// sampling headroom.
func TestGeometricChiSquare(t *testing.T) {
	const (
		mean  = 4.0
		n     = 200000
		nBins = 20 // lengths 1..19 plus the >=20 tail
	)
	d := Dist{Kind: Geometric, MeanBits: mean}
	rng := rand.New(rand.NewSource(7))
	obs := make([]float64, nBins)
	sum := 0.0
	for i := 0; i < n; i++ {
		l := d.Sample(rng, 1<<30) // effectively uncapped
		sum += float64(l)
		if l >= nBins {
			l = nBins
		}
		obs[l-1]++
	}
	if got := sum / n; math.Abs(got-mean) > 0.05 {
		t.Errorf("sample mean %v, want %v", got, mean)
	}

	p := 1 / mean
	chi2 := 0.0
	for k := 1; k <= nBins; k++ {
		var expP float64
		if k < nBins {
			expP = math.Pow(1-p, float64(k-1)) * p
		} else {
			expP = math.Pow(1-p, float64(nBins-1)) // tail mass P(L >= nBins)
		}
		exp := expP * n
		diff := obs[k-1] - exp
		chi2 += diff * diff / exp
	}
	if chi2 > 45.3 {
		t.Errorf("chi-square statistic %v exceeds the 99.9%% critical value 45.3 (df=%d)", chi2, nBins-1)
	}
}

// TestGeometricCappedAtImageEdge: a sampled length can never exceed
// the stored image, and with a mean far above the image the cap must
// actually engage (mass piles up at the image size).
func TestGeometricCappedAtImageEdge(t *testing.T) {
	d := Dist{Kind: Geometric, MeanBits: 64}
	rng := rand.New(rand.NewSource(3))
	const image = 8
	capped := 0
	for i := 0; i < 10000; i++ {
		l := d.Sample(rng, image)
		if l < 1 || l > image {
			t.Fatalf("sample %d outside [1, %d]", l, image)
		}
		if l == image {
			capped++
		}
	}
	// P(L >= 8) with p=1/64 is (63/64)^7 ~ 0.896.
	if capped < 8500 {
		t.Errorf("only %d/10000 draws hit the image cap; expected ~8960", capped)
	}
}

// TestGeometricHugeMean: for means so large that 1-p rounds to 1.0,
// log1p keeps the draw well-defined — lengths must pile up at the
// image cap, not silently degenerate to 1 (the log(1-p)==0 bug).
func TestGeometricHugeMean(t *testing.T) {
	// 1e18 exercises the log(1-p) underflow (1-p rounds to 1.0); 1e19
	// additionally overflows the float-to-int conversion for most
	// draws. Both must cap at the image, never degenerate to 1.
	for _, mean := range []float64{1e18, 1e19, math.MaxFloat64} {
		d := Dist{Kind: Geometric, MeanBits: mean}
		rng := rand.New(rand.NewSource(5))
		const image = 64
		capped := 0
		for i := 0; i < 10000; i++ {
			l := d.Sample(rng, image)
			if l < 1 || l > image {
				t.Fatalf("mean %g: sample %d outside [1, %d]", mean, l, image)
			}
			if l == image {
				capped++
			}
		}
		if capped < 9900 {
			t.Errorf("mean %g: only %d/10000 draws hit the cap; underflow or int overflow?", mean, capped)
		}
	}
}

// TestGeometricMeanOne degenerates to all-ones without dividing by
// zero.
func TestGeometricMeanOne(t *testing.T) {
	d := Dist{Kind: Geometric, MeanBits: 1}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		if got := d.Sample(rng, 100); got != 1 {
			t.Fatalf("mean-1 geometric drew %d", got)
		}
	}
}

func TestString(t *testing.T) {
	if got := (Dist{Kind: Fixed, Bits: 9}).String(); got != "9" {
		t.Errorf("fixed String() = %q, want \"9\" (historical name format)", got)
	}
	if got := (Dist{Kind: Geometric, MeanBits: 4.5}).String(); got != "geom(4.5)" {
		t.Errorf("geometric String() = %q", got)
	}
}
