package array

import (
	"fmt"
	"math"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/gf"
	"repro/internal/memsim"
	"repro/internal/reliability"
	"repro/internal/rs"
)

// SimConfig parameterizes the whole-memory Monte Carlo that
// cross-validates the analytic lift of Evaluate: every campaign trial
// simulates one protected word through the real codec/scrubber/arbiter
// (internal/memsim) with rates matched to the word-level Markov chain,
// and the observed capability-exceeded fraction — the chains' Fail
// event — is lifted through 1-(1-p)^W to the memory level.
//
// Agreement is exact (within sampling noise) for simplex words,
// scrubbed or not, and for unscrubbed duplex. Scrubbed duplex carries
// a known ~1% model gap the cross-validation flags by design: the
// simulator scrubs both modules at the same instants (one controller,
// one schedule) while the chain models scrubbing as independent
// memoryless transitions, so the joint pair state differs slightly.
type SimConfig struct {
	Memory Memory
	// Hours is the observation instant (the mission storage time).
	Hours  float64
	Trials int
	Seed   int64
}

// Validate checks the configuration.
func (c SimConfig) Validate() error {
	if err := c.Memory.Validate(); err != nil {
		return err
	}
	switch {
	case c.Hours <= 0 || math.IsNaN(c.Hours) || math.IsInf(c.Hours, 0):
		return fmt.Errorf("array: invalid observation time %v", c.Hours)
	case c.Trials <= 0:
		return fmt.Errorf("array: need at least one trial")
	}
	return nil
}

// MemsimConfig converts the word-level description to the simulator's
// units: per-day rates become per-hour, the scrub period becomes its
// mean in hours with exponential intervals (the memoryless schedule
// the CTMC's rate-1/Tsc treatment assumes), and the simulator's
// capability-exceeded event stands in for the chain's Fail state.
func (c SimConfig) MemsimConfig() (memsim.Config, error) {
	if err := c.Validate(); err != nil {
		return memsim.Config{}, err
	}
	word := c.Memory.Word
	field, err := gf.NewField(word.Code.M)
	if err != nil {
		return memsim.Config{}, err
	}
	code, err := rs.New(field, word.Code.N, word.Code.K)
	if err != nil {
		return memsim.Config{}, err
	}
	return memsim.Config{
		Code:             code,
		Duplex:           word.Arrangement == core.Duplex,
		LambdaBit:        reliability.PerDayToPerHour(word.SEUPerBitDay),
		LambdaSymbol:     reliability.PerDayToPerHour(word.ErasurePerSymbolDay),
		ScrubPeriod:      word.ScrubPeriodSeconds / 3600,
		ExponentialScrub: true,
		Horizon:          c.Hours,
		Trials:           c.Trials,
		Seed:             c.Seed,
	}, nil
}

// scenario wraps the word-level simulator scenario under a
// memory-level name, so checkpoints record the capacity being lifted.
type scenario struct {
	inner campaign.Scenario
	words int64
}

// Scenario adapts the configuration to the campaign engine.
func (c SimConfig) Scenario() (campaign.Scenario, error) {
	mcfg, err := c.MemsimConfig()
	if err != nil {
		return nil, err
	}
	inner, err := mcfg.Scenario()
	if err != nil {
		return nil, err
	}
	words, err := c.Memory.Words()
	if err != nil {
		return nil, err
	}
	return &scenario{inner: inner, words: words}, nil
}

// Name implements campaign.Scenario.
func (s *scenario) Name() string { return fmt.Sprintf("array:W=%d:%s", s.words, s.inner.Name()) }

// Trials implements campaign.Scenario.
func (s *scenario) Trials() int { return s.inner.Trials() }

// NewWorker implements campaign.Scenario.
func (s *scenario) NewWorker() (campaign.Worker, error) { return s.inner.NewWorker() }

// CrossValidation reports the Monte Carlo vs. analytic comparison at
// both levels: the per-word Fail probability and its memory-level
// lift, each with the Wilson interval transported through the
// (monotone) lift.
type CrossValidation struct {
	Words  int64
	Hours  float64
	Trials int

	// Word level: observed capability-exceeded fraction vs. the
	// chain's Fail probability.
	WordFails        int64
	WordFailMC       float64
	WordFailLo       float64
	WordFailHi       float64
	WordFailAnalytic float64

	// Memory level: 1-(1-p)^W of each of the above.
	AnyWordFailMC       float64
	AnyWordFailLo       float64
	AnyWordFailHi       float64
	AnyWordFailAnalytic float64

	// Agrees is true when the analytic value lies inside the Wilson
	// band (equivalently at either level; the lift is monotone).
	Agrees bool
}

// CrossValidate compares a campaign result against the analytic
// evaluation at z (0 means 1.96, the 95% interval).
func (c SimConfig) CrossValidate(cres *campaign.Result, z float64) (*CrossValidation, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if z == 0 {
		z = 1.96
	}
	words, err := c.Memory.Words()
	if err != nil {
		return nil, err
	}
	curve, err := c.Memory.Evaluate([]float64{c.Hours})
	if err != nil {
		return nil, err
	}
	if cres.Trials == 0 {
		return nil, fmt.Errorf("array: campaign has no trials")
	}
	fails := cres.Counter(memsim.CounterCapabilityExceeded)
	lo, hi := campaign.Wilson(fails, int64(cres.Trials), z)
	w := float64(words)
	lift := func(p float64) float64 { return -math.Expm1(w * math.Log1p(-p)) }
	v := &CrossValidation{
		Words:  words,
		Hours:  c.Hours,
		Trials: cres.Trials,

		WordFails:        fails,
		WordFailMC:       float64(fails) / float64(cres.Trials),
		WordFailLo:       lo,
		WordFailHi:       hi,
		WordFailAnalytic: curve.WordFail[0],

		AnyWordFailLo:       lift(lo),
		AnyWordFailHi:       lift(hi),
		AnyWordFailAnalytic: curve.AnyWordFail[0],
	}
	v.AnyWordFailMC = lift(v.WordFailMC)
	v.Agrees = v.WordFailAnalytic >= lo && v.WordFailAnalytic <= hi
	return v, nil
}

// Check returns a descriptive error when the analytic evaluation
// falls outside the Monte Carlo band — the pass/fail form used by
// spec expectation checking.
func (v *CrossValidation) Check() error {
	if v.Agrees {
		return nil
	}
	return fmt.Errorf("array: analytic word-fail %.6e outside Wilson band [%.6e, %.6e] (%d/%d trials; memory-level analytic %.6e vs MC band [%.6e, %.6e] over %d words)",
		v.WordFailAnalytic, v.WordFailLo, v.WordFailHi, v.WordFails, v.Trials,
		v.AnyWordFailAnalytic, v.AnyWordFailLo, v.AnyWordFailHi, v.Words)
}

// RunSim executes the Monte Carlo on the shared engine and
// cross-validates it against the analytic curve at 95%.
func (c SimConfig) RunSim(ecfg campaign.Config) (*CrossValidation, *campaign.Result, error) {
	scn, err := c.Scenario()
	if err != nil {
		return nil, nil, err
	}
	cres, err := campaign.Run(scn, ecfg)
	if err != nil {
		return nil, nil, err
	}
	v, err := c.CrossValidate(cres, 0)
	if err != nil {
		return nil, nil, err
	}
	return v, cres, nil
}
