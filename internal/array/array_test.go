package array

import (
	"math"
	"testing"

	"repro/internal/core"
)

func relClose(a, b, rel float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= rel*scale
}

func baseMemory() Memory {
	return Memory{
		DataBytes: 1 << 20, // 1 MiB
		Word: core.Config{
			Arrangement:  core.Simplex,
			Code:         core.RS1816,
			SEUPerBitDay: 1.7e-5,
		},
	}
}

func TestValidate(t *testing.T) {
	if err := baseMemory().Validate(); err != nil {
		t.Fatalf("valid memory rejected: %v", err)
	}
	bad := baseMemory()
	bad.DataBytes = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero capacity accepted")
	}
	odd := baseMemory()
	odd.Word.Code = core.CodeSpec{N: 7, K: 3, M: 3} // 9-bit datawords
	if err := odd.Validate(); err == nil {
		t.Error("non-byte-aligned dataword accepted")
	}
	invalid := baseMemory()
	invalid.Word.Code.K = invalid.Word.Code.N
	if err := invalid.Validate(); err == nil {
		t.Error("invalid code accepted")
	}
}

func TestGeometry(t *testing.T) {
	m := baseMemory()
	if m.WordBytes() != 16 {
		t.Errorf("WordBytes = %d, want 16", m.WordBytes())
	}
	words, err := m.Words()
	if err != nil {
		t.Fatal(err)
	}
	if words != (1<<20)/16 {
		t.Errorf("Words = %d, want %d", words, (1<<20)/16)
	}
	stored, err := m.StoredBits()
	if err != nil {
		t.Fatal(err)
	}
	if stored != words*18*8 {
		t.Errorf("StoredBits = %d, want %d", stored, words*18*8)
	}
	oh, err := m.Overhead()
	if err != nil {
		t.Fatal(err)
	}
	if !relClose(oh, 18.0/16, 1e-12) {
		t.Errorf("Overhead = %v, want 1.125", oh)
	}
}

func TestGeometryDuplexDoubles(t *testing.T) {
	m := baseMemory()
	m.Word.Arrangement = core.Duplex
	oh, err := m.Overhead()
	if err != nil {
		t.Fatal(err)
	}
	if !relClose(oh, 2*18.0/16, 1e-12) {
		t.Errorf("duplex Overhead = %v, want 2.25", oh)
	}
}

func TestWordsRoundsUp(t *testing.T) {
	m := baseMemory()
	m.DataBytes = 17 // more than one 16-byte word
	words, err := m.Words()
	if err != nil {
		t.Fatal(err)
	}
	if words != 2 {
		t.Errorf("Words = %d, want 2", words)
	}
}

func TestEvaluateConsistency(t *testing.T) {
	m := baseMemory()
	hours := []float64{0, 24, 48}
	c, err := m.Evaluate(hours)
	if err != nil {
		t.Fatal(err)
	}
	words, _ := m.Words()
	w := float64(words)
	for i := range hours {
		p := c.WordFail[i]
		if !relClose(c.Reliability[i], math.Pow(1-p, w), 1e-9) && p > 1e-12 {
			t.Errorf("t=%v: reliability %v vs (1-p)^W %v", hours[i], c.Reliability[i], math.Pow(1-p, w))
		}
		if !relClose(c.AnyWordFail[i]+c.Reliability[i], 1, 1e-12) {
			t.Errorf("t=%v: P_any + R != 1", hours[i])
		}
		if !relClose(c.ExpectedWordsLost[i], w*p, 1e-12) {
			t.Errorf("t=%v: E[lost] inconsistent", hours[i])
		}
	}
	if c.AnyWordFail[0] != 0 || c.Reliability[0] != 1 {
		t.Error("t=0 should be pristine")
	}
	if c.AnyWordFail[2] <= c.AnyWordFail[1] {
		t.Error("loss probability should grow")
	}
}

func TestEvaluatePreservesTinyWordProbabilities(t *testing.T) {
	// Duplex under light permanent faults: word fail ~ 1e-41. With
	// 2^16 words the memory-level P_any ~ 6.5e-37 must survive.
	m := Memory{
		DataBytes: 1 << 20,
		Word: core.Config{
			Arrangement:         core.Duplex,
			Code:                core.RS1816,
			ErasurePerSymbolDay: 1e-10,
		},
	}
	c, err := m.Evaluate([]float64{17280}) // 24 months
	if err != nil {
		t.Fatal(err)
	}
	if c.WordFail[0] <= 0 {
		t.Fatal("word probability underflowed")
	}
	words, _ := m.Words()
	want := float64(words) * c.WordFail[0]
	if c.AnyWordFail[0] == 0 {
		t.Fatal("memory-level probability truncated to zero")
	}
	if !relClose(c.AnyWordFail[0], want, 1e-6) {
		t.Errorf("P_any = %g, want ~W*p = %g", c.AnyWordFail[0], want)
	}
}

func TestBiggerMemoryLessReliable(t *testing.T) {
	small := baseMemory()
	small.DataBytes = 1 << 16
	big := baseMemory()
	big.DataBytes = 1 << 24
	cs, err := small.Evaluate([]float64{48})
	if err != nil {
		t.Fatal(err)
	}
	cb, err := big.Evaluate([]float64{48})
	if err != nil {
		t.Fatal(err)
	}
	if cb.AnyWordFail[0] <= cs.AnyWordFail[0] {
		t.Errorf("256x capacity should lose more: %g vs %g", cb.AnyWordFail[0], cs.AnyWordFail[0])
	}
	if cb.WordFail[0] != cs.WordFail[0] {
		t.Error("per-word probability must not depend on capacity")
	}
}

func TestMTTDL(t *testing.T) {
	// High rates so the survival curve dies within the horizon.
	m := Memory{
		DataBytes: 1 << 10,
		Word: core.Config{
			Arrangement:  core.Simplex,
			Code:         core.RS1816,
			SEUPerBitDay: 1e-2,
		},
	}
	mttdl, residual, err := m.MTTDL(2000, 400)
	if err != nil {
		t.Fatal(err)
	}
	if residual > 1e-3 {
		t.Fatalf("horizon too short: residual %v", residual)
	}
	if mttdl <= 0 || mttdl > 2000 {
		t.Fatalf("MTTDL = %v out of range", mttdl)
	}
	// Sanity: doubling capacity must shorten MTTDL.
	m2 := m
	m2.DataBytes = 2 << 10
	mttdl2, _, err := m2.MTTDL(2000, 400)
	if err != nil {
		t.Fatal(err)
	}
	if mttdl2 >= mttdl {
		t.Errorf("doubling words should shorten MTTDL: %v vs %v", mttdl2, mttdl)
	}
}

func TestMTTDLValidation(t *testing.T) {
	m := baseMemory()
	if _, _, err := m.MTTDL(0, 100); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, _, err := m.MTTDL(100, 1); err == nil {
		t.Error("single step accepted")
	}
}

func BenchmarkEvaluateMemory(b *testing.B) {
	m := baseMemory()
	hours := []float64{12, 24, 48}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Evaluate(hours); err != nil {
			b.Fatal(err)
		}
	}
}
