package array

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/core"
)

func simBase() SimConfig {
	// Accelerated rates (the xval regime: per-hour 6e-4/bit and
	// 2e-4/symbol) so 48 simulated hours resolve the Fail probability
	// with a few thousand trials.
	m := Memory{
		DataBytes: 1 << 20,
		Word: core.Config{
			Arrangement:         core.Simplex,
			Code:                core.RS1816,
			SEUPerBitDay:        6e-4 * 24,
			ErasurePerSymbolDay: 2e-4 * 24,
		},
	}
	return SimConfig{Memory: m, Hours: 48, Trials: 4000, Seed: 11}
}

func TestSimConfigValidation(t *testing.T) {
	good := simBase()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := simBase()
	bad.Hours = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero observation time accepted")
	}
	bad = simBase()
	bad.Trials = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero trials accepted")
	}
	bad = simBase()
	bad.Memory.DataBytes = 0
	if err := bad.Validate(); err == nil {
		t.Error("invalid memory accepted")
	}
}

func TestMemsimConfigMatchesRates(t *testing.T) {
	c := simBase()
	c.Memory.Word.ScrubPeriodSeconds = 7200
	mcfg, err := c.MemsimConfig()
	if err != nil {
		t.Fatal(err)
	}
	if got := mcfg.LambdaBit; math.Abs(got-6e-4) > 1e-12 {
		t.Errorf("LambdaBit = %v, want 6e-4 per hour", got)
	}
	if got := mcfg.LambdaSymbol; math.Abs(got-2e-4) > 1e-12 {
		t.Errorf("LambdaSymbol = %v, want 2e-4 per hour", got)
	}
	if got := mcfg.ScrubPeriod; math.Abs(got-2) > 1e-12 {
		t.Errorf("ScrubPeriod = %v h, want 2", got)
	}
	if !mcfg.ExponentialScrub {
		t.Error("CTMC-matched scrub must be exponential")
	}
	if mcfg.Duplex {
		t.Error("simplex word simulated as duplex")
	}
}

// TestMonteCarloAgreesWithAnalytic is the cross-validation the
// scenario exists for: on a fixed-seed campaign the analytic
// word-fail probability (and hence its memory-level lift) must lie
// inside the Monte Carlo's 95% Wilson band.
func TestMonteCarloAgreesWithAnalytic(t *testing.T) {
	for _, tc := range []struct {
		name string
		edit func(*SimConfig)
	}{
		{"simplex", func(*SimConfig) {}},
		{"simplex-scrubbed", func(c *SimConfig) { c.Memory.Word.ScrubPeriodSeconds = 4 * 3600 }},
		// Scrubbed duplex is deliberately absent: the simulator scrubs
		// both modules at the same instants while the chain treats
		// scrubbing as independent exponential transitions, a ~1%
		// model gap the cross-validation correctly flags (see the
		// SimConfig doc).
		{"duplex", func(c *SimConfig) { c.Memory.Word.Arrangement = core.Duplex }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := simBase()
			tc.edit(&c)
			v, cres, err := c.RunSim(campaign.Config{})
			if err != nil {
				t.Fatal(err)
			}
			if cres.Trials != c.Trials {
				t.Fatalf("ran %d trials, want %d", cres.Trials, c.Trials)
			}
			if err := v.Check(); err != nil {
				t.Errorf("cross-validation failed: %v", err)
			}
			// The lift must be consistent at both levels.
			if v.AnyWordFailLo > v.AnyWordFailMC || v.AnyWordFailMC > v.AnyWordFailHi {
				t.Errorf("memory-level point %v outside its own band [%v, %v]",
					v.AnyWordFailMC, v.AnyWordFailLo, v.AnyWordFailHi)
			}
			if v.Words != 65536 {
				t.Errorf("W = %d, want 65536", v.Words)
			}
			if v.WordFailMC > 0 && v.AnyWordFailMC <= v.WordFailMC {
				t.Errorf("lift did not amplify: word %v vs memory %v", v.WordFailMC, v.AnyWordFailMC)
			}
		})
	}
}

// TestScenarioDeterministicAcrossWorkerCounts: the array scenario
// inherits memsim's per-trial reseeding, so the merged result is
// bit-identical for any worker count.
func TestScenarioDeterministicAcrossWorkerCounts(t *testing.T) {
	c := simBase()
	c.Trials = 800
	scn, err := c.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(scn.Name(), "array:W=65536:") {
		t.Errorf("scenario name %q does not encode the capacity", scn.Name())
	}
	var results []*campaign.Result
	for _, workers := range []int{1, 8} {
		cres, err := campaign.Run(scn, campaign.Config{Workers: workers, ShardSize: 64})
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, cres)
	}
	if !reflect.DeepEqual(results[0], results[1]) {
		t.Errorf("worker count changed results:\n%+v\nvs\n%+v", results[0], results[1])
	}
}

// TestCrossValidateDisagreement: a deliberately mismatched analytic
// model (10x the simulated rate) must be flagged.
func TestCrossValidateDisagreement(t *testing.T) {
	c := simBase()
	scn, err := c.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	cres, err := campaign.Run(scn, campaign.Config{})
	if err != nil {
		t.Fatal(err)
	}
	skewed := c
	skewed.Memory.Word.SEUPerBitDay *= 10
	v, err := skewed.CrossValidate(cres, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v.Agrees || v.Check() == nil {
		t.Error("10x-skewed analytic model inside the Monte Carlo band")
	}
}
