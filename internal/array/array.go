// Package array scales the paper's word-level analysis to a whole
// memory — the extension Section 4 calls "straightforward": a memory
// of W independently coded words fails its mission when any word
// becomes unrecoverable, so the word chain's Fail probability p(t)
// lifts to
//
//	R_memory(t)      = (1 - p(t))^W        (mission reliability)
//	P_any(t)         = 1 - R_memory(t)     (probability of data loss)
//	E[words lost](t) = W * p(t)
//
// all computed in log space so the astronomically small word
// probabilities of the paper's Figures 9-10 survive the
// exponentiation. The package also estimates the memory's mean time
// to data loss (MTTDL) by integrating the survival curve.
package array

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/reliability"
)

// Memory describes a protected memory array: total data capacity and
// the per-word protection configuration.
type Memory struct {
	// DataBytes is the usable (pre-coding) capacity.
	DataBytes int64
	// Word is the per-word protection system; Word.Code fixes the
	// dataword size (k symbols of m bits).
	Word core.Config
}

// Validate checks the description.
func (m Memory) Validate() error {
	if err := m.Word.Validate(); err != nil {
		return err
	}
	if m.DataBytes <= 0 {
		return fmt.Errorf("array: nonpositive capacity %d", m.DataBytes)
	}
	if m.Word.Code.K*m.Word.Code.M%8 != 0 {
		return fmt.Errorf("array: dataword of %d bits is not byte-aligned", m.Word.Code.K*m.Word.Code.M)
	}
	return nil
}

// WordBytes returns the data bytes carried per coded word.
func (m Memory) WordBytes() int64 {
	return int64(m.Word.Code.K*m.Word.Code.M) / 8
}

// Words returns the number of protected words (capacity rounded up).
func (m Memory) Words() (int64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	wb := m.WordBytes()
	return (m.DataBytes + wb - 1) / wb, nil
}

// StoredBits returns the physical bits occupied, including check
// symbols and (for duplex) full duplication.
func (m Memory) StoredBits() (int64, error) {
	words, err := m.Words()
	if err != nil {
		return 0, err
	}
	perWord := int64(m.Word.Code.N * m.Word.Code.M)
	if m.Word.Arrangement == core.Duplex {
		perWord *= 2
	}
	return words * perWord, nil
}

// Overhead returns stored bits per data bit.
func (m Memory) Overhead() (float64, error) {
	stored, err := m.StoredBits()
	if err != nil {
		return 0, err
	}
	return float64(stored) / float64(m.DataBytes*8), nil
}

// Curve is the memory-level evaluation at a time grid.
type Curve struct {
	Hours             []float64
	WordFail          []float64 // per-word chain Fail probability
	AnyWordFail       []float64 // 1 - (1-p)^W
	Reliability       []float64 // (1-p)^W
	ExpectedWordsLost []float64 // W * p
}

// Evaluate lifts the word-level chain solution to the memory.
func (m Memory) Evaluate(hours []float64) (*Curve, error) {
	words, err := m.Words()
	if err != nil {
		return nil, err
	}
	wordCurve, err := core.Evaluate(m.Word, hours)
	if err != nil {
		return nil, err
	}
	w := float64(words)
	c := &Curve{
		Hours:             append([]float64(nil), hours...),
		WordFail:          wordCurve.PFail,
		AnyWordFail:       make([]float64, len(hours)),
		Reliability:       make([]float64, len(hours)),
		ExpectedWordsLost: make([]float64, len(hours)),
	}
	for i, p := range wordCurve.PFail {
		logSurvive := w * math.Log1p(-p)
		c.Reliability[i] = math.Exp(logSurvive)
		c.AnyWordFail[i] = -math.Expm1(logSurvive)
		c.ExpectedWordsLost[i] = w * p
	}
	return c, nil
}

// MTTDL estimates the memory's mean time to data loss in hours by
// integrating the survival curve R_memory(t) with the trapezoid rule
// over [0, horizon] in the given number of steps. The estimate is a
// lower bound whose truncation error is bounded by
// horizon-tail * R(horizon); the returned residual reports
// R_memory(horizon) so callers can check the horizon was long enough
// (residual << 1).
func (m Memory) MTTDL(horizon float64, steps int) (mttdl, residual float64, err error) {
	if horizon <= 0 || steps < 2 {
		return 0, 0, fmt.Errorf("array: invalid MTTDL grid (horizon %v, steps %d)", horizon, steps)
	}
	grid, err := reliability.HoursRange(0, horizon, steps)
	if err != nil {
		return 0, 0, err
	}
	curve, err := m.Evaluate(grid)
	if err != nil {
		return 0, 0, err
	}
	var integral float64
	for i := 1; i < len(grid); i++ {
		dt := grid[i] - grid[i-1]
		integral += dt * (curve.Reliability[i] + curve.Reliability[i-1]) / 2
	}
	return integral, curve.Reliability[len(grid)-1], nil
}
