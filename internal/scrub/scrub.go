// Package scrub provides scrubbing schedules for the memory
// simulator. Scrubbing — periodically reading a codeword, correcting
// it and rewriting it — is the paper's mechanism against accumulation
// of transient errors (Section 2, ref [2]).
//
// Two schedules are provided: the deterministic periodic schedule real
// memory controllers implement, and the exponential schedule that
// matches the Markov models' rate-1/Tsc treatment exactly. Comparing
// the two quantifies the modeling error of the exponential
// approximation (an ablation bench in the repository root).
package scrub

import (
	"fmt"
	"math"
	"math/rand"
)

// Scheduler yields successive scrub instants. Implementations are
// stateless with respect to Next: the next scrub time is derived from
// the query time, so callers may skip forward freely.
type Scheduler interface {
	// Next returns the first scrub instant strictly after t, or
	// +Inf when no scrub will ever happen.
	Next(t float64) float64
}

// Never is the no-scrubbing schedule.
type Never struct{}

// Next always returns +Inf.
func (Never) Next(float64) float64 { return math.Inf(1) }

// Periodic scrubs at the boundaries Offset + i*Period (all integers
// i), the deterministic schedule of a real memory controller; Next
// returns the first boundary strictly after the query time.
type Periodic struct {
	Period float64 // hours between scrubs, > 0
	Offset float64 // phase of the first scrub boundary
}

// NewPeriodic validates and builds a periodic schedule.
func NewPeriodic(period float64) (Periodic, error) {
	if period <= 0 || math.IsNaN(period) || math.IsInf(period, 0) {
		return Periodic{}, fmt.Errorf("scrub: invalid period %v", period)
	}
	return Periodic{Period: period}, nil
}

// Next returns the first multiple of Period (shifted by Offset)
// strictly after t. A non-finite query time (a simulator that ran off
// the end of its horizon, or a NaN from an upstream computation) has
// no boundary strictly after it, so Next returns +Inf instead of
// looping on Inf <= Inf forever.
func (p Periodic) Next(t float64) float64 {
	if p.Period <= 0 {
		return math.Inf(1)
	}
	if math.IsInf(t, 0) || math.IsNaN(t) {
		return math.Inf(1)
	}
	k := math.Floor((t - p.Offset) / p.Period)
	next := p.Offset + (k+1)*p.Period
	for next <= t { // guard against floating-point landing at or before t
		stepped := next + p.Period
		if stepped == next {
			// Period is below the float spacing at |t|'s magnitude, so
			// stepping cannot reach past t and the pre-fix code would
			// loop forever. Give up with +Inf: for the simulators'
			// forward-running clocks (t >= 0) this regime means the
			// schedule has out-lived float resolution and scrubbing is
			// over; a large-magnitude *negative* t also lands here
			// even though later boundaries exist, an accepted
			// imprecision for a query no in-repo caller can make.
			return math.Inf(1)
		}
		next = stepped
	}
	return next
}

// Exponential scrubs after exponentially distributed intervals with
// mean Period — the memoryless schedule assumed by the CTMC models.
type Exponential struct {
	Period float64 // mean hours between scrubs, > 0
	Rng    *rand.Rand
}

// NewExponential validates and builds an exponential schedule.
func NewExponential(period float64, rng *rand.Rand) (*Exponential, error) {
	if period <= 0 || math.IsNaN(period) || math.IsInf(period, 0) {
		return nil, fmt.Errorf("scrub: invalid mean period %v", period)
	}
	if rng == nil {
		return nil, fmt.Errorf("scrub: nil rng")
	}
	return &Exponential{Period: period, Rng: rng}, nil
}

// Next samples the next scrub instant after t. Memorylessness makes
// sampling from the query time exact regardless of history. As with
// Periodic, a non-finite query time has no instant strictly after it,
// so Next returns +Inf (rather than -Inf/NaN arithmetic that would
// hang or silently disable a caller's scheduling loop).
func (e *Exponential) Next(t float64) float64 {
	if math.IsInf(t, 0) || math.IsNaN(t) {
		return math.Inf(1)
	}
	next := t + e.Rng.ExpFloat64()*e.Period
	if next == t {
		// The sampled interval is below the float spacing at this
		// magnitude; there is no representable instant strictly after
		// t to return, and handing t back would wedge the caller's
		// event loop at one instant.
		return math.Inf(1)
	}
	return next
}
