package scrub

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestNeverNext(t *testing.T) {
	var n Never
	if !math.IsInf(n.Next(0), 1) || !math.IsInf(n.Next(1e9), 1) {
		t.Error("Never must return +Inf")
	}
}

func TestNewPeriodicValidation(t *testing.T) {
	if _, err := NewPeriodic(0); err == nil {
		t.Error("zero period accepted")
	}
	if _, err := NewPeriodic(-1); err == nil {
		t.Error("negative period accepted")
	}
	if _, err := NewPeriodic(math.NaN()); err == nil {
		t.Error("NaN period accepted")
	}
	if _, err := NewPeriodic(math.Inf(1)); err == nil {
		t.Error("infinite period accepted")
	}
	p, err := NewPeriodic(0.25)
	if err != nil || p.Period != 0.25 {
		t.Fatalf("NewPeriodic: %v %v", p, err)
	}
}

func TestPeriodicSequence(t *testing.T) {
	p, _ := NewPeriodic(0.25)
	want := []float64{0.25, 0.5, 0.75, 1.0}
	t0 := 0.0
	for _, w := range want {
		next := p.Next(t0)
		if math.Abs(next-w) > 1e-12 {
			t.Fatalf("Next(%v) = %v, want %v", t0, next, w)
		}
		t0 = next
	}
}

func TestPeriodicStrictlyAfter(t *testing.T) {
	p, _ := NewPeriodic(1)
	if got := p.Next(3); got <= 3 {
		t.Errorf("Next(3) = %v, want > 3", got)
	}
	if got := p.Next(3); math.Abs(got-4) > 1e-12 {
		t.Errorf("Next(3) = %v, want 4 (3 is a boundary, next is strictly after)", got)
	}
	if got := p.Next(2.5); math.Abs(got-3) > 1e-12 {
		t.Errorf("Next(2.5) = %v, want 3", got)
	}
}

func TestPeriodicOffset(t *testing.T) {
	p := Periodic{Period: 2, Offset: 0.5}
	if got := p.Next(0); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Next(0) = %v, want 0.5", got)
	}
	if got := p.Next(0.5); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("Next(0.5) = %v, want 2.5", got)
	}
	if got := p.Next(2.5); math.Abs(got-4.5) > 1e-12 {
		t.Errorf("Next(2.5) = %v, want 4.5", got)
	}
}

// TestNonFiniteQueryTerminates is the regression test for the
// scheduler hang: Periodic.Next(+Inf) used to spin forever in the
// guard loop (next += Period never escapes Inf <= Inf), and
// Exponential.Next propagated -Inf/NaN into its caller's scheduling
// loop. Every scheduler must return +Inf for a non-finite query. The
// calls run in a goroutine under a deadline so a reintroduced hang
// fails the test instead of wedging the suite.
func TestNonFiniteQueryTerminates(t *testing.T) {
	p, _ := NewPeriodic(4)
	e, _ := NewExponential(4, rand.New(rand.NewSource(1)))
	scheds := map[string]Scheduler{"periodic": p, "exponential": e, "never": Never{}}
	for name, s := range scheds {
		// 1e16 exercises the finite variant of the hang: the period is
		// below the float spacing there, so a scheduler that cannot
		// land strictly after t must give up with +Inf rather than
		// spin or return t itself.
		for _, q := range []float64{math.Inf(1), math.Inf(-1), math.NaN(), 1e16} {
			done := make(chan float64, 1)
			go func() { done <- s.Next(q) }()
			select {
			case got := <-done:
				if math.IsInf(q, 0) || math.IsNaN(q) {
					if !math.IsInf(got, 1) {
						t.Errorf("%s: Next(%v) = %v, want +Inf", name, q, got)
					}
				} else if !(got > q) {
					t.Errorf("%s: Next(%v) = %v, want strictly after", name, q, got)
				}
			case <-time.After(5 * time.Second):
				t.Fatalf("%s: Next(%v) did not return within deadline", name, q)
			}
		}
	}
}

func TestPeriodicZeroValueSafe(t *testing.T) {
	var p Periodic
	if !math.IsInf(p.Next(0), 1) {
		t.Error("zero-value Periodic should never scrub")
	}
}

func TestNewExponentialValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewExponential(0, rng); err == nil {
		t.Error("zero period accepted")
	}
	if _, err := NewExponential(1, nil); err == nil {
		t.Error("nil rng accepted")
	}
	if _, err := NewExponential(math.NaN(), rng); err == nil {
		t.Error("NaN period accepted")
	}
}

func TestExponentialStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	e, err := NewExponential(0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	const samples = 200000
	var sum, sumSq float64
	t0 := 0.0
	for i := 0; i < samples; i++ {
		next := e.Next(t0)
		d := next - t0
		if d <= 0 {
			t.Fatal("nonpositive interval")
		}
		sum += d
		sumSq += d * d
		t0 = next
	}
	mean := sum / samples
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean interval %v, want 0.5", mean)
	}
	// Exponential: variance = mean^2.
	variance := sumSq/samples - mean*mean
	if math.Abs(variance-0.25) > 0.02 {
		t.Errorf("variance %v, want 0.25", variance)
	}
}

func TestSchedulerInterfaceCompliance(t *testing.T) {
	var _ Scheduler = Never{}
	var _ Scheduler = Periodic{}
	var _ Scheduler = (*Exponential)(nil)
}
