package pagesim

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"math"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/campaign"
)

func TestValidation(t *testing.T) {
	bad := []Config{
		{Depth: 0, Horizon: 1, Trials: 1},
		{Depth: 2, LambdaBit: -1, Horizon: 1, Trials: 1},
		{Depth: 2, BurstPerKilobit: 1, BurstBits: 0, Horizon: 1, Trials: 1},
		{Depth: 2, LambdaColumn: -1, Horizon: 1, Trials: 1},
		{Depth: 2, ScrubPeriod: -1, Horizon: 1, Trials: 1},
		{Depth: 2, Horizon: 0, Trials: 1},
		{Depth: 2, Horizon: math.Inf(1), Trials: 1},
		{Depth: 2, Horizon: 1, Trials: 0},
		// Non-finite rates would spin the event loop forever (tEvent
		// stalls on an Inf rate; NaN falsifies every comparison).
		{Depth: 2, LambdaBit: math.Inf(1), Horizon: 1, Trials: 1},
		{Depth: 2, LambdaBit: math.NaN(), Horizon: 1, Trials: 1},
		{Depth: 2, BurstPerKilobit: math.Inf(1), BurstBits: 4, Horizon: 1, Trials: 1},
		{Depth: 2, LambdaColumn: math.NaN(), Horizon: 1, Trials: 1},
		{Depth: 2, ScrubPeriod: math.Inf(1), Horizon: 1, Trials: 1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, cfg)
		}
	}
	// Structural rejections surface at Scenario build time.
	if _, err := Scenario(Config{Depth: 2, N: 3, K: 5, Horizon: 1, Trials: 1}); err == nil {
		t.Error("invalid code accepted")
	}
	if _, err := Scenario(Config{Depth: 2, BurstPerKilobit: 1, BurstBits: 10000, Horizon: 1, Trials: 1}); err == nil {
		t.Error("burst longer than the stored page accepted")
	}
}

func TestNoFaultsNoLoss(t *testing.T) {
	res, err := Run(Config{Depth: 2, Horizon: 48, Trials: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.PageLoss != 0 || res.PageCorrect != 50 {
		t.Errorf("fault-free campaign lost pages: %+v", res)
	}
	if res.SEUs != 0 || res.Bursts != 0 || res.StuckColumns != 0 {
		t.Errorf("fault-free campaign injected faults: %+v", res)
	}
}

// TestCorrectableBurstEmpirical validates interleave.CorrectableBurst
// through the Monte Carlo: with depth 2 and RS(18,16) (t=1) the
// guarantee is 2 stored symbols, i.e. any bit burst of at most
// (2-1)*8+1 = 9 bits touches at most 2 symbols and always corrects —
// so trials whose entire fault history is one such burst must never
// lose the page. A 17-bit burst always spans at least 3 symbols,
// overloading one stripe, so every single-burst trial must lose.
func TestCorrectableBurstEmpirical(t *testing.T) {
	base := Config{
		Depth:           2,
		BurstPerKilobit: 3, // mean ~0.86 events over the horizon
		Horizon:         1,
		Trials:          2000,
		Seed:            3,
	}

	within := base
	within.BurstBits = 9
	res, err := Run(within)
	if err != nil {
		t.Fatal(err)
	}
	if res.SingleBurstTrials < 200 {
		t.Fatalf("only %d single-burst trials; statistics too weak", res.SingleBurstTrials)
	}
	if res.SingleBurstLosses != 0 {
		t.Errorf("%d of %d single bursts within the guarantee lost the page",
			res.SingleBurstLosses, res.SingleBurstTrials)
	}

	beyond := base
	beyond.BurstBits = 17
	res, err = Run(beyond)
	if err != nil {
		t.Fatal(err)
	}
	if res.SingleBurstTrials < 200 {
		t.Fatalf("only %d single-burst trials; statistics too weak", res.SingleBurstTrials)
	}
	if res.SingleBurstLosses != res.SingleBurstTrials {
		t.Errorf("a 17-bit burst must overload a depth-2 t=1 page: %d losses of %d single bursts",
			res.SingleBurstLosses, res.SingleBurstTrials)
	}
}

// TestGeometricBurstLengths: the geometric length distribution must
// validate, run deterministically, and keep the guarantee invariant —
// single bursts within CorrectableBurst never lose the page — even
// though the tail of the distribution produces bursts far beyond the
// guarantee (which are excluded from the single-burst counters and
// free to lose pages).
func TestGeometricBurstLengths(t *testing.T) {
	cfg := Config{
		Depth:           2,
		BurstPerKilobit: 3,
		BurstDist:       "geometric",
		BurstMeanBits:   8, // guarantee for depth 2, t=1 is 9 bits; the tail goes far beyond
		Horizon:         1,
		Trials:          3000,
		Seed:            9,
	}
	scn, err := Scenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var results []*campaign.Result
	for _, workers := range []int{1, 4} {
		cres, err := campaign.Run(scn, campaign.Config{Workers: workers, ShardSize: 64})
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, cres)
	}
	if !reflect.DeepEqual(results[0], results[1]) {
		t.Error("geometric burst campaign not worker-count deterministic")
	}
	res := ResultFromCampaign(cfg, results[0])
	if res.Bursts == 0 {
		t.Fatal("no bursts injected")
	}
	if res.SingleBurstTrials < 200 {
		t.Fatalf("only %d within-guarantee single-burst trials; statistics too weak", res.SingleBurstTrials)
	}
	if res.SingleBurstLosses != 0 {
		t.Errorf("%d of %d within-guarantee single bursts lost the page",
			res.SingleBurstLosses, res.SingleBurstTrials)
	}
	if res.PageLoss == 0 {
		t.Error("the geometric tail (bursts beyond the guarantee) should lose some pages")
	}

	// The scenario name must distinguish the distribution so
	// checkpoints cannot cross modes.
	if fixedName := mustScenario(t, Config{Depth: 2, BurstPerKilobit: 3, BurstBits: 8,
		Horizon: 1, Trials: 10, Seed: 9}).Name(); fixedName == scn.Name() {
		t.Error("geometric and fixed campaigns share a scenario name")
	}

	bad := cfg
	bad.BurstMeanBits = 0.5
	if err := bad.Validate(); err == nil {
		t.Error("sub-1 geometric mean accepted")
	}
	bad = cfg
	bad.BurstDist = "uniform"
	if err := bad.Validate(); err == nil {
		t.Error("unknown burst distribution accepted")
	}
}

func mustScenario(t *testing.T, cfg Config) campaign.Scenario {
	t.Helper()
	scn, err := Scenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return scn
}

// TestDeeperInterleavingAbsorbsBursts: under a burst environment rare
// enough that single events dominate, deepening the interleave at the
// same code must cut the page-loss fraction — the trade-off the
// matrix sweeps measure. A 24-bit burst spans 3-4 stored symbols:
// beyond t=2 for a depth-1 RS(20,16) page (every burst kills it), but
// at most one symbol per stripe at depth 4 (only >= 3 coinciding
// bursts can overload a stripe), even though the deeper page honestly
// pays ~4x the event exposure for its footprint.
func TestDeeperInterleavingAbsorbsBursts(t *testing.T) {
	loss := func(depth int) float64 {
		res, err := Run(Config{
			N: 20, K: 16,
			Depth:           depth,
			BurstPerKilobit: 0.25,
			BurstBits:       24,
			Horizon:         4,
			Trials:          3000,
			Seed:            5,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Bursts == 0 {
			t.Fatal("no bursts injected")
		}
		return res.LossFraction()
	}
	shallow, deep := loss(1), loss(4)
	if shallow == 0 {
		t.Fatal("depth-1 page never lost; burst environment too mild")
	}
	if !(deep < shallow/2) {
		t.Errorf("depth 4 loss %v not well below depth 1 loss %v", deep, shallow)
	}
}

// TestScrubbingHelps: periodic scrubbing must cut the loss fraction
// under an SEU-accumulation environment (the paper's Section 2
// mechanism at page level).
func TestScrubbingHelps(t *testing.T) {
	run := func(scrub float64) *Result {
		res, err := Run(Config{
			Depth:       2,
			LambdaBit:   2e-4,
			ScrubPeriod: scrub,
			Horizon:     48,
			Trials:      1500,
			Seed:        6,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	unscrubbed, scrubbed := run(0), run(4)
	if scrubbed.ScrubOps == 0 {
		t.Fatal("no scrubs performed")
	}
	if unscrubbed.ScrubOps != 0 {
		t.Fatal("scrub-free campaign scrubbed")
	}
	if !(scrubbed.LossFraction() < unscrubbed.LossFraction()/2) {
		t.Errorf("scrubbing did not help: %v vs %v", scrubbed.LossFraction(), unscrubbed.LossFraction())
	}
}

// TestStuckColumnsAreErasures: located stuck columns consume erasure
// capability; enough of them must eventually produce losses, and the
// counters must see the faults.
func TestStuckColumnsAreErasures(t *testing.T) {
	res, err := Run(Config{
		Depth:        2,
		LambdaColumn: 5e-3,
		Horizon:      48,
		Trials:       1000,
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.StuckColumns == 0 {
		t.Fatal("no stuck columns injected")
	}
	if res.PageLoss == 0 {
		t.Error("stuck-column saturation never lost a page")
	}
	// Detected losses only: a stuck column is an erasure, and erasure
	// overflow is a detected failure, so silent losses require random
	// errors to conspire — none are injected here.
	if res.SilentLoss != 0 {
		t.Errorf("%d silent losses under erasure-only faults", res.SilentLoss)
	}
}

// mixedConfig is the determinism/resume workhorse: all three fault
// classes plus periodic scrubbing.
func mixedConfig() Config {
	return Config{
		Depth:           4,
		LambdaBit:       1e-4,
		BurstPerKilobit: 0.05,
		BurstBits:       12,
		LambdaColumn:    2e-4,
		ScrubPeriod:     8,
		Horizon:         48,
		Trials:          800,
		Seed:            42,
	}
}

// TestDeterminismAcrossWorkerCounts: per-trial reseeding makes the
// merged campaign result bit-identical for any worker count.
func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	scn, err := Scenario(mixedConfig())
	if err != nil {
		t.Fatal(err)
	}
	var results []*campaign.Result
	for _, workers := range []int{1, 4, 8} {
		cres, err := campaign.Run(scn, campaign.Config{Workers: workers, ShardSize: 64})
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, cres)
	}
	for i := 1; i < len(results); i++ {
		if !reflect.DeepEqual(results[0], results[i]) {
			t.Errorf("worker count changed results:\n%+v\nvs\n%+v", results[0], results[i])
		}
	}
}

// TestResumedCampaignMatchesUninterrupted interrupts a checkpointed
// page campaign partway and verifies the resumed run is bit-identical
// to an uninterrupted one.
func TestResumedCampaignMatchesUninterrupted(t *testing.T) {
	cfg := mixedConfig()
	scn, err := Scenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := campaign.Run(scn, campaign.Config{Workers: 4, ShardSize: 64})
	if err != nil {
		t.Fatal(err)
	}

	cp := filepath.Join(t.TempDir(), "pagesim.ckpt.json")
	budget := &budgetScenario{Scenario: scn, remaining: 400}
	if _, err := campaign.Run(budget, campaign.Config{Workers: 4, ShardSize: 64, Checkpoint: cp}); err == nil {
		t.Fatal("interrupted campaign reported success")
	}

	cres, err := campaign.Run(scn, campaign.Config{Workers: 4, ShardSize: 64, Checkpoint: cp})
	if err != nil {
		t.Fatal(err)
	}
	if cres.ResumedTrials == 0 {
		t.Fatal("resume recomputed every trial")
	}
	got := *cres
	got.ResumedTrials = 0 // the only field allowed to differ
	if !reflect.DeepEqual(want, &got) {
		t.Errorf("resumed campaign diverged:\nwant %+v\ngot  %+v", want, &got)
	}
}

// budgetScenario wraps a scenario so its workers fail after a shared
// number of trials, simulating an interruption mid-campaign.
type budgetScenario struct {
	campaign.Scenario
	remaining int64
}

func (b *budgetScenario) NewWorker() (campaign.Worker, error) {
	w, err := b.Scenario.NewWorker()
	if err != nil {
		return nil, err
	}
	return &budgetWorker{inner: w, budget: &b.remaining}, nil
}

type budgetWorker struct {
	inner  campaign.Worker
	budget *int64
}

func (w *budgetWorker) Trial(trial int, acc *campaign.Acc) error {
	if atomic.AddInt64(w.budget, -1) < 0 {
		return errInterrupted
	}
	return w.inner.Trial(trial, acc)
}

var errInterrupted = errors.New("simulated interruption")

// TestResultRoundTrip: ResultFromCampaign must surface every counter.
func TestResultRoundTrip(t *testing.T) {
	cfg := mixedConfig()
	scn, err := Scenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cres, err := campaign.Run(scn, campaign.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res := ResultFromCampaign(cfg, cres)
	if res.Trials != cfg.Trials {
		t.Errorf("trials %d, want %d", res.Trials, cfg.Trials)
	}
	if res.PageCorrect+res.PageLoss != res.Trials {
		t.Errorf("outcomes %d+%d do not partition %d trials", res.PageCorrect, res.PageLoss, res.Trials)
	}
	if res.PageCorrect == 0 || res.PageLoss == 0 {
		t.Errorf("mixed environment should produce both outcomes: %d correct, %d lost", res.PageCorrect, res.PageLoss)
	}
	if res.SEUs == 0 || res.Bursts == 0 || res.StuckColumns == 0 || res.ScrubOps == 0 {
		t.Errorf("missing fault/op counters: %+v", res)
	}
	if res.SilentLoss > res.PageLoss {
		t.Errorf("silent losses %d exceed losses %d", res.SilentLoss, res.PageLoss)
	}
}

func BenchmarkPageCampaign(b *testing.B) {
	cfg := mixedConfig()
	cfg.Trials = 200
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// goldenCounters pins the exact campaign counters of the pre-detection
// simulator (captured at the commit introducing detection policies)
// for two fixed-seed configurations. The immediate policy — spelled
// "" or "immediate" — must reproduce them bit for bit: same RNG
// stream, same counter set (no location keys), same scenario name.
func goldenCounters(t *testing.T, cfg Config, wantName string, want map[string]int64) {
	t.Helper()
	for _, detection := range []string{"", DetectImmediate} {
		c := cfg
		c.Detection = detection
		scn := mustScenario(t, c)
		if scn.Name() != wantName {
			t.Fatalf("detection %q renamed the scenario:\ngot  %s\nwant %s", detection, scn.Name(), wantName)
		}
		cres, err := campaign.Run(scn, campaign.Config{Workers: 4, ShardSize: 64})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(cres.Counters, want) {
			t.Errorf("detection %q diverged from the historical outputs:\ngot  %v\nwant %v",
				detection, cres.Counters, want)
		}
		if len(cres.Samples) != 0 {
			t.Errorf("detection %q emitted %d samples; the immediate policy must not", detection, len(cres.Samples))
		}
	}
}

func TestImmediatePolicyMatchesHistoricalOutputs(t *testing.T) {
	goldenCounters(t, mixedConfig(),
		"pagesim:RS(18,16)/m=8:depth=4:lb=0.0001:bpk=0.05:bb=12:lc=0.0002:scrub=8:exp=false:h=48:seed=42",
		map[string]int64{
			"bursts":              1204,
			"corrected_symbols":   736,
			"failed_stripes":      623,
			"page_correct":        347,
			"page_loss":           453,
			"page_silent_loss":    25,
			"scrub_ops":           4000,
			"seus":                2077,
			"single_burst_trials": 14,
			"stuck_columns":       486,
		})
	goldenCounters(t,
		Config{Depth: 2, LambdaColumn: 4e-3, ScrubPeriod: 6, Horizon: 48, Trials: 500, Seed: 7},
		"pagesim:RS(18,16)/m=8:depth=2:lb=0:bpk=0:bb=0:lc=0.004:scrub=6:exp=false:h=48:seed=7",
		map[string]int64{
			"bursts":            0,
			"corrected_symbols": 522,
			"failed_stripes":    649,
			"page_correct":      57,
			"page_loss":         443,
			"scrub_ops":         3500,
			"seus":              0,
			"stuck_columns":     3484,
		})
}

// detectionConfig is the location-model workhorse: a stuck-column
// dominated environment with background SEUs and periodic scrubbing.
func detectionConfig(detection string) Config {
	return Config{
		Depth:            2,
		LambdaBit:        1e-5,
		LambdaColumn:     1.5e-3,
		ScrubPeriod:      6,
		Detection:        detection,
		DetectionLatency: 8,
		Horizon:          48,
		Trials:           1500,
		Seed:             11,
	}
}

// TestDetectionPolicyDeterminism: every policy's merged campaign is
// bit-identical for any worker count.
func TestDetectionPolicyDeterminism(t *testing.T) {
	for _, detection := range []string{DetectImmediate, DetectScrub, DetectLatency} {
		scn := mustScenario(t, detectionConfig(detection))
		var results []*campaign.Result
		for _, workers := range []int{1, 4, 8} {
			cres, err := campaign.Run(scn, campaign.Config{Workers: workers, ShardSize: 64})
			if err != nil {
				t.Fatal(err)
			}
			results = append(results, cres)
		}
		for i := 1; i < len(results); i++ {
			if !reflect.DeepEqual(results[0], results[i]) {
				t.Errorf("detection %q: worker count changed results", detection)
			}
		}
	}
}

// TestDetectionMonotonicity: on a shared seed set, locating stuck
// columns earlier can only help — page loss under immediate location
// must stay below fixed-latency location, which must stay below a
// latency that never elapses (never located). The fault histories are
// identical across policies (location consumes no randomness), so the
// ordering isolates exactly what the free-erasures assumption bought.
func TestDetectionMonotonicity(t *testing.T) {
	loss := func(detection string, latency float64) float64 {
		cfg := detectionConfig(detection)
		cfg.DetectionLatency = latency
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.StuckColumns == 0 {
			t.Fatal("no stuck columns injected")
		}
		return res.LossFraction()
	}
	immediate := loss(DetectImmediate, 0)
	latency := loss(DetectLatency, 8)
	never := loss(DetectLatency, 1e8)
	if !(immediate < latency && latency < never) {
		t.Errorf("page loss not monotone in detection delay: immediate %v, latency %v, never %v",
			immediate, latency, never)
	}
	// A zero latency locates every column before any decode sees it,
	// reproducing the immediate outcomes on the same seeds.
	if zero := loss(DetectLatency, 0); zero != immediate {
		t.Errorf("zero-latency loss %v differs from immediate %v", zero, immediate)
	}
}

// TestScrubDetectionLocates: under the scrub policy, columns become
// located only through scrub observations — never without scrubbing —
// and unlocated columns cost real reliability versus immediate
// location on the same seeds.
func TestScrubDetectionLocates(t *testing.T) {
	cfg := detectionConfig(DetectScrub)
	scn := mustScenario(t, cfg)
	cres, err := campaign.Run(scn, campaign.Config{Workers: 4, ShardSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	res := ResultFromCampaign(cfg, cres)
	if res.LocatedColumns == 0 {
		t.Fatal("scrub observation never located a column")
	}
	if res.LocatedColumns > res.StuckColumns {
		t.Errorf("located %d of %d stuck columns", res.LocatedColumns, res.StuckColumns)
	}
	if res.StuckUnlocatedReads == 0 {
		t.Error("no decode ever saw an unlocated stuck column")
	}
	immediate, err := Run(detectionConfig(DetectImmediate))
	if err != nil {
		t.Fatal(err)
	}
	if !(res.LossFraction() > immediate.LossFraction()) {
		t.Errorf("scrub-located loss %v not above immediate %v: free erasures cost nothing?",
			res.LossFraction(), immediate.LossFraction())
	}

	// Every location observation is a valid (strike, delay) pair.
	xs, ys := cres.SeriesPoints(SeriesTimeToLocation)
	if int64(len(xs)) != res.LocatedColumns {
		t.Fatalf("%d time_to_location samples for %d located columns", len(xs), res.LocatedColumns)
	}
	for i := range xs {
		if xs[i] < 0 || xs[i] > cfg.Horizon || ys[i] < 0 || xs[i]+ys[i] > cfg.Horizon {
			t.Fatalf("sample %d: strike %v + delay %v outside the mission", i, xs[i], ys[i])
		}
	}

	// Without scrubbing there is no observation channel at all.
	unscrubbed := cfg
	unscrubbed.ScrubPeriod = 0
	noScrub, err := Run(unscrubbed)
	if err != nil {
		t.Fatal(err)
	}
	if noScrub.LocatedColumns != 0 {
		t.Errorf("%d columns located without any scrub pass", noScrub.LocatedColumns)
	}
}

// TestLatencyDetectionSamples: under the latency policy every located
// column reports exactly the configured strike-to-location delay.
func TestLatencyDetectionSamples(t *testing.T) {
	cfg := detectionConfig(DetectLatency)
	scn := mustScenario(t, cfg)
	cres, err := campaign.Run(scn, campaign.Config{Workers: 4, ShardSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	res := ResultFromCampaign(cfg, cres)
	if res.LocatedColumns == 0 {
		t.Fatal("latency policy never located a column")
	}
	xs, ys := cres.SeriesPoints(SeriesTimeToLocation)
	if int64(len(xs)) != res.LocatedColumns {
		t.Fatalf("%d time_to_location samples for %d located columns", len(xs), res.LocatedColumns)
	}
	for i := range ys {
		if ys[i] != cfg.DetectionLatency {
			t.Fatalf("sample %d: delay %v, want the fixed latency %v", i, ys[i], cfg.DetectionLatency)
		}
		if xs[i]+cfg.DetectionLatency > cfg.Horizon {
			t.Fatalf("sample %d: column located at %v, after the horizon", i, xs[i]+cfg.DetectionLatency)
		}
	}
}

// TestDetectionValidation: unknown policies and bad latencies are
// rejected up front.
func TestDetectionValidation(t *testing.T) {
	base := Config{Depth: 2, Horizon: 1, Trials: 1}
	bad := base
	bad.Detection = "eventually"
	if err := bad.Validate(); err == nil {
		t.Error("unknown detection policy accepted")
	}
	bad = base
	bad.DetectionLatency = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative detection latency accepted")
	}
	bad = base
	bad.Detection = DetectLatency
	bad.DetectionLatency = math.Inf(1)
	if err := bad.Validate(); err == nil {
		t.Error("infinite detection latency accepted")
	}
	ok := base
	ok.Detection = DetectScrub
	if err := ok.Validate(); err != nil {
		t.Errorf("scrub policy rejected: %v", err)
	}
}

// TestScrubDecodeErrorCounted: a scrub pass whose decode fails
// structurally must count scrub_decode_errors and must not count as a
// completed scrub_op (the historical code swallowed the error after
// counting the op).
func TestScrubDecodeErrorCounted(t *testing.T) {
	scn := mustScenario(t, Config{Depth: 2, ScrubPeriod: 1, Horizon: 2, Trials: 1, Seed: 1})
	cw, err := scn.NewWorker()
	if err != nil {
		t.Fatal(err)
	}
	w := cw.(*worker)
	acc := campaign.NewAcc()
	// Truncating the stored page makes the decode fail structurally —
	// the only failure class DecodeTo reports as an error (capability
	// overflow lands in FailedStripes instead).
	w.stored = w.stored[:len(w.stored)-1]
	w.doScrub(1, 0, acc)
	if got := acc.Counter(CounterScrubDecodeErrors); got != 1 {
		t.Errorf("scrub_decode_errors = %d, want 1", got)
	}
	if got := acc.Counter(CounterScrubOps); got != 0 {
		t.Errorf("abandoned scrub pass counted as %d completed scrub_ops", got)
	}
}

// batchGoldenCases are the fixed-seed configurations whose complete
// campaign output — counters and serialized result, including the
// time_to_location sample series — is pinned across the batch-decode
// switch: the batch page path must reproduce the per-word decode
// stream byte for byte (decoding consumes no randomness, so any
// divergence is a decode-semantics change, not noise).
func batchGoldenCases() []struct {
	name     string
	cfg      Config
	counters map[string]int64
	digest   string
} {
	return []struct {
		name     string
		cfg      Config
		counters map[string]int64
		digest   string
	}{
		{
			name: "mixed/immediate", cfg: mixedConfig(),
			counters: map[string]int64{
				"bursts": 1204, "corrected_symbols": 736, "failed_stripes": 623,
				"page_correct": 347, "page_loss": 453, "page_silent_loss": 25,
				"scrub_ops": 4000, "seus": 2077, "single_burst_trials": 14,
				"stuck_columns": 486,
			},
			digest: "47d948cdf780dedc2e86d4fe8398a28652842bbdfafc39e718b27b6d0b67c6d5",
		},
		{
			name: "detect/scrub", cfg: detectionConfig(DetectScrub),
			counters: map[string]int64{
				"bursts": 0, "corrected_symbols": 1083, "failed_stripes": 1099,
				"located_columns": 1847, "page_correct": 601, "page_loss": 899,
				"page_silent_loss": 11, "scrub_ops": 10500, "seus": 188,
				"stuck_columns": 3905, "stuck_unlocated_reads": 5297,
			},
			digest: "c32c974a8fb8b1ff772829c5f0d85a8c9dc6e0540084ee9b60aff22a083e7300",
		},
		{
			name: "detect/latency", cfg: detectionConfig(DetectLatency),
			counters: map[string]int64{
				"bursts": 0, "corrected_symbols": 2282, "failed_stripes": 506,
				"located_columns": 3147, "page_correct": 928, "page_loss": 572,
				"page_silent_loss": 111, "scrub_ops": 10500, "seus": 188,
				"stuck_columns": 3905, "stuck_unlocated_reads": 3982,
			},
			digest: "3363ef0208864a56d6c3206535570d09b19afdc690b11f956e9b130b6c320ba3",
		},
	}
}

func TestBatchGoldenOutputs(t *testing.T) {
	for _, tc := range batchGoldenCases() {
		scn := mustScenario(t, tc.cfg)
		cres, err := campaign.Run(scn, campaign.Config{Workers: 4, ShardSize: 64})
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(cres)
		if err != nil {
			t.Fatal(err)
		}
		sum := sha256.Sum256(data)
		got := hex.EncodeToString(sum[:])
		if got != tc.digest || !reflect.DeepEqual(cres.Counters, tc.counters) {
			t.Errorf("%s: golden mismatch\ndigest   %q\ncounters %#v", tc.name, got, cres.Counters)
		}
	}
}
