// Package pagesim is a page-level Monte Carlo fault-injection
// simulator for the interleaved memory organization of paper ref [6]
// (internal/interleave): a stored page of depth*n symbols striped
// across depth independent RS codewords, exposed to the mixed fault
// environment of a solid-state mass memory —
//
//   - transient SEUs: Poisson single-bit flips across the stored page;
//   - multi-bit upsets: Poisson burst events flipping a run of
//     adjacent stored bits whose length comes from a configurable
//     distribution (internal/burstlen): fixed at BurstBits, or
//     geometric with mean BurstMeanBits capped at the page size
//     (placement is clamped so every event applies its full sampled
//     length, matching internal/mbusim);
//   - stuck-at columns: permanent whole-symbol failures (a dead
//     physical column), immediately located by the self-checking
//     hardware and handed to the decoder as erasures;
//
// with an optional scrub discipline (periodic or exponential, via
// internal/scrub) that decodes, corrects and rewrites the page
// between events. The page is read once at the mission horizon and
// the outcome classified per stripe and per page.
//
// The simulator empirically validates interleave.Page.CorrectableBurst:
// a trial whose only fault is one MBU burst within the guarantee
// (length <= (depth*t-1)*m+1 stored bits, which can touch at most
// depth*t symbols) must never lose the page, so campaigns report
// single-burst trials and losses as separate counters that tests and
// spec tolerance bands pin to zero. Under the fixed distribution the
// counters keep their historical meaning (every single-burst trial,
// whatever BurstBits is); under a variable-length distribution only
// within-guarantee bursts are counted, since they are the subset the
// invariant speaks about.
//
// Campaigns run on the internal/campaign engine with per-trial
// reseeding, so the aggregate statistics are bit-identical for any
// worker count and inherit checkpointing and early stopping. All
// rates are per hour, matching internal/memsim. As with mbusim, the
// fixed distribution samples its length without consuming randomness,
// so fixed-burst campaigns reproduce the exact pre-distribution RNG
// stream and none of the committed tolerance bands move; geometric
// campaigns draw one extra uniform per event (a new stream by
// construction).
package pagesim

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/burstlen"
	"repro/internal/campaign"
	"repro/internal/gf"
	"repro/internal/interleave"
	"repro/internal/rs"
	"repro/internal/scrub"
)

// Config parameterizes a page campaign.
type Config struct {
	// N, K, M describe the per-stripe RS(n,k) code over GF(2^m).
	N, K, M int
	// Depth is the interleaving depth (codewords per page), >= 1.
	Depth int

	// LambdaBit is the SEU rate per stored bit per hour.
	LambdaBit float64
	// BurstPerKilobit is the MBU burst event rate per 1000 stored bits
	// per hour; each event flips a run of adjacent stored bits whose
	// length the burst distribution draws.
	BurstPerKilobit float64
	// BurstBits is the length of each MBU burst in stored bits under
	// the default fixed distribution; required when BurstPerKilobit >
	// 0 and BurstDist is "" or "fixed".
	BurstBits int
	// BurstDist selects the burst-length distribution: "" or "fixed"
	// (every burst is BurstBits long) or "geometric" (lengths drawn
	// with mean BurstMeanBits, capped at the stored page size).
	BurstDist string
	// BurstMeanBits is the geometric mean burst length (>= 1).
	BurstMeanBits float64
	// LambdaColumn is the stuck-at column rate per stored symbol per
	// hour: a struck symbol is permanently forced to a random value
	// and immediately located (an erasure from then on).
	LambdaColumn float64

	// ScrubPeriod is the hours between scrub passes (0 disables);
	// ExponentialScrub draws exponential intervals with that mean
	// instead of the deterministic controller schedule.
	ScrubPeriod      float64
	ExponentialScrub bool

	Horizon float64 // storage time in hours; the page is read once at the end
	Trials  int
	Seed    int64
	Workers int // 0 = GOMAXPROCS
}

// Validate checks the configuration (code shape is validated when the
// page is built).
func (c Config) Validate() error {
	finite := func(v float64) bool { return v >= 0 && !math.IsInf(v, 0) && !math.IsNaN(v) }
	switch {
	case c.Depth <= 0:
		return fmt.Errorf("pagesim: nonpositive interleaving depth %d", c.Depth)
	case !finite(c.LambdaBit) || !finite(c.BurstPerKilobit) || !finite(c.LambdaColumn):
		// A non-finite rate would make the event loop's tEvent stall at
		// t (Inf rate) or every comparison false (NaN), spinning the
		// trial forever — the same hang class as Periodic.Next(+Inf).
		return fmt.Errorf("pagesim: fault rates must be finite and nonnegative")
	case !finite(c.ScrubPeriod):
		return fmt.Errorf("pagesim: invalid scrub period %v", c.ScrubPeriod)
	case c.Horizon <= 0 || math.IsNaN(c.Horizon) || math.IsInf(c.Horizon, 0):
		return fmt.Errorf("pagesim: invalid horizon %v", c.Horizon)
	case c.Trials <= 0:
		return fmt.Errorf("pagesim: need at least one trial")
	}
	if c.BurstPerKilobit > 0 {
		if err := c.dist().Validate(); err != nil {
			return fmt.Errorf("pagesim: burst rate %g: %w", c.BurstPerKilobit, err)
		}
	}
	return nil
}

// dist assembles the burst-length distribution the config selects.
func (c Config) dist() burstlen.Dist {
	return burstlen.Dist{Kind: c.BurstDist, Bits: c.BurstBits, MeanBits: c.BurstMeanBits}
}

// Counter keys reported into the campaign engine. PageLoss and
// PageCorrect are per-trial (binomial); the rest are totals.
const (
	// CounterPageCorrect / CounterPageLoss classify each trial's final
	// read: the page is lost when any stripe fails to decode or the
	// returned data differs from the stored truth.
	CounterPageCorrect = "page_correct"
	CounterPageLoss    = "page_loss"
	// CounterSilentLoss is the subset of page_loss in which every
	// stripe decoded but the data was wrong (mis-correction).
	CounterSilentLoss = "page_silent_loss"

	// CounterCorrectedSymbols / CounterFailedStripes total the final
	// read's symbol corrections and failed stripes across trials.
	CounterCorrectedSymbols = "corrected_symbols"
	CounterFailedStripes    = "failed_stripes"

	// Fault and operation totals.
	CounterSEUs         = "seus"
	CounterBursts       = "bursts"
	CounterStuckColumns = "stuck_columns"
	CounterScrubOps     = "scrub_ops"

	// CounterSingleBurstTrials / CounterSingleBurstLosses isolate the
	// trials whose entire fault history is exactly one MBU burst; with
	// the burst within the CorrectableBurst guarantee the loss counter
	// must stay zero, which is the empirical validation campaigns and
	// tolerance bands pin. Under the fixed distribution every
	// single-burst trial counts (the historical meaning, including
	// deliberately out-of-guarantee BurstBits); under a variable
	// distribution only within-guarantee bursts count, since they are
	// the subset the guarantee speaks about.
	CounterSingleBurstTrials = "single_burst_trials"
	CounterSingleBurstLosses = "single_burst_losses"
)

// Result aggregates a campaign.
type Result struct {
	Config Config
	Trials int

	PageCorrect int
	PageLoss    int
	SilentLoss  int

	CorrectedSymbols int64
	FailedStripes    int64

	SEUs         int64
	Bursts       int64
	StuckColumns int64
	ScrubOps     int64

	SingleBurstTrials int64
	SingleBurstLosses int64
}

// LossFraction is the observed page-loss probability.
func (r *Result) LossFraction() float64 {
	return float64(r.PageLoss) / float64(r.Trials)
}

// scenario adapts a validated Config to the campaign engine.
type scenario struct {
	cfg  Config
	dist burstlen.Dist
	page *interleave.Page
}

// NewPage builds the interleaved page layout the configuration
// describes (defaults: the paper's RS(18,16) over GF(2^8)).
func (c Config) NewPage() (*interleave.Page, error) {
	n, k, m := c.N, c.K, c.M
	if n == 0 {
		n = 18
	}
	if k == 0 {
		k = 16
	}
	if m == 0 {
		m = 8
	}
	field, err := gf.NewField(m)
	if err != nil {
		return nil, err
	}
	code, err := rs.New(field, n, k)
	if err != nil {
		return nil, err
	}
	return interleave.New(code, c.Depth)
}

// Scenario adapts the configuration to the campaign engine's
// Scenario interface (validating it first).
func Scenario(cfg Config) (campaign.Scenario, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	page, err := cfg.NewPage()
	if err != nil {
		return nil, fmt.Errorf("pagesim: %w", err)
	}
	dist := cfg.dist()
	storedBits := page.StoredSymbols() * page.Code().Field().M()
	if cfg.BurstPerKilobit > 0 && dist.IsFixed() && cfg.BurstBits > storedBits {
		// A fixed burst longer than the page has no untruncated
		// placement; geometric lengths are capped at the page by
		// construction.
		return nil, fmt.Errorf("pagesim: burst of %d bits exceeds the %d-bit stored page", cfg.BurstBits, storedBits)
	}
	return &scenario{cfg: cfg, dist: dist, page: page}, nil
}

// Name encodes the full configuration so checkpoints from a different
// campaign are rejected rather than silently merged. Fixed-length
// bursts keep the historical "bb=<bits>" form so their checkpoints
// stay resumable.
func (s *scenario) Name() string {
	c := s.cfg
	code := s.page.Code()
	return fmt.Sprintf("pagesim:RS(%d,%d)/m=%d:depth=%d:lb=%g:bpk=%g:bb=%s:lc=%g:scrub=%g:exp=%t:h=%g:seed=%d",
		code.N(), code.K(), code.Field().M(), s.page.Depth(),
		c.LambdaBit, c.BurstPerKilobit, s.dist, c.LambdaColumn,
		c.ScrubPeriod, c.ExponentialScrub, c.Horizon, c.Seed)
}

// Trials implements campaign.Scenario.
func (s *scenario) Trials() int { return s.cfg.Trials }

// NewWorker implements campaign.Scenario.
func (s *scenario) NewWorker() (campaign.Worker, error) { return newWorker(s.cfg, s.dist, s.page), nil }

// worker owns the per-goroutine scratch of a page campaign: the
// reusable page codec, the RNG (reseeded per trial), the stored-page
// state and every erasure/reencode buffer, so the steady state
// performs no per-trial heap allocation.
type worker struct {
	cfg  Config
	dist burstlen.Dist
	// guaranteeBits is the longest bit burst CorrectableBurst
	// guarantees against: (depth*t-1)*m+1 stored bits touch at most
	// depth*t symbols.
	guaranteeBits int
	page          *interleave.Page
	codec         *interleave.Codec
	rng           *rand.Rand
	sched         scrub.Scheduler

	data   []gf.Elem // page payload scratch
	truth  []gf.Elem // ground-truth stored page
	stored []gf.Elem // current stored page
	reenc  []gf.Elem // re-encoded page for scrub rewrites

	stuck    []bool // whole-symbol stuck-at flags
	erasures []int  // located stuck columns for the decoder
	failed   []bool // per-stripe failed-decode scratch for scrub rewrites
	res      interleave.DecodeResult
}

func newWorker(cfg Config, dist burstlen.Dist, page *interleave.Page) *worker {
	m := page.Code().Field().M()
	w := &worker{
		cfg:           cfg,
		dist:          dist,
		guaranteeBits: (page.CorrectableBurst()-1)*m + 1,
		page:          page,
		codec:         page.NewCodec(),
		rng:           rand.New(rand.NewSource(cfg.Seed)),
		data:          make([]gf.Elem, page.DataSymbols()),
		truth:         make([]gf.Elem, page.StoredSymbols()),
		stored:        make([]gf.Elem, page.StoredSymbols()),
		reenc:         make([]gf.Elem, page.StoredSymbols()),
		stuck:         make([]bool, page.StoredSymbols()),
		erasures:      make([]int, 0, page.StoredSymbols()),
		failed:        make([]bool, page.Depth()),
	}
	w.sched = scrub.Never{}
	if cfg.ScrubPeriod > 0 {
		if cfg.ExponentialScrub {
			w.sched = &scrub.Exponential{Period: cfg.ScrubPeriod, Rng: w.rng}
		} else {
			w.sched = scrub.Periodic{Period: cfg.ScrubPeriod}
		}
	}
	return w
}

// Trial implements campaign.Worker: one stored page from write to
// final read, reproducible from the trial index alone.
func (w *worker) Trial(trial int, acc *campaign.Acc) error {
	cfg := w.cfg
	w.rng.Seed(campaign.TrialSeed(cfg.Seed, trial))
	rng := w.rng
	page := w.page
	m := page.Code().Field().M()
	storedSymbols := page.StoredSymbols()
	storedBits := storedSymbols * m

	for i := range w.data {
		w.data[i] = gf.Elem(rng.Intn(page.Code().Field().Size()))
	}
	if err := w.codec.EncodeTo(w.truth, w.data); err != nil {
		return fmt.Errorf("pagesim: encode: %w", err)
	}
	copy(w.stored, w.truth)
	for i := range w.stuck {
		w.stuck[i] = false
	}

	// Per-page event rates (per hour).
	seuRate := cfg.LambdaBit * float64(storedBits)
	burstRate := cfg.BurstPerKilobit * float64(storedBits) / 1000
	colRate := cfg.LambdaColumn * float64(storedSymbols)
	totalRate := seuRate + burstRate + colRate

	seus, bursts, cols := 0, 0, 0
	lastBurstLen := 0
	t := 0.0
	nextScrub := w.sched.Next(0)
	for {
		tEvent := math.Inf(1)
		if totalRate > 0 {
			tEvent = t + rng.ExpFloat64()/totalRate
		}
		if nextScrub < tEvent && nextScrub < cfg.Horizon {
			t = nextScrub
			w.doScrub(acc)
			nextScrub = w.sched.Next(t)
			continue
		}
		if tEvent >= cfg.Horizon {
			break
		}
		t = tEvent
		switch u := rng.Float64() * totalRate; {
		case u < seuRate:
			w.flipBit(rng.Intn(storedBits))
			seus++
		case u < seuRate+burstRate:
			// Each event samples its length from the configured
			// distribution (capped at the page), then a start uniform
			// over the placements at which the full burst fits, so
			// every event flips exactly its sampled length (the mbusim
			// convention; no edge truncation bias).
			length := w.dist.Sample(rng, storedBits)
			start := rng.Intn(storedBits - length + 1)
			for b := 0; b < length; b++ {
				w.flipBit(start + b)
			}
			lastBurstLen = length
			bursts++
		default:
			s := rng.Intn(storedSymbols)
			w.stuck[s] = true
			w.stored[s] = gf.Elem(rng.Intn(page.Code().Field().Size()))
			cols++
		}
	}

	acc.Add(CounterSEUs, int64(seus))
	acc.Add(CounterBursts, int64(bursts))
	acc.Add(CounterStuckColumns, int64(cols))

	// Final read at the horizon.
	if err := w.decode(); err != nil {
		return err
	}
	acc.Add(CounterCorrectedSymbols, int64(w.res.CorrectedSymbols))
	acc.Add(CounterFailedStripes, int64(len(w.res.FailedStripes)))
	lost := len(w.res.FailedStripes) > 0
	silent := false
	if !lost {
		for i := range w.data {
			if w.res.Data[i] != w.data[i] {
				lost, silent = true, true
				break
			}
		}
	}
	// Under a variable-length distribution, only within-guarantee
	// bursts feed the single-burst counters (see the counter docs);
	// the fixed distribution keeps the historical any-length meaning.
	singleBurst := bursts == 1 && seus == 0 && cols == 0 &&
		(w.dist.IsFixed() || lastBurstLen <= w.guaranteeBits)
	if singleBurst {
		acc.Add(CounterSingleBurstTrials, 1)
	}
	switch {
	case lost:
		acc.Add(CounterPageLoss, 1)
		if silent {
			acc.Add(CounterSilentLoss, 1)
		}
		if singleBurst {
			acc.Add(CounterSingleBurstLosses, 1)
		}
	default:
		acc.Add(CounterPageCorrect, 1)
	}
	return nil
}

// flipBit applies an SEU to one stored bit; stuck symbols do not
// respond (the column drives the line).
func (w *worker) flipBit(bit int) {
	m := w.page.Code().Field().M()
	s := bit / m
	if w.stuck[s] {
		return
	}
	w.stored[s] ^= 1 << uint(bit%m)
}

// decode runs the page decoder on the stored page (DecodeTo never
// mutates its input) with the located stuck columns as erasures, into
// w.res.
func (w *worker) decode() error {
	w.erasures = w.erasures[:0]
	for s, st := range w.stuck {
		if st {
			w.erasures = append(w.erasures, s)
		}
	}
	if err := w.codec.DecodeTo(&w.res, w.stored, w.erasures); err != nil {
		return fmt.Errorf("pagesim: decode: %w", err)
	}
	return nil
}

// doScrub decodes, corrects and rewrites the page. Stripes that fail
// to decode are left untouched (the controller has nothing better to
// write back); stuck columns reassert themselves through the rewrite.
func (w *worker) doScrub(acc *campaign.Acc) {
	acc.Add(CounterScrubOps, 1)
	if err := w.decode(); err != nil {
		// Decode errors here are structural (impossible for a validated
		// config); surface them at the final read instead of silently
		// skipping the scrub.
		return
	}
	if err := w.codec.EncodeTo(w.reenc, w.res.Data); err != nil {
		return
	}
	depth := w.page.Depth()
	for s := range w.failed {
		w.failed[s] = false
	}
	for _, s := range w.res.FailedStripes {
		w.failed[s] = true
	}
	for idx := range w.reenc {
		if w.failed[idx%depth] || w.stuck[idx] {
			continue
		}
		w.stored[idx] = w.reenc[idx]
	}
}

// ResultFromCampaign reassembles the simulator's Result from the
// engine's counter set.
func ResultFromCampaign(cfg Config, cres *campaign.Result) *Result {
	return &Result{
		Config:            cfg,
		Trials:            cres.Trials,
		PageCorrect:       int(cres.Counter(CounterPageCorrect)),
		PageLoss:          int(cres.Counter(CounterPageLoss)),
		SilentLoss:        int(cres.Counter(CounterSilentLoss)),
		CorrectedSymbols:  cres.Counter(CounterCorrectedSymbols),
		FailedStripes:     cres.Counter(CounterFailedStripes),
		SEUs:              cres.Counter(CounterSEUs),
		Bursts:            cres.Counter(CounterBursts),
		StuckColumns:      cres.Counter(CounterStuckColumns),
		ScrubOps:          cres.Counter(CounterScrubOps),
		SingleBurstTrials: cres.Counter(CounterSingleBurstTrials),
		SingleBurstLosses: cres.Counter(CounterSingleBurstLosses),
	}
}

// Run executes the campaign on the shared engine. The result is
// deterministic for a fixed Config (including Seed), independent of
// Workers.
func Run(cfg Config) (*Result, error) {
	scn, err := Scenario(cfg)
	if err != nil {
		return nil, err
	}
	cres, err := campaign.Run(scn, campaign.Config{Workers: cfg.Workers})
	if err != nil {
		return nil, err
	}
	return ResultFromCampaign(cfg, cres), nil
}
