// Package pagesim is a page-level Monte Carlo fault-injection
// simulator for the interleaved memory organization of paper ref [6]
// (internal/interleave): a stored page of depth*n symbols striped
// across depth independent RS codewords, exposed to the mixed fault
// environment of a solid-state mass memory —
//
//   - transient SEUs: Poisson single-bit flips across the stored page;
//   - multi-bit upsets: Poisson burst events flipping a run of
//     adjacent stored bits whose length comes from a configurable
//     distribution (internal/burstlen): fixed at BurstBits, or
//     geometric with mean BurstMeanBits capped at the page size
//     (placement is clamped so every event applies its full sampled
//     length, matching internal/mbusim);
//   - stuck-at columns: permanent whole-symbol failures (a dead
//     physical column) that force the stored symbol to a random value;
//
// with an optional scrub discipline (periodic or exponential, via
// internal/scrub) that decodes, corrects and rewrites the page
// between events. The page is read once at the mission horizon and
// the outcome classified per stripe and per page.
//
// # Stuck-column detection and location
//
// The paper's central transient-vs-permanent distinction is that a
// located fault is an erasure (RS corrects up to n-k of them) while an
// unlocated one is a random error (only (n-k)/2): permanent faults
// buy the doubled budget only after the controller has detected and
// located them. The simulator therefore keeps two per-column states —
// stuck (physical: the column drives the line) and located (known to
// the controller: passed to the decoder as an erasure) — bridged by a
// configurable detection policy:
//
//   - "immediate" (the default): a column is located the instant it
//     strikes, the historical free-erasures behavior. This policy is
//     bit-identical to earlier releases — same RNG stream, counters
//     and scenario name — so existing determinism tests, nightly
//     tolerance bands and checkpoints are untouched.
//   - "scrub": a column becomes located when a scrub pass observes its
//     symbol deviate from the corrected codeword (the controller's
//     persistence check, abstracted to one observation). Until then
//     the dead column consumes error capability and can contribute to
//     miscorrections — which the scrub rewrite then entrenches.
//   - "latency": a column becomes located a fixed DetectionLatency
//     hours after striking, mirroring memsim.Config.DetectionLatency
//     (the self-checking-hardware model of paper Section 2).
//
// Non-immediate policies additionally report located_columns,
// stuck_unlocated_reads and a time_to_location sample series; the
// immediate policy reports the historical counter set only, keeping
// its campaign artifacts byte-identical.
//
// The simulator empirically validates interleave.Page.CorrectableBurst:
// a trial whose only fault is one MBU burst within the guarantee
// (length <= (depth*t-1)*m+1 stored bits, which can touch at most
// depth*t symbols) must never lose the page, so campaigns report
// single-burst trials and losses as separate counters that tests and
// spec tolerance bands pin to zero. Under the fixed distribution the
// counters keep their historical meaning (every single-burst trial,
// whatever BurstBits is); under a variable-length distribution only
// within-guarantee bursts are counted, since they are the subset the
// invariant speaks about.
//
// Campaigns run on the internal/campaign engine with per-trial
// reseeding, so the aggregate statistics are bit-identical for any
// worker count and inherit checkpointing and early stopping. All
// rates are per hour, matching internal/memsim. As with mbusim, the
// fixed distribution samples its length without consuming randomness,
// so fixed-burst campaigns reproduce the exact pre-distribution RNG
// stream and none of the committed tolerance bands move; geometric
// campaigns draw one extra uniform per event (a new stream by
// construction).
package pagesim

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/burstlen"
	"repro/internal/campaign"
	"repro/internal/gf"
	"repro/internal/interleave"
	"repro/internal/rs"
	"repro/internal/scrub"
)

// Config parameterizes a page campaign.
type Config struct {
	// N, K, M describe the per-stripe RS(n,k) code over GF(2^m).
	N, K, M int
	// Depth is the interleaving depth (codewords per page), >= 1.
	Depth int

	// LambdaBit is the SEU rate per stored bit per hour.
	LambdaBit float64
	// BurstPerKilobit is the MBU burst event rate per 1000 stored bits
	// per hour; each event flips a run of adjacent stored bits whose
	// length the burst distribution draws.
	BurstPerKilobit float64
	// BurstBits is the length of each MBU burst in stored bits under
	// the default fixed distribution; required when BurstPerKilobit >
	// 0 and BurstDist is "" or "fixed".
	BurstBits int
	// BurstDist selects the burst-length distribution: "" or "fixed"
	// (every burst is BurstBits long) or "geometric" (lengths drawn
	// with mean BurstMeanBits, capped at the stored page size).
	BurstDist string
	// BurstMeanBits is the geometric mean burst length (>= 1).
	BurstMeanBits float64
	// LambdaColumn is the stuck-at column rate per stored symbol per
	// hour: a struck symbol is permanently forced to a random value.
	// When (and whether) the controller locates it — turning the error
	// into an erasure for every later decode — is the Detection
	// policy's decision.
	LambdaColumn float64

	// Detection selects the stuck-column location policy: "" or
	// DetectImmediate (located at the strike instant, the historical
	// behavior), DetectScrub (located when a scrub pass observes the
	// symbol deviate from the corrected codeword; never located
	// without scrubbing), or DetectLatency (located DetectionLatency
	// hours after striking).
	Detection string
	// DetectionLatency is the strike-to-location delay in hours under
	// DetectLatency, mirroring memsim.Config.DetectionLatency. The
	// other policies ignore it (so a matrix sweep can share one value
	// across detection cells); zero under DetectLatency locates at the
	// next decode, reproducing immediate outcomes.
	DetectionLatency float64

	// ScrubPeriod is the hours between scrub passes (0 disables);
	// ExponentialScrub draws exponential intervals with that mean
	// instead of the deterministic controller schedule.
	ScrubPeriod      float64
	ExponentialScrub bool

	// TiltFactor biases the fault arrival process for importance
	// sampling, exactly as memsim.Config.TiltFactor: all fault rates
	// (SEU, burst and stuck-column) are jointly multiplied by the
	// factor — only the arrival clock changes, never the event-type
	// split — and each trial's page classification carries the
	// exponential-tilt likelihood ratio θ^-k·exp((θ-1)·R0·H) into the
	// engine's weighted counters. 0 or 1 disables tilting with a
	// bit-identical trial stream; values > 1 enable it.
	TiltFactor float64

	Horizon float64 // storage time in hours; the page is read once at the end
	Trials  int
	Seed    int64
	Workers int // 0 = GOMAXPROCS
}

// weighted reports whether trials carry importance-sampling weights.
func (c Config) weighted() bool { return c.TiltFactor > 1 }

// Detection policy names accepted by Config.Detection.
const (
	DetectImmediate = "immediate"
	DetectScrub     = "scrub"
	DetectLatency   = "latency"
)

// detectPolicy is the parsed form of Config.Detection.
type detectPolicy int

const (
	detImmediate detectPolicy = iota
	detScrub
	detLatency
)

// policy parses Config.Detection ("" selects immediate, the
// historical behavior).
func (c Config) policy() (detectPolicy, error) {
	switch c.Detection {
	case "", DetectImmediate:
		return detImmediate, nil
	case DetectScrub:
		return detScrub, nil
	case DetectLatency:
		return detLatency, nil
	}
	return 0, fmt.Errorf("pagesim: unknown detection policy %q (want %q, %q or %q)",
		c.Detection, DetectImmediate, DetectScrub, DetectLatency)
}

// Validate checks the configuration (code shape is validated when the
// page is built).
func (c Config) Validate() error {
	finite := func(v float64) bool { return v >= 0 && !math.IsInf(v, 0) && !math.IsNaN(v) }
	switch {
	case c.Depth <= 0:
		return fmt.Errorf("pagesim: nonpositive interleaving depth %d", c.Depth)
	case !finite(c.LambdaBit) || !finite(c.BurstPerKilobit) || !finite(c.LambdaColumn):
		// A non-finite rate would make the event loop's tEvent stall at
		// t (Inf rate) or every comparison false (NaN), spinning the
		// trial forever — the same hang class as Periodic.Next(+Inf).
		return fmt.Errorf("pagesim: fault rates must be finite and nonnegative")
	case !finite(c.ScrubPeriod):
		return fmt.Errorf("pagesim: invalid scrub period %v", c.ScrubPeriod)
	case c.Horizon <= 0 || math.IsNaN(c.Horizon) || math.IsInf(c.Horizon, 0):
		return fmt.Errorf("pagesim: invalid horizon %v", c.Horizon)
	case c.Trials <= 0:
		return fmt.Errorf("pagesim: need at least one trial")
	case c.DetectionLatency < 0 || math.IsNaN(c.DetectionLatency) || math.IsInf(c.DetectionLatency, 1):
		// +Inf would be a legal "never located", but DetectScrub with
		// no scrubbing already expresses that; rejecting non-finite
		// keeps the location instants finite arithmetic.
		return fmt.Errorf("pagesim: invalid detection latency %v", c.DetectionLatency)
	case math.IsNaN(c.TiltFactor) || math.IsInf(c.TiltFactor, 0) || c.TiltFactor < 0:
		return fmt.Errorf("pagesim: invalid tilt factor %v", c.TiltFactor)
	case c.TiltFactor != 0 && c.TiltFactor < 1:
		return fmt.Errorf("pagesim: tilt factor %v must be >= 1 (or 0/1 to disable)", c.TiltFactor)
	}
	if _, err := c.policy(); err != nil {
		return err
	}
	if c.BurstPerKilobit > 0 {
		if err := c.dist().Validate(); err != nil {
			return fmt.Errorf("pagesim: burst rate %g: %w", c.BurstPerKilobit, err)
		}
	}
	return nil
}

// dist assembles the burst-length distribution the config selects.
func (c Config) dist() burstlen.Dist {
	return burstlen.Dist{Kind: c.BurstDist, Bits: c.BurstBits, MeanBits: c.BurstMeanBits}
}

// Counter keys reported into the campaign engine. PageLoss and
// PageCorrect are per-trial (binomial); the rest are totals.
const (
	// CounterPageCorrect / CounterPageLoss classify each trial's final
	// read: the page is lost when any stripe fails to decode or the
	// returned data differs from the stored truth.
	CounterPageCorrect = "page_correct"
	CounterPageLoss    = "page_loss"
	// CounterSilentLoss is the subset of page_loss in which every
	// stripe decoded but the data was wrong (mis-correction).
	CounterSilentLoss = "page_silent_loss"

	// CounterCorrectedSymbols / CounterFailedStripes total the final
	// read's symbol corrections and failed stripes across trials.
	CounterCorrectedSymbols = "corrected_symbols"
	CounterFailedStripes    = "failed_stripes"

	// Fault and operation totals.
	CounterSEUs         = "seus"
	CounterBursts       = "bursts"
	CounterStuckColumns = "stuck_columns"
	CounterScrubOps     = "scrub_ops"

	// CounterSingleBurstTrials / CounterSingleBurstLosses isolate the
	// trials whose entire fault history is exactly one MBU burst; with
	// the burst within the CorrectableBurst guarantee the loss counter
	// must stay zero, which is the empirical validation campaigns and
	// tolerance bands pin. Under the fixed distribution every
	// single-burst trial counts (the historical meaning, including
	// deliberately out-of-guarantee BurstBits); under a variable
	// distribution only within-guarantee bursts count, since they are
	// the subset the guarantee speaks about.
	CounterSingleBurstTrials = "single_burst_trials"
	CounterSingleBurstLosses = "single_burst_losses"

	// Location counters, reported only under a non-immediate detection
	// policy (the immediate policy keeps the historical counter set so
	// its campaign artifacts stay byte-identical).
	// CounterLocatedColumns totals the stuck columns the controller
	// located before the mission ended; CounterStuckUnlocatedReads
	// totals the decodes (scrub passes and final reads) that ran while
	// at least one stuck column was still unlocated — every one of
	// them paid error-decoding rates for a fault erasure decoding
	// would have absorbed.
	CounterLocatedColumns      = "located_columns"
	CounterStuckUnlocatedReads = "stuck_unlocated_reads"

	// CounterScrubDecodeErrors counts scrub passes abandoned because
	// the page decode (or the rewrite re-encode) failed structurally.
	// Such failures are impossible for a validated configuration, so
	// the counter is normally absent; a nonzero value is surfaced by
	// cmd/campaign instead of being silently swallowed (the abandoned
	// pass is excluded from scrub_ops).
	CounterScrubDecodeErrors = "scrub_decode_errors"
)

// SeriesTimeToLocation labels the per-column location samples emitted
// under non-immediate detection policies: x is the strike instant in
// hours, y the hours the column stayed unlocated.
const SeriesTimeToLocation = "time_to_location"

// Result aggregates a campaign.
type Result struct {
	Config Config
	Trials int

	PageCorrect int
	PageLoss    int
	SilentLoss  int

	CorrectedSymbols int64
	FailedStripes    int64

	SEUs         int64
	Bursts       int64
	StuckColumns int64
	ScrubOps     int64

	SingleBurstTrials int64
	SingleBurstLosses int64

	// Location statistics (zero under the immediate policy, where
	// every stuck column is located at its strike instant).
	LocatedColumns      int64
	StuckUnlocatedReads int64
	ScrubDecodeErrors   int64
}

// LossFraction is the observed page-loss probability.
func (r *Result) LossFraction() float64 {
	return float64(r.PageLoss) / float64(r.Trials)
}

// scenario adapts a validated Config to the campaign engine.
type scenario struct {
	cfg    Config
	dist   burstlen.Dist
	policy detectPolicy
	page   *interleave.Page
}

// NewPage builds the interleaved page layout the configuration
// describes (defaults: the paper's RS(18,16) over GF(2^8)).
func (c Config) NewPage() (*interleave.Page, error) {
	n, k, m := c.N, c.K, c.M
	if n == 0 {
		n = 18
	}
	if k == 0 {
		k = 16
	}
	if m == 0 {
		m = 8
	}
	field, err := gf.NewField(m)
	if err != nil {
		return nil, err
	}
	code, err := rs.New(field, n, k)
	if err != nil {
		return nil, err
	}
	return interleave.New(code, c.Depth)
}

// Scenario adapts the configuration to the campaign engine's
// Scenario interface (validating it first).
func Scenario(cfg Config) (campaign.Scenario, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	page, err := cfg.NewPage()
	if err != nil {
		return nil, fmt.Errorf("pagesim: %w", err)
	}
	dist := cfg.dist()
	storedBits := page.StoredSymbols() * page.Code().Field().M()
	if cfg.BurstPerKilobit > 0 && dist.IsFixed() && cfg.BurstBits > storedBits {
		// A fixed burst longer than the page has no untruncated
		// placement; geometric lengths are capped at the page by
		// construction.
		return nil, fmt.Errorf("pagesim: burst of %d bits exceeds the %d-bit stored page", cfg.BurstBits, storedBits)
	}
	policy, err := cfg.policy()
	if err != nil {
		return nil, err
	}
	return &scenario{cfg: cfg, dist: dist, policy: policy, page: page}, nil
}

// Name encodes the full configuration so checkpoints from a different
// campaign are rejected rather than silently merged. Fixed-length
// bursts keep the historical "bb=<bits>" form, and the immediate
// detection policy omits its suffix entirely, so pre-existing
// checkpoints stay resumable.
func (s *scenario) Name() string {
	c := s.cfg
	code := s.page.Code()
	name := fmt.Sprintf("pagesim:RS(%d,%d)/m=%d:depth=%d:lb=%g:bpk=%g:bb=%s:lc=%g:scrub=%g:exp=%t:h=%g:seed=%d",
		code.N(), code.K(), code.Field().M(), s.page.Depth(),
		c.LambdaBit, c.BurstPerKilobit, s.dist, c.LambdaColumn,
		c.ScrubPeriod, c.ExponentialScrub, c.Horizon, c.Seed)
	switch s.policy {
	case detScrub:
		name += ":det=scrub"
	case detLatency:
		name += fmt.Sprintf(":det=latency/%g", c.DetectionLatency)
	}
	if c.weighted() {
		// Tilted and untilted artifacts must never merge: their trial
		// streams sample different measures.
		name += fmt.Sprintf(":tilt=%g", c.TiltFactor)
	}
	return name
}

// Trials implements campaign.Scenario.
func (s *scenario) Trials() int { return s.cfg.Trials }

// Weighted implements campaign.WeightedScenario: a tilted campaign
// records per-trial likelihood ratios and its artifacts carry weight
// moments.
func (s *scenario) Weighted() bool { return s.cfg.weighted() }

// NewWorker implements campaign.Scenario.
func (s *scenario) NewWorker() (campaign.Worker, error) {
	return newWorker(s.cfg, s.dist, s.policy, s.page), nil
}

// worker owns the per-goroutine scratch of a page campaign: the
// reusable page codec (whose DecodeTo runs each page through the rs
// batch arena path, so healthy stripes cost only the syndrome
// screen), the RNG (reseeded per trial), the stored-page state and
// every erasure/reencode buffer, so the steady state performs no
// per-trial heap allocation.
type worker struct {
	cfg    Config
	dist   burstlen.Dist
	policy detectPolicy
	// guaranteeBits is the longest bit burst CorrectableBurst
	// guarantees against: (depth*t-1)*m+1 stored bits touch at most
	// depth*t symbols.
	guaranteeBits int
	page          *interleave.Page
	codec         *interleave.Codec
	rng           *rand.Rand
	sched         scrub.Scheduler

	data   []gf.Elem // page payload scratch
	truth  []gf.Elem // ground-truth stored page
	stored []gf.Elem // current stored page
	reenc  []gf.Elem // re-encoded page for scrub rewrites

	stuck   []bool    // whole-symbol stuck-at flags (physical)
	located []bool    // stuck columns known to the controller
	strikeT []float64 // strike instant per stuck column (hours)
	// erasures is the located-column list handed to every decode of the
	// trial. It is rebuilt (in column order) only when a location event
	// dirties it, so between strikes each scrub pass reuses the same
	// list — contents and backing array — and the codec's erasure-split
	// memo plus the rs erasure-set cache resolve the whole page without
	// rebuilding locator state.
	erasures []int
	ersDirty bool   // erasures no longer reflects located
	failed   []bool // per-stripe failed-decode scratch for scrub rewrites
	res      interleave.DecodeResult

	// Per-trial location bookkeeping (reset by Trial).
	unlocated    int // stuck columns the controller has not located yet
	trialLocated int // columns located during this trial
	unlocReads   int // decodes that saw >= 1 unlocated stuck column
}

func newWorker(cfg Config, dist burstlen.Dist, policy detectPolicy, page *interleave.Page) *worker {
	m := page.Code().Field().M()
	w := &worker{
		cfg:           cfg,
		dist:          dist,
		policy:        policy,
		guaranteeBits: (page.CorrectableBurst()-1)*m + 1,
		page:          page,
		codec:         page.NewCodec(),
		rng:           rand.New(rand.NewSource(cfg.Seed)),
		data:          make([]gf.Elem, page.DataSymbols()),
		truth:         make([]gf.Elem, page.StoredSymbols()),
		stored:        make([]gf.Elem, page.StoredSymbols()),
		reenc:         make([]gf.Elem, page.StoredSymbols()),
		stuck:         make([]bool, page.StoredSymbols()),
		located:       make([]bool, page.StoredSymbols()),
		strikeT:       make([]float64, page.StoredSymbols()),
		erasures:      make([]int, 0, page.StoredSymbols()),
		failed:        make([]bool, page.Depth()),
	}
	w.sched = scrub.Never{}
	if cfg.ScrubPeriod > 0 {
		if cfg.ExponentialScrub {
			w.sched = &scrub.Exponential{Period: cfg.ScrubPeriod, Rng: w.rng}
		} else {
			w.sched = scrub.Periodic{Period: cfg.ScrubPeriod}
		}
	}
	return w
}

// Trial implements campaign.Worker: one stored page from write to
// final read, reproducible from the trial index alone.
func (w *worker) Trial(trial int, acc *campaign.Acc) error {
	cfg := w.cfg
	w.rng.Seed(campaign.TrialSeed(cfg.Seed, trial))
	rng := w.rng
	page := w.page
	m := page.Code().Field().M()
	storedSymbols := page.StoredSymbols()
	storedBits := storedSymbols * m

	for i := range w.data {
		w.data[i] = gf.Elem(rng.Intn(page.Code().Field().Size()))
	}
	if err := w.codec.EncodeTo(w.truth, w.data); err != nil {
		return fmt.Errorf("pagesim: encode: %w", err)
	}
	copy(w.stored, w.truth)
	for i := range w.stuck {
		w.stuck[i] = false
		w.located[i] = false
	}
	w.erasures = w.erasures[:0]
	w.ersDirty = false
	w.unlocated, w.trialLocated, w.unlocReads = 0, 0, 0

	// Per-page event rates (per hour). Importance sampling tilts only
	// the arrival clock — all rates jointly — so the event-type split
	// below keeps its untilted distribution; the likelihood ratio of
	// the realized arrival count corrects the estimator.
	seuRate := cfg.LambdaBit * float64(storedBits)
	burstRate := cfg.BurstPerKilobit * float64(storedBits) / 1000
	colRate := cfg.LambdaColumn * float64(storedSymbols)
	totalRate := seuRate + burstRate + colRate
	tilt := cfg.TiltFactor
	if tilt == 0 {
		tilt = 1
	}

	seus, bursts, cols := 0, 0, 0
	lastBurstLen := 0
	t := 0.0
	nextScrub := w.sched.Next(0)
	for {
		tEvent := math.Inf(1)
		if totalRate > 0 {
			tEvent = t + rng.ExpFloat64()/(totalRate*tilt)
		}
		if nextScrub < tEvent && nextScrub < cfg.Horizon {
			t = nextScrub
			w.doScrub(t, trial, acc)
			nextScrub = w.sched.Next(t)
			continue
		}
		if tEvent >= cfg.Horizon {
			break
		}
		t = tEvent
		switch u := rng.Float64() * totalRate; {
		case u < seuRate:
			w.flipBit(rng.Intn(storedBits))
			seus++
		case u < seuRate+burstRate:
			// Each event samples its length from the configured
			// distribution (capped at the page), then a start uniform
			// over the placements at which the full burst fits, so
			// every event flips exactly its sampled length (the mbusim
			// convention; no edge truncation bias).
			length := w.dist.Sample(rng, storedBits)
			start := rng.Intn(storedBits - length + 1)
			for b := 0; b < length; b++ {
				w.flipBit(start + b)
			}
			lastBurstLen = length
			bursts++
		default:
			s := rng.Intn(storedSymbols)
			// The stuck value is drawn even on a re-strike of an
			// already-dead column, preserving the historical RNG stream.
			v := gf.Elem(rng.Intn(page.Code().Field().Size()))
			if !w.stuck[s] {
				w.stuck[s] = true
				w.strikeT[s] = t
				if w.policy == detImmediate {
					w.located[s] = true
					w.ersDirty = true
				} else {
					w.unlocated++
				}
			}
			w.stored[s] = v
			cols++
		}
	}

	acc.Add(CounterSEUs, int64(seus))
	acc.Add(CounterBursts, int64(bursts))
	acc.Add(CounterStuckColumns, int64(cols))

	// Per-trial likelihood ratio of the tilted arrival process: the
	// clock redraws at scrub instants telescope, so only the arrival
	// count (every event type) and total exposure enter the density
	// ratio. classify records outcome counters weighted by it.
	weighted := cfg.weighted()
	lr := 1.0
	if weighted {
		lr = math.Exp((tilt-1)*totalRate*cfg.Horizon - float64(seus+bursts+cols)*math.Log(tilt))
	}
	classify := func(counter string) {
		if weighted {
			acc.AddWeighted(counter, lr)
		} else {
			acc.Add(counter, 1)
		}
	}

	// Final read at the horizon.
	if w.policy == detLatency {
		w.locateByLatency(cfg.Horizon, trial, acc)
	}
	w.noteUnlocatedRead()
	if err := w.decode(); err != nil {
		return err
	}
	acc.Add(CounterCorrectedSymbols, int64(w.res.CorrectedSymbols))
	acc.Add(CounterFailedStripes, int64(len(w.res.FailedStripes)))
	lost := len(w.res.FailedStripes) > 0
	silent := false
	if !lost {
		for i := range w.data {
			if w.res.Data[i] != w.data[i] {
				lost, silent = true, true
				break
			}
		}
	}
	// Under a variable-length distribution, only within-guarantee
	// bursts feed the single-burst counters (see the counter docs);
	// the fixed distribution keeps the historical any-length meaning.
	singleBurst := bursts == 1 && seus == 0 && cols == 0 &&
		(w.dist.IsFixed() || lastBurstLen <= w.guaranteeBits)
	if singleBurst {
		acc.Add(CounterSingleBurstTrials, 1)
	}
	switch {
	case lost:
		classify(CounterPageLoss)
		if silent {
			classify(CounterSilentLoss)
		}
		if singleBurst {
			acc.Add(CounterSingleBurstLosses, 1)
		}
	default:
		classify(CounterPageCorrect)
	}
	if w.policy != detImmediate {
		// Reported unconditionally (including zeros) so every
		// non-immediate campaign carries the keys; the immediate policy
		// omits them to keep its artifacts byte-identical to earlier
		// releases.
		acc.Add(CounterLocatedColumns, int64(w.trialLocated))
		acc.Add(CounterStuckUnlocatedReads, int64(w.unlocReads))
	}
	return nil
}

// locate marks stuck column s as known to the controller after it
// spent delay hours unlocated, and records the (strike, delay)
// time-to-location sample. Taking the delay (not the location
// instant) lets the latency policy report its exact configured value
// instead of a strike+L-strike float roundoff.
func (w *worker) locate(s int, delay float64, trial int, acc *campaign.Acc) {
	w.located[s] = true
	w.ersDirty = true
	w.unlocated--
	w.trialLocated++
	acc.Sample(trial, SeriesTimeToLocation, w.strikeT[s], delay)
}

// locateByLatency promotes every stuck column whose fixed detection
// latency has elapsed by time t (DetectLatency policy). Location only
// matters at decode instants, so promotion runs lazily before each
// decode instead of as explicit events in the fault loop.
func (w *worker) locateByLatency(t float64, trial int, acc *campaign.Acc) {
	if w.unlocated == 0 {
		return
	}
	for s := range w.stuck {
		if w.stuck[s] && !w.located[s] && w.strikeT[s]+w.cfg.DetectionLatency <= t {
			w.locate(s, w.cfg.DetectionLatency, trial, acc)
		}
	}
}

// noteUnlocatedRead counts a decode that ran while at least one stuck
// column was unlocated (and therefore consumed error capability).
func (w *worker) noteUnlocatedRead() {
	if w.policy != detImmediate && w.unlocated > 0 {
		w.unlocReads++
	}
}

// flipBit applies an SEU to one stored bit; stuck symbols do not
// respond (the column drives the line).
func (w *worker) flipBit(bit int) {
	m := w.page.Code().Field().M()
	s := bit / m
	if w.stuck[s] {
		return
	}
	w.stored[s] ^= 1 << uint(bit%m)
}

// decode runs the page decoder on the stored page (DecodeTo never
// mutates its input) with the located stuck columns as erasures, into
// w.res. Stuck columns the controller has not located yet are plain
// errors: they consume twice the correction budget and can
// miscorrect, which is exactly the located/unlocated asymmetry the
// detection policies model. The erasure list is rebuilt (in column
// order, so its contents are exactly what the per-decode rebuild
// produced) only when a location event has dirtied it; the common
// scrub pass between strikes reuses the previous list unchanged.
func (w *worker) decode() error {
	if w.ersDirty {
		w.erasures = w.erasures[:0]
		for s, loc := range w.located {
			if loc {
				w.erasures = append(w.erasures, s)
			}
		}
		w.ersDirty = false
	}
	if err := w.codec.DecodeTo(&w.res, w.stored, w.erasures); err != nil {
		return fmt.Errorf("pagesim: decode: %w", err)
	}
	return nil
}

// doScrub decodes, corrects and rewrites the page at time t. Stripes
// that fail to decode are left untouched (the controller has nothing
// better to write back); stuck columns reassert themselves through
// the rewrite. Under the scrub detection policy, an unlocated stuck
// column whose symbol the (successful) decode corrected has been
// observed deviating and becomes located for every later decode.
func (w *worker) doScrub(t float64, trial int, acc *campaign.Acc) {
	if w.policy == detLatency {
		w.locateByLatency(t, trial, acc)
	}
	w.noteUnlocatedRead()
	if err := w.decode(); err != nil {
		// Structural decode failures are impossible for a validated
		// config; count them (the pass did not complete, so it is not a
		// scrub_op) instead of silently swallowing the error — a
		// nonzero counter is surfaced by cmd/campaign.
		acc.Add(CounterScrubDecodeErrors, 1)
		return
	}
	if err := w.codec.EncodeTo(w.reenc, w.res.Data); err != nil {
		acc.Add(CounterScrubDecodeErrors, 1)
		return
	}
	acc.Add(CounterScrubOps, 1)
	depth := w.page.Depth()
	for s := range w.failed {
		w.failed[s] = false
	}
	for _, s := range w.res.FailedStripes {
		w.failed[s] = true
	}
	for idx := range w.reenc {
		if w.failed[idx%depth] {
			continue
		}
		if w.stuck[idx] {
			// The dead column reasserts itself through the rewrite; if
			// the corrected codeword disagrees with what it drives, the
			// controller has observed the deviation.
			if w.policy == detScrub && !w.located[idx] && w.stored[idx] != w.reenc[idx] {
				w.locate(idx, t-w.strikeT[idx], trial, acc)
			}
			continue
		}
		w.stored[idx] = w.reenc[idx]
	}
}

// ResultFromCampaign reassembles the simulator's Result from the
// engine's counter set.
func ResultFromCampaign(cfg Config, cres *campaign.Result) *Result {
	return &Result{
		Config:            cfg,
		Trials:            cres.Trials,
		PageCorrect:       int(cres.Counter(CounterPageCorrect)),
		PageLoss:          int(cres.Counter(CounterPageLoss)),
		SilentLoss:        int(cres.Counter(CounterSilentLoss)),
		CorrectedSymbols:  cres.Counter(CounterCorrectedSymbols),
		FailedStripes:     cres.Counter(CounterFailedStripes),
		SEUs:              cres.Counter(CounterSEUs),
		Bursts:            cres.Counter(CounterBursts),
		StuckColumns:      cres.Counter(CounterStuckColumns),
		ScrubOps:          cres.Counter(CounterScrubOps),
		SingleBurstTrials: cres.Counter(CounterSingleBurstTrials),
		SingleBurstLosses: cres.Counter(CounterSingleBurstLosses),

		LocatedColumns:      cres.Counter(CounterLocatedColumns),
		StuckUnlocatedReads: cres.Counter(CounterStuckUnlocatedReads),
		ScrubDecodeErrors:   cres.Counter(CounterScrubDecodeErrors),
	}
}

// Run executes the campaign on the shared engine. The result is
// deterministic for a fixed Config (including Seed), independent of
// Workers.
func Run(cfg Config) (*Result, error) {
	scn, err := Scenario(cfg)
	if err != nil {
		return nil, err
	}
	cres, err := campaign.Run(scn, campaign.Config{Workers: cfg.Workers})
	if err != nil {
		return nil, err
	}
	return ResultFromCampaign(cfg, cres), nil
}
