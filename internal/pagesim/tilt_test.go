package pagesim

import (
	"math"
	"testing"

	"repro/internal/campaign"
)

// TestTiltUnbiasedPageLoss: pagesim has no analytic chain to
// cross-validate against, so the tilt's unbiasedness is checked
// against the simulator itself — a brute-force untilted run and a
// tilted run at a fraction of the trials must agree on the page_loss
// probability within their combined standard errors, while the tilted
// arm observes far more loss events per trial.
func TestTiltUnbiasedPageLoss(t *testing.T) {
	base := Config{
		Depth:        4,
		LambdaBit:    2e-5,
		LambdaColumn: 5e-7,
		ScrubPeriod:  4,
		Horizon:      24,
		Seed:         9,
		Workers:      1,
	}

	run := func(cfg Config) *campaign.Result {
		t.Helper()
		scn, err := Scenario(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cres, err := campaign.Run(scn, campaign.Config{Workers: cfg.Workers})
		if err != nil {
			t.Fatal(err)
		}
		return cres
	}

	plain := base
	plain.Trials = 150000
	pres := run(plain)
	pEst := pres.WeightedFraction(CounterPageLoss)
	pSE := pres.StdErr(CounterPageLoss)
	if pres.Counter(CounterPageLoss) < 30 {
		t.Fatalf("untilted reference saw only %d losses; regime too rare for a brute-force baseline",
			pres.Counter(CounterPageLoss))
	}
	if pres.Weights != nil {
		t.Error("untilted run must not carry weight moments")
	}

	tilted := base
	tilted.Trials = 15000
	tilted.TiltFactor = 8
	tres := run(tilted)
	tEst := tres.WeightedFraction(CounterPageLoss)
	tSE := tres.StdErr(CounterPageLoss)
	if tSE <= 0 {
		t.Fatal("tilted run has no standard error; no weighted losses recorded")
	}

	// The two estimators target the same probability; 4 combined
	// sigma keeps the fixed-seed check far from the noise floor.
	sigma := math.Sqrt(pSE*pSE + tSE*tSE)
	if diff := math.Abs(tEst - pEst); diff > 4*sigma {
		t.Errorf("tilted estimate %.4e disagrees with untilted %.4e by %.1f sigma (se %.1e / %.1e)",
			tEst, pEst, diff/sigma, tSE, pSE)
	}

	// The point of the tilt: raw loss observations per trial must be
	// boosted by an order of magnitude or the factor is doing nothing.
	plainRate := float64(pres.Counter(CounterPageLoss)) / float64(pres.Trials)
	tiltRate := float64(tres.Counter(CounterPageLoss)) / float64(tres.Trials)
	if tiltRate < 10*plainRate {
		t.Errorf("tilted hit rate %.2e is not >=10x the untilted %.2e; tilt ineffective", tiltRate, plainRate)
	}

	// And the weighted machinery must report a usable effective
	// sample size, not a degenerate handful of dominating weights.
	if ess := tres.EffectiveSamples(CounterPageLoss); ess < 50 {
		t.Errorf("tilted ESS %.1f too small to trust the estimate", ess)
	}
}
