package textplot

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestRenderBasic(t *testing.T) {
	p := &Plot{
		Title:  "test plot",
		XLabel: "hours",
		YLabel: "BER",
		LogY:   true,
		Series: []Series{
			{Label: "a", X: []float64{0, 1, 2}, Y: []float64{1e-9, 1e-6, 1e-3}},
			{Label: "b", X: []float64{0, 1, 2}, Y: []float64{1e-8, 1e-7, 1e-6}},
		},
	}
	out := p.Render()
	for _, want := range []string{"test plot", "hours", "BER", "* a", "+ b", "1e-03"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Error("markers not drawn")
	}
}

func TestRenderDropsNonPositiveOnLogAxis(t *testing.T) {
	p := &Plot{
		LogY: true,
		Series: []Series{
			{Label: "curve", X: []float64{0, 1, 2}, Y: []float64{0, 1e-6, 1e-5}},
		},
	}
	out := p.Render()
	if strings.Contains(out, "no drawable samples") {
		t.Error("positive samples were dropped")
	}
	empty := &Plot{
		LogY:   true,
		Series: []Series{{Label: "zeros", X: []float64{0, 1}, Y: []float64{0, 0}}},
	}
	out = empty.Render()
	if !strings.Contains(out, "no drawable samples") {
		t.Errorf("all-zero log plot should say so:\n%s", out)
	}
}

func TestRenderLinearAxis(t *testing.T) {
	p := &Plot{
		Series: []Series{
			{Label: "linear", X: []float64{0, 1, 2, 3}, Y: []float64{0, 1, 2, 3}},
		},
	}
	out := p.Render()
	if !strings.Contains(out, "*") {
		t.Error("no markers on linear plot")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 20 {
		t.Errorf("default height not honored: %d lines", len(lines))
	}
}

func TestRenderDegenerateRanges(t *testing.T) {
	// Single point and constant series must not divide by zero.
	p := &Plot{
		Series: []Series{{Label: "pt", X: []float64{5}, Y: []float64{3}}},
	}
	if out := p.Render(); !strings.Contains(out, "*") {
		t.Errorf("single point not drawn:\n%s", out)
	}
	c := &Plot{
		Series: []Series{{Label: "const", X: []float64{0, 1, 2}, Y: []float64{7, 7, 7}}},
	}
	if out := c.Render(); !strings.Contains(out, "*") {
		t.Errorf("constant series not drawn:\n%s", out)
	}
}

func TestRenderCustomSize(t *testing.T) {
	p := &Plot{
		Width:  20,
		Height: 5,
		Series: []Series{{Label: "s", X: []float64{0, 1}, Y: []float64{0, 1}}},
	}
	out := p.Render()
	lines := strings.Split(out, "\n")
	plotLines := 0
	for _, l := range lines {
		if strings.Contains(l, "|") {
			plotLines++
		}
	}
	if plotLines != 5 {
		t.Errorf("plot rows = %d, want 5", plotLines)
	}
}

func TestRenderManySeriesCyclesMarkers(t *testing.T) {
	p := &Plot{}
	for i := 0; i < 10; i++ {
		p.Series = append(p.Series, Series{
			Label: "s",
			X:     []float64{0, 1},
			Y:     []float64{float64(i), float64(i + 1)},
		})
	}
	out := p.Render()
	if !strings.Contains(out, "* s") {
		t.Error("ninth series should reuse the first marker")
	}
}

func TestRenderMismatchedXYLengths(t *testing.T) {
	p := &Plot{
		Series: []Series{{Label: "short-y", X: []float64{0, 1, 2}, Y: []float64{1}}},
	}
	out := p.Render() // must not panic; draws the one valid point
	if !strings.Contains(out, "*") {
		t.Errorf("valid prefix not drawn:\n%s", out)
	}
}

func TestWriteTSV(t *testing.T) {
	var buf bytes.Buffer
	series := []Series{
		{Label: "a", X: []float64{0, 24, 48}, Y: []float64{0, 1e-7, 4e-7}},
		{Label: "b", X: []float64{0, 24, 48}, Y: []float64{0, 2e-7, 8e-7}},
	}
	if err := WriteTSV(&buf, "hours", series); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4:\n%s", len(lines), buf.String())
	}
	if lines[0] != "hours\ta\tb" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[2], "24\t") {
		t.Errorf("row = %q", lines[2])
	}
	fields := strings.Split(lines[3], "\t")
	if len(fields) != 3 || fields[1] != "4e-07" {
		t.Errorf("row fields = %v", fields)
	}
}

func TestWriteTSVSortsByX(t *testing.T) {
	var buf bytes.Buffer
	series := []Series{
		{Label: "a", X: []float64{48, 0, 24}, Y: []float64{3, 1, 2}},
	}
	if err := WriteTSV(&buf, "t", series); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if !strings.HasPrefix(lines[1], "0\t1") || !strings.HasPrefix(lines[3], "48\t3") {
		t.Errorf("rows not sorted:\n%s", buf.String())
	}
}

func TestWriteTSVValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTSV(&buf, "x", nil); err == nil {
		t.Error("empty series accepted")
	}
	mismatch := []Series{
		{Label: "a", X: []float64{0, 1}, Y: []float64{0, 1}},
		{Label: "b", X: []float64{0, 2}, Y: []float64{0, 1}},
	}
	if err := WriteTSV(&buf, "x", mismatch); err == nil {
		t.Error("different x grids accepted")
	}
	short := []Series{{Label: "a", X: []float64{0, 1}, Y: []float64{0}}}
	if err := WriteTSV(&buf, "x", short); err == nil {
		t.Error("mismatched lengths accepted")
	}
}

func TestHeatmapRender(t *testing.T) {
	h := &Heatmap{
		Title:  "loss fraction",
		XLabel: "scrub_period_hours",
		YLabel: "depth,n",
		XTicks: []string{"1", "4", "12"},
		YTicks: []string{"2,18", "2,20", "4,18", "4,20"},
		Values: [][]float64{
			{0.01, 0.02, 0.08},
			{0.001, 0.002, 0.004},
			{0.02, 0.05, 0.2},
			{0.002, 0.003, 0.01},
		},
	}
	out := h.Render()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Title, y label, column header, 4 rows, x label, scale legend.
	if len(lines) != 9 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	for _, want := range []string{"loss fraction", "scrub_period_hours", "depth,n", "2,18", "scale: ' ' = 0.001 .. '@' = 0.2"} {
		if !strings.Contains(out, want) {
			t.Errorf("heatmap missing %q:\n%s", want, out)
		}
	}
	// The max cell must carry the densest glyph, the min cell the
	// lightest (a run of colWidth copies, here 4 wide for "2,18").
	if !strings.Contains(out, "@@") {
		t.Errorf("max cell not densest:\n%s", out)
	}
}

func TestHeatmapDegenerate(t *testing.T) {
	flat := &Heatmap{
		XTicks: []string{"a"}, YTicks: []string{"b"},
		Values: [][]float64{{0.5}},
	}
	if out := flat.Render(); !strings.Contains(out, "all cells 0.5") {
		t.Errorf("flat heatmap legend:\n%s", out)
	}
	missing := &Heatmap{
		XTicks: []string{"a", "b"}, YTicks: []string{"r"},
		Values: [][]float64{{math.NaN(), 1}},
	}
	if out := missing.Render(); !strings.Contains(out, "?") {
		t.Errorf("NaN cell not marked:\n%s", out)
	}
	empty := &Heatmap{}
	if out := empty.Render(); !strings.Contains(out, "empty heatmap") {
		t.Errorf("empty heatmap: %q", out)
	}
	ragged := &Heatmap{
		XTicks: []string{"a", "b"}, YTicks: []string{"r"},
		Values: [][]float64{{1}},
	}
	if out := ragged.Render(); !strings.Contains(out, "columns") {
		t.Errorf("ragged heatmap accepted: %q", out)
	}
}

// TestRenderSingleX: when every sample shares one x value there is no
// axis span to interpolate; the axis line must name the true value
// (annotated, centered) instead of fabricating a right edge at x+1
// that no sample has, and the marks must sit in the center column.
func TestRenderSingleX(t *testing.T) {
	p := &Plot{
		Width:  21,
		Height: 5,
		Series: []Series{
			{Label: "flat", X: []float64{5, 5, 5}, Y: []float64{1, 2, 3}},
		},
	}
	out := p.Render()
	if !strings.Contains(out, "5 (single x)") {
		t.Errorf("single-x axis not annotated with the true value:\n%s", out)
	}
	if strings.Contains(out, "6") {
		t.Errorf("fabricated xmax=xmin+1 leaked into the axis:\n%s", out)
	}
	for _, line := range strings.Split(out, "\n") {
		// Plot rows render as "<9-char label> |<plot area>"; skip the
		// legend and axis lines, which also contain the marker rune.
		if !strings.Contains(line, "|") {
			continue
		}
		if i := strings.IndexRune(line, '*'); i >= 0 {
			// The center of a 21-column plot area is column 10.
			if col := i - strings.IndexRune(line, '|') - 1; col != 10 {
				t.Errorf("mark at plot column %d, want centered 10:\n%s", col, out)
			}
		}
	}

	// Multi-x plots keep the two-ended axis.
	p.Series[0].X = []float64{4, 5, 6}
	out = p.Render()
	if strings.Contains(out, "(single x)") {
		t.Errorf("multi-x plot annotated as single x:\n%s", out)
	}
	if !strings.Contains(out, "4") || !strings.Contains(out, "6") {
		t.Errorf("axis extremes missing:\n%s", out)
	}
}
