// Package textplot renders the repository's experiment results as
// terminal plots and TSV tables, so every figure of the paper can be
// regenerated and inspected without any plotting dependency.
//
// The log-scale line chart mirrors the paper's presentation: BER spans
// up to 200 decades (Figure 10), which only a log axis can show.
package textplot

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Series is one labeled curve: y values over x values.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Plot is a renderable chart.
type Plot struct {
	Title  string
	XLabel string
	YLabel string
	// LogY plots log10(y); nonpositive samples are dropped (they have
	// no logarithm — in BER curves they are exact zeros at t=0).
	LogY   bool
	Width  int // plot-area columns (default 64)
	Height int // plot-area rows (default 20)
	Series []Series
}

// markers distinguish up to eight series; further series cycle.
var markers = []rune{'*', '+', 'o', 'x', '#', '@', '%', '~'}

// Render draws the plot into a string. Series with no drawable points
// are listed in the legend with a "(no positive samples)" note when
// LogY drops everything.
func (p *Plot) Render() string {
	width, height := p.Width, p.Height
	if width <= 0 {
		width = 64
	}
	if height <= 0 {
		height = 20
	}

	type pt struct{ x, y float64 }
	curves := make([][]pt, len(p.Series))
	var xmin, xmax, ymin, ymax float64
	first := true
	for i, s := range p.Series {
		for j := range s.X {
			if j >= len(s.Y) {
				break
			}
			y := s.Y[j]
			if p.LogY {
				if y <= 0 {
					continue
				}
				y = math.Log10(y)
			}
			x := s.X[j]
			curves[i] = append(curves[i], pt{x, y})
			if first {
				xmin, xmax, ymin, ymax = x, x, y, y
				first = false
				continue
			}
			xmin = math.Min(xmin, x)
			xmax = math.Max(xmax, x)
			ymin = math.Min(ymin, y)
			ymax = math.Max(ymax, y)
		}
	}
	var b strings.Builder
	if p.Title != "" {
		fmt.Fprintf(&b, "%s\n", p.Title)
	}
	if first {
		b.WriteString("(no drawable samples)\n")
		return b.String()
	}
	// A single distinct x has no axis span to interpolate: the points
	// render in the center column and the axis line names the one true
	// value instead of fabricating a right edge no sample has.
	singleX := xmax == xmin
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = make([]rune, width)
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	for i, curve := range curves {
		mark := markers[i%len(markers)]
		for _, q := range curve {
			c := (width - 1) / 2
			if !singleX {
				c = int(math.Round((q.x - xmin) / (xmax - xmin) * float64(width-1)))
			}
			r := int(math.Round((q.y - ymin) / (ymax - ymin) * float64(height-1)))
			row := height - 1 - r
			if row >= 0 && row < height && c >= 0 && c < width {
				grid[row][c] = mark
			}
		}
	}

	yTick := func(row int) string {
		frac := float64(height-1-row) / float64(height-1)
		v := ymin + frac*(ymax-ymin)
		if p.LogY {
			return fmt.Sprintf("%9s", fmt.Sprintf("1e%+05.1f", v))
		}
		return fmt.Sprintf("%9.3g", v)
	}
	if p.YLabel != "" {
		fmt.Fprintf(&b, "%s\n", p.YLabel)
	}
	for r := 0; r < height; r++ {
		label := strings.Repeat(" ", 9)
		if r == 0 || r == height-1 || r == height/2 {
			label = yTick(r)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", 9), strings.Repeat("-", width))
	if singleX {
		label := fmt.Sprintf("%.4g (single x)", xmin)
		lead := (width - len(label)) / 2
		if lead < 0 {
			lead = 0
		}
		fmt.Fprintf(&b, "%s  %s%s", strings.Repeat(" ", 9), strings.Repeat(" ", lead), label)
	} else {
		left := fmt.Sprintf("%.4g", xmin)
		right := fmt.Sprintf("%.4g", xmax)
		pad := width - len(left) - len(right)
		if pad < 1 {
			pad = 1
		}
		fmt.Fprintf(&b, "%s  %s%s%s", strings.Repeat(" ", 9), left, strings.Repeat(" ", pad), right)
	}
	if p.XLabel != "" {
		fmt.Fprintf(&b, "  (%s)", p.XLabel)
	}
	b.WriteString("\n")
	for i, s := range p.Series {
		note := ""
		if len(curves[i]) == 0 {
			note = "  (no positive samples)"
		}
		fmt.Fprintf(&b, "  %c %s%s\n", markers[i%len(markers)], s.Label, note)
	}
	return b.String()
}

// heatRamp shades heatmap cells from low to high.
var heatRamp = []rune(" .:-=+*#%@")

// Heatmap renders a grid of values as shaded character cells: one row
// per YTicks entry, one column per XTicks entry, with the value range
// mapped onto a density ramp and a legend giving the ramp's extremes.
// NaN cells render as '?' (a missing measurement, distinct from the
// ramp's lowest shade).
type Heatmap struct {
	Title  string
	XLabel string // axis annotation under the columns
	YLabel string // axis annotation above the rows
	XTicks []string
	YTicks []string
	// Values is indexed [row][col] and must be len(YTicks) x
	// len(XTicks).
	Values [][]float64
}

// Render draws the heatmap into a string.
func (h *Heatmap) Render() string {
	if len(h.XTicks) == 0 || len(h.YTicks) == 0 {
		return "(empty heatmap)\n"
	}
	if len(h.Values) != len(h.YTicks) {
		return fmt.Sprintf("(heatmap has %d rows of values for %d row labels)\n", len(h.Values), len(h.YTicks))
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for r, row := range h.Values {
		if len(row) != len(h.XTicks) {
			return fmt.Sprintf("(heatmap row %d has %d values for %d columns)\n", r, len(row), len(h.XTicks))
		}
		for _, v := range row {
			if math.IsNaN(v) {
				continue
			}
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	glyph := func(v float64) rune {
		switch {
		case math.IsNaN(v):
			return '?'
		case hi == lo:
			return heatRamp[len(heatRamp)/2]
		}
		idx := int(math.Round((v - lo) / (hi - lo) * float64(len(heatRamp)-1)))
		if idx < 0 {
			idx = 0
		}
		if idx > len(heatRamp)-1 {
			idx = len(heatRamp) - 1
		}
		return heatRamp[idx]
	}

	colWidth := 1
	for _, t := range h.XTicks {
		if len(t) > colWidth {
			colWidth = len(t)
		}
	}
	rowWidth := 0
	for _, t := range h.YTicks {
		if len(t) > rowWidth {
			rowWidth = len(t)
		}
	}

	var b strings.Builder
	if h.Title != "" {
		fmt.Fprintf(&b, "%s\n", h.Title)
	}
	if h.YLabel != "" {
		fmt.Fprintf(&b, "%*s\n", rowWidth, h.YLabel)
	}
	fmt.Fprintf(&b, "%*s", rowWidth, "")
	for _, t := range h.XTicks {
		fmt.Fprintf(&b, "  %*s", colWidth, t)
	}
	b.WriteString("\n")
	for r, ytick := range h.YTicks {
		fmt.Fprintf(&b, "%*s", rowWidth, ytick)
		for _, v := range h.Values[r] {
			// The glyph fills the column so the shading reads as an
			// area, not scattered points.
			fmt.Fprintf(&b, "  %s", strings.Repeat(string(glyph(v)), colWidth))
		}
		b.WriteString("\n")
	}
	if h.XLabel != "" {
		fmt.Fprintf(&b, "%*s  (%s)\n", rowWidth, "", h.XLabel)
	}
	if math.IsInf(lo, 1) {
		fmt.Fprintf(&b, "scale: no finite values\n")
	} else if hi == lo {
		fmt.Fprintf(&b, "scale: all cells %.4g\n", lo)
	} else {
		fmt.Fprintf(&b, "scale: '%c' = %.4g .. '%c' = %.4g\n",
			heatRamp[0], lo, heatRamp[len(heatRamp)-1], hi)
	}
	return b.String()
}

// WriteTSV emits the series as a tab-separated table: one x column
// followed by one column per series. All series must share the same
// x grid; rows are emitted in ascending x order.
func WriteTSV(w io.Writer, xLabel string, series []Series) error {
	if len(series) == 0 {
		return fmt.Errorf("textplot: no series")
	}
	n := len(series[0].X)
	for _, s := range series {
		if len(s.X) != n || len(s.Y) != n {
			return fmt.Errorf("textplot: series %q has mismatched length", s.Label)
		}
		for i := range s.X {
			if s.X[i] != series[0].X[i] {
				return fmt.Errorf("textplot: series %q has a different x grid", s.Label)
			}
		}
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return series[0].X[idx[a]] < series[0].X[idx[b]] })

	header := []string{xLabel}
	for _, s := range series {
		header = append(header, s.Label)
	}
	if _, err := fmt.Fprintln(w, strings.Join(header, "\t")); err != nil {
		return err
	}
	for _, i := range idx {
		row := []string{formatG(series[0].X[i])}
		for _, s := range series {
			row = append(row, formatG(s.Y[i]))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, "\t")); err != nil {
			return err
		}
	}
	return nil
}

func formatG(v float64) string { return fmt.Sprintf("%.8g", v) }
