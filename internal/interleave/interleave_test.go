package interleave

import (
	"math/rand"
	"testing"

	"repro/internal/gf"
	"repro/internal/rs"
)

var (
	f8     = gf.MustField(8)
	code   = rs.MustNew(f8, 18, 16)
	code36 = rs.MustNew(f8, 36, 16)
)

func randPage(rng *rand.Rand, p *Page) []gf.Elem {
	data := make([]gf.Elem, p.DataSymbols())
	for i := range data {
		data[i] = gf.Elem(rng.Intn(256))
	}
	return data
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, 4); err == nil {
		t.Error("nil code accepted")
	}
	if _, err := New(code, 0); err == nil {
		t.Error("zero depth accepted")
	}
	if _, err := New(code, -1); err == nil {
		t.Error("negative depth accepted")
	}
	p, err := New(code, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.Depth() != 4 || p.Code() != code {
		t.Error("accessors wrong")
	}
	if p.DataSymbols() != 64 || p.StoredSymbols() != 72 {
		t.Errorf("sizes: data=%d stored=%d", p.DataSymbols(), p.StoredSymbols())
	}
}

func TestEncodeDecodeClean(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, depth := range []int{1, 2, 4, 8} {
		p, err := New(code, depth)
		if err != nil {
			t.Fatal(err)
		}
		data := randPage(rng, p)
		stored, err := p.Encode(data)
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Decode(stored, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.FailedStripes) != 0 || res.CorrectedSymbols != 0 {
			t.Fatalf("depth %d: clean page not clean: %+v", depth, res)
		}
		for i := range data {
			if res.Data[i] != data[i] {
				t.Fatalf("depth %d: data mismatch at %d", depth, i)
			}
		}
	}
}

func TestEncodeValidation(t *testing.T) {
	p, _ := New(code, 4)
	if _, err := p.Encode(make([]gf.Elem, 63)); err == nil {
		t.Error("short page accepted")
	}
	if _, err := p.Decode(make([]gf.Elem, 71), nil); err == nil {
		t.Error("short stored page accepted")
	}
	stored := make([]gf.Elem, 72)
	if _, err := p.Decode(stored, []int{72}); err == nil {
		t.Error("out-of-range erasure accepted")
	}
}

// TestBurstCorrection is the point of interleaving: a contiguous burst
// of depth*t corrupted stored symbols always corrects, because it
// spreads across stripes.
func TestBurstCorrection(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, depth := range []int{2, 4, 8} {
		p, err := New(code, depth) // t = 1 per stripe
		if err != nil {
			t.Fatal(err)
		}
		burst := p.CorrectableBurst()
		if burst != depth {
			t.Fatalf("depth %d: correctable burst %d, want %d", depth, burst, depth)
		}
		for trial := 0; trial < 50; trial++ {
			data := randPage(rng, p)
			stored, _ := p.Encode(data)
			start := rng.Intn(p.StoredSymbols() - burst)
			for i := start; i < start+burst; i++ {
				stored[i] ^= gf.Elem(1 + rng.Intn(255))
			}
			res, err := p.Decode(stored, nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.FailedStripes) != 0 {
				t.Fatalf("depth %d: burst of %d not corrected (failed stripes %v)", depth, burst, res.FailedStripes)
			}
			for i := range data {
				if res.Data[i] != data[i] {
					t.Fatalf("depth %d: wrong data after burst", depth)
				}
			}
			if res.CorrectedSymbols != burst {
				t.Fatalf("corrected %d symbols, want %d", res.CorrectedSymbols, burst)
			}
		}
	}
}

// TestBurstBeyondDepthOverloadsOneStripe: a burst one longer than the
// guarantee puts two errors into one stripe of a t=1 code.
func TestBurstBeyondDepthOverloadsOneStripe(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p, _ := New(code, 4)
	burst := p.CorrectableBurst() + 1
	sawFailure := false
	for trial := 0; trial < 200 && !sawFailure; trial++ {
		data := randPage(rng, p)
		stored, _ := p.Encode(data)
		start := rng.Intn(p.StoredSymbols() - burst)
		for i := start; i < start+burst; i++ {
			stored[i] ^= gf.Elem(1 + rng.Intn(255))
		}
		res, err := p.Decode(stored, nil)
		if err != nil {
			t.Fatal(err)
		}
		// The overloaded stripe either reports failure or, rarely,
		// mis-corrects; both manifest as a failed stripe or wrong data.
		if len(res.FailedStripes) > 0 {
			sawFailure = true
			continue
		}
		for i := range data {
			if res.Data[i] != data[i] {
				sawFailure = true
				break
			}
		}
	}
	if !sawFailure {
		t.Error("burst beyond the guarantee never overloaded a stripe in 200 trials")
	}
}

// TestColumnEraseAcrossPage: a failed memory column (same stored
// offset in every stripe group) is one erasure per stripe — well
// within even RS(18,16), and exactly the ref [6] failure scenario.
func TestColumnEraseAcrossPage(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p, _ := New(code, 8)
	data := randPage(rng, p)
	stored, _ := p.Encode(data)
	// Stored symbols j*depth+s for fixed j ("column" j of the page):
	// one symbol in every stripe.
	col := 7
	var erasures []int
	for s := 0; s < 8; s++ {
		idx := col*8 + s
		stored[idx] = 0xAA
		erasures = append(erasures, idx)
	}
	res, err := p.Decode(stored, erasures)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FailedStripes) != 0 {
		t.Fatalf("column erasure not recovered: %v", res.FailedStripes)
	}
	for i := range data {
		if res.Data[i] != data[i] {
			t.Fatal("wrong data after column erasure")
		}
	}
}

func TestWideCodeDeepBurst(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p, err := New(code36, 4) // t = 10: burst guarantee 40 symbols
	if err != nil {
		t.Fatal(err)
	}
	if p.CorrectableBurst() != 40 {
		t.Fatalf("burst guarantee %d, want 40", p.CorrectableBurst())
	}
	data := randPage(rng, p)
	stored, _ := p.Encode(data)
	start := 17
	for i := start; i < start+40; i++ {
		stored[i] ^= gf.Elem(1 + rng.Intn(255))
	}
	res, err := p.Decode(stored, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FailedStripes) != 0 {
		t.Fatal("40-symbol burst not corrected by depth-4 RS(36,16)")
	}
	for i := range data {
		if res.Data[i] != data[i] {
			t.Fatal("wrong data")
		}
	}
}

func TestFailedStripeStillReturnsOtherStripes(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p, _ := New(code, 4)
	data := randPage(rng, p)
	stored, _ := p.Encode(data)
	// Overload stripe 2 with three errors (t=1 code, detected failure
	// for most patterns); leave others clean.
	corrupted := 0
	for j := 0; j < p.Code().N() && corrupted < 3; j++ {
		stored[j*4+2] ^= 0x55
		corrupted++
	}
	res, err := p.Decode(stored, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FailedStripes) == 0 {
		// The pattern mis-corrected instead — acceptable for this
		// seed-free structural test; just require wrong data.
		same := true
		for i := range data {
			if res.Data[i] != data[i] {
				same = false
			}
		}
		if same {
			t.Fatal("three errors in one stripe decoded cleanly")
		}
		return
	}
	if res.FailedStripes[0] != 2 {
		t.Errorf("failed stripes %v, want [2]", res.FailedStripes)
	}
	// All other stripes' data must be intact.
	for i := range data {
		if i%4 != 2 && res.Data[i] != data[i] {
			t.Fatalf("healthy stripe corrupted at %d", i)
		}
	}
}

// TestCodecMatchesPage: the reusable workspace must reproduce
// Page.Encode/Decode exactly — clean, bursty and erasure-bearing
// pages, including failed-stripe fallback data.
func TestCodecMatchesPage(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, depth := range []int{1, 2, 4, 8} {
		p, err := New(code, depth)
		if err != nil {
			t.Fatal(err)
		}
		c := p.NewCodec()
		if c.Page() != p {
			t.Fatal("codec page accessor wrong")
		}
		stored2 := make([]gf.Elem, p.StoredSymbols())
		var res2 DecodeResult
		for trial := 0; trial < 50; trial++ {
			data := randPage(rng, p)
			stored, err := p.Encode(data)
			if err != nil {
				t.Fatal(err)
			}
			if err := c.EncodeTo(stored2, data); err != nil {
				t.Fatal(err)
			}
			for i := range stored {
				if stored[i] != stored2[i] {
					t.Fatalf("depth %d: EncodeTo differs at %d", depth, i)
				}
			}
			// Corrupt: a burst plus a couple of random symbols, with one
			// erased column symbol, so all decode paths are exercised.
			var erasures []int
			switch trial % 3 {
			case 1:
				start := rng.Intn(p.StoredSymbols() - 3)
				for i := start; i < start+3; i++ {
					stored[i] ^= gf.Elem(1 + rng.Intn(255))
				}
			case 2:
				e := rng.Intn(p.StoredSymbols())
				stored[e] = 0xAA
				erasures = []int{e}
				stored[rng.Intn(p.StoredSymbols())] ^= gf.Elem(1 + rng.Intn(255))
			}
			copy(stored2, stored)
			want, err := p.Decode(stored, erasures)
			if err != nil {
				t.Fatal(err)
			}
			if err := c.DecodeTo(&res2, stored2, erasures); err != nil {
				t.Fatal(err)
			}
			if want.CorrectedSymbols != res2.CorrectedSymbols {
				t.Fatalf("depth %d trial %d: corrected %d vs %d", depth, trial, want.CorrectedSymbols, res2.CorrectedSymbols)
			}
			if len(want.FailedStripes) != len(res2.FailedStripes) {
				t.Fatalf("depth %d trial %d: failed stripes %v vs %v", depth, trial, want.FailedStripes, res2.FailedStripes)
			}
			for i := range want.FailedStripes {
				if want.FailedStripes[i] != res2.FailedStripes[i] {
					t.Fatalf("failed stripes %v vs %v", want.FailedStripes, res2.FailedStripes)
				}
			}
			for i := range want.Data {
				if want.Data[i] != res2.Data[i] {
					t.Fatalf("depth %d trial %d: data differs at %d", depth, trial, i)
				}
			}
		}
	}
}

func TestCodecValidation(t *testing.T) {
	p, _ := New(code, 4)
	c := p.NewCodec()
	var res DecodeResult
	if err := c.EncodeTo(make([]gf.Elem, 72), make([]gf.Elem, 63)); err == nil {
		t.Error("short data accepted")
	}
	if err := c.EncodeTo(make([]gf.Elem, 71), make([]gf.Elem, 64)); err == nil {
		t.Error("short stored accepted")
	}
	if err := c.DecodeTo(&res, make([]gf.Elem, 71), nil); err == nil {
		t.Error("short stored page accepted")
	}
	if err := c.DecodeTo(&res, make([]gf.Elem, 72), []int{-1}); err == nil {
		t.Error("negative erasure accepted")
	}
}

// TestCodecZeroAllocs pins the workspace contract: steady-state page
// encode and decode (clean and with corrections) allocate nothing.
func TestCodecZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	p, _ := New(code, 4)
	c := p.NewCodec()
	data := randPage(rng, p)
	stored := make([]gf.Elem, p.StoredSymbols())
	var res DecodeResult
	if err := c.EncodeTo(stored, data); err != nil {
		t.Fatal(err)
	}
	if err := c.DecodeTo(&res, stored, nil); err != nil {
		t.Fatal(err) // warm res buffers before measuring
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if err := c.EncodeTo(stored, data); err != nil {
			t.Fatal(err)
		}
		stored[11] ^= 0x3C
		if err := c.DecodeTo(&res, stored, nil); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("steady-state encode+decode allocates %.1f times per page", allocs)
	}
}

func BenchmarkEncodePageDepth8(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	p, _ := New(code, 8)
	data := randPage(rng, p)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.Encode(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodePageDepth8Burst(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	p, _ := New(code, 8)
	data := randPage(rng, p)
	stored, _ := p.Encode(data)
	for i := 30; i < 38; i++ {
		stored[i] ^= 0x3C
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.Decode(stored, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCodecEncodePageDepth8 / BenchmarkCodecDecodePageDepth8Burst
// track the allocation-free workspace the pagesim campaigns run on;
// both are gated by BENCH_baseline.json in CI.
func BenchmarkCodecEncodePageDepth8(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	p, _ := New(code, 8)
	c := p.NewCodec()
	data := randPage(rng, p)
	stored := make([]gf.Elem, p.StoredSymbols())
	b.ReportAllocs()
	b.SetBytes(int64(p.StoredSymbols()))
	for i := 0; i < b.N; i++ {
		if err := c.EncodeTo(stored, data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCodecDecodePageDepth8Burst(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	p, _ := New(code, 8)
	c := p.NewCodec()
	data := randPage(rng, p)
	stored, _ := p.Encode(data)
	for i := 30; i < 38; i++ {
		stored[i] ^= 0x3C
	}
	work := make([]gf.Elem, len(stored))
	var res DecodeResult
	b.ReportAllocs()
	b.SetBytes(int64(p.StoredSymbols()))
	for i := 0; i < b.N; i++ {
		copy(work, stored)
		if err := c.DecodeTo(&res, work, nil); err != nil {
			b.Fatal(err)
		}
	}
}
