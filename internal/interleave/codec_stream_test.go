package interleave

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/gf"
)

// checkDecodeMatch compares a codec decode result against the
// allocation-per-call Page.Decode ground truth.
func checkDecodeMatch(t *testing.T, label string, want *DecodeResult, got *DecodeResult) {
	t.Helper()
	if want.CorrectedSymbols != got.CorrectedSymbols {
		t.Fatalf("%s: corrected %d, want %d", label, got.CorrectedSymbols, want.CorrectedSymbols)
	}
	if len(want.FailedStripes) != len(got.FailedStripes) {
		t.Fatalf("%s: failed stripes %v, want %v", label, got.FailedStripes, want.FailedStripes)
	}
	for i := range want.FailedStripes {
		if want.FailedStripes[i] != got.FailedStripes[i] {
			t.Fatalf("%s: failed stripes %v, want %v", label, got.FailedStripes, want.FailedStripes)
		}
	}
	for i := range want.Data {
		if want.Data[i] != got.Data[i] {
			t.Fatalf("%s: data differs at %d", label, i)
		}
	}
}

// TestCodecErasureMemoAcrossLists drives one codec through a sequence
// of erasure lists designed to trip a stale split memo — list A, a
// different same-length list B, A again, no list, then A mutated in
// place — comparing every decode against Page.Decode on the same
// inputs. A memo keyed on anything weaker than list content (pointer,
// length) fails this.
func TestCodecErasureMemoAcrossLists(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	p, err := New(code36, 4) // RS(36,16): d=20 erasures per stripe
	if err != nil {
		t.Fatal(err)
	}
	c := p.NewCodec()
	listA := []int{3, 17, 40, 71, 90}
	listB := []int{5, 17, 41, 70, 91} // same length, different content
	mutated := append([]int(nil), listA...)
	steps := []struct {
		name string
		ers  []int
	}{
		{"A", listA},
		{"A-again", listA},
		{"B-same-length", listB},
		{"A-back", listA},
		{"none", nil},
		{"mutated-in-place", mutated},
	}
	var res DecodeResult
	stored2 := make([]gf.Elem, p.StoredSymbols())
	for round := 0; round < 3; round++ {
		for _, step := range steps {
			if step.name == "mutated-in-place" {
				// Same backing array as the previous round's pass, new
				// contents: the memo must notice.
				for i := range mutated {
					mutated[i] = rng.Intn(p.StoredSymbols())
				}
				seen := map[int]bool{}
				for i := range mutated {
					for seen[mutated[i]] {
						mutated[i] = (mutated[i] + 1) % p.StoredSymbols()
					}
					seen[mutated[i]] = true
				}
			}
			data := randPage(rng, p)
			stored, err := p.Encode(data)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range step.ers {
				stored[e] = gf.Elem(rng.Intn(256))
			}
			stored[rng.Intn(p.StoredSymbols())] ^= gf.Elem(1 + rng.Intn(255))
			copy(stored2, stored)
			want, err := p.Decode(stored, step.ers)
			if err != nil {
				t.Fatal(err)
			}
			if err := c.DecodeTo(&res, stored2, step.ers); err != nil {
				t.Fatal(err)
			}
			checkDecodeMatch(t, step.name, want, &res)
		}
	}

	// An invalid list must still be rejected after a valid memo, and a
	// valid decode must still work after the rejection.
	if err := c.DecodeTo(&res, stored2, []int{p.StoredSymbols()}); err == nil {
		t.Fatal("out-of-range erasure accepted after memoized split")
	}
	data := randPage(rng, p)
	stored, _ := p.Encode(data)
	if err := c.DecodeTo(&res, stored, listA); err != nil {
		t.Fatal(err)
	}
}

// TestCodecSetWorkers checks that a parallel codec produces the same
// page outcomes as the serial one.
func TestCodecSetWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	p, err := New(code36, 8)
	if err != nil {
		t.Fatal(err)
	}
	serial := p.NewCodec()
	par := p.NewCodec().SetWorkers(4)
	var res1, res2 DecodeResult
	stored2 := make([]gf.Elem, p.StoredSymbols())
	for trial := 0; trial < 20; trial++ {
		data := randPage(rng, p)
		stored, err := p.Encode(data)
		if err != nil {
			t.Fatal(err)
		}
		ers := []int{2, 9, 100}
		for _, e := range ers {
			stored[e] = gf.Elem(rng.Intn(256))
		}
		for i := 0; i < 6; i++ {
			stored[rng.Intn(p.StoredSymbols())] ^= gf.Elem(1 + rng.Intn(255))
		}
		copy(stored2, stored)
		if err := serial.DecodeTo(&res1, stored, ers); err != nil {
			t.Fatal(err)
		}
		if err := par.DecodeTo(&res2, stored2, ers); err != nil {
			t.Fatal(err)
		}
		checkDecodeMatch(t, "workers=4", &res1, &res2)
	}
}

// TestDecodeSequence streams a batch of corrupted pages through one
// codec and checks every emitted result against per-page Page.Decode,
// plus the stream's error paths.
func TestDecodeSequence(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	p, err := New(code36, 4)
	if err != nil {
		t.Fatal(err)
	}
	const pages = 12
	ers := []int{7, 33, 80} // located columns, stable across the pass
	type pageCase struct {
		stored []gf.Elem
		want   *DecodeResult
	}
	cases := make([]pageCase, pages)
	for i := range cases {
		data := randPage(rng, p)
		stored, err := p.Encode(data)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ers {
			stored[e] = gf.Elem(rng.Intn(256))
		}
		if i%3 != 0 {
			stored[rng.Intn(p.StoredSymbols())] ^= gf.Elem(1 + rng.Intn(255))
		}
		want, err := p.Decode(stored, ers)
		if err != nil {
			t.Fatal(err)
		}
		cases[i] = pageCase{stored: stored, want: want}
	}

	c := p.NewCodec()
	next := 0
	emitted := 0
	n, err := c.DecodeSequence(
		func() ([]gf.Elem, []int, error) {
			if next >= pages {
				return nil, nil, nil
			}
			next++
			return cases[next-1].stored, ers, nil
		},
		func(page int, res *DecodeResult) error {
			if page != emitted {
				t.Fatalf("emit page %d, want %d", page, emitted)
			}
			checkDecodeMatch(t, "sequence", cases[page].want, res)
			emitted++
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if n != pages || emitted != pages {
		t.Fatalf("decoded %d pages, emitted %d, want %d", n, emitted, pages)
	}

	if _, err := c.DecodeSequence(nil, nil); err == nil || !strings.Contains(err.Error(), "fill callback") {
		t.Fatalf("nil fill: err = %v", err)
	}
	sentinel := errors.New("read failed")
	calls := 0
	n, err = c.DecodeSequence(func() ([]gf.Elem, []int, error) {
		calls++
		if calls > 1 {
			return nil, nil, sentinel
		}
		return cases[0].stored, ers, nil
	}, nil)
	if !errors.Is(err, sentinel) || !strings.Contains(err.Error(), "fill after 1 pages") {
		t.Fatalf("fill error: err = %v", err)
	}
	if n != 1 {
		t.Fatalf("fill error: decoded %d pages, want 1", n)
	}
	emitErr := errors.New("sink closed")
	_, err = c.DecodeSequence(func() ([]gf.Elem, []int, error) {
		return cases[0].stored, ers, nil
	}, func(page int, res *DecodeResult) error { return emitErr })
	if !errors.Is(err, emitErr) || !strings.Contains(err.Error(), "emit at page 0") {
		t.Fatalf("emit error: err = %v", err)
	}
	_, err = c.DecodeSequence(func() ([]gf.Elem, []int, error) {
		return make([]gf.Elem, 3), nil, nil
	}, nil)
	if err == nil || !strings.Contains(err.Error(), "sequence page 0") {
		t.Fatalf("bad page: err = %v", err)
	}
}

// TestDecodeSequenceZeroAllocs pins the streaming steady state at the
// page level: reused codec, stable erasure list, no per-page heap
// allocation.
func TestDecodeSequenceZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	p, err := New(code36, 4)
	if err != nil {
		t.Fatal(err)
	}
	const pages = 8
	ers := []int{7, 33, 80}
	arena := make([][]gf.Elem, pages)
	for i := range arena {
		stored, err := p.Encode(randPage(rng, p))
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ers {
			stored[e] = gf.Elem(rng.Intn(256))
		}
		arena[i] = stored
	}
	c := p.NewCodec()
	next := 0
	fill := func() ([]gf.Elem, []int, error) {
		if next >= pages {
			return nil, nil, nil
		}
		next++
		return arena[next-1], ers, nil
	}
	run := func() {
		next = 0
		n, err := c.DecodeSequence(fill, nil)
		if err != nil {
			t.Fatal(err)
		}
		if n != pages {
			t.Fatalf("decoded %d pages, want %d", n, pages)
		}
	}
	run() // warm the split memo, erasure-set cache and result buffers
	if allocs := testing.AllocsPerRun(100, func() { run() }); allocs != 0 {
		t.Fatalf("steady-state DecodeSequence allocates %.1f per run, want 0", allocs)
	}
}
