// Package interleave implements block interleaving of Reed-Solomon
// codewords — the memory-page organization of solid-state mass
// memories (paper ref [6]): a page is striped across d codewords so
// that a physical burst (a failed column, a multi-bit upset spanning
// adjacent symbols) lands on at most ceil(burst/d) symbols of any one
// codeword, multiplying the correctable burst length by the
// interleaving depth.
//
// The Page codec composes with internal/rs: data pages of depth*k
// symbols are encoded into depth*n stored symbols laid out
// codeword-interleaved (stored index i belongs to codeword i mod
// depth).
package interleave

import (
	"fmt"

	"repro/internal/gf"
	"repro/internal/rs"
)

// Page is an interleaved page codec: depth independent RS codewords
// striped symbol-by-symbol across the stored page.
type Page struct {
	code  *rs.Code
	depth int
}

// New builds a page codec with the given interleaving depth.
func New(code *rs.Code, depth int) (*Page, error) {
	if code == nil {
		return nil, fmt.Errorf("interleave: nil code")
	}
	if depth <= 0 {
		return nil, fmt.Errorf("interleave: nonpositive depth %d", depth)
	}
	return &Page{code: code, depth: depth}, nil
}

// Code returns the per-stripe Reed-Solomon code.
func (p *Page) Code() *rs.Code { return p.code }

// Depth returns the interleaving depth.
func (p *Page) Depth() int { return p.depth }

// DataSymbols returns the page payload size in symbols: depth*k.
func (p *Page) DataSymbols() int { return p.depth * p.code.K() }

// StoredSymbols returns the stored page size in symbols: depth*n.
func (p *Page) StoredSymbols() int { return p.depth * p.code.N() }

// CorrectableBurst returns the guaranteed-correctable burst length in
// stored symbols when no other faults are present: each codeword
// absorbs t = floor((n-k)/2) random errors, and a burst of length L
// touches at most ceil(L/depth) symbols per codeword, so
// L = depth*t bursts always correct (an L+1 burst can overload one
// stripe).
func (p *Page) CorrectableBurst() int { return p.depth * p.code.T() }

// Encode encodes a page of depth*k data symbols into a stored page of
// depth*n symbols, codeword-interleaved. It allocates its result and
// scratch per call; hot loops should hold a Codec and use EncodeTo.
func (p *Page) Encode(data []gf.Elem) ([]gf.Elem, error) {
	if len(data) != p.DataSymbols() {
		return nil, fmt.Errorf("interleave: page data has %d symbols, want %d", len(data), p.DataSymbols())
	}
	stored := make([]gf.Elem, p.StoredSymbols())
	stripeData := make([]gf.Elem, p.code.K())
	stripeCW := make([]gf.Elem, p.code.N())
	if err := p.encodeInto(stored, data, stripeData, stripeCW); err != nil {
		return nil, err
	}
	return stored, nil
}

// encodeInto runs the stripe loop with caller-owned scratch.
func (p *Page) encodeInto(stored, data, stripeData, stripeCW []gf.Elem) error {
	for s := 0; s < p.depth; s++ {
		for j := 0; j < p.code.K(); j++ {
			stripeData[j] = data[j*p.depth+s]
		}
		if err := p.code.EncodeTo(stripeCW, stripeData); err != nil {
			return err
		}
		for j := 0; j < p.code.N(); j++ {
			stored[j*p.depth+s] = stripeCW[j]
		}
	}
	return nil
}

// DecodeResult reports a page decode.
type DecodeResult struct {
	// Data is the recovered page payload.
	Data []gf.Elem
	// CorrectedSymbols is the total number of symbol corrections
	// across all stripes.
	CorrectedSymbols int
	// FailedStripes lists stripe indices whose codeword was
	// uncorrectable; Data is only trustworthy when empty.
	FailedStripes []int
}

// Decode recovers a stored page. Erasure positions index the stored
// page (0..depth*n-1). Stripes that fail to decode are reported in
// FailedStripes and contribute their received (uncorrected) data
// symbols, mirroring a controller that flags but still returns the
// page.
func (p *Page) Decode(stored []gf.Elem, erasures []int) (*DecodeResult, error) {
	if len(stored) != p.StoredSymbols() {
		return nil, fmt.Errorf("interleave: stored page has %d symbols, want %d", len(stored), p.StoredSymbols())
	}
	perStripe := make([][]int, p.depth)
	if err := p.splitErasures(perStripe, erasures); err != nil {
		return nil, err
	}
	res := &DecodeResult{Data: make([]gf.Elem, p.DataSymbols())}
	stripeCW := make([]gf.Elem, p.code.N())
	if err := p.decodeInto(res, stored, perStripe, stripeCW, p.code.Decode); err != nil {
		return nil, err
	}
	return res, nil
}

// splitErasures validates stored-page erasure positions and appends
// each to its stripe's list (lists are extended, not reset).
func (p *Page) splitErasures(perStripe [][]int, erasures []int) error {
	for _, e := range erasures {
		if e < 0 || e >= p.StoredSymbols() {
			return fmt.Errorf("interleave: erasure %d out of range [0,%d)", e, p.StoredSymbols())
		}
		stripe := e % p.depth
		perStripe[stripe] = append(perStripe[stripe], e/p.depth)
	}
	return nil
}

// decodeInto runs the stripe loop into res with caller-owned scratch
// and per-stripe decode function (the pooled Code.Decode wrapper or a
// Codec's reusable workspace).
func (p *Page) decodeInto(res *DecodeResult, stored []gf.Elem, perStripe [][]int, stripeCW []gf.Elem,
	decode func([]gf.Elem, []int) (*rs.Result, error)) error {
	for s := 0; s < p.depth; s++ {
		for j := 0; j < p.code.N(); j++ {
			stripeCW[j] = stored[j*p.depth+s]
		}
		dec, err := decode(stripeCW, perStripe[s])
		if err != nil {
			res.FailedStripes = append(res.FailedStripes, s)
			for j := 0; j < p.code.K(); j++ {
				res.Data[j*p.depth+s] = stripeCW[j]
			}
			continue
		}
		res.CorrectedSymbols += dec.Corrections
		for j := 0; j < p.code.K(); j++ {
			res.Data[j*p.depth+s] = dec.Data[j]
		}
	}
	return nil
}

// Codec is a reusable page encode/decode workspace: it owns the
// stripe scratch, the per-stripe erasure lists, a deinterleaved word
// arena and one rs.BatchDecoder, so steady-state page traffic (the
// pagesim Monte Carlo, a controller model pushing millions of pages)
// performs no per-page heap allocation, and pages whose stripes are
// mostly clean decode at the batch syndrome-screen rate rather than
// the full per-stripe decoder rate. A Codec is not safe for concurrent
// use; campaigns hold one per worker goroutine.
type Codec struct {
	page       *Page
	bdec       *rs.BatchDecoder
	arena      []gf.Elem // depth words of n symbols, stride n
	stripeData []gf.Elem
	stripeCW   []gf.Elem
	perStripe  [][]int

	// Erasure-split memo: when a decode passes the same stored-page
	// erasure list as the previous one (the located-column list of a
	// scrub loop is stable between strikes), the per-stripe split is
	// reused instead of rebuilt, keeping each stripe's list — contents
	// *and* backing array — stable so the rs erasure-set cache resolves
	// every stripe without rehashing new slices.
	lastErs []int // copy of the list perStripe currently reflects
	split   bool  // perStripe matches lastErs

	seqRes DecodeResult // DecodeSequence's reused result
}

// NewCodec builds a reusable workspace for the page layout.
func (p *Page) NewCodec() *Codec {
	c := &Codec{
		page:       p,
		bdec:       p.code.NewBatchDecoder(),
		arena:      make([]gf.Elem, p.depth*p.code.N()),
		stripeData: make([]gf.Elem, p.code.K()),
		stripeCW:   make([]gf.Elem, p.code.N()),
		perStripe:  make([][]int, p.depth),
	}
	for i := range c.perStripe {
		c.perStripe[i] = make([]int, 0, p.code.N())
	}
	return c
}

// Page returns the layout the codec encodes and decodes.
func (c *Codec) Page() *Page { return c.page }

// SetWorkers forwards to the underlying rs.BatchDecoder: pages decode
// with up to n goroutines across their stripes (bit-identical results
// for any worker count; n <= 1 keeps the serial zero-allocation
// path). Returns c for chaining; must not be called concurrently with
// decoding.
func (c *Codec) SetWorkers(n int) *Codec {
	c.bdec.SetWorkers(n)
	return c
}

// EncodeTo encodes a page of depth*k data symbols into the
// caller-provided stored slice of depth*n symbols, allocation-free.
func (c *Codec) EncodeTo(stored, data []gf.Elem) error {
	p := c.page
	if len(data) != p.DataSymbols() {
		return fmt.Errorf("interleave: page data has %d symbols, want %d", len(data), p.DataSymbols())
	}
	if len(stored) != p.StoredSymbols() {
		return fmt.Errorf("interleave: stored page has %d symbols, want %d", len(stored), p.StoredSymbols())
	}
	return p.encodeInto(stored, data, c.stripeData, c.stripeCW)
}

// DecodeTo decodes a stored page into res, recycling res's buffers
// (Data and FailedStripes are resized in place, so the steady state
// allocates nothing). The semantics match Page.Decode exactly —
// rs.DecodeAll guarantees every stripe the outcome Decoder.Decode
// would have produced — but the page is decoded as one word arena, so
// healthy stripes cost only the batch syndrome screen and the full
// decode pipeline runs just for the stripes that need it.
func (c *Codec) DecodeTo(res *DecodeResult, stored []gf.Elem, erasures []int) error {
	p := c.page
	if len(stored) != p.StoredSymbols() {
		return fmt.Errorf("interleave: stored page has %d symbols, want %d", len(stored), p.StoredSymbols())
	}
	if !c.split || !intsEq(erasures, c.lastErs) {
		for s := range c.perStripe {
			c.perStripe[s] = c.perStripe[s][:0]
		}
		c.split = false
		if err := p.splitErasures(c.perStripe, erasures); err != nil {
			return err
		}
		c.lastErs = append(c.lastErs[:0], erasures...)
		c.split = true
	}
	if cap(res.Data) < p.DataSymbols() {
		res.Data = make([]gf.Elem, p.DataSymbols())
	}
	res.Data = res.Data[:p.DataSymbols()]
	res.CorrectedSymbols = 0
	res.FailedStripes = res.FailedStripes[:0]

	n, k, depth := p.code.N(), p.code.K(), p.depth
	for s := 0; s < depth; s++ {
		word := c.arena[s*n : (s+1)*n]
		for j := 0; j < n; j++ {
			word[j] = stored[j*depth+s]
		}
	}
	// The per-stripe lists are not mutated until the next split, which
	// satisfies the rs.Batch list-sharing contract for this call.
	bres, err := c.bdec.DecodeAll(rs.Batch{Words: c.arena, Stride: n, Count: depth}, c.perStripe)
	if err != nil {
		return err
	}
	// Corrected stripes were repaired in the arena; failed stripes were
	// left as received, which is exactly what the per-stripe path
	// contributes for them.
	for s := 0; s < depth; s++ {
		if bres.Words[s].Err != nil {
			res.FailedStripes = append(res.FailedStripes, s)
		} else {
			res.CorrectedSymbols += bres.Words[s].Corrections
		}
		word := c.arena[s*n:]
		for j := 0; j < k; j++ {
			res.Data[j*depth+s] = word[j]
		}
	}
	return nil
}

// DecodeSequence decodes a stream of stored pages through the codec's
// reusable workspace — the page-level form of rs.DecodeStream for
// scrubbing a store page by page. fill is called before each page and
// returns the next stored page plus its erasure positions (a nil page
// ends the stream; a fill error aborts it); each page decodes exactly
// as DecodeTo would, and emit (optional) observes the result, which is
// valid only until the next page. A stable erasure list across pages
// (the located-column list of a scrub pass) hits both the codec's
// split memo and the rs erasure-set cache, so the steady state
// allocates nothing. Returns the number of pages decoded.
func (c *Codec) DecodeSequence(
	fill func() (stored []gf.Elem, erasures []int, err error),
	emit func(page int, res *DecodeResult) error,
) (int, error) {
	if fill == nil {
		return 0, fmt.Errorf("interleave: DecodeSequence needs a fill callback")
	}
	pages := 0
	for {
		stored, ers, err := fill()
		if err != nil {
			return pages, fmt.Errorf("interleave: sequence fill after %d pages: %w", pages, err)
		}
		if stored == nil {
			return pages, nil
		}
		if err := c.DecodeTo(&c.seqRes, stored, ers); err != nil {
			return pages, fmt.Errorf("interleave: sequence page %d: %w", pages, err)
		}
		pages++
		if emit != nil {
			if err := emit(pages-1, &c.seqRes); err != nil {
				return pages, fmt.Errorf("interleave: sequence emit at page %d: %w", pages-1, err)
			}
		}
	}
}

// intsEq reports element-wise equality (order-sensitive, like the
// split it memoizes).
func intsEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}
