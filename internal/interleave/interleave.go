// Package interleave implements block interleaving of Reed-Solomon
// codewords — the memory-page organization of solid-state mass
// memories (paper ref [6]): a page is striped across d codewords so
// that a physical burst (a failed column, a multi-bit upset spanning
// adjacent symbols) lands on at most ceil(burst/d) symbols of any one
// codeword, multiplying the correctable burst length by the
// interleaving depth.
//
// The Page codec composes with internal/rs: data pages of depth*k
// symbols are encoded into depth*n stored symbols laid out
// codeword-interleaved (stored index i belongs to codeword i mod
// depth).
package interleave

import (
	"fmt"

	"repro/internal/gf"
	"repro/internal/rs"
)

// Page is an interleaved page codec: depth independent RS codewords
// striped symbol-by-symbol across the stored page.
type Page struct {
	code  *rs.Code
	depth int
}

// New builds a page codec with the given interleaving depth.
func New(code *rs.Code, depth int) (*Page, error) {
	if code == nil {
		return nil, fmt.Errorf("interleave: nil code")
	}
	if depth <= 0 {
		return nil, fmt.Errorf("interleave: nonpositive depth %d", depth)
	}
	return &Page{code: code, depth: depth}, nil
}

// Code returns the per-stripe Reed-Solomon code.
func (p *Page) Code() *rs.Code { return p.code }

// Depth returns the interleaving depth.
func (p *Page) Depth() int { return p.depth }

// DataSymbols returns the page payload size in symbols: depth*k.
func (p *Page) DataSymbols() int { return p.depth * p.code.K() }

// StoredSymbols returns the stored page size in symbols: depth*n.
func (p *Page) StoredSymbols() int { return p.depth * p.code.N() }

// CorrectableBurst returns the guaranteed-correctable burst length in
// stored symbols when no other faults are present: each codeword
// absorbs t = floor((n-k)/2) random errors, and a burst of length L
// touches at most ceil(L/depth) symbols per codeword, so
// L = depth*t bursts always correct (an L+1 burst can overload one
// stripe).
func (p *Page) CorrectableBurst() int { return p.depth * p.code.T() }

// Encode encodes a page of depth*k data symbols into a stored page of
// depth*n symbols, codeword-interleaved.
func (p *Page) Encode(data []gf.Elem) ([]gf.Elem, error) {
	if len(data) != p.DataSymbols() {
		return nil, fmt.Errorf("interleave: page data has %d symbols, want %d", len(data), p.DataSymbols())
	}
	stored := make([]gf.Elem, p.StoredSymbols())
	stripeData := make([]gf.Elem, p.code.K())
	stripeCW := make([]gf.Elem, p.code.N())
	for s := 0; s < p.depth; s++ {
		for j := 0; j < p.code.K(); j++ {
			stripeData[j] = data[j*p.depth+s]
		}
		if err := p.code.EncodeTo(stripeCW, stripeData); err != nil {
			return nil, err
		}
		for j := 0; j < p.code.N(); j++ {
			stored[j*p.depth+s] = stripeCW[j]
		}
	}
	return stored, nil
}

// DecodeResult reports a page decode.
type DecodeResult struct {
	// Data is the recovered page payload.
	Data []gf.Elem
	// CorrectedSymbols is the total number of symbol corrections
	// across all stripes.
	CorrectedSymbols int
	// FailedStripes lists stripe indices whose codeword was
	// uncorrectable; Data is only trustworthy when empty.
	FailedStripes []int
}

// Decode recovers a stored page. Erasure positions index the stored
// page (0..depth*n-1). Stripes that fail to decode are reported in
// FailedStripes and contribute their received (uncorrected) data
// symbols, mirroring a controller that flags but still returns the
// page.
func (p *Page) Decode(stored []gf.Elem, erasures []int) (*DecodeResult, error) {
	if len(stored) != p.StoredSymbols() {
		return nil, fmt.Errorf("interleave: stored page has %d symbols, want %d", len(stored), p.StoredSymbols())
	}
	perStripe := make([][]int, p.depth)
	for _, e := range erasures {
		if e < 0 || e >= p.StoredSymbols() {
			return nil, fmt.Errorf("interleave: erasure %d out of range [0,%d)", e, p.StoredSymbols())
		}
		stripe := e % p.depth
		perStripe[stripe] = append(perStripe[stripe], e/p.depth)
	}

	res := &DecodeResult{Data: make([]gf.Elem, p.DataSymbols())}
	stripeCW := make([]gf.Elem, p.code.N())
	for s := 0; s < p.depth; s++ {
		for j := 0; j < p.code.N(); j++ {
			stripeCW[j] = stored[j*p.depth+s]
		}
		dec, err := p.code.Decode(stripeCW, perStripe[s])
		if err != nil {
			res.FailedStripes = append(res.FailedStripes, s)
			for j := 0; j < p.code.K(); j++ {
				res.Data[j*p.depth+s] = stripeCW[j]
			}
			continue
		}
		res.CorrectedSymbols += dec.Corrections
		for j := 0; j < p.code.K(); j++ {
			res.Data[j*p.depth+s] = dec.Data[j]
		}
	}
	return res, nil
}
