package reliability

import (
	"math"
	"testing"
)

func TestRateConversions(t *testing.T) {
	if got := PerDayToPerHour(24); got != 1 {
		t.Errorf("PerDayToPerHour(24) = %v", got)
	}
	if got := PerHourToPerDay(1); got != 24 {
		t.Errorf("PerHourToPerDay(1) = %v", got)
	}
	x := 1.7e-5
	if got := PerHourToPerDay(PerDayToPerHour(x)); math.Abs(got-x) > 1e-20 {
		t.Errorf("round trip lost precision: %v", got)
	}
}

func TestScrubRatePerHour(t *testing.T) {
	if got := ScrubRatePerHour(3600); got != 1 {
		t.Errorf("ScrubRatePerHour(3600) = %v, want 1", got)
	}
	if got := ScrubRatePerHour(900); got != 4 {
		t.Errorf("ScrubRatePerHour(900) = %v, want 4", got)
	}
	if got := ScrubRatePerHour(0); got != 0 {
		t.Errorf("ScrubRatePerHour(0) = %v, want 0 (disabled)", got)
	}
	if got := ScrubRatePerHour(-5); got != 0 {
		t.Errorf("ScrubRatePerHour(-5) = %v, want 0", got)
	}
}

func TestDurations(t *testing.T) {
	if Months(1) != 720 {
		t.Errorf("Months(1) = %v, want 720", Months(1))
	}
	if Days(2) != 48 {
		t.Errorf("Days(2) = %v, want 48", Days(2))
	}
	if Months(24) != 17280 {
		t.Errorf("Months(24) = %v", Months(24))
	}
}

func TestHoursRange(t *testing.T) {
	r, err := HoursRange(0, 48, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 12, 24, 36, 48}
	for i := range want {
		if math.Abs(r[i]-want[i]) > 1e-12 {
			t.Errorf("r[%d] = %v, want %v", i, r[i], want[i])
		}
	}
	if _, err := HoursRange(0, 48, 1); err == nil {
		t.Error("count=1 accepted")
	}
	if _, err := HoursRange(48, 0, 5); err == nil {
		t.Error("end<start accepted")
	}
	// Endpoint must be exact despite floating-point stepping.
	r2, _ := HoursRange(0, 17280, 7)
	if r2[6] != 17280 {
		t.Errorf("endpoint = %v, want exactly 17280", r2[6])
	}
}

func TestPaperConstants(t *testing.T) {
	if len(PaperSEURates) != 3 || PaperSEURates[0] != 7.3e-7 || PaperSEURates[2] != 1.7e-5 {
		t.Errorf("PaperSEURates = %v", PaperSEURates)
	}
	if WorstCaseSEURate != 1.7e-5 {
		t.Errorf("WorstCaseSEURate = %v", WorstCaseSEURate)
	}
	if len(PaperPermanentRates) != 7 {
		t.Errorf("PaperPermanentRates has %d entries, want 7 (1e-4..1e-10)", len(PaperPermanentRates))
	}
	for i := 1; i < len(PaperPermanentRates); i++ {
		if PaperPermanentRates[i] >= PaperPermanentRates[i-1] {
			t.Error("PaperPermanentRates must be decreasing")
		}
	}
	if len(PaperScrubPeriods) != 4 || PaperScrubPeriods[0] != 900 || PaperScrubPeriods[3] != 3600 {
		t.Errorf("PaperScrubPeriods = %v", PaperScrubPeriods)
	}
}

func spaceDevice() Device {
	return Device{
		Class:        MOSSRAM,
		Bits:         1 << 20, // 1 Mbit
		Pins:         32,
		JunctionTemp: 40,
		Env:          SpaceFlight,
		Quality:      0.25, // space-grade screening
	}
}

func TestFailureRatePlausibleRange(t *testing.T) {
	d := spaceDevice()
	rate, err := d.FailureRatePerMillionHours()
	if err != nil {
		t.Fatal(err)
	}
	// Space-grade SRAM predictions land in the 1e-3 .. 1 FIT-ish
	// per-million-hours window for this model family.
	if rate <= 0 || rate > 10 {
		t.Errorf("failure rate %v per 1e6 h implausible", rate)
	}
}

func TestFailureRateMonotoneInTemperature(t *testing.T) {
	cold := spaceDevice()
	cold.JunctionTemp = 25
	hot := spaceDevice()
	hot.JunctionTemp = 85
	cr, err := cold.FailureRatePerMillionHours()
	if err != nil {
		t.Fatal(err)
	}
	hr, err := hot.FailureRatePerMillionHours()
	if err != nil {
		t.Fatal(err)
	}
	if hr <= cr {
		t.Errorf("hotter junction must fail more: %v vs %v", hr, cr)
	}
}

func TestFailureRateMonotoneInQualityAndEnv(t *testing.T) {
	d := spaceDevice()
	commercial := d
	commercial.Quality = 10
	dr, _ := d.FailureRatePerMillionHours()
	cr, err := commercial.FailureRatePerMillionHours()
	if err != nil {
		t.Fatal(err)
	}
	if cr <= dr {
		t.Errorf("COTS quality must fail more: %v vs %v", cr, dr)
	}
	airborne := d
	airborne.Env = AirborneInhabitedCargo
	ar, err := airborne.FailureRatePerMillionHours()
	if err != nil {
		t.Fatal(err)
	}
	if ar <= dr {
		t.Errorf("harsher environment must fail more: %v vs %v", ar, dr)
	}
}

func TestFailureRateValidation(t *testing.T) {
	bad := spaceDevice()
	bad.Bits = 0
	if _, err := bad.FailureRatePerMillionHours(); err == nil {
		t.Error("zero capacity accepted")
	}
	bad = spaceDevice()
	bad.Pins = 0
	if _, err := bad.FailureRatePerMillionHours(); err == nil {
		t.Error("zero pins accepted")
	}
	bad = spaceDevice()
	bad.JunctionTemp = -300
	if _, err := bad.FailureRatePerMillionHours(); err == nil {
		t.Error("sub-absolute-zero temperature accepted")
	}
	bad = spaceDevice()
	bad.Quality = -1
	if _, err := bad.FailureRatePerMillionHours(); err == nil {
		t.Error("negative quality accepted")
	}
	bad = spaceDevice()
	bad.Bits = 1 << 31
	if _, err := bad.FailureRatePerMillionHours(); err == nil {
		t.Error("capacity beyond model range accepted")
	}
	bad = spaceDevice()
	bad.Env = Environment(99)
	if _, err := bad.FailureRatePerMillionHours(); err == nil {
		t.Error("unknown environment accepted")
	}
}

func TestDRAMCheaperThanSRAMInC1(t *testing.T) {
	sram := spaceDevice()
	dram := spaceDevice()
	dram.Class = MOSDRAM
	sr, _ := sram.FailureRatePerMillionHours()
	dr, err := dram.FailureRatePerMillionHours()
	if err != nil {
		t.Fatal(err)
	}
	if dr >= sr {
		t.Errorf("DRAM die factor should be below SRAM: %v vs %v", dr, sr)
	}
}

func TestSymbolErasureRatePerDay(t *testing.T) {
	d := spaceDevice()
	rate, err := d.SymbolErasureRatePerDay(8)
	if err != nil {
		t.Fatal(err)
	}
	device, _ := d.FailureRatePerMillionHours()
	want := device / 1e6 * 24 * 8 / float64(d.Bits)
	if math.Abs(rate-want) > 1e-20 {
		t.Errorf("symbol rate %v, want %v", rate, want)
	}
	// The paper sweeps 1e-4..1e-10 per symbol-day; a realistic device
	// must land inside (toward the reliable end of) that band.
	if rate > 1e-4 || rate < 1e-16 {
		t.Errorf("symbol erasure rate %v outside plausible band", rate)
	}
	if _, err := d.SymbolErasureRatePerDay(0); err == nil {
		t.Error("zero symbol width accepted")
	}
	if _, err := d.SymbolErasureRatePerDay(d.Bits + 1); err == nil {
		t.Error("symbol wider than device accepted")
	}
}
