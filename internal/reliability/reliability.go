// Package reliability provides the rate and mission-time conventions
// shared by the memory-system models, plus a simplified
// MIL-HDBK-217-style estimator for the permanent fault rates of
// memory devices (the paper establishes its permanent-fault rates
// "using for example the models of [6], [1]", where [1] is
// MIL-HDBK-217).
//
// Conventions: the models in internal/simplex and internal/duplex work
// in hours. The paper quotes SEU rates per bit per day and sweeps
// permanent-fault rates per symbol per day; the conversion helpers
// here are the single place those units meet.
package reliability

import (
	"fmt"
	"math"
)

// Time conversions. The paper plots Figures 5-7 over hours and
// Figures 8-10 over months of continuous data storage; months are
// taken as 30 days.
const (
	HoursPerDay    = 24.0
	DaysPerMonth   = 30.0
	HoursPerMonth  = HoursPerDay * DaysPerMonth
	SecondsPerHour = 3600.0
)

// PerDayToPerHour converts an event rate from 1/day to 1/hour.
func PerDayToPerHour(r float64) float64 { return r / HoursPerDay }

// PerHourToPerDay converts an event rate from 1/hour to 1/day.
func PerHourToPerDay(r float64) float64 { return r * HoursPerDay }

// ScrubRatePerHour converts a scrubbing period in seconds into the
// exponential scrub rate 1/Tsc per hour used by the Markov models.
// A nonpositive period disables scrubbing (rate 0).
func ScrubRatePerHour(periodSeconds float64) float64 {
	if periodSeconds <= 0 {
		return 0
	}
	return SecondsPerHour / periodSeconds
}

// HoursRange returns count times evenly spaced over [start, end]
// (inclusive). count must be at least 2.
func HoursRange(start, end float64, count int) ([]float64, error) {
	if count < 2 {
		return nil, fmt.Errorf("reliability: need at least 2 points, got %d", count)
	}
	if end < start {
		return nil, fmt.Errorf("reliability: end %v before start %v", end, start)
	}
	out := make([]float64, count)
	step := (end - start) / float64(count-1)
	for i := range out {
		out[i] = start + float64(i)*step
	}
	out[count-1] = end
	return out, nil
}

// Months converts a duration in months to hours.
func Months(m float64) float64 { return m * HoursPerMonth }

// Days converts a duration in days to hours.
func Days(d float64) float64 { return d * HoursPerDay }

// PaperSEURates are the transient fault rates swept by the paper's
// Figures 5 and 6, in errors per bit per day: from the quiet-orbit
// 7.3e-7 up to the worst case 1.7e-5.
var PaperSEURates = []float64{7.3e-7, 3.6e-6, 1.7e-5}

// WorstCaseSEURate is the paper's worst-case scenario (Figure 7).
const WorstCaseSEURate = 1.7e-5

// PaperPermanentRates are the permanent fault rates swept by
// Figures 8-10, per symbol per day.
var PaperPermanentRates = []float64{1e-4, 1e-5, 1e-6, 1e-7, 1e-8, 1e-9, 1e-10}

// PaperScrubPeriods are the scrubbing periods of Figure 7, in seconds.
var PaperScrubPeriods = []float64{900, 1200, 1800, 3600}

// DeviceClass selects the MIL-HDBK-217F part category of a memory
// device for the simplified prediction model below.
type DeviceClass int

const (
	// MOSSRAM covers static MOS RAMs.
	MOSSRAM DeviceClass = iota
	// MOSDRAM covers dynamic MOS RAMs.
	MOSDRAM
)

// Environment selects the MIL-HDBK-217 application environment factor.
type Environment int

const (
	// GroundBenign: laboratory conditions (pi_E = 0.5).
	GroundBenign Environment = iota
	// GroundFixed: permanent ground installation (pi_E = 2).
	GroundFixed
	// SpaceFlight: orbital, the paper's SSMM scenario (pi_E = 0.5 per
	// 217F notice 2 for space flight, benign weightlessness).
	SpaceFlight
	// AirborneInhabitedCargo: transport aircraft (pi_E = 4).
	AirborneInhabitedCargo
)

func (e Environment) factor() (float64, error) {
	switch e {
	case GroundBenign, SpaceFlight:
		return 0.5, nil
	case GroundFixed:
		return 2, nil
	case AirborneInhabitedCargo:
		return 4, nil
	default:
		return 0, fmt.Errorf("reliability: unknown environment %d", e)
	}
}

// Device describes one memory chip for the prediction model.
type Device struct {
	Class        DeviceClass
	Bits         int     // storage capacity in bits
	Pins         int     // package pin count
	JunctionTemp float64 // junction temperature in deg C
	Env          Environment
	Quality      float64 // pi_Q: 0.25 space-grade .. 10 commercial; 0 means 1
}

// c1 returns the die-complexity factor by capacity bucket
// (MIL-HDBK-217F notice 2, MOS memories, table values).
func (d Device) c1() (float64, error) {
	if d.Bits <= 0 {
		return 0, fmt.Errorf("reliability: device capacity %d bits", d.Bits)
	}
	type bucket struct {
		maxBits int
		sram    float64
		dram    float64
	}
	buckets := []bucket{
		{16 << 10, 0.0052, 0.0013},
		{64 << 10, 0.011, 0.0025},
		{256 << 10, 0.021, 0.005},
		{1 << 20, 0.042, 0.01},
		{1 << 24, 0.084, 0.02}, // extrapolated doubling per 4x capacity
		{1 << 30, 0.168, 0.04},
	}
	for _, b := range buckets {
		if d.Bits <= b.maxBits {
			if d.Class == MOSSRAM {
				return b.sram, nil
			}
			return b.dram, nil
		}
	}
	return 0, fmt.Errorf("reliability: device capacity %d bits beyond model range", d.Bits)
}

// FailureRatePerMillionHours predicts the device permanent failure
// rate lambda_p in failures per 1e6 hours using the simplified
// MIL-HDBK-217F form
//
//	lambda_p = (C1*pi_T + C2*pi_E) * pi_Q
//
// with C2 = 2.8e-4 * pins^1.08 (hermetic DIP), the Arrhenius
// temperature factor pi_T = 0.1 * exp(-Ea/k * (1/Tj - 1/298)) at
// Ea = 0.6 eV, and the learning factor folded into pi_Q.
func (d Device) FailureRatePerMillionHours() (float64, error) {
	c1, err := d.c1()
	if err != nil {
		return 0, err
	}
	piE, err := d.Env.factor()
	if err != nil {
		return 0, err
	}
	if d.Pins <= 0 {
		return 0, fmt.Errorf("reliability: device pin count %d", d.Pins)
	}
	tj := d.JunctionTemp + 273.15
	if tj <= 0 {
		return 0, fmt.Errorf("reliability: junction temperature %v C below absolute zero", d.JunctionTemp)
	}
	const (
		ea        = 0.6      // activation energy, eV
		boltzmann = 8.617e-5 // eV/K
		tref      = 298.0    // K
	)
	piT := 0.1 * math.Exp(-ea/boltzmann*(1/tj-1/tref))
	c2 := 2.8e-4 * math.Pow(float64(d.Pins), 1.08)
	piQ := d.Quality
	if piQ == 0 {
		piQ = 1
	}
	if piQ < 0 {
		return 0, fmt.Errorf("reliability: negative quality factor %v", piQ)
	}
	return (c1*piT + c2*piE) * piQ, nil
}

// SymbolErasureRatePerDay apportions a device failure rate to one
// m-bit codeword symbol: permanent faults are assumed uniformly
// distributed over the device's bits, and any fault inside a symbol's
// bits erases that symbol. The result feeds Params.LambdaE (after
// PerDayToPerHour).
func (d Device) SymbolErasureRatePerDay(symbolBits int) (float64, error) {
	if symbolBits <= 0 || symbolBits > d.Bits {
		return 0, fmt.Errorf("reliability: symbol width %d bits incompatible with %d-bit device", symbolBits, d.Bits)
	}
	perMillionHours, err := d.FailureRatePerMillionHours()
	if err != nil {
		return 0, err
	}
	perHour := perMillionHours / 1e6
	perDay := PerHourToPerDay(perHour)
	return perDay * float64(symbolBits) / float64(d.Bits), nil
}
