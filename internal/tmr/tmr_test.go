package tmr

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func relClose(a, b, rel float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= rel*scale
}

func TestVoteCleanAndSingleCorruption(t *testing.T) {
	word := []byte{0xDE, 0xAD, 0xBE, 0xEF}
	a, b, c := Replicate(word)
	voted, disagree, err := Vote(a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(voted, word) {
		t.Error("clean vote changed the word")
	}
	for _, d := range disagree {
		if d != 0 {
			t.Error("clean vote reported disagreement")
		}
	}

	// Corrupt one copy arbitrarily much: majority still wins.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		a, b, c := Replicate(word)
		for i := range a {
			a[i] ^= byte(rng.Intn(256))
		}
		voted, disagree, err := Vote(a, b, c)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(voted, word) {
			t.Fatal("single corrupted copy defeated the vote")
		}
		sawDisagree := false
		for _, d := range disagree {
			if d != 0 {
				sawDisagree = true
			}
		}
		if !sawDisagree && !bytes.Equal(a, word) {
			t.Fatal("corruption not reported in disagreement mask")
		}
	}
}

func TestVoteTwoCopiesSameBitLose(t *testing.T) {
	word := []byte{0x00}
	a, b, c := Replicate(word)
	a[0] ^= 0x10
	b[0] ^= 0x10
	voted, disagree, err := Vote(a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	if voted[0] != 0x10 {
		t.Errorf("voted = %#x, two matching corruptions must win the vote", voted[0])
	}
	if disagree[0]&0x10 == 0 {
		t.Error("disagreement mask missed the outvoted bit")
	}
}

func TestVoteDifferentBitsSurvive(t *testing.T) {
	// Two corrupted copies but on DIFFERENT bits: every bit still has
	// a 2-of-3 correct majority.
	word := []byte{0xFF}
	a, b, c := Replicate(word)
	a[0] ^= 0x01
	b[0] ^= 0x80
	voted, _, err := Vote(a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	if voted[0] != 0xFF {
		t.Errorf("voted = %#x, want 0xFF", voted[0])
	}
}

func TestVoteLengthMismatch(t *testing.T) {
	if _, _, err := Vote([]byte{1}, []byte{1, 2}, []byte{1}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestReplicateIndependence(t *testing.T) {
	word := []byte{1, 2, 3}
	a, b, c := Replicate(word)
	a[0] = 99
	if word[0] != 1 || b[0] != 1 || c[0] != 1 {
		t.Error("Replicate aliases its copies")
	}
}

func TestParamsValidate(t *testing.T) {
	if err := (Params{DataBits: 128, Lambda: 1e-6}).Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	bad := []Params{
		{DataBits: 0},
		{DataBits: 8, Lambda: -1},
		{DataBits: 8, LambdaP: -1},
		{DataBits: 8, ScrubRate: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

// TestBitChainClosedForm: with no scrubbing and no permanent faults,
// the per-bit chain is 0 -> 1 -> Fail with rates 3L and 2L.
func TestBitChainClosedForm(t *testing.T) {
	p := Params{DataBits: 1, Lambda: 2e-4}
	a, b := 3*p.Lambda, 2*p.Lambda
	tt := 300.0
	got, err := BitFailProbabilities(p, []float64{tt})
	if err != nil {
		t.Fatal(err)
	}
	p0 := math.Exp(-a * tt)
	p1 := a / (a - b) * (math.Exp(-b*tt) - math.Exp(-a*tt))
	want := 1 - p0 - p1
	if !relClose(got[0], want, 1e-8) {
		t.Errorf("bit fail = %g, want %g", got[0], want)
	}
}

func TestWordFailFromBits(t *testing.T) {
	p := Params{DataBits: 128, Lambda: 2e-4}
	tt := []float64{100}
	bit, err := BitFailProbabilities(Params{DataBits: 1, Lambda: p.Lambda}, tt)
	if err != nil {
		t.Fatal(err)
	}
	word, err := FailProbabilities(p, tt)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - math.Pow(1-bit[0], 128)
	if !relClose(word[0], want, 1e-10) {
		t.Errorf("word fail = %g, want %g", word[0], want)
	}
}

func TestWordFailPreservesTinyProbabilities(t *testing.T) {
	// At very low rates the word-level combination must not round to
	// zero: 1-(1-p)^n ~ n*p.
	p := Params{DataBits: 128, Lambda: 1e-12}
	got, err := FailProbabilities(p, []float64{48})
	if err != nil {
		t.Fatal(err)
	}
	bit, err := BitFailProbabilities(Params{DataBits: 1, Lambda: 1e-12}, []float64{48})
	if err != nil {
		t.Fatal(err)
	}
	want := 128 * bit[0]
	if got[0] == 0 {
		t.Fatal("tiny word probability truncated to zero")
	}
	if !relClose(got[0], want, 1e-3) {
		t.Errorf("word fail = %g, want ~%g", got[0], want)
	}
}

func TestScrubbingHelpsSoftOnly(t *testing.T) {
	base := Params{DataBits: 128, Lambda: 2e-4}
	plain, err := FailProbabilities(base, []float64{100})
	if err != nil {
		t.Fatal(err)
	}
	base.ScrubRate = 1
	scrubbed, err := FailProbabilities(base, []float64{100})
	if err != nil {
		t.Fatal(err)
	}
	if scrubbed[0] >= plain[0] {
		t.Errorf("scrubbing did not help TMR: %g vs %g", scrubbed[0], plain[0])
	}

	perm := Params{DataBits: 128, LambdaP: 1e-5}
	pp, err := FailProbabilities(perm, []float64{1000})
	if err != nil {
		t.Fatal(err)
	}
	perm.ScrubRate = 10
	ps, err := FailProbabilities(perm, []float64{1000})
	if err != nil {
		t.Fatal(err)
	}
	if !relClose(pp[0], ps[0], 1e-9) {
		t.Errorf("scrub changed permanent-only TMR failure: %g vs %g", ps[0], pp[0])
	}
}

func TestStateString(t *testing.T) {
	if (State{Perm: 1, Soft: 0}).String() != "T(1,0)" {
		t.Error("state string wrong")
	}
	if (State{Fail: true}).String() != "FAIL" {
		t.Error("fail string wrong")
	}
}

func BenchmarkVote128Bytes(b *testing.B) {
	word := make([]byte, 128)
	for i := range word {
		word[i] = byte(i)
	}
	x, y, z := Replicate(word)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Vote(x, y, z); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWordFailProbability(b *testing.B) {
	p := Params{DataBits: 128, Lambda: 2e-4, ScrubRate: 1}
	times := []float64{12, 24, 48}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := FailProbabilities(p, times); err != nil {
			b.Fatal(err)
		}
	}
}
