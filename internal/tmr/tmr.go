// Package tmr implements triple modular redundancy with bit-level
// majority voting — the modular-redundancy baseline the paper's
// introduction positions Reed-Solomon coding against. Three copies of
// every word are stored; a read votes each bit; a scrub rewrites all
// three copies with the voted word.
//
// The package provides the voter and a per-bit CTMC in the paper's
// style: a voted bit fails once two of its three copies are corrupted,
// soft errors scrub away, permanent faults do not. Word-level failure
// probability follows from per-bit independence.
package tmr

import (
	"fmt"
	"math"

	"repro/internal/markov"
)

// Vote returns the bit-level majority of the three equal-length
// copies, plus a disagreement mask (bits where at least one copy
// dissented — the voter's error-detection output).
func Vote(a, b, c []byte) (voted, disagree []byte, err error) {
	if len(a) != len(b) || len(b) != len(c) {
		return nil, nil, fmt.Errorf("tmr: copies have different lengths %d/%d/%d", len(a), len(b), len(c))
	}
	voted = make([]byte, len(a))
	disagree = make([]byte, len(a))
	for i := range a {
		voted[i] = a[i]&b[i] | b[i]&c[i] | a[i]&c[i]
		disagree[i] = (a[i] ^ b[i]) | (b[i] ^ c[i])
	}
	return voted, disagree, nil
}

// Replicate returns three fresh copies of the word.
func Replicate(word []byte) (a, b, c []byte) {
	a = append([]byte(nil), word...)
	b = append([]byte(nil), word...)
	c = append([]byte(nil), word...)
	return a, b, c
}

// Overhead is the storage cost of TMR: three stored bits per data bit.
const Overhead = 3.0

// Params configures the per-bit CTMC of a TMR-protected memory.
// Rates are per hour; DataBits is the protected word width.
type Params struct {
	DataBits  int
	Lambda    float64 // SEU rate per bit per hour (per copy)
	LambdaP   float64 // permanent fault rate per bit per hour (per copy)
	ScrubRate float64 // 1/Tsc per hour; 0 disables scrubbing
}

// State counts corrupted copies of ONE voted bit: soft (scrubbable)
// and permanent. The bit fails once two copies are corrupted (the
// majority flips). Fail is absorbing.
type State struct {
	Perm int
	Soft int
	Fail bool
}

// String renders the state.
func (s State) String() string {
	if s.Fail {
		return "FAIL"
	}
	return fmt.Sprintf("T(%d,%d)", s.Perm, s.Soft)
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.DataBits <= 0 {
		return fmt.Errorf("tmr: nonpositive data width %d", p.DataBits)
	}
	if p.Lambda < 0 || p.LambdaP < 0 || p.ScrubRate < 0 {
		return fmt.Errorf("tmr: negative rate")
	}
	return nil
}

// Transitions implements the per-bit model: three copies, each
// flipping softly at Lambda and failing permanently at LambdaP;
// scrubbing rewrites the voted value, clearing soft corruption while
// stuck bits reassert.
func (p Params) Transitions(s State) []markov.Arc[State] {
	if s.Fail {
		return nil
	}
	healthy := 3 - s.Perm - s.Soft
	fail := State{Fail: true}
	var arcs []markov.Arc[State]
	add := func(to State, rate float64) {
		if rate <= 0 {
			return
		}
		if !to.Fail && to.Perm+to.Soft > 1 {
			to = fail // two corrupted copies flip the majority
		}
		if to != s {
			arcs = append(arcs, markov.Arc[State]{To: to, Rate: rate})
		}
	}
	if healthy > 0 {
		add(State{Perm: s.Perm, Soft: s.Soft + 1}, p.Lambda*float64(healthy))
		add(State{Perm: s.Perm + 1, Soft: s.Soft}, p.LambdaP*float64(healthy))
	}
	if s.Soft > 0 {
		add(State{Perm: s.Perm + 1, Soft: s.Soft - 1}, p.LambdaP*float64(s.Soft))
	}
	if p.ScrubRate > 0 && s.Soft > 0 {
		add(State{Perm: s.Perm, Soft: 0}, p.ScrubRate)
	}
	return arcs
}

// BitFailProbabilities solves the per-bit chain at the given times.
func BitFailProbabilities(p Params, times []float64) ([]float64, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	ex, err := markov.Build(State{}, p.Transitions, 16)
	if err != nil {
		return nil, err
	}
	series, err := ex.Chain.TransientSeries(ex.InitialVector(), times)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(times))
	for i, dist := range series {
		out[i] = ex.ProbabilityOf(dist, func(s State) bool { return s.Fail })
	}
	return out, nil
}

// FailProbabilities returns the probability that a DataBits-wide voted
// word has at least one failed bit at each time: bits fail
// independently, so P_word = 1 - (1-p_bit)^DataBits, computed in
// log space to preserve tiny probabilities.
func FailProbabilities(p Params, times []float64) ([]float64, error) {
	bit, err := BitFailProbabilities(p, times)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(bit))
	for i, pb := range bit {
		// 1-(1-p)^n = -expm1(n*log1p(-p)), accurate for p down to
		// the underflow limit.
		out[i] = -math.Expm1(float64(p.DataBits) * math.Log1p(-pb))
	}
	return out, nil
}
