// Package core is the top-level analysis API of the reproduction: it
// configures a fault-tolerant memory system the way the paper does
// (arrangement x RS code x fault rates x scrubbing), evaluates its
// continuous-time Markov chain transiently, and reports the paper's
// figure of merit
//
//	BER(t) = m * (n-k)/k * P_Fail(t)        (paper Eq. 1)
//
// for any sequence of observation times. The simplex and duplex chain
// structures live in internal/simplex and internal/duplex; unit
// conventions in internal/reliability.
package core

import (
	"fmt"
	"math"

	"repro/internal/duplex"
	"repro/internal/reliability"
	"repro/internal/simplex"
)

// Arrangement selects the memory organization of paper Section 3.
type Arrangement int

const (
	// Simplex is a single RS-coded module.
	Simplex Arrangement = iota
	// Duplex is the paper's replicated arrangement with the
	// erasure-masking, flag-comparing arbiter.
	Duplex
)

// String names the arrangement as in the paper.
func (a Arrangement) String() string {
	switch a {
	case Simplex:
		return "simplex"
	case Duplex:
		return "duplex"
	default:
		return fmt.Sprintf("arrangement(%d)", int(a))
	}
}

// CodeSpec identifies an RS(n,k) code over GF(2^m) symbols.
type CodeSpec struct {
	N int // codeword symbols
	K int // dataword symbols
	M int // bits per symbol
}

// String renders the spec as RS(n,k)/m.
func (c CodeSpec) String() string { return fmt.Sprintf("RS(%d,%d)/m=%d", c.N, c.K, c.M) }

// Validate checks the spec's structural constraints.
func (c CodeSpec) Validate() error {
	switch {
	case c.N <= 0 || c.K <= 0 || c.K >= c.N:
		return fmt.Errorf("core: invalid code RS(%d,%d)", c.N, c.K)
	case c.M <= 0 || c.M > 16:
		return fmt.Errorf("core: invalid symbol width m=%d", c.M)
	case c.N > 1<<uint(c.M)-1:
		return fmt.Errorf("core: n=%d exceeds 2^%d-1", c.N, c.M)
	}
	return nil
}

// RS1816 and RS3616 are the two codes evaluated by the paper, with
// byte symbols.
var (
	RS1816 = CodeSpec{N: 18, K: 16, M: 8}
	RS3616 = CodeSpec{N: 36, K: 16, M: 8}
)

// Config describes one memory system in the paper's own units:
// SEU rate per bit per day, permanent fault (erasure) rate per symbol
// per day, scrubbing period in seconds (0 disables scrubbing).
type Config struct {
	Arrangement Arrangement
	Code        CodeSpec

	SEUPerBitDay        float64
	ErasurePerSymbolDay float64
	ScrubPeriodSeconds  float64

	// DuplexOpts tunes the paper-ambiguous duplex transition rates;
	// the zero value is paper-faithful. Ignored for simplex.
	DuplexOpts duplex.Options
}

// Validate checks the configuration.
func (cfg Config) Validate() error {
	if err := cfg.Code.Validate(); err != nil {
		return err
	}
	switch {
	case cfg.Arrangement != Simplex && cfg.Arrangement != Duplex:
		return fmt.Errorf("core: unknown arrangement %d", int(cfg.Arrangement))
	case cfg.SEUPerBitDay < 0:
		return fmt.Errorf("core: negative SEU rate %g", cfg.SEUPerBitDay)
	case cfg.ErasurePerSymbolDay < 0:
		return fmt.Errorf("core: negative erasure rate %g", cfg.ErasurePerSymbolDay)
	case cfg.ScrubPeriodSeconds < 0:
		return fmt.Errorf("core: negative scrub period %g", cfg.ScrubPeriodSeconds)
	}
	return nil
}

// String summarizes the configuration for reports and plots.
func (cfg Config) String() string {
	scrub := "no scrub"
	if cfg.ScrubPeriodSeconds > 0 {
		scrub = fmt.Sprintf("Tsc=%gs", cfg.ScrubPeriodSeconds)
	}
	return fmt.Sprintf("%s %s lambda=%g/bit/day lambdaE=%g/sym/day %s",
		cfg.Arrangement, cfg.Code, cfg.SEUPerBitDay, cfg.ErasurePerSymbolDay, scrub)
}

// BERFromFailProbability applies paper Eq. (1) to one fail-state
// probability.
func BERFromFailProbability(code CodeSpec, pfail float64) float64 {
	return float64(code.M) * float64(code.N-code.K) / float64(code.K) * pfail
}

// Curve is an evaluated BER trajectory.
type Curve struct {
	Config Config
	Hours  []float64 // observation times
	PFail  []float64 // chain fail-state probability at each time
	BER    []float64 // paper Eq. (1) applied to PFail
}

// Evaluate builds the configured system's Markov chain, solves it at
// the given times (hours, nondecreasing) and returns the BER curve.
func Evaluate(cfg Config, hours []float64) (*Curve, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pfail, err := failProbabilities(cfg, hours)
	if err != nil {
		return nil, err
	}
	curve := &Curve{
		Config: cfg,
		Hours:  append([]float64(nil), hours...),
		PFail:  pfail,
		BER:    make([]float64, len(pfail)),
	}
	for i, p := range pfail {
		curve.BER[i] = BERFromFailProbability(cfg.Code, p)
	}
	return curve, nil
}

func failProbabilities(cfg Config, hours []float64) ([]float64, error) {
	lambda := reliability.PerDayToPerHour(cfg.SEUPerBitDay)
	lambdaE := reliability.PerDayToPerHour(cfg.ErasurePerSymbolDay)
	scrub := reliability.ScrubRatePerHour(cfg.ScrubPeriodSeconds)
	switch cfg.Arrangement {
	case Simplex:
		return simplex.FailProbabilities(simplex.Params{
			N: cfg.Code.N, K: cfg.Code.K, M: cfg.Code.M,
			Lambda: lambda, LambdaE: lambdaE, ScrubRate: scrub,
		}, hours)
	case Duplex:
		return duplex.FailProbabilities(duplex.Params{
			N: cfg.Code.N, K: cfg.Code.K, M: cfg.Code.M,
			Lambda: lambda, LambdaE: lambdaE, ScrubRate: scrub,
			Opts: cfg.DuplexOpts,
		}, hours)
	default:
		return nil, fmt.Errorf("core: unknown arrangement %d", int(cfg.Arrangement))
	}
}

// MTTDL returns the mean time to data loss of one protected word in
// hours: the expected first-passage time of the configured chain from
// the Good state into Fail. A system whose chain cannot reach Fail
// (no fault processes configured) returns +Inf.
func MTTDL(cfg Config) (float64, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	lambda := reliability.PerDayToPerHour(cfg.SEUPerBitDay)
	lambdaE := reliability.PerDayToPerHour(cfg.ErasurePerSymbolDay)
	scrub := reliability.ScrubRatePerHour(cfg.ScrubPeriodSeconds)
	switch cfg.Arrangement {
	case Simplex:
		ex, err := simplex.Build(simplex.Params{
			N: cfg.Code.N, K: cfg.Code.K, M: cfg.Code.M,
			Lambda: lambda, LambdaE: lambdaE, ScrubRate: scrub,
		})
		if err != nil {
			return 0, err
		}
		if _, ok := ex.Index[simplex.State{Fail: true}]; !ok {
			return math.Inf(1), nil
		}
		mtta, err := ex.Chain.MeanTimeToAbsorption()
		if err != nil {
			return 0, err
		}
		return mtta[0], nil
	case Duplex:
		ex, err := duplex.Build(duplex.Params{
			N: cfg.Code.N, K: cfg.Code.K, M: cfg.Code.M,
			Lambda: lambda, LambdaE: lambdaE, ScrubRate: scrub,
			Opts: cfg.DuplexOpts,
		})
		if err != nil {
			return 0, err
		}
		if _, ok := ex.Index[duplex.State{Fail: true}]; !ok {
			return math.Inf(1), nil
		}
		mtta, err := ex.Chain.MeanTimeToAbsorption()
		if err != nil {
			return 0, err
		}
		return mtta[0], nil
	default:
		return 0, fmt.Errorf("core: unknown arrangement %d", int(cfg.Arrangement))
	}
}

// StateCount reports the size of the explored state space for the
// configuration — a diagnostic the paper discusses (state explosion is
// why it models a single word).
func StateCount(cfg Config) (int, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	lambda := reliability.PerDayToPerHour(cfg.SEUPerBitDay)
	lambdaE := reliability.PerDayToPerHour(cfg.ErasurePerSymbolDay)
	scrub := reliability.ScrubRatePerHour(cfg.ScrubPeriodSeconds)
	switch cfg.Arrangement {
	case Simplex:
		ex, err := simplex.Build(simplex.Params{
			N: cfg.Code.N, K: cfg.Code.K, M: cfg.Code.M,
			Lambda: lambda, LambdaE: lambdaE, ScrubRate: scrub,
		})
		if err != nil {
			return 0, err
		}
		return ex.Chain.NumStates(), nil
	default:
		ex, err := duplex.Build(duplex.Params{
			N: cfg.Code.N, K: cfg.Code.K, M: cfg.Code.M,
			Lambda: lambda, LambdaE: lambdaE, ScrubRate: scrub,
			Opts: cfg.DuplexOpts,
		})
		if err != nil {
			return 0, err
		}
		return ex.Chain.NumStates(), nil
	}
}
