package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/duplex"
	"repro/internal/reliability"
)

func relClose(a, b, rel float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= rel*scale
}

func TestCodeSpecValidate(t *testing.T) {
	if err := RS1816.Validate(); err != nil {
		t.Errorf("RS1816 invalid: %v", err)
	}
	if err := RS3616.Validate(); err != nil {
		t.Errorf("RS3616 invalid: %v", err)
	}
	bad := []CodeSpec{
		{N: 0, K: 0, M: 8},
		{N: 18, K: 18, M: 8},
		{N: 18, K: 16, M: 0},
		{N: 18, K: 16, M: 17},
		{N: 300, K: 16, M: 8},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("invalid spec accepted: %+v", c)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	good := Config{Arrangement: Simplex, Code: RS1816, SEUPerBitDay: 1e-5}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Arrangement: Arrangement(9), Code: RS1816},
		{Arrangement: Simplex, Code: CodeSpec{N: 5, K: 5, M: 8}},
		{Arrangement: Simplex, Code: RS1816, SEUPerBitDay: -1},
		{Arrangement: Simplex, Code: RS1816, ErasurePerSymbolDay: -1},
		{Arrangement: Simplex, Code: RS1816, ScrubPeriodSeconds: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestStrings(t *testing.T) {
	if Simplex.String() != "simplex" || Duplex.String() != "duplex" {
		t.Error("arrangement names wrong")
	}
	if !strings.Contains(Arrangement(7).String(), "7") {
		t.Error("unknown arrangement String should include the value")
	}
	if RS1816.String() != "RS(18,16)/m=8" {
		t.Errorf("CodeSpec.String = %q", RS1816.String())
	}
	cfg := Config{Arrangement: Duplex, Code: RS1816, SEUPerBitDay: 1.7e-5, ScrubPeriodSeconds: 900}
	s := cfg.String()
	for _, want := range []string{"duplex", "RS(18,16)", "1.7e-05", "Tsc=900s"} {
		if !strings.Contains(s, want) {
			t.Errorf("Config.String() = %q missing %q", s, want)
		}
	}
	noScrub := Config{Arrangement: Simplex, Code: RS1816}
	if !strings.Contains(noScrub.String(), "no scrub") {
		t.Errorf("Config.String() = %q missing scrub state", noScrub.String())
	}
}

func TestBERFromFailProbability(t *testing.T) {
	// Eq (1): BER = m*(n-k)/k * P. For RS(18,16)/m=8: 8*2/16 = 1.
	if got := BERFromFailProbability(RS1816, 0.5); !relClose(got, 0.5, 1e-15) {
		t.Errorf("RS1816 BER factor: got %v, want 0.5", got)
	}
	// For RS(36,16)/m=8: 8*20/16 = 10.
	if got := BERFromFailProbability(RS3616, 0.01); !relClose(got, 0.1, 1e-15) {
		t.Errorf("RS3616 BER factor: got %v, want 0.1", got)
	}
}

func TestEvaluateSimplexMatchesPaperMagnitudes(t *testing.T) {
	// Figure 5 anchor points: worst-case SEU rate at 48 h sits in the
	// 1e-5 decade; the quiet rate in the 1e-8 decade.
	hours := []float64{24, 48}
	worst, err := Evaluate(Config{Arrangement: Simplex, Code: RS1816, SEUPerBitDay: 1.7e-5}, hours)
	if err != nil {
		t.Fatal(err)
	}
	if worst.BER[1] < 5e-6 || worst.BER[1] > 5e-5 {
		t.Errorf("worst-case simplex BER(48h) = %g, want ~1.1e-5", worst.BER[1])
	}
	quiet, err := Evaluate(Config{Arrangement: Simplex, Code: RS1816, SEUPerBitDay: 7.3e-7}, hours)
	if err != nil {
		t.Fatal(err)
	}
	if quiet.BER[1] < 5e-9 || quiet.BER[1] > 1e-7 {
		t.Errorf("quiet simplex BER(48h) = %g, want ~2e-8", quiet.BER[1])
	}
}

func TestEvaluateFig7ScrubAnchor(t *testing.T) {
	// The paper's Fig 7 conclusion: duplex RS(18,16) at the worst-case
	// SEU rate stays below BER 1e-6 with hourly scrubbing.
	hours := []float64{48}
	cfg := Config{
		Arrangement:        Duplex,
		Code:               RS1816,
		SEUPerBitDay:       reliability.WorstCaseSEURate,
		ScrubPeriodSeconds: 3600,
	}
	curve, err := Evaluate(cfg, hours)
	if err != nil {
		t.Fatal(err)
	}
	if curve.BER[0] >= 1e-6 {
		t.Errorf("BER(48h) with hourly scrub = %g, want < 1e-6", curve.BER[0])
	}
	if curve.BER[0] < 1e-8 {
		t.Errorf("BER(48h) with hourly scrub = %g, implausibly small", curve.BER[0])
	}
	// Without scrubbing the same system must exceed 1e-6.
	cfg.ScrubPeriodSeconds = 0
	bare, err := Evaluate(cfg, hours)
	if err != nil {
		t.Fatal(err)
	}
	if bare.BER[0] <= 1e-6 {
		t.Errorf("unscrubbed duplex BER(48h) = %g, want > 1e-6", bare.BER[0])
	}
}

func TestEvaluateFigs8to10Ordering(t *testing.T) {
	// At any permanent-fault rate and long storage, the paper's
	// ordering must hold: simplex RS(18,16) >> duplex RS(18,16) >>
	// simplex RS(36,16).
	hours := []float64{reliability.Months(24)}
	for _, rate := range []float64{1e-4, 1e-6, 1e-8} {
		s18, err := Evaluate(Config{Arrangement: Simplex, Code: RS1816, ErasurePerSymbolDay: rate}, hours)
		if err != nil {
			t.Fatal(err)
		}
		d18, err := Evaluate(Config{Arrangement: Duplex, Code: RS1816, ErasurePerSymbolDay: rate}, hours)
		if err != nil {
			t.Fatal(err)
		}
		s36, err := Evaluate(Config{Arrangement: Simplex, Code: RS3616, ErasurePerSymbolDay: rate}, hours)
		if err != nil {
			t.Fatal(err)
		}
		if !(s18.BER[0] > d18.BER[0]) {
			t.Errorf("rate %g: simplex18 %g not worse than duplex18 %g", rate, s18.BER[0], d18.BER[0])
		}
		if !(d18.BER[0] > s36.BER[0]) {
			t.Errorf("rate %g: duplex18 %g not worse than simplex36 %g", rate, d18.BER[0], s36.BER[0])
		}
	}
}

func TestEvaluateCurveShape(t *testing.T) {
	hours := []float64{0, 12, 24, 48}
	curve, err := Evaluate(Config{Arrangement: Duplex, Code: RS1816, SEUPerBitDay: 3.6e-6}, hours)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve.BER) != 4 || len(curve.PFail) != 4 || len(curve.Hours) != 4 {
		t.Fatal("curve length mismatch")
	}
	if curve.BER[0] != 0 {
		t.Errorf("BER(0) = %g", curve.BER[0])
	}
	for i := 1; i < 4; i++ {
		if curve.BER[i] < curve.BER[i-1] {
			t.Error("BER not monotone without repair")
		}
		if !relClose(curve.BER[i], BERFromFailProbability(RS1816, curve.PFail[i]), 1e-15) {
			t.Error("BER inconsistent with PFail")
		}
	}
}

func TestEvaluateValidation(t *testing.T) {
	if _, err := Evaluate(Config{Arrangement: Arrangement(5), Code: RS1816}, []float64{1}); err == nil {
		t.Error("invalid arrangement accepted")
	}
	if _, err := Evaluate(Config{Arrangement: Simplex, Code: RS1816}, []float64{5, 1}); err == nil {
		t.Error("decreasing times accepted")
	}
}

func TestEvaluateDoesNotAliasInput(t *testing.T) {
	hours := []float64{0, 10}
	curve, err := Evaluate(Config{Arrangement: Simplex, Code: RS1816, SEUPerBitDay: 1e-6}, hours)
	if err != nil {
		t.Fatal(err)
	}
	hours[0] = 999
	if curve.Hours[0] == 999 {
		t.Error("curve aliases caller's time slice")
	}
}

func TestStateCount(t *testing.T) {
	n, err := StateCount(Config{Arrangement: Simplex, Code: RS1816, SEUPerBitDay: 1e-6, ErasurePerSymbolDay: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Errorf("simplex RS(18,16) state count = %d, want 5", n)
	}
	d, err := StateCount(Config{Arrangement: Duplex, Code: RS1816, SEUPerBitDay: 1e-6, ErasurePerSymbolDay: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if d <= n {
		t.Errorf("duplex state space (%d) should exceed simplex (%d)", d, n)
	}
	if _, err := StateCount(Config{Arrangement: Simplex, Code: CodeSpec{N: 1, K: 1, M: 8}}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestDuplexOptsPlumbing(t *testing.T) {
	hours := []float64{48}
	strict := Config{Arrangement: Duplex, Code: RS1816, SEUPerBitDay: 1.7e-5}
	relaxed := strict
	relaxed.DuplexOpts = duplex.Options{EitherWordSuffices: true}
	s, err := Evaluate(strict, hours)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Evaluate(relaxed, hours)
	if err != nil {
		t.Fatal(err)
	}
	if r.BER[0] >= s.BER[0] {
		t.Errorf("DuplexOpts not plumbed through: relaxed %g vs strict %g", r.BER[0], s.BER[0])
	}
}

func TestMTTDL(t *testing.T) {
	// Pure SEU simplex has a closed form: stages at rates a=m*l*n and
	// b=m*l*(n-1), MTTDL = 1/a + 1/b.
	lambdaDay := 1e-3
	cfg := Config{Arrangement: Simplex, Code: RS1816, SEUPerBitDay: lambdaDay}
	got, err := MTTDL(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l := lambdaDay / 24
	a := 8 * l * 18
	bRate := 8 * l * 17
	want := 1/a + 1/bRate
	if !relClose(got, want, 1e-10) {
		t.Errorf("MTTDL = %v, want %v", got, want)
	}

	// Scrubbing must extend MTTDL.
	scrubbed := cfg
	scrubbed.ScrubPeriodSeconds = 3600
	gs, err := MTTDL(scrubbed)
	if err != nil {
		t.Fatal(err)
	}
	if gs <= got {
		t.Errorf("scrubbing did not extend MTTDL: %v vs %v", gs, got)
	}

	// Duplex must beat simplex under permanent faults.
	sPerm := Config{Arrangement: Simplex, Code: RS1816, ErasurePerSymbolDay: 1e-5}
	dPerm := Config{Arrangement: Duplex, Code: RS1816, ErasurePerSymbolDay: 1e-5}
	sm, err := MTTDL(sPerm)
	if err != nil {
		t.Fatal(err)
	}
	dm, err := MTTDL(dPerm)
	if err != nil {
		t.Fatal(err)
	}
	// The duplex advantage shows up as a modest MTTDL factor (~4x):
	// means are set by the lambdaE*t ~ 1 bulk, not by the early tail
	// where the BER figures live. (A sanity check, and a caution
	// against summarizing the paper's results by MTTDL alone.)
	if dm <= 2*sm {
		t.Errorf("duplex MTTDL %v not clearly beyond simplex %v under permanent faults", dm, sm)
	}

	// No fault processes: infinite MTTDL.
	quiet := Config{Arrangement: Simplex, Code: RS1816}
	qm, err := MTTDL(quiet)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(qm, 1) {
		t.Errorf("fault-free MTTDL = %v, want +Inf", qm)
	}

	if _, err := MTTDL(Config{Arrangement: Arrangement(9), Code: RS1816}); err == nil {
		t.Error("invalid config accepted")
	}
}

func BenchmarkEvaluateSimplex(b *testing.B) {
	hours := []float64{6, 12, 24, 48}
	cfg := Config{Arrangement: Simplex, Code: RS1816, SEUPerBitDay: 1.7e-5}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Evaluate(cfg, hours); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvaluateDuplexScrubbed(b *testing.B) {
	hours := []float64{6, 12, 24, 48}
	cfg := Config{Arrangement: Duplex, Code: RS1816, SEUPerBitDay: 1.7e-5, ScrubPeriodSeconds: 900}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Evaluate(cfg, hours); err != nil {
			b.Fatal(err)
		}
	}
}
