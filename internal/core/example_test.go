package core_test

import (
	"fmt"

	"repro/internal/core"
)

// ExampleEvaluate reproduces the paper's Figure 7 conclusion: the
// duplex RS(18,16) system under the worst-case SEU environment stays
// below BER 1e-6 with hourly scrubbing.
func ExampleEvaluate() {
	cfg := core.Config{
		Arrangement:        core.Duplex,
		Code:               core.RS1816,
		SEUPerBitDay:       1.7e-5,
		ScrubPeriodSeconds: 3600,
	}
	curve, err := core.Evaluate(cfg, []float64{48})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("BER(48h) below 1e-6: %v\n", curve.BER[0] < 1e-6)

	// Output:
	// BER(48h) below 1e-6: true
}

// ExampleBERFromFailProbability shows the paper's Eq. (1) prefactor:
// for RS(18,16) with byte symbols it is exactly 1.
func ExampleBERFromFailProbability() {
	fmt.Println(core.BERFromFailProbability(core.RS1816, 0.25))
	fmt.Println(core.BERFromFailProbability(core.RS3616, 0.25))

	// Output:
	// 0.25
	// 2.5
}
