package simplex

import (
	"math"
	"testing"
)

func relClose(a, b, rel float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= rel*scale
}

func baseParams() Params {
	return Params{N: 18, K: 16, M: 8, Lambda: 1e-5, LambdaE: 1e-6}
}

func TestValidate(t *testing.T) {
	good := baseParams()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	cases := []func(*Params){
		func(p *Params) { p.N = 0 },
		func(p *Params) { p.K = 0 },
		func(p *Params) { p.K = p.N },
		func(p *Params) { p.M = 0 },
		func(p *Params) { p.M = 17 },
		func(p *Params) { p.N = 300; p.M = 8 },
		func(p *Params) { p.Lambda = -1 },
		func(p *Params) { p.LambdaE = -1 },
		func(p *Params) { p.ScrubRate = -1 },
	}
	for i, mut := range cases {
		p := baseParams()
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted: %+v", i, p)
		}
	}
}

func TestStateString(t *testing.T) {
	if got := (State{Er: 2, Re: 1}).String(); got != "S(2,1)" {
		t.Errorf("String = %q", got)
	}
	if got := (State{Fail: true}).String(); got != "FAIL" {
		t.Errorf("String = %q", got)
	}
}

func TestStateSpaceRS1816(t *testing.T) {
	// er + 2re <= 2: S(0,0), S(1,0), S(2,0), S(0,1); plus FAIL = 5.
	ex, err := Build(baseParams())
	if err != nil {
		t.Fatal(err)
	}
	if got := ex.Chain.NumStates(); got != 5 {
		t.Errorf("state count = %d, want 5", got)
	}
	wantStates := []State{{}, {Er: 1}, {Er: 2}, {Re: 1}, {Fail: true}}
	for _, w := range wantStates {
		if _, ok := ex.Index[w]; !ok {
			t.Errorf("state %v not explored", w)
		}
	}
}

func TestStateSpaceSEUOnly(t *testing.T) {
	p := baseParams()
	p.LambdaE = 0
	ex, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	// S(0,0), S(0,1), FAIL.
	if got := ex.Chain.NumStates(); got != 3 {
		t.Errorf("state count = %d, want 3", got)
	}
}

func TestStateSpaceRS3616Count(t *testing.T) {
	p := Params{N: 36, K: 16, M: 8, Lambda: 1e-5, LambdaE: 1e-6}
	ex, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	// Triangular count: er + 2re <= 20 -> sum_{re=0..10} (21-2re) = 121,
	// plus FAIL.
	if got := ex.Chain.NumStates(); got != 122 {
		t.Errorf("state count = %d, want 122", got)
	}
}

func TestAllExploredStatesRecoverable(t *testing.T) {
	p := Params{N: 36, K: 16, M: 8, Lambda: 1e-5, LambdaE: 1e-6, ScrubRate: 1}
	ex, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range ex.States {
		if s.Fail {
			continue
		}
		if !p.recoverable(s.Er, s.Re) {
			t.Errorf("unrecoverable non-fail state %v explored", s)
		}
		if s.Er < 0 || s.Re < 0 || s.Er+s.Re > p.N {
			t.Errorf("structurally impossible state %v", s)
		}
	}
}

// TestPureSEUClosedForm verifies the chain against the analytic
// solution of the 3-state pure-death chain: Good -> 1 error -> Fail
// with rates a = m*lambda*n and b = m*lambda*(n-1).
func TestPureSEUClosedForm(t *testing.T) {
	p := Params{N: 18, K: 16, M: 8, Lambda: 2e-4} // LambdaE = 0
	a := float64(p.M) * p.Lambda * float64(p.N)
	b := float64(p.M) * p.Lambda * float64(p.N-1)
	for _, tt := range []float64{1, 10, 48, 500} {
		got, err := FailProbabilities(p, []float64{tt})
		if err != nil {
			t.Fatal(err)
		}
		p0 := math.Exp(-a * tt)
		p1 := a / (a - b) * (math.Exp(-b*tt) - math.Exp(-a*tt))
		want := 1 - p0 - p1
		if !relClose(got[0], want, 1e-8) {
			t.Errorf("t=%v: P_fail = %g, want %g", tt, got[0], want)
		}
	}
}

// TestPureErasureClosedForm: with lambda = 0, the chain is a pure
// death process on er through n-k+1 stages with rates
// lambdaE*(n-er).
func TestPureErasureClosedForm(t *testing.T) {
	p := Params{N: 18, K: 16, M: 8, LambdaE: 1e-3}
	r0 := p.LambdaE * 18
	r1 := p.LambdaE * 17
	r2 := p.LambdaE * 16
	tt := 100.0
	got, err := FailProbabilities(p, []float64{tt})
	if err != nil {
		t.Fatal(err)
	}
	// Hypoexponential(r0,r1,r2) CDF via partial fractions.
	cdf := 1 -
		(r1*r2/((r1-r0)*(r2-r0)))*math.Exp(-r0*tt) -
		(r0*r2/((r0-r1)*(r2-r1)))*math.Exp(-r1*tt) -
		(r0*r1/((r0-r2)*(r1-r2)))*math.Exp(-r2*tt)
	if !relClose(got[0], cdf, 1e-7) {
		t.Errorf("P_fail = %g, want %g", got[0], cdf)
	}
}

func TestFailMonotonicInTime(t *testing.T) {
	p := baseParams()
	times := []float64{0, 1, 5, 24, 48, 200}
	got, err := FailProbabilities(p, times)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 {
		t.Errorf("P_fail(0) = %g, want 0", got[0])
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Errorf("P_fail not monotone: %g after %g", got[i], got[i-1])
		}
	}
}

func TestFailMonotonicInRates(t *testing.T) {
	base := baseParams()
	lo, err := FailProbabilities(base, []float64{48})
	if err != nil {
		t.Fatal(err)
	}
	hi := base
	hi.Lambda *= 10
	hiP, err := FailProbabilities(hi, []float64{48})
	if err != nil {
		t.Fatal(err)
	}
	if hiP[0] <= lo[0] {
		t.Errorf("10x SEU rate did not increase P_fail: %g vs %g", hiP[0], lo[0])
	}
	he := base
	he.LambdaE *= 10
	heP, err := FailProbabilities(he, []float64{48})
	if err != nil {
		t.Fatal(err)
	}
	if heP[0] <= lo[0] {
		t.Errorf("10x erasure rate did not increase P_fail: %g vs %g", heP[0], lo[0])
	}
}

func TestScrubbingReducesFailProbability(t *testing.T) {
	noScrub := Params{N: 18, K: 16, M: 8, Lambda: 1e-4}
	base, err := FailProbabilities(noScrub, []float64{48})
	if err != nil {
		t.Fatal(err)
	}
	prev := base[0]
	// Faster scrubbing must monotonically reduce P_fail.
	for _, rate := range []float64{0.5, 1, 2, 4} {
		p := noScrub
		p.ScrubRate = rate
		got, err := FailProbabilities(p, []float64{48})
		if err != nil {
			t.Fatal(err)
		}
		if got[0] >= prev {
			t.Errorf("scrub rate %v did not reduce P_fail: %g vs %g", rate, got[0], prev)
		}
		prev = got[0]
	}
}

func TestScrubbingDoesNotHelpPermanentFaults(t *testing.T) {
	// With lambda = 0 every fault is permanent; scrubbing must be a
	// no-op on the fail probability.
	p := Params{N: 18, K: 16, M: 8, LambdaE: 1e-4}
	base, err := FailProbabilities(p, []float64{720})
	if err != nil {
		t.Fatal(err)
	}
	p.ScrubRate = 10
	scrubbed, err := FailProbabilities(p, []float64{720})
	if err != nil {
		t.Fatal(err)
	}
	if !relClose(base[0], scrubbed[0], 1e-9) {
		t.Errorf("scrubbing changed permanent-fault-only P_fail: %g vs %g", scrubbed[0], base[0])
	}
}

func TestErasureSubsumesRandomError(t *testing.T) {
	// From S(0,1) an erasure on the errored symbol must lead to
	// S(1,0), not S(1,1).
	p := baseParams()
	ex, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	from := ex.Index[State{Re: 1}]
	to := ex.Index[State{Er: 1}]
	found := false
	for _, tr := range ex.Chain.Transitions(from) {
		if tr.To == to && relClose(tr.Rate, p.LambdaE, 1e-12) {
			found = true
		}
	}
	if !found {
		t.Error("S(0,1) -> S(1,0) erasure-subsumption transition missing or has wrong rate")
	}
}

func TestFailProbabilityIsZeroWithoutFaults(t *testing.T) {
	p := Params{N: 18, K: 16, M: 8}
	got, err := FailProbabilities(p, []float64{0, 1000})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 || got[1] != 0 {
		t.Errorf("fault-free system failed: %v", got)
	}
}

func TestBuildRejectsInvalid(t *testing.T) {
	if _, err := Build(Params{N: 5, K: 5, M: 8}); err == nil {
		t.Error("Build accepted invalid params")
	}
	if _, err := FailProbabilities(Params{N: 5, K: 5, M: 8}, []float64{1}); err == nil {
		t.Error("FailProbabilities accepted invalid params")
	}
}

func BenchmarkBuildRS3616(b *testing.B) {
	p := Params{N: 36, K: 16, M: 8, Lambda: 1e-5, LambdaE: 1e-6, ScrubRate: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Build(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFailProbabilities48h(b *testing.B) {
	p := Params{N: 18, K: 16, M: 8, Lambda: 1e-5, LambdaE: 1e-6, ScrubRate: 1}
	times := []float64{6, 12, 24, 48}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := FailProbabilities(p, times); err != nil {
			b.Fatal(err)
		}
	}
}
