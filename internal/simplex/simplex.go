// Package simplex implements the continuous-time Markov chain model
// of a simplex RS(n,k)-coded memory word (paper Section 5, Figure 2,
// after Cardarilli et al. [7]).
//
// A state S(er, re) counts er erased symbols (located permanent
// faults) and re symbols holding random errors (SEU bit flips) in one
// stored codeword. The word remains recoverable while
//
//	er + 2*re <= n - k;
//
// any event pushing the pattern beyond that bound moves the chain to
// the absorbing Fail state, whose probability feeds the paper's BER
// metric (Eq. 1). Scrubbing, when enabled, is the exponential
// transition S(er, re) -> S(er, 0) at rate 1/Tsc: it rewrites corrected
// data, clearing transient errors but not permanent faults.
package simplex

import (
	"fmt"

	"repro/internal/markov"
)

// State identifies one Markov state of the simplex model. The zero
// value is the initial Good state S(0,0).
type State struct {
	Er   int  // erased symbols (located permanent faults)
	Re   int  // symbols with random errors
	Fail bool // absorbing unrecoverable state
}

// String renders the state in the paper's S(er,re) notation.
func (s State) String() string {
	if s.Fail {
		return "FAIL"
	}
	return fmt.Sprintf("S(%d,%d)", s.Er, s.Re)
}

var fail = State{Fail: true}

// Params configures the simplex model. All rates are per hour; use
// internal/reliability to convert from the paper's per-day figures.
type Params struct {
	N int // codeword symbols
	K int // dataword symbols
	M int // bits per symbol

	Lambda    float64 // SEU rate per bit per hour
	LambdaE   float64 // erasure (permanent fault) rate per symbol per hour
	ScrubRate float64 // scrub rate 1/Tsc per hour; 0 disables scrubbing
}

// Validate checks structural and rate sanity.
func (p Params) Validate() error {
	switch {
	case p.N <= 0 || p.K <= 0 || p.K >= p.N:
		return fmt.Errorf("simplex: invalid code RS(%d,%d)", p.N, p.K)
	case p.M <= 0 || p.M > 16:
		return fmt.Errorf("simplex: invalid symbol width m=%d", p.M)
	case p.N > 1<<uint(p.M)-1:
		return fmt.Errorf("simplex: n=%d exceeds 2^%d-1", p.N, p.M)
	case p.Lambda < 0 || p.LambdaE < 0 || p.ScrubRate < 0:
		return fmt.Errorf("simplex: negative rate (lambda=%g lambdaE=%g scrub=%g)",
			p.Lambda, p.LambdaE, p.ScrubRate)
	}
	return nil
}

// recoverable reports the paper's boundary condition er + 2*re <= n-k.
func (p Params) recoverable(er, re int) bool {
	return er+2*re <= p.N-p.K
}

// guard maps a candidate successor to itself when still recoverable
// and to Fail otherwise.
func (p Params) guard(s State) State {
	if s.Fail || !p.recoverable(s.Er, s.Re) {
		return fail
	}
	return s
}

// Transitions returns the outgoing arcs of a state, implementing the
// events of paper Section 4: SEU bit flips on clean symbols, erasures
// on clean symbols, erasures overtaking symbols already in error
// (the permanent fault is then located and the random error is
// subsumed), and scrubbing. Bit flips on already erased or already
// erroneous symbols do not change the state (the former is dominated
// by the erasure, the latter is excluded by the paper's assumptions).
func (p Params) Transitions(s State) []markov.Arc[State] {
	if s.Fail {
		return nil // absorbing
	}
	clean := p.N - s.Er - s.Re
	arcs := make([]markov.Arc[State], 0, 4)

	// SEU on a clean symbol: re+1. m*lambda per symbol.
	if clean > 0 && p.Lambda > 0 {
		arcs = append(arcs, markov.Arc[State]{
			To:   p.guard(State{Er: s.Er, Re: s.Re + 1}),
			Rate: float64(p.M) * p.Lambda * float64(clean),
		})
	}
	// Erasure on a clean symbol: er+1.
	if clean > 0 && p.LambdaE > 0 {
		arcs = append(arcs, markov.Arc[State]{
			To:   p.guard(State{Er: s.Er + 1, Re: s.Re}),
			Rate: p.LambdaE * float64(clean),
		})
	}
	// Erasure on a symbol already holding a random error: the located
	// permanent fault subsumes the error (er+1, re-1). This never
	// violates the bound when the source state satisfied it.
	if s.Re > 0 && p.LambdaE > 0 {
		arcs = append(arcs, markov.Arc[State]{
			To:   p.guard(State{Er: s.Er + 1, Re: s.Re - 1}),
			Rate: p.LambdaE * float64(s.Re),
		})
	}
	// Scrubbing: clears random errors, keeps permanent faults.
	if p.ScrubRate > 0 && s.Re > 0 {
		arcs = append(arcs, markov.Arc[State]{
			To:   State{Er: s.Er, Re: 0},
			Rate: p.ScrubRate,
		})
	}
	return arcs
}

// maxStates bounds exploration: all (er, re) with er+2re <= n-k, plus
// Fail, is a triangular set of at most (n-k+1)*(n-k+2)/2 + 1 states;
// the bound below is generous.
func (p Params) maxStates() int {
	d := p.N - p.K
	return (d+1)*(d+2)/2 + 2
}

// Build explores the model's state space and returns the CTMC.
// The initial state (index 0) is the Good state S(0,0).
func Build(p Params) (*markov.Explored[State], error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return markov.Build(State{}, p.Transitions, p.maxStates())
}

// FailProbabilities solves the chain transiently and returns the Fail
// state probability at each time (hours, nondecreasing).
func FailProbabilities(p Params, times []float64) ([]float64, error) {
	ex, err := Build(p)
	if err != nil {
		return nil, err
	}
	series, err := ex.Chain.TransientSeries(ex.InitialVector(), times)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(times))
	for i, dist := range series {
		out[i] = ex.ProbabilityOf(dist, func(s State) bool { return s.Fail })
	}
	return out, nil
}
