package markov

import (
	"fmt"
	"math"
)

// maxPoissonArg caps q*t per uniformization segment; larger horizons
// are split into sequential segments so the leading Poisson weight
// e^(-q t) never underflows (float64 gives out near exp(-745)).
const maxPoissonArg = 500.0

// Transient computes the state probability vector at time t >= 0 given
// the distribution p0 at time 0, by uniformization. p0 must have one
// entry per state and sum to approximately 1.
//
// All arithmetic is nonnegative, so extremely small probabilities
// (down to ~1e-300) keep full relative meaning instead of drowning in
// cancellation — a property the paper's Figures 9-10 (BER down to
// 1e-200) depend on.
func (c *Chain) Transient(p0 []float64, t float64) ([]float64, error) {
	if len(p0) != c.n {
		return nil, fmt.Errorf("markov: initial vector has %d entries, want %d", len(p0), c.n)
	}
	if t < 0 || math.IsNaN(t) || math.IsInf(t, 0) {
		return nil, fmt.Errorf("markov: invalid time %v", t)
	}
	var sum float64
	for i, v := range p0 {
		if v < 0 {
			return nil, fmt.Errorf("markov: negative probability %v at state %d", v, i)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		return nil, fmt.Errorf("markov: initial vector sums to %v, want 1", sum)
	}

	p := make([]float64, c.n)
	copy(p, p0)
	if t == 0 {
		return p, nil
	}
	q := c.MaxExitRate()
	if q == 0 {
		return p, nil // no transitions anywhere: distribution is frozen
	}
	// Uniformization constant slightly above the max exit rate keeps
	// the diagonal of the DTMC strictly positive, which improves the
	// convergence of the power sequence on periodic-ish structures.
	q *= 1.001

	segments := int(math.Ceil(q * t / maxPoissonArg))
	if segments < 1 {
		segments = 1
	}
	dt := t / float64(segments)
	for s := 0; s < segments; s++ {
		p = c.uniformizeStep(p, q, dt)
	}
	return p, nil
}

// uniformizeStep advances the distribution by dt with uniformization
// constant q (q*dt <= maxPoissonArg, enforced by the caller).
func (c *Chain) uniformizeStep(p []float64, q, dt float64) []float64 {
	qt := q * dt
	res := make([]float64, c.n)
	cur := make([]float64, c.n)
	next := make([]float64, c.n)
	copy(cur, p)

	w := math.Exp(-qt) // Poisson weight, k = 0
	for i, v := range cur {
		res[i] = w * v
	}
	// The sum is NOT truncated on cumulative mass: rare-event chains
	// (Figures 8-10 of the paper) park probabilities of order 1e-200
	// in Poisson terms whose weight is far below any mass-based
	// tolerance. Instead we run past the Poisson mode with a wide
	// deviation band plus the state count (an upper bound on the
	// chain diameter), stopping early only when the weight underflows
	// to zero — at which point no later term can contribute anything
	// representable.
	kmax := int(qt+12*math.Sqrt(qt+1)) + 200 + c.n
	for k := 0; k < kmax; k++ {
		c.stepDTMC(next, cur, q)
		cur, next = next, cur
		w *= qt / float64(k+1)
		if w == 0 {
			break
		}
		for i, v := range cur {
			res[i] += w * v
		}
	}
	// The neglected Poisson tail past kmax (or past weight underflow)
	// is deliberately dropped, NOT redistributed: at the generous kmax
	// above its true mass is far below 1e-300, while redistributing
	// the ~1e-16 floating-point residue of the weight sum would smear
	// spurious mass into the absorbing states and bury genuinely tiny
	// probabilities (the 1e-100..1e-200 BER curves of paper Figs 9-10).
	return res
}

// stepDTMC computes dst = src * P where P = I + Q/q is the
// uniformized DTMC kernel, using the sparse transition lists.
func (c *Chain) stepDTMC(dst, src []float64, q float64) {
	for i := range dst {
		dst[i] = 0
	}
	for i, v := range src {
		if v == 0 {
			continue
		}
		dst[i] += v * (1 - c.exit[i]/q)
		for _, tr := range c.trans[i] {
			dst[tr.To] += v * (tr.Rate / q)
		}
	}
}

// TransientSeries evaluates the distribution at each of the given
// increasing times, reusing each solution as the starting point of the
// next interval. Times must be nonnegative and nondecreasing.
func (c *Chain) TransientSeries(p0 []float64, times []float64) ([][]float64, error) {
	out := make([][]float64, len(times))
	prev := 0.0
	p := p0
	for i, t := range times {
		if t < prev {
			return nil, fmt.Errorf("markov: times must be nondecreasing (t[%d]=%v after %v)", i, t, prev)
		}
		next, err := c.Transient(p, t-prev)
		if err != nil {
			return nil, err
		}
		out[i] = next
		p = next
		prev = t
	}
	return out, nil
}
