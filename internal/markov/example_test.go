package markov_test

import (
	"fmt"

	"repro/internal/markov"
)

// degraded is a tiny repairable system: Good -> Degraded -> Failed,
// with repair back from Degraded.
type degraded struct {
	Errors int
	Failed bool
}

// ExampleBuild explores a model described only by its transition
// function and solves it transiently — the pattern the simplex and
// duplex memory models follow.
func ExampleBuild() {
	transitions := func(s degraded) []markov.Arc[degraded] {
		if s.Failed {
			return nil
		}
		switch s.Errors {
		case 0:
			return []markov.Arc[degraded]{{To: degraded{Errors: 1}, Rate: 0.1}}
		default:
			return []markov.Arc[degraded]{
				{To: degraded{Errors: 0}, Rate: 1.0},    // scrub
				{To: degraded{Failed: true}, Rate: 0.1}, // second fault
			}
		}
	}
	ex, err := markov.Build(degraded{}, transitions, 100)
	if err != nil {
		fmt.Println(err)
		return
	}
	p, err := ex.Chain.Transient(ex.InitialVector(), 10)
	if err != nil {
		fmt.Println(err)
		return
	}
	failP := ex.ProbabilityOf(p, func(s degraded) bool { return s.Failed })
	fmt.Printf("states: %d, P(failed by t=10): %.4f\n", ex.Chain.NumStates(), failP)

	mtta, err := ex.Chain.MeanTimeToAbsorption()
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("mean time to failure from Good: %.0f\n", mtta[0])

	// Output:
	// states: 3, P(failed by t=10): 0.0740
	// mean time to failure from Good: 120
}
