package markov

import "fmt"

// Arc is one outgoing transition in an implicitly described model:
// a successor state and an exponential rate.
type Arc[S comparable] struct {
	To   S
	Rate float64
}

// Explored is the result of state-space exploration: the chain plus
// the bidirectional mapping between model states and chain indices.
// The initial state always has index 0.
type Explored[S comparable] struct {
	Chain  *Chain
	States []S       // index -> state
	Index  map[S]int // state -> index
}

// Build explores the reachable state space of a model given by its
// initial state and a transition function, and assembles the CTMC.
// States are discovered breadth-first; exploration fails if more than
// maxStates states are reachable (a guard against the state explosion
// the paper's word-level modeling deliberately avoids).
//
// Self-arcs (To == source) are legal in the model description and are
// dropped: in a CTMC a transition back into the same state is
// indistinguishable from no transition. Zero-rate arcs are dropped for
// the same reason.
func Build[S comparable](initial S, transitions func(S) []Arc[S], maxStates int) (*Explored[S], error) {
	if maxStates <= 0 {
		return nil, fmt.Errorf("markov: maxStates must be positive, got %d", maxStates)
	}
	index := map[S]int{initial: 0}
	states := []S{initial}
	type edge struct {
		from, to int
		rate     float64
	}
	var edges []edge

	for head := 0; head < len(states); head++ {
		from := states[head]
		for _, arc := range transitions(from) {
			if arc.Rate < 0 {
				return nil, fmt.Errorf("markov: negative rate %v from state %v", arc.Rate, from)
			}
			if arc.Rate == 0 || arc.To == from {
				continue
			}
			j, ok := index[arc.To]
			if !ok {
				if len(states) >= maxStates {
					return nil, fmt.Errorf("markov: state space exceeds %d states", maxStates)
				}
				j = len(states)
				index[arc.To] = j
				states = append(states, arc.To)
			}
			edges = append(edges, edge{head, j, arc.Rate})
		}
	}

	chain, err := NewChain(len(states))
	if err != nil {
		return nil, err
	}
	for _, e := range edges {
		if err := chain.AddTransition(e.from, e.to, e.rate); err != nil {
			return nil, err
		}
	}
	return &Explored[S]{Chain: chain, States: states, Index: index}, nil
}

// InitialVector returns the probability vector concentrated on the
// initial state (index 0).
func (e *Explored[S]) InitialVector() []float64 {
	p := make([]float64, e.Chain.NumStates())
	p[0] = 1
	return p
}

// ProbabilityOf sums the probability mass of every state satisfying
// the predicate.
func (e *Explored[S]) ProbabilityOf(p []float64, pred func(S) bool) float64 {
	var sum float64
	for i, s := range e.States {
		if pred(s) {
			sum += p[i]
		}
	}
	return sum
}
