// Package markov provides a continuous-time Markov chain (CTMC)
// engine: sparse chain construction, automated state-space exploration
// from a model description, and transient solution by uniformization.
//
// It is the stand-in for NASA's SURE solver used by the DATE'05 paper:
// the memory-system models in internal/simplex and internal/duplex
// describe their states and transition rates through the Model
// interface, this package explores the reachable state space, builds
// the generator matrix and computes time-dependent state probabilities
// BER evaluation needs.
//
// Numerical note: uniformization (Jensen's method) expresses the
// transient distribution as a Poisson-weighted sum of powers of a
// sub-stochastic matrix. Every term is nonnegative, so probabilities
// that are astronomically small — the paper's Figures 9 and 10 reach
// 1e-60 .. 1e-200 — are computed without catastrophic cancellation,
// limited only by float64 underflow near 1e-308.
package markov

import (
	"fmt"
	"math"
	"sort"
)

// Transition is one outgoing CTMC transition: to a target state with
// an exponential rate (per unit time).
type Transition struct {
	To   int
	Rate float64
}

// Chain is a finite-state CTMC with states 0..N-1. Build one directly
// with NewChain/AddTransition or through Build and a Model.
type Chain struct {
	n     int
	trans [][]Transition // trans[i] = outgoing transitions of state i
	exit  []float64      // exit[i] = total outgoing rate of state i
}

// NewChain returns an empty chain with n states and no transitions.
func NewChain(n int) (*Chain, error) {
	if n <= 0 {
		return nil, fmt.Errorf("markov: chain needs at least one state, got %d", n)
	}
	return &Chain{
		n:     n,
		trans: make([][]Transition, n),
		exit:  make([]float64, n),
	}, nil
}

// NumStates returns the number of states.
func (c *Chain) NumStates() int { return c.n }

// AddTransition adds a transition from state i to state j at the given
// rate. Multiple transitions between the same pair accumulate.
// Self-loops are rejected: they are meaningless in a CTMC generator.
func (c *Chain) AddTransition(i, j int, rate float64) error {
	switch {
	case i < 0 || i >= c.n:
		return fmt.Errorf("markov: source state %d out of range [0,%d)", i, c.n)
	case j < 0 || j >= c.n:
		return fmt.Errorf("markov: target state %d out of range [0,%d)", j, c.n)
	case i == j:
		return fmt.Errorf("markov: self-loop on state %d", i)
	case rate < 0 || math.IsNaN(rate) || math.IsInf(rate, 0):
		return fmt.Errorf("markov: invalid rate %v from %d to %d", rate, i, j)
	}
	if rate == 0 {
		return nil // zero-rate transitions never fire; drop them
	}
	for idx := range c.trans[i] {
		if c.trans[i][idx].To == j {
			c.trans[i][idx].Rate += rate
			c.exit[i] += rate
			return nil
		}
	}
	c.trans[i] = append(c.trans[i], Transition{To: j, Rate: rate})
	c.exit[i] += rate
	return nil
}

// Transitions returns the outgoing transitions of state i sorted by
// target. The returned slice is a copy.
func (c *Chain) Transitions(i int) []Transition {
	out := make([]Transition, len(c.trans[i]))
	copy(out, c.trans[i])
	sort.Slice(out, func(a, b int) bool { return out[a].To < out[b].To })
	return out
}

// ExitRate returns the total outgoing rate of state i.
func (c *Chain) ExitRate(i int) float64 { return c.exit[i] }

// IsAbsorbing reports whether state i has no outgoing transitions.
func (c *Chain) IsAbsorbing(i int) bool { return len(c.trans[i]) == 0 }

// MaxExitRate returns the largest total exit rate over all states —
// the uniformization constant lower bound.
func (c *Chain) MaxExitRate() float64 {
	var q float64
	for _, e := range c.exit {
		if e > q {
			q = e
		}
	}
	return q
}

// Generator returns the dense generator (infinitesimal rate) matrix Q
// with Q[i][j] = rate i->j and Q[i][i] = -exit(i). Intended for tests
// and small chains; the solver itself stays sparse.
func (c *Chain) Generator() [][]float64 {
	q := make([][]float64, c.n)
	for i := range q {
		q[i] = make([]float64, c.n)
		for _, tr := range c.trans[i] {
			q[i][tr.To] += tr.Rate
		}
		q[i][i] = -c.exit[i]
	}
	return q
}
