package markov

import (
	"fmt"
	"math"
)

// MeanTimeToAbsorption returns, for each state, the expected time
// until the chain first enters any absorbing state, starting from that
// state. Absorbing states have mean time 0. States that cannot reach
// an absorbing state have +Inf (they never absorb).
//
// For the memory models this is the mean time to data loss (MTTDL)
// when started from the Good state — a figure of merit the paper's
// BER(t) curves imply but never print, useful for mission planning.
//
// The computation solves the standard first-step equations
//
//	t_i = 1/q_i + sum_j P(i->j) t_j
//
// by Gaussian elimination with partial pivoting over the transient
// states (the chains here have at most a few thousand states, so the
// dense O(n^3) solve is immaterial next to transient solution).
func (c *Chain) MeanTimeToAbsorption() ([]float64, error) {
	absorbing := make([]bool, c.n)
	anyAbsorbing := false
	for i := 0; i < c.n; i++ {
		if c.IsAbsorbing(i) {
			absorbing[i] = true
			anyAbsorbing = true
		}
	}
	out := make([]float64, c.n)
	if !anyAbsorbing {
		for i := range out {
			out[i] = math.Inf(1)
		}
		return out, nil
	}

	// Identify transient states that can reach an absorbing state;
	// others have infinite expected time and must be excluded from
	// the linear system (it would be singular).
	reach := c.reachesAbsorbing(absorbing)

	var transient []int
	index := make([]int, c.n)
	for i := range index {
		index[i] = -1
	}
	for i := 0; i < c.n; i++ {
		if !absorbing[i] && reach[i] {
			index[i] = len(transient)
			transient = append(transient, i)
		}
	}
	m := len(transient)
	if m == 0 {
		for i := 0; i < c.n; i++ {
			if !absorbing[i] {
				out[i] = math.Inf(1)
			}
		}
		return out, nil
	}

	// Build A t = b with A = diag(q_i) - rates among transient states,
	// b_i = 1 (time accrues at unit rate). Rows for transitions into
	// non-reaching states keep their exit-rate contribution in q_i,
	// which is correct: sojourn ends either way. But a transition into
	// a never-absorbing state means infinite expected time, so such
	// states were excluded from `reach` already (a reaching state
	// cannot transition into a non-reaching one and still be
	// reaching... it can — with probability < 1. Expected time is then
	// infinite.) Guard: any reaching state with an arc into a
	// non-reaching transient state gets +Inf directly.
	for _, i := range transient {
		for _, tr := range c.trans[i] {
			if !absorbing[tr.To] && !reach[tr.To] {
				return nil, fmt.Errorf("markov: state %d reaches absorption only with probability < 1; mean time undefined", i)
			}
		}
	}

	a := make([][]float64, m)
	b := make([]float64, m)
	for r, i := range transient {
		a[r] = make([]float64, m)
		a[r][r] = c.exit[i]
		b[r] = 1
		for _, tr := range c.trans[i] {
			if j := index[tr.To]; j >= 0 {
				a[r][j] -= tr.Rate
			}
		}
	}
	t, err := solveDense(a, b)
	if err != nil {
		return nil, err
	}
	for i := 0; i < c.n; i++ {
		switch {
		case absorbing[i]:
			out[i] = 0
		case index[i] >= 0:
			out[i] = t[index[i]]
		default:
			out[i] = math.Inf(1)
		}
	}
	return out, nil
}

// AbsorptionProbability returns, for each state, the probability of
// eventually being absorbed in one of the target states (which must
// all be absorbing), rather than some other absorbing state.
func (c *Chain) AbsorptionProbability(targets []int) ([]float64, error) {
	isTarget := make([]bool, c.n)
	for _, s := range targets {
		if s < 0 || s >= c.n {
			return nil, fmt.Errorf("markov: target state %d out of range", s)
		}
		if !c.IsAbsorbing(s) {
			return nil, fmt.Errorf("markov: target state %d is not absorbing", s)
		}
		isTarget[s] = true
	}
	absorbing := make([]bool, c.n)
	for i := 0; i < c.n; i++ {
		absorbing[i] = c.IsAbsorbing(i)
	}

	var transient []int
	index := make([]int, c.n)
	for i := range index {
		index[i] = -1
	}
	for i := 0; i < c.n; i++ {
		if !absorbing[i] {
			index[i] = len(transient)
			transient = append(transient, i)
		}
	}
	out := make([]float64, c.n)
	for i := 0; i < c.n; i++ {
		if isTarget[i] {
			out[i] = 1
		}
	}
	m := len(transient)
	if m == 0 {
		return out, nil
	}
	// h_i = sum_j P(i->j) h_j; P(i->j) = rate/exit. As a linear system:
	// exit_i h_i - sum_{j transient} rate_ij h_j = sum_{j target} rate_ij.
	a := make([][]float64, m)
	b := make([]float64, m)
	for r, i := range transient {
		a[r] = make([]float64, m)
		if c.exit[i] == 0 {
			// Structurally impossible (transient implies outgoing),
			// but keep the system well posed.
			a[r][r] = 1
			continue
		}
		a[r][r] = c.exit[i]
		for _, tr := range c.trans[i] {
			if j := index[tr.To]; j >= 0 {
				a[r][j] -= tr.Rate
			} else if isTarget[tr.To] {
				b[r] += tr.Rate
			}
		}
	}
	h, err := solveDense(a, b)
	if err != nil {
		return nil, err
	}
	for r, i := range transient {
		out[i] = h[r]
	}
	return out, nil
}

// reachesAbsorbing marks states from which some absorbing state is
// reachable (reverse BFS over the transition graph).
func (c *Chain) reachesAbsorbing(absorbing []bool) []bool {
	// Build reverse adjacency.
	radj := make([][]int, c.n)
	for i := 0; i < c.n; i++ {
		for _, tr := range c.trans[i] {
			radj[tr.To] = append(radj[tr.To], i)
		}
	}
	reach := make([]bool, c.n)
	var queue []int
	for i := 0; i < c.n; i++ {
		if absorbing[i] {
			reach[i] = true
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		for _, p := range radj[s] {
			if !reach[p] {
				reach[p] = true
				queue = append(queue, p)
			}
		}
	}
	return reach
}

// solveDense solves a*x = b by Gaussian elimination with partial
// pivoting, destroying a and b.
func solveDense(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	for col := 0; col < n; col++ {
		// Pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if a[pivot][col] == 0 {
			return nil, fmt.Errorf("markov: singular first-step system at column %d", col)
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			for k := col; k < n; k++ {
				a[r][k] -= f * a[col][k]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		sum := b[r]
		for k := r + 1; k < n; k++ {
			sum -= a[r][k] * x[k]
		}
		x[r] = sum / a[r][r]
	}
	return x, nil
}
