package markov

import (
	"math"
	"math/rand"
	"testing"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol
}

func relClose(a, b, rel float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= rel*scale
}

func TestNewChainValidation(t *testing.T) {
	if _, err := NewChain(0); err == nil {
		t.Error("NewChain(0) accepted")
	}
	if _, err := NewChain(-3); err == nil {
		t.Error("NewChain(-3) accepted")
	}
	c, err := NewChain(5)
	if err != nil || c.NumStates() != 5 {
		t.Fatalf("NewChain(5): %v, n=%d", err, c.NumStates())
	}
}

func TestAddTransitionValidation(t *testing.T) {
	c, _ := NewChain(3)
	cases := []struct {
		i, j int
		rate float64
	}{
		{-1, 0, 1}, {3, 0, 1}, {0, -1, 1}, {0, 3, 1}, {1, 1, 1},
		{0, 1, -2}, {0, 1, math.NaN()}, {0, 1, math.Inf(1)},
	}
	for _, cse := range cases {
		if err := c.AddTransition(cse.i, cse.j, cse.rate); err == nil {
			t.Errorf("AddTransition(%d,%d,%v) accepted", cse.i, cse.j, cse.rate)
		}
	}
	if err := c.AddTransition(0, 1, 0); err != nil {
		t.Errorf("zero-rate transition rejected: %v", err)
	}
	if len(c.Transitions(0)) != 0 {
		t.Error("zero-rate transition stored")
	}
}

func TestTransitionAccumulation(t *testing.T) {
	c, _ := NewChain(2)
	if err := c.AddTransition(0, 1, 1.5); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTransition(0, 1, 2.5); err != nil {
		t.Fatal(err)
	}
	trs := c.Transitions(0)
	if len(trs) != 1 || trs[0].Rate != 4 {
		t.Errorf("accumulated transitions = %v, want single rate 4", trs)
	}
	if c.ExitRate(0) != 4 {
		t.Errorf("ExitRate = %v, want 4", c.ExitRate(0))
	}
	if !c.IsAbsorbing(1) || c.IsAbsorbing(0) {
		t.Error("IsAbsorbing wrong")
	}
	if c.MaxExitRate() != 4 {
		t.Errorf("MaxExitRate = %v", c.MaxExitRate())
	}
}

func TestGeneratorRowSumsZero(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c, _ := NewChain(10)
	for i := 0; i < 40; i++ {
		a, b := rng.Intn(10), rng.Intn(10)
		if a == b {
			continue
		}
		if err := c.AddTransition(a, b, rng.Float64()*3); err != nil {
			t.Fatal(err)
		}
	}
	q := c.Generator()
	for i, row := range q {
		var sum float64
		for _, v := range row {
			sum += v
		}
		if !almostEqual(sum, 0, 1e-12) {
			t.Errorf("row %d sums to %v", i, sum)
		}
	}
}

// TestTwoStateClosedForm: 0 -> 1 at rate lambda (1 absorbing).
// P1(t) = 1 - exp(-lambda t).
func TestTwoStateClosedForm(t *testing.T) {
	lambda := 0.37
	c, _ := NewChain(2)
	if err := c.AddTransition(0, 1, lambda); err != nil {
		t.Fatal(err)
	}
	for _, tt := range []float64{0, 0.1, 1, 5, 20} {
		p, err := c.Transient([]float64{1, 0}, tt)
		if err != nil {
			t.Fatal(err)
		}
		want := 1 - math.Exp(-lambda*tt)
		if !almostEqual(p[1], want, 1e-12) {
			t.Errorf("t=%v: P1 = %v, want %v", tt, p[1], want)
		}
		if !almostEqual(p[0]+p[1], 1, 1e-12) {
			t.Errorf("t=%v: mass = %v", tt, p[0]+p[1])
		}
	}
}

// TestErlangAbsorption: chain 0 -> 1 -> ... -> k at rate lambda.
// P(absorbed by t) = 1 - sum_{i<k} e^{-lt}(lt)^i/i!.
func TestErlangAbsorption(t *testing.T) {
	const k = 5
	lambda := 2.0
	c, _ := NewChain(k + 1)
	for i := 0; i < k; i++ {
		if err := c.AddTransition(i, i+1, lambda); err != nil {
			t.Fatal(err)
		}
	}
	p0 := make([]float64, k+1)
	p0[0] = 1
	for _, tt := range []float64{0.3, 1, 2.5} {
		p, err := c.Transient(p0, tt)
		if err != nil {
			t.Fatal(err)
		}
		lt := lambda * tt
		tail := 0.0
		term := math.Exp(-lt)
		for i := 0; i < k; i++ {
			tail += term
			term *= lt / float64(i+1)
		}
		want := 1 - tail
		if !relClose(p[k], want, 1e-10) {
			t.Errorf("t=%v: P(absorbed) = %v, want %v", tt, p[k], want)
		}
	}
}

// TestPureBirthPoisson: the truncated pure-birth chain at rate lambda
// reproduces Poisson probabilities in its interior states.
func TestPureBirthPoisson(t *testing.T) {
	const n = 40
	lambda := 1.7
	c, _ := NewChain(n)
	for i := 0; i < n-1; i++ {
		if err := c.AddTransition(i, i+1, lambda); err != nil {
			t.Fatal(err)
		}
	}
	p0 := make([]float64, n)
	p0[0] = 1
	tt := 3.0
	p, err := c.Transient(p0, tt)
	if err != nil {
		t.Fatal(err)
	}
	lt := lambda * tt
	want := math.Exp(-lt)
	for i := 0; i < 12; i++ {
		if !relClose(p[i], want, 1e-9) {
			t.Errorf("P%d = %v, want Poisson %v", i, p[i], want)
		}
		want *= lt / float64(i+1)
	}
}

// TestDeepTailTinyProbabilities is the regression test for the
// figure-9/10 regime: probabilities of order 1e-150 must be computed
// with full relative accuracy, not truncated to zero.
func TestDeepTailTinyProbabilities(t *testing.T) {
	const k = 10
	lambda := 1e-15
	c, _ := NewChain(k + 1)
	for i := 0; i < k; i++ {
		if err := c.AddTransition(i, i+1, lambda); err != nil {
			t.Fatal(err)
		}
	}
	p0 := make([]float64, k+1)
	p0[0] = 1
	p, err := c.Transient(p0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// P(state k) = (lambda t)^k / k! for lambda*t << 1 (Erlang head).
	want := 1.0
	for i := 1; i <= k; i++ {
		want *= lambda / float64(i)
	}
	if p[k] == 0 {
		t.Fatalf("deep-tail probability truncated to zero (want ~%g)", want)
	}
	if !relClose(p[k], want, 1e-6) {
		t.Errorf("P(state %d) = %g, want %g", k, p[k], want)
	}
}

// TestNoSpuriousFloorFromWeightResidue is the regression test for the
// figure-10 pollution bug: with a moderate (not tiny) q*t, the
// floating-point residue of the Poisson weight sum must NOT be
// redistributed into the absorbing tail, where it would bury true
// probabilities of order 1e-125 under a ~1e-16 floor.
func TestNoSpuriousFloorFromWeightResidue(t *testing.T) {
	const k = 21 // stages to absorption, like RS(36,16) erasure failure
	r := 1e-5
	c, _ := NewChain(k + 1)
	for i := 0; i < k; i++ {
		if err := c.AddTransition(i, i+1, r); err != nil {
			t.Fatal(err)
		}
	}
	p0 := make([]float64, k+1)
	p0[0] = 1
	p, err := c.Transient(p0, 1) // q*t ~ 1e-5: weights round off fast
	if err != nil {
		t.Fatal(err)
	}
	// P(absorbed) ~ (rt)^k / k! = 1e-105 / 5.1e19 ~ 2e-125.
	want := 1.0
	for i := 1; i <= k; i++ {
		want *= r / float64(i)
	}
	if p[k] > 1e-100 {
		t.Fatalf("absorbing probability %g polluted (want ~%g)", p[k], want)
	}
	if !relClose(p[k], want, 1e-3) {
		t.Errorf("absorbing probability %g, want %g", p[k], want)
	}
	// Chained evaluation (the TransientSeries path) must stay clean too.
	series, err := c.TransientSeries(p0, []float64{0.2, 0.4, 0.6, 0.8, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := series[4][k]; !relClose(got, want, 1e-3) {
		t.Errorf("series-evaluated absorbing probability %g, want %g", got, want)
	}
}

// TestUniformizationMatchesDenseExpm cross-validates the two solvers
// on random chains, including ones with cycles (repair transitions).
func TestUniformizationMatchesDenseExpm(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(8)
		c, _ := NewChain(n)
		for e := 0; e < 3*n; e++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i == j {
				continue
			}
			if err := c.AddTransition(i, j, rng.Float64()*4); err != nil {
				t.Fatal(err)
			}
		}
		p0 := make([]float64, n)
		p0[0] = 1
		tt := rng.Float64() * 5
		got, err := c.Transient(p0, tt)
		if err != nil {
			t.Fatal(err)
		}
		want := VecMatMul(p0, DenseExpm(c.Generator(), tt))
		for i := range got {
			if !almostEqual(got[i], want[i], 1e-9) {
				t.Errorf("trial %d state %d: uniformization %v vs expm %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestTransientValidation(t *testing.T) {
	c, _ := NewChain(2)
	_ = c.AddTransition(0, 1, 1)
	if _, err := c.Transient([]float64{1}, 1); err == nil {
		t.Error("short vector accepted")
	}
	if _, err := c.Transient([]float64{0.5, 0.2}, 1); err == nil {
		t.Error("non-normalized vector accepted")
	}
	if _, err := c.Transient([]float64{-0.5, 1.5}, 1); err == nil {
		t.Error("negative probability accepted")
	}
	if _, err := c.Transient([]float64{1, 0}, -1); err == nil {
		t.Error("negative time accepted")
	}
	if _, err := c.Transient([]float64{1, 0}, math.NaN()); err == nil {
		t.Error("NaN time accepted")
	}
}

func TestTransientNoTransitions(t *testing.T) {
	c, _ := NewChain(3)
	p0 := []float64{0.2, 0.3, 0.5}
	p, err := c.Transient(p0, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p {
		if p[i] != p0[i] {
			t.Error("distribution changed with no transitions")
		}
	}
}

func TestTransientLongHorizonSegmented(t *testing.T) {
	// q*t = 50*40 = 2000 forces multiple segments; compare against the
	// closed form of the 2-state chain with repair (birth-death):
	// P1(t) = a/(a+b) * (1 - exp(-(a+b) t)) for 0->1 rate a, 1->0 rate b.
	a, b := 50.0, 30.0
	c, _ := NewChain(2)
	_ = c.AddTransition(0, 1, a)
	_ = c.AddTransition(1, 0, b)
	tt := 40.0
	p, err := c.Transient([]float64{1, 0}, tt)
	if err != nil {
		t.Fatal(err)
	}
	want := a / (a + b) * (1 - math.Exp(-(a+b)*tt))
	if !relClose(p[1], want, 1e-9) {
		t.Errorf("P1 = %v, want %v", p[1], want)
	}
}

func TestTransientSeries(t *testing.T) {
	lambda := 0.9
	c, _ := NewChain(2)
	_ = c.AddTransition(0, 1, lambda)
	times := []float64{0, 0.5, 0.5, 2, 7}
	series, err := c.TransientSeries([]float64{1, 0}, times)
	if err != nil {
		t.Fatal(err)
	}
	for i, tt := range times {
		want := 1 - math.Exp(-lambda*tt)
		if !almostEqual(series[i][1], want, 1e-10) {
			t.Errorf("t=%v: P1 = %v, want %v", tt, series[i][1], want)
		}
	}
	if _, err := c.TransientSeries([]float64{1, 0}, []float64{2, 1}); err == nil {
		t.Error("decreasing times accepted")
	}
}

type toyState struct {
	errors int
	failed bool
}

func toyTransitions(nmax int) func(toyState) []Arc[toyState] {
	return func(s toyState) []Arc[toyState] {
		if s.failed {
			return nil
		}
		if s.errors == nmax {
			return []Arc[toyState]{{To: toyState{failed: true}, Rate: 1}}
		}
		return []Arc[toyState]{
			{To: toyState{errors: s.errors + 1}, Rate: 2},
			{To: toyState{errors: 0}, Rate: 0.5}, // repair (self-arc when errors==0)
		}
	}
}

func TestBuildExploresReachableStates(t *testing.T) {
	ex, err := Build(toyState{}, toyTransitions(3), 100)
	if err != nil {
		t.Fatal(err)
	}
	// States: errors 0..3 plus failed = 5.
	if got := ex.Chain.NumStates(); got != 5 {
		t.Fatalf("explored %d states, want 5", got)
	}
	if ex.Index[toyState{}] != 0 {
		t.Error("initial state must have index 0")
	}
	// Self-arc from errors=0 must have been dropped.
	for _, tr := range ex.Chain.Transitions(0) {
		if tr.To == 0 {
			t.Error("self-arc retained")
		}
	}
	p0 := ex.InitialVector()
	if p0[0] != 1 || len(p0) != 5 {
		t.Error("InitialVector wrong")
	}
	p, err := ex.Chain.Transient(p0, 2)
	if err != nil {
		t.Fatal(err)
	}
	failP := ex.ProbabilityOf(p, func(s toyState) bool { return s.failed })
	if failP <= 0 || failP >= 1 {
		t.Errorf("fail probability %v out of (0,1)", failP)
	}
}

func TestBuildMaxStatesGuard(t *testing.T) {
	if _, err := Build(toyState{}, toyTransitions(1000), 10); err == nil {
		t.Error("state explosion not caught")
	}
	if _, err := Build(toyState{}, toyTransitions(3), 0); err == nil {
		t.Error("nonpositive maxStates accepted")
	}
}

func TestBuildNegativeRate(t *testing.T) {
	bad := func(s toyState) []Arc[toyState] {
		return []Arc[toyState]{{To: toyState{errors: 1}, Rate: -1}}
	}
	if _, err := Build(toyState{}, bad, 10); err == nil {
		t.Error("negative rate accepted")
	}
}

func TestDenseExpmIdentityAtZero(t *testing.T) {
	q := [][]float64{{-1, 1}, {2, -2}}
	e := DenseExpm(q, 0)
	if !almostEqual(e[0][0], 1, 1e-14) || !almostEqual(e[0][1], 0, 1e-14) ||
		!almostEqual(e[1][0], 0, 1e-14) || !almostEqual(e[1][1], 1, 1e-14) {
		t.Errorf("expm(0) != I: %v", e)
	}
}

func TestDenseExpmStochasticRows(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 6
	c, _ := NewChain(n)
	for e := 0; e < 20; e++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i != j {
			_ = c.AddTransition(i, j, rng.Float64())
		}
	}
	e := DenseExpm(c.Generator(), 3)
	for i := range e {
		var sum float64
		for _, v := range e[i] {
			if v < -1e-12 {
				t.Errorf("negative entry %v", v)
			}
			sum += v
		}
		if !almostEqual(sum, 1, 1e-10) {
			t.Errorf("row %d of expm sums to %v", i, sum)
		}
	}
}

func TestProbabilityConservedLargeRandomChain(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 200
	c, _ := NewChain(n)
	for e := 0; e < 1200; e++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i != j {
			_ = c.AddTransition(i, j, rng.Float64()*10)
		}
	}
	p0 := make([]float64, n)
	p0[0] = 1
	for _, tt := range []float64{0.01, 1, 25} {
		p, err := c.Transient(p0, tt)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, v := range p {
			if v < 0 {
				t.Fatalf("negative probability %v", v)
			}
			sum += v
		}
		if !almostEqual(sum, 1, 1e-9) {
			t.Errorf("t=%v: mass %v", tt, sum)
		}
	}
}

func BenchmarkTransient200States(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	n := 200
	c, _ := NewChain(n)
	for e := 0; e < 1200; e++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i != j {
			_ = c.AddTransition(i, j, rng.Float64())
		}
	}
	p0 := make([]float64, n)
	p0[0] = 1
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Transient(p0, 10); err != nil {
			b.Fatal(err)
		}
	}
}
