package markov

import "math"

// DenseExpm computes exp(Q*t) for a dense square matrix Q by
// scaling-and-squaring with a truncated Taylor series. It is O(n^3)
// and intended for validating the sparse uniformization solver on
// small chains in tests, and for users who want an independent
// reference; production solving goes through Transient.
func DenseExpm(q [][]float64, t float64) [][]float64 {
	n := len(q)
	a := make([][]float64, n)
	norm := 0.0
	for i := range a {
		a[i] = make([]float64, n)
		rowSum := 0.0
		for j := range a[i] {
			a[i][j] = q[i][j] * t
			rowSum += math.Abs(a[i][j])
		}
		if rowSum > norm {
			norm = rowSum
		}
	}
	// Scale so the Taylor series converges fast: ||A/2^s|| <= 0.5.
	s := 0
	for norm > 0.5 {
		norm /= 2
		s++
	}
	scale := math.Ldexp(1, -s)
	for i := range a {
		for j := range a[i] {
			a[i][j] *= scale
		}
	}

	// exp(A) by Taylor to machine precision at ||A|| <= 0.5.
	result := identity(n)
	term := identity(n)
	for k := 1; k <= 24; k++ {
		term = matMul(term, a)
		inv := 1 / float64(k)
		for i := range term {
			for j := range term[i] {
				term[i][j] *= inv
				result[i][j] += term[i][j]
			}
		}
	}
	for ; s > 0; s-- {
		result = matMul(result, result)
	}
	return result
}

func identity(n int) [][]float64 {
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		m[i][i] = 1
	}
	return m
}

func matMul(a, b [][]float64) [][]float64 {
	n := len(a)
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
		for l := 0; l < n; l++ {
			v := a[i][l]
			if v == 0 {
				continue
			}
			row := b[l]
			for j := range row {
				out[i][j] += v * row[j]
			}
		}
	}
	return out
}

// VecMatMul returns v * m for a row vector v.
func VecMatMul(v []float64, m [][]float64) []float64 {
	out := make([]float64, len(m[0]))
	for i, x := range v {
		if x == 0 {
			continue
		}
		for j, mij := range m[i] {
			out[j] += x * mij
		}
	}
	return out
}
