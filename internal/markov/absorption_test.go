package markov

import (
	"math"
	"testing"
)

func TestMeanTimeToAbsorptionTwoState(t *testing.T) {
	lambda := 0.4
	c, _ := NewChain(2)
	_ = c.AddTransition(0, 1, lambda)
	mtta, err := c.MeanTimeToAbsorption()
	if err != nil {
		t.Fatal(err)
	}
	if !relClose(mtta[0], 1/lambda, 1e-12) {
		t.Errorf("MTTA from 0 = %v, want %v", mtta[0], 1/lambda)
	}
	if mtta[1] != 0 {
		t.Errorf("MTTA of absorbing state = %v, want 0", mtta[1])
	}
}

func TestMeanTimeToAbsorptionErlang(t *testing.T) {
	// k sequential stages at rate r: MTTA = k/r.
	const k = 6
	r := 2.5
	c, _ := NewChain(k + 1)
	for i := 0; i < k; i++ {
		_ = c.AddTransition(i, i+1, r)
	}
	mtta, err := c.MeanTimeToAbsorption()
	if err != nil {
		t.Fatal(err)
	}
	if !relClose(mtta[0], float64(k)/r, 1e-10) {
		t.Errorf("MTTA = %v, want %v", mtta[0], float64(k)/r)
	}
	// From stage i, remaining time is (k-i)/r.
	for i := 0; i <= k; i++ {
		want := float64(k-i) / r
		if !relClose(mtta[i], want, 1e-10) {
			t.Errorf("MTTA from %d = %v, want %v", i, mtta[i], want)
		}
	}
}

func TestMeanTimeToAbsorptionWithRepair(t *testing.T) {
	// 0 <-> 1 -> 2(absorbing): birth a, repair b, death d.
	// Standard first-step analysis:
	//   t0 = 1/a + t1
	//   t1 = 1/(b+d) + b/(b+d) * t0
	a, bb, d := 1.0, 3.0, 0.5
	c, _ := NewChain(3)
	_ = c.AddTransition(0, 1, a)
	_ = c.AddTransition(1, 0, bb)
	_ = c.AddTransition(1, 2, d)
	mtta, err := c.MeanTimeToAbsorption()
	if err != nil {
		t.Fatal(err)
	}
	t1 := (1/(bb+d) + bb/(bb+d)/a) / (1 - bb/(bb+d))
	t0 := 1/a + t1
	if !relClose(mtta[0], t0, 1e-10) || !relClose(mtta[1], t1, 1e-10) {
		t.Errorf("MTTA = %v, want [%v %v 0]", mtta, t0, t1)
	}
}

func TestMeanTimeToAbsorptionNoAbsorbing(t *testing.T) {
	c, _ := NewChain(2)
	_ = c.AddTransition(0, 1, 1)
	_ = c.AddTransition(1, 0, 1)
	mtta, err := c.MeanTimeToAbsorption()
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(mtta[0], 1) || !math.IsInf(mtta[1], 1) {
		t.Errorf("MTTA without absorbing states = %v, want +Inf", mtta)
	}
}

func TestMeanTimeToAbsorptionUnreachable(t *testing.T) {
	// State 2 is absorbing; state 3 spins with 4 forever and cannot
	// reach it: its MTTA must be +Inf while 0 and 1 are finite.
	c, _ := NewChain(5)
	_ = c.AddTransition(0, 1, 1)
	_ = c.AddTransition(1, 2, 1)
	_ = c.AddTransition(3, 4, 1)
	_ = c.AddTransition(4, 3, 1)
	mtta, err := c.MeanTimeToAbsorption()
	if err != nil {
		t.Fatal(err)
	}
	if !relClose(mtta[0], 2, 1e-10) {
		t.Errorf("MTTA[0] = %v, want 2", mtta[0])
	}
	if !math.IsInf(mtta[3], 1) || !math.IsInf(mtta[4], 1) {
		t.Errorf("unreachable states should have +Inf, got %v", mtta[3:])
	}
}

func TestMeanTimeToAbsorptionPartialReachRejected(t *testing.T) {
	// From state 0: to absorbing 1, or to sink-cycle 2<->3 that never
	// absorbs. Expected time is infinite; the solver must say so
	// rather than return a finite number.
	c, _ := NewChain(4)
	_ = c.AddTransition(0, 1, 1)
	_ = c.AddTransition(0, 2, 1)
	_ = c.AddTransition(2, 3, 1)
	_ = c.AddTransition(3, 2, 1)
	if _, err := c.MeanTimeToAbsorption(); err == nil {
		t.Error("probability-deficient absorption accepted")
	}
}

func TestMeanTimeMatchesTransientIntegral(t *testing.T) {
	// MTTA = integral of survival probability. Cross-check the linear
	// solve against numerically integrating the transient solution.
	c, _ := NewChain(4)
	_ = c.AddTransition(0, 1, 0.7)
	_ = c.AddTransition(1, 0, 0.2)
	_ = c.AddTransition(1, 2, 0.5)
	_ = c.AddTransition(2, 3, 1.1)
	_ = c.AddTransition(2, 0, 0.1)
	mtta, err := c.MeanTimeToAbsorption()
	if err != nil {
		t.Fatal(err)
	}
	p0 := []float64{1, 0, 0, 0}
	integral := 0.0
	dt := 0.05
	for tt := 0.0; tt < 200; tt += dt {
		p, err := c.Transient(p0, tt+dt/2)
		if err != nil {
			t.Fatal(err)
		}
		integral += (1 - p[3]) * dt
	}
	if math.Abs(integral-mtta[0])/mtta[0] > 0.01 {
		t.Errorf("MTTA = %v but survival integral = %v", mtta[0], integral)
	}
}

func TestAbsorptionProbabilityCompeting(t *testing.T) {
	// 0 -> 1 (rate a) and 0 -> 2 (rate b), both absorbing:
	// P(absorb in 1) = a/(a+b).
	a, b := 2.0, 3.0
	c, _ := NewChain(3)
	_ = c.AddTransition(0, 1, a)
	_ = c.AddTransition(0, 2, b)
	p, err := c.AbsorptionProbability([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	if !relClose(p[0], a/(a+b), 1e-12) {
		t.Errorf("P = %v, want %v", p[0], a/(a+b))
	}
	if p[1] != 1 || p[2] != 0 {
		t.Errorf("absorbing-state probabilities wrong: %v", p)
	}
}

func TestAbsorptionProbabilityWithLoop(t *testing.T) {
	// 0 -> 1 -> {0 (repair), 2, 3}: gambler's-ruin style check.
	c, _ := NewChain(4)
	_ = c.AddTransition(0, 1, 1)
	_ = c.AddTransition(1, 0, 1)
	_ = c.AddTransition(1, 2, 1)
	_ = c.AddTransition(1, 3, 2)
	p, err := c.AbsorptionProbability([]int{2})
	if err != nil {
		t.Fatal(err)
	}
	// From 1: with prob 1/4 -> 0 (then back to 1), 1/4 -> 2, 1/2 -> 3.
	// h1 = 1/4*h1' where h0 = h1: h1 = 1/4 + 1/4 h1 => h1 = 1/3.
	if !relClose(p[1], 1.0/3, 1e-10) || !relClose(p[0], 1.0/3, 1e-10) {
		t.Errorf("P = %v, want 1/3 from both transient states", p)
	}
}

func TestAbsorptionProbabilityValidation(t *testing.T) {
	c, _ := NewChain(3)
	_ = c.AddTransition(0, 1, 1)
	_ = c.AddTransition(0, 2, 1)
	if _, err := c.AbsorptionProbability([]int{0}); err == nil {
		t.Error("non-absorbing target accepted")
	}
	if _, err := c.AbsorptionProbability([]int{7}); err == nil {
		t.Error("out-of-range target accepted")
	}
}
