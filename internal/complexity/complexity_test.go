package complexity

import (
	"math"
	"testing"
)

func TestDecodeCyclesPaperNumbers(t *testing.T) {
	// Paper Section 6: RS(36,16) -> 108 + 200 = 308 cycles;
	// RS(18,16) -> 54 + 20 = 74 cycles.
	got, err := DecodeCycles(36, 16)
	if err != nil {
		t.Fatal(err)
	}
	if got != 308 {
		t.Errorf("Td(36,16) = %d, want 308", got)
	}
	got, err = DecodeCycles(18, 16)
	if err != nil {
		t.Fatal(err)
	}
	if got != 74 {
		t.Errorf("Td(18,16) = %d, want 74", got)
	}
	// The paper's conclusion: more than four times slower.
	ratio := 308.0 / 74.0
	if ratio <= 4 {
		t.Errorf("latency ratio %v, paper claims more than four times", ratio)
	}
}

func TestDecodeCyclesValidation(t *testing.T) {
	for _, c := range [][2]int{{0, 0}, {10, 10}, {10, 12}, {-5, -7}} {
		if _, err := DecodeCycles(c[0], c[1]); err == nil {
			t.Errorf("DecodeCycles(%d,%d) accepted", c[0], c[1])
		}
	}
}

func TestDecodeSeconds(t *testing.T) {
	s, err := DecodeSeconds(18, 16, 50e6) // 50 MHz FPGA clock
	if err != nil {
		t.Fatal(err)
	}
	want := 74.0 / 50e6
	if math.Abs(s-want) > 1e-18 {
		t.Errorf("DecodeSeconds = %v, want %v", s, want)
	}
	if _, err := DecodeSeconds(18, 16, 0); err == nil {
		t.Error("zero clock accepted")
	}
	if _, err := DecodeSeconds(18, 16, -1); err == nil {
		t.Error("negative clock accepted")
	}
	if _, err := DecodeSeconds(5, 5, 1e6); err == nil {
		t.Error("invalid code accepted")
	}
}

func TestDecoderGatesLinear(t *testing.T) {
	g1, err := DecoderGates(8, 18, 16, 100)
	if err != nil {
		t.Fatal(err)
	}
	if g1 != 100*8*2 {
		t.Errorf("gates = %v, want 1600", g1)
	}
	// Linear in m.
	g2, _ := DecoderGates(16, 18, 16, 100)
	if g2 != 2*g1 {
		t.Errorf("doubling m should double gates: %v vs %v", g2, g1)
	}
	// Linear in n-k.
	g3, _ := DecoderGates(8, 36, 16, 100)
	if g3 != 10*g1 {
		t.Errorf("10x check symbols should 10x gates: %v vs %v", g3, g1)
	}
	// Default constant kicks in for nonpositive gatesPerUnit.
	g4, _ := DecoderGates(8, 18, 16, 0)
	if g4 != DefaultGatesPerUnit*8*2 {
		t.Errorf("default constant not applied: %v", g4)
	}
}

func TestDecoderGatesValidation(t *testing.T) {
	if _, err := DecoderGates(0, 18, 16, 1); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := DecoderGates(17, 18, 16, 1); err == nil {
		t.Error("m=17 accepted")
	}
	if _, err := DecoderGates(8, 16, 16, 1); err == nil {
		t.Error("k=n accepted")
	}
}

func TestPaperComparison(t *testing.T) {
	costs, err := PaperComparison()
	if err != nil {
		t.Fatal(err)
	}
	if len(costs) != 3 {
		t.Fatalf("got %d arrangements, want 3", len(costs))
	}
	s18, d18, s36 := costs[0], costs[1], costs[2]

	if s18.Name != "simplex RS(18,16)" || d18.Name != "duplex RS(18,16)" || s36.Name != "simplex RS(36,16)" {
		t.Errorf("names: %q %q %q", s18.Name, d18.Name, s36.Name)
	}
	// Latency: duplex decodes in parallel, same 74 cycles; the wide
	// code takes 308.
	if s18.DecodeCycles != 74 || d18.DecodeCycles != 74 || s36.DecodeCycles != 308 {
		t.Errorf("cycles: %d %d %d", s18.DecodeCycles, d18.DecodeCycles, s36.DecodeCycles)
	}
	// Area: two RS(18,16) decoders must be smaller than one RS(36,16).
	if !(d18.TotalGates < s36.TotalGates) {
		t.Errorf("duplex pair (%v gates) should be smaller than one RS(36,16) decoder (%v gates)",
			d18.TotalGates, s36.TotalGates)
	}
	if d18.TotalGates != 2*s18.TotalGates {
		t.Errorf("duplex area should be exactly two simplex decoders")
	}
	if d18.Decoders != 2 || s18.Decoders != 1 || s36.Decoders != 1 {
		t.Error("decoder counts wrong")
	}
	// Redundancy bookkeeping: duplex RS(18,16) stores 2*18-16 = 20
	// redundant symbols per dataword — the same as simplex RS(36,16),
	// which is the paper's motivation for the comparison.
	if d18.RedundantSymbolsPerDataword != s36.RedundantSymbolsPerDataword {
		t.Errorf("equal-redundancy premise broken: duplex %d vs RS(36,16) %d",
			d18.RedundantSymbolsPerDataword, s36.RedundantSymbolsPerDataword)
	}
	if s18.RedundantSymbolsPerDataword != 2 {
		t.Errorf("simplex RS(18,16) redundancy = %d, want 2", s18.RedundantSymbolsPerDataword)
	}
}

func TestCostConstructorsValidate(t *testing.T) {
	if _, err := SimplexCost(5, 5, 8); err == nil {
		t.Error("SimplexCost accepted invalid code")
	}
	if _, err := DuplexCost(5, 5, 8); err == nil {
		t.Error("DuplexCost accepted invalid code")
	}
	if _, err := SimplexCost(18, 16, 0); err == nil {
		t.Error("SimplexCost accepted invalid m")
	}
}
