// Package complexity implements the decoder cost models of paper
// Section 6: decoding latency in clock cycles after the Altera
// Reed-Solomon compiler IP core (ref [5]) and a gate-area model linear
// in the symbol width and check-symbol count. These are the numbers
// behind the paper's closing trade-off: a duplex RS(18,16) system
// decodes more than four times faster than a simplex RS(36,16) system
// with the same total redundancy, and two RS(18,16) decoders are
// smaller than one RS(36,16) decoder.
package complexity

import "fmt"

// DecodeCycles returns the paper's decoding-latency estimate
//
//	Td ~= 3*n + 10*(n-k)
//
// in clock cycles, for a non-time-continuous access profile as
// applicable to memory (paper Section 6, after ref [5]).
func DecodeCycles(n, k int) (int, error) {
	if n <= 0 || k <= 0 || k >= n {
		return 0, fmt.Errorf("complexity: invalid code RS(%d,%d)", n, k)
	}
	return 3*n + 10*(n-k), nil
}

// DecodeSeconds converts DecodeCycles into seconds at the given clock
// frequency.
func DecodeSeconds(n, k int, clockHz float64) (float64, error) {
	if clockHz <= 0 {
		return 0, fmt.Errorf("complexity: invalid clock %v Hz", clockHz)
	}
	cycles, err := DecodeCycles(n, k)
	if err != nil {
		return 0, err
	}
	return float64(cycles) / clockHz, nil
}

// DefaultGatesPerUnit is the proportionality constant of the area
// model in gates per (symbol bit x check symbol). The paper only
// states that area is "almost linearly dependent on m and the number
// of check symbols n-k"; the constant calibrates against the ~2k-gate
// class of compact FPGA RS decoder cores of the era and cancels in
// every comparison the paper makes.
const DefaultGatesPerUnit = 115.0

// DecoderGates returns the estimated gate count of one RS(n,k)
// decoder with m-bit symbols: gatesPerUnit * m * (n-k). A
// nonpositive gatesPerUnit selects DefaultGatesPerUnit.
func DecoderGates(m, n, k int, gatesPerUnit float64) (float64, error) {
	if n <= 0 || k <= 0 || k >= n {
		return 0, fmt.Errorf("complexity: invalid code RS(%d,%d)", n, k)
	}
	if m <= 0 || m > 16 {
		return 0, fmt.Errorf("complexity: invalid symbol width m=%d", m)
	}
	if gatesPerUnit <= 0 {
		gatesPerUnit = DefaultGatesPerUnit
	}
	return gatesPerUnit * float64(m) * float64(n-k), nil
}

// ArrangementCost summarizes the Section 6 metrics of one memory
// arrangement.
type ArrangementCost struct {
	Name         string
	N, K, M      int
	Decoders     int     // decoder instances (2 for duplex)
	DecodeCycles int     // latency of one read, cycles (decoders run in parallel)
	TotalGates   float64 // summed decoder area
	// RedundantSymbolsPerDataword counts total stored check symbols
	// per k-symbol dataword (duplex stores the dataword twice; its
	// redundancy is n-k per module plus the full second copy).
	RedundantSymbolsPerDataword int
}

// SimplexCost computes the Section 6 metrics for a simplex RS(n,k)
// arrangement.
func SimplexCost(n, k, m int) (ArrangementCost, error) {
	cycles, err := DecodeCycles(n, k)
	if err != nil {
		return ArrangementCost{}, err
	}
	gates, err := DecoderGates(m, n, k, 0)
	if err != nil {
		return ArrangementCost{}, err
	}
	return ArrangementCost{
		Name: fmt.Sprintf("simplex RS(%d,%d)", n, k),
		N:    n, K: k, M: m,
		Decoders:                    1,
		DecodeCycles:                cycles,
		TotalGates:                  gates,
		RedundantSymbolsPerDataword: n - k,
	}, nil
}

// DuplexCost computes the Section 6 metrics for a duplex RS(n,k)
// arrangement: two decoders operating in parallel (latency of one),
// twice the area, and n redundant symbols per dataword (the second
// copy plus both modules' check symbols).
func DuplexCost(n, k, m int) (ArrangementCost, error) {
	cycles, err := DecodeCycles(n, k)
	if err != nil {
		return ArrangementCost{}, err
	}
	gates, err := DecoderGates(m, n, k, 0)
	if err != nil {
		return ArrangementCost{}, err
	}
	return ArrangementCost{
		Name: fmt.Sprintf("duplex RS(%d,%d)", n, k),
		N:    n, K: k, M: m,
		Decoders:                    2,
		DecodeCycles:                cycles, // the two decoders work in parallel
		TotalGates:                  2 * gates,
		RedundantSymbolsPerDataword: 2*n - k,
	}, nil
}

// PaperComparison returns the three arrangements Section 6 compares —
// simplex RS(18,16), duplex RS(18,16) and simplex RS(36,16), all with
// byte symbols — in that order.
func PaperComparison() ([]ArrangementCost, error) {
	s18, err := SimplexCost(18, 16, 8)
	if err != nil {
		return nil, err
	}
	d18, err := DuplexCost(18, 16, 8)
	if err != nil {
		return nil, err
	}
	s36, err := SimplexCost(36, 16, 8)
	if err != nil {
		return nil, err
	}
	return []ArrangementCost{s18, d18, s36}, nil
}
